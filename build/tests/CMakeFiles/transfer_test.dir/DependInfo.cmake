
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/transfer_test.cpp" "tests/CMakeFiles/transfer_test.dir/transfer_test.cpp.o" "gcc" "tests/CMakeFiles/transfer_test.dir/transfer_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sage_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/sage_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/sage_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/sage_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/sage_model.dir/DependInfo.cmake"
  "/root/repo/build/src/monitor/CMakeFiles/sage_monitor.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sage_net.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/sage_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/sage_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/simcore/CMakeFiles/sage_simcore.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sage_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
