file(REMOVE_RECURSE
  "CMakeFiles/geo_runtime_test.dir/geo_runtime_test.cpp.o"
  "CMakeFiles/geo_runtime_test.dir/geo_runtime_test.cpp.o.d"
  "geo_runtime_test"
  "geo_runtime_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geo_runtime_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
