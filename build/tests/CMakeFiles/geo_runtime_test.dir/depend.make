# Empty dependencies file for geo_runtime_test.
# This may be replaced when dependencies are built.
