file(REMOVE_RECURSE
  "CMakeFiles/sage_engine_test.dir/sage_engine_test.cpp.o"
  "CMakeFiles/sage_engine_test.dir/sage_engine_test.cpp.o.d"
  "sage_engine_test"
  "sage_engine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sage_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
