# Empty dependencies file for sage_engine_test.
# This may be replaced when dependencies are built.
