file(REMOVE_RECURSE
  "CMakeFiles/tree_transfer_test.dir/tree_transfer_test.cpp.o"
  "CMakeFiles/tree_transfer_test.dir/tree_transfer_test.cpp.o.d"
  "tree_transfer_test"
  "tree_transfer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tree_transfer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
