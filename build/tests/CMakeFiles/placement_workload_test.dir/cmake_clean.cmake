file(REMOVE_RECURSE
  "CMakeFiles/placement_workload_test.dir/placement_workload_test.cpp.o"
  "CMakeFiles/placement_workload_test.dir/placement_workload_test.cpp.o.d"
  "placement_workload_test"
  "placement_workload_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/placement_workload_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
