# Empty dependencies file for placement_workload_test.
# This may be replaced when dependencies are built.
