# Empty compiler generated dependencies file for clickstream_budget.
# This may be replaced when dependencies are built.
