file(REMOVE_RECURSE
  "CMakeFiles/clickstream_budget.dir/clickstream_budget.cpp.o"
  "CMakeFiles/clickstream_budget.dir/clickstream_budget.cpp.o.d"
  "clickstream_budget"
  "clickstream_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clickstream_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
