# Empty compiler generated dependencies file for abrain_metareduce.
# This may be replaced when dependencies are built.
