file(REMOVE_RECURSE
  "CMakeFiles/abrain_metareduce.dir/abrain_metareduce.cpp.o"
  "CMakeFiles/abrain_metareduce.dir/abrain_metareduce.cpp.o.d"
  "abrain_metareduce"
  "abrain_metareduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abrain_metareduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
