# Empty compiler generated dependencies file for sensor_fusion.
# This may be replaced when dependencies are built.
