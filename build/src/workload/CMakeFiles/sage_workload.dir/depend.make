# Empty dependencies file for sage_workload.
# This may be replaced when dependencies are built.
