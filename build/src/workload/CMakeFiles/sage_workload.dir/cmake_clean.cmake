file(REMOVE_RECURSE
  "CMakeFiles/sage_workload.dir/workloads.cpp.o"
  "CMakeFiles/sage_workload.dir/workloads.cpp.o.d"
  "libsage_workload.a"
  "libsage_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sage_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
