file(REMOVE_RECURSE
  "libsage_workload.a"
)
