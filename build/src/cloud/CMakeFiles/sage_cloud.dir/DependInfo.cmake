
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cloud/blob.cpp" "src/cloud/CMakeFiles/sage_cloud.dir/blob.cpp.o" "gcc" "src/cloud/CMakeFiles/sage_cloud.dir/blob.cpp.o.d"
  "/root/repo/src/cloud/fabric.cpp" "src/cloud/CMakeFiles/sage_cloud.dir/fabric.cpp.o" "gcc" "src/cloud/CMakeFiles/sage_cloud.dir/fabric.cpp.o.d"
  "/root/repo/src/cloud/link_model.cpp" "src/cloud/CMakeFiles/sage_cloud.dir/link_model.cpp.o" "gcc" "src/cloud/CMakeFiles/sage_cloud.dir/link_model.cpp.o.d"
  "/root/repo/src/cloud/provider.cpp" "src/cloud/CMakeFiles/sage_cloud.dir/provider.cpp.o" "gcc" "src/cloud/CMakeFiles/sage_cloud.dir/provider.cpp.o.d"
  "/root/repo/src/cloud/topology.cpp" "src/cloud/CMakeFiles/sage_cloud.dir/topology.cpp.o" "gcc" "src/cloud/CMakeFiles/sage_cloud.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sage_common.dir/DependInfo.cmake"
  "/root/repo/build/src/simcore/CMakeFiles/sage_simcore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
