# Empty compiler generated dependencies file for sage_cloud.
# This may be replaced when dependencies are built.
