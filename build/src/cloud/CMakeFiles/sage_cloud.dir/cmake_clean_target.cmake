file(REMOVE_RECURSE
  "libsage_cloud.a"
)
