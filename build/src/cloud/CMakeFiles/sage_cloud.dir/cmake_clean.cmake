file(REMOVE_RECURSE
  "CMakeFiles/sage_cloud.dir/blob.cpp.o"
  "CMakeFiles/sage_cloud.dir/blob.cpp.o.d"
  "CMakeFiles/sage_cloud.dir/fabric.cpp.o"
  "CMakeFiles/sage_cloud.dir/fabric.cpp.o.d"
  "CMakeFiles/sage_cloud.dir/link_model.cpp.o"
  "CMakeFiles/sage_cloud.dir/link_model.cpp.o.d"
  "CMakeFiles/sage_cloud.dir/provider.cpp.o"
  "CMakeFiles/sage_cloud.dir/provider.cpp.o.d"
  "CMakeFiles/sage_cloud.dir/topology.cpp.o"
  "CMakeFiles/sage_cloud.dir/topology.cpp.o.d"
  "libsage_cloud.a"
  "libsage_cloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sage_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
