file(REMOVE_RECURSE
  "CMakeFiles/sage_core.dir/introspection.cpp.o"
  "CMakeFiles/sage_core.dir/introspection.cpp.o.d"
  "CMakeFiles/sage_core.dir/placement.cpp.o"
  "CMakeFiles/sage_core.dir/placement.cpp.o.d"
  "CMakeFiles/sage_core.dir/sage.cpp.o"
  "CMakeFiles/sage_core.dir/sage.cpp.o.d"
  "libsage_core.a"
  "libsage_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sage_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
