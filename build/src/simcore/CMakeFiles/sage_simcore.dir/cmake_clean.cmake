file(REMOVE_RECURSE
  "CMakeFiles/sage_simcore.dir/engine.cpp.o"
  "CMakeFiles/sage_simcore.dir/engine.cpp.o.d"
  "libsage_simcore.a"
  "libsage_simcore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sage_simcore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
