file(REMOVE_RECURSE
  "libsage_simcore.a"
)
