# Empty dependencies file for sage_simcore.
# This may be replaced when dependencies are built.
