file(REMOVE_RECURSE
  "libsage_model.a"
)
