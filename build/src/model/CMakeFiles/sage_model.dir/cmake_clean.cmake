file(REMOVE_RECURSE
  "CMakeFiles/sage_model.dir/cost_model.cpp.o"
  "CMakeFiles/sage_model.dir/cost_model.cpp.o.d"
  "CMakeFiles/sage_model.dir/tradeoff.cpp.o"
  "CMakeFiles/sage_model.dir/tradeoff.cpp.o.d"
  "libsage_model.a"
  "libsage_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sage_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
