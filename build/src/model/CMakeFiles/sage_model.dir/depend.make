# Empty dependencies file for sage_model.
# This may be replaced when dependencies are built.
