file(REMOVE_RECURSE
  "CMakeFiles/sage_sched.dir/broadcast.cpp.o"
  "CMakeFiles/sage_sched.dir/broadcast.cpp.o.d"
  "CMakeFiles/sage_sched.dir/multipath.cpp.o"
  "CMakeFiles/sage_sched.dir/multipath.cpp.o.d"
  "CMakeFiles/sage_sched.dir/paths.cpp.o"
  "CMakeFiles/sage_sched.dir/paths.cpp.o.d"
  "libsage_sched.a"
  "libsage_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sage_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
