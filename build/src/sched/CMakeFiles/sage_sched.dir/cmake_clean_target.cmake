file(REMOVE_RECURSE
  "libsage_sched.a"
)
