# Empty compiler generated dependencies file for sage_sched.
# This may be replaced when dependencies are built.
