file(REMOVE_RECURSE
  "libsage_common.a"
)
