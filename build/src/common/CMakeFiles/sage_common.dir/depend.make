# Empty dependencies file for sage_common.
# This may be replaced when dependencies are built.
