file(REMOVE_RECURSE
  "CMakeFiles/sage_common.dir/log.cpp.o"
  "CMakeFiles/sage_common.dir/log.cpp.o.d"
  "CMakeFiles/sage_common.dir/rng.cpp.o"
  "CMakeFiles/sage_common.dir/rng.cpp.o.d"
  "CMakeFiles/sage_common.dir/stats.cpp.o"
  "CMakeFiles/sage_common.dir/stats.cpp.o.d"
  "CMakeFiles/sage_common.dir/table.cpp.o"
  "CMakeFiles/sage_common.dir/table.cpp.o.d"
  "CMakeFiles/sage_common.dir/units.cpp.o"
  "CMakeFiles/sage_common.dir/units.cpp.o.d"
  "libsage_common.a"
  "libsage_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sage_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
