file(REMOVE_RECURSE
  "libsage_net.a"
)
