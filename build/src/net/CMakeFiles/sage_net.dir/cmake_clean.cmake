file(REMOVE_RECURSE
  "CMakeFiles/sage_net.dir/transfer.cpp.o"
  "CMakeFiles/sage_net.dir/transfer.cpp.o.d"
  "CMakeFiles/sage_net.dir/tree_transfer.cpp.o"
  "CMakeFiles/sage_net.dir/tree_transfer.cpp.o.d"
  "libsage_net.a"
  "libsage_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sage_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
