
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/transfer.cpp" "src/net/CMakeFiles/sage_net.dir/transfer.cpp.o" "gcc" "src/net/CMakeFiles/sage_net.dir/transfer.cpp.o.d"
  "/root/repo/src/net/tree_transfer.cpp" "src/net/CMakeFiles/sage_net.dir/tree_transfer.cpp.o" "gcc" "src/net/CMakeFiles/sage_net.dir/tree_transfer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cloud/CMakeFiles/sage_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/simcore/CMakeFiles/sage_simcore.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sage_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
