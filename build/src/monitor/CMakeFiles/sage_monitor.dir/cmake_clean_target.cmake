file(REMOVE_RECURSE
  "libsage_monitor.a"
)
