file(REMOVE_RECURSE
  "CMakeFiles/sage_monitor.dir/estimator.cpp.o"
  "CMakeFiles/sage_monitor.dir/estimator.cpp.o.d"
  "CMakeFiles/sage_monitor.dir/monitoring.cpp.o"
  "CMakeFiles/sage_monitor.dir/monitoring.cpp.o.d"
  "libsage_monitor.a"
  "libsage_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sage_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
