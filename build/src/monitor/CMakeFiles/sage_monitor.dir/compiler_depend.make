# Empty compiler generated dependencies file for sage_monitor.
# This may be replaced when dependencies are built.
