file(REMOVE_RECURSE
  "CMakeFiles/sage_baselines.dir/backends.cpp.o"
  "CMakeFiles/sage_baselines.dir/backends.cpp.o.d"
  "CMakeFiles/sage_baselines.dir/gateway.cpp.o"
  "CMakeFiles/sage_baselines.dir/gateway.cpp.o.d"
  "libsage_baselines.a"
  "libsage_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sage_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
