file(REMOVE_RECURSE
  "CMakeFiles/sage_stream.dir/graph.cpp.o"
  "CMakeFiles/sage_stream.dir/graph.cpp.o.d"
  "CMakeFiles/sage_stream.dir/operator.cpp.o"
  "CMakeFiles/sage_stream.dir/operator.cpp.o.d"
  "CMakeFiles/sage_stream.dir/runtime.cpp.o"
  "CMakeFiles/sage_stream.dir/runtime.cpp.o.d"
  "libsage_stream.a"
  "libsage_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sage_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
