file(REMOVE_RECURSE
  "libsage_stream.a"
)
