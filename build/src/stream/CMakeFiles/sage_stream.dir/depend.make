# Empty dependencies file for sage_stream.
# This may be replaced when dependencies are built.
