
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stream/graph.cpp" "src/stream/CMakeFiles/sage_stream.dir/graph.cpp.o" "gcc" "src/stream/CMakeFiles/sage_stream.dir/graph.cpp.o.d"
  "/root/repo/src/stream/operator.cpp" "src/stream/CMakeFiles/sage_stream.dir/operator.cpp.o" "gcc" "src/stream/CMakeFiles/sage_stream.dir/operator.cpp.o.d"
  "/root/repo/src/stream/runtime.cpp" "src/stream/CMakeFiles/sage_stream.dir/runtime.cpp.o" "gcc" "src/stream/CMakeFiles/sage_stream.dir/runtime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cloud/CMakeFiles/sage_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/simcore/CMakeFiles/sage_simcore.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sage_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
