file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_calibration.dir/bench_table1_calibration.cpp.o"
  "CMakeFiles/bench_table1_calibration.dir/bench_table1_calibration.cpp.o.d"
  "bench_table1_calibration"
  "bench_table1_calibration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_calibration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
