# Empty dependencies file for bench_fig1_variability.
# This may be replaced when dependencies are built.
