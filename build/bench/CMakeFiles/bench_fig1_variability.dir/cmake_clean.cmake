file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_variability.dir/bench_fig1_variability.cpp.o"
  "CMakeFiles/bench_fig1_variability.dir/bench_fig1_variability.cpp.o.d"
  "bench_fig1_variability"
  "bench_fig1_variability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_variability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
