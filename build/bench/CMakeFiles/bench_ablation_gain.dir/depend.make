# Empty dependencies file for bench_ablation_gain.
# This may be replaced when dependencies are built.
