# Empty dependencies file for bench_fig2_blob_staging.
# This may be replaced when dependencies are built.
