file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_blob_staging.dir/bench_fig2_blob_staging.cpp.o"
  "CMakeFiles/bench_fig2_blob_staging.dir/bench_fig2_blob_staging.cpp.o.d"
  "bench_fig2_blob_staging"
  "bench_fig2_blob_staging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_blob_staging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
