# Empty dependencies file for bench_ext_dissemination.
# This may be replaced when dependencies are built.
