file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_dissemination.dir/bench_ext_dissemination.cpp.o"
  "CMakeFiles/bench_ext_dissemination.dir/bench_ext_dissemination.cpp.o.d"
  "bench_ext_dissemination"
  "bench_ext_dissemination.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_dissemination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
