# Empty dependencies file for bench_fig7_env_aware.
# This may be replaced when dependencies are built.
