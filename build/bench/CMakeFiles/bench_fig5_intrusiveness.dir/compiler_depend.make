# Empty compiler generated dependencies file for bench_fig5_intrusiveness.
# This may be replaced when dependencies are built.
