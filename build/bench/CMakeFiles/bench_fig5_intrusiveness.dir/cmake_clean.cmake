file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_intrusiveness.dir/bench_fig5_intrusiveness.cpp.o"
  "CMakeFiles/bench_fig5_intrusiveness.dir/bench_fig5_intrusiveness.cpp.o.d"
  "bench_fig5_intrusiveness"
  "bench_fig5_intrusiveness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_intrusiveness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
