# Empty dependencies file for bench_fig10_abrain.
# This may be replaced when dependencies are built.
