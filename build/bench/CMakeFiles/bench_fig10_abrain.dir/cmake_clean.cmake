file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_abrain.dir/bench_fig10_abrain.cpp.o"
  "CMakeFiles/bench_fig10_abrain.dir/bench_fig10_abrain.cpp.o.d"
  "bench_fig10_abrain"
  "bench_fig10_abrain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_abrain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
