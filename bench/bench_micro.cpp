// Micro-benchmarks (google-benchmark): hot-path costs of the building
// blocks — estimator updates, event-queue throughput, water-filling
// settlement, widest-path queries, planner runs. These bound the control
// plane's overhead: a monitoring update must be orders of magnitude cheaper
// than the transfers it steers.
#include <benchmark/benchmark.h>

#include <algorithm>

#include "cloud/fabric.hpp"
#include "cloud/provider.hpp"
#include "cloud/topology.hpp"
#include "common/rng.hpp"
#include "core/sage.hpp"
#include "monitor/estimator.hpp"
#include "monitor/monitoring.hpp"
#include "sched/multipath.hpp"
#include "simcore/engine.hpp"
#include "stream/graph.hpp"
#include "stream/operator.hpp"
#include "stream/runtime.hpp"

namespace sage {
namespace {

void BM_EstimatorUpdate_WSI(benchmark::State& state) {
  auto estimator =
      monitor::make_estimator(monitor::EstimatorKind::kWeighted, monitor::EstimatorConfig{});
  Rng rng(1);
  std::int64_t i = 0;
  for (auto _ : state) {
    estimator->add_sample(SimTime::from_micros(i++ * 1'000'000), rng.uniform(1.0, 20.0));
    benchmark::DoNotOptimize(estimator->mean());
  }
}
BENCHMARK(BM_EstimatorUpdate_WSI);

void BM_EstimatorUpdate_LSI(benchmark::State& state) {
  auto estimator =
      monitor::make_estimator(monitor::EstimatorKind::kLinear, monitor::EstimatorConfig{});
  Rng rng(1);
  std::int64_t i = 0;
  for (auto _ : state) {
    estimator->add_sample(SimTime::from_micros(i++ * 1'000'000), rng.uniform(1.0, 20.0));
    benchmark::DoNotOptimize(estimator->mean());
  }
}
BENCHMARK(BM_EstimatorUpdate_LSI);

void BM_EventQueue(benchmark::State& state) {
  for (auto _ : state) {
    sim::SimEngine engine;
    for (int i = 0; i < 1000; ++i) {
      engine.schedule_after(SimDuration::micros(i), [] {});
    }
    benchmark::DoNotOptimize(engine.run());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueue);

void BM_EventQueue_CancelHeavy(benchmark::State& state) {
  // The fabric's settlement loop historically cancelled and re-pushed every
  // active flow's completion event on each refresh tick; this isolates the
  // schedule/cancel cost that pattern stresses (half the events cancelled,
  // dropped lazily from the heap).
  std::vector<sim::EventHandle> handles;
  handles.reserve(1000);
  for (auto _ : state) {
    sim::SimEngine engine;
    handles.clear();
    for (int i = 0; i < 1000; ++i) {
      handles.push_back(engine.schedule_after(SimDuration::micros(i), [] {}));
    }
    for (int i = 0; i < 1000; i += 2) handles[static_cast<std::size_t>(i)].cancel();
    benchmark::DoNotOptimize(engine.run());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueue_CancelHeavy);

void BM_Settle(benchmark::State& state) {
  // All flows contend on one region-pair link: every refresh tick re-runs
  // max-min water-filling across the whole (single-component) flow set.
  const auto flows = static_cast<int>(state.range(0));
  sim::SimEngine engine;
  cloud::Fabric fabric(engine, cloud::stable_topology(), 1);
  std::vector<cloud::NodeId> srcs;
  std::vector<cloud::NodeId> dsts;
  for (int i = 0; i < flows; ++i) {
    srcs.push_back(fabric.add_node(cloud::Region::kNorthEU,
                                   ByteRate::megabits_per_sec(100),
                                   ByteRate::megabits_per_sec(100)));
    dsts.push_back(fabric.add_node(cloud::Region::kNorthUS,
                                   ByteRate::megabits_per_sec(100),
                                   ByteRate::megabits_per_sec(100)));
  }
  // Payload far beyond the measured horizon so no flow completes mid-run
  // (a drained fabric would go dormant and fake an ultra-cheap tick).
  int live = 0;
  for (int i = 0; i < flows; ++i) {
    fabric.start_flow(srcs[static_cast<std::size_t>(i)], dsts[static_cast<std::size_t>(i)],
                      Bytes::gb(100'000), {}, [&](const cloud::FlowResult&) { --live; });
    ++live;
  }
  engine.run_until(engine.now() + SimDuration::seconds(1));  // activate flows
  for (auto _ : state) {
    // Each refresh tick re-runs water-filling across all flows.
    engine.run_until(engine.now() + SimDuration::millis(500));
  }
  state.SetItemsProcessed(state.iterations() * flows);
}
BENCHMARK(BM_Settle)->Arg(16)->Arg(64)->Arg(256);

void BM_SettleDisjoint(benchmark::State& state) {
  // N background flows parked on other region pairs (disjoint link sets);
  // the measured event stream starts/cancels flows on one pair. With
  // incremental settlement the per-event cost must be flat in N — only the
  // touched component is re-settled.
  const auto background = static_cast<int>(state.range(0));
  sim::SimEngine engine;
  cloud::Fabric fabric(engine, cloud::stable_topology(), 1);
  fabric.set_refresh_period(SimDuration::hours(24));  // keep refresh out of the loop

  const auto node = [&](cloud::Region r) {
    return fabric.add_node(r, ByteRate::megabits_per_sec(100),
                           ByteRate::megabits_per_sec(100));
  };
  // Spread background flows over every directed region pair except the
  // foreground pair; each flow gets private endpoints so the only shared
  // links inside a bucket are that bucket's pair link.
  std::vector<std::pair<cloud::Region, cloud::Region>> pairs;
  for (cloud::Region a : cloud::kAllRegions) {
    for (cloud::Region b : cloud::kAllRegions) {
      if (a == b) continue;
      if (a == cloud::Region::kNorthEU && b == cloud::Region::kNorthUS) continue;
      pairs.emplace_back(a, b);
    }
  }
  for (int i = 0; i < background; ++i) {
    const auto& [a, b] = pairs[static_cast<std::size_t>(i) % pairs.size()];
    fabric.start_flow(node(a), node(b), Bytes::gb(1000), {},
                      [](const cloud::FlowResult&) {});
  }
  const cloud::NodeId fg_src = node(cloud::Region::kNorthEU);
  const cloud::NodeId fg_dst = node(cloud::Region::kNorthUS);
  engine.run_until(engine.now() + SimDuration::seconds(2));  // activate background
  for (auto _ : state) {
    const cloud::FlowId id = fabric.start_flow(fg_src, fg_dst, Bytes::gb(100), {},
                                               [](const cloud::FlowResult&) {});
    engine.run_until(engine.now() + SimDuration::seconds(1));  // setup + settle
    fabric.cancel_flow(id);                                    // settle again
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SettleDisjoint)->Arg(16)->Arg(64)->Arg(256);

void BM_SettleSparse(benchmark::State& state) {
  // Region-count scaling on a generated sparse topology: a fixed flow
  // population spread over the declared WAN edges of an N-region
  // ring-of-continents world. The fabric's state and settlement passes are
  // sized by the active link set, not N^2, so the curve across
  // Arg(8/64/256) must stay flat (same flows, same refresh ticks) instead
  // of growing ~1000x the way a dense N^2 pair grid would.
  const auto regions = static_cast<std::size_t>(state.range(0));
  constexpr int kFlows = 256;
  sim::SimEngine engine;
  cloud::Fabric fabric(engine, cloud::ring_of_continents(regions, 8, /*stable=*/true), 1);
  std::vector<std::pair<cloud::Region, cloud::Region>> pairs;
  for (const cloud::Topology::Edge& e : fabric.topology().edges()) {
    if (e.src != e.dst) pairs.emplace_back(e.src, e.dst);
  }
  for (int i = 0; i < kFlows; ++i) {
    const auto& [a, b] = pairs[static_cast<std::size_t>(i) % pairs.size()];
    const auto src = fabric.add_node(a, ByteRate::megabits_per_sec(100),
                                     ByteRate::megabits_per_sec(100));
    const auto dst = fabric.add_node(b, ByteRate::megabits_per_sec(100),
                                     ByteRate::megabits_per_sec(100));
    // Payload far beyond the measured horizon so no flow completes mid-run.
    fabric.start_flow(src, dst, Bytes::gb(100'000), {},
                      [](const cloud::FlowResult&) {});
  }
  engine.run_until(engine.now() + SimDuration::seconds(1));  // activate flows
  for (auto _ : state) {
    // Each refresh tick re-settles every bucket with live flows.
    engine.run_until(engine.now() + SimDuration::millis(500));
  }
  state.SetItemsProcessed(state.iterations() * kFlows);
}
BENCHMARK(BM_SettleSparse)->Arg(8)->Arg(64)->Arg(256);

// ---------------------------------------------------------------------------
// Streaming data plane.
// ---------------------------------------------------------------------------

/// Backend for single-site jobs (never reached).
struct NullBackend final : stream::TransferBackend {
  void send(cloud::Region, cloud::Region, Bytes, DoneFn done) override {
    done(stream::SendOutcome{true, SimDuration::zero()});
  }
  [[nodiscard]] std::string_view name() const override { return "null"; }
};

stream::RecordBatch chain_input(std::size_t n) {
  stream::RecordBatch in;
  Rng rng(7);
  for (std::size_t i = 0; i < n; ++i) {
    stream::Record r;
    r.event_time = SimTime::epoch();
    r.key = static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 16));
    r.value = rng.uniform(-2.0, 2.0);
    r.wire_size = Bytes::of(64);
    in.add(r);
  }
  return in;
}

std::vector<std::shared_ptr<stream::Operator>> chain_ops() {
  // Field-typed factories: each stage lowers to a single-column SoA kernel
  // (value map / value filter / key filter) next to its scalar twin.
  std::vector<std::shared_ptr<stream::Operator>> ops;
  ops.push_back(stream::make_value_map("scale", [](double v) { return v * 1.5 + 0.25; }));
  ops.push_back(stream::make_value_filter("pos", [](double v) { return v > -1.0; }));
  ops.push_back(
      stream::make_value_map("clamp", [](double v) { return v > 1.0 ? 1.0 : v; }));
  ops.push_back(
      stream::make_key_filter("mod", [](std::uint64_t k) { return k % 10 != 0; }));
  return ops;
}

void BM_StreamPipeline(benchmark::State& state) {
  // End-to-end single-site runtime: source -> map -> filter -> map -> filter
  // -> sink, 40k rec/s for 5 simulated seconds per iteration. Exercises the
  // whole data plane: source emission, vertex queues, per-record operator
  // work, dispatch and sink accounting.
  constexpr double kRate = 40000.0;
  constexpr int kSeconds = 5;
  for (auto _ : state) {
    sim::SimEngine engine;
    cloud::CloudProvider provider(engine, cloud::stable_topology(), 11);
    stream::JobGraph g;
    stream::SourceSpec spec;
    spec.records_per_sec = kRate;
    spec.key_count = 1 << 16;
    const auto src = g.add_source("s", cloud::Region::kNorthEU, spec);
    stream::VertexId prev = src;
    int i = 0;
    for (auto& op : chain_ops()) {
      const auto v = g.add_operator("op" + std::to_string(i++), cloud::Region::kNorthEU, op);
      g.connect(prev, v);
      prev = v;
    }
    const auto sink = g.add_sink("k", cloud::Region::kNorthEU);
    g.connect(prev, sink);
    NullBackend backend;
    stream::StreamRuntime runtime(provider, std::move(g), backend, stream::RuntimeConfig{});
    runtime.start();
    engine.run_until(engine.now() + SimDuration::seconds(kSeconds));
    runtime.stop();
    benchmark::DoNotOptimize(runtime.sink_stats(sink).records);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(kRate) * kSeconds);
}
BENCHMARK(BM_StreamPipeline)->Unit(benchmark::kMillisecond);

void BM_KeyedAggregate(benchmark::State& state) {
  // Keyed tumbling-window state: 1024-record batches over `range(0)` keys,
  // window flush every 64 batches — the WindowAggregateOperator hot loop
  // plus the dense flush iteration.
  const auto keys = static_cast<std::uint64_t>(state.range(0));
  stream::WindowAggregateOperator op("agg", SimDuration::seconds(1),
                                     stream::AggregateFn::kMean);
  constexpr std::size_t kBatch = 1024;
  std::vector<stream::RecordBatch> batches;
  Rng rng(3);
  for (int b = 0; b < 64; ++b) {
    stream::RecordBatch in;
    for (std::size_t i = 0; i < kBatch; ++i) {
      stream::Record r;
      r.key = static_cast<std::uint64_t>(rng.uniform_int(0, static_cast<std::int64_t>(keys) - 1));
      r.value = rng.uniform(0.0, 1.0);
      in.add(r);
    }
    batches.push_back(std::move(in));
  }
  stream::RecordBatch none;
  stream::RecordBatch out;
  std::size_t b = 0;
  for (auto _ : state) {
    op.process(0, batches[b], none);
    if (++b == batches.size()) {
      b = 0;
      out.clear();
      op.on_timer(SimTime::epoch(), out);
      benchmark::DoNotOptimize(out.size());
    }
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(kBatch));
}
BENCHMARK(BM_KeyedAggregate)->Arg(1 << 10)->Arg(1 << 16);

void BM_KeyedAggregateAoS(benchmark::State& state) {
  // Array-of-structs reference for BM_KeyedAggregate: the identical keyed
  // update loop over std::vector<Record> batches (the pre-SoA layout, 32-byte
  // stride). The delta against BM_KeyedAggregate is the columnar gather win.
  struct KeyState {
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    std::uint64_t count = 0;
    SimTime oldest_event;
  };
  const auto keys = static_cast<std::uint64_t>(state.range(0));
  FlatMap<KeyState> agg;
  constexpr std::size_t kBatch = 1024;
  std::vector<std::vector<stream::Record>> batches;
  Rng rng(3);
  for (int b = 0; b < 64; ++b) {
    std::vector<stream::Record> in;
    in.reserve(kBatch);
    for (std::size_t i = 0; i < kBatch; ++i) {
      stream::Record r;
      r.key = static_cast<std::uint64_t>(rng.uniform_int(0, static_cast<std::int64_t>(keys) - 1));
      r.value = rng.uniform(0.0, 1.0);
      in.push_back(r);
    }
    batches.push_back(std::move(in));
  }
  std::size_t b = 0;
  for (auto _ : state) {
    for (const stream::Record& r : batches[b]) {
      auto [s, inserted] = agg.find_or_insert(r.key);
      if (inserted) {
        s->min = s->max = r.value;
        s->oldest_event = r.event_time;
      } else {
        s->min = std::min(s->min, r.value);
        s->max = std::max(s->max, r.value);
        if (r.event_time < s->oldest_event) s->oldest_event = r.event_time;
      }
      s->sum += r.value;
      ++s->count;
    }
    if (++b == batches.size()) {
      b = 0;
      agg.clear();
    }
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(kBatch));
}
BENCHMARK(BM_KeyedAggregateAoS)->Arg(1 << 10)->Arg(1 << 16);

void BM_FusedChain(benchmark::State& state) {
  // The stateless map/filter chain over one 4096-record batch: per-vertex
  // execution with intermediate batch materialization (arg 0) vs the fused
  // single-pass operator (arg 1).
  const bool fused = state.range(0) != 0;
  const auto ops = chain_ops();
  const stream::RecordBatch in = chain_input(4096);
  if (fused) {
    std::vector<stream::StatelessStage> stages;
    for (const auto& op : ops) {
      const bool ok = op->collect_stages(stages);
      SAGE_CHECK(ok);
    }
    stream::FusedStatelessChain chain("fused", std::move(stages));
    for (auto _ : state) {
      stream::RecordBatch cur = in;
      stream::RecordBatch out;
      chain.process_batch(0, std::move(cur), out);
      benchmark::DoNotOptimize(out.size());
    }
  } else {
    for (auto _ : state) {
      stream::RecordBatch cur = in;
      for (const auto& op : ops) {
        stream::RecordBatch next;
        op->process(0, cur, next);
        cur = std::move(next);
      }
      benchmark::DoNotOptimize(cur.size());
    }
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(in.size()));
}
BENCHMARK(BM_FusedChain)->Arg(0)->Arg(1);

void BM_FusedChainSoA(benchmark::State& state) {
  // The fused chain's two execution paths over one 4096-record batch:
  // scalar row-at-a-time passes (arg 0) vs column-wise SoA kernels (arg 1).
  // Same stages, same survivors — the delta is pure execution-path speed.
  const bool kernels = state.range(0) != 0;
  std::vector<stream::StatelessStage> stages;
  for (const auto& op : chain_ops()) {
    const bool ok = op->collect_stages(stages);
    SAGE_CHECK(ok);
  }
  const stream::FusedStatelessChain chain("fused", std::move(stages));
  const stream::RecordBatch in = chain_input(4096);
  for (auto _ : state) {
    stream::RecordBatch cur = in;
    for (std::size_t s = 0; s < chain.stage_count() && !cur.empty(); ++s) {
      chain.apply_stage(s, cur, kernels);
    }
    benchmark::DoNotOptimize(cur.size());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(in.size()));
}
BENCHMARK(BM_FusedChainSoA)->Arg(0)->Arg(1);

void BM_BatchTranspose(benchmark::State& state) {
  // Row gather/scatter round trip across the columnar batch: materialize
  // every row as a Record and scatter it back. Bounds the per-record cost a
  // row-oriented operator pays for the SoA layout.
  stream::RecordBatch batch = chain_input(4096);
  for (auto _ : state) {
    const std::size_t n = batch.size();
    for (std::size_t i = 0; i < n; ++i) {
      stream::Record r = batch.row(i);
      r.value += 1.0;
      batch.set_row(i, r);
    }
    benchmark::DoNotOptimize(batch.values().data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(batch.size()));
}
BENCHMARK(BM_BatchTranspose);

monitor::ThroughputMatrix bench_matrix() {
  monitor::ThroughputMatrix m;
  Rng rng(9);
  for (cloud::Region a : cloud::kAllRegions) {
    for (cloud::Region b : cloud::kAllRegions) {
      if (a != b) {
        m.set(a, b, monitor::LinkEstimate{rng.uniform(2.0, 12.0), 0.5, 20});
      }
    }
  }
  return m;
}

void BM_WidestPath(benchmark::State& state) {
  const auto m = bench_matrix();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sched::widest_path(m, cloud::Region::kNorthEU, cloud::Region::kNorthUS));
  }
}
BENCHMARK(BM_WidestPath);

void BM_MultiPathPlan(benchmark::State& state) {
  const auto m = bench_matrix();
  sched::MultiPathPlanner planner;
  sched::Inventory inventory;
  inventory.fill(8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(planner.plan(m, cloud::Region::kNorthEU,
                                          cloud::Region::kNorthUS, inventory, 25));
  }
}
BENCHMARK(BM_MultiPathPlan);

void BM_PlanSparse(benchmark::State& state) {
  // Planner cost vs region count on a sparse hub-and-spoke estimate map.
  // Widest-path relaxes only the declared adjacency rows — 2(N-1) directed
  // entries here — so relaxation work is O(links); what remains is the
  // linear selection scan per settled node (O(N^2) worst case), which
  // bounds this curve. A dense matrix would add N^2 relaxation probes on
  // top of that scan.
  const auto regions = static_cast<std::size_t>(state.range(0));
  monitor::ThroughputMatrix m(regions);
  m.epoch = 1;
  Rng rng(9);
  const cloud::Region hub = cloud::make_region(0);
  for (std::size_t i = 1; i < regions; ++i) {
    m.set(hub, cloud::make_region(i),
          monitor::LinkEstimate{rng.uniform(2.0, 12.0), 0.5, 20});
    m.set(cloud::make_region(i), hub,
          monitor::LinkEstimate{rng.uniform(2.0, 12.0), 0.5, 20});
  }
  sched::MultiPathPlanner planner;
  sched::Inventory inventory;
  inventory.fill(8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(planner.plan(m, cloud::make_region(1),
                                          cloud::make_region(regions - 1), inventory,
                                          25));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PlanSparse)->Arg(8)->Arg(64)->Arg(256);

// ---------------------------------------------------------------------------
// Control plane fast path: epoch-cached snapshots and memoized replanning.
// ---------------------------------------------------------------------------

void BM_Snapshot(benchmark::State& state) {
  // MonitoringService::snapshot() with a frozen sample epoch. Arg 1: the
  // epoch-validated cache answers with one integer compare. Arg 0: every
  // call rebuilds all pairs and recomputes estimator stats from the raw
  // window (the seed's cost).
  const bool cached = state.range(0) != 0;
  sim::SimEngine engine;
  cloud::CloudProvider provider(engine, cloud::stable_topology(), 5);
  monitor::MonitorConfig config;
  config.probe_interval = SimDuration::minutes(1);
  config.cache_snapshot = cached;
  config.estimator.cache_stats = cached;
  monitor::MonitoringService service(provider, config);
  for (cloud::Region r : cloud::kAllRegions) {
    service.register_agent(r, provider.provision(r, cloud::VmSize::kSmall).id);
  }
  service.start();
  engine.run_until(engine.now() + SimDuration::minutes(30));
  service.stop();  // freeze the epoch: every call below sees the same map
  for (auto _ : state) {
    benchmark::DoNotOptimize(&service.snapshot());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Snapshot)->Arg(0)->Arg(1);

void BM_SnapshotSparse(benchmark::State& state) {
  // Snapshot rebuild cost vs region count on a generated hub-and-spoke
  // topology. The monitor only materializes estimators for declared links
  // (2(N-1) directed WAN pairs here), and the sparse ThroughputMatrix walks
  // those entries — so the rebuild is O(active links), not O(N^2). Cache
  // off: every call below pays the full rebuild (the interesting cost).
  const auto regions = static_cast<std::size_t>(state.range(0));
  sim::SimEngine engine;
  cloud::CloudProvider provider(engine, cloud::hub_and_spoke(regions, /*stable=*/true), 5);
  monitor::MonitorConfig config;
  config.probe_interval = SimDuration::minutes(5);
  config.cache_snapshot = false;  // measure the rebuild, not the epoch check
  monitor::MonitoringService service(provider, config);
  for (cloud::Region r : provider.topology().regions()) {
    service.register_agent(r, provider.provision(r, cloud::VmSize::kSmall).id);
  }
  service.start();
  engine.run_until(engine.now() + SimDuration::minutes(20));
  service.stop();  // freeze the epoch: every call below sees the same map
  for (auto _ : state) {
    benchmark::DoNotOptimize(&service.snapshot());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SnapshotSparse)->Arg(8)->Arg(64)->Arg(256)->Unit(benchmark::kMicrosecond);

void BM_Plan(benchmark::State& state) {
  // Epoch-keyed PlanCache hit (arg 1) vs a raw planner run (arg 0) on
  // identical inputs.
  const bool cached = state.range(0) != 0;
  auto m = bench_matrix();
  m.epoch = 1;  // the cache keys on the epoch; hand-built matrices need one
  sched::MultiPathPlanner planner;
  sched::Inventory inventory;
  inventory.fill(8);
  sched::PlanCache cache;
  for (auto _ : state) {
    if (cached) {
      benchmark::DoNotOptimize(&cache.plan(planner, m, cloud::Region::kNorthEU,
                                           cloud::Region::kNorthUS, inventory, 25));
    } else {
      benchmark::DoNotOptimize(planner.plan(m, cloud::Region::kNorthEU,
                                            cloud::Region::kNorthUS, inventory, 25));
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Plan)->Arg(0)->Arg(1);

void BM_ReplanSweep(benchmark::State& state) {
  // One coalesced replan sweep over range(0) live transfers with the
  // monitoring epoch frozen. Arg {N, 1}: every transfer is skipped with a
  // single integer compare. Arg {N, 0}: every transfer re-runs the planner
  // against the fresh snapshot — the per-tick adaptation cost the seed paid
  // for each live transfer regardless of whether anything changed.
  const auto transfers = static_cast<int>(state.range(0));
  const bool cached = state.range(1) != 0;
  sim::SimEngine engine;
  cloud::CloudProvider provider(engine, cloud::stable_topology(), 17);
  core::SageConfig config;
  config.regions.assign(cloud::kAllRegions.begin(), cloud::kAllRegions.end());
  config.gateways_per_region = 2;
  config.monitoring.probe_interval = SimDuration::minutes(1);
  config.adapt_interval = SimDuration::zero();  // the bench drives the sweep
  config.health_check_interval = SimDuration::zero();
  config.memoize_control = cached;
  config.monitoring.cache_snapshot = cached;
  config.monitoring.estimator.cache_stats = cached;
  core::SageEngine sage(provider, config);
  sage.deploy();
  engine.run_until(engine.now() + SimDuration::minutes(30));  // warm the map
  Rng rng(23);
  for (int i = 0; i < transfers; ++i) {
    const auto src = cloud::kAllRegions[static_cast<std::size_t>(rng.uniform_int(0, 5))];
    auto dst = src;
    while (dst == src) {
      dst = cloud::kAllRegions[static_cast<std::size_t>(rng.uniform_int(0, 5))];
    }
    // Payloads far beyond the simulated horizon (sim time stops advancing
    // once the measurement loop starts) so every transfer stays live, but
    // small enough that per-chunk bookkeeping doesn't dominate setup.
    sage.send(src, dst, Bytes::gb(20), [](stream::SendOutcome) {});
  }
  engine.run_until(engine.now() + SimDuration::seconds(1));  // activate lanes
  sage.monitoring().stop();  // freeze the sample epoch
  for (auto _ : state) {
    benchmark::DoNotOptimize(sage.replan_sweep());
  }
  state.SetItemsProcessed(state.iterations() * transfers);
  sage.shutdown();
}
BENCHMARK(BM_ReplanSweep)
    ->Args({16, 0})
    ->Args({16, 1})
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({256, 0})
    ->Args({256, 1})
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace sage

BENCHMARK_MAIN();
