// Micro-benchmarks (google-benchmark): hot-path costs of the building
// blocks — estimator updates, event-queue throughput, water-filling
// settlement, widest-path queries, planner runs. These bound the control
// plane's overhead: a monitoring update must be orders of magnitude cheaper
// than the transfers it steers.
#include <benchmark/benchmark.h>

#include "cloud/fabric.hpp"
#include "cloud/topology.hpp"
#include "common/rng.hpp"
#include "monitor/estimator.hpp"
#include "sched/multipath.hpp"
#include "simcore/engine.hpp"

namespace sage {
namespace {

void BM_EstimatorUpdate_WSI(benchmark::State& state) {
  auto estimator =
      monitor::make_estimator(monitor::EstimatorKind::kWeighted, monitor::EstimatorConfig{});
  Rng rng(1);
  std::int64_t i = 0;
  for (auto _ : state) {
    estimator->add_sample(SimTime::from_micros(i++ * 1'000'000), rng.uniform(1.0, 20.0));
    benchmark::DoNotOptimize(estimator->mean());
  }
}
BENCHMARK(BM_EstimatorUpdate_WSI);

void BM_EstimatorUpdate_LSI(benchmark::State& state) {
  auto estimator =
      monitor::make_estimator(monitor::EstimatorKind::kLinear, monitor::EstimatorConfig{});
  Rng rng(1);
  std::int64_t i = 0;
  for (auto _ : state) {
    estimator->add_sample(SimTime::from_micros(i++ * 1'000'000), rng.uniform(1.0, 20.0));
    benchmark::DoNotOptimize(estimator->mean());
  }
}
BENCHMARK(BM_EstimatorUpdate_LSI);

void BM_EventQueue(benchmark::State& state) {
  for (auto _ : state) {
    sim::SimEngine engine;
    for (int i = 0; i < 1000; ++i) {
      engine.schedule_after(SimDuration::micros(i), [] {});
    }
    benchmark::DoNotOptimize(engine.run());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueue);

void BM_EventQueue_CancelHeavy(benchmark::State& state) {
  // The fabric's settlement loop historically cancelled and re-pushed every
  // active flow's completion event on each refresh tick; this isolates the
  // schedule/cancel cost that pattern stresses (half the events cancelled,
  // dropped lazily from the heap).
  std::vector<sim::EventHandle> handles;
  handles.reserve(1000);
  for (auto _ : state) {
    sim::SimEngine engine;
    handles.clear();
    for (int i = 0; i < 1000; ++i) {
      handles.push_back(engine.schedule_after(SimDuration::micros(i), [] {}));
    }
    for (int i = 0; i < 1000; i += 2) handles[static_cast<std::size_t>(i)].cancel();
    benchmark::DoNotOptimize(engine.run());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueue_CancelHeavy);

void BM_Settle(benchmark::State& state) {
  // All flows contend on one region-pair link: every refresh tick re-runs
  // max-min water-filling across the whole (single-component) flow set.
  const auto flows = static_cast<int>(state.range(0));
  sim::SimEngine engine;
  cloud::Fabric fabric(engine, cloud::stable_topology(), 1);
  std::vector<cloud::NodeId> srcs;
  std::vector<cloud::NodeId> dsts;
  for (int i = 0; i < flows; ++i) {
    srcs.push_back(fabric.add_node(cloud::Region::kNorthEU,
                                   ByteRate::megabits_per_sec(100),
                                   ByteRate::megabits_per_sec(100)));
    dsts.push_back(fabric.add_node(cloud::Region::kNorthUS,
                                   ByteRate::megabits_per_sec(100),
                                   ByteRate::megabits_per_sec(100)));
  }
  // Payload far beyond the measured horizon so no flow completes mid-run
  // (a drained fabric would go dormant and fake an ultra-cheap tick).
  int live = 0;
  for (int i = 0; i < flows; ++i) {
    fabric.start_flow(srcs[static_cast<std::size_t>(i)], dsts[static_cast<std::size_t>(i)],
                      Bytes::gb(100'000), {}, [&](const cloud::FlowResult&) { --live; });
    ++live;
  }
  engine.run_until(engine.now() + SimDuration::seconds(1));  // activate flows
  for (auto _ : state) {
    // Each refresh tick re-runs water-filling across all flows.
    engine.run_until(engine.now() + SimDuration::millis(500));
  }
  state.SetItemsProcessed(state.iterations() * flows);
}
BENCHMARK(BM_Settle)->Arg(16)->Arg(64)->Arg(256);

void BM_SettleDisjoint(benchmark::State& state) {
  // N background flows parked on other region pairs (disjoint link sets);
  // the measured event stream starts/cancels flows on one pair. With
  // incremental settlement the per-event cost must be flat in N — only the
  // touched component is re-settled.
  const auto background = static_cast<int>(state.range(0));
  sim::SimEngine engine;
  cloud::Fabric fabric(engine, cloud::stable_topology(), 1);
  fabric.set_refresh_period(SimDuration::hours(24));  // keep refresh out of the loop

  const auto node = [&](cloud::Region r) {
    return fabric.add_node(r, ByteRate::megabits_per_sec(100),
                           ByteRate::megabits_per_sec(100));
  };
  // Spread background flows over every directed region pair except the
  // foreground pair; each flow gets private endpoints so the only shared
  // links inside a bucket are that bucket's pair link.
  std::vector<std::pair<cloud::Region, cloud::Region>> pairs;
  for (cloud::Region a : cloud::kAllRegions) {
    for (cloud::Region b : cloud::kAllRegions) {
      if (a == b) continue;
      if (a == cloud::Region::kNorthEU && b == cloud::Region::kNorthUS) continue;
      pairs.emplace_back(a, b);
    }
  }
  for (int i = 0; i < background; ++i) {
    const auto& [a, b] = pairs[static_cast<std::size_t>(i) % pairs.size()];
    fabric.start_flow(node(a), node(b), Bytes::gb(1000), {},
                      [](const cloud::FlowResult&) {});
  }
  const cloud::NodeId fg_src = node(cloud::Region::kNorthEU);
  const cloud::NodeId fg_dst = node(cloud::Region::kNorthUS);
  engine.run_until(engine.now() + SimDuration::seconds(2));  // activate background
  for (auto _ : state) {
    const cloud::FlowId id = fabric.start_flow(fg_src, fg_dst, Bytes::gb(100), {},
                                               [](const cloud::FlowResult&) {});
    engine.run_until(engine.now() + SimDuration::seconds(1));  // setup + settle
    fabric.cancel_flow(id);                                    // settle again
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SettleDisjoint)->Arg(16)->Arg(64)->Arg(256);

monitor::ThroughputMatrix bench_matrix() {
  monitor::ThroughputMatrix m;
  Rng rng(9);
  for (cloud::Region a : cloud::kAllRegions) {
    for (cloud::Region b : cloud::kAllRegions) {
      if (a != b) {
        m.links[cloud::region_index(a)][cloud::region_index(b)] =
            monitor::LinkEstimate{rng.uniform(2.0, 12.0), 0.5, 20};
      }
    }
  }
  return m;
}

void BM_WidestPath(benchmark::State& state) {
  const auto m = bench_matrix();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sched::widest_path(m, cloud::Region::kNorthEU, cloud::Region::kNorthUS));
  }
}
BENCHMARK(BM_WidestPath);

void BM_MultiPathPlan(benchmark::State& state) {
  const auto m = bench_matrix();
  sched::MultiPathPlanner planner;
  sched::Inventory inventory;
  inventory.fill(8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(planner.plan(m, cloud::Region::kNorthEU,
                                          cloud::Region::kNorthUS, inventory, 25));
  }
}
BENCHMARK(BM_MultiPathPlan);

}  // namespace
}  // namespace sage

BENCHMARK_MAIN();
