// Ablation C — Chunk-size sweep under failure injection.
//
// 1 GB over a two-lane transfer (direct + relay through East US) whose
// relay forwarder is killed mid-flight, for chunk sizes from 256 KB to
// 64 MB. Small chunks pay more per-chunk overhead (acks, flow setup);
// large chunks waste more work on failure (a killed chunk restarts from
// zero) and pipeline worse. The sweep exposes the interior optimum that
// justifies the default 4 MiB.
#include "bench_util.hpp"
#include "net/transfer.hpp"

namespace sage::bench {
namespace {

struct Outcome {
  double seconds = 0.0;
  int retransmissions = 0;
  int hop_failures = 0;
  bool ok = false;
};

Outcome run_one(Bytes chunk, std::uint64_t seed) {
  World world(seed);
  auto& provider = *world.provider;
  const auto src = provider.provision(cloud::Region::kNorthEU, cloud::VmSize::kSmall);
  const auto dst = provider.provision(cloud::Region::kNorthUS, cloud::VmSize::kSmall);
  const auto fwd = provider.provision(cloud::Region::kEastUS, cloud::VmSize::kSmall);
  const auto helper = provider.provision(cloud::Region::kNorthEU, cloud::VmSize::kSmall);

  std::vector<net::Lane> lanes = net::direct_lane(src.id, dst.id);
  lanes.push_back(net::Lane{{src.id, fwd.id, dst.id}});
  lanes.push_back(net::Lane{{src.id, helper.id, dst.id}});

  net::TransferConfig config;
  config.chunk_size = chunk;
  config.streams_per_hop = 2;

  Outcome out;
  bool done = false;
  net::GeoTransfer transfer(provider, Bytes::gb(1), lanes, config,
                            [&](const net::TransferResult& r) {
                              out.seconds = r.elapsed().to_seconds();
                              out.retransmissions = r.stats.retransmissions;
                              out.hop_failures = r.stats.hop_failures;
                              out.ok = r.ok;
                              done = true;
                            });
  transfer.start();
  // Kill the relay forwarder a third of the way in.
  world.engine.schedule_after(SimDuration::seconds(30),
                              [&] { provider.fail_vm(fwd.id); });
  world.run_until([&] { return done; }, SimDuration::days(2));
  return out;
}

void run(BenchContext& ctx) {
  const std::vector<double> chunk_grid =
      ctx.smoke() ? std::vector<double>{256.0, 4096.0}
                  : std::vector<double>{256.0, 1024.0, 4096.0, 16384.0, 65536.0};
  const auto outcomes = ctx.sweep("chunks", chunk_grid, [](const double& kb) {
    return run_one(Bytes::kib(kb), /*seed=*/37);
  });

  TextTable t({"Chunk size", "Time s", "Retransmissions", "Hop failures", "Completed"});
  for (std::size_t i = 0; i < chunk_grid.size(); ++i) {
    const Outcome& o = outcomes[i];
    t.add_row({to_string(Bytes::kib(chunk_grid[i])), TextTable::num(o.seconds, 0),
               std::to_string(o.retransmissions), std::to_string(o.hop_failures),
               o.ok ? "yes" : "NO"});
  }
  print_table(t);
  print_note(
      "\nShape check: all sizes survive the forwarder loss (chunks restart "
      "from the source). Sub-MiB chunks pay visibly for per-chunk setup and "
      "ack overhead; everything from 1 MiB to 16 MiB sits on a broad "
      "plateau. The 4 MiB default picks the middle of that plateau — small "
      "enough for fine-grained lane balancing and cheap failure redo, large "
      "enough to amortize the envelopes.");
}

}  // namespace
}  // namespace sage::bench

int main(int argc, char** argv) {
  sage::bench::BenchContext ctx(argc, argv, "ablation_chunks", "Ablation C",
                                "Chunk-size sweep with forwarder failure (1 GB, 3 lanes)");
  sage::bench::run(ctx);
  return ctx.finish();
}
