// Fig S — Planet-scale sparse fabric: 64 and 256 regions, 10k+ flows.
//
// The paper's evaluation stops at 6 Azure regions; this figure stresses the
// runtime-parameterized topology layer far past that. Each grid point builds
// a generated ring-of-continents world (contiguous continent blocks with an
// intra-continent full mesh and a gateway ring), spreads a large flow
// population round-robin over the *declared* WAN pairs, and drives the
// fabric for a fixed virtual window. Everything printed is simulator state
// (flow completions, delivered volume, active-link counts), so stdout is
// byte-identical at any SAGE_BENCH_THREADS — the CI determinism diff runs
// this grid at 1 and 4 threads. Wall-clock cost per point rides the --json
// record; EXPERIMENTS.md tabulates it as the sub-quadratic scaling evidence:
// fabric state and settlement passes are sized by declared/active links, so
// cost per flow stays flat from 64 to 256 regions instead of growing with
// the 4096x larger dense pair grid.
//
// Sharded mode (--shards N or SAGE_PAR_SHARDS=N, default off): the same grid
// runs on the region-sharded ShardedSimEngine — regions partitioned across N
// shards (cloud::plan_shards), one event lane + one fabric per shard, flows
// owned by their source region's shard, and depth-1 relay traffic posted
// cross-shard at WAN latency (>= the conservative lookahead horizon by
// construction, so the lock-step windows admit it). The sharded table uses a
// *stable* topology — per-connection hiccup draws consume fabric RNG in flow
// start order, which necessarily differs across shardings; zeroed
// variability removes all RNG influence on rates, making the printed table
// byte-identical across any shard count AND any worker count. CI diffs
// shards 1 vs 4 and harness threads 1 vs 4 with shards fixed.
#include "bench_util.hpp"

#include "cloud/fabric.hpp"
#include "simcore/sharded_engine.hpp"

namespace sage::bench {
namespace {

struct Cell {
  std::size_t regions = 0;
  int flows = 0;
};

struct RunResult {
  std::size_t wan_pairs = 0;     // declared directed WAN pairs
  std::size_t active_links = 0;  // pairs carrying >= 1 flow after activation
  int completed = 0;
  Bytes delivered;
  double window_s = 0.0;
};

RunResult run_one(const Cell& c) {
  sim::SimEngine engine;
  cloud::Fabric fabric(engine,
                       cloud::ring_of_continents(c.regions, 8, /*stable=*/false),
                       /*seed=*/9000 + c.regions * 13 + static_cast<std::size_t>(c.flows));

  // Flows only between declared WAN pairs: the sparse fabric has no state —
  // and no routes — for unlinked region pairs.
  std::vector<std::pair<cloud::Region, cloud::Region>> pairs;
  for (const cloud::Topology::Edge& e : fabric.topology().edges()) {
    if (e.src != e.dst) pairs.emplace_back(e.src, e.dst);
  }

  RunResult out;
  out.wan_pairs = pairs.size();
  for (int i = 0; i < c.flows; ++i) {
    const auto& [a, b] = pairs[static_cast<std::size_t>(i) % pairs.size()];
    const auto src = fabric.add_node(a, ByteRate::megabits_per_sec(100),
                                     ByteRate::megabits_per_sec(100));
    const auto dst = fabric.add_node(b, ByteRate::megabits_per_sec(100),
                                     ByteRate::megabits_per_sec(100));
    // Deterministic payload spread so completions stagger across the window
    // instead of draining the fabric in one settle burst.
    const Bytes payload = Bytes::mb(100 + (i % 7) * 50);
    fabric.start_flow(src, dst, payload, {}, [&out](const cloud::FlowResult& r) {
      if (!r.ok()) return;
      ++out.completed;
      out.delivered = out.delivered + r.transferred;
    });
  }
  engine.run_until(engine.now() + SimDuration::seconds(1));  // activate flows
  for (const auto& [a, b] : pairs) {
    if (fabric.pair_flow_count(a, b) > 0) ++out.active_links;
  }

  const SimDuration window = SimDuration::minutes(10);
  out.window_s = window.to_seconds();
  engine.run_until(engine.now() + window);
  return out;
}

// -- Sharded mode ------------------------------------------------------------

struct ShardResult {
  std::size_t wan_pairs = 0;
  std::size_t active_links = 0;
  int completed = 0;  // initial flows
  int relays = 0;     // depth-1 return flows
  Bytes delivered;    // initial + relay bytes
  double window_s = 0.0;
};

// Lane-indexed accumulator: each lane's callbacks write only their own slot
// during a window, so the parallel run needs no locks; padded so neighbouring
// slots never share a cache line.
struct alignas(64) LaneTally {
  int completed = 0;
  int relays = 0;
  Bytes delivered;
};

ShardResult run_one_sharded(const Cell& c, int shards) {
  const auto topo = std::make_shared<const cloud::Topology>(
      cloud::ring_of_continents(c.regions, 8, /*stable=*/true));
  const cloud::ShardPlan plan = cloud::plan_shards(*topo, static_cast<std::size_t>(shards));
  sim::ShardedSimEngine engine(
      sim::ShardedSimEngine::Options{plan.shards, plan.lookahead, true, 0});
  const auto lane_of = [&](cloud::Region r) -> std::size_t {
    return engine.collapsed() ? 0 : plan.shard(r);
  };

  // One fabric per lane over ONE shared immutable topology. A directed pair's
  // flows all live in the fabric of the pair's src-region shard, and per-flow
  // fresh endpoints keep different pairs on disjoint link sets, so per-pair
  // max-min settlement is identical to the single-fabric run at any S.
  const std::uint64_t seed = 9000 + c.regions * 13 + static_cast<std::size_t>(c.flows);
  std::vector<std::unique_ptr<cloud::Fabric>> fabrics;
  for (std::size_t l = 0; l < engine.lane_count(); ++l) {
    fabrics.push_back(std::make_unique<cloud::Fabric>(engine.shard(l), topo, seed + l));
  }

  std::vector<std::pair<cloud::Region, cloud::Region>> pairs;
  for (const cloud::Topology::Edge& e : topo->edges()) {
    if (e.src != e.dst) pairs.emplace_back(e.src, e.dst);
  }

  std::vector<LaneTally> tally(engine.lane_count());
  const auto nic = ByteRate::megabits_per_sec(100);
  for (int i = 0; i < c.flows; ++i) {
    const auto [a, b] = pairs[static_cast<std::size_t>(i) % pairs.size()];
    const std::size_t sa = plan.shard(a);
    const std::size_t sb = plan.shard(b);
    cloud::Fabric& owner = *fabrics[lane_of(a)];
    const auto src = owner.add_node(a, nic, nic);
    const auto dst = owner.add_node(b, nic, nic);
    const Bytes payload = Bytes::mb(100 + (i % 7) * 50);
    const Bytes relay_payload = Bytes::mb(60 + (i % 5) * 30);
    // Cross-shard hop: the declared one-way latency of (a, b), which is
    // >= plan.lookahead by definition whenever a and b sit on different
    // shards — the lock-step window admits it without ever deadlocking.
    const SimDuration hop = topo->link(a, b).latency;
    owner.start_flow(src, dst, payload, {},
                     [&engine, &fabrics, &tally, &lane_of, a, b, sa, sb, hop,
                      relay_payload, nic](const cloud::FlowResult& r) {
                       if (!r.ok()) return;
                       LaneTally& t = tally[lane_of(a)];
                       ++t.completed;
                       t.delivered += r.transferred;
                       // Depth-1 relay: the payload bounces back b -> a one
                       // WAN hop later, landing on b's shard — the cross-shard
                       // traffic this mode exists to exercise.
                       engine.post(sa, sb, hop,
                                   [&fabrics, &tally, &lane_of, a, b, relay_payload, nic] {
                                     cloud::Fabric& f = *fabrics[lane_of(b)];
                                     const auto s2 = f.add_node(b, nic, nic);
                                     const auto d2 = f.add_node(a, nic, nic);
                                     f.start_flow(s2, d2, relay_payload, {},
                                                  [&tally, &lane_of,
                                                   b](const cloud::FlowResult& rr) {
                                                    if (!rr.ok()) return;
                                                    LaneTally& t2 = tally[lane_of(b)];
                                                    ++t2.relays;
                                                    t2.delivered += rr.transferred;
                                                  });
                                   });
                     });
  }

  ShardResult out;
  out.wan_pairs = pairs.size();
  engine.run_until(engine.now() + SimDuration::seconds(1));  // activate flows
  for (const auto& [a, b] : pairs) {
    if (fabrics[lane_of(a)]->pair_flow_count(a, b) > 0) ++out.active_links;
  }

  const SimDuration window = SimDuration::minutes(10);
  out.window_s = window.to_seconds();
  engine.run_until(engine.now() + window);
  for (const LaneTally& t : tally) {
    out.completed += t.completed;
    out.relays += t.relays;
    out.delivered += t.delivered;
  }
  return out;
}

void run_sharded(BenchContext& ctx, const std::vector<Cell>& grid, int shards) {
  const auto results = ctx.sweep("scale-sharded", grid, [shards](const Cell& c) {
    return run_one_sharded(c, shards);
  });

  TextTable t({"Regions", "Flows", "WAN pairs", "Active links", "Completed",
               "Relays", "Delivered", "Agg MB/s"});
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const ShardResult& r = results[i];
    t.add_row({std::to_string(grid[i].regions), std::to_string(grid[i].flows),
               std::to_string(r.wan_pairs), std::to_string(r.active_links),
               std::to_string(r.completed), std::to_string(r.relays),
               to_string(r.delivered),
               TextTable::num(r.delivered.to_mb() / r.window_s, 1)});
  }
  print_table(t);
  print_note(
      "\nSharded mode (stable topology, region-sharded engine): every value "
      "above is shard-count and worker-count invariant — flows are owned by "
      "their source region's shard, depth-1 relays cross shards at WAN "
      "latency (>= the conservative lookahead window), and per-pair max-min "
      "settlement is independent across pairs, so S in {1,2,4,...} prints "
      "this exact table. CI diffs shards 1 vs 4 and harness threads 1 vs 4.");
}

void run(BenchContext& ctx) {
  const std::vector<Cell> grid =
      ctx.smoke() ? std::vector<Cell>{{16, 2000}, {64, 2000}}
                  : std::vector<Cell>{{64, 10000}, {128, 10000}, {256, 10000},
                                      {256, 20000}};

  if (ctx.shards() > 0) {
    run_sharded(ctx, grid, ctx.shards());
    return;
  }

  const auto results = ctx.sweep("scale", grid, [](const Cell& c) { return run_one(c); });

  TextTable t({"Regions", "Flows", "WAN pairs", "Active links", "Completed",
               "Delivered", "Agg MB/s"});
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const RunResult& r = results[i];
    t.add_row({std::to_string(grid[i].regions), std::to_string(grid[i].flows),
               std::to_string(r.wan_pairs), std::to_string(r.active_links),
               std::to_string(r.completed), to_string(r.delivered),
               TextTable::num(r.delivered.to_mb() / r.window_s, 1)});
  }
  print_table(t);
  print_note(
      "\nShape check: every declared WAN pair carries flows (active == "
      "declared), and the declared set grows ~linearly in region count "
      "(continent meshes + gateway ring), never as the N^2 dense grid. "
      "Wall cost per point (see --json record) tracks live flow-ticks, not "
      "regions: growing 64 -> 256 regions at a fixed flow population makes "
      "the point CHEAPER (flows spread over ~17x more links, contend less, "
      "finish sooner), while doubling flows at 256 regions roughly doubles "
      "cost. O(active), as designed — a dense N^2 fabric would instead pay "
      "a 4096x larger state and settle sweep at 256 regions.");
}

}  // namespace
}  // namespace sage::bench

int main(int argc, char** argv) {
  sage::bench::BenchContext ctx(argc, argv, "fig_scale", "Fig S",
                                "Planet scale: sparse fabric at 64-256 regions");
  sage::bench::run(ctx);
  return ctx.finish();
}
