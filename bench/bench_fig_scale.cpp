// Fig S — Planet-scale sparse fabric: 64 and 256 regions, 10k+ flows.
//
// The paper's evaluation stops at 6 Azure regions; this figure stresses the
// runtime-parameterized topology layer far past that. Each grid point builds
// a generated ring-of-continents world (contiguous continent blocks with an
// intra-continent full mesh and a gateway ring), spreads a large flow
// population round-robin over the *declared* WAN pairs, and drives the
// fabric for a fixed virtual window. Everything printed is simulator state
// (flow completions, delivered volume, active-link counts), so stdout is
// byte-identical at any SAGE_BENCH_THREADS — the CI determinism diff runs
// this grid at 1 and 4 threads. Wall-clock cost per point rides the --json
// record; EXPERIMENTS.md tabulates it as the sub-quadratic scaling evidence:
// fabric state and settlement passes are sized by declared/active links, so
// cost per flow stays flat from 64 to 256 regions instead of growing with
// the 4096x larger dense pair grid.
#include "bench_util.hpp"

#include "cloud/fabric.hpp"

namespace sage::bench {
namespace {

struct Cell {
  std::size_t regions = 0;
  int flows = 0;
};

struct RunResult {
  std::size_t wan_pairs = 0;     // declared directed WAN pairs
  std::size_t active_links = 0;  // pairs carrying >= 1 flow after activation
  int completed = 0;
  Bytes delivered;
  double window_s = 0.0;
};

RunResult run_one(const Cell& c) {
  sim::SimEngine engine;
  cloud::Fabric fabric(engine,
                       cloud::ring_of_continents(c.regions, 8, /*stable=*/false),
                       /*seed=*/9000 + c.regions * 13 + static_cast<std::size_t>(c.flows));

  // Flows only between declared WAN pairs: the sparse fabric has no state —
  // and no routes — for unlinked region pairs.
  std::vector<std::pair<cloud::Region, cloud::Region>> pairs;
  for (const cloud::Topology::Edge& e : fabric.topology().edges()) {
    if (e.src != e.dst) pairs.emplace_back(e.src, e.dst);
  }

  RunResult out;
  out.wan_pairs = pairs.size();
  for (int i = 0; i < c.flows; ++i) {
    const auto& [a, b] = pairs[static_cast<std::size_t>(i) % pairs.size()];
    const auto src = fabric.add_node(a, ByteRate::megabits_per_sec(100),
                                     ByteRate::megabits_per_sec(100));
    const auto dst = fabric.add_node(b, ByteRate::megabits_per_sec(100),
                                     ByteRate::megabits_per_sec(100));
    // Deterministic payload spread so completions stagger across the window
    // instead of draining the fabric in one settle burst.
    const Bytes payload = Bytes::mb(100 + (i % 7) * 50);
    fabric.start_flow(src, dst, payload, {}, [&out](const cloud::FlowResult& r) {
      if (!r.ok()) return;
      ++out.completed;
      out.delivered = out.delivered + r.transferred;
    });
  }
  engine.run_until(engine.now() + SimDuration::seconds(1));  // activate flows
  for (const auto& [a, b] : pairs) {
    if (fabric.pair_flow_count(a, b) > 0) ++out.active_links;
  }

  const SimDuration window = SimDuration::minutes(10);
  out.window_s = window.to_seconds();
  engine.run_until(engine.now() + window);
  return out;
}

void run(BenchContext& ctx) {
  const std::vector<Cell> grid =
      ctx.smoke() ? std::vector<Cell>{{16, 2000}, {64, 2000}}
                  : std::vector<Cell>{{64, 10000}, {128, 10000}, {256, 10000},
                                      {256, 20000}};

  const auto results = ctx.sweep("scale", grid, [](const Cell& c) { return run_one(c); });

  TextTable t({"Regions", "Flows", "WAN pairs", "Active links", "Completed",
               "Delivered", "Agg MB/s"});
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const RunResult& r = results[i];
    t.add_row({std::to_string(grid[i].regions), std::to_string(grid[i].flows),
               std::to_string(r.wan_pairs), std::to_string(r.active_links),
               std::to_string(r.completed), to_string(r.delivered),
               TextTable::num(r.delivered.to_mb() / r.window_s, 1)});
  }
  print_table(t);
  print_note(
      "\nShape check: every declared WAN pair carries flows (active == "
      "declared), and the declared set grows ~linearly in region count "
      "(continent meshes + gateway ring), never as the N^2 dense grid. "
      "Wall cost per point (see --json record) tracks live flow-ticks, not "
      "regions: growing 64 -> 256 regions at a fixed flow population makes "
      "the point CHEAPER (flows spread over ~17x more links, contend less, "
      "finish sooner), while doubling flows at 256 regions roughly doubles "
      "cost. O(active), as designed — a dense N^2 fabric would instead pay "
      "a 4096x larger state and settle sweep at 256 regions.");
}

}  // namespace
}  // namespace sage::bench

int main(int argc, char** argv) {
  sage::bench::BenchContext ctx(argc, argv, "fig_scale", "Fig S",
                                "Planet scale: sparse fabric at 64-256 regions");
  sage::bench::run(ctx);
  return ctx.finish();
}
