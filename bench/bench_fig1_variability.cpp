// Fig 1 — Inter-site throughput variability over one week.
//
// From a client VM in North EU, probe the TCP throughput towards the other
// five datacenters for seven simulated days (100 MB-class probes; here 8 MB
// every 10 minutes to keep the event count sane — the per-flow statistics
// are identical). Reports mean ± stddev per destination plus the
// coefficient of variation and the worst observed dip, i.e. the "drops and
// bursts can appear at any time" shape.
#include "bench_util.hpp"
#include "common/stats.hpp"

namespace sage::bench {
namespace {

void run() {
  World world(/*seed=*/2013);
  auto& provider = *world.provider;
  const auto src = provider.provision(cloud::Region::kNorthEU, cloud::VmSize::kSmall);

  std::array<cloud::VmHandle, cloud::kRegionCount> dst;
  for (cloud::Region r : cloud::kAllRegions) {
    if (r == cloud::Region::kNorthEU) continue;
    dst[cloud::region_index(r)] = provider.provision(r, cloud::VmSize::kSmall);
  }

  std::array<OnlineStats, cloud::kRegionCount> stats;
  std::array<SampleSet, cloud::kRegionCount> samples;

  const int rounds = 7 * 24 * 6;  // every 10 min for a week
  for (int i = 0; i < rounds; ++i) {
    for (cloud::Region r : cloud::kAllRegions) {
      if (r == cloud::Region::kNorthEU) continue;
      bool done = false;
      provider.transfer(src.id, dst[cloud::region_index(r)].id, Bytes::mb(8), {},
                        [&, r](const cloud::FlowResult& result) {
                          if (result.ok()) {
                            const double mbps = result.achieved_rate().to_mb_per_sec();
                            stats[cloud::region_index(r)].add(mbps);
                            samples[cloud::region_index(r)].add(mbps);
                          }
                          done = true;
                        });
      world.run_until([&] { return done; });
    }
    world.run_for(SimDuration::minutes(10));
  }

  TextTable t({"Link (from NEU)", "Samples", "Mean MB/s", "Stddev", "CoV", "Min", "p5",
               "Max"});
  for (cloud::Region r : cloud::kAllRegions) {
    if (r == cloud::Region::kNorthEU) continue;
    const OnlineStats& s = stats[cloud::region_index(r)];
    t.add_row({std::string(cloud::region_code(r)), std::to_string(s.count()),
               TextTable::num(s.mean(), 2), TextTable::num(s.stddev(), 2),
               TextTable::num(s.stddev() / s.mean(), 2), TextTable::num(s.min(), 2),
               TextTable::num(samples[cloud::region_index(r)].quantile(0.05), 2),
               TextTable::num(s.max(), 2)});
  }
  print_table(t);
  print_note(
      "\nShape check: nearby links (WEU) are fast but still variable; "
      "transatlantic links are slower AND proportionally noisier (higher CoV), "
      "with deep un-forecastable dips (min << p5 << mean).");
}

}  // namespace
}  // namespace sage::bench

int main() {
  sage::bench::print_header("Fig 1",
                            "One week of inter-datacenter TCP throughput from North EU");
  sage::bench::run();
  return 0;
}
