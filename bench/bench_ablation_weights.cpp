// Ablation A — What each term of the WSI weight buys.
//
// The weighted estimator's trust weight is w = (gaussian + freshness)/2.
// This ablation re-runs the 24 h prediction experiment with each component
// knocked out, by reconstructing the weight behaviourally:
//   * full WSI         — as shipped;
//   * gaussian-only    — freshness forced to 0 (rare samples not boosted);
//   * freshness-only   — gaussian forced to 0 (no outlier rejection);
//   * unweighted (w=1) — degenerates to a pure exponential window.
// The knocked-out variants are emulated with custom estimator wrappers so
// the production code path stays untouched.
#include <cmath>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "monitor/estimator.hpp"

namespace sage::bench {
namespace {

/// Reimplementation of the WSI recurrence with the weight formula swapped
/// in, for knock-out comparisons.
class AblatedWsi {
 public:
  enum class Mode { kFull, kGaussianOnly, kFreshnessOnly, kUnweighted };

  AblatedWsi(Mode mode, std::size_t history, SimDuration reference)
      : mode_(mode), h_(static_cast<double>(history)), reference_(reference) {}

  void add(SimTime t, double value) {
    if (n_ == 0) {
      mu_ = value;
      var_ = 0.0;
    } else {
      const double sigma = std::max(std::sqrt(var_), 1e-3 * std::max(std::abs(mu_), 1e-12));
      const double d = (mu_ - value) / sigma;
      const double gaussian = std::exp(-0.5 * d * d);
      const double freshness =
          std::clamp((t - last_) / reference_, 0.0, 1.0);
      double w = 1.0;
      switch (mode_) {
        case Mode::kFull:
          w = (gaussian + freshness) / 2.0;
          break;
        case Mode::kGaussianOnly:
          w = gaussian / 2.0;
          break;
        case Mode::kFreshnessOnly:
          w = freshness / 2.0;
          break;
        case Mode::kUnweighted:
          w = 1.0;
          break;
      }
      const double g = std::max(w, 0.3);
      const double residual = value - mu_;
      mu_ = ((h_ - w) * mu_ + w * value) / h_;
      var_ = ((h_ - g) * var_ + g * residual * residual) / h_;
    }
    last_ = t;
    ++n_;
  }

  [[nodiscard]] double mean() const { return mu_; }

 private:
  Mode mode_;
  double h_;
  SimDuration reference_;
  double mu_ = 0.0;
  double var_ = 0.0;
  SimTime last_;
  std::size_t n_ = 0;
};

struct RegimeErrors {
  double full = 0.0;
  double gaussian = 0.0;
  double freshness = 0.0;
  double unweighted = 0.0;
};

/// `sparse` switches from dense 1-minute sampling to irregular gaps of
/// 1-30 minutes — the regime the freshness term exists for: after a long
/// quiet period the link has drifted, and the next sample must be adopted
/// quickly even though it sits far from the stale mean.
RegimeErrors run_regime(bool sparse) {
  World world(/*seed=*/321);  // same trace family as Fig 3
  auto& provider = *world.provider;
  const auto src = provider.provision(cloud::Region::kNorthUS, cloud::VmSize::kSmall);
  const auto dst = provider.provision(cloud::Region::kNorthEU, cloud::VmSize::kSmall);

  const SimDuration reference = SimDuration::minutes(10);
  AblatedWsi full(AblatedWsi::Mode::kFull, 12, reference);
  AblatedWsi gaussian(AblatedWsi::Mode::kGaussianOnly, 12, reference);
  AblatedWsi freshness(AblatedWsi::Mode::kFreshnessOnly, 12, reference);
  AblatedWsi unweighted(AblatedWsi::Mode::kUnweighted, 12, reference);

  OnlineStats err_full;
  OnlineStats err_gaussian;
  OnlineStats err_freshness;
  OnlineStats err_unweighted;

  const auto& link =
      provider.topology().link(cloud::Region::kNorthUS, cloud::Region::kNorthEU);
  auto oracle_mbps = [&] {
    const double factor =
        provider.fabric()
            .pair_capacity_now(cloud::Region::kNorthUS, cloud::Region::kNorthEU)
            .bytes_per_second() /
        link.capacity.bytes_per_second();
    return link.per_flow_cap.to_mb_per_sec() * factor;
  };

  Rng gaps(9);
  int scored = 0;
  const SimTime horizon = world.engine.now() + SimDuration::hours(24);
  while (world.engine.now() < horizon) {
    bool done = false;
    double sample = 0.0;
    provider.transfer(src.id, dst.id, Bytes::mb(8), {},
                      [&](const cloud::FlowResult& r) {
                        if (r.ok()) sample = r.achieved_rate().to_mb_per_sec();
                        done = true;
                      });
    world.run_until([&] { return done; });
    if (sample > 0.0) {
      if (++scored > 30) {
        const double truth = oracle_mbps();
        const auto rel = [&](double est) { return std::abs(est - truth) / truth; };
        err_full.add(rel(full.mean()));
        err_gaussian.add(rel(gaussian.mean()));
        err_freshness.add(rel(freshness.mean()));
        err_unweighted.add(rel(unweighted.mean()));
      }
      const SimTime now = world.engine.now();
      full.add(now, sample);
      gaussian.add(now, sample);
      freshness.add(now, sample);
      unweighted.add(now, sample);
    }
    world.run_for(sparse ? SimDuration::minutes(gaps.uniform(1.0, 30.0))
                         : SimDuration::minutes(1));
  }

  return RegimeErrors{err_full.mean() * 100, err_gaussian.mean() * 100,
                      err_freshness.mean() * 100, err_unweighted.mean() * 100};
}

void run() {
  const RegimeErrors dense = run_regime(false);
  const RegimeErrors sparse = run_regime(true);
  TextTable t({"Variant", "Dense 1-min sampling err %", "Sparse irregular err %"});
  t.add_row({"full WSI (gaussian + freshness)", TextTable::num(dense.full, 2),
             TextTable::num(sparse.full, 2)});
  t.add_row({"gaussian only", TextTable::num(dense.gaussian, 2),
             TextTable::num(sparse.gaussian, 2)});
  t.add_row({"freshness only", TextTable::num(dense.freshness, 2),
             TextTable::num(sparse.freshness, 2)});
  t.add_row({"unweighted exp. window", TextTable::num(dense.unweighted, 2),
             TextTable::num(sparse.unweighted, 2)});
  print_table(t);
  print_note(
      "\nShape check: under dense sampling the gaussian (glitch-rejection) "
      "term carries the accuracy and freshness is inert; under sparse "
      "irregular sampling, gaussian-only distrusts the post-gap samples it "
      "most needs and the freshness term restores tracking. Only the full "
      "weight is strong in both regimes.");
}

}  // namespace
}  // namespace sage::bench

int main() {
  sage::bench::print_header("Ablation A", "WSI weight-function knock-outs (24 h trace)");
  sage::bench::run();
  return 0;
}
