// Fig 5 — Impact of intrusiveness on transfer time.
//
// 1 GB moves from North EU to North US while the transfer system is
// restricted to 5%, 10% or 20% of each VM's resources (the shared-VM
// deployment mode), using 1 to 5 sender VMs. Within each intrusiveness
// segment the highest bar is the single-VM transfer; adding VMs shortens
// the transfer sub-linearly (bounded NIC share, scatter overhead, VM
// variability) — the observation that motivates fine-grained control of
// the resource fraction.
#include "bench_util.hpp"
#include "net/transfer.hpp"

namespace sage::bench {
namespace {

SimDuration run_one(double intrusiveness, int vms, std::uint64_t seed) {
  World world(seed);
  const LaneFan fan = provision_fan(*world.provider, cloud::Region::kNorthEU,
                                    cloud::Region::kNorthUS, vms);

  net::TransferConfig config;
  config.intrusiveness = intrusiveness;
  config.streams_per_hop = 2;
  return run_transfer(world, Bytes::gb(1), fan.lanes, config, SimDuration::days(5))
      .elapsed();
}

struct Cell {
  double intr = 0.0;
  int vms = 0;
};

void run(BenchContext& ctx) {
  const std::vector<double> intr_grid =
      ctx.smoke() ? std::vector<double>{0.05, 0.20}
                  : std::vector<double>{0.05, 0.10, 0.20};
  const int max_vms = ctx.smoke() ? 3 : 5;
  std::vector<Cell> grid;
  for (double intr : intr_grid) {
    for (int vms = 1; vms <= max_vms; ++vms) grid.push_back({intr, vms});
  }

  const auto results = ctx.sweep(
      "intrusiveness", grid, [](const Cell& c) { return run_one(c.intr, c.vms, 55); });

  TextTable t({"Intrusiveness", "VMs", "Transfer time s", "Speedup vs 1 VM"});
  double base = 0.0;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const SimDuration elapsed = results[i];
    if (grid[i].vms == 1) base = elapsed.to_seconds();
    t.add_row({TextTable::num(grid[i].intr * 100.0, 0) + "%",
               std::to_string(grid[i].vms), TextTable::num(elapsed.to_seconds(), 0),
               TextTable::num(base / elapsed.to_seconds(), 2)});
  }
  print_table(t);
  print_note(
      "\nShape check: each doubling of intrusiveness roughly halves the "
      "single-VM time; extra VMs help sub-linearly and the marginal benefit "
      "shrinks with each added node.");
}

}  // namespace
}  // namespace sage::bench

int main(int argc, char** argv) {
  sage::bench::BenchContext ctx(
      argc, argv, "fig5_intrusiveness", "Fig 5",
      "Intrusiveness x sender VMs -> transfer time (1 GB, NEU -> NUS)");
  sage::bench::run(ctx);
  return ctx.finish();
}
