// Fig 5 — Impact of intrusiveness on transfer time.
//
// 1 GB moves from North EU to North US while the transfer system is
// restricted to 5%, 10% or 20% of each VM's resources (the shared-VM
// deployment mode), using 1 to 5 sender VMs. Within each intrusiveness
// segment the highest bar is the single-VM transfer; adding VMs shortens
// the transfer sub-linearly (bounded NIC share, scatter overhead, VM
// variability) — the observation that motivates fine-grained control of
// the resource fraction.
#include "bench_util.hpp"
#include "net/transfer.hpp"

namespace sage::bench {
namespace {

SimDuration run_one(double intrusiveness, int vms, std::uint64_t seed) {
  World world(seed);
  auto& provider = *world.provider;
  const auto src = provider.provision(cloud::Region::kNorthEU, cloud::VmSize::kSmall);
  const auto dst = provider.provision(cloud::Region::kNorthUS, cloud::VmSize::kSmall);

  std::vector<net::Lane> lanes = net::direct_lane(src.id, dst.id);
  for (int i = 1; i < vms; ++i) {
    const auto helper = provider.provision(cloud::Region::kNorthEU, cloud::VmSize::kSmall);
    lanes.push_back(net::Lane{{src.id, helper.id, dst.id}});
  }

  net::TransferConfig config;
  config.intrusiveness = intrusiveness;
  config.streams_per_hop = 2;

  SimDuration elapsed;
  bool done = false;
  net::GeoTransfer transfer(provider, Bytes::gb(1), lanes, config,
                            [&](const net::TransferResult& r) {
                              elapsed = r.elapsed();
                              done = true;
                            });
  transfer.start();
  world.run_until([&] { return done; }, SimDuration::days(5));
  return elapsed;
}

void run() {
  TextTable t({"Intrusiveness", "VMs", "Transfer time s", "Speedup vs 1 VM"});
  for (double intr : {0.05, 0.10, 0.20}) {
    double base = 0.0;
    for (int vms = 1; vms <= 5; ++vms) {
      const SimDuration elapsed = run_one(intr, vms, 55);
      if (vms == 1) base = elapsed.to_seconds();
      t.add_row({TextTable::num(intr * 100.0, 0) + "%", std::to_string(vms),
                 TextTable::num(elapsed.to_seconds(), 0),
                 TextTable::num(base / elapsed.to_seconds(), 2)});
    }
  }
  print_table(t);
  print_note(
      "\nShape check: each doubling of intrusiveness roughly halves the "
      "single-VM time; extra VMs help sub-linearly and the marginal benefit "
      "shrinks with each added node.");
}

}  // namespace
}  // namespace sage::bench

int main() {
  sage::bench::print_header(
      "Fig 5", "Intrusiveness x sender VMs -> transfer time (1 GB, NEU -> NUS)");
  sage::bench::run();
  return 0;
}
