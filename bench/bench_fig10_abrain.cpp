// Fig 10 — The A-Brain meta-reduce staging experiment.
//
// The neuro-imaging x genetics application runs a MapReduce across three
// datacenters; each site's 1000 partial-result files must reach the
// Meta-Reducer in North US. Total staging time is compared between the
// stock AzureBlobs relay and the SAGE engine, for three dataset scales
// (the paper's 3x1000x36 KB small case up to the multi-GB bulk case;
// Extra-Large instances, as the application used). The crossover is the
// point: per-file acknowledgement overhead makes SAGE *worse* for tiny
// files, while for bulk data the engine wins by a large factor.
#include "baselines/backends.hpp"
#include "bench_util.hpp"
#include "core/sage.hpp"
#include "workload/workloads.hpp"

namespace sage::bench {
namespace {

workload::MetaReduceParams scenario(Bytes file_size, int files) {
  workload::MetaReduceParams params;
  params.sites = {cloud::Region::kNorthEU, cloud::Region::kWestEU,
                  cloud::Region::kSouthUS};
  params.reducer_site = cloud::Region::kNorthUS;
  params.files_per_site = files;
  params.file_size = file_size;
  params.concurrency_per_site = 8;
  return params;
}

SimDuration run_backend(stream::TransferBackend& backend, World& world,
                        const workload::MetaReduceParams& params) {
  bool done = false;
  workload::MetaReduceResult result{};
  workload::run_metareduce(world.engine, backend, params,
                           [&](const workload::MetaReduceResult& r) {
                             result = r;
                             done = true;
                           });
  world.run_until([&] { return done; }, SimDuration::days(10));
  return result.total_time;
}

SimDuration run_blob(const workload::MetaReduceParams& params, std::uint64_t seed) {
  World world(seed);
  baselines::GatewayPool pool(*world.provider, cloud::VmSize::kXLarge);
  baselines::BlobRelayBackend backend(pool, /*gateways_per_region=*/2);
  return run_backend(backend, world, params);
}

SimDuration run_sage(const workload::MetaReduceParams& params, std::uint64_t seed) {
  World world(seed);
  SageDeployOptions deploy;
  deploy.regions = {cloud::Region::kNorthEU, cloud::Region::kWestEU,
                    cloud::Region::kSouthUS, cloud::Region::kEastUS,
                    cloud::Region::kNorthUS};
  deploy.agent_vm = cloud::VmSize::kXLarge;
  deploy.gateways_per_region = 2;
  auto engine = deploy_sage(world, deploy);
  return run_backend(*engine, world, params);
}

struct Scale {
  const char* label;
  Bytes file_size;
  int files;
};

struct Cell {
  const Scale* scale = nullptr;
  bool sage = false;
};

void run(BenchContext& ctx) {
  // The paper's small case verbatim; the larger scales keep the simulated
  // runtime tractable by shipping the same *bulk* through fewer, bigger
  // files (the transfer engines see identical byte volumes per site).
  static const Scale scales[] = {
      {"108 MB (3x1000x36 KB)", Bytes::kb(36), 1000},
      {"12 GB (3x100x40 MB)", Bytes::mb(40), 100},
      {"120 GB (3x100x400 MB)", Bytes::mb(400), 100},
  };
  const std::size_t scale_count = ctx.smoke() ? 1 : 3;
  std::vector<Cell> grid;
  for (std::size_t s = 0; s < scale_count; ++s) {
    grid.push_back({&scales[s], /*sage=*/false});
    grid.push_back({&scales[s], /*sage=*/true});
  }
  const auto times = ctx.sweep("abrain", grid, [](const Cell& c) {
    const auto params = scenario(c.scale->file_size, c.scale->files);
    // Each staged file is one "record" for the harness throughput figure.
    harness::report_task_records(static_cast<std::uint64_t>(params.files_per_site) *
                                 params.sites.size());
    return c.sage ? run_sage(params, /*seed=*/10) : run_blob(params, /*seed=*/10);
  });

  TextTable t({"Dataset", "AzureBlobs s", "SAGE s", "Blob/SAGE"});
  for (std::size_t i = 0; i < grid.size(); i += 2) {
    const SimDuration blob = times[i];
    const SimDuration sage_t = times[i + 1];
    t.add_row({grid[i].scale->label, TextTable::num(blob.to_seconds(), 0),
               TextTable::num(sage_t.to_seconds(), 0), TextTable::num(blob / sage_t, 2)});
  }
  print_table(t);
  print_note(
      "\nShape check: on the tiny-file dataset the per-file latency floors "
      "and acknowledgement round-trips compress SAGE's advantage to almost "
      "nothing; as the dataset grows the engine's parallel lanes amortize "
      "those overheads and the ratio climbs into (and past) the ~3x class "
      "at the 120 GB scale — the application-level result.");
}

}  // namespace
}  // namespace sage::bench

int main(int argc, char** argv) {
  sage::bench::BenchContext ctx(argc, argv, "fig10_abrain", "Fig 10",
                                "A-Brain meta-reduce staging: AzureBlobs vs SAGE, 3 sites");
  sage::bench::run(ctx);
  return ctx.finish();
}
