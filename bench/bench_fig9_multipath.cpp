// Fig 9 — Multi-datacenter path transfer strategies.
//
// Sustained NEU -> NUS data movement with nodes spread across all six
// sites, four strategies compared:
//   * DirectLink            — every node sends on the direct pair link;
//   * ShortestPath static   — the widest path is chosen once at start;
//   * ShortestPath dynamic  — the widest path is re-chosen every minute
//                             from the live monitoring map;
//   * SAGE multi-path       — Algorithm-1 widening across multiple paths,
//                             re-planned every minute.
// (a) cumulative achieved throughput over a 10-minute window at 25 nodes;
// (b) 10-minute throughput as the node budget grows from 5 to 25.
#include "bench_util.hpp"
#include "baselines/gateway.hpp"
#include "monitor/monitoring.hpp"
#include "net/transfer.hpp"
#include "sched/multipath.hpp"

namespace sage::bench {
namespace {

constexpr cloud::Region kSrc = cloud::Region::kNorthEU;
constexpr cloud::Region kDst = cloud::Region::kNorthUS;

enum class Strategy { kDirect, kStatic, kDynamic, kSage };

const char* strategy_name(Strategy s) {
  switch (s) {
    case Strategy::kDirect:
      return "DirectLink";
    case Strategy::kStatic:
      return "ShortestPath static";
    case Strategy::kDynamic:
      return "ShortestPath dynamic";
    case Strategy::kSage:
      return "SAGE multi-path";
  }
  return "?";
}

constexpr int kSourceEndpoints = 4;  // the sending deployment's data holders

/// Expand a plan into transfer lanes using pool VMs (mirrors the engine's
/// lane construction). `slot` gives each source endpoint a disjoint helper
/// index range so concurrent transfers use distinct forwarder VMs.
std::vector<net::Lane> lanes_for(baselines::GatewayPool& pool,
                                 const sched::MultiPathPlan& plan, int slot,
                                 int rotation = 0) {
  const cloud::VmId src_gw = pool.gateways(kSrc, kSourceEndpoints)[
      static_cast<std::size_t>(slot)];
  const cloud::VmId dst_gw = pool.gateways(kDst, kSourceEndpoints)[
      static_cast<std::size_t>(slot)];
  std::vector<net::Lane> lanes;
  std::array<int, cloud::kRegionCount> cursor{};
  // Each endpoint has its own helper index range; a nonzero rotation steps
  // to a fresh set of VMs (the decision manager replacing nodes whose
  // performance dropped).
  cursor.fill(slot * 40 + rotation * 10);
  bool first_lane = true;
  for (const sched::PlannedPath& p : plan.paths) {
    for (int w = 0; w < p.width; ++w) {
      net::Lane lane;
      lane.path.push_back(src_gw);
      if (!first_lane) {
        const int idx = cursor[cloud::region_index(kSrc)]++;
        lane.path.push_back(pool.helpers(kSrc, idx + 1)[static_cast<std::size_t>(idx)]);
      }
      first_lane = false;
      for (std::size_t i = 1; i + 1 < p.route.regions.size(); ++i) {
        const cloud::Region hop = p.route.regions[i];
        const int idx = cursor[cloud::region_index(hop)]++;
        lane.path.push_back(pool.helpers(hop, idx + 1)[static_cast<std::size_t>(idx)]);
      }
      lane.path.push_back(dst_gw);
      lanes.push_back(std::move(lane));
    }
  }
  if (lanes.empty()) lanes = net::direct_lane(src_gw, dst_gw);
  return lanes;
}

struct RunSeries {
  std::vector<double> cumulative_mbps;  // per minute
  double final_mbps = 0.0;
};

/// Sustained deployment-to-deployment movement: the sending side's data is
/// spread over kSourceEndpoints holder VMs (as in the real system, where
/// the deployment's nodes each own a shard), each driving its share of the
/// node budget through the chosen strategy.
RunSeries run_strategy(Strategy strategy, int node_budget, std::uint64_t seed,
                       int minutes = 10) {
  World world(seed);
  auto& provider = *world.provider;
  baselines::GatewayPool pool(provider);

  monitor::MonitorConfig mconfig;
  mconfig.probe_interval = SimDuration::minutes(1);
  monitor::MonitoringService monitoring(provider, mconfig);
  for (cloud::Region r : cloud::kAllRegions) {
    monitoring.register_agent(r, provider.provision(r, cloud::VmSize::kSmall).id);
  }
  monitoring.start();
  world.run_for(SimDuration::minutes(15));  // warm the map

  sched::Inventory inventory;
  inventory.fill(8);
  sched::MultiPathPlanner planner;

  auto make_plan = [&](int budget_share) {
    const auto matrix = monitoring.snapshot();
    switch (strategy) {
      case Strategy::kDirect:
        return planner.direct_plan(matrix, kSrc, kDst, inventory, budget_share);
      case Strategy::kStatic:
      case Strategy::kDynamic:
        return planner.widest_single_path_plan(matrix, kSrc, kDst, inventory,
                                               budget_share);
      case Strategy::kSage:
        return planner.plan(matrix, kSrc, kDst, inventory, budget_share);
    }
    return sched::MultiPathPlan{};
  };

  net::TransferConfig config;
  config.streams_per_hop = 2;

  std::vector<int> shares;
  for (int i = 0; i < kSourceEndpoints; ++i) {
    const int share = node_budget / kSourceEndpoints +
                      (i < node_budget % kSourceEndpoints ? 1 : 0);
    if (share > 0) shares.push_back(share);
  }
  std::vector<std::unique_ptr<net::GeoTransfer>> transfers;
  std::vector<sched::MultiPathPlan> current_plans;
  for (std::size_t i = 0; i < shares.size(); ++i) {
    current_plans.push_back(make_plan(shares[i]));
    transfers.push_back(std::make_unique<net::GeoTransfer>(
        provider, Bytes::gb(100),
        lanes_for(pool, current_plans.back(), static_cast<int>(i)), config,
        [](const net::TransferResult&) {}));
    transfers.back()->start();
  }

  RunSeries out;
  const SimTime began = world.engine.now();
  std::vector<int> rotation(transfers.size(), 0);
  std::vector<Bytes> prev_total(transfers.size());
  std::vector<std::vector<Bytes>> prev_lane_bytes(transfers.size());
  for (int minute = 1; minute <= minutes; ++minute) {
    world.run_for(SimDuration::minutes(1));
    const double elapsed_s = (world.engine.now() - began).to_seconds();
    double delivered_mb = 0.0;
    for (const auto& t : transfers) delivered_mb += t->delivered().to_mb();
    out.cumulative_mbps.push_back(delivered_mb / elapsed_s);
    const bool adaptive = strategy == Strategy::kDynamic || strategy == Strategy::kSage;
    if (adaptive) {
      for (std::size_t i = 0; i < transfers.size(); ++i) {
        if (transfers[i]->finished()) continue;
        // (1) Node-level health: a lane delivering far below its siblings
        // since the last check sits on a degraded VM; replace the node set
        // (the DM's "detect performance drops and replace" loop).
        const auto& lane_bytes = transfers[i]->lane_bytes();
        bool sick_lane = false;
        if (prev_lane_bytes[i].size() == lane_bytes.size() && lane_bytes.size() > 1) {
          double mean_delta = 0.0;
          std::vector<double> deltas;
          for (std::size_t l = 0; l < lane_bytes.size(); ++l) {
            const double d = (lane_bytes[l] - prev_lane_bytes[i][l]).to_mb();
            deltas.push_back(d);
            mean_delta += d;
          }
          mean_delta /= static_cast<double>(deltas.size());
          for (double d : deltas) {
            if (mean_delta > 1.0 && d < 0.6 * mean_delta) sick_lane = true;
          }
        }
        // (2) Map-level: the fresh snapshot changed the plan itself.
        const auto plan = make_plan(shares[i]);
        const bool plan_changed =
            !plan.empty() && !sched::MultiPathPlanner::same_plan(plan, current_plans[i]);
        if (sick_lane || plan_changed) {
          if (sick_lane) ++rotation[i];
          const auto& next = plan.empty() ? current_plans[i] : plan;
          transfers[i]->reset_lanes(
              lanes_for(pool, next, static_cast<int>(i), rotation[i]));
          if (!plan.empty()) current_plans[i] = plan;
          prev_lane_bytes[i].clear();
          continue;
        }
        prev_lane_bytes[i] = lane_bytes;
      }
    }
  }
  out.final_mbps = out.cumulative_mbps.empty() ? 0.0 : out.cumulative_mbps.back();
  for (auto& t : transfers) t->cancel();
  return out;
}

void part_a() {
  print_note("(a) cumulative throughput over time, 25 nodes (MB/s):");
  std::vector<std::string> headers = {"Minute"};
  const Strategy all[] = {Strategy::kDirect, Strategy::kStatic, Strategy::kDynamic,
                          Strategy::kSage};
  std::vector<RunSeries> series;
  for (Strategy s : all) {
    headers.emplace_back(strategy_name(s));
    series.push_back(run_strategy(s, 25, /*seed=*/91));
  }
  TextTable t(headers);
  for (std::size_t minute = 0; minute < 10; ++minute) {
    std::vector<std::string> row = {std::to_string(minute + 1)};
    for (const RunSeries& s : series) {
      row.push_back(minute < s.cumulative_mbps.size()
                        ? TextTable::num(s.cumulative_mbps[minute], 2)
                        : "-");
    }
    t.add_row(row);
  }
  print_table(t);
}

void part_b() {
  print_note("\n(b) 10-minute throughput vs node budget (MB/s):");
  std::vector<std::string> headers = {"Nodes"};
  const Strategy all[] = {Strategy::kDirect, Strategy::kStatic, Strategy::kDynamic,
                          Strategy::kSage};
  for (Strategy s : all) headers.emplace_back(strategy_name(s));
  TextTable t(headers);
  for (int nodes : {5, 10, 15, 20, 25}) {
    std::vector<std::string> row = {std::to_string(nodes)};
    for (Strategy s : all) {
      row.push_back(TextTable::num(run_strategy(s, nodes, /*seed=*/92).final_mbps, 2));
    }
    t.add_row(row);
  }
  print_table(t);
  print_note(
      "\nShape check: with few nodes the strategies are nearly "
      "indistinguishable (one path absorbs the whole budget); as the budget "
      "grows, the single-path strategies saturate their one route while "
      "SAGE's multi-path placement keeps adding capacity (~2x at 25 nodes). "
      "Dynamic equals static whenever the window stays quiet — its "
      "node-replacement and re-routing only fire when a lane degrades or "
      "the map's widest path actually moves (the failure-injection tests "
      "exercise those paths deterministically).");
}

}  // namespace
}  // namespace sage::bench

int main() {
  sage::bench::print_header("Fig 9", "Multi-datacenter path strategies (NEU -> NUS)");
  sage::bench::part_a();
  sage::bench::part_b();
  return 0;
}
