// Fig 6 — The cost/time tradeoff of multi-VM transfers.
//
// 1 GB from North EU to North US with 1..10 sender VMs: for each
// configuration the bench reports the *measured* transfer time and the
// *billed* cost (VM-seconds actually held + egress), next to the model's
// predictions, and marks the knee the tradeoff solver picks. Because VMs
// are billed for the (shrinking) duration of the transfer, cost grows far
// slower than linearly — using 3-5 VMs buys large time savings almost for
// free, the paper's central cost observation.
#include "bench_util.hpp"
#include "model/cost_model.hpp"
#include "model/tradeoff.hpp"
#include "net/transfer.hpp"

namespace sage::bench {
namespace {

struct Outcome {
  SimDuration time;
  Money cost;
};

Outcome run_one(int vms, std::uint64_t seed) {
  World world(seed);
  auto& provider = *world.provider;
  // Billing accrues with held time, so a snapshot at the (single) provision
  // instant is zero regardless of how many VMs exist yet.
  const cloud::CostReport before = provider.cost_report();
  const LaneFan fan = provision_fan(provider, cloud::Region::kNorthEU,
                                    cloud::Region::kNorthUS, vms);

  net::TransferConfig config;
  config.streams_per_hop = 1;  // isolate the node-count effect
  Outcome out;
  out.time = run_transfer(world, Bytes::gb(1), fan.lanes, config).elapsed();

  // Release everything at completion: the bill reflects exactly the
  // transfer's resource-holding.
  provider.release_all();
  out.cost = (provider.cost_report() - before).total();
  return out;
}

struct Cell {
  int vms = 0;
  std::uint64_t seed = 0;
};

void run(BenchContext& ctx) {
  // Model predictions for the same sweep.
  model::CostModel model(cloud::PricingModel{}, model::ModelParams{});
  model::TradeoffSolver solver(model);
  model::TradeoffInputs inputs;
  inputs.size = Bytes::gb(1);
  inputs.link = monitor::LinkEstimate{2.7, 0.3, 50};
  inputs.src = cloud::Region::kNorthEU;
  inputs.dst = cloud::Region::kNorthUS;
  inputs.max_nodes = 10;
  const auto frontier = solver.frontier(inputs);
  const auto knee = solver.knee(inputs);

  // Measure each configuration across three seeds (cloud variability is
  // real; the bill curve's minimum should not be a one-seed artifact).
  const int max_vms = ctx.smoke() ? 3 : 10;
  const std::vector<std::uint64_t> seeds =
      ctx.smoke() ? std::vector<std::uint64_t>{66} : std::vector<std::uint64_t>{66, 67, 68};
  std::vector<Cell> grid;
  for (int vms = 1; vms <= max_vms; ++vms) {
    for (std::uint64_t seed : seeds) grid.push_back({vms, seed});
  }
  const auto runs =
      ctx.sweep("tradeoff", grid, [](const Cell& c) { return run_one(c.vms, c.seed); });

  std::array<Outcome, 10> measured;
  int min_bill_vms = 1;
  for (int vms = 1; vms <= max_vms; ++vms) {
    double time_s = 0.0;
    double cost_usd = 0.0;
    for (std::size_t i = 0; i < grid.size(); ++i) {
      if (grid[i].vms != vms) continue;
      time_s += runs[i].time.to_seconds();
      cost_usd += runs[i].cost.to_usd();
    }
    const double n = static_cast<double>(seeds.size());
    measured[static_cast<std::size_t>(vms - 1)] =
        Outcome{SimDuration::seconds(time_s / n), Money::usd(cost_usd / n)};
    if (measured[static_cast<std::size_t>(vms - 1)].cost <
        measured[static_cast<std::size_t>(min_bill_vms - 1)].cost) {
      min_bill_vms = vms;
    }
  }

  TextTable t({"VMs", "Measured time s", "Billed cost $", "Predicted time s",
               "Predicted cost $", ""});
  for (int vms = 1; vms <= max_vms; ++vms) {
    const Outcome& o = measured[static_cast<std::size_t>(vms - 1)];
    const auto& est = frontier[static_cast<std::size_t>(vms - 1)];
    std::string marker;
    if (vms == knee.nodes) marker += "<- model knee ";
    if (vms == min_bill_vms) marker += "<- min bill";
    t.add_row({std::to_string(vms), TextTable::num(o.time.to_seconds(), 0),
               TextTable::num(o.cost.to_usd(), 4),
               TextTable::num(est.time.to_seconds(), 0),
               TextTable::num(est.total_cost().to_usd(), 4), marker});
  }
  print_table(t);
  print_note(
      "\nShape check: time falls steeply up to ~5 VMs then flattens (per-path "
      "and NIC saturation). Because every VM is billed only for the "
      "(shrinking) transfer duration, the measured bill *decreases* through "
      "the mid-range — smaller transfer times reflect on smaller costs — and "
      "turns back up once time has flattened, putting the best-bill point in "
      "the 5-9 VM band; the model's conservative knee marks where it stops "
      "recommending more nodes on prediction alone.");
}

}  // namespace
}  // namespace sage::bench

int main(int argc, char** argv) {
  sage::bench::BenchContext ctx(argc, argv, "fig6_cost_tradeoff", "Fig 6",
                                "Cost/time tradeoff vs VM count (1 GB, NEU -> NUS)");
  sage::bench::run(ctx);
  return ctx.finish();
}
