// Fig 6 — The cost/time tradeoff of multi-VM transfers.
//
// 1 GB from North EU to North US with 1..10 sender VMs: for each
// configuration the bench reports the *measured* transfer time and the
// *billed* cost (VM-seconds actually held + egress), next to the model's
// predictions, and marks the knee the tradeoff solver picks. Because VMs
// are billed for the (shrinking) duration of the transfer, cost grows far
// slower than linearly — using 3-5 VMs buys large time savings almost for
// free, the paper's central cost observation.
#include "bench_util.hpp"
#include "model/cost_model.hpp"
#include "model/tradeoff.hpp"
#include "net/transfer.hpp"

namespace sage::bench {
namespace {

struct Outcome {
  SimDuration time;
  Money cost;
};

Outcome run_one(int vms, std::uint64_t seed) {
  World world(seed);
  auto& provider = *world.provider;
  // Billing accrues with held time, so a snapshot at the (single) provision
  // instant is zero regardless of how many VMs exist yet.
  const cloud::CostReport before = provider.cost_report();
  const LaneFan fan = provision_fan(provider, cloud::Region::kNorthEU,
                                    cloud::Region::kNorthUS, vms);

  net::TransferConfig config;
  config.streams_per_hop = 1;  // isolate the node-count effect
  Outcome out;
  const net::TransferResult result = run_transfer(world, Bytes::gb(1), fan.lanes, config);
  out.time = result.elapsed();
  harness::report_task_records(static_cast<std::uint64_t>(result.stats.chunks_delivered));

  // Release everything at completion: the bill reflects exactly the
  // transfer's resource-holding.
  provider.release_all();
  out.cost = (provider.cost_report() - before).total();
  return out;
}

struct Cell {
  int vms = 0;
  std::uint64_t seed = 0;
};

// ---------------------------------------------------------------------------
// Sharded scenario mode (--shards N / SAGE_PAR_SHARDS=N): the same cost/time
// question asked through the *full control plane* — monitoring, tradeoff
// solver, multipath planner, adaptive transfer — running region-sharded on
// sim::ShardedSimEngine (core::ShardedSage). The stable topology plus
// shard-local lanes make every printed value shard-count invariant, so CI
// diffs S=1 vs S=4; only the wall clock changes with S.

struct ShardedCell {
  double lambda = 0.0;
};

struct ShardedOutcome {
  bool ok = false;
  SimDuration time;
  int nodes = 0;
  int lanes = 0;
  SimDuration predicted_time;
  Money predicted_cost;
  std::uint64_t chunks = 0;
  bool epochs_ok = false;
};

ShardedOutcome run_one_sharded(const ShardedCell& c, int shards) {
  SageDeployOptions opts;
  opts.regions = cloud::stable_topology().regions();
  auto sage = deploy_sharded_sage(
      std::make_shared<const cloud::Topology>(cloud::stable_topology()), 66, opts,
      shards);

  model::Tradeoff tradeoff;
  tradeoff.lambda = c.lambda;
  const stream::SendOutcome out = sharded_send_blocking(
      *sage, cloud::Region::kNorthEU, cloud::Region::kNorthUS, Bytes::gb(1), tradeoff);

  ShardedOutcome r;
  r.ok = out.ok;
  r.time = out.elapsed;
  const core::SageEngine& owner = sage->lane(sage->lane_of(cloud::Region::kNorthEU));
  const core::SendRecord& rec = owner.history().back();
  if (rec.estimate) {
    r.nodes = rec.estimate->nodes;
    r.predicted_time = rec.estimate->time;
    r.predicted_cost = rec.estimate->total_cost();
  }
  r.lanes = rec.lanes_used;
  r.chunks = static_cast<std::uint64_t>(rec.stats.chunks_delivered);
  r.epochs_ok = sage->epochs_consistent();
  harness::report_task_records(r.chunks);
  harness::report_task_shards(shards);
  return r;
}

void run_sharded(BenchContext& ctx, int shards) {
  const std::vector<ShardedCell> grid =
      ctx.smoke() ? std::vector<ShardedCell>{{0.0}, {0.5}, {1.0}}
                  : std::vector<ShardedCell>{{0.0}, {0.25}, {0.5}, {0.75}, {1.0}};
  const auto results = ctx.sweep("tradeoff-sharded", grid, [shards](const ShardedCell& c) {
    return run_one_sharded(c, shards);
  });

  TextTable t({"Lambda", "ok", "Measured time s", "Plan nodes", "Lanes",
               "Predicted time s", "Predicted cost $", "Chunks", "Epochs"});
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const ShardedOutcome& r = results[i];
    t.add_row({TextTable::num(grid[i].lambda, 2), r.ok ? "yes" : "no",
               TextTable::num(r.time.to_seconds(), 1), std::to_string(r.nodes),
               std::to_string(r.lanes), TextTable::num(r.predicted_time.to_seconds(), 1),
               TextTable::num(r.predicted_cost.to_usd(), 4), std::to_string(r.chunks),
               r.epochs_ok ? "lock-step" : "DIVERGED"});
  }
  print_table(t);
  print_note(
      "\nSharded scenario mode (stable topology, full control plane on the "
      "region-sharded engine): monitoring samples fan out to every lane at a "
      "uniform report delay, transfers run shard-local lanes with ephemeral "
      "endpoints, and per-lane sample epochs stay in lock-step — so every "
      "value above is shard-count and worker-count invariant. CI diffs S=1 "
      "vs S=4; the wall clock (--json) is where S shows up.");
}

void run(BenchContext& ctx) {
  if (ctx.shards() > 0) {
    run_sharded(ctx, ctx.shards());
    return;
  }
  // Model predictions for the same sweep.
  model::CostModel model(cloud::PricingModel{}, model::ModelParams{});
  model::TradeoffSolver solver(model);
  model::TradeoffInputs inputs;
  inputs.size = Bytes::gb(1);
  inputs.link = monitor::LinkEstimate{2.7, 0.3, 50};
  inputs.src = cloud::Region::kNorthEU;
  inputs.dst = cloud::Region::kNorthUS;
  inputs.max_nodes = 10;
  const auto frontier = solver.frontier(inputs);
  const auto knee = solver.knee(inputs);

  // Measure each configuration across three seeds (cloud variability is
  // real; the bill curve's minimum should not be a one-seed artifact).
  const int max_vms = ctx.smoke() ? 3 : 10;
  const std::vector<std::uint64_t> seeds =
      ctx.smoke() ? std::vector<std::uint64_t>{66} : std::vector<std::uint64_t>{66, 67, 68};
  std::vector<Cell> grid;
  for (int vms = 1; vms <= max_vms; ++vms) {
    for (std::uint64_t seed : seeds) grid.push_back({vms, seed});
  }
  const auto runs =
      ctx.sweep("tradeoff", grid, [](const Cell& c) { return run_one(c.vms, c.seed); });

  std::array<Outcome, 10> measured;
  int min_bill_vms = 1;
  for (int vms = 1; vms <= max_vms; ++vms) {
    double time_s = 0.0;
    double cost_usd = 0.0;
    for (std::size_t i = 0; i < grid.size(); ++i) {
      if (grid[i].vms != vms) continue;
      time_s += runs[i].time.to_seconds();
      cost_usd += runs[i].cost.to_usd();
    }
    const double n = static_cast<double>(seeds.size());
    measured[static_cast<std::size_t>(vms - 1)] =
        Outcome{SimDuration::seconds(time_s / n), Money::usd(cost_usd / n)};
    if (measured[static_cast<std::size_t>(vms - 1)].cost <
        measured[static_cast<std::size_t>(min_bill_vms - 1)].cost) {
      min_bill_vms = vms;
    }
  }

  TextTable t({"VMs", "Measured time s", "Billed cost $", "Predicted time s",
               "Predicted cost $", ""});
  for (int vms = 1; vms <= max_vms; ++vms) {
    const Outcome& o = measured[static_cast<std::size_t>(vms - 1)];
    const auto& est = frontier[static_cast<std::size_t>(vms - 1)];
    std::string marker;
    if (vms == knee.nodes) marker += "<- model knee ";
    if (vms == min_bill_vms) marker += "<- min bill";
    t.add_row({std::to_string(vms), TextTable::num(o.time.to_seconds(), 0),
               TextTable::num(o.cost.to_usd(), 4),
               TextTable::num(est.time.to_seconds(), 0),
               TextTable::num(est.total_cost().to_usd(), 4), marker});
  }
  print_table(t);
  print_note(
      "\nShape check: time falls steeply up to ~5 VMs then flattens (per-path "
      "and NIC saturation). Because every VM is billed only for the "
      "(shrinking) transfer duration, the measured bill *decreases* through "
      "the mid-range — smaller transfer times reflect on smaller costs — and "
      "turns back up once time has flattened, putting the best-bill point in "
      "the 5-9 VM band; the model's conservative knee marks where it stops "
      "recommending more nodes on prediction alone.");
}

}  // namespace
}  // namespace sage::bench

int main(int argc, char** argv) {
  sage::bench::BenchContext ctx(argc, argv, "fig6_cost_tradeoff", "Fig 6",
                                "Cost/time tradeoff vs VM count (1 GB, NEU -> NUS)");
  sage::bench::run(ctx);
  return ctx.finish();
}
