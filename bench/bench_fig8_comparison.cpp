// Fig 8 — SAGE vs the existing transfer options.
//
// Transfer time NEU -> NUS as the payload grows, for:
//   * BlobRelay     — the stock cloud offering (write to the destination
//                     region's object store, read back);
//   * Direct        — endpoint-to-endpoint, single stream;
//   * GlobusStatic  — GridFTP-style parallel streams, tuned once, no
//                     cloud awareness;
//   * SAGE          — monitored, modelled, multi-lane/multi-path engine.
#include "baselines/backends.hpp"
#include "bench_util.hpp"
#include "core/sage.hpp"

namespace sage::bench {
namespace {

constexpr cloud::Region kSrc = cloud::Region::kNorthEU;
constexpr cloud::Region kDst = cloud::Region::kNorthUS;

SimDuration run_baseline(const std::function<std::unique_ptr<stream::TransferBackend>(
                             baselines::GatewayPool&)>& make,
                         Bytes size, std::uint64_t seed) {
  World world(seed);
  baselines::GatewayPool pool(*world.provider);
  auto backend = make(pool);
  return send_blocking(world, *backend, kSrc, kDst, size).elapsed;
}

SimDuration run_sage(Bytes size, std::uint64_t seed) {
  World world(seed);
  core::SageConfig config;
  config.regions = {cloud::Region::kNorthEU, cloud::Region::kWestEU,
                    cloud::Region::kEastUS, cloud::Region::kNorthUS};
  config.monitoring.probe_interval = SimDuration::minutes(1);
  core::SageEngine engine(*world.provider, config);
  engine.deploy();
  world.run_for(SimDuration::minutes(10));
  return send_blocking(world, engine, kSrc, kDst, size).elapsed;
}

void run() {
  TextTable t({"Size", "BlobRelay s", "Direct s", "GlobusStatic s", "SAGE s",
               "Blob/SAGE", "Globus/SAGE"});
  for (double mb : {64.0, 256.0, 1024.0, 4096.0}) {
    const Bytes size = Bytes::mb(mb);
    const std::uint64_t seed = 88;
    const SimDuration blob = run_baseline(
        [](baselines::GatewayPool& pool) {
          return std::make_unique<baselines::BlobRelayBackend>(pool);
        },
        size, seed);
    const SimDuration direct = run_baseline(
        [](baselines::GatewayPool& pool) {
          net::TransferConfig config;
          config.streams_per_hop = 1;
          return std::make_unique<baselines::DirectBackend>(pool, config);
        },
        size, seed);
    const SimDuration globus = run_baseline(
        [](baselines::GatewayPool& pool) {
          return std::make_unique<baselines::GlobusStaticBackend>(pool, 3);
        },
        size, seed);
    const SimDuration sage_t = run_sage(size, seed);
    t.add_row({to_string(size), TextTable::num(blob.to_seconds(), 0),
               TextTable::num(direct.to_seconds(), 0),
               TextTable::num(globus.to_seconds(), 0),
               TextTable::num(sage_t.to_seconds(), 0),
               TextTable::num(blob / sage_t, 1), TextTable::num(globus / sage_t, 2)});
  }
  print_table(t);
  print_note(
      "\nShape check: BlobRelay is slowest at every size (two serialized "
      "HTTP-fronted staging phases), ~9x SAGE at 1 GB+; Direct sits "
      "between; GlobusStatic closes much of the gap through parallel "
      "streams, but SAGE's extra lanes and alternative paths keep a ~2x "
      "edge from 256 MB up.");
}

}  // namespace
}  // namespace sage::bench

int main() {
  sage::bench::print_header("Fig 8", "Transfer time vs data size across systems (NEU -> NUS)");
  sage::bench::run();
  return 0;
}
