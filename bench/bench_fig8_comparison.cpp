// Fig 8 — SAGE vs the existing transfer options.
//
// Transfer time NEU -> NUS as the payload grows, for:
//   * BlobRelay     — the stock cloud offering (write to the destination
//                     region's object store, read back);
//   * Direct        — endpoint-to-endpoint, single stream;
//   * GlobusStatic  — GridFTP-style parallel streams, tuned once, no
//                     cloud awareness;
//   * SAGE          — monitored, modelled, multi-lane/multi-path engine.
#include "baselines/backends.hpp"
#include "bench_util.hpp"
#include "core/sage.hpp"

namespace sage::bench {
namespace {

constexpr cloud::Region kSrc = cloud::Region::kNorthEU;
constexpr cloud::Region kDst = cloud::Region::kNorthUS;

SimDuration run_baseline(const std::function<std::unique_ptr<stream::TransferBackend>(
                             baselines::GatewayPool&)>& make,
                         Bytes size, std::uint64_t seed) {
  World world(seed);
  baselines::GatewayPool pool(*world.provider);
  auto backend = make(pool);
  return send_blocking(world, *backend, kSrc, kDst, size).elapsed;
}

SimDuration run_sage(Bytes size, std::uint64_t seed) {
  World world(seed);
  SageDeployOptions deploy;
  deploy.regions = {cloud::Region::kNorthEU, cloud::Region::kWestEU,
                    cloud::Region::kEastUS, cloud::Region::kNorthUS};
  auto engine = deploy_sage(world, deploy);
  return send_blocking(world, *engine, kSrc, kDst, size).elapsed;
}

enum class System { kBlob, kDirect, kGlobus, kSage };

struct Cell {
  double mb = 0.0;
  System system = System::kBlob;
};

SimDuration run_cell(const Cell& c) {
  const Bytes size = Bytes::mb(c.mb);
  const std::uint64_t seed = 88;
  switch (c.system) {
    case System::kBlob:
      return run_baseline(
          [](baselines::GatewayPool& pool) {
            return std::make_unique<baselines::BlobRelayBackend>(pool);
          },
          size, seed);
    case System::kDirect:
      return run_baseline(
          [](baselines::GatewayPool& pool) {
            net::TransferConfig config;
            config.streams_per_hop = 1;
            return std::make_unique<baselines::DirectBackend>(pool, config);
          },
          size, seed);
    case System::kGlobus:
      return run_baseline(
          [](baselines::GatewayPool& pool) {
            return std::make_unique<baselines::GlobusStaticBackend>(pool, 3);
          },
          size, seed);
    case System::kSage: return run_sage(size, seed);
  }
  return SimDuration::zero();
}

void run(BenchContext& ctx) {
  const std::vector<double> sizes = ctx.smoke()
                                        ? std::vector<double>{64.0, 256.0}
                                        : std::vector<double>{64.0, 256.0, 1024.0, 4096.0};
  const System systems[] = {System::kBlob, System::kDirect, System::kGlobus,
                            System::kSage};
  std::vector<Cell> grid;
  for (double mb : sizes) {
    for (System system : systems) grid.push_back({mb, system});
  }
  const auto times = ctx.sweep("comparison", grid, run_cell);

  TextTable t({"Size", "BlobRelay s", "Direct s", "GlobusStatic s", "SAGE s",
               "Blob/SAGE", "Globus/SAGE"});
  for (std::size_t i = 0; i < grid.size(); i += 4) {
    const Bytes size = Bytes::mb(grid[i].mb);
    const SimDuration blob = times[i];
    const SimDuration direct = times[i + 1];
    const SimDuration globus = times[i + 2];
    const SimDuration sage_t = times[i + 3];
    t.add_row({to_string(size), TextTable::num(blob.to_seconds(), 0),
               TextTable::num(direct.to_seconds(), 0),
               TextTable::num(globus.to_seconds(), 0),
               TextTable::num(sage_t.to_seconds(), 0),
               TextTable::num(blob / sage_t, 1), TextTable::num(globus / sage_t, 2)});
  }
  print_table(t);
  print_note(
      "\nShape check: BlobRelay is slowest at every size (two serialized "
      "HTTP-fronted staging phases), ~9x SAGE at 1 GB+; Direct sits "
      "between; GlobusStatic closes much of the gap through parallel "
      "streams, but SAGE's extra lanes and alternative paths keep a ~2x "
      "edge from 256 MB up.");
}

}  // namespace
}  // namespace sage::bench

int main(int argc, char** argv) {
  sage::bench::BenchContext ctx(argc, argv, "fig8_comparison", "Fig 8",
                                "Transfer time vs data size across systems (NEU -> NUS)");
  sage::bench::run(ctx);
  return ctx.finish();
}
