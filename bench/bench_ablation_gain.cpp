// Ablation B — Calibrating the parallel-gain parameter.
//
// The transfer-time law Tt(n) = T1 / (1 + (n-1)·gain) has a single free
// parameter. This bench measures the *actual* multi-VM speedup on the
// fabric (1 GB, NEU -> NUS, 1..8 sender VMs, stable topology so the law is
// isolated from noise) and reports, for each candidate gain value, the
// model's fit error — showing both the calibrated optimum and the
// sensitivity of the model to mis-calibration.
#include <cmath>

#include "bench_util.hpp"
#include "net/transfer.hpp"

namespace sage::bench {
namespace {

double measured_time(int vms) {
  World world(/*seed=*/7, /*stable=*/true);
  const LaneFan fan = provision_fan(*world.provider, cloud::Region::kNorthEU,
                                    cloud::Region::kNorthUS, vms);
  net::TransferConfig config;
  config.streams_per_hop = 1;
  return run_transfer(world, Bytes::gb(1), fan.lanes, config).elapsed().to_seconds();
}

void run(BenchContext& ctx) {
  const int max_vms = ctx.smoke() ? 3 : 8;
  std::vector<int> vm_grid;
  for (int n = 1; n <= max_vms; ++n) vm_grid.push_back(n);
  const std::vector<double> measured =
      ctx.sweep("gain", vm_grid, [](const int& n) { return measured_time(n); });

  print_note("Measured speedup (stable fabric):");
  TextTable m({"VMs", "Time s", "Speedup"});
  for (int n = 1; n <= max_vms; ++n) {
    m.add_row({std::to_string(n),
               TextTable::num(measured[static_cast<std::size_t>(n - 1)], 0),
               TextTable::num(measured[0] / measured[static_cast<std::size_t>(n - 1)], 2)});
  }
  print_table(m);

  print_note("\nModel fit error by gain parameter:");
  TextTable t({"gain", "Mean |Tt error| %", ""});
  double best_err = 1e300;
  double best_gain = 0.0;
  std::vector<std::pair<double, double>> rows;
  for (double gain = 0.1; gain < 0.95; gain += 0.1) {
    double err = 0.0;
    for (int n = 2; n <= max_vms; ++n) {
      const double predicted =
          measured[0] / (1.0 + static_cast<double>(n - 1) * gain);
      const double actual = measured[static_cast<std::size_t>(n - 1)];
      err += std::abs(predicted - actual) / actual;
    }
    err = err / (max_vms - 1) * 100.0;
    rows.emplace_back(gain, err);
    if (err < best_err) {
      best_err = err;
      best_gain = gain;
    }
  }
  for (const auto& [gain, err] : rows) {
    t.add_row({TextTable::num(gain, 1), TextTable::num(err, 1),
               gain == best_gain ? "<- best fit" : ""});
  }
  print_table(t);
  print_note(
      "\nShape check: speedup is near-linear until it hits the NIC/per-flow "
      "ceiling (~4.5x), a shape the single-parameter law can only "
      "approximate — the unconstrained best fit therefore lands high "
      "(0.8-0.9). The shipped default (0.65) deliberately under-promises: "
      "for budget/deadline guarantees, a conservative speedup estimate "
      "errs on the safe side, at roughly 20 percent fit cost.");
}

}  // namespace
}  // namespace sage::bench

int main(int argc, char** argv) {
  sage::bench::BenchContext ctx(argc, argv, "ablation_gain", "Ablation B",
                                "Parallel-gain calibration against the fabric");
  sage::bench::run(ctx);
  return ctx.finish();
}
