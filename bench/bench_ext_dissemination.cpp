// Extension D — Adaptive dissemination (one-to-many replication).
//
// Replicating a dataset from North EU to the five other datacenters:
//   * parallel unicast — the source ships every copy itself (its NIC and
//     its WAN links carry 5x the data);
//   * SAGE dissemination tree — the widest spanning tree over the
//     monitored map; already-served sites re-send over their own links
//     (store-and-forward), so the load spreads across the deployment.
// Reported per dataset size: completion of the LAST site, the median site,
// and the tree the planner chose.
#include "bench_util.hpp"
#include "core/sage.hpp"
#include "sched/broadcast.hpp"

namespace sage::bench {
namespace {

constexpr cloud::Region kSrc = cloud::Region::kNorthEU;

const std::vector<cloud::Region> kTargets = {
    cloud::Region::kWestEU, cloud::Region::kNorthUS, cloud::Region::kSouthUS,
    cloud::Region::kEastUS, cloud::Region::kWestUS};

std::unique_ptr<core::SageEngine> deployed_engine(World& world) {
  SageDeployOptions deploy;
  deploy.regions = kTargets;
  deploy.regions.push_back(kSrc);
  deploy.helpers_per_region = 3;
  deploy.warmup = SimDuration::minutes(12);
  return deploy_sage(world, deploy);
}

struct Outcome {
  double last_s = 0.0;
  double median_s = 0.0;
};

Outcome run_tree(Bytes size, std::uint64_t seed) {
  World world(seed);
  auto engine = deployed_engine(world);
  Outcome out;
  bool done = false;
  engine->disseminate(kSrc, kTargets, size,
                      [&](const core::SageEngine::DisseminateResult& r) {
                        out.last_s = r.elapsed.to_seconds();
                        std::vector<double> times;
                        for (const auto& [region, at] : r.arrivals) {
                          times.push_back(at.to_seconds());
                        }
                        std::sort(times.begin(), times.end());
                        out.median_s = times[times.size() / 2];
                        done = true;
                      });
  world.run_until([&] { return done; }, SimDuration::days(2));
  return out;
}

Outcome run_unicast(Bytes size, std::uint64_t seed) {
  World world(seed);
  auto engine = deployed_engine(world);
  Outcome out;
  int pending = static_cast<int>(kTargets.size());
  std::vector<double> times;
  const SimTime began = world.engine.now();
  for (cloud::Region t : kTargets) {
    engine->send(kSrc, t, size, [&](const stream::SendOutcome& o) {
      times.push_back((world.engine.now() - began).to_seconds());
      if (--pending == 0) {
        std::sort(times.begin(), times.end());
        out.last_s = times.back();
        out.median_s = times[times.size() / 2];
      }
      (void)o;
    });
  }
  world.run_until([&] { return pending == 0; }, SimDuration::days(2));
  return out;
}

struct Cell {
  enum class Kind { kPlan, kUnicast, kTree } kind = Kind::kPlan;
  double mb = 0.0;
};

struct CellResult {
  Outcome outcome;
  std::vector<std::pair<std::string, std::string>> tree_rows;
};

CellResult run_cell(const Cell& c) {
  CellResult out;
  switch (c.kind) {
    case Cell::Kind::kPlan: {
      // Show the tree the planner builds on a warmed map.
      World world(/*seed=*/123);
      auto engine = deployed_engine(world);
      const auto tree =
          sched::widest_tree(engine->monitoring().snapshot(), kSrc, kTargets);
      for (const auto& e : tree.edges) {
        out.tree_rows.emplace_back(std::string(cloud::region_code(e.from)) + " -> " +
                                       std::string(cloud::region_code(e.to)),
                                   TextTable::num(e.mbps, 2));
      }
      break;
    }
    case Cell::Kind::kUnicast:
      out.outcome = run_unicast(Bytes::mb(c.mb), /*seed=*/123);
      break;
    case Cell::Kind::kTree:
      out.outcome = run_tree(Bytes::mb(c.mb), /*seed=*/123);
      break;
  }
  return out;
}

void run(BenchContext& ctx) {
  const std::vector<double> sizes =
      ctx.smoke() ? std::vector<double>{256.0} : std::vector<double>{256.0, 1024.0};
  std::vector<Cell> grid;
  grid.push_back({Cell::Kind::kPlan, 0.0});
  for (double mb : sizes) {
    grid.push_back({Cell::Kind::kUnicast, mb});
    grid.push_back({Cell::Kind::kTree, mb});
  }
  const auto results = ctx.sweep("dissemination", grid, run_cell);

  print_note("Planned dissemination tree (warmed map):");
  TextTable plan({"Edge", "Estimated MB/s"});
  for (const auto& [edge, mbps] : results[0].tree_rows) plan.add_row({edge, mbps});
  print_table(plan);

  TextTable t({"Size", "Unicast last s", "Unicast median s", "Tree last s",
               "Tree median s", "Speedup (last)"});
  for (std::size_t i = 1; i < grid.size(); i += 2) {
    const Bytes size = Bytes::mb(grid[i].mb);
    const Outcome& uni = results[i].outcome;
    const Outcome& tree = results[i + 1].outcome;
    t.add_row({to_string(size), TextTable::num(uni.last_s, 0),
               TextTable::num(uni.median_s, 0), TextTable::num(tree.last_s, 0),
               TextTable::num(tree.median_s, 0),
               TextTable::num(uni.last_s / tree.last_s, 2)});
  }
  print_table(t);
  print_note(
      "\nShape check: unicast's five copies all squeeze through the source's "
      "NIC and WAN links, so its completion grows with the fan-out; the tree "
      "hands continental distribution to already-served sites (e.g. one "
      "transatlantic crossing feeds all four US sites region-locally) and "
      "finishes the last site substantially sooner.");
}

}  // namespace
}  // namespace sage::bench

int main(int argc, char** argv) {
  sage::bench::BenchContext ctx(argc, argv, "ext_dissemination", "Ext D",
                                "Adaptive dissemination: widest tree vs parallel unicast");
  sage::bench::run(ctx);
  return ctx.finish();
}
