// Shared scaffolding for the experiment harness.
//
// Every bench binary regenerates one table or figure of the (reconstructed)
// SAGE evaluation: it builds a fresh simulated world with a fixed seed,
// runs the experiment on virtual time, and prints the series the paper
// would plot. Absolute values are simulator-calibrated, not Azure-measured;
// EXPERIMENTS.md records the expected *shapes* and the measured outcomes.
#pragma once

#include <cstdio>
#include <functional>
#include <memory>
#include <string>

#include "cloud/provider.hpp"
#include "cloud/topology.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "simcore/engine.hpp"
#include "stream/backend.hpp"

namespace sage::bench {

/// A self-contained simulation world for one experiment run.
struct World {
  sim::SimEngine engine;
  std::unique_ptr<cloud::CloudProvider> provider;

  explicit World(std::uint64_t seed, bool stable = false) {
    provider = std::make_unique<cloud::CloudProvider>(
        engine, stable ? cloud::stable_topology() : cloud::default_topology(), seed);
  }

  void run_for(SimDuration d) { engine.run_until(engine.now() + d); }

  /// Drive until `pred` holds (or the budget elapses; returns false then).
  bool run_until(const std::function<bool()>& pred,
                 SimDuration budget = SimDuration::days(2)) {
    const SimTime deadline = engine.now() + budget;
    while (!pred()) {
      if (engine.now() >= deadline) return false;
      if (!engine.step()) return false;
    }
    return true;
  }
};

/// Blocking send through any TransferBackend; returns the outcome.
inline stream::SendOutcome send_blocking(World& world, stream::TransferBackend& backend,
                                         cloud::Region src, cloud::Region dst,
                                         Bytes size) {
  stream::SendOutcome out{};
  bool done = false;
  backend.send(src, dst, size, [&](const stream::SendOutcome& o) {
    out = o;
    done = true;
  });
  world.run_until([&] { return done; });
  return out;
}

inline void print_header(const std::string& id, const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", id.c_str(), title.c_str());
  std::printf("================================================================\n");
}

inline void print_note(const std::string& note) { std::printf("%s\n", note.c_str()); }

inline void print_table(const TextTable& table) {
  std::printf("%s", table.render().c_str());
}

}  // namespace sage::bench
