// Shared scaffolding for the experiment harness.
//
// Every bench binary regenerates one table or figure of the (reconstructed)
// SAGE evaluation: it builds a fresh simulated world with a fixed seed,
// runs the experiment on virtual time, and prints the series the paper
// would plot. Absolute values are simulator-calibrated, not Azure-measured;
// EXPERIMENTS.md records the expected *shapes* and the measured outcomes.
//
// Sweep-heavy benches run their grid points through BenchContext::sweep —
// each point gets its own World on a ScenarioRunner pool thread
// (SAGE_BENCH_THREADS, default hardware concurrency) and results come back
// index-ordered, so stdout is byte-identical at any thread count. All
// printing happens on the main thread, after the sweep.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cloud/provider.hpp"
#include "cloud/topology.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "core/sage.hpp"
#include "core/sharded_sage.hpp"
#include "harness/scenario.hpp"
#include "net/transfer.hpp"
#include "obs/obs.hpp"
#include "simcore/engine.hpp"
#include "stream/backend.hpp"

namespace sage::bench {

/// Why a World::run_until call returned.
enum class RunStop {
  kPredicate,  // pred() became true
  kBudget,     // virtual-time budget elapsed first
  kIdle,       // nothing left to simulate but the deadline — pred can never fire
};

struct RunOutcome {
  RunStop reason = RunStop::kPredicate;
  [[nodiscard]] bool satisfied() const { return reason == RunStop::kPredicate; }
  operator bool() const { return satisfied(); }  // NOLINT: keep bool call sites
};

inline const char* to_string(RunStop reason) {
  switch (reason) {
    case RunStop::kPredicate: return "predicate";
    case RunStop::kBudget: return "budget";
    case RunStop::kIdle: return "idle";
  }
  return "?";
}

/// A self-contained simulation world for one experiment run.
struct World {
  sim::SimEngine engine;
  std::unique_ptr<cloud::CloudProvider> provider;

  explicit World(std::uint64_t seed, bool stable = false) {
    // Observability must attach before any component binds metric cells —
    // everything below the engine resolves its pointers at construction.
    engine.enable_obs_from_env();
    provider = std::make_unique<cloud::CloudProvider>(
        engine, stable ? cloud::stable_topology() : cloud::default_topology(), seed);
  }

  ~World() {
    if (engine.obs() == nullptr) return;
    engine.publish_obs_metrics();
    // Inside a harness sweep the task's aggregate registry collects every
    // World's metrics; the merged snapshot rides the --json record. Never
    // printed, so stdout stays byte-identical with obs on or off.
    if (obs::MetricsRegistry* agg = harness::current_task_metrics()) {
      agg->merge(engine.obs()->metrics());
    }
  }

  void run_for(SimDuration d) { engine.run_until(engine.now() + d); }

  /// Drive until `pred` holds, the budget elapses, or the simulation goes
  /// idle. A sentinel event marks the deadline; once it is the only entry
  /// left in the queue no remaining work can change `pred`, so the call
  /// bails out immediately instead of stepping empty ticks to the full
  /// budget. The outcome converts to bool (true iff the predicate fired).
  RunOutcome run_until(const std::function<bool()>& pred,
                       SimDuration budget = SimDuration::days(2)) {
    const SimTime deadline = engine.now() + budget;
    sim::EventHandle sentinel = engine.schedule_at(deadline, [] {});
    RunOutcome out;
    for (;;) {
      if (pred()) break;
      if (engine.now() >= deadline) {
        out.reason = RunStop::kBudget;
        break;
      }
      if (engine.live_events() <= 1 || !engine.step()) {
        out.reason = RunStop::kIdle;
        break;
      }
    }
    sentinel.cancel();
    return out;
  }
};

/// Blocking send through any TransferBackend; returns the outcome.
inline stream::SendOutcome send_blocking(World& world, stream::TransferBackend& backend,
                                         cloud::Region src, cloud::Region dst,
                                         Bytes size) {
  stream::SendOutcome out{};
  bool done = false;
  backend.send(src, dst, size, [&](const stream::SendOutcome& o) {
    out = o;
    done = true;
  });
  world.run_until([&] { return done; });
  return out;
}

// ---------------------------------------------------------------------------
// Shared scenario scaffolds (the per-bench RunResult/run_one boilerplate).

/// Deployment knobs for a SAGE control plane inside one World.
struct SageDeployOptions {
  std::vector<cloud::Region> regions;
  cloud::VmSize agent_vm = cloud::VmSize::kSmall;
  int gateways_per_region = 1;
  int helpers_per_region = 4;
  SimDuration probe_interval = SimDuration::minutes(1);
  /// Virtual time to run after deploy() so the monitoring map warms up.
  SimDuration warmup = SimDuration::minutes(10);
};

/// Build world -> deploy SAGE -> warm the monitoring map.
inline std::unique_ptr<core::SageEngine> deploy_sage(World& world,
                                                     const SageDeployOptions& opts) {
  core::SageConfig config;
  config.regions = opts.regions;
  config.agent_vm = opts.agent_vm;
  config.gateways_per_region = opts.gateways_per_region;
  config.helpers_per_region = opts.helpers_per_region;
  config.monitoring.probe_interval = opts.probe_interval;
  auto engine = std::make_unique<core::SageEngine>(*world.provider, config);
  engine->deploy();
  world.run_for(opts.warmup);
  return engine;
}

/// Build a full sharded SAGE deployment (one control-plane replica per
/// engine lane, activity partitioned by source-region ownership — see
/// core::ShardedSage) over a shared stable topology, then warm the map.
/// shards <= 1 collapses to one plain lane.
inline std::unique_ptr<core::ShardedSage> deploy_sharded_sage(
    std::shared_ptr<const cloud::Topology> topology, std::uint64_t seed,
    const SageDeployOptions& opts, int shards) {
  core::SageConfig config;
  config.regions = opts.regions;
  config.agent_vm = opts.agent_vm;
  config.gateways_per_region = opts.gateways_per_region;
  config.helpers_per_region = opts.helpers_per_region;
  config.monitoring.probe_interval = opts.probe_interval;
  core::ShardedSage::Options sharded;
  sharded.shards = shards <= 1 ? 1 : static_cast<std::size_t>(shards);
  auto sage = std::make_unique<core::ShardedSage>(std::move(topology), seed,
                                                  config, sharded);
  sage->deploy();
  sage->run_for(opts.warmup);
  return sage;
}

/// Blocking send on a sharded deployment. The wait advances sim time in
/// fixed quanta, so the stopping time is a deterministic function of sim
/// state — never of lane interleaving — and the printed outcome (captured
/// in the completion callback) is shard-count invariant.
inline stream::SendOutcome sharded_send_blocking(
    core::ShardedSage& sage, cloud::Region src, cloud::Region dst, Bytes size,
    const model::Tradeoff& tradeoff, SimDuration budget = SimDuration::days(2),
    SimDuration quantum = SimDuration::seconds(10)) {
  stream::SendOutcome out{};
  bool done = false;
  sage.send(src, dst, size, tradeoff, [&](const stream::SendOutcome& o) {
    out = o;
    done = true;
  });
  SimDuration waited = SimDuration::zero();
  while (!done && waited < budget) {
    sage.run_for(quantum);
    waited = waited + quantum;
  }
  return out;
}

/// Source + destination endpoints plus `vms` sender lanes: lane 0 direct,
/// lanes 1..vms-1 each relaying through a fresh helper in the source region.
struct LaneFan {
  cloud::VmHandle src;
  cloud::VmHandle dst;
  std::vector<net::Lane> lanes;
};

inline LaneFan provision_fan(cloud::CloudProvider& provider, cloud::Region src_r,
                             cloud::Region dst_r, int vms,
                             cloud::VmSize size = cloud::VmSize::kSmall) {
  LaneFan fan;
  fan.src = provider.provision(src_r, size);
  fan.dst = provider.provision(dst_r, size);
  fan.lanes = net::direct_lane(fan.src.id, fan.dst.id);
  for (int i = 1; i < vms; ++i) {
    const auto helper = provider.provision(src_r, size);
    fan.lanes.push_back(net::Lane{{fan.src.id, helper.id, fan.dst.id}});
  }
  return fan;
}

/// Run one GeoTransfer to completion and return the full result.
inline net::TransferResult run_transfer(World& world, Bytes size,
                                        const std::vector<net::Lane>& lanes,
                                        const net::TransferConfig& config,
                                        SimDuration budget = SimDuration::days(2)) {
  net::TransferResult result{};
  bool done = false;
  net::GeoTransfer transfer(*world.provider, size, lanes, config,
                            [&](const net::TransferResult& r) {
                              result = r;
                              done = true;
                            });
  transfer.start();
  world.run_until([&] { return done; }, budget);
  return result;
}

// ---------------------------------------------------------------------------
// Per-binary context: flags, header, parallel sweeps, JSON record.

inline void print_header(const std::string& id, const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", id.c_str(), title.c_str());
  std::printf("================================================================\n");
}

inline void print_note(const std::string& note) { std::printf("%s\n", note.c_str()); }

inline void print_table(const TextTable& table) {
  std::printf("%s", table.render().c_str());
}

/// One bench binary's harness state. Parses `--smoke` (reduced grid for CI
/// determinism diffs) and `--json <path>` (machine-readable wall-clock
/// record), prints the figure header, and exposes parallel sweeps. Nothing
/// here writes to stdout besides the header, so output stays byte-identical
/// across thread counts.
class BenchContext {
 public:
  BenchContext(int argc, char** argv, std::string slug, const std::string& id,
               const std::string& title)
      : slug_(std::move(slug)) {
    for (int i = 1; i < argc; ++i) {
      const char* arg = argv[i];
      if (std::strcmp(arg, "--smoke") == 0) {
        smoke_ = true;
      } else if (std::strcmp(arg, "--json") == 0 && i + 1 < argc) {
        json_path_ = argv[++i];
      } else if (std::strncmp(arg, "--json=", 7) == 0) {
        json_path_ = arg + 7;
      } else if (std::strcmp(arg, "--shards") == 0 && i + 1 < argc) {
        shards_ = std::atoi(argv[++i]);
      } else if (std::strncmp(arg, "--shards=", 9) == 0) {
        shards_ = std::atoi(arg + 9);
      } else {
        std::fprintf(stderr,
                     "%s: unknown argument %s (known: --smoke, --json <path>, "
                     "--shards <n>)\n",
                     argv[0], arg);
      }
    }
    if (shards_ < 0) shards_ = 0;
    // Default `shards` attribution for every --json task record; sharded
    // sweeps that mix shard counts override per task via
    // harness::report_task_shards.
    runner_.set_shards(shards());
    print_header(id, title);
  }

  /// Reduced-grid mode for the CI smoke job.
  [[nodiscard]] bool smoke() const { return smoke_; }
  [[nodiscard]] int threads() const { return runner_.threads(); }

  /// Region-shard count for benches with a sharded execution mode: --shards
  /// wins, then SAGE_PAR_SHARDS, else 0 = sharded execution off (default —
  /// the plain single-engine path runs and stdout matches historical output
  /// byte for byte).
  [[nodiscard]] int shards() const {
    return shards_ > 0 ? shards_ : harness::env_shards();
  }

  /// Run `fn` over the grid on the scenario pool; results come back in
  /// task order (see harness::ScenarioRunner).
  template <typename Task, typename Fn>
  auto sweep(const std::string& name, const std::vector<Task>& tasks, Fn&& fn) {
    return runner_.sweep(name, tasks, std::forward<Fn>(fn));
  }

  /// Write the JSON wall-clock record when --json was given. Returns the
  /// process exit code.
  int finish() {
    if (!json_path_.empty() &&
        !runner_.write_json(json_path_, slug_, smoke_)) {
      return 1;
    }
    return 0;
  }

 private:
  std::string slug_;
  std::string json_path_;
  bool smoke_ = false;
  int shards_ = 0;
  harness::ScenarioRunner runner_;
};

}  // namespace sage::bench
