// Table 1 — Simulated Azure inventory & calibration.
//
// Regenerates the experimental-setup table: regions, VM catalogue with
// prices, and the calibrated baseline inter-datacenter single-flow
// throughput matrix (measured by actually probing the fabric for an hour,
// not by echoing the topology constants — the point is that the substrate
// delivers what the calibration promises).
#include "bench_util.hpp"
#include "cloud/vm.hpp"
#include "common/stats.hpp"

namespace sage::bench {
namespace {

void vm_catalogue() {
  print_note("\nVM catalogue (2013-era price book):");
  TextTable t({"Size", "Cores", "Memory", "NIC", "Price/hour", "Compute factor"});
  for (const cloud::VmSize size : cloud::kAllVmSizes) {
    const cloud::VmSpec spec = cloud::vm_spec(size);
    t.add_row({std::string(spec.name), std::to_string(spec.cores),
               TextTable::num(spec.memory_gb, 2) + " GB", to_string(spec.nic),
               to_string(spec.hourly_price), TextTable::num(spec.compute_factor, 2)});
  }
  print_table(t);
}

void throughput_matrix() {
  print_note("\nMeasured single-flow throughput matrix (MB/s, Small VMs, 1 h of probes):");
  World world(/*seed=*/11);
  auto& provider = *world.provider;

  std::array<cloud::VmHandle, cloud::kRegionCount> vms;
  for (cloud::Region r : cloud::kAllRegions) {
    vms[cloud::region_index(r)] = provider.provision(r, cloud::VmSize::kSmall);
  }

  std::array<std::array<OnlineStats, cloud::kRegionCount>, cloud::kRegionCount> cells;
  // 12 probe rounds, 5 minutes apart.
  for (int round = 0; round < 12; ++round) {
    for (cloud::Region a : cloud::kAllRegions) {
      for (cloud::Region b : cloud::kAllRegions) {
        if (a == b) continue;
        bool done = false;
        provider.transfer(vms[cloud::region_index(a)].id, vms[cloud::region_index(b)].id,
                          Bytes::mb(8), {}, [&, a, b](const cloud::FlowResult& r) {
                            if (r.ok()) {
                              cells[cloud::region_index(a)][cloud::region_index(b)].add(
                                  r.achieved_rate().to_mb_per_sec());
                            }
                            done = true;
                          });
        world.run_until([&] { return done; });
      }
    }
    world.run_for(SimDuration::minutes(5));
  }

  std::vector<std::string> headers = {"from \\ to"};
  for (cloud::Region r : cloud::kAllRegions) headers.emplace_back(cloud::region_code(r));
  TextTable t(headers);
  for (cloud::Region a : cloud::kAllRegions) {
    std::vector<std::string> row = {std::string(cloud::region_code(a))};
    for (cloud::Region b : cloud::kAllRegions) {
      if (a == b) {
        row.emplace_back("-");
      } else {
        row.push_back(TextTable::num(
            cells[cloud::region_index(a)][cloud::region_index(b)].mean(), 2));
      }
    }
    t.add_row(row);
  }
  print_table(t);
}

void price_book() {
  print_note("\nData pricing:");
  cloud::PricingModel pricing;
  TextTable t({"Item", "Price"});
  t.add_row({"WAN egress (any zone-1 region)",
             to_string(pricing.egress_per_gb(cloud::Region::kNorthEU)) + " / GB"});
  t.add_row({"WAN ingress", "$0.0000 / GB (free)"});
  t.add_row({"Blob capacity", to_string(pricing.blob_storage_per_gb_month()) +
                                  " / GB-month"});
  t.add_row({"Blob transaction", to_string(pricing.blob_transaction()) + " / op"});
  print_table(t);
}

}  // namespace
}  // namespace sage::bench

int main() {
  using namespace sage::bench;
  print_header("Table 1", "Simulated Azure inventory & calibration");
  print_note("6 datacenters: North/West EU, North/South/East/West US.");
  vm_catalogue();
  throughput_matrix();
  price_book();
  return 0;
}
