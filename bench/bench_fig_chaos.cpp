// Fig C — Chaos: behaviour under deterministic fault injection.
//
// The paper's evaluation assumes a cooperative wide area; this figure
// quantifies what the transfer and fabric layers do when the wide area
// misbehaves, using the seed-reproducible chaos subsystem (src/chaos). Four
// scenario families:
//
//   C1 outage-mid-transfer — a multi-lane GeoTransfer loses a relay region
//      partway through; the surviving lanes re-drive the lost chunks. A/B
//      columns against the healthy run of the same transfer.
//   C2 diurnal partition  — a steady flow arrival process rides through a
//      recurring partition window (island cut off for two hours per
//      simulated day); strand-and-resume, no aborts.
//   C3 storm recovery     — correlated incident storms (seeded hazard
//      process) at rising intensity; how much of the offered volume still
//      lands, and how long the fabric needs to drain after the last storm.
//   C4 sharded soak       — a long random schedule replayed on the
//      region-sharded engine at S in {1, 2, 4} with the ChaosInvariants
//      checker at the end; every row prints identical numbers (faults are
//      lane-local events, serialized like traffic) and CI diffs the stdout
//      across harness thread counts.
//   C5 sharded control plane — full deploy_sage scenarios (the whole SAGE
//      stack, not just the fabric) on core::ShardedSage at S in {1, 2, 4},
//      same fault schedule on every lane, plus a `plain` unsharded-baseline
//      row; S rows are byte-identical and CI diffs the stdout across
//      SAGE_PAR_SHARDS and harness thread counts.
//
// Chaos here is enabled explicitly per controller — this binary IS the
// chaos experiment. The ambient SAGE_CHAOS gate governs ordinary worlds;
// with it unset (or =0) every OTHER bench binary attaches no controller and
// prints byte-identical output, which the CI chaos-off diff asserts.
#include "bench_util.hpp"

#include "chaos/chaos.hpp"
#include "cloud/fabric.hpp"
#include "simcore/sharded_engine.hpp"

#include "chaos_invariants.hpp"  // tests/ — reused invariant checker

namespace sage::bench {
namespace {

using chaos::ChaosController;
using chaos::ChaosTargets;
using chaos::FaultPlan;
using cloud::Region;

constexpr Region kSrc = Region::kNorthEU;
constexpr Region kDst = Region::kNorthUS;
constexpr Region kRelay = Region::kWestEU;

// ---------------------------------------------------------------------------
// C1: outage mid-transfer.
// ---------------------------------------------------------------------------

struct OutageCell {
  int mb = 0;
  int lanes = 0;  // 1 direct + (lanes-1) relays through kRelay helpers
};

struct OutageResult {
  double healthy_s = 0.0;
  double chaos_s = 0.0;
  bool delivered = false;
  std::uint64_t hop_failures = 0;
  std::uint64_t retransmissions = 0;
};

OutageResult run_outage(const OutageCell& c) {
  const auto run_one = [&](bool outage, OutageResult& out) -> double {
    World world(11, /*stable=*/true);
    const auto src = world.provider->provision(kSrc, cloud::VmSize::kSmall);
    const auto dst = world.provider->provision(kDst, cloud::VmSize::kSmall);
    std::vector<net::Lane> lanes = net::direct_lane(src.id, dst.id);
    for (int i = 1; i < c.lanes; ++i) {
      const auto helper = world.provider->provision(kRelay, cloud::VmSize::kSmall);
      lanes.push_back(net::Lane{{src.id, helper.id, dst.id}});
    }

    std::unique_ptr<ChaosController> chaos;
    if (outage) {
      // Kill the relay region a quarter of the way through the healthy
      // duration, restore it near the end: the relay lanes die, retry onto
      // the direct lane, and the transfer must still deliver every byte.
      FaultPlan plan;
      plan.region_outage(world.engine.now() + SimDuration::seconds(5), kRelay,
                         SimDuration::minutes(10));
      chaos = std::make_unique<ChaosController>(
          world.engine, ChaosTargets{&world.provider->fabric(), nullptr},
          std::move(plan), /*enabled=*/true);
    }

    const SimTime t0 = world.engine.now();
    const net::TransferResult r = run_transfer(world, Bytes::mb(c.mb), lanes, {});
    if (outage) {
      out.delivered = r.ok && r.stats.chunks_delivered == r.stats.chunks_total;
      out.hop_failures = static_cast<std::uint64_t>(r.stats.hop_failures);
      out.retransmissions = static_cast<std::uint64_t>(r.stats.retransmissions);
    }
    return (world.engine.now() - t0).to_seconds();
  };
  OutageResult out;
  out.healthy_s = run_one(false, out);
  out.chaos_s = run_one(true, out);
  return out;
}

void run_c1(BenchContext& ctx) {
  const std::vector<OutageCell> grid =
      ctx.smoke() ? std::vector<OutageCell>{{64, 2}, {128, 3}}
                  : std::vector<OutageCell>{{256, 2}, {256, 4}, {1024, 2}, {1024, 4}};
  const auto results =
      ctx.sweep("chaos-outage", grid, [](const OutageCell& c) { return run_outage(c); });

  TextTable t({"Size MB", "Lanes", "Healthy s", "Outage s", "Slowdown",
               "Hop fails", "Retrans", "All bytes"});
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const OutageResult& r = results[i];
    t.add_row({std::to_string(grid[i].mb), std::to_string(grid[i].lanes),
               TextTable::num(r.healthy_s, 1), TextTable::num(r.chaos_s, 1),
               TextTable::num(r.chaos_s / r.healthy_s, 2),
               std::to_string(r.hop_failures), std::to_string(r.retransmissions),
               r.delivered ? "yes" : "NO"});
  }
  print_table(t);
  print_note(
      "\nC1: a 10-minute relay-region outage lands mid-transfer. Chunks "
      "in flight on relay lanes fail, the retry path re-drives them over "
      "the surviving direct lane, and every byte still arrives — the "
      "slowdown is the price of losing the fan, not of losing data.");
}

// ---------------------------------------------------------------------------
// C2: diurnal partition.
// ---------------------------------------------------------------------------

struct DiurnalCell {
  double days = 0.0;
  int partition_hours = 0;
};

struct DiurnalResult {
  int completed = 0;
  int failed = 0;
  double moved_mb = 0.0;
  std::uint64_t faults = 0;
  std::uint64_t reverts = 0;
};

DiurnalResult run_diurnal(const DiurnalCell& c) {
  World world(23, /*stable=*/true);
  cloud::Fabric& fabric = world.provider->fabric();

  DiurnalResult out;
  // Steady arrivals: one 40 MB island-crossing flow every 10 minutes for
  // the whole horizon. Flows caught inside a partition window strand at
  // rate zero and resume on heal — none are aborted, so failed stays 0.
  const SimTime horizon_end =
      world.engine.now() + SimDuration::hours(c.days * 24.0);
  const auto src = fabric.add_node(kSrc, ByteRate::megabits_per_sec(100),
                                   ByteRate::megabits_per_sec(100));
  const auto dst = fabric.add_node(kDst, ByteRate::megabits_per_sec(100),
                                   ByteRate::megabits_per_sec(100));
  std::function<void()> arrive = [&] {
    if (world.engine.now() >= horizon_end) return;
    fabric.start_flow(src, dst, Bytes::mb(40), {},
                      [&out](const cloud::FlowResult& r) {
                        r.ok() ? ++out.completed : ++out.failed;
                        if (r.ok()) out.moved_mb += r.transferred.to_mb();
                      });
    world.engine.schedule_after(SimDuration::minutes(10), [&] { arrive(); });
  };
  arrive();

  // The island (EU) loses the mainland for `partition_hours` starting at
  // 02:00 of every simulated day.
  FaultPlan plan;
  for (double day = 0; day < c.days; day += 1.0) {
    plan.partition(world.engine.now() + SimDuration::hours(day * 24.0 + 2.0),
                   {kSrc, kRelay}, SimDuration::hours(c.partition_hours));
  }
  ChaosController chaos(world.engine, ChaosTargets{&fabric, nullptr},
                        std::move(plan), /*enabled=*/true);

  world.run_until([] { return false; },
                  SimDuration::hours(c.days * 24.0) + SimDuration::hours(6));
  out.faults = chaos.faults_applied();
  out.reverts = chaos.reverts_applied();
  return out;
}

void run_c2(BenchContext& ctx) {
  const std::vector<DiurnalCell> grid =
      ctx.smoke() ? std::vector<DiurnalCell>{{0.5, 2}}
                  : std::vector<DiurnalCell>{{2.0, 2}, {2.0, 6}, {4.0, 2}};
  const auto results =
      ctx.sweep("chaos-diurnal", grid, [](const DiurnalCell& c) { return run_diurnal(c); });

  TextTable t({"Days", "Cut h/day", "Completed", "Failed", "Moved MB",
               "Partitions", "Heals"});
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const DiurnalResult& r = results[i];
    t.add_row({TextTable::num(grid[i].days, 1), std::to_string(grid[i].partition_hours),
               std::to_string(r.completed), std::to_string(r.failed),
               TextTable::num(r.moved_mb, 0), std::to_string(r.faults),
               std::to_string(r.reverts)});
  }
  print_table(t);
  print_note(
      "\nC2: partitions strand, they do not destroy — every arrival "
      "eventually completes (failed == 0) because share-zero flows park at "
      "rate zero until the heal event restores the cut links.");
}

// ---------------------------------------------------------------------------
// C3: storm recovery.
// ---------------------------------------------------------------------------

struct StormCell {
  double storms_per_day = 0.0;
};

struct StormResult {
  std::size_t storm_events = 0;
  int completed = 0;
  int failed = 0;
  double drain_s = 0.0;  // time past the storm horizon until the fabric idles
};

StormResult run_storm(const StormCell& c) {
  World world(31, /*stable=*/true);
  cloud::Fabric& fabric = world.provider->fabric();

  const SimDuration horizon = SimDuration::hours(24);
  const SimTime storm_horizon_end = world.engine.now() + horizon;

  // Background traffic: one back-to-back flow chain per declared WAN pair —
  // each completion (or abort) immediately launches the next flow until the
  // horizon, so the storms always find traffic in flight to hurt.
  int in_flight = 0;
  StormResult out;
  std::vector<std::pair<Region, Region>> pairs;
  for (const cloud::Topology::Edge& e : fabric.topology().edges()) {
    if (e.src != e.dst) pairs.emplace_back(e.src, e.dst);
  }
  struct Chain {
    cloud::NodeId src;
    cloud::NodeId dst;
    Bytes payload;
  };
  auto chains = std::make_shared<std::vector<Chain>>();
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    const auto [a, b] = pairs[i];
    chains->push_back(Chain{
        fabric.add_node(a, ByteRate::megabits_per_sec(100),
                        ByteRate::megabits_per_sec(100)),
        fabric.add_node(b, ByteRate::megabits_per_sec(100),
                        ByteRate::megabits_per_sec(100)),
        Bytes::mb(200 + (static_cast<int>(i) % 7) * 100)});
  }
  std::function<void(std::size_t)> launch = [&, chains](std::size_t i) {
    const Chain& ch = (*chains)[i];
    ++in_flight;
    fabric.start_flow(ch.src, ch.dst, ch.payload, {},
                      [&, i](const cloud::FlowResult& r) {
                        --in_flight;
                        r.ok() ? ++out.completed : ++out.failed;
                        if (world.engine.now() >= storm_horizon_end) return;
                        if (r.ok()) {
                          launch(i);
                        } else {
                          // An aborted/rejected chain backs off before its
                          // next attempt (an instant relaunch against a
                          // failed endpoint would spin at one sim time).
                          world.engine.schedule_after(
                              SimDuration::minutes(1), [&, i] {
                                if (world.engine.now() < storm_horizon_end) launch(i);
                              });
                        }
                      });
  };
  for (std::size_t i = 0; i < chains->size(); ++i) launch(i);
  FaultPlan plan = FaultPlan::incident_storm(
      5, fabric.topology(), world.engine.now() + SimDuration::minutes(5), horizon,
      c.storms_per_day);
  out.storm_events = plan.size();
  ChaosController chaos(world.engine, ChaosTargets{&fabric, nullptr},
                        std::move(plan), /*enabled=*/true);

  const SimTime storm_end = world.engine.now() + horizon;
  world.engine.run_until(storm_end);
  const RunOutcome drained =
      world.run_until([&] { return in_flight == 0; }, SimDuration::days(2));
  out.drain_s = drained ? (world.engine.now() - storm_end).to_seconds() : -1.0;
  return out;
}

void run_c3(BenchContext& ctx) {
  const std::vector<StormCell> grid =
      ctx.smoke() ? std::vector<StormCell>{{24.0}}
                  : std::vector<StormCell>{{6.0}, {24.0}, {96.0}};
  const auto results =
      ctx.sweep("chaos-storm", grid, [](const StormCell& c) { return run_storm(c); });

  TextTable t({"Storms/day", "Fault events", "Completed", "Failed", "Drain s"});
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const StormResult& r = results[i];
    t.add_row({TextTable::num(grid[i].storms_per_day, 0),
               std::to_string(r.storm_events), std::to_string(r.completed),
               std::to_string(r.failed), TextTable::num(r.drain_s, 1)});
  }
  print_table(t);
  print_note(
      "\nC3: correlated storms (seeded hazard process, epicenter region, "
      "0.75 per-link involvement) abort some crossing flows and squeeze the "
      "rest; survivors drain shortly after the last squeeze reverts. "
      "Failed counts rise with storm intensity, drain time does not — "
      "recovery is bounded by the last storm's duration, not by how many "
      "storms preceded it.");
}

// ---------------------------------------------------------------------------
// C4: sharded soak with invariant checking.
// ---------------------------------------------------------------------------

struct SoakCell {
  std::size_t shards = 0;
};

struct SoakResult {
  int finished = 0;
  std::uint64_t faults = 0;   // per-lane (identical on every lane)
  std::uint64_t reverts = 0;  // per-lane
  bool invariants_ok = false;
  std::string first_violation;
};

SoakResult run_soak(const SoakCell& c, SimDuration horizon) {
  const auto topo =
      std::make_shared<const cloud::Topology>(cloud::stable_topology());
  const cloud::ShardPlan plan = cloud::plan_shards(*topo, c.shards);
  sim::ShardedSimEngine engine(
      sim::ShardedSimEngine::Options{plan.shards, plan.lookahead, true, 0});
  const auto lane_of = [&](Region r) -> std::size_t {
    return engine.collapsed() ? 0 : plan.shard(r);
  };

  obs::ObsConfig cfg;
  cfg.tracing = false;
  for (std::size_t l = 0; l < engine.lane_count(); ++l) {
    engine.shard(l).enable_obs(cfg);
  }

  std::vector<std::unique_ptr<cloud::Fabric>> fabrics;
  std::vector<ChaosTargets> targets;
  for (std::size_t l = 0; l < engine.lane_count(); ++l) {
    fabrics.push_back(std::make_unique<cloud::Fabric>(engine.shard(l), topo, 60 + l));
    targets.push_back(ChaosTargets{fabrics[l].get(), nullptr});
  }

  std::vector<std::pair<Region, Region>> pairs;
  for (const cloud::Topology::Edge& e : topo->edges()) {
    if (e.src != e.dst) pairs.emplace_back(e.src, e.dst);
  }

  // Each flow lives in its source region's lane with fresh endpoints, so
  // distinct pairs settle on disjoint links and the numbers below are
  // shard-count invariant (the bench_fig_scale recipe, under fire).
  struct alignas(64) LaneTally {
    int finished = 0;
  };
  std::vector<LaneTally> tally(engine.lane_count());
  const auto nic = ByteRate::megabits_per_sec(100);
  const int flows = 64;
  for (int i = 0; i < flows; ++i) {
    const auto [a, b] = pairs[static_cast<std::size_t>(i) % pairs.size()];
    cloud::Fabric& owner = *fabrics[lane_of(a)];
    const auto src = owner.add_node(a, nic, nic);
    const auto dst = owner.add_node(b, nic, nic);
    LaneTally* t = &tally[lane_of(a)];
    const SimDuration start = SimDuration::minutes(3 * (i % 40));
    const Bytes payload = Bytes::mb(50 + (i % 9) * 25);
    engine.shard(lane_of(a)).schedule_after(start, [&owner, t, src, dst, payload] {
      owner.start_flow(src, dst, payload, {},
                       [t](const cloud::FlowResult&) { ++t->finished; });
    });
  }

  // One long random schedule: every fault class, every duration timed so
  // the whole plan reverts inside the horizon.
  FaultPlan fplan = FaultPlan::random(77, *topo,
                                      SimTime::epoch() + SimDuration::minutes(2),
                                      horizon - SimDuration::hours(1), 24);
  ChaosController chaos(engine, std::move(targets), std::move(fplan),
                        /*enabled=*/true);

  engine.run_until(SimTime::epoch() + horizon);
  // Random durations stretch to half the plan horizon, so the tail of the
  // auto-revert events can land past the soak window; drain them (and the
  // flows they were stranding) before auditing the books.
  engine.run_until(SimTime::epoch() + horizon + SimDuration::hours(5));

  SoakResult out;
  sage::testing::ChaosInvariants inv;
  std::uint64_t active = 0;
  for (std::size_t l = 0; l < engine.lane_count(); ++l) {
    inv.check_fabric(engine.shard(l), *fabrics[l]);
    active += fabrics[l]->active_flow_count();
    out.finished += tally[l].finished;
  }
  inv.check_engine(engine, engine.lane_count() + 2 * active);
  out.invariants_ok = inv.ok();
  if (!inv.ok()) out.first_violation = inv.violations().front();
  out.faults = chaos.faults_applied() / engine.lane_count();
  out.reverts = chaos.reverts_applied() / engine.lane_count();
  return out;
}

void run_c4(BenchContext& ctx) {
  const SimDuration horizon =
      ctx.smoke() ? SimDuration::hours(2) : SimDuration::hours(8);
  const std::vector<SoakCell> grid = {{1}, {2}, {4}};
  const auto results = ctx.sweep("chaos-soak", grid, [horizon](const SoakCell& c) {
    return run_soak(c, horizon);
  });

  TextTable t({"Shards", "Finished", "Faults", "Reverts", "Invariants"});
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const SoakResult& r = results[i];
    t.add_row({std::to_string(grid[i].shards), std::to_string(r.finished),
               std::to_string(r.faults), std::to_string(r.reverts),
               r.invariants_ok ? "OK" : ("VIOLATED: " + r.first_violation)});
  }
  print_table(t);
  print_note(
      "\nC4: the same 24-event schedule soaked on the region-sharded engine. "
      "Rows are identical by construction — chaos events are lane-local, "
      "serialized with traffic inside each lane's event queue — so S in "
      "{1,2,4} and any SAGE_BENCH_THREADS print this exact table, and the "
      "ChaosInvariants checker (byte conservation, event accounting) signs "
      "off every row.");
}

// ---------------------------------------------------------------------------
// C5: the full SAGE control plane, sharded, under fire.
// ---------------------------------------------------------------------------

struct PlaneCell {
  std::size_t shards = 0;  // 0 = the plain unsharded SageEngine baseline
};

struct PlaneResult {
  int issued = 0;
  int completed = 0;
  int ok = 0;
  double sum_elapsed_s = 0.0;
  std::uint64_t chunks = 0;
  std::uint64_t retrans = 0;
  int replans = 0;
  std::uint64_t faults = 0;   // per-lane (identical on every lane)
  std::uint64_t reverts = 0;  // per-lane
  bool epochs_ok = false;
  bool plain = false;
};

/// The C5 fault schedule, shared by the sharded runs and the plain baseline.
/// Smoke compresses the fault times so they still land inside the (much
/// shorter) send schedule — the CI determinism diff must exercise the
/// chaos-on plane, not a healthy run that drains before the first fault.
FaultPlan plane_plan(SimTime t0, bool smoke) {
  FaultPlan fplan;
  fplan.region_outage(t0 + (smoke ? SimDuration::seconds(25)
                                  : SimDuration::minutes(5)),
                      kRelay,
                      smoke ? SimDuration::minutes(2) : SimDuration::minutes(8));
  fplan.capacity_squeeze(t0 + (smoke ? SimDuration::seconds(90)
                                     : SimDuration::minutes(12)),
                         kSrc, kDst, 0.4,
                         smoke ? SimDuration::minutes(2)
                               : SimDuration::minutes(10));
  fplan.poison_estimator(t0 + (smoke ? SimDuration::minutes(2)
                                     : SimDuration::minutes(16)),
                         kSrc, kDst, 900.0, 3);
  return fplan;
}

/// The unsharded baseline: the identical send schedule and fault plan driven
/// through a plain single-engine SageEngine (relay-capable plans, shared
/// long-lived endpoints, global fabric settlement). This is the control
/// plane a deploy_sage user runs today; the wall-clock delta against the
/// sharded rows is the number BENCH_PR10 records.
PlaneResult run_plane_plain(int sends, int payload_mb, bool smoke) {
  World world(91, /*stable=*/true);
  SageDeployOptions opts;
  opts.regions = world.provider->topology().regions();
  auto sage = deploy_sage(world, opts);
  const SimTime t0 = world.engine.now();

  ChaosController chaos(
      world.engine,
      ChaosTargets{&world.provider->fabric(), &sage->monitoring()},
      plane_plan(t0, smoke), /*enabled=*/true);

  std::vector<std::pair<Region, Region>> pairs;
  for (const cloud::Topology::Edge& e : world.provider->topology().edges()) {
    if (e.src != e.dst) pairs.emplace_back(e.src, e.dst);
  }
  int done = 0;
  for (int i = 0; i < sends; ++i) {
    const auto [a, b] = pairs[static_cast<std::size_t>(i * 3) % pairs.size()];
    const Bytes payload = Bytes::mb(payload_mb + (i % 5) * 16);
    world.engine.schedule_after(
        SimDuration::seconds((smoke ? 10 : 3) * i),
        [&sage, &done, a, b, payload] {
          sage->send_with(model::Tradeoff::fastest(), a, b, payload,
                          [&done](const stream::SendOutcome&) { ++done; });
        });
  }
  const SimDuration quantum = SimDuration::minutes(1);
  const SimDuration budget = SimDuration::hours(3);
  SimDuration waited = SimDuration::zero();
  while (done < sends && waited < budget) {
    world.run_for(quantum);
    waited = waited + quantum;
  }

  PlaneResult out;
  out.plain = true;
  out.issued = sends;
  out.completed = done;
  for (const core::SendRecord& rec : sage->history()) {
    if (rec.ok) ++out.ok;
    out.sum_elapsed_s += rec.elapsed.to_seconds();
    out.chunks += static_cast<std::uint64_t>(rec.stats.chunks_delivered);
    out.retrans += static_cast<std::uint64_t>(rec.stats.retransmissions);
    out.replans += rec.replans;
  }
  out.faults = chaos.faults_applied();
  out.reverts = chaos.reverts_applied();
  harness::report_task_records(out.chunks);
  harness::report_task_shards(0);
  return out;
}

PlaneResult run_plane(const PlaneCell& c, int sends, int payload_mb,
                      bool smoke) {
  if (c.shards == 0) return run_plane_plain(sends, payload_mb, smoke);
  const auto topo =
      std::make_shared<const cloud::Topology>(cloud::stable_topology());
  SageDeployOptions opts;
  opts.regions = topo->regions();
  auto sage = deploy_sharded_sage(topo, 91, opts, static_cast<int>(c.shards));
  const SimTime t0 = sage->engine().shard(0).now();

  // Chaos, through the per-lane targets of the sharded controller: a region
  // outage lands mid-transfer (killing the owned transfers' ephemeral
  // endpoints and scatter helpers — those sends fail over or fail cleanly,
  // and self-healing replaces the pools), a capacity squeeze bends the
  // busiest link's rates, and an estimator poisoning feeds every lane's map
  // the same garbage through the normal ingestion path.
  FaultPlan fplan = plane_plan(t0, smoke);
  std::vector<ChaosTargets> targets;
  for (std::size_t l = 0; l < sage->lane_count(); ++l) {
    targets.push_back(
        ChaosTargets{&sage->provider(l).fabric(), &sage->lane(l).monitoring()});
  }
  ChaosController chaos(sage->engine(), std::move(targets), std::move(fplan),
                        /*enabled=*/true);

  std::vector<std::pair<Region, Region>> pairs;
  for (const cloud::Topology::Edge& e : topo->edges()) {
    if (e.src != e.dst) pairs.emplace_back(e.src, e.dst);
  }

  // A staggered schedule of full control-plane sends (widest tradeoff, so
  // every transfer fans out over its scatter helpers) keeps a standing
  // population of concurrent flows in every lane's fabric — the settlement
  // load the shard partition divides. Completion lands on the owning lane;
  // tallies are per-lane and summed only between run_for windows.
  struct alignas(64) LaneDone {
    int done = 0;
  };
  std::vector<LaneDone> done(sage->lane_count());
  core::ShardedSage* plane = sage.get();
  for (int i = 0; i < sends; ++i) {
    // Stride 3 spreads the schedule over source regions (so several lanes
    // own work at S=4) and lands sends on the outage region mid-fault.
    const auto [a, b] = pairs[static_cast<std::size_t>(i * 3) % pairs.size()];
    const std::size_t l = sage->lane_of(a);
    const Bytes payload = Bytes::mb(payload_mb + (i % 5) * 16);
    // Smoke staggers sends far enough apart to stay quick; the full run packs
    // them so a large standing flow population contends in every lane — the
    // settlement load the shard partition divides.
    sage->engine().shard(l).schedule_after(
        SimDuration::seconds((smoke ? 10 : 3) * i),
        [plane, &done, l, a, b, payload] {
          plane->send(a, b, payload, model::Tradeoff::fastest(),
                      [&done, l](const stream::SendOutcome&) { ++done[l].done; });
        });
  }

  const SimDuration quantum = SimDuration::minutes(1);
  const SimDuration budget = SimDuration::hours(3);
  SimDuration waited = SimDuration::zero();
  auto total_done = [&] {
    int n = 0;
    for (const LaneDone& d : done) n += d.done;
    return n;
  };
  while (total_done() < sends && waited < budget) {
    sage->run_for(quantum);
    waited = waited + quantum;
  }

  PlaneResult out;
  out.issued = sends;
  out.completed = total_done();
  for (std::size_t l = 0; l < sage->lane_count(); ++l) {
    for (const core::SendRecord& rec : sage->lane(l).history()) {
      if (rec.ok) ++out.ok;
      out.sum_elapsed_s += rec.elapsed.to_seconds();
      out.chunks += static_cast<std::uint64_t>(rec.stats.chunks_delivered);
      out.retrans += static_cast<std::uint64_t>(rec.stats.retransmissions);
      out.replans += rec.replans;
    }
  }
  out.faults = chaos.faults_applied() / sage->lane_count();
  out.reverts = chaos.reverts_applied() / sage->lane_count();
  out.epochs_ok = sage->epochs_consistent();
  harness::report_task_records(out.chunks);
  harness::report_task_shards(static_cast<int>(c.shards));
  return out;
}

void run_c5(BenchContext& ctx) {
  const int sends = ctx.smoke() ? 12 : 96;
  const int payload_mb = ctx.smoke() ? 48 : 192;
  const std::vector<PlaneCell> grid = {{0}, {1}, {2}, {4}};
  const bool smoke = ctx.smoke();
  const auto results = ctx.sweep(
      "chaos-plane", grid, [sends, payload_mb, smoke](const PlaneCell& c) {
        return run_plane(c, sends, payload_mb, smoke);
      });

  TextTable t({"Shards", "Sends", "Done", "OK", "Sum elapsed s", "Chunks",
               "Retrans", "Replans", "Faults", "Reverts", "Epochs"});
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const PlaneResult& r = results[i];
    t.add_row({r.plain ? "plain" : std::to_string(grid[i].shards),
               std::to_string(r.issued), std::to_string(r.completed),
               std::to_string(r.ok), TextTable::num(r.sum_elapsed_s, 1),
               std::to_string(r.chunks), std::to_string(r.retrans),
               std::to_string(r.replans), std::to_string(r.faults),
               std::to_string(r.reverts),
               r.plain ? "n/a" : (r.epochs_ok ? "lock-step" : "DIVERGED")});
  }
  print_table(t);
  print_note(
      "\nC5: full deploy_sage scenarios (monitoring + tradeoff + planner + "
      "adaptive transfers + self-healing) on the region-sharded engine with "
      "the same fault schedule applied to every lane. The `plain` row drives "
      "the identical send schedule and fault plan through today's unsharded "
      "SageEngine — relay-capable plans and shared long-lived endpoints, so "
      "its numbers legitimately differ; its --json wall clock is the "
      "baseline the sharded rows are measured against. The S rows are "
      "identical to each other because activity is partitioned by "
      "source-region ownership, samples reach every lane at one uniform "
      "report delay, and faults serialize with traffic inside each lane — "
      "so the per-lane sample epochs stay in lock-step and every control "
      "decision replays at any shard count.");
}

void run(BenchContext& ctx) {
  run_c1(ctx);
  run_c2(ctx);
  run_c3(ctx);
  run_c4(ctx);
  run_c5(ctx);
}

}  // namespace
}  // namespace sage::bench

int main(int argc, char** argv) {
  sage::bench::BenchContext ctx(argc, argv, "fig_chaos", "Fig C",
                                "Chaos: deterministic fault injection");
  sage::bench::run(ctx);
  return ctx.finish();
}
