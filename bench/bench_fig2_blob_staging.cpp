// Fig 2 — Blob-storage staging vs direct streaming.
//
// The stock cloud path for moving data between sites is "write it to the
// object store, read it back": this bench measures the write-phase time of
// a 100 MB object from a North EU client to each region's blob service (a
// week-long campaign summarised as mean ± stddev), side by side with a
// direct VM-to-VM transfer of the same payload.
#include "bench_util.hpp"
#include "common/stats.hpp"

namespace sage::bench {
namespace {

void run() {
  World world(/*seed=*/77);
  auto& provider = *world.provider;
  const auto src = provider.provision(cloud::Region::kNorthEU, cloud::VmSize::kSmall);
  std::array<cloud::VmHandle, cloud::kRegionCount> peers;
  for (cloud::Region r : cloud::kAllRegions) {
    peers[cloud::region_index(r)] = provider.provision(r, cloud::VmSize::kSmall);
  }

  const Bytes payload = Bytes::mb(100);
  const int rounds = 48;  // every ~3.5 h over a simulated week

  std::array<OnlineStats, cloud::kRegionCount> blob_times;
  std::array<OnlineStats, cloud::kRegionCount> direct_times;

  for (int i = 0; i < rounds; ++i) {
    for (cloud::Region r : cloud::kAllRegions) {
      // Blob write phase towards region r's store.
      bool put_done = false;
      const std::string name = "fig2-" + std::to_string(i);
      provider.blob(r).put(provider.vm(src.id).node, name, payload,
                           [&](const cloud::BlobOpResult& result) {
                             if (result.ok) {
                               blob_times[cloud::region_index(r)].add(
                                   result.elapsed.to_seconds());
                             }
                             put_done = true;
                           });
      world.run_until([&] { return put_done; });
      provider.blob(r).remove(name);

      // Direct VM-to-VM transfer of the same payload.
      if (r != cloud::Region::kNorthEU) {
        bool done = false;
        provider.transfer(src.id, peers[cloud::region_index(r)].id, payload, {},
                          [&](const cloud::FlowResult& result) {
                            if (result.ok()) {
                              direct_times[cloud::region_index(r)].add(
                                  result.elapsed().to_seconds());
                            }
                            done = true;
                          });
        world.run_until([&] { return done; });
      }
    }
    world.run_for(SimDuration::hours(3.5));
  }

  TextTable t({"Destination", "Blob write mean s", "Blob stddev", "Direct TCP mean s",
               "Blob/Direct"});
  for (cloud::Region r : cloud::kAllRegions) {
    const OnlineStats& blob = blob_times[cloud::region_index(r)];
    const OnlineStats& direct = direct_times[cloud::region_index(r)];
    const bool local = r == cloud::Region::kNorthEU;
    t.add_row({std::string(cloud::region_code(r)) + (local ? " (local)" : ""),
               TextTable::num(blob.mean(), 1), TextTable::num(blob.stddev(), 1),
               local ? "-" : TextTable::num(direct.mean(), 1),
               local ? "-" : TextTable::num(blob.mean() / direct.mean(), 2)});
  }
  print_table(t);
  print_note(
      "\nShape check: staging 100 MB into the blob service is consistently "
      "slower and markedly more variable than a raw TCP transfer of the same "
      "bytes — and this is only the WRITE phase; a full relay adds the read.");
}

}  // namespace
}  // namespace sage::bench

int main() {
  sage::bench::print_header("Fig 2", "Blob staging (write phase) vs direct streaming, 100 MB");
  sage::bench::run();
  return 0;
}
