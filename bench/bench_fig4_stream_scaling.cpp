// Fig 4 — Geo-streaming latency and sustained throughput vs input rate.
//
// A collect-centrally analysis: each site filters its event stream and
// forwards the surviving records to one aggregation site, whose global
// 2-second window feeds the dashboard sink. Unlike a pre-aggregating
// pipeline (where the WAN carries only window summaries), the WAN here
// carries volume proportional to the input rate — so the sweep exposes the
// geo bottleneck: latency is flat while the per-site WAN share keeps up,
// then queueing blows the tail up once the inter-site paths saturate.
// Deployments of 1, 3 and 6 sites; SAGE is the WAN backend.
#include "bench_util.hpp"
#include "core/sage.hpp"
#include "stream/operator.hpp"

namespace sage::bench {
namespace {

struct RunResult {
  double sink_records_per_sec = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  Bytes wan_bytes;
  std::uint64_t wan_failures = 0;
};

RunResult run_one(int sites, double rate) {
  World world(/*seed=*/static_cast<std::uint64_t>(4000 + sites * 17) +
                  static_cast<std::uint64_t>(rate));
  const std::vector<cloud::Region> all = {
      cloud::Region::kNorthUS, cloud::Region::kNorthEU, cloud::Region::kWestEU,
      cloud::Region::kEastUS,  cloud::Region::kSouthUS, cloud::Region::kWestUS};
  const cloud::Region hub = cloud::Region::kNorthUS;

  SageDeployOptions deploy;
  deploy.regions.assign(all.begin(), all.begin() + std::max(sites, 2));
  auto engine_ptr = deploy_sage(world, deploy);
  core::SageEngine& engine = *engine_ptr;

  stream::JobGraph g;
  const auto window = g.add_operator(
      "global-count", hub,
      stream::make_window_aggregate("global-count", SimDuration::seconds(2),
                                    stream::AggregateFn::kCount));
  const auto sink = g.add_sink("dashboard", hub);
  g.connect(window, sink);
  for (int i = 0; i < sites; ++i) {
    const cloud::Region site = all[static_cast<std::size_t>(i)];
    stream::SourceSpec spec;
    spec.records_per_sec = rate;
    spec.record_size = Bytes::of(200);
    spec.key_count = 500;
    const auto source = g.add_source("events", site, spec);
    const auto filter = g.add_operator(
        "clean", site, stream::make_key_filter("clean", [](std::uint64_t key) {
          return key % 5 != 0;  // drop 20%
        }));
    g.connect(source, filter);
    g.connect(filter, window);
  }

  stream::RuntimeConfig runtime_config;
  runtime_config.geo_batch_max_bytes = Bytes::mb(2);
  runtime_config.geo_batch_max_delay = SimDuration::millis(500);
  auto runtime = engine.run_job(std::move(g), runtime_config);
  runtime->start();
  const SimDuration span = SimDuration::minutes(4);
  world.run_for(span);
  runtime->stop();

  // Source records this grid point pushed through the pipeline — the
  // harness turns it into a records-per-wall-second figure in --json.
  harness::report_task_records(
      static_cast<std::uint64_t>(static_cast<double>(sites) * rate * span.to_seconds()));

  RunResult out;
  const auto& stats = runtime->sink_stats(sink);
  out.sink_records_per_sec = static_cast<double>(stats.records) / span.to_seconds();
  if (stats.latency_ms.count() > 0) {
    out.p50_ms = stats.latency_ms.quantile(0.5);
    out.p95_ms = stats.latency_ms.quantile(0.95);
  }
  out.wan_bytes = runtime->wan_stats().bytes;
  out.wan_failures = runtime->wan_stats().failures;
  return out;
}

struct Cell {
  int sites = 0;
  double rate = 0.0;
};

void run(BenchContext& ctx) {
  const std::vector<int> site_grid = ctx.smoke() ? std::vector<int>{1, 3}
                                                 : std::vector<int>{1, 3, 6};
  const std::vector<double> rate_grid =
      ctx.smoke() ? std::vector<double>{1000.0, 4000.0}
                  : std::vector<double>{1000.0, 4000.0, 16000.0};
  std::vector<Cell> grid;
  for (int sites : site_grid) {
    for (double rate : rate_grid) grid.push_back({sites, rate});
  }

  const auto results = ctx.sweep(
      "scaling", grid, [](const Cell& c) { return run_one(c.sites, c.rate); });

  TextTable t({"Sites", "Rate/site rec/s", "WAN volume", "p50 latency ms",
               "p95 latency ms"});
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const RunResult& r = results[i];
    t.add_row({std::to_string(grid[i].sites), TextTable::num(grid[i].rate, 0),
               to_string(r.wan_bytes), TextTable::num(r.p50_ms, 0),
               TextTable::num(r.p95_ms, 0)});
  }
  print_table(t);
  print_note(
      "\nShape check: the single-site run pays only the window delay at any "
      "rate. Multi-site runs add batching plus WAN transfer (a few seconds of "
      "p50); while the per-site event stream fits the inter-site paths the "
      "latency stays rate-independent, and once a site's stream outgrows its "
      "path (16k rec/s ~ 3.2 MB/s against a ~2.7 MB/s-class transatlantic "
      "flow ceiling) the tail blows up as WAN batches queue behind each "
      "other — the geo bottleneck, not CPU, is what limits scaling.");
}

}  // namespace
}  // namespace sage::bench

int main(int argc, char** argv) {
  sage::bench::BenchContext ctx(argc, argv, "fig4_stream_scaling", "Fig 4",
                                "Streaming scaling: latency/throughput vs rate and sites");
  sage::bench::run(ctx);
  return ctx.finish();
}
