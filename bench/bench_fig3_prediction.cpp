// Fig 3 — Throughput prediction accuracy over 24 hours.
//
// The NUS -> NEU link is probed every minute for a simulated day; three
// sample-integration strategies run side by side on the same sample stream:
// LastSample ("Monitor"), Linear (LSI) and Weighted (WSI — the SAGE model).
// (a) hourly mean of the estimates vs the true link behaviour;
// (b) hourly mean absolute prediction error per strategy.
// Ground truth is the fabric oracle: the rate a fresh, well-behaved
// connection would achieve at that instant (nominal per-flow ceiling scaled
// by the link's current congestion factor). Individual probe samples also
// carry transient per-connection hiccups — glitches that do NOT reflect
// the link's deliverable rate, which is precisely what separates the three
// strategies.
#include "bench_util.hpp"
#include "common/stats.hpp"
#include "monitor/estimator.hpp"

namespace sage::bench {
namespace {

void run() {
  World world(/*seed=*/321);
  auto& provider = *world.provider;
  const auto src = provider.provision(cloud::Region::kNorthUS, cloud::VmSize::kSmall);
  const auto dst = provider.provision(cloud::Region::kNorthEU, cloud::VmSize::kSmall);

  monitor::EstimatorConfig config;
  config.history = 12;
  config.reference_interval = SimDuration::minutes(10);
  auto last = monitor::make_estimator(monitor::EstimatorKind::kLastSample, config);
  auto lsi = monitor::make_estimator(monitor::EstimatorKind::kLinear, config);
  auto wsi = monitor::make_estimator(monitor::EstimatorKind::kWeighted, config);

  constexpr int kHours = 24;
  std::array<OnlineStats, kHours> truth_by_hour;
  std::array<OnlineStats, kHours> err_last;
  std::array<OnlineStats, kHours> err_lsi;
  std::array<OnlineStats, kHours> err_wsi;
  OnlineStats total_last;
  OnlineStats total_lsi;
  OnlineStats total_wsi;

  const auto& link =
      provider.topology().link(cloud::Region::kNorthUS, cloud::Region::kNorthEU);
  auto oracle_mbps = [&] {
    const double factor =
        provider.fabric()
            .pair_capacity_now(cloud::Region::kNorthUS, cloud::Region::kNorthEU)
            .bytes_per_second() /
        link.capacity.bytes_per_second();
    return link.per_flow_cap.to_mb_per_sec() * factor;
  };

  for (int minute = 0; minute < kHours * 60; ++minute) {
    bool done = false;
    double sample = 0.0;
    provider.transfer(src.id, dst.id, Bytes::mb(8), {},
                      [&](const cloud::FlowResult& r) {
                        if (r.ok()) sample = r.achieved_rate().to_mb_per_sec();
                        done = true;
                      });
    world.run_until([&] { return done; });
    if (sample > 0.0) {
      const int hour = minute / 60;
      const double truth = oracle_mbps();
      truth_by_hour[hour].add(truth);
      if (minute > 30) {  // score after warmup
        const auto rel = [&](double est) { return std::abs(est - truth) / truth; };
        err_last[hour].add(rel(last->mean()));
        err_lsi[hour].add(rel(lsi->mean()));
        err_wsi[hour].add(rel(wsi->mean()));
        total_last.add(rel(last->mean()));
        total_lsi.add(rel(lsi->mean()));
        total_wsi.add(rel(wsi->mean()));
      }
      const SimTime now = world.engine.now();
      last->add_sample(now, sample);
      lsi->add_sample(now, sample);
      wsi->add_sample(now, sample);
    }
    world.run_for(SimDuration::minutes(1));
  }

  print_note("(a) hourly link truth and (b) relative prediction error by strategy:");
  TextTable t({"Hour", "True MB/s", "sigma", "err Monitor %", "err LSI %", "err WSI %"});
  for (int h = 0; h < kHours; ++h) {
    t.add_row({std::to_string(h), TextTable::num(truth_by_hour[h].mean(), 2),
               TextTable::num(truth_by_hour[h].stddev(), 2),
               TextTable::num(err_last[h].mean() * 100.0, 1),
               TextTable::num(err_lsi[h].mean() * 100.0, 1),
               TextTable::num(err_wsi[h].mean() * 100.0, 1)});
  }
  print_table(t);

  TextTable s({"Strategy", "Mean relative error %"});
  s.add_row({"Monitor (last sample)", TextTable::num(total_last.mean() * 100.0, 1)});
  s.add_row({"LSI (linear)", TextTable::num(total_lsi.mean() * 100.0, 1)});
  s.add_row({"WSI (weighted, SAGE)", TextTable::num(total_wsi.mean() * 100.0, 1)});
  print_note("\nAggregate over the day:");
  print_table(s);
  print_note(
      "\nShape check: WSI is the clear winner (hiccup samples are distrusted, "
      "slow congestion drift is tracked); the fixed strategies trail — Monitor "
      "swallows every glitch, LSI averages them in. All errors sit inside the "
      "10-15% band the cost/time model tolerates.");
}

}  // namespace
}  // namespace sage::bench

int main() {
  sage::bench::print_header("Fig 3", "Prediction accuracy: Monitor vs LSI vs WSI, 24 h");
  sage::bench::run();
  return 0;
}
