// Fig 7 — Environment-aware vs environment-oblivious parallel transfers.
//
// The same number of sender nodes moves growing payloads between a close
// pair (SUS -> NUS) and a far pair (NEU -> NUS), two ways:
//   * SAGE data plane: lanes pull chunks from a shared pool, so a lane that
//     slows down (multi-tenant noise, incidents) simply carries less;
//   * SimpleParallel baseline: size/N is fixed per node up front, so the
//     slowest node's share sets the finish line.
// Repeated over several seeds; mean and 95% CI reported. The gap widens
// with payload size and distance because longer transfers see more
// environment drift — exactly the paper's argument for awareness.
#include "baselines/backends.hpp"
#include "bench_util.hpp"
#include "common/stats.hpp"
#include "net/transfer.hpp"

namespace sage::bench {
namespace {

constexpr int kNodes = 4;

SimDuration run_aware(World& world, cloud::Region src_r, cloud::Region dst_r, Bytes size) {
  auto& provider = *world.provider;
  const auto src = provider.provision(src_r, cloud::VmSize::kSmall);
  const auto dst = provider.provision(dst_r, cloud::VmSize::kSmall);
  std::vector<net::Lane> lanes = net::direct_lane(src.id, dst.id);
  for (int i = 1; i < kNodes; ++i) {
    lanes.push_back(net::Lane{{src.id, provider.provision(src_r, cloud::VmSize::kSmall).id,
                               dst.id}});
  }
  net::TransferConfig config;
  config.streams_per_hop = 1;
  SimDuration elapsed;
  bool done = false;
  net::GeoTransfer transfer(provider, size, lanes, config,
                            [&](const net::TransferResult& r) {
                              elapsed = r.elapsed();
                              done = true;
                            });
  transfer.start();
  world.run_until([&] { return done; }, SimDuration::days(3));
  return elapsed;
}

SimDuration run_oblivious(World& world, cloud::Region src_r, cloud::Region dst_r,
                          Bytes size) {
  baselines::GatewayPool pool(*world.provider);
  net::TransferConfig config;
  config.streams_per_hop = 1;
  baselines::SimpleParallelBackend backend(pool, kNodes, config);
  return send_blocking(world, backend, src_r, dst_r, size).elapsed;
}

void run() {
  struct Pair {
    const char* label;
    cloud::Region src;
    cloud::Region dst;
  };
  const Pair pairs[] = {{"SUS->NUS (close)", cloud::Region::kSouthUS,
                         cloud::Region::kNorthUS},
                        {"NEU->NUS (far)", cloud::Region::kNorthEU,
                         cloud::Region::kNorthUS}};
  TextTable t({"Pair", "Size", "GEO-aware s (95% CI)", "Oblivious s (95% CI)",
               "Improvement %"});
  for (const Pair& pair : pairs) {
    for (double gb : {0.5, 2.0, 8.0}) {
      SampleSet aware;
      SampleSet oblivious;
      for (std::uint64_t seed : {21u, 22u, 23u, 24u, 25u}) {
        World wa(seed);
        aware.add(run_aware(wa, pair.src, pair.dst, Bytes::gb(gb)).to_seconds());
        World wo(seed);
        oblivious.add(run_oblivious(wo, pair.src, pair.dst, Bytes::gb(gb)).to_seconds());
      }
      const double gain =
          (oblivious.mean() - aware.mean()) / oblivious.mean() * 100.0;
      t.add_row({pair.label, TextTable::num(gb, 1) + " GB",
                 TextTable::num(aware.mean(), 0) + " +/- " +
                     TextTable::num(aware.ci95_half_width(), 0),
                 TextTable::num(oblivious.mean(), 0) + " +/- " +
                     TextTable::num(oblivious.ci95_half_width(), 0),
                 TextTable::num(gain, 1)});
    }
  }
  print_table(t);
  print_note(
      "\nShape check: the environment-aware pool wins consistently, and wins "
      "most on the far (noisier, incident-prone) pair. On this substrate the "
      "oblivious penalty is a max-of-N effect over per-lane rates, so the "
      "relative gap is largest when per-node variance is big against the run "
      "length; persistent node faults (see the failure-injection tests) are "
      "where awareness pays hardest.");
}

}  // namespace
}  // namespace sage::bench

int main() {
  sage::bench::print_header("Fig 7",
                            "Environment-aware vs oblivious parallel transfers");
  sage::bench::run();
  return 0;
}
