// Fig 7 — Environment-aware vs environment-oblivious parallel transfers.
//
// The same number of sender nodes moves growing payloads between a close
// pair (SUS -> NUS) and a far pair (NEU -> NUS), two ways:
//   * SAGE data plane: lanes pull chunks from a shared pool, so a lane that
//     slows down (multi-tenant noise, incidents) simply carries less;
//   * SimpleParallel baseline: size/N is fixed per node up front, so the
//     slowest node's share sets the finish line.
// Repeated over several seeds; mean and 95% CI reported. The gap widens
// with payload size and distance because longer transfers see more
// environment drift — exactly the paper's argument for awareness.
#include "baselines/backends.hpp"
#include "bench_util.hpp"
#include "common/stats.hpp"
#include "net/transfer.hpp"

namespace sage::bench {
namespace {

constexpr int kNodes = 4;

SimDuration run_aware(World& world, cloud::Region src_r, cloud::Region dst_r, Bytes size) {
  const LaneFan fan = provision_fan(*world.provider, src_r, dst_r, kNodes);
  net::TransferConfig config;
  config.streams_per_hop = 1;
  return run_transfer(world, size, fan.lanes, config, SimDuration::days(3)).elapsed();
}

SimDuration run_oblivious(World& world, cloud::Region src_r, cloud::Region dst_r,
                          Bytes size) {
  baselines::GatewayPool pool(*world.provider);
  net::TransferConfig config;
  config.streams_per_hop = 1;
  baselines::SimpleParallelBackend backend(pool, kNodes, config);
  return send_blocking(world, backend, src_r, dst_r, size).elapsed;
}

struct Pair {
  const char* label;
  cloud::Region src;
  cloud::Region dst;
};

struct Cell {
  const Pair* pair = nullptr;
  double gb = 0.0;
  std::uint64_t seed = 0;
  bool aware = false;
};

void run(BenchContext& ctx) {
  static const Pair pairs[] = {{"SUS->NUS (close)", cloud::Region::kSouthUS,
                                cloud::Region::kNorthUS},
                               {"NEU->NUS (far)", cloud::Region::kNorthEU,
                                cloud::Region::kNorthUS}};
  const std::vector<double> sizes =
      ctx.smoke() ? std::vector<double>{0.5} : std::vector<double>{0.5, 2.0, 8.0};
  const std::vector<std::uint64_t> seeds =
      ctx.smoke() ? std::vector<std::uint64_t>{21, 22}
                  : std::vector<std::uint64_t>{21, 22, 23, 24, 25};

  std::vector<Cell> grid;
  for (const Pair& pair : pairs) {
    for (double gb : sizes) {
      for (std::uint64_t seed : seeds) {
        grid.push_back({&pair, gb, seed, /*aware=*/true});
        grid.push_back({&pair, gb, seed, /*aware=*/false});
      }
    }
  }
  const auto times = ctx.sweep("env_aware", grid, [](const Cell& c) {
    World world(c.seed);
    const SimDuration t = c.aware
                              ? run_aware(world, c.pair->src, c.pair->dst, Bytes::gb(c.gb))
                              : run_oblivious(world, c.pair->src, c.pair->dst,
                                              Bytes::gb(c.gb));
    return t.to_seconds();
  });

  TextTable t({"Pair", "Size", "GEO-aware s (95% CI)", "Oblivious s (95% CI)",
               "Improvement %"});
  std::size_t i = 0;
  for (const Pair& pair : pairs) {
    for (double gb : sizes) {
      SampleSet aware;
      SampleSet oblivious;
      for (std::size_t s = 0; s < seeds.size(); ++s) {
        aware.add(times[i++]);
        oblivious.add(times[i++]);
      }
      const double gain =
          (oblivious.mean() - aware.mean()) / oblivious.mean() * 100.0;
      t.add_row({pair.label, TextTable::num(gb, 1) + " GB",
                 TextTable::num(aware.mean(), 0) + " +/- " +
                     TextTable::num(aware.ci95_half_width(), 0),
                 TextTable::num(oblivious.mean(), 0) + " +/- " +
                     TextTable::num(oblivious.ci95_half_width(), 0),
                 TextTable::num(gain, 1)});
    }
  }
  print_table(t);
  print_note(
      "\nShape check: the environment-aware pool wins consistently, and wins "
      "most on the far (noisier, incident-prone) pair. On this substrate the "
      "oblivious penalty is a max-of-N effect over per-lane rates, so the "
      "relative gap is largest when per-node variance is big against the run "
      "length; persistent node faults (see the failure-injection tests) are "
      "where awareness pays hardest.");
}

}  // namespace
}  // namespace sage::bench

int main(int argc, char** argv) {
  sage::bench::BenchContext ctx(argc, argv, "fig7_env_aware", "Fig 7",
                                "Environment-aware vs oblivious parallel transfers");
  sage::bench::run(ctx);
  return ctx.finish();
}
