#include "baselines/gateway.hpp"

namespace sage::baselines {

cloud::VmId GatewayPool::gateway(cloud::Region region) { return gateways(region, 1)[0]; }

std::vector<cloud::VmId> GatewayPool::gateways(cloud::Region region, int count) {
  auto& pool = gateways_[cloud::region_index(region)];
  while (static_cast<int>(pool.size()) < count) {
    pool.push_back(provider_.provision(region, size_).id);
  }
  return std::vector<cloud::VmId>(pool.begin(), pool.begin() + count);
}

std::vector<cloud::VmId> GatewayPool::helpers(cloud::Region region, int count) {
  auto& pool = helpers_[cloud::region_index(region)];
  while (static_cast<int>(pool.size()) < count) {
    pool.push_back(provider_.provision(region, size_).id);
  }
  return std::vector<cloud::VmId>(pool.begin(), pool.begin() + count);
}

std::size_t GatewayPool::heal() {
  std::size_t replaced = 0;
  for (cloud::Region r : cloud::kAllRegions) {
    for (auto* pool : {&gateways_[cloud::region_index(r)],
                       &helpers_[cloud::region_index(r)]}) {
      for (cloud::VmId& vm : *pool) {
        if (!provider_.is_active(vm)) {
          vm = provider_.provision(r, size_).id;
          ++replaced;
        }
      }
    }
  }
  return replaced;
}

void GatewayPool::release_all() {
  for (auto& pool : gateways_) {
    for (cloud::VmId vm : pool) provider_.release(vm);
    pool.clear();
  }
  for (auto& pool : helpers_) {
    for (cloud::VmId vm : pool) provider_.release(vm);
    pool.clear();
  }
}

}  // namespace sage::baselines
