#include "baselines/gateway.hpp"

#include <algorithm>

namespace sage::baselines {

cloud::VmId GatewayPool::gateway(cloud::Region region) { return gateways(region, 1)[0]; }

std::vector<cloud::VmId> GatewayPool::gateways(cloud::Region region, int count) {
  auto& pool = pool_for(gateways_, region);
  while (static_cast<int>(pool.size()) < count) {
    pool.push_back(provider_.provision(region, size_).id);
  }
  return std::vector<cloud::VmId>(pool.begin(), pool.begin() + count);
}

std::vector<cloud::VmId> GatewayPool::helpers(cloud::Region region, int count) {
  auto& pool = pool_for(helpers_, region);
  while (static_cast<int>(pool.size()) < count) {
    pool.push_back(provider_.provision(region, size_).id);
  }
  return std::vector<cloud::VmId>(pool.begin(), pool.begin() + count);
}

std::size_t GatewayPool::heal() {
  std::size_t replaced = 0;
  const std::size_t n = std::max(gateways_.size(), helpers_.size());
  for (std::size_t i = 0; i < n; ++i) {
    const cloud::Region r = cloud::make_region(i);
    for (auto* pools : {&gateways_, &helpers_}) {
      if (i >= pools->size()) continue;
      for (cloud::VmId& vm : (*pools)[i]) {
        if (!provider_.is_active(vm)) {
          vm = provider_.provision(r, size_).id;
          ++replaced;
        }
      }
    }
  }
  return replaced;
}

void GatewayPool::release_all() {
  for (auto& pool : gateways_) {
    for (cloud::VmId vm : pool) provider_.release(vm);
    pool.clear();
  }
  for (auto& pool : helpers_) {
    for (cloud::VmId vm : pool) provider_.release(vm);
    pool.clear();
  }
}

}  // namespace sage::baselines
