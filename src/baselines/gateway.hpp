// Shared VM pool for transfer backends.
//
// Every transfer system in the comparison (SAGE and the baselines) runs its
// data-movement agents in ordinary leased VMs. This helper lazily
// provisions one gateway VM per region (the transfer endpoint) plus any
// number of helper VMs (local scatter nodes / forwarders), so each backend
// pays for exactly the machines it uses — the cost comparisons in the
// benches depend on that.
#pragma once

#include <optional>
#include <vector>

#include "cloud/provider.hpp"

namespace sage::baselines {

class GatewayPool {
 public:
  explicit GatewayPool(cloud::CloudProvider& provider,
                       cloud::VmSize size = cloud::VmSize::kSmall)
      : provider_(provider), size_(size) {}

  /// The region's transfer endpoint VM (provisioned on first use).
  cloud::VmId gateway(cloud::Region region);

  /// At least `count` gateway VMs in `region` (multi-endpoint deployments
  /// spread concurrent transfers across them). gateways(r, 1)[0] is the
  /// same VM gateway(r) returns.
  std::vector<cloud::VmId> gateways(cloud::Region region, int count);

  /// At least `count` helper VMs in `region` (provisioned on demand).
  std::vector<cloud::VmId> helpers(cloud::Region region, int count);

  /// Release every VM this pool provisioned.
  void release_all();

  /// Replace every failed VM in the pool with a fresh lease in the same
  /// region (the self-healing primitive). Returns how many were replaced.
  std::size_t heal();

  [[nodiscard]] cloud::CloudProvider& provider() { return provider_; }

 private:
  /// Pool vector for a region, grown on demand (indexed by region).
  static std::vector<cloud::VmId>& pool_for(
      std::vector<std::vector<cloud::VmId>>& pools, cloud::Region region) {
    const std::size_t i = cloud::region_index(region);
    if (i >= pools.size()) pools.resize(i + 1);
    return pools[i];
  }

  cloud::CloudProvider& provider_;
  cloud::VmSize size_;
  std::vector<std::vector<cloud::VmId>> gateways_;  // indexed by region
  std::vector<std::vector<cloud::VmId>> helpers_;
};

}  // namespace sage::baselines
