// Baseline wide-area transfer systems for the evaluation's comparisons.
//
//  * DirectBackend        — one TCP session endpoint-to-endpoint; the
//                           simplest thing that works (scp/ftp-grade).
//  * SimpleParallelBackend— N sender nodes with *static* data partitioning
//                           and no monitoring: each node gets size/N up
//                           front, so one slow node drags the whole
//                           transfer (the environment-oblivious strawman
//                           the environment-aware comparison needs).
//  * GlobusStaticBackend  — GridFTP-style: parameters (stream count) tuned
//                           once at deployment time, full NIC usage, no
//                           cloud awareness, direct route only.
//  * BlobRelayBackend     — the only stock cloud offering: the source
//                           writes the payload to the destination region's
//                           object store, then the destination reads it
//                           back; two HTTP-fronted staging phases in
//                           series.
//
// All backends implement stream::TransferBackend, so every comparison can
// run both as a bulk-transfer bench and as the WAN layer under a streaming
// job.
#pragma once

#include <memory>
#include <string>

#include "baselines/gateway.hpp"
#include "net/transfer.hpp"
#include "stream/backend.hpp"

namespace sage::baselines {

class DirectBackend final : public stream::TransferBackend {
 public:
  explicit DirectBackend(GatewayPool& pool, net::TransferConfig config = {});

  void send(cloud::Region src, cloud::Region dst, Bytes size, DoneFn done) override;
  [[nodiscard]] std::string_view name() const override { return "Direct"; }

 private:
  GatewayPool& pool_;
  net::TransferConfig config_;
  std::vector<std::unique_ptr<net::GeoTransfer>> live_;
};

class SimpleParallelBackend final : public stream::TransferBackend {
 public:
  SimpleParallelBackend(GatewayPool& pool, int nodes, net::TransferConfig config = {});

  void send(cloud::Region src, cloud::Region dst, Bytes size, DoneFn done) override;
  [[nodiscard]] std::string_view name() const override { return "SimpleParallel"; }

 private:
  GatewayPool& pool_;
  int nodes_;
  net::TransferConfig config_;
  std::vector<std::unique_ptr<net::GeoTransfer>> live_;
};

class GlobusStaticBackend final : public stream::TransferBackend {
 public:
  explicit GlobusStaticBackend(GatewayPool& pool, int streams = 3);

  void send(cloud::Region src, cloud::Region dst, Bytes size, DoneFn done) override;
  [[nodiscard]] std::string_view name() const override { return "GlobusStatic"; }

 private:
  GatewayPool& pool_;
  int streams_;
  std::vector<std::unique_ptr<net::GeoTransfer>> live_;
};

class BlobRelayBackend final : public stream::TransferBackend {
 public:
  /// `gateways_per_region` spreads concurrent relays across several staging
  /// VMs per region (multi-node deployments write from the node that owns
  /// the data).
  explicit BlobRelayBackend(GatewayPool& pool, int gateways_per_region = 1);

  void send(cloud::Region src, cloud::Region dst, Bytes size, DoneFn done) override;
  [[nodiscard]] std::string_view name() const override { return "BlobRelay"; }

 private:
  GatewayPool& pool_;
  int gateways_per_region_;
  std::uint64_t next_object_ = 0;
};

}  // namespace sage::baselines
