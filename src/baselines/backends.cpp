#include "baselines/backends.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace sage::baselines {
namespace {

void reap(std::vector<std::unique_ptr<net::GeoTransfer>>& live) {
  std::erase_if(live, [](const auto& t) { return t->finished(); });
}

}  // namespace

// ---------------------------------------------------------------------------
// Direct
// ---------------------------------------------------------------------------

DirectBackend::DirectBackend(GatewayPool& pool, net::TransferConfig config)
    : pool_(pool), config_(config) {}

void DirectBackend::send(cloud::Region src, cloud::Region dst, Bytes size, DoneFn done) {
  SAGE_CHECK(done != nullptr);
  reap(live_);
  const cloud::VmId a = pool_.gateway(src);
  const cloud::VmId b = pool_.gateway(dst);
  const SimTime began = pool_.provider().engine().now();
  auto transfer = std::make_unique<net::GeoTransfer>(
      pool_.provider(), size, net::direct_lane(a, b), config_,
      [done = std::move(done), began, &engine = pool_.provider().engine()](
          const net::TransferResult& r) {
        done(stream::SendOutcome{r.ok, engine.now() - began});
      });
  transfer->start();
  live_.push_back(std::move(transfer));
}

// ---------------------------------------------------------------------------
// SimpleParallel: static partitioning, no monitoring.
// ---------------------------------------------------------------------------

SimpleParallelBackend::SimpleParallelBackend(GatewayPool& pool, int nodes,
                                             net::TransferConfig config)
    : pool_(pool), nodes_(nodes), config_(config) {
  SAGE_CHECK(nodes_ >= 1);
}

void SimpleParallelBackend::send(cloud::Region src, cloud::Region dst, Bytes size,
                                 DoneFn done) {
  SAGE_CHECK(done != nullptr);
  reap(live_);
  const cloud::VmId a = pool_.gateway(src);
  const cloud::VmId b = pool_.gateway(dst);
  const auto helpers = pool_.helpers(src, nodes_ - 1);
  const SimTime began = pool_.provider().engine().now();

  // Static partition decided up front: size/N to each node regardless of
  // how the nodes or links actually perform — this is the point of this
  // baseline. The transfer ends when the slowest share lands.
  struct Shared {
    int pending = 0;
    bool ok = true;
    DoneFn done;
    SimTime began;
    sim::SimEngine* engine = nullptr;
  };
  auto shared = std::make_shared<Shared>();
  shared->done = std::move(done);
  shared->began = began;
  shared->engine = &pool_.provider().engine();

  const Bytes share = size / nodes_;
  Bytes assigned = Bytes::zero();
  for (int i = 0; i < nodes_; ++i) {
    const Bytes part = (i + 1 == nodes_) ? size - assigned : share;
    assigned += part;
    if (part.is_zero()) continue;
    std::vector<net::Lane> lane;
    if (i == 0) {
      lane = net::direct_lane(a, b);
    } else {
      lane = {net::Lane{{a, helpers[static_cast<std::size_t>(i - 1)], b}}};
    }
    ++shared->pending;
    auto transfer = std::make_unique<net::GeoTransfer>(
        pool_.provider(), part, std::move(lane), config_,
        [shared](const net::TransferResult& r) {
          shared->ok = shared->ok && r.ok;
          if (--shared->pending == 0) {
            shared->done(stream::SendOutcome{shared->ok,
                                             shared->engine->now() - shared->began});
          }
        });
    transfer->start();
    live_.push_back(std::move(transfer));
  }
}

// ---------------------------------------------------------------------------
// GlobusStatic: parameters fixed at deployment time, full NIC, no awareness.
// ---------------------------------------------------------------------------

GlobusStaticBackend::GlobusStaticBackend(GatewayPool& pool, int streams)
    : pool_(pool), streams_(streams) {
  SAGE_CHECK(streams_ >= 1);
}

void GlobusStaticBackend::send(cloud::Region src, cloud::Region dst, Bytes size,
                               DoneFn done) {
  SAGE_CHECK(done != nullptr);
  reap(live_);
  const cloud::VmId a = pool_.gateway(src);
  const cloud::VmId b = pool_.gateway(dst);
  net::TransferConfig config;
  config.streams_per_hop = streams_;
  config.intrusiveness = 1.0;  // a dedicated GridFTP server owns its box
  const SimTime began = pool_.provider().engine().now();
  auto transfer = std::make_unique<net::GeoTransfer>(
      pool_.provider(), size, net::direct_lane(a, b), config,
      [done = std::move(done), began, &engine = pool_.provider().engine()](
          const net::TransferResult& r) {
        done(stream::SendOutcome{r.ok, engine.now() - began});
      });
  transfer->start();
  live_.push_back(std::move(transfer));
}

// ---------------------------------------------------------------------------
// BlobRelay: write to the destination region's object store, then read.
// ---------------------------------------------------------------------------

BlobRelayBackend::BlobRelayBackend(GatewayPool& pool, int gateways_per_region)
    : pool_(pool), gateways_per_region_(gateways_per_region) {
  SAGE_CHECK(gateways_per_region_ >= 1);
}

void BlobRelayBackend::send(cloud::Region src, cloud::Region dst, Bytes size, DoneFn done) {
  SAGE_CHECK(done != nullptr);
  auto& provider = pool_.provider();
  auto& blob = provider.blob(dst);
  const auto pick = static_cast<std::size_t>(next_object_ %
                                             static_cast<std::uint64_t>(gateways_per_region_));
  const cloud::VmId src_vm = pool_.gateways(src, gateways_per_region_)[pick];
  const cloud::VmId dst_vm = pool_.gateways(dst, gateways_per_region_)[pick];
  const cloud::NodeId src_node = provider.vm(src_vm).node;
  const cloud::NodeId dst_node = provider.vm(dst_vm).node;
  const std::string name = "relay-" + std::to_string(next_object_++);
  const SimTime began = provider.engine().now();

  blob.put(src_node, name, size,
           [this, &blob, dst_node, name, began, done = std::move(done)](
               const cloud::BlobOpResult& put_result) mutable {
             auto& engine = pool_.provider().engine();
             if (!put_result.ok) {
               done(stream::SendOutcome{false, engine.now() - began});
               return;
             }
             blob.get(dst_node, name,
                      [&engine, &blob, name, began,
                       done = std::move(done)](const cloud::BlobOpResult& get_result) {
                        blob.remove(name);
                        done(stream::SendOutcome{get_result.ok, engine.now() - began});
                      });
           });
}

}  // namespace sage::baselines
