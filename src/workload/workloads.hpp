// Workload generators for examples, tests and the experiment harness.
//
//  * Sensor grid   — the motivating streaming scenario: sensor feeds arrive
//    at several sites, are filtered and window-aggregated locally, and the
//    per-site aggregates stream to one global aggregation site.
//  * Clickstream   — skewed-key web analytics: per-site sessionized counts
//    joined/merged globally.
//  * Meta-reduce   — the A-Brain pattern: each of several sites produces a
//    large batch of partial-result files that must all reach a
//    meta-reducer site; the figure of merit is the total staging time.
#pragma once

#include <functional>
#include <vector>

#include "simcore/engine.hpp"
#include "stream/backend.hpp"
#include "stream/graph.hpp"

namespace sage::workload {

// ---------------------------------------------------------------------------
// Streaming jobs.
// ---------------------------------------------------------------------------

struct SensorGridParams {
  std::vector<cloud::Region> sites = {cloud::Region::kNorthEU, cloud::Region::kWestEU,
                                      cloud::Region::kNorthUS};
  cloud::Region aggregation_site = cloud::Region::kNorthUS;
  double records_per_sec_per_site = 2000.0;
  Bytes record_size = Bytes::of(200);
  std::uint64_t sensors_per_site = 500;
  SimDuration local_window = SimDuration::seconds(10);
  SimDuration global_window = SimDuration::seconds(30);
  /// Fraction of readings dropped by the local quality filter.
  double filter_keep_fraction = 0.8;
};

/// source(site) -> filter(site) -> window-mean(site) ->WAN-> global
/// window-mean(aggregation) -> sink(aggregation), per site.
[[nodiscard]] stream::JobGraph make_sensor_grid_job(const SensorGridParams& params);

struct ClickstreamParams {
  std::vector<cloud::Region> sites = {cloud::Region::kWestEU, cloud::Region::kEastUS,
                                      cloud::Region::kWestUS};
  cloud::Region aggregation_site = cloud::Region::kEastUS;
  double events_per_sec_per_site = 5000.0;
  Bytes event_size = Bytes::of(320);
  std::uint64_t url_count = 10000;
  /// Zipf exponent of URL popularity.
  double url_skew = 1.1;
  SimDuration count_window = SimDuration::seconds(5);
  SimDuration trend_window = SimDuration::seconds(30);
  /// How many trending URLs the global stage keeps per trend window.
  int top_k = 10;
};

/// source(site) -> bot filter(site) -> per-URL window count(site) ->WAN->
/// global top-k trend(aggregation) -> sink.
[[nodiscard]] stream::JobGraph make_clickstream_job(const ClickstreamParams& params);

// ---------------------------------------------------------------------------
// A-Brain-style meta-reduce staging.
// ---------------------------------------------------------------------------

struct MetaReduceParams {
  std::vector<cloud::Region> sites = {cloud::Region::kNorthEU, cloud::Region::kWestEU,
                                      cloud::Region::kSouthUS};
  cloud::Region reducer_site = cloud::Region::kNorthUS;
  int files_per_site = 1000;
  Bytes file_size = Bytes::kb(36);
  /// Concurrent in-flight files per site.
  int concurrency_per_site = 8;
};

struct MetaReduceResult {
  SimDuration total_time;
  std::uint64_t files_moved = 0;
  std::uint64_t failures = 0;
};

/// Ship every site's files to the reducer through `backend`; `done` fires
/// when the last file lands. Drive the engine to completion afterwards.
void run_metareduce(sim::SimEngine& engine, stream::TransferBackend& backend,
                    const MetaReduceParams& params,
                    std::function<void(const MetaReduceResult&)> done);

}  // namespace sage::workload
