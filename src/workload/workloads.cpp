#include "workload/workloads.hpp"

#include <memory>
#include <string>

#include "common/check.hpp"
#include "common/hash.hpp"

namespace sage::workload {

using stream::AggregateFn;
using stream::JobGraph;
using stream::Record;
using stream::SourceSpec;

JobGraph make_sensor_grid_job(const SensorGridParams& params) {
  SAGE_CHECK(!params.sites.empty());
  SAGE_CHECK(params.filter_keep_fraction > 0.0 && params.filter_keep_fraction <= 1.0);
  JobGraph g;

  // Global stage at the aggregation site.
  const auto global_agg = g.add_operator(
      "global-mean", params.aggregation_site,
      stream::make_window_aggregate("global-mean", params.global_window,
                                    AggregateFn::kMean));
  const auto sink = g.add_sink("dashboard", params.aggregation_site);
  g.connect(global_agg, sink);

  for (std::size_t i = 0; i < params.sites.size(); ++i) {
    const cloud::Region site = params.sites[i];
    const std::string suffix = "@" + std::string(cloud::region_code(site));

    SourceSpec spec;
    spec.records_per_sec = params.records_per_sec_per_site;
    spec.record_size = params.record_size;
    spec.key_count = params.sensors_per_site;
    spec.value_mean = 20.0;  // degrees-ish sensor readings
    spec.value_stddev = 5.0;
    const auto source = g.add_source("sensors" + suffix, site, spec);

    // Deterministic pseudo-random keep/drop by key hash: keeps the filter a
    // pure function (required for replayable tests).
    const double keep = params.filter_keep_fraction;
    const auto filter = g.add_operator(
        "quality-filter" + suffix, site,
        stream::make_key_filter("quality-filter", [keep](std::uint64_t key) {
          const double u =
              static_cast<double>(hash_u64(key) >> 11) * 0x1.0p-53;
          return u < keep;
        }));
    const auto local_agg = g.add_operator(
        "site-mean" + suffix, site,
        stream::make_window_aggregate("site-mean", params.local_window,
                                      AggregateFn::kMean));
    g.connect(source, filter);
    g.connect(filter, local_agg);
    g.connect(local_agg, global_agg);
  }
  g.validate();
  return g;
}

JobGraph make_clickstream_job(const ClickstreamParams& params) {
  SAGE_CHECK(!params.sites.empty());
  JobGraph g;

  // The global stage keeps only the trending URLs: per-site window counts
  // arrive as (url, count) records and the top-k operator sums them across
  // sites, emitting the k heaviest per trend window.
  const auto trend = g.add_operator(
      "global-trend", params.aggregation_site,
      stream::make_top_k("global-trend", params.trend_window, params.top_k,
                         /*sum_values=*/true));
  const auto sink = g.add_sink("trend-board", params.aggregation_site);
  g.connect(trend, sink);

  for (const cloud::Region site : params.sites) {
    const std::string suffix = "@" + std::string(cloud::region_code(site));

    SourceSpec spec;
    spec.records_per_sec = params.events_per_sec_per_site;
    spec.record_size = params.event_size;
    spec.key_count = params.url_count;
    spec.key_skew = params.url_skew;
    spec.value_mean = 1.0;  // one click
    spec.value_stddev = 0.0;
    const auto source = g.add_source("clicks" + suffix, site, spec);

    // Bot heuristic: a fixed slice of the key space is machine traffic.
    const auto bots = g.add_operator(
        "bot-filter" + suffix, site,
        stream::make_key_filter(
            "bot-filter", [](std::uint64_t key) { return (hash_u64(key) % 20) != 0; }));
    const auto counts = g.add_operator(
        "url-counts" + suffix, site,
        stream::make_window_aggregate("url-counts", params.count_window,
                                      AggregateFn::kCount));
    g.connect(source, bots);
    g.connect(bots, counts);
    g.connect(counts, trend);
  }
  g.validate();
  return g;
}

void run_metareduce(sim::SimEngine& engine, stream::TransferBackend& backend,
                    const MetaReduceParams& params,
                    std::function<void(const MetaReduceResult&)> done) {
  SAGE_CHECK(!params.sites.empty());
  SAGE_CHECK(params.files_per_site > 0);
  SAGE_CHECK(params.concurrency_per_site >= 1);
  SAGE_CHECK(done != nullptr);

  struct State {
    sim::SimEngine* engine = nullptr;
    stream::TransferBackend* backend = nullptr;
    MetaReduceParams params;
    std::function<void(const MetaReduceResult&)> done;
    SimTime began;
    std::vector<int> next_file;   // per site
    std::vector<int> completed;   // per site
    MetaReduceResult result;
    int sites_done = 0;
  };
  auto st = std::make_shared<State>();
  st->engine = &engine;
  st->backend = &backend;
  st->params = params;
  st->done = std::move(done);
  st->began = engine.now();
  st->next_file.assign(params.sites.size(), 0);
  st->completed.assign(params.sites.size(), 0);

  // One pull-loop per site with bounded in-flight files. The loop closure
  // must outlive this scope (completions fire later), so it lives in a
  // shared holder that the closure captures.
  auto holder = std::make_shared<std::function<void(std::size_t)>>();
  *holder = [st, holder](std::size_t site_idx) {
    State& s = *st;
    if (s.next_file[site_idx] >= s.params.files_per_site) return;
    ++s.next_file[site_idx];
    const cloud::Region site = s.params.sites[site_idx];
    s.backend->send(site, s.params.reducer_site, s.params.file_size,
                    [st, holder, site_idx](const stream::SendOutcome& o) {
                      State& s2 = *st;
                      if (o.ok) {
                        ++s2.result.files_moved;
                      } else {
                        ++s2.result.failures;
                      }
                      if (++s2.completed[site_idx] == s2.params.files_per_site) {
                        if (++s2.sites_done ==
                            static_cast<int>(s2.params.sites.size())) {
                          s2.result.total_time = s2.engine->now() - s2.began;
                          s2.done(s2.result);
                        }
                        return;
                      }
                      (*holder)(site_idx);
                    });
  };
  for (std::size_t i = 0; i < params.sites.size(); ++i) {
    const int burst = std::min(params.concurrency_per_site, params.files_per_site);
    for (int c = 0; c < burst; ++c) (*holder)(i);
  }
}

}  // namespace sage::workload
