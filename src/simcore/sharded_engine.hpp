// Region-sharded parallel simulation with conservative lookahead.
//
// The plain SimEngine is deliberately single-threaded; this coordinator runs
// S of them — one event lane per shard — in lock-step windows bounded by the
// minimum cross-shard link latency (the conservative lookahead horizon, the
// classic null-message insight): an event posted from shard A to shard B
// cannot arrive earlier than the A→B one-way latency, so every lane may run
// `lookahead` ahead of its peers without ever missing a cross-shard arrival.
//
// Execution alternates two strictly separated modes:
//   * inside a window, lanes run concurrently (ThreadPool::run_on_all_workers)
//     and interact ONLY by appending to their own per-(src,dst) outboxes;
//   * at the window barrier, the single-threaded coordinator drains every
//     outbox in deterministic order — records sorted by (arrival time,
//     src shard, per-src sequence) — into the destination lanes.
// A given shard count therefore always produces identical results at any
// worker count (lanes are data-independent within a window), and S=1
// collapses to a single pass-through lane that is bit-for-bit the plain
// engine. A degenerate horizon (lookahead <= 0 with S > 1, e.g. a topology
// with a zero-latency cross-shard edge) also collapses to one sequential
// lane instead of deadlocking on empty windows.
//
// Contract for lane callbacks: while a window is running, a callback on
// shard s may schedule on its own lane (shard(s).schedule_*) or cross-shard
// via post(s, dst, delay, fn) with delay >= lookahead(); it must not touch
// any other lane directly. Between runs (setup, teardown) any thread may do
// anything — the coordinator is quiescent.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/thread_pool.hpp"
#include "common/units.hpp"
#include "simcore/engine.hpp"

namespace sage::sim {

class ShardedSimEngine {
 public:
  using Callback = SimEngine::Callback;

  struct Options {
    /// Number of shards (clamped to >= 1).
    std::size_t shards = 1;
    /// Conservative lookahead horizon (minimum cross-shard one-way latency;
    /// see cloud::plan_shards). <= 0 with shards > 1 means degenerate: the
    /// engine falls back to one sequential lane.
    SimDuration lookahead = SimDuration::zero();
    /// Run lanes on an internal thread pool. false runs the same lanes in
    /// shard order on the calling thread — identical results by contract,
    /// which the differential tests assert.
    bool parallel = true;
    /// Pool width cap; 0 means hardware concurrency. The pool is never wider
    /// than the lane count.
    std::size_t max_workers = 0;
  };

  explicit ShardedSimEngine(Options opts);
  ShardedSimEngine(std::size_t shards, SimDuration lookahead)
      : ShardedSimEngine(Options{shards, lookahead, true, 0}) {}
  ~ShardedSimEngine();
  ShardedSimEngine(const ShardedSimEngine&) = delete;
  ShardedSimEngine& operator=(const ShardedSimEngine&) = delete;

  /// Shards requested (after clamping to >= 1).
  [[nodiscard]] std::size_t shard_count() const { return shards_; }
  /// Physical event lanes: shard_count(), or 1 when collapsed (S=1 or a
  /// degenerate lookahead).
  [[nodiscard]] std::size_t lane_count() const { return lanes_.size(); }
  [[nodiscard]] bool collapsed() const { return lanes_.size() == 1; }
  [[nodiscard]] SimDuration lookahead() const { return lookahead_; }
  [[nodiscard]] bool parallel() const { return pool_ != nullptr; }

  /// The lane owning shard `s`. When collapsed, every shard maps to lane 0.
  [[nodiscard]] SimEngine& shard(std::size_t s);

  /// Completed horizon: every lane has processed all events <= now().
  [[nodiscard]] SimTime now() const;

  /// Cross-shard schedule: run `fn` on shard `dst` at src-lane-now + delay.
  /// Must be called from shard `src`'s execution context (its lane callback,
  /// or any thread while the coordinator is quiescent). With multiple lanes,
  /// src != dst requires delay >= lookahead() — the conservative horizon is
  /// exactly the promise that no shorter cross-shard delay exists.
  /// src == dst schedules directly on the lane.
  void post(std::size_t src, std::size_t dst, SimDuration delay, Callback fn);

  /// Run until every lane drains and every mailbox is empty.
  /// Returns events fired.
  std::uint64_t run();

  /// Run all events with timestamp <= t on every lane (advancing each lane's
  /// clock to t), in lock-step windows of length <= lookahead().
  std::uint64_t run_until(SimTime t);

  // Aggregates over all lanes (read when quiescent).
  [[nodiscard]] std::uint64_t events_fired() const;
  [[nodiscard]] std::uint64_t events_scheduled() const;
  [[nodiscard]] std::uint64_t events_cancelled() const;
  /// Pending events summed over lanes plus undelivered mailbox posts —
  /// zero means the whole sharded world is idle (scenario drivers use this
  /// for quantized predicate waits).
  [[nodiscard]] std::size_t live_events() const;
  /// Cross-lane mailbox records delivered at barriers so far.
  [[nodiscard]] std::uint64_t cross_posts() const { return cross_posts_; }
  /// Lock-step windows executed so far (0 when collapsed).
  [[nodiscard]] std::uint64_t windows_run() const { return windows_; }

 private:
  struct Post {
    SimTime at;
    std::uint64_t seq;  // per-src-shard, monotone: ties break (at, src, seq)
    std::uint32_t src;
    Callback fn;
  };

  /// Move every outbox record into its destination lane, sorted by
  /// (at, src, seq). Single-threaded; runs only at window barriers.
  void drain_mailboxes();
  /// Earliest live event over all lanes; false when every lane is empty.
  bool earliest_event(SimTime* t);
  /// Advance every lane to `horizon` (pool workers stride over lanes, or
  /// shard order inline). Counts fired events into fired_by_lane_.
  void run_lanes(SimTime horizon);

  std::size_t shards_ = 1;
  SimDuration lookahead_ = SimDuration::zero();
  SimTime now_ = SimTime::epoch();
  std::vector<std::unique_ptr<SimEngine>> lanes_;
  std::unique_ptr<ThreadPool> pool_;
  // outbox_[src * lane_count + dst]; only shard src's lane thread appends
  // during a window, so rows never race.
  std::vector<std::vector<Post>> outbox_;
  std::vector<std::uint64_t> outbox_seq_;    // per src shard
  std::vector<std::uint64_t> fired_by_lane_;  // window scratch, lane-indexed
  std::vector<Post> merge_scratch_;
  std::uint64_t window_fired_ = 0;  // total fired through run_lanes
  std::uint64_t cross_posts_ = 0;
  std::uint64_t windows_ = 0;
};

}  // namespace sage::sim
