// Discrete-event simulation kernel.
//
// The whole SAGE reproduction executes on virtual time: the cloud fabric,
// monitoring agents, transfer sessions and streaming operators all schedule
// callbacks on one SimEngine. The engine is deliberately single-threaded —
// determinism is a hard requirement for regenerating the paper tables — and
// events with equal timestamps fire in scheduling order (FIFO tie-break via
// a monotone sequence number).
//
// Scheduling is allocation-free beyond the callback itself: event state
// lives in a slab of reusable slots, and cancellation is a generation
// check (an EventHandle names a (slot, generation) pair; releasing a slot
// bumps its generation so stale handles and stale heap entries are inert).
// Cancelled events are dropped lazily when they surface at the top of the
// heap, exactly as before.
#pragma once

#include <cstdint>
#include <memory>
#include <queue>
#include <vector>

#include "common/callback.hpp"
#include "common/units.hpp"

namespace sage::obs {
struct ObsConfig;
class Observability;
}  // namespace sage::obs

namespace sage::sim {

class SimEngine;

/// Handle used to cancel a scheduled event. Default-constructed handles are
/// inert; cancelling an already-fired event is a no-op. A handle names a
/// (slot, generation) pair inside its engine's slab, so it must not be used
/// after the engine is destroyed.
class EventHandle {
 public:
  EventHandle() = default;

  void cancel();
  [[nodiscard]] bool pending() const;

 private:
  friend class SimEngine;
  EventHandle(SimEngine* engine, std::uint32_t slot, std::uint64_t gen)
      : engine_(engine), slot_(slot), gen_(gen) {}

  SimEngine* engine_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint64_t gen_ = 0;
};

class SimEngine {
 public:
  // Small-buffer-optimized and move-only (common/callback.hpp): the typical
  // fabric/stream lambda fits the 48-byte inline buffer, so scheduling makes
  // no heap allocation, and callbacks may own move-only state.
  using Callback = InlineCallback;

  SimEngine();
  ~SimEngine();
  SimEngine(const SimEngine&) = delete;
  SimEngine& operator=(const SimEngine&) = delete;

  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedule `fn` at absolute time `t` (must be >= now()).
  EventHandle schedule_at(SimTime t, Callback fn);

  /// Schedule `fn` after a non-negative delay.
  EventHandle schedule_after(SimDuration delay, Callback fn);

  /// Run until the event queue drains. Returns the number of events fired.
  std::uint64_t run();

  /// Run all events with timestamp <= t, then advance the clock to t.
  std::uint64_t run_until(SimTime t);

  /// Fire exactly one event if any is pending. Returns false on empty queue.
  bool step();

  /// Timestamp of the earliest live event, pruning cancelled husks from the
  /// top of the heap on the way. Returns false when no live event is pending.
  /// The sharded coordinator uses this to pick each lock-step window start.
  bool peek_next_time(SimTime* t);

  [[nodiscard]] bool empty() const { return queue_.empty(); }
  [[nodiscard]] std::uint64_t events_fired() const { return fired_; }
  /// Lifetime totals: every schedule_* call, and every EventHandle::cancel
  /// that actually killed a live event. Always maintained (two integer
  /// increments; cheaper than a branch) so the event-accounting invariant
  ///   events_scheduled() == events_fired() + events_cancelled() + live_events()
  /// holds whether or not observability is enabled.
  [[nodiscard]] std::uint64_t events_scheduled() const { return scheduled_; }
  [[nodiscard]] std::uint64_t events_cancelled() const { return cancelled_; }
  /// Heap entries, including lazily-dropped cancelled events.
  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }
  /// Scheduled events that are still live — excludes cancelled husks the
  /// heap drops lazily (cancel releases its slot immediately, so the live
  /// count is exactly the allocated slots).
  [[nodiscard]] std::size_t live_events() const {
    return slots_.size() - free_slots_.size();
  }

  /// Attach an observability bundle (metrics registry + optional tracer) to
  /// this engine. Must be called before constructing the components that
  /// should report into it — they cache registry cell pointers when built.
  void enable_obs(const obs::ObsConfig& config);
  /// enable_obs() iff the SAGE_OBS environment variable is a non-empty value
  /// other than "0". Returns whether observability is now enabled.
  bool enable_obs_from_env();
  /// The engine-owned bundle, or nullptr when observability is off. This is
  /// the single switch every instrumented layer keys off.
  [[nodiscard]] obs::Observability* obs() const { return obs_.get(); }
  /// Publish the engine's own counters (sim.events.*, sim.time_seconds) into
  /// the registry. Delta-based, so repeated calls never double-count.
  void publish_obs_metrics();

 private:
  friend class EventHandle;

  // A slot is live while its generation is odd (allocation bumps even->odd,
  // release bumps odd->even). The strictly increasing generation makes every
  // stale reference — an old EventHandle or an abandoned heap entry — detect
  // its own staleness with one compare, even after the slot is reused.
  struct Slot {
    std::uint64_t gen = 0;
    Callback fn;
  };
  struct Event {
    SimTime at;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint64_t gen;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  bool fire_next();
  [[nodiscard]] bool live(std::uint32_t slot, std::uint64_t gen) const {
    return slots_[slot].gen == gen;
  }
  void release_slot(std::uint32_t slot);
  // Cancellation path only: counts the cancel, then releases. fire_next()
  // calls release_slot() directly so fired events are never counted as
  // cancelled.
  void cancel_slot(std::uint32_t slot);

  SimTime now_ = SimTime::epoch();
  std::uint64_t next_seq_ = 0;
  std::uint64_t fired_ = 0;
  std::uint64_t scheduled_ = 0;
  std::uint64_t cancelled_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::unique_ptr<obs::Observability> obs_;
  // Last values published into the registry; publish_obs_metrics() adds only
  // the delta since the previous call.
  std::uint64_t pub_scheduled_ = 0;
  std::uint64_t pub_fired_ = 0;
  std::uint64_t pub_cancelled_ = 0;
};

/// Repeats a callback at a fixed interval until stopped. The first firing is
/// one interval after start (matching a monitoring agent that needs a warmup
/// period before its first sample).
class PeriodicTask {
 public:
  PeriodicTask(SimEngine& engine, SimDuration interval, SimEngine::Callback fn);
  ~PeriodicTask();
  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  void start();
  void stop();
  [[nodiscard]] bool running() const { return running_; }
  void set_interval(SimDuration interval) { interval_ = interval; }
  [[nodiscard]] SimDuration interval() const { return interval_; }

 private:
  void arm();

  SimEngine& engine_;
  SimDuration interval_;
  SimEngine::Callback fn_;
  EventHandle next_;
  bool running_ = false;
};

}  // namespace sage::sim
