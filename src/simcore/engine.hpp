// Discrete-event simulation kernel.
//
// The whole SAGE reproduction executes on virtual time: the cloud fabric,
// monitoring agents, transfer sessions and streaming operators all schedule
// callbacks on one SimEngine. The engine is deliberately single-threaded —
// determinism is a hard requirement for regenerating the paper tables — and
// events with equal timestamps fire in scheduling order (FIFO tie-break via
// a monotone sequence number).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/units.hpp"

namespace sage::sim {

/// Handle used to cancel a scheduled event. Default-constructed handles are
/// inert; cancelling an already-fired event is a no-op.
class EventHandle {
 public:
  EventHandle() = default;

  void cancel();
  [[nodiscard]] bool pending() const;

 private:
  friend class SimEngine;
  explicit EventHandle(std::shared_ptr<bool> cancelled) : cancelled_(std::move(cancelled)) {}
  std::shared_ptr<bool> cancelled_;
};

class SimEngine {
 public:
  using Callback = std::function<void()>;

  SimEngine() = default;
  SimEngine(const SimEngine&) = delete;
  SimEngine& operator=(const SimEngine&) = delete;

  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedule `fn` at absolute time `t` (must be >= now()).
  EventHandle schedule_at(SimTime t, Callback fn);

  /// Schedule `fn` after a non-negative delay.
  EventHandle schedule_after(SimDuration delay, Callback fn);

  /// Run until the event queue drains. Returns the number of events fired.
  std::uint64_t run();

  /// Run all events with timestamp <= t, then advance the clock to t.
  std::uint64_t run_until(SimTime t);

  /// Fire exactly one event if any is pending. Returns false on empty queue.
  bool step();

  [[nodiscard]] bool empty() const { return queue_.empty(); }
  [[nodiscard]] std::uint64_t events_fired() const { return fired_; }
  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }

 private:
  struct Event {
    SimTime at;
    std::uint64_t seq;
    Callback fn;
    std::shared_ptr<bool> cancelled;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  bool fire_next();

  SimTime now_ = SimTime::epoch();
  std::uint64_t next_seq_ = 0;
  std::uint64_t fired_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

/// Repeats a callback at a fixed interval until stopped. The first firing is
/// one interval after start (matching a monitoring agent that needs a warmup
/// period before its first sample).
class PeriodicTask {
 public:
  PeriodicTask(SimEngine& engine, SimDuration interval, SimEngine::Callback fn);
  ~PeriodicTask();
  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  void start();
  void stop();
  [[nodiscard]] bool running() const { return running_; }
  void set_interval(SimDuration interval) { interval_ = interval; }
  [[nodiscard]] SimDuration interval() const { return interval_; }

 private:
  void arm();

  SimEngine& engine_;
  SimDuration interval_;
  SimEngine::Callback fn_;
  EventHandle next_;
  bool running_ = false;
};

}  // namespace sage::sim
