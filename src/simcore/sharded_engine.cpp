#include "simcore/sharded_engine.hpp"

#include <algorithm>
#include <limits>
#include <thread>
#include <tuple>
#include <utility>

#include "common/check.hpp"

namespace sage::sim {
namespace {

/// start + lookahead without signed overflow (lookahead may be
/// SimDuration::max() when no declared edge crosses shards).
SimTime saturating_add(SimTime start, SimDuration lookahead) {
  const std::int64_t s = start.count_micros();
  const std::int64_t la = lookahead.count_micros();
  const std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
  if (la > kMax - s) return SimTime::from_micros(kMax);
  return start + lookahead;
}

}  // namespace

ShardedSimEngine::ShardedSimEngine(Options opts)
    : shards_(std::max<std::size_t>(opts.shards, 1)), lookahead_(opts.lookahead) {
  // S=1 needs no coordination at all; a degenerate horizon (a zero-latency
  // cross-shard edge) admits no parallel window wider than a point, so both
  // collapse to one pass-through lane instead of deadlocking.
  const bool collapse = shards_ == 1 || lookahead_ <= SimDuration::zero();
  const std::size_t lanes = collapse ? 1 : shards_;
  lanes_.reserve(lanes);
  for (std::size_t i = 0; i < lanes; ++i) lanes_.push_back(std::make_unique<SimEngine>());
  outbox_.resize(lanes * lanes);
  outbox_seq_.assign(lanes, 0);
  fired_by_lane_.assign(lanes, 0);
  if (opts.parallel && lanes > 1) {
    std::size_t hw = std::thread::hardware_concurrency();
    if (hw == 0) hw = 1;
    std::size_t width = opts.max_workers == 0 ? hw : opts.max_workers;
    pool_ = std::make_unique<ThreadPool>(std::min(lanes, width));
  }
}

ShardedSimEngine::~ShardedSimEngine() = default;

SimEngine& ShardedSimEngine::shard(std::size_t s) {
  SAGE_CHECK_MSG(s < shards_, "shard index out of range");
  return collapsed() ? *lanes_.front() : *lanes_[s];
}

SimTime ShardedSimEngine::now() const {
  return collapsed() ? lanes_.front()->now() : now_;
}

void ShardedSimEngine::post(std::size_t src, std::size_t dst, SimDuration delay,
                            Callback fn) {
  SAGE_CHECK_MSG(src < shards_ && dst < shards_, "shard index out of range");
  SAGE_CHECK_MSG(!delay.is_negative(), "negative cross-shard delay");
  SAGE_CHECK(fn != nullptr);
  if (collapsed()) {
    // One merged lane: a cross-shard post is an ordinary local event.
    lanes_.front()->schedule_after(delay, std::move(fn));
    return;
  }
  SimEngine& lane = *lanes_[src];
  if (src == dst) {
    lane.schedule_after(delay, std::move(fn));
    return;
  }
  SAGE_CHECK_MSG(delay >= lookahead_,
                 "cross-shard post below the conservative lookahead horizon");
  // Only shard src's lane thread appends to row src during a window, so the
  // outboxes need no locks; the barrier drains them single-threaded.
  outbox_[src * lanes_.size() + dst].push_back(
      Post{lane.now() + delay, outbox_seq_[src]++, static_cast<std::uint32_t>(src),
           std::move(fn)});
}

void ShardedSimEngine::drain_mailboxes() {
  const std::size_t lanes = lanes_.size();
  for (std::size_t dst = 0; dst < lanes; ++dst) {
    merge_scratch_.clear();
    for (std::size_t src = 0; src < lanes; ++src) {
      std::vector<Post>& box = outbox_[src * lanes + dst];
      for (Post& p : box) merge_scratch_.push_back(std::move(p));
      box.clear();
    }
    if (merge_scratch_.empty()) continue;
    // (at, src, seq) is a strict total order — per-src seqs are unique — so
    // equal-time cross-shard arrivals land in the destination lane in an
    // order independent of drain iteration and of worker interleaving.
    std::sort(merge_scratch_.begin(), merge_scratch_.end(),
              [](const Post& a, const Post& b) {
                return std::tie(a.at, a.src, a.seq) < std::tie(b.at, b.src, b.seq);
              });
    cross_posts_ += merge_scratch_.size();
    SimEngine& lane = *lanes_[dst];
    for (Post& p : merge_scratch_) {
      // Conservative invariant: the lookahead bound keeps every arrival at or
      // past the receiving lane's clock (schedule_at CHECKs it).
      lane.schedule_at(p.at, std::move(p.fn));
    }
    merge_scratch_.clear();
  }
}

bool ShardedSimEngine::earliest_event(SimTime* t) {
  bool any = false;
  SimTime best = SimTime::epoch();
  for (auto& lane : lanes_) {
    SimTime lt;
    if (!lane->peek_next_time(&lt)) continue;
    if (!any || lt < best) best = lt;
    any = true;
  }
  if (any && t != nullptr) *t = best;
  return any;
}

void ShardedSimEngine::run_lanes(SimTime horizon) {
  const std::size_t lanes = lanes_.size();
  // SimTime::from_micros(max) is the drain sentinel: run the lane dry and
  // leave its clock at the last fired event instead of jumping to infinity.
  const bool drain = horizon == SimTime::from_micros(std::numeric_limits<std::int64_t>::max());
  const auto advance = [this, drain, horizon](std::size_t lane) {
    fired_by_lane_[lane] +=
        drain ? lanes_[lane]->run() : lanes_[lane]->run_until(horizon);
  };
  if (pool_ != nullptr) {
    const std::size_t width = pool_->size();
    pool_->run_on_all_workers([&advance, lanes, width](std::size_t worker) {
      // Lane-striped ownership: worker w drives lanes w, w+width, ... Each
      // lane has exactly one driver per window and fired_by_lane_ slots are
      // lane-indexed, so results and counters are pool-width independent.
      for (std::size_t lane = worker; lane < lanes; lane += width) advance(lane);
    });
  } else {
    for (std::size_t lane = 0; lane < lanes; ++lane) advance(lane);
  }
  ++windows_;
  std::uint64_t fired = 0;
  for (std::uint64_t f : fired_by_lane_) fired += f;
  window_fired_ = fired;
}

std::uint64_t ShardedSimEngine::run_until(SimTime t) {
  SAGE_CHECK(t >= now());
  if (collapsed()) return lanes_.front()->run_until(t);
  const std::uint64_t before = window_fired_;
  for (;;) {
    // Drain first so records posted during the previous window join the
    // earliest-event scan below (they may fall inside [now, t]).
    drain_mailboxes();
    SimTime earliest;
    if (!earliest_event(&earliest) || earliest > t) break;
    const SimTime start = std::max(now_, earliest);
    const SimTime end = std::min(saturating_add(start, lookahead_), t);
    run_lanes(end);
    now_ = end;
    // Termination at end == t: a window at t only fires events at exactly t,
    // and any cross-shard records they post arrive at >= t + lookahead > t,
    // so the next iteration's scan cannot find new work <= t forever.
  }
  for (auto& lane : lanes_) lane->run_until(t);  // advance clocks; fires nothing
  now_ = t;
  return window_fired_ - before;
}

std::uint64_t ShardedSimEngine::run() {
  if (collapsed()) return lanes_.front()->run();
  const std::uint64_t before = window_fired_;
  if (lookahead_ == SimDuration::max()) {
    // No declared cross-shard edge: post() can never satisfy the horizon
    // CHECK, so lanes are fully independent and drain in one pass.
    drain_mailboxes();
    run_lanes(SimTime::from_micros(std::numeric_limits<std::int64_t>::max()));
    for (const auto& lane : lanes_) now_ = std::max(now_, lane->now());
    return window_fired_ - before;
  }
  for (;;) {
    drain_mailboxes();
    SimTime earliest;
    if (!earliest_event(&earliest)) break;
    const SimTime start = std::max(now_, earliest);
    const SimTime end = saturating_add(start, lookahead_);
    run_lanes(end);
    now_ = end;
  }
  return window_fired_ - before;
}

std::uint64_t ShardedSimEngine::events_fired() const {
  std::uint64_t n = 0;
  for (const auto& lane : lanes_) n += lane->events_fired();
  return n;
}

std::uint64_t ShardedSimEngine::events_scheduled() const {
  std::uint64_t n = 0;
  for (const auto& lane : lanes_) n += lane->events_scheduled();
  return n;
}

std::uint64_t ShardedSimEngine::events_cancelled() const {
  std::uint64_t n = 0;
  for (const auto& lane : lanes_) n += lane->events_cancelled();
  return n;
}

std::size_t ShardedSimEngine::live_events() const {
  std::size_t n = 0;
  for (const auto& lane : lanes_) n += lane->live_events();
  for (const auto& box : outbox_) n += box.size();
  return n;
}

}  // namespace sage::sim
