#include "simcore/engine.hpp"

#include <cstdlib>

#include "common/check.hpp"
#include "obs/obs.hpp"

namespace sage::sim {

SimEngine::SimEngine() = default;
SimEngine::~SimEngine() = default;

void EventHandle::cancel() {
  if (engine_ == nullptr || !engine_->live(slot_, gen_)) return;
  engine_->cancel_slot(slot_);
}

bool EventHandle::pending() const { return engine_ != nullptr && engine_->live(slot_, gen_); }

EventHandle SimEngine::schedule_at(SimTime t, Callback fn) {
  SAGE_CHECK_MSG(t >= now_, "cannot schedule an event in the simulated past");
  SAGE_CHECK(fn != nullptr);
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  ++s.gen;  // even -> odd: live
  s.fn = std::move(fn);
  queue_.push(Event{t, next_seq_++, slot, s.gen});
  ++scheduled_;
  return EventHandle{this, slot, s.gen};
}

EventHandle SimEngine::schedule_after(SimDuration delay, Callback fn) {
  SAGE_CHECK_MSG(!delay.is_negative(), "negative delay");
  return schedule_at(now_ + delay, std::move(fn));
}

void SimEngine::release_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  ++s.gen;  // odd -> even: dead; stale heap entries / handles now mismatch
  s.fn = nullptr;
  free_slots_.push_back(slot);
}

void SimEngine::cancel_slot(std::uint32_t slot) {
  ++cancelled_;
  release_slot(slot);
}

void SimEngine::enable_obs(const obs::ObsConfig& config) {
  if (obs_ == nullptr) obs_ = std::make_unique<obs::Observability>(config);
}

bool SimEngine::enable_obs_from_env() {
  const char* v = std::getenv("SAGE_OBS");
  if (v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0')) {
    enable_obs(obs::ObsConfig{});
  }
  return obs_ != nullptr;
}

void SimEngine::publish_obs_metrics() {
  if (obs_ == nullptr) return;
  auto& m = obs_->metrics();
  m.counter("sim.events.scheduled")->add(scheduled_ - pub_scheduled_);
  m.counter("sim.events.fired")->add(fired_ - pub_fired_);
  m.counter("sim.events.cancelled")->add(cancelled_ - pub_cancelled_);
  pub_scheduled_ = scheduled_;
  pub_fired_ = fired_;
  pub_cancelled_ = cancelled_;
  m.gauge("sim.events.live")->set(static_cast<double>(live_events()));
  m.gauge("sim.time_seconds")->set(now_.to_seconds());
}

bool SimEngine::fire_next() {
  while (!queue_.empty()) {
    const Event ev = queue_.top();
    queue_.pop();
    if (!live(ev.slot, ev.gen)) continue;  // cancelled, drop lazily
    Callback fn = std::move(slots_[ev.slot].fn);
    release_slot(ev.slot);
    now_ = ev.at;
    ++fired_;
    fn();
    return true;
  }
  return false;
}

std::uint64_t SimEngine::run() {
  std::uint64_t n = 0;
  while (fire_next()) ++n;
  return n;
}

std::uint64_t SimEngine::run_until(SimTime t) {
  SAGE_CHECK(t >= now_);
  std::uint64_t n = 0;
  while (!queue_.empty()) {
    // Skip cancelled events eagerly so they do not block the horizon test.
    const Event& top = queue_.top();
    if (!live(top.slot, top.gen)) {
      queue_.pop();
      continue;
    }
    if (top.at > t) break;
    if (fire_next()) ++n;
  }
  now_ = t;
  return n;
}

bool SimEngine::step() { return fire_next(); }

bool SimEngine::peek_next_time(SimTime* t) {
  while (!queue_.empty()) {
    const Event& top = queue_.top();
    if (!live(top.slot, top.gen)) {
      queue_.pop();
      continue;
    }
    if (t != nullptr) *t = top.at;
    return true;
  }
  return false;
}

PeriodicTask::PeriodicTask(SimEngine& engine, SimDuration interval, SimEngine::Callback fn)
    : engine_(engine), interval_(interval), fn_(std::move(fn)) {
  SAGE_CHECK(interval_ > SimDuration::zero());
  SAGE_CHECK(fn_ != nullptr);
}

PeriodicTask::~PeriodicTask() { stop(); }

void PeriodicTask::start() {
  if (running_) return;
  running_ = true;
  arm();
}

void PeriodicTask::stop() {
  running_ = false;
  next_.cancel();
}

void PeriodicTask::arm() {
  next_ = engine_.schedule_after(interval_, [this] {
    if (!running_) return;
    fn_();
    if (running_) arm();
  });
}

}  // namespace sage::sim
