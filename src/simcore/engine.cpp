#include "simcore/engine.hpp"

#include "common/check.hpp"

namespace sage::sim {

void EventHandle::cancel() {
  if (engine_ == nullptr || !engine_->live(slot_, gen_)) return;
  engine_->release_slot(slot_);
}

bool EventHandle::pending() const { return engine_ != nullptr && engine_->live(slot_, gen_); }

EventHandle SimEngine::schedule_at(SimTime t, Callback fn) {
  SAGE_CHECK_MSG(t >= now_, "cannot schedule an event in the simulated past");
  SAGE_CHECK(fn != nullptr);
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  ++s.gen;  // even -> odd: live
  s.fn = std::move(fn);
  queue_.push(Event{t, next_seq_++, slot, s.gen});
  return EventHandle{this, slot, s.gen};
}

EventHandle SimEngine::schedule_after(SimDuration delay, Callback fn) {
  SAGE_CHECK_MSG(!delay.is_negative(), "negative delay");
  return schedule_at(now_ + delay, std::move(fn));
}

void SimEngine::release_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  ++s.gen;  // odd -> even: dead; stale heap entries / handles now mismatch
  s.fn = nullptr;
  free_slots_.push_back(slot);
}

bool SimEngine::fire_next() {
  while (!queue_.empty()) {
    const Event ev = queue_.top();
    queue_.pop();
    if (!live(ev.slot, ev.gen)) continue;  // cancelled, drop lazily
    Callback fn = std::move(slots_[ev.slot].fn);
    release_slot(ev.slot);
    now_ = ev.at;
    ++fired_;
    fn();
    return true;
  }
  return false;
}

std::uint64_t SimEngine::run() {
  std::uint64_t n = 0;
  while (fire_next()) ++n;
  return n;
}

std::uint64_t SimEngine::run_until(SimTime t) {
  SAGE_CHECK(t >= now_);
  std::uint64_t n = 0;
  while (!queue_.empty()) {
    // Skip cancelled events eagerly so they do not block the horizon test.
    const Event& top = queue_.top();
    if (!live(top.slot, top.gen)) {
      queue_.pop();
      continue;
    }
    if (top.at > t) break;
    if (fire_next()) ++n;
  }
  now_ = t;
  return n;
}

bool SimEngine::step() { return fire_next(); }

PeriodicTask::PeriodicTask(SimEngine& engine, SimDuration interval, SimEngine::Callback fn)
    : engine_(engine), interval_(interval), fn_(std::move(fn)) {
  SAGE_CHECK(interval_ > SimDuration::zero());
  SAGE_CHECK(fn_ != nullptr);
}

PeriodicTask::~PeriodicTask() { stop(); }

void PeriodicTask::start() {
  if (running_) return;
  running_ = true;
  arm();
}

void PeriodicTask::stop() {
  running_ = false;
  next_.cancel();
}

void PeriodicTask::arm() {
  next_ = engine_.schedule_after(interval_, [this] {
    if (!running_) return;
    fn_();
    if (running_) arm();
  });
}

}  // namespace sage::sim
