#include "simcore/engine.hpp"

#include "common/check.hpp"

namespace sage::sim {

void EventHandle::cancel() {
  if (cancelled_) *cancelled_ = true;
}

bool EventHandle::pending() const { return cancelled_ && !*cancelled_; }

EventHandle SimEngine::schedule_at(SimTime t, Callback fn) {
  SAGE_CHECK_MSG(t >= now_, "cannot schedule an event in the simulated past");
  SAGE_CHECK(fn != nullptr);
  auto cancelled = std::make_shared<bool>(false);
  queue_.push(Event{t, next_seq_++, std::move(fn), cancelled});
  return EventHandle{std::move(cancelled)};
}

EventHandle SimEngine::schedule_after(SimDuration delay, Callback fn) {
  SAGE_CHECK_MSG(!delay.is_negative(), "negative delay");
  return schedule_at(now_ + delay, std::move(fn));
}

bool SimEngine::fire_next() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    if (*ev.cancelled) continue;
    // The handle's flag doubles as a "fired" marker so pending() turns false.
    *ev.cancelled = true;
    now_ = ev.at;
    ++fired_;
    ev.fn();
    return true;
  }
  return false;
}

std::uint64_t SimEngine::run() {
  std::uint64_t n = 0;
  while (fire_next()) ++n;
  return n;
}

std::uint64_t SimEngine::run_until(SimTime t) {
  SAGE_CHECK(t >= now_);
  std::uint64_t n = 0;
  while (!queue_.empty()) {
    // Skip cancelled events eagerly so they do not block the horizon test.
    if (*queue_.top().cancelled) {
      queue_.pop();
      continue;
    }
    if (queue_.top().at > t) break;
    if (fire_next()) ++n;
  }
  now_ = t;
  return n;
}

bool SimEngine::step() { return fire_next(); }

PeriodicTask::PeriodicTask(SimEngine& engine, SimDuration interval, SimEngine::Callback fn)
    : engine_(engine), interval_(interval), fn_(std::move(fn)) {
  SAGE_CHECK(interval_ > SimDuration::zero());
  SAGE_CHECK(fn_ != nullptr);
}

PeriodicTask::~PeriodicTask() { stop(); }

void PeriodicTask::start() {
  if (running_) return;
  running_ = true;
  arm();
}

void PeriodicTask::stop() {
  running_ = false;
  next_.cancel();
}

void PeriodicTask::arm() {
  next_ = engine_.schedule_after(interval_, [this] {
    if (!running_) return;
    fn_();
    if (running_) arm();
  });
}

}  // namespace sage::sim
