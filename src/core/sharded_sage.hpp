// ShardedSage — a full SAGE deployment running on the region-sharded engine.
//
// The control plane (SageEngine + MonitoringService + planner + per-region
// agents) was built around one global event lane. This facade runs S
// replicas of it, one per `sim::ShardedSimEngine` lane, and partitions the
// *activity* by region ownership while keeping the *state* replicated:
//
//   - Every lane deploys the full agent/gateway/helper pool over its own
//     fabric, so region-indexed lookups work everywhere, but a lane probes
//     only the directed pairs whose source region it owns and executes only
//     the transfers whose source region it owns.
//   - Every produced monitoring sample (probe result or transfer
//     observation) is relayed to the remote lanes through the conservative
//     lookahead mailboxes with a *uniform* report delay D = the topology's
//     maximum one-way latency (>= the lookahead for any shard count); the
//     producing lane defers its own ingestion by the same D. All lanes
//     therefore ingest the identical sample multiset at identical absolute
//     sim times — per-lane sample epochs advance in lock-step and the PR 5
//     epoch-keyed plan/resolve/snapshot caches stay value-identical across
//     lanes without any cross-lane invalidation (the "epoch-merge rule" of
//     DESIGN.md §16).
//   - Transfers use shard-local lane topologies (direct routes widened with
//     source-region scatter helpers) and ephemeral per-send endpoint VMs,
//     so every flow a lane starts crosses only links its shard owns and
//     never contends on a NIC with another lane's flows. Combined with a
//     *stable* (noise-free) topology, flow rates — and thus every control
//     decision — are invariant to the shard count: S ∈ {1,2,4,...} produce
//     byte-identical scenario output, and S=1 collapses to one plain lane.
//
// What changes with S is only the wall clock: each lane's fabric holds just
// its owned flows, so the fabric-wide max-min settlement sweeps (the
// superlinear cost PR 7 measured) shrink by the partition factor.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cloud/provider.hpp"
#include "cloud/topology.hpp"
#include "core/sage.hpp"
#include "simcore/sharded_engine.hpp"

namespace sage::core {

class ShardedSage {
 public:
  struct Options {
    /// Requested shard count (clamped to [1, region_count] by plan_shards).
    std::size_t shards = 1;
    /// Run lanes on an internal thread pool (false = inline in shard order;
    /// identical results by contract).
    bool parallel = true;
    /// Pool width cap; 0 = hardware concurrency.
    std::size_t max_workers = 0;
  };

  /// The topology must be *stable* (zero WAN noise on every declared edge):
  /// stochastic capacity draws happen per-fabric and would break the
  /// shard-count invariance of measured rates.
  ShardedSage(std::shared_ptr<const cloud::Topology> topology, std::uint64_t seed,
              SageConfig config, Options opts);
  ~ShardedSage();
  ShardedSage(const ShardedSage&) = delete;
  ShardedSage& operator=(const ShardedSage&) = delete;

  /// Deploy every lane's replica (agents + pools) and start monitoring.
  void deploy();

  /// Issue a bulk transfer on the source region's owning lane. Call from a
  /// quiescent coordinator (between run_* calls) or from a callback already
  /// running on that same lane; `done` runs on the owning lane.
  void send(cloud::Region src, cloud::Region dst, Bytes size,
            const model::Tradeoff& tradeoff, stream::TransferBackend::DoneFn done);

  /// Advance every lane by `d` (lock-step windows of the lookahead).
  void run_for(SimDuration d);
  /// Advance in `quantum` steps until the whole world is idle (no pending
  /// events or mailbox posts) or `budget` sim time has elapsed. Quantized so
  /// the stopping time is a deterministic function of sim state, never of
  /// lane interleaving. Returns true when idle was reached.
  bool run_until_idle(SimDuration budget, SimDuration quantum);

  [[nodiscard]] sim::ShardedSimEngine& engine() { return *engine_; }
  [[nodiscard]] const cloud::ShardPlan& plan() const { return plan_; }
  [[nodiscard]] std::size_t lane_count() const { return lanes_.size(); }
  /// Lane owning `r`'s activity (0 for everything when collapsed).
  [[nodiscard]] std::size_t lane_of(cloud::Region r) const {
    return engine_->collapsed() ? 0 : plan_.shard(r);
  }
  [[nodiscard]] SageEngine& lane(std::size_t l) { return *lanes_[l]; }
  [[nodiscard]] cloud::CloudProvider& provider(std::size_t l) { return *providers_[l]; }
  /// Uniform sample report delay D applied on every lane.
  [[nodiscard]] SimDuration report_delay() const { return report_delay_; }

  /// Lock-step check (call quiescent): every lane saw the same number of
  /// accepted samples, the invariant the per-lane caches rely on.
  [[nodiscard]] bool epochs_consistent() const;

 private:
  std::shared_ptr<const cloud::Topology> topology_;
  cloud::ShardPlan plan_;
  SimDuration report_delay_;
  std::unique_ptr<sim::ShardedSimEngine> engine_;
  std::vector<std::unique_ptr<cloud::CloudProvider>> providers_;
  std::vector<std::unique_ptr<SageEngine>> lanes_;
};

}  // namespace sage::core
