#include "core/sharded_sage.hpp"

#include <algorithm>
#include <utility>

#include "common/check.hpp"

namespace sage::core {

ShardedSage::ShardedSage(std::shared_ptr<const cloud::Topology> topology,
                         std::uint64_t seed, SageConfig config, Options opts)
    : topology_(std::move(topology)) {
  SAGE_CHECK(topology_ != nullptr);
  plan_ = cloud::plan_shards(*topology_, opts.shards);

  // The uniform sample report delay: every lane — the producer included —
  // ingests a sample exactly D after production. D must cover the longest
  // one-way hop so a cross-shard relay is always postable within the
  // conservative horizon (D >= min cross-shard latency = lookahead).
  report_delay_ = SimDuration::zero();
  for (const cloud::Topology::Edge& e : topology_->edges()) {
    if (e.src == e.dst) continue;
    SAGE_CHECK_MSG(e.spec.variability.noise_sigma <= 0.0 &&
                       e.spec.variability.incidents_per_day <= 0.0,
                   "ShardedSage requires a stable (noise-free) topology: "
                   "stochastic capacity draws are per-fabric and would break "
                   "shard-count invariance");
    report_delay_ = std::max(report_delay_, e.spec.latency);
  }
  SAGE_CHECK_MSG(report_delay_ > SimDuration::zero(),
                 "topology declares no inter-region edges");

  sim::ShardedSimEngine::Options eng;
  eng.shards = plan_.shards;
  eng.lookahead = plan_.lookahead;
  eng.parallel = opts.parallel;
  eng.max_workers = opts.max_workers;
  engine_ = std::make_unique<sim::ShardedSimEngine>(eng);

  const std::size_t lanes = engine_->lane_count();
  providers_.reserve(lanes);
  lanes_.reserve(lanes);
  for (std::size_t l = 0; l < lanes; ++l) {
    // Identical seed on every lane: the replicated deployment (agent CPU
    // models, blob services) is then bit-identical across lanes. Per-lane
    // divergence only begins with ephemeral send endpoints, whose forked
    // RNG streams are never read back.
    providers_.push_back(
        std::make_unique<cloud::CloudProvider>(engine_->shard(l), topology_, seed));
    // Byte progress truncates at every fabric advancement point, so refresh
    // ticks must land on a shared absolute grid or completion times pick up
    // sub-ms drift that depends on the shard count.
    providers_.back()->fabric().set_refresh_grid(true);
    SageConfig lane_cfg = config;
    lane_cfg.shard_local_lanes = true;
    lane_cfg.ephemeral_endpoints = true;
    lane_cfg.monitoring.isolated_probes = true;
    lane_cfg.monitoring.report_delay = report_delay_;
    lane_cfg.monitoring.probe_filter = [this, l](cloud::Region a, cloud::Region) {
      return lane_of(a) == l;
    };
    lanes_.push_back(std::make_unique<SageEngine>(*providers_.back(), lane_cfg));
  }

  // Sample relay: fan each produced sample out to every remote lane at the
  // same +D the producer applies locally. The mailbox merge orders same-time
  // deliveries by (time, src shard, seq) — deterministic, and commutative
  // for estimator state since distinct pairs own distinct estimators.
  for (std::size_t l = 0; l < lanes; ++l) {
    lanes_[l]->monitoring().set_report_relay(
        [this, l](cloud::Region src, cloud::Region dst, double mbps) {
          for (std::size_t m = 0; m < lanes_.size(); ++m) {
            if (m == l) continue;
            engine_->post(l, m, report_delay_, [this, m, src, dst, mbps] {
              lanes_[m]->monitoring().deliver_sample(src, dst, mbps);
            });
          }
        });
  }
}

ShardedSage::~ShardedSage() = default;

void ShardedSage::deploy() {
  for (auto& lane : lanes_) lane->deploy();
}

void ShardedSage::send(cloud::Region src, cloud::Region dst, Bytes size,
                       const model::Tradeoff& tradeoff,
                       stream::TransferBackend::DoneFn done) {
  lanes_[lane_of(src)]->send_with(tradeoff, src, dst, size, std::move(done));
}

void ShardedSage::run_for(SimDuration d) {
  engine_->run_until(engine_->now() + d);
}

bool ShardedSage::run_until_idle(SimDuration budget, SimDuration quantum) {
  SAGE_CHECK(quantum > SimDuration::zero());
  const SimTime deadline = engine_->now() + budget;
  while (engine_->live_events() > 0) {
    if (engine_->now() >= deadline) return false;
    const SimTime next = std::min(engine_->now() + quantum, deadline);
    engine_->run_until(next);
  }
  return true;
}

bool ShardedSage::epochs_consistent() const {
  const std::uint64_t first = lanes_.front()->monitoring().sample_epoch();
  return std::all_of(lanes_.begin(), lanes_.end(), [first](const auto& lane) {
    return lane->monitoring().sample_epoch() == first;
  });
}

}  // namespace sage::core
