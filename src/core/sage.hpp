// SageEngine — the system's public facade.
//
// SAGE = monitored environment + cost/time model + multi-path planner +
// adaptive execution, packaged as (a) a bulk geo-transfer service with an
// explicit cost/time tradeoff knob and (b) the WAN backend of the streaming
// runtime. The control loop per transfer:
//
//   1. snapshot the monitoring map (per-link µ, σ);
//   2. resolve the user's Tradeoff (budget / deadline / λ blend) against
//      the model's cost/time frontier -> node budget n;
//   3. run the multi-datacenter path planner with n and the deployment's
//      VM inventory -> a widened multi-path topology;
//   4. execute as a chunked, acknowledged, deduplicating GeoTransfer whose
//      lanes pull from a shared chunk pool (fast lanes carry more);
//   5. periodically re-plan while the transfer runs: if the fresh map
//      promises materially more throughput (or lanes died), swap the lane
//      set in place;
//   6. feed the achieved rate back into the monitoring map (a free sample).
//
// Every decision the engine takes is recorded in a SendRecord so the
// experiment harness can compare predicted vs achieved time and cost.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "baselines/gateway.hpp"
#include "cloud/provider.hpp"
#include "model/cost_model.hpp"
#include "model/tradeoff.hpp"
#include "monitor/monitoring.hpp"
#include "net/transfer.hpp"
#include "obs/obs.hpp"
#include "net/tree_transfer.hpp"
#include "sched/broadcast.hpp"
#include "sched/multipath.hpp"
#include "stream/backend.hpp"
#include "stream/graph.hpp"
#include "stream/runtime.hpp"

namespace sage::core {

struct SageConfig {
  /// Datacenters the deployment spans (agents + usable forwarders).
  std::vector<cloud::Region> regions;
  /// Helper/forwarder VM inventory cap per region.
  int helpers_per_region = 4;
  /// Transfer endpoint VMs per region; concurrent sends round-robin across
  /// them so one endpoint's NIC never chokes a whole site's traffic.
  int gateways_per_region = 1;
  /// VM size for agents, gateways and helpers.
  cloud::VmSize agent_vm = cloud::VmSize::kSmall;

  model::ModelParams model;
  sched::PlannerParams planner;
  net::TransferConfig transfer;
  monitor::MonitorConfig monitoring;

  /// Default tradeoff applied by the TransferBackend interface.
  model::Tradeoff tradeoff;

  /// Re-planning cadence while transfers run. One engine-wide sweep task
  /// walks every live transfer at this interval (transfers whose monitoring
  /// epoch is unchanged since their last evaluation are skipped in O(1)).
  SimDuration adapt_interval = SimDuration::seconds(5);
  /// Memoize control-plane decisions (tradeoff resolution, multipath plans,
  /// replan-sweep epoch skips) on the monitoring sample epoch. The memos
  /// are value-preserving — cached and uncached runs are bit-identical —
  /// so this knob (AND the SAGE_CTRL_CACHE env gate) exists for A/B
  /// measurement and the differential tests.
  bool memoize_control = true;
  /// Self-healing: the engine periodically replaces failed gateway/helper
  /// VMs and re-registers monitoring agents. Zero disables it.
  SimDuration health_check_interval = SimDuration::seconds(30);
  /// A fresh plan must promise at least this relative throughput gain to
  /// displace the executing one (hysteresis against monitoring noise).
  double replan_threshold = 0.15;
  /// Sharded control plane: restrict every transfer's lane topology to VMs
  /// in the source (and destination endpoint) region, so all of its flows
  /// cross only links owned by the source region's shard. The planner sees
  /// zero helper inventory in interior regions and therefore emits
  /// direct-only plans — relay routes would cross links another lane owns.
  bool shard_local_lanes = false;
  /// Sharded control plane: provision a fresh pair of endpoint VMs per
  /// send (released on completion) instead of round-robining the shared
  /// gateway pool, so transfers from differently-owned source regions never
  /// contend on a shared destination NIC — rates then depend only on the
  /// owning lane's flow population, invariant to the shard count.
  bool ephemeral_endpoints = false;
};

/// Everything SAGE decided and observed for one send.
struct SendRecord {
  cloud::Region src;
  cloud::Region dst;
  Bytes size;
  /// Model prediction backing the decision (nullopt when the engine fell
  /// back to a direct transfer for lack of monitoring data).
  std::optional<model::TransferEstimate> estimate;
  int lanes_used = 1;
  int replans = 0;
  bool ok = false;
  SimDuration elapsed;
  net::TransferStats stats;
};

class SageEngine final : public stream::TransferBackend {
 public:
  SageEngine(cloud::CloudProvider& provider, SageConfig config);
  ~SageEngine() override;

  /// Provision one agent VM per configured region, register them with the
  /// monitoring service and start probing. Call once; give the monitoring
  /// map a warm-up period (run the engine) before heavy use.
  void deploy();

  /// Stop monitoring and release every VM the engine provisioned.
  void shutdown();

  // -- TransferBackend (streaming WAN layer) -------------------------------
  void send(cloud::Region src, cloud::Region dst, Bytes size, DoneFn done) override;
  [[nodiscard]] std::string_view name() const override { return "SAGE"; }

  /// Bulk transfer with an explicit tradeoff.
  void send_with(const model::Tradeoff& tradeoff, cloud::Region src, cloud::Region dst,
                 Bytes size, DoneFn done);

  /// Result of a one-to-many dissemination.
  struct DisseminateResult {
    bool ok = false;  // every target received the dataset
    SimDuration elapsed;
    /// (region, arrival time after start) per target, in arrival order.
    std::vector<std::pair<cloud::Region, SimDuration>> arrivals;
    int tree_edges = 0;
  };
  using DisseminateFn = std::function<void(const DisseminateResult&)>;

  /// Replicate `size` bytes from `src` to every region in `targets`
  /// through a widest-spanning-tree multicast with chunk-level cut-through
  /// (adaptive dissemination): interior sites forward each chunk onward
  /// while still receiving the rest, so the deepest site completes at
  /// roughly size / min(edge rate) instead of paying each stage in full.
  /// Falls back to a source-rooted star when the map lacks data.
  void disseminate(cloud::Region src, const std::vector<cloud::Region>& targets,
                   Bytes size, DisseminateFn done);

  // -- Streaming ------------------------------------------------------------
  /// Run a job with this engine as its WAN backend.
  [[nodiscard]] std::unique_ptr<stream::StreamRuntime> run_job(
      stream::JobGraph graph, stream::RuntimeConfig runtime_config = {});

  /// Run one coalesced replan pass over every live transfer right now (the
  /// engine normally runs this from its adapt_interval timer). Returns the
  /// number of transfers whose plan was actually re-evaluated — live
  /// transfers whose monitoring epoch is unchanged since their last
  /// evaluation are skipped with a single integer compare. Public so the
  /// control-plane microbench and tests can drive the sweep directly.
  std::size_t replan_sweep();

  // -- Introspection ---------------------------------------------------------

  /// Event-loop accounting for the introspection report. The fields mirror
  /// SimEngine's counter surface exactly — sim::ShardedSimEngine exposes the
  /// same aggregates summed over its lanes, so a sharded deployment reports
  /// through this struct unchanged.
  struct RuntimeStats {
    SimTime now;
    std::uint64_t events_scheduled = 0;
    std::uint64_t events_fired = 0;
    std::uint64_t events_cancelled = 0;
    std::size_t events_live = 0;
  };
  [[nodiscard]] RuntimeStats runtime_stats() const;

  [[nodiscard]] monitor::MonitoringService& monitoring() { return *monitoring_; }
  [[nodiscard]] const model::CostModel& cost_model() const { return cost_model_; }
  [[nodiscard]] const sched::MultiPathPlanner& planner() const { return planner_; }
  [[nodiscard]] const std::vector<SendRecord>& history() const { return history_; }
  [[nodiscard]] cloud::CostReport cost() { return provider_.cost_report(); }
  [[nodiscard]] const SageConfig& config() const { return config_; }
  /// VMs replaced by the self-healing loop so far.
  [[nodiscard]] std::uint64_t vms_healed() const { return vms_healed_; }
  /// Control-plane cache accounting (monotone; all zero when memoization is
  /// disabled via config or SAGE_CTRL_CACHE=0).
  [[nodiscard]] std::uint64_t replans_skipped() const { return replans_skipped_; }
  [[nodiscard]] const sched::PlanCache& plan_cache() const { return plan_cache_; }
  [[nodiscard]] const model::ResolveCache& resolve_cache() const { return resolve_cache_; }

 private:
  struct LiveTransfer {
    std::unique_ptr<net::GeoTransfer> transfer;
    sched::MultiPathPlan plan;
    std::size_t record_index = 0;
    cloud::Region src = cloud::Region::kNorthEU;
    cloud::Region dst = cloud::Region::kNorthEU;
    cloud::VmId src_gw = 0;
    cloud::VmId dst_gw = 0;
    /// Endpoints are per-send leases to release on completion
    /// (config_.ephemeral_endpoints only).
    bool owns_endpoints = false;
    /// Monitoring epoch at which this transfer's plan was last (re)evaluated;
    /// the sweep skips the transfer while the epoch stays put.
    std::uint64_t last_eval_epoch = 0;
  };

  [[nodiscard]] sched::Inventory inventory(cloud::Region src, cloud::Region dst) const;
  [[nodiscard]] std::vector<net::Lane> build_lanes(const sched::MultiPathPlan& plan,
                                                   cloud::VmId src_gw, cloud::VmId dst_gw,
                                                   cloud::Region src);
  void adapt_transfer(LiveTransfer& live, const monitor::ThroughputMatrix& matrix);
  /// Memoized (when enabled) planner invocation shared by send and replan.
  [[nodiscard]] sched::MultiPathPlan plan_for(const monitor::ThroughputMatrix& matrix,
                                              cloud::Region src, cloud::Region dst,
                                              int node_budget);
  void reap();
  void health_check();

  cloud::CloudProvider& provider_;
  sim::SimEngine& engine_;
  SageConfig config_;
  baselines::GatewayPool pool_;
  std::unique_ptr<monitor::MonitoringService> monitoring_;
  model::CostModel cost_model_;
  model::TradeoffSolver solver_;
  sched::MultiPathPlanner planner_;
  std::vector<std::unique_ptr<LiveTransfer>> live_;
  std::vector<std::unique_ptr<net::TreeTransfer>> live_trees_;
  std::vector<SendRecord> history_;
  std::unique_ptr<sim::PeriodicTask> health_task_;
  /// One engine-wide sweep task replaces the per-transfer adapt timers; it
  /// starts with the first live transfer and parks itself when none remain.
  std::unique_ptr<sim::PeriodicTask> replan_task_;
  sched::PlanCache plan_cache_;
  model::ResolveCache resolve_cache_;
  /// Effective memoization switch: config_.memoize_control AND the
  /// SAGE_CTRL_CACHE env gate, resolved once at construction.
  bool ctrl_cache_ = true;
  std::uint64_t replans_skipped_ = 0;
  obs::Counter* obs_replan_skipped_ = nullptr;
  std::uint64_t vms_healed_ = 0;
  std::uint64_t send_counter_ = 0;
  bool deployed_ = false;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace sage::core
