// Operator placement policy.
//
// SAGE's placement rule is locality-first: an analysis operator whose
// inputs all originate on one site runs on that site (shrinking the data
// before it crosses the WAN); any operator that merges streams from
// several sites runs at the designated aggregation site. Sources and sinks
// keep their user-pinned locations.
#pragma once

#include "cloud/region.hpp"
#include "stream/graph.hpp"

namespace sage::core {

/// Re-pin every operator vertex of `graph` per the locality-first rule.
/// Vertices are visited in topological order so placement propagates
/// through operator chains.
void auto_place(stream::JobGraph& graph, cloud::Region aggregation_site);

/// Estimated WAN bytes per second the graph ships, given per-source rates —
/// the quantity auto_place minimizes. Exposed for tests and placement
/// ablations: records crossing each inter-site edge count their wire size.
[[nodiscard]] double estimate_wan_bytes_per_sec(const stream::JobGraph& graph,
                                                double reduction_factor = 0.1);

}  // namespace sage::core
