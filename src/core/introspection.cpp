#include "core/introspection.hpp"

#include "common/stats.hpp"
#include "common/table.hpp"

namespace sage::core {

std::string IntrospectionReport::render() const {
  return "== Link service levels ==\n" + link_service_levels +
         "\n== Compute health ==\n" + compute_health + "\n== Bill ==\n" + bill +
         "\n== Decision audit ==\n" + decision_audit + "\n== Runtime ==\n" + runtime;
}

IntrospectionReport introspect(SageEngine& engine) {
  IntrospectionReport report;
  auto& monitoring = engine.monitoring();
  const auto& regions = engine.config().regions;

  {
    TextTable t({"Link", "Mean MB/s", "Sigma", "Samples", "p5", "p50", "p95"});
    for (cloud::Region a : regions) {
      for (cloud::Region b : regions) {
        if (a == b) continue;
        const monitor::LinkEstimate est = monitoring.estimate(a, b);
        if (!est.ready()) continue;
        SampleSet window;
        for (const monitor::Sample& s : monitoring.history(a, b)) window.add(s.mbps);
        const bool has_history = window.count() > 0;
        t.add_row({std::string(cloud::region_code(a)) + "->" +
                       std::string(cloud::region_code(b)),
                   TextTable::num(est.mean_mbps, 2), TextTable::num(est.stddev_mbps, 2),
                   std::to_string(est.samples),
                   has_history ? TextTable::num(window.quantile(0.05), 2) : "-",
                   has_history ? TextTable::num(window.quantile(0.5), 2) : "-",
                   has_history ? TextTable::num(window.quantile(0.95), 2) : "-"});
      }
    }
    report.link_service_levels = t.render();
  }

  {
    TextTable t({"Region", "CPU factor"});
    for (cloud::Region r : regions) {
      t.add_row({std::string(cloud::region_name(r)),
                 TextTable::num(monitoring.cpu_estimate(r), 3)});
    }
    report.compute_health = t.render();
  }

  {
    const cloud::CostReport bill = engine.cost();
    TextTable t({"Item", "Charge"});
    t.add_row({"VM leases", to_string(bill.vm_lease)});
    t.add_row({"WAN egress", to_string(bill.egress)});
    t.add_row({"Blob capacity", to_string(bill.blob_storage)});
    t.add_row({"Blob transactions", to_string(bill.blob_transactions)});
    t.add_row({"Total", to_string(bill.total())});
    report.bill = t.render();
  }

  {
    TextTable t({"#", "Route", "Size", "Lanes", "Replans", "Predicted", "Achieved",
                 "Retrans", "OK"});
    int i = 0;
    for (const SendRecord& rec : engine.history()) {
      t.add_row({std::to_string(i++),
                 std::string(cloud::region_code(rec.src)) + "->" +
                     std::string(cloud::region_code(rec.dst)),
                 to_string(rec.size), std::to_string(rec.lanes_used),
                 std::to_string(rec.replans),
                 rec.estimate ? to_string(rec.estimate->time) : "-",
                 to_string(rec.elapsed), std::to_string(rec.stats.retransmissions),
                 rec.ok ? "yes" : "NO"});
    }
    report.decision_audit =
        t.row_count() > 0 ? t.render() : std::string("(no transfers yet)\n");
  }

  {
    const SageEngine::RuntimeStats s = engine.runtime_stats();
    TextTable t({"Virtual clock", "Scheduled", "Fired", "Cancelled", "Live"});
    t.add_row({TextTable::num(s.now.to_seconds(), 3) + " s",
               std::to_string(s.events_scheduled), std::to_string(s.events_fired),
               std::to_string(s.events_cancelled), std::to_string(s.events_live)});
    report.runtime = t.render();
  }
  return report;
}

}  // namespace sage::core
