// Introspection-as-a-Service.
//
// The engine already knows everything a cloud user normally cannot see:
// the measured behaviour of every inter-site link, the compute health of
// its agents, the exact itemised bill, and how its own predictions fared
// against reality. This module renders that knowledge as a report — the
// "enhanced visibility into the actually-supported service levels" the
// system's conclusions propose to offer cloud users, and a metric a
// provider could publish for resources of a given configuration.
#pragma once

#include <string>

#include "core/sage.hpp"

namespace sage::core {

struct IntrospectionReport {
  /// Measured service levels per monitored link: mean/σ MB/s, sample count,
  /// plus recent-history percentiles (p5/p50/p95) when history is enabled.
  std::string link_service_levels;
  /// Agent-VM compute factors per region.
  std::string compute_health;
  /// Itemised charges accrued so far.
  std::string bill;
  /// Decision audit: per-transfer predicted vs achieved time, lanes used,
  /// replans, delivery stats.
  std::string decision_audit;
  /// Event-loop accounting (virtual clock, scheduled/fired/cancelled/live
  /// event counts) — identical fields whether the deployment runs on the
  /// plain engine or aggregated over a sharded engine's lanes.
  std::string runtime;

  /// All sections concatenated, ready to print.
  [[nodiscard]] std::string render() const;
};

/// Build a report from the engine's current state. Read-only.
[[nodiscard]] IntrospectionReport introspect(SageEngine& engine);

}  // namespace sage::core
