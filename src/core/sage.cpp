#include "core/sage.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "obs/obs.hpp"

namespace sage::core {

SageEngine::SageEngine(cloud::CloudProvider& provider, SageConfig config)
    : provider_(provider),
      engine_(provider.engine()),
      config_(std::move(config)),
      pool_(provider, config_.agent_vm),
      cost_model_(provider.pricing(), config_.model),
      solver_(cost_model_),
      planner_(config_.planner) {
  SAGE_CHECK_MSG(config_.regions.size() >= 2, "a SAGE deployment spans at least two sites");
  SAGE_CHECK(config_.helpers_per_region >= 0);
  SAGE_CHECK(config_.gateways_per_region >= 1);
  SAGE_CHECK(config_.replan_threshold >= 0.0);
  // The engine's transfers obey the model's intrusiveness setting; keeping
  // the two knobs in sync is a class invariant, not a user obligation.
  config_.transfer.intrusiveness = config_.model.intrusiveness;
  planner_.set_obs(engine_.obs());
  ctrl_cache_ = config_.memoize_control && monitor::control_cache_enabled();
  if (obs::Observability* o = engine_.obs(); o != nullptr) {
    obs_replan_skipped_ = o->metrics().counter("sched.replan.skipped");
  }
  if (config_.adapt_interval > SimDuration::zero()) {
    replan_task_ = std::make_unique<sim::PeriodicTask>(
        engine_, config_.adapt_interval, [this] { replan_sweep(); });
  }
  monitoring_ =
      std::make_unique<monitor::MonitoringService>(provider_, config_.monitoring);
}

SageEngine::~SageEngine() {
  *alive_ = false;
  if (deployed_) shutdown();
}

void SageEngine::deploy() {
  SAGE_CHECK_MSG(!deployed_, "deploy() is one-shot");
  deployed_ = true;
  for (cloud::Region r : config_.regions) {
    monitoring_->register_agent(r, pool_.gateway(r));
  }
  monitoring_->start();
  if (config_.health_check_interval > SimDuration::zero()) {
    health_task_ = std::make_unique<sim::PeriodicTask>(
        engine_, config_.health_check_interval, [this] { health_check(); });
    health_task_->start();
  }
}

void SageEngine::health_check() {
  const std::size_t replaced = pool_.heal();
  if (replaced == 0) return;
  vms_healed_ += replaced;
  // Re-register agents: a healed gateway means the region's monitoring
  // agent may have been among the casualties.
  for (cloud::Region r : config_.regions) {
    monitoring_->register_agent(r, pool_.gateway(r));
  }
}

void SageEngine::shutdown() {
  if (!deployed_) return;
  deployed_ = false;
  if (health_task_) health_task_->stop();
  if (replan_task_) replan_task_->stop();
  monitoring_->stop();
  for (auto& live : live_) {
    if (!live->transfer->finished()) live->transfer->cancel();
  }
  live_.clear();
  pool_.release_all();
}

sched::Inventory SageEngine::inventory(cloud::Region src, cloud::Region dst) const {
  sched::Inventory inv{};
  for (cloud::Region r : config_.regions) {
    // Shard-local lanes: interior regions read as empty, so the planner can
    // only widen the direct route with source-region scatter helpers —
    // every resulting flow stays on links the source's shard owns.
    if (config_.shard_local_lanes && r != src && r != dst) continue;
    inv[cloud::region_index(r)] = config_.helpers_per_region;
  }
  return inv;
}

std::vector<net::Lane> SageEngine::build_lanes(const sched::MultiPathPlan& plan,
                                               cloud::VmId src_gw, cloud::VmId dst_gw,
                                               cloud::Region src) {
  std::vector<net::Lane> lanes;
  // Per-region helper cursors so distinct lanes get distinct VMs.
  std::vector<int> cursor(provider_.topology().region_count(), 0);
  bool first_lane = true;

  for (const sched::PlannedPath& p : plan.paths) {
    for (int w = 0; w < p.width; ++w) {
      net::Lane lane;
      lane.path.push_back(src_gw);
      if (!first_lane) {
        // Local scatter helper in the source region: the gateway feeds it
        // over the fast intra-DC link, it sends over the WAN in parallel.
        const int idx = cursor[cloud::region_index(src)]++;
        lane.path.push_back(pool_.helpers(src, idx + 1)[static_cast<std::size_t>(idx)]);
      }
      first_lane = false;
      for (std::size_t i = 1; i + 1 < p.route.regions.size(); ++i) {
        const cloud::Region hop = p.route.regions[i];
        const int idx = cursor[cloud::region_index(hop)]++;
        lane.path.push_back(pool_.helpers(hop, idx + 1)[static_cast<std::size_t>(idx)]);
      }
      lane.path.push_back(dst_gw);
      lanes.push_back(std::move(lane));
    }
  }
  if (lanes.empty()) lanes = net::direct_lane(src_gw, dst_gw);
  return lanes;
}

void SageEngine::send(cloud::Region src, cloud::Region dst, Bytes size, DoneFn done) {
  send_with(config_.tradeoff, src, dst, size, std::move(done));
}

void SageEngine::send_with(const model::Tradeoff& tradeoff, cloud::Region src,
                           cloud::Region dst, Bytes size, DoneFn done) {
  SAGE_CHECK_MSG(deployed_, "deploy() the engine before sending");
  SAGE_CHECK(done != nullptr);
  reap();

  SendRecord record;
  record.src = src;
  record.dst = dst;
  record.size = size;

  const monitor::ThroughputMatrix& matrix = monitoring_->snapshot();
  const monitor::LinkEstimate& direct = matrix.at(src, dst);

  sched::MultiPathPlan plan;
  if (direct.ready()) {
    model::TradeoffInputs inputs;
    inputs.size = size;
    inputs.link = direct;
    inputs.vm_size = config_.agent_vm;
    inputs.src = src;
    inputs.dst = dst;
    inputs.max_nodes = 1 + config_.helpers_per_region;
    const model::TransferEstimate estimate =
        ctrl_cache_ ? resolve_cache_.resolve(solver_, inputs, tradeoff, matrix.epoch)
                    : solver_.resolve(inputs, tradeoff);
    record.estimate = estimate;
    plan = plan_for(matrix, src, dst, estimate.nodes);
    if (obs::Observability* o = engine_.obs(); o != nullptr && o->tracer() != nullptr) {
      obs::TraceSink& t = *o->tracer();
      t.instant(t.intern("sched.plan"), engine_.now(), obs::kNoSpan,
                static_cast<double>(plan.paths.size()),
                static_cast<double>(plan.nodes_used));
    }
  }
  // Fallback: without monitoring data (cold start) SAGE degrades to a
  // direct transfer — never refuses to move data.

  cloud::VmId src_gw;
  cloud::VmId dst_gw;
  if (config_.ephemeral_endpoints) {
    // One fresh endpoint pair per send, released on completion: transfers
    // from differently-owned source regions never share a destination NIC,
    // so their rates are independent of how the regions are sharded.
    src_gw = provider_.provision(src, config_.agent_vm).id;
    dst_gw = provider_.provision(dst, config_.agent_vm).id;
  } else {
    // Round-robin this send's endpoints across the configured gateway pool.
    const auto pick = static_cast<std::size_t>(
        send_counter_++ % static_cast<std::uint64_t>(config_.gateways_per_region));
    src_gw = pool_.gateways(src, config_.gateways_per_region)[pick];
    dst_gw = pool_.gateways(dst, config_.gateways_per_region)[pick];
  }

  auto live = std::make_unique<LiveTransfer>();
  live->plan = plan;
  live->record_index = history_.size();
  live->src = src;
  live->dst = dst;
  live->src_gw = src_gw;
  live->dst_gw = dst_gw;
  live->owns_endpoints = config_.ephemeral_endpoints;
  live->last_eval_epoch = matrix.epoch;
  std::vector<net::Lane> lanes = build_lanes(plan, src_gw, dst_gw, src);
  record.lanes_used = static_cast<int>(lanes.size());
  history_.push_back(record);

  const SimTime began = engine_.now();
  LiveTransfer* raw = live.get();
  auto alive = alive_;
  live->transfer = std::make_unique<net::GeoTransfer>(
      provider_, size, std::move(lanes), config_.transfer,
      [this, alive, raw, src, dst, size, began,
       done = std::move(done)](const net::TransferResult& r) {
        if (!*alive) return;
        SendRecord& rec = history_[raw->record_index];
        rec.ok = r.ok;
        rec.elapsed = engine_.now() - began;
        rec.stats = r.stats;
        if (r.ok && rec.elapsed > SimDuration::zero() && rec.lanes_used > 0) {
          // Feed the achieved per-lane rate back into the map.
          const ByteRate per_lane =
              (size / rec.elapsed) / static_cast<double>(rec.lanes_used);
          monitoring_->report_transfer_observation(src, dst, per_lane);
        }
        if (raw->owns_endpoints) {
          if (provider_.is_active(raw->src_gw)) provider_.release(raw->src_gw);
          if (provider_.is_active(raw->dst_gw)) provider_.release(raw->dst_gw);
          raw->owns_endpoints = false;
        }
        done(stream::SendOutcome{r.ok, rec.elapsed});
      });

  if (replan_task_ && !replan_task_->running()) replan_task_->start();
  live->transfer->start();
  live_.push_back(std::move(live));
}

SageEngine::RuntimeStats SageEngine::runtime_stats() const {
  RuntimeStats s;
  s.now = engine_.now();
  s.events_scheduled = engine_.events_scheduled();
  s.events_fired = engine_.events_fired();
  s.events_cancelled = engine_.events_cancelled();
  s.events_live = engine_.live_events();
  return s;
}

std::size_t SageEngine::replan_sweep() {
  reap();
  if (live_.empty()) {
    // Nothing to adapt; park the sweep until the next send restarts it.
    if (replan_task_) replan_task_->stop();
    return 0;
  }
  const monitor::ThroughputMatrix& matrix = monitoring_->snapshot();
  std::size_t examined = 0;
  for (auto& live : live_) {
    if (ctrl_cache_ && live->last_eval_epoch == matrix.epoch) {
      // No sample landed since this transfer was last planned: an uncached
      // re-plan would reproduce the executing plan exactly and the
      // threshold test (strict improvement) could never pass, so skipping
      // is a pure elision — cached and uncached runs stay bit-identical.
      ++replans_skipped_;
      if (obs_replan_skipped_ != nullptr) obs_replan_skipped_->add();
      continue;
    }
    adapt_transfer(*live, matrix);
    live->last_eval_epoch = matrix.epoch;
    ++examined;
  }
  return examined;
}

void SageEngine::adapt_transfer(LiveTransfer& live,
                                const monitor::ThroughputMatrix& matrix) {
  if (live.transfer->finished()) return;
  if (!matrix.at(live.src, live.dst).ready()) return;
  const int budget = std::max(live.plan.nodes_used, 1);
  sched::MultiPathPlan fresh = plan_for(matrix, live.src, live.dst, budget);
  if (fresh.empty()) return;
  const bool materially_better =
      fresh.total_mbps > live.plan.total_mbps * (1.0 + config_.replan_threshold);
  if (!materially_better) return;
  if (obs::Observability* o = engine_.obs(); o != nullptr && o->tracer() != nullptr) {
    obs::TraceSink& t = *o->tracer();
    t.instant(t.intern("sched.replan"), engine_.now(), obs::kNoSpan,
              static_cast<double>(fresh.paths.size()),
              static_cast<double>(fresh.nodes_used));
  }
  live.transfer->reset_lanes(build_lanes(fresh, live.src_gw, live.dst_gw, live.src));
  live.plan = fresh;
  ++history_[live.record_index].replans;
}

sched::MultiPathPlan SageEngine::plan_for(const monitor::ThroughputMatrix& matrix,
                                          cloud::Region src, cloud::Region dst,
                                          int node_budget) {
  if (ctrl_cache_) {
    return plan_cache_.plan(planner_, matrix, src, dst, inventory(src, dst), node_budget);
  }
  return planner_.plan(matrix, src, dst, inventory(src, dst), node_budget);
}

void SageEngine::reap() {
  std::erase_if(live_, [](const auto& t) { return t->transfer->finished(); });
}

void SageEngine::disseminate(cloud::Region src, const std::vector<cloud::Region>& targets,
                             Bytes size, DisseminateFn done) {
  SAGE_CHECK_MSG(deployed_, "deploy() the engine before disseminating");
  SAGE_CHECK(done != nullptr);
  SAGE_CHECK(!targets.empty());

  sched::BroadcastTree tree = sched::widest_tree(monitoring_->snapshot(), src, targets);
  if (tree.empty()) {
    // Cold map: a source-rooted star (parallel unicast shape).
    for (cloud::Region t : targets) {
      if (t != src) tree.edges.push_back(sched::BroadcastEdge{src, t, 0.0});
    }
    tree.root = src;
  }
  SAGE_CHECK_MSG(!tree.edges.empty(), "dissemination tree has no edges");

  // Map the region tree onto gateway VMs. Regions appear in dissemination
  // order, so parents always precede children.
  std::vector<net::TreeNode> nodes;
  std::vector<int> index(provider_.topology().region_count(), -1);
  nodes.push_back(net::TreeNode{pool_.gateway(src), -1});
  index[cloud::region_index(src)] = 0;
  std::vector<cloud::Region> node_region = {src};
  for (const sched::BroadcastEdge& e : tree.edges) {
    const int parent = index[cloud::region_index(e.from)];
    SAGE_CHECK(parent >= 0);
    index[cloud::region_index(e.to)] = static_cast<int>(nodes.size());
    nodes.push_back(net::TreeNode{pool_.gateway(e.to), parent});
    node_region.push_back(e.to);
  }

  std::erase_if(live_trees_, [](const auto& t) { return t->finished(); });
  const int edge_count = static_cast<int>(tree.edges.size());
  const SimTime began = engine_.now();
  auto alive = alive_;
  live_trees_.push_back(std::make_unique<net::TreeTransfer>(
      provider_, size, std::move(nodes), config_.transfer,
      [alive, done = std::move(done), node_region, edge_count,
       began](const net::TreeResult& r) {
        if (!*alive) return;
        DisseminateResult result;
        result.ok = r.ok;
        result.elapsed = r.finished - began;
        result.tree_edges = edge_count;
        for (std::size_t i = 1; i < node_region.size(); ++i) {
          if (i < r.node_completion.size()) {
            result.arrivals.emplace_back(node_region[i], r.node_completion[i]);
          }
        }
        std::sort(result.arrivals.begin(), result.arrivals.end(),
                  [](const auto& a, const auto& b) { return a.second < b.second; });
        done(result);
      }));
  live_trees_.back()->start();
}

std::unique_ptr<stream::StreamRuntime> SageEngine::run_job(
    stream::JobGraph graph, stream::RuntimeConfig runtime_config) {
  SAGE_CHECK_MSG(deployed_, "deploy() the engine before running jobs");
  return std::make_unique<stream::StreamRuntime>(provider_, std::move(graph), *this,
                                                 runtime_config);
}

}  // namespace sage::core
