#include "core/placement.hpp"

#include <vector>

#include "common/check.hpp"

namespace sage::core {
namespace {

/// Vertex ids in topological order (the graph is validated acyclic).
std::vector<stream::VertexId> topo_order(const stream::JobGraph& graph) {
  const auto& vertices = graph.vertices();
  const auto& edges = graph.edges();
  std::vector<int> indegree(vertices.size(), 0);
  for (const auto& e : edges) ++indegree[e.to];
  std::vector<stream::VertexId> queue;
  for (const auto& v : vertices) {
    if (indegree[v.id] == 0) queue.push_back(v.id);
  }
  std::vector<stream::VertexId> order;
  order.reserve(vertices.size());
  while (!queue.empty()) {
    const stream::VertexId v = queue.back();
    queue.pop_back();
    order.push_back(v);
    for (const auto& e : edges) {
      if (e.from == v && --indegree[e.to] == 0) queue.push_back(e.to);
    }
  }
  SAGE_CHECK_MSG(order.size() == vertices.size(), "graph must be acyclic");
  return order;
}

}  // namespace

void auto_place(stream::JobGraph& graph, cloud::Region aggregation_site) {
  graph.validate();
  for (const stream::VertexId v : topo_order(graph)) {
    const stream::Vertex& vx = graph.vertex(v);
    if (vx.kind != stream::VertexKind::kOperator) continue;

    bool has_input = false;
    bool single_site = true;
    cloud::Region input_site = aggregation_site;
    for (const auto& e : graph.edges()) {
      if (e.to != v) continue;
      const cloud::Region s = graph.vertex(e.from).site;
      if (!has_input) {
        input_site = s;
        has_input = true;
      } else if (s != input_site) {
        single_site = false;
      }
    }
    graph.assign(v, (has_input && single_site) ? input_site : aggregation_site);
  }
}

double estimate_wan_bytes_per_sec(const stream::JobGraph& graph, double reduction_factor) {
  // Propagate each source's byte rate through the DAG; operators are
  // assumed to shrink their input by `reduction_factor` (windows/filters
  // reduce, which is why pushing them upstream of the WAN pays).
  const auto order = topo_order(graph);
  std::vector<double> rate(graph.vertices().size(), 0.0);
  double wan = 0.0;
  for (const stream::VertexId v : order) {
    const stream::Vertex& vx = graph.vertex(v);
    double out_rate = 0.0;
    if (vx.kind == stream::VertexKind::kSource) {
      out_rate = vx.source.records_per_sec *
                 static_cast<double>(vx.source.record_size.count());
    } else if (vx.kind == stream::VertexKind::kOperator) {
      out_rate = rate[v] * reduction_factor;
    }
    for (const auto& e : graph.edges()) {
      if (e.from != v) continue;
      rate[e.to] += out_rate;
      if (graph.vertex(e.to).site != vx.site) wan += out_rate;
    }
  }
  return wan;
}

}  // namespace sage::core
