#include "stream/record.hpp"

#include <cstdlib>
#include <cstring>

namespace sage::stream {
namespace {

bool env_soa_default() {
  const char* env = std::getenv("SAGE_SOA");
  // Unset or anything but an explicit "0" keeps the kernels on: the flag
  // exists for A/B byte-identity checks, not as an opt-in.
  return env == nullptr || std::strcmp(env, "0") != 0;
}

bool g_soa_kernels = env_soa_default();

}  // namespace

bool soa_kernels_enabled() { return g_soa_kernels; }

void set_soa_kernels_enabled(bool enabled) { g_soa_kernels = enabled; }

}  // namespace sage::stream
