#include "stream/runtime.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace sage::stream {

StreamRuntime::StreamRuntime(cloud::CloudProvider& provider, JobGraph graph,
                             TransferBackend& backend, RuntimeConfig config)
    : provider_(provider),
      engine_(provider.engine()),
      graph_(std::move(graph)),
      backend_(backend),
      config_(config),
      rng_(config.seed) {
  graph_.validate();
  states_.resize(graph_.vertices().size());
}

StreamRuntime::~StreamRuntime() {
  *alive_ = false;
  if (running_) stop();
}

void StreamRuntime::start() {
  SAGE_CHECK_MSG(!started_, "start() is one-shot");
  started_ = true;
  running_ = true;

  for (cloud::Region site : graph_.sites_used()) {
    site_vms_[cloud::region_index(site)] =
        provider_.provision(site, config_.site_vm).id;
  }

  for (const Vertex& v : graph_.vertices()) {
    VertexState& st = states_[v.id];
    if (v.kind == VertexKind::kSource) {
      st.timer = std::make_unique<sim::PeriodicTask>(
          engine_, v.source.emit_interval, [this, id = v.id] { emit_source(id); });
      st.timer->start();
    } else if (v.kind == VertexKind::kOperator &&
               v.op->timer_interval() > SimDuration::zero()) {
      st.timer = std::make_unique<sim::PeriodicTask>(
          engine_, v.op->timer_interval(), [this, id = v.id] {
            RecordBatch out;
            graph_.vertex(id).op->on_timer(engine_.now(), out);
            if (!out.empty()) dispatch_outputs(id, std::move(out));
          });
      st.timer->start();
    }
  }

  for (const Edge& e : graph_.wan_edges()) {
    auto b = std::make_unique<GeoBatcher>();
    b->edge = e;
    GeoBatcher* raw = b.get();
    b->flusher = std::make_unique<sim::PeriodicTask>(
        engine_, config_.geo_batch_max_delay, [this, raw] {
          if (!raw->pending.empty() &&
              engine_.now() - raw->oldest >= config_.geo_batch_max_delay) {
            flush_geo(*raw);
          }
        });
    b->flusher->start();
    geo_.push_back(std::move(b));
  }
}

void StreamRuntime::stop() {
  if (!running_) return;
  running_ = false;
  for (VertexState& st : states_) {
    if (st.timer) st.timer->stop();
  }
  for (auto& b : geo_) b->flusher->stop();
  for (cloud::Region r : cloud::kAllRegions) {
    const auto& vm = site_vms_[cloud::region_index(r)];
    if (vm) provider_.release(*vm);
  }
}

cloud::VmId StreamRuntime::site_vm(cloud::Region site) const {
  const auto& vm = site_vms_[cloud::region_index(site)];
  SAGE_CHECK_MSG(vm.has_value(), "no VM for that site (job does not use it)");
  return *vm;
}

const SinkStats& StreamRuntime::sink_stats(VertexId sink) const {
  SAGE_CHECK(graph_.vertex(sink).kind == VertexKind::kSink);
  return states_[sink].sink;
}

std::size_t StreamRuntime::queue_depth(VertexId v) const {
  SAGE_CHECK(v < states_.size());
  std::size_t n = 0;
  for (const PendingBatch& p : states_[v].queue) n += p.batch.size();
  return n;
}

void StreamRuntime::emit_source(VertexId v) {
  if (!running_) return;
  const Vertex& vx = graph_.vertex(v);
  VertexState& st = states_[v];
  const double owed = vx.source.records_per_sec * vx.source.emit_interval.to_seconds() +
                      st.carry;
  const auto count = static_cast<std::int64_t>(owed);
  st.carry = owed - static_cast<double>(count);
  if (count <= 0) return;

  RecordBatch batch;
  for (std::int64_t i = 0; i < count; ++i) {
    Record r;
    r.event_time = engine_.now();
    r.key = vx.source.key_skew > 0.0
                ? static_cast<std::uint64_t>(rng_.zipf(
                      static_cast<std::int64_t>(vx.source.key_count), vx.source.key_skew))
                : static_cast<std::uint64_t>(rng_.uniform_int(
                      0, static_cast<std::int64_t>(vx.source.key_count) - 1));
    r.value = rng_.normal(vx.source.value_mean, vx.source.value_stddev);
    r.wire_size = vx.source.record_size;
    batch.add(r);
  }
  dispatch_outputs(v, std::move(batch));
}

void StreamRuntime::dispatch_outputs(VertexId v, RecordBatch out) {
  if (out.empty()) return;
  const auto edges = graph_.out_edges(v);
  if (edges.empty()) return;
  // Fan-out copies to every downstream edge (broadcast semantics).
  for (std::size_t i = 0; i < edges.size(); ++i) {
    if (i + 1 == edges.size()) {
      deliver(edges[i], std::move(out));
      break;
    }
    deliver(edges[i], out);
  }
}

void StreamRuntime::deliver(const Edge& edge, RecordBatch batch) {
  const Vertex& from = graph_.vertex(edge.from);
  const Vertex& to = graph_.vertex(edge.to);
  if (from.site == to.site) {
    enqueue(edge.to, edge.port, std::move(batch));
    return;
  }
  for (auto& b : geo_) {
    if (b->edge.from == edge.from && b->edge.to == edge.to && b->edge.port == edge.port) {
      if (b->pending.empty()) b->oldest = engine_.now();
      b->pending.append(batch);
      if (b->pending.wire_size() >= config_.geo_batch_max_bytes) flush_geo(*b);
      return;
    }
  }
  SAGE_CHECK_MSG(false, "WAN edge without a geo-batcher");
}

void StreamRuntime::flush_geo(GeoBatcher& b) {
  if (b.pending.empty()) return;
  b.backlog.push_back(std::move(b.pending));
  b.pending.clear();
  pump_geo(b);
}

void StreamRuntime::pump_geo(GeoBatcher& b) {
  if (b.in_flight || b.backlog.empty() || !running_) return;
  b.in_flight = true;
  RecordBatch batch = std::move(b.backlog.front());
  b.backlog.pop_front();
  const cloud::Region src = graph_.vertex(b.edge.from).site;
  const cloud::Region dst = graph_.vertex(b.edge.to).site;
  const Bytes size = batch.wire_size();
  auto alive = alive_;
  GeoBatcher* raw = &b;
  backend_.send(src, dst, size,
                [this, alive, raw, batch = std::move(batch), size](const SendOutcome& o) mutable {
                  if (!*alive) return;
                  ++wan_.batches;
                  if (o.ok) {
                    wan_.bytes += size;
                    wan_.transfer_s.add(o.elapsed.to_seconds());
                    enqueue(raw->edge.to, raw->edge.port, std::move(batch));
                  } else {
                    ++wan_.failures;
                  }
                  raw->in_flight = false;
                  pump_geo(*raw);
                });
}

void StreamRuntime::enqueue(VertexId v, int port, RecordBatch batch) {
  if (batch.empty()) return;
  const Vertex& vx = graph_.vertex(v);
  VertexState& st = states_[v];

  if (vx.kind == VertexKind::kSink) {
    const SimTime now = engine_.now();
    st.sink.records += batch.size();
    st.sink.bytes += batch.wire_size();
    for (const Record& r : batch.records()) {
      st.sink.latency_ms.add((now - r.event_time).to_seconds() * 1e3);
    }
    return;
  }

  SAGE_CHECK(vx.kind == VertexKind::kOperator);
  st.queue.push_back(PendingBatch{port, std::move(batch)});
  if (!st.busy) process_next(v);
}

void StreamRuntime::process_next(VertexId v) {
  VertexState& st = states_[v];
  if (st.queue.empty() || !running_) {
    st.busy = false;
    return;
  }
  st.busy = true;
  PendingBatch work = std::move(st.queue.front());
  st.queue.pop_front();

  const Vertex& vx = graph_.vertex(v);
  const auto vm = site_vms_[cloud::region_index(vx.site)];
  SAGE_CHECK(vm.has_value());
  const double cpu = provider_.is_active(*vm) ? provider_.vm_cpu_factor(*vm) : 1.0;
  const double spec_factor = cloud::vm_spec(config_.site_vm).compute_factor;
  const double work_units = static_cast<double>(work.batch.size()) * vx.op->cost_per_record();
  const SimDuration delay = SimDuration::seconds(
      work_units / (config_.work_units_per_sec * spec_factor * std::max(cpu, 0.05)));

  auto alive = alive_;
  engine_.schedule_after(delay, [this, alive, v, work = std::move(work)]() mutable {
    if (!*alive || !running_) return;
    const Vertex& vx2 = graph_.vertex(v);
    RecordBatch out;
    vx2.op->process(work.port, work.batch, out);
    if (!out.empty()) dispatch_outputs(v, std::move(out));
    process_next(v);
  });
}

}  // namespace sage::stream
