#include "stream/runtime.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace sage::stream {

namespace {
/// Free-list cap: enough to cover every vertex queue in the biggest figure
/// topologies without letting a transient burst pin memory forever.
constexpr std::size_t kMaxPooledBatches = 128;
}  // namespace

StreamRuntime::StreamRuntime(cloud::CloudProvider& provider, JobGraph graph,
                             TransferBackend& backend, RuntimeConfig config)
    : provider_(provider),
      engine_(provider.engine()),
      graph_(std::move(graph)),
      backend_(backend),
      config_(config),
      rng_(config.seed) {
  graph_.validate();
  if (config_.fuse_stateless_chains) graph_.fuse_stateless_chains();
  states_.resize(graph_.vertices().size());
  for (const Vertex& v : graph_.vertices()) {
    if (v.kind == VertexKind::kOperator) {
      states_[v.id].fused = dynamic_cast<const FusedStatelessChain*>(v.op.get());
    }
  }
}

StreamRuntime::~StreamRuntime() {
  *alive_ = false;
  if (running_) stop();
}

void StreamRuntime::start() {
  SAGE_CHECK_MSG(!started_, "start() is one-shot");
  started_ = true;
  running_ = true;

  site_vms_.assign(provider_.topology().region_count(), std::nullopt);
  for (cloud::Region site : graph_.sites_used()) {
    site_vms_[cloud::region_index(site)] =
        provider_.provision(site, config_.site_vm).id;
  }

  for (const Vertex& v : graph_.vertices()) {
    VertexState& st = states_[v.id];
    if (v.kind == VertexKind::kSource) {
      st.timer = std::make_unique<sim::PeriodicTask>(
          engine_, v.source.emit_interval, [this, id = v.id] { emit_source(id); });
      st.timer->start();
    } else if (v.kind == VertexKind::kOperator &&
               v.op->timer_interval() > SimDuration::zero()) {
      st.timer = std::make_unique<sim::PeriodicTask>(
          engine_, v.op->timer_interval(), [this, id = v.id] {
            RecordBatch out = acquire_batch();
            graph_.vertex(id).op->on_timer(engine_.now(), out);
            if (!out.empty()) {
              dispatch_outputs(id, std::move(out));
            } else {
              recycle(std::move(out));
            }
          });
      st.timer->start();
    }
  }

  for (const Edge& e : graph_.wan_edges()) {
    auto b = std::make_unique<GeoBatcher>();
    b->edge = e;
    GeoBatcher* raw = b.get();
    b->flusher = std::make_unique<sim::PeriodicTask>(
        engine_, config_.geo_batch_max_delay, [this, raw] {
          if (!raw->pending.empty() &&
              engine_.now() - raw->oldest >= config_.geo_batch_max_delay) {
            flush_geo(*raw);
          }
        });
    b->flusher->start();
    geo_.push_back(std::move(b));
  }

  // Resolve the adjacency once: dispatch never scans the edge list or the
  // batcher list again.
  obs::Observability* o = engine_.obs();
  out_edges_.assign(graph_.vertices().size(), {});
  for (const Edge& e : graph_.edges()) {
    OutEdge oe;
    oe.edge = e;
    if (graph_.vertex(e.from).site != graph_.vertex(e.to).site) {
      for (auto& b : geo_) {
        if (b->edge.from == e.from && b->edge.to == e.to && b->edge.port == e.port) {
          oe.geo = b.get();
          break;
        }
      }
      SAGE_CHECK_MSG(oe.geo != nullptr, "WAN edge without a geo-batcher");
    }
    if (o != nullptr) {
      oe.sent = o->metrics().counter(
          "stream.edge.records",
          {{"edge", graph_.vertex(e.from).name + "->" + graph_.vertex(e.to).name}});
    }
    out_edges_[e.from].push_back(oe);
  }

  if (o != nullptr) {
    auto& m = o->metrics();
    vobs_.resize(states_.size());
    for (const Vertex& v : graph_.vertices()) {
      VertexObs& vo = vobs_[v.id];
      const obs::LabelSet labels = {{"vertex", v.name}};
      vo.arrived = m.counter("stream.records.arrived", labels);
      vo.consumed = m.counter("stream.records.consumed", labels);
      vo.produced = m.counter("stream.records.produced", labels);
      if (v.kind == VertexKind::kSink) {
        vo.watermark = m.gauge("stream.sink.watermark_s", labels);
      }
    }
    obs_wan_batches_ = m.counter("stream.wan.batches");
    obs_wan_bytes_ = m.counter("stream.wan.bytes");
    obs_wan_failures_ = m.counter("stream.wan.failures");
    obs_wan_records_recv_ = m.counter("stream.wan.records.recv");
    obs_wan_records_lost_ = m.counter("stream.wan.records.lost");
    obs_fused_stages_ = m.counter("stream.fused.stages");
    tracer_ = o->tracer();
    if (tracer_ != nullptr) wan_span_name_ = tracer_->intern("stream.wan_batch");
  }
}

void StreamRuntime::stop() {
  if (!running_) return;
  running_ = false;
  for (VertexState& st : states_) {
    if (st.timer) st.timer->stop();
  }
  for (auto& b : geo_) b->flusher->stop();
  for (const auto& vm : site_vms_) {
    if (vm) provider_.release(*vm);
  }
}

cloud::VmId StreamRuntime::site_vm(cloud::Region site) const {
  const std::size_t i = cloud::region_index(site);
  SAGE_CHECK_MSG(i < site_vms_.size() && site_vms_[i].has_value(),
                 "no VM for that site (job does not use it)");
  return *site_vms_[i];
}

const SinkStats& StreamRuntime::sink_stats(VertexId sink) const {
  SAGE_CHECK(graph_.vertex(sink).kind == VertexKind::kSink);
  return states_[sink].sink;
}

std::size_t StreamRuntime::queue_depth(VertexId v) const {
  SAGE_CHECK(v < states_.size());
  std::size_t n = 0;
  for (const PendingBatch& p : states_[v].queue) n += p.batch.size();
  return n;
}

std::size_t StreamRuntime::geo_pending_records() const {
  std::size_t n = 0;
  for (const auto& b : geo_) {
    n += b->pending.size() + b->in_flight_records;
    for (const RecordBatch& parked : b->backlog) n += parked.size();
  }
  return n;
}

RecordBatch StreamRuntime::acquire_batch() {
  if (pool_.empty()) return {};
  RecordBatch b = std::move(pool_.back());
  pool_.pop_back();
  return b;
}

void StreamRuntime::recycle(RecordBatch&& batch) {
  // Moved-from batches whose buffer was stolen have no capacity to keep.
  if (batch.capacity() == 0 || pool_.size() >= kMaxPooledBatches) return;
  batch.clear();
  pool_.push_back(std::move(batch));
}

SimDuration StreamRuntime::compute_delay(cloud::Region site, double work_units) const {
  const cloud::VmId vm = site_vm(site);
  const double cpu = provider_.is_active(vm) ? provider_.vm_cpu_factor(vm) : 1.0;
  const double spec_factor = cloud::vm_spec(config_.site_vm).compute_factor;
  return SimDuration::seconds(
      work_units / (config_.work_units_per_sec * spec_factor * std::max(cpu, 0.05)));
}

void StreamRuntime::emit_source(VertexId v) {
  if (!running_) return;
  const Vertex& vx = graph_.vertex(v);
  VertexState& st = states_[v];
  const double owed = vx.source.records_per_sec * vx.source.emit_interval.to_seconds() +
                      st.carry;
  const auto count = static_cast<std::int64_t>(owed);
  st.carry = owed - static_cast<double>(count);
  if (count <= 0) return;

  RecordBatch batch = acquire_batch();
  batch.reserve(static_cast<std::size_t>(count));
  // Columnar emission with the skew branch hoisted out of the loop. Only
  // the RNG-fed key/value columns fill record by record — the draw order
  // (key, then value, per record) matches the record-at-a-time form
  // exactly, so generated streams are unchanged — while the constant
  // event-time and wire columns bulk-fill afterwards.
  const SimTime now = engine_.now();
  const Bytes rsize = vx.source.record_size;
  const double mean = vx.source.value_mean;
  const double stddev = vx.source.value_stddev;
  auto& ks = batch.keys();
  auto& vs = batch.values();
  const std::size_t kbase = ks.size();
  const std::size_t kfilled = kbase + static_cast<std::size_t>(count);
  ks.resize(kfilled);
  vs.resize(kfilled);
  std::uint64_t* kp = ks.data();
  double* vp = vs.data();
  if (vx.source.key_skew > 0.0) {
    const auto keys = static_cast<std::int64_t>(vx.source.key_count);
    const double skew = vx.source.key_skew;
    for (std::size_t i = kbase; i < kfilled; ++i) {
      kp[i] = static_cast<std::uint64_t>(rng_.zipf(keys, skew));
      vp[i] = rng_.normal(mean, stddev);
    }
  } else {
    const auto hi = static_cast<std::int64_t>(vx.source.key_count) - 1;
    for (std::size_t i = kbase; i < kfilled; ++i) {
      kp[i] = static_cast<std::uint64_t>(rng_.uniform_int(0, hi));
      vp[i] = rng_.normal(mean, stddev);
    }
  }
  // resize + pointer fill rather than insert(end, n, v): libstdc++'s
  // _M_fill_insert takes a generic path an order of magnitude slower than
  // these trivially vectorized store loops.
  auto& et = batch.event_times();
  auto& ws = batch.wire_sizes();
  const std::size_t base = et.size();
  const std::size_t filled = ks.size();
  et.resize(filled);
  ws.resize(filled);
  SimTime* ep = et.data();
  Bytes* wp = ws.data();
  for (std::size_t i = base; i < filled; ++i) ep[i] = now;
  for (std::size_t i = base; i < filled; ++i) wp[i] = rsize;
  batch.set_wire_size(batch.wire_size() +
                      Bytes::of(rsize.count() * static_cast<std::int64_t>(count)));
  dispatch_outputs(v, std::move(batch));
}

void StreamRuntime::dispatch_outputs(VertexId v, RecordBatch out) {
  if (out.empty()) {
    recycle(std::move(out));
    return;
  }
  if (!vobs_.empty()) vobs_[v].produced->add(out.size());
  const auto& edges = out_edges_[v];
  if (edges.empty()) {
    recycle(std::move(out));
    return;
  }
  // Fan-out copies to every downstream edge but the last (broadcast
  // semantics); the last delivery moves the batch itself.
  for (std::size_t i = 0; i + 1 < edges.size(); ++i) {
    RecordBatch copy = acquire_batch();
    copy.append(out);
    deliver(edges[i], std::move(copy));
  }
  deliver(edges.back(), std::move(out));
}

void StreamRuntime::deliver(const OutEdge& oe, RecordBatch batch) {
  if (oe.sent != nullptr) oe.sent->add(batch.size());
  if (oe.geo == nullptr) {
    enqueue(oe.edge.to, oe.edge.port, std::move(batch));
    return;
  }
  GeoBatcher& b = *oe.geo;
  if (b.pending.empty()) b.oldest = engine_.now();
  b.pending.append(std::move(batch));
  recycle(std::move(batch));
  if (b.pending.wire_size() >= config_.geo_batch_max_bytes) flush_geo(b);
}

void StreamRuntime::flush_geo(GeoBatcher& b) {
  if (b.pending.empty()) return;
  // Swap the accumulated records into a pooled batch: move-append into an
  // empty batch exchanges buffers, so `pending` comes back with the pooled
  // batch's capacity instead of re-growing from zero every flush.
  RecordBatch shipped = acquire_batch();
  shipped.append(std::move(b.pending));
  b.backlog.push_back(std::move(shipped));
  pump_geo(b);
}

void StreamRuntime::pump_geo(GeoBatcher& b) {
  if (b.in_flight || b.backlog.empty() || !running_) return;
  b.in_flight = true;
  RecordBatch batch = std::move(b.backlog.front());
  b.backlog.pop_front();
  const cloud::Region src = graph_.vertex(b.edge.from).site;
  const cloud::Region dst = graph_.vertex(b.edge.to).site;
  const Bytes size = batch.wire_size();
  b.in_flight_records = batch.size();
  if (tracer_ != nullptr) {
    b.span = tracer_->begin(wan_span_name_, engine_.now(), obs::kNoSpan,
                            static_cast<double>(batch.size()), size.to_mb());
  }
  auto alive = alive_;
  GeoBatcher* raw = &b;
  backend_.send(src, dst, size,
                [this, alive, raw, batch = std::move(batch), size](const SendOutcome& o) mutable {
                  if (!*alive) return;
                  ++wan_.batches;
                  if (obs_wan_batches_ != nullptr) obs_wan_batches_->add();
                  if (o.ok) {
                    wan_.bytes += size;
                    wan_.transfer_s.add(o.elapsed.to_seconds());
                    if (obs_wan_bytes_ != nullptr) {
                      obs_wan_bytes_->add(static_cast<std::uint64_t>(size.count()));
                      obs_wan_records_recv_->add(batch.size());
                    }
                    enqueue(raw->edge.to, raw->edge.port, std::move(batch));
                  } else {
                    ++wan_.failures;
                    if (obs_wan_failures_ != nullptr) {
                      obs_wan_failures_->add();
                      obs_wan_records_lost_->add(batch.size());
                    }
                    recycle(std::move(batch));
                  }
                  if (tracer_ != nullptr && raw->span != obs::kNoSpan) {
                    tracer_->end(raw->span, engine_.now());
                    raw->span = obs::kNoSpan;
                  }
                  raw->in_flight = false;
                  raw->in_flight_records = 0;
                  pump_geo(*raw);
                });
}

void StreamRuntime::enqueue(VertexId v, int port, RecordBatch batch) {
  if (batch.empty()) {
    recycle(std::move(batch));
    return;
  }
  const Vertex& vx = graph_.vertex(v);
  VertexState& st = states_[v];
  if (!vobs_.empty()) vobs_[v].arrived->add(batch.size());

  if (vx.kind == VertexKind::kSink) {
    const SimTime now = engine_.now();
    st.sink.records += batch.size();
    st.sink.bytes += batch.wire_size();
    // Sink accounting reads only the event-time column — a dense 8-byte
    // walk instead of striding 32-byte records. Latencies land in a
    // bulk-extended sample buffer (no per-record push_back), and the
    // watermark is a separate max reduction; both loops vectorize.
    const SimTime* et = batch.event_times().data();
    const std::size_t n = batch.size();
    double* lat = st.sink.latency_ms.extend(n);
    for (std::size_t i = 0; i < n; ++i) lat[i] = (now - et[i]).to_seconds() * 1e3;
    if (!vobs_.empty()) {
      // The watermark max-reduction only feeds the observability gauge —
      // skip the whole pass when nothing reads it.
      double watermark = -1.0;
      for (std::size_t i = 0; i < n; ++i) watermark = std::max(watermark, et[i].to_seconds());
      if (watermark >= 0.0) {
        obs::Gauge* g = vobs_[v].watermark;
        g->set(std::max(g->value(), watermark));
      }
    }
    recycle(std::move(batch));
    return;
  }

  SAGE_CHECK(vx.kind == VertexKind::kOperator);
  st.queue.push_back(PendingBatch{port, std::move(batch)});
  if (!st.busy) process_next(v);
}

void StreamRuntime::process_next(VertexId v) {
  VertexState& st = states_[v];
  if (st.queue.empty() || !running_) {
    st.busy = false;
    return;
  }
  st.busy = true;
  PendingBatch work = std::move(st.queue.front());
  st.queue.pop_front();
  if (!vobs_.empty()) vobs_[v].consumed->add(work.batch.size());

  if (st.fused != nullptr) {
    // Stage-wise execution: each stage is charged exactly like the vertex
    // it was fused from — same cost, same batch size at that point in the
    // chain, CPU factor sampled at the same simulated instants — so the
    // fused pipeline's timestamps match the unfused one's bit for bit.
    run_fused_stage(v, std::move(work.batch), 0);
    return;
  }

  const Vertex& vx = graph_.vertex(v);
  const SimDuration delay = compute_delay(
      vx.site, static_cast<double>(work.batch.size()) * vx.op->cost_per_record());

  auto alive = alive_;
  engine_.schedule_after(delay, [this, alive, v, work = std::move(work)]() mutable {
    if (!*alive || !running_) return;
    const Vertex& vx2 = graph_.vertex(v);
    RecordBatch out = acquire_batch();
    vx2.op->process_batch(work.port, std::move(work.batch), out);
    recycle(std::move(work.batch));
    if (!out.empty()) {
      dispatch_outputs(v, std::move(out));
    } else {
      recycle(std::move(out));
    }
    process_next(v);
  });
}

void StreamRuntime::run_fused_stage(VertexId v, RecordBatch batch, std::size_t stage) {
  const Vertex& vx = graph_.vertex(v);
  const FusedStatelessChain& chain = *states_[v].fused;
  const SimDuration delay = compute_delay(
      vx.site, static_cast<double>(batch.size()) * chain.stage_cost(stage));

  auto alive = alive_;
  engine_.schedule_after(delay, [this, alive, v, stage,
                                 batch = std::move(batch)]() mutable {
    if (!*alive || !running_) return;
    if (obs_fused_stages_ != nullptr) obs_fused_stages_->add();
    const FusedStatelessChain& chain2 = *states_[v].fused;
    chain2.apply_stage(stage, batch, config_.soa_kernels);
    if (!batch.empty() && stage + 1 < chain2.stage_count()) {
      run_fused_stage(v, std::move(batch), stage + 1);
      return;
    }
    if (!batch.empty()) {
      dispatch_outputs(v, std::move(batch));
    } else {
      recycle(std::move(batch));
    }
    process_next(v);
  });
}

}  // namespace sage::stream
