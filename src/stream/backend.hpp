// Pluggable wide-area transfer backend for the streaming runtime.
//
// The runtime reduces every cross-site batch to a single question — "move
// this many bytes from site A to site B, tell me when they arrive" — and
// delegates it here. sage_core answers with the monitored, cost/time-aware
// multi-path engine; sage_baselines answers with the comparison systems
// (direct endpoint-to-endpoint, environment-oblivious parallel, blob-store
// relay, static GridFTP-like transfers).
#pragma once

#include <functional>
#include <string_view>

#include "cloud/region.hpp"
#include "common/units.hpp"

namespace sage::stream {

struct SendOutcome {
  bool ok = false;
  SimDuration elapsed;
};

class TransferBackend {
 public:
  using DoneFn = std::function<void(const SendOutcome&)>;

  virtual ~TransferBackend() = default;

  /// Move `size` bytes from `src` to `dst`; `done` fires exactly once.
  virtual void send(cloud::Region src, cloud::Region dst, Bytes size, DoneFn done) = 0;

  [[nodiscard]] virtual std::string_view name() const = 0;
};

}  // namespace sage::stream
