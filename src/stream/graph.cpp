#include "stream/graph.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace sage::stream {

VertexId JobGraph::add_source(std::string name, cloud::Region site, SourceSpec spec) {
  SAGE_CHECK(spec.records_per_sec > 0.0);
  SAGE_CHECK(spec.emit_interval > SimDuration::zero());
  SAGE_CHECK(spec.key_count >= 1);
  Vertex v;
  v.id = static_cast<VertexId>(vertices_.size());
  v.name = std::move(name);
  v.kind = VertexKind::kSource;
  v.site = site;
  v.source = spec;
  vertices_.push_back(std::move(v));
  return vertices_.back().id;
}

VertexId JobGraph::add_operator(std::string name, cloud::Region site,
                                std::shared_ptr<Operator> op) {
  SAGE_CHECK(op != nullptr);
  Vertex v;
  v.id = static_cast<VertexId>(vertices_.size());
  v.name = std::move(name);
  v.kind = VertexKind::kOperator;
  v.site = site;
  v.op = std::move(op);
  vertices_.push_back(std::move(v));
  return vertices_.back().id;
}

VertexId JobGraph::add_sink(std::string name, cloud::Region site) {
  Vertex v;
  v.id = static_cast<VertexId>(vertices_.size());
  v.name = std::move(name);
  v.kind = VertexKind::kSink;
  v.site = site;
  vertices_.push_back(std::move(v));
  return vertices_.back().id;
}

void JobGraph::connect(VertexId from, VertexId to, int port) {
  SAGE_CHECK(from < vertices_.size() && to < vertices_.size());
  SAGE_CHECK(port == 0 || port == 1);
  edges_.push_back(Edge{from, to, port});
}

void JobGraph::assign(VertexId v, cloud::Region site) {
  SAGE_CHECK(v < vertices_.size());
  vertices_[v].site = site;
}

const Vertex& JobGraph::vertex(VertexId v) const {
  SAGE_CHECK(v < vertices_.size());
  return vertices_[v];
}

std::vector<Edge> JobGraph::out_edges(VertexId v) const {
  std::vector<Edge> out;
  for (const Edge& e : edges_) {
    if (e.from == v) out.push_back(e);
  }
  return out;
}

std::vector<cloud::Region> JobGraph::sites_used() const {
  std::vector<cloud::Region> sites;
  for (const Vertex& v : vertices_) {
    if (std::find(sites.begin(), sites.end(), v.site) == sites.end()) {
      sites.push_back(v.site);
    }
  }
  return sites;
}

std::vector<Edge> JobGraph::wan_edges() const {
  std::vector<Edge> out;
  for (const Edge& e : edges_) {
    if (vertices_[e.from].site != vertices_[e.to].site) out.push_back(e);
  }
  return out;
}

std::size_t JobGraph::fuse_stateless_chains() {
  std::size_t merges = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    // Degree counts over the *live* edge list (re-derived each round since
    // merging rewires edges).
    std::vector<int> out_deg(vertices_.size(), 0);
    std::vector<int> in_deg(vertices_.size(), 0);
    for (const Edge& e : edges_) {
      ++out_deg[e.from];
      ++in_deg[e.to];
    }
    for (std::size_t ei = 0; ei < edges_.size(); ++ei) {
      const Edge e = edges_[ei];
      Vertex& a = vertices_[e.from];
      Vertex& b = vertices_[e.to];
      if (a.kind != VertexKind::kOperator || b.kind != VertexKind::kOperator) continue;
      if (a.site != b.site) continue;
      if (out_deg[e.from] != 1 || in_deg[e.to] != 1) continue;
      std::vector<StatelessStage> stages;
      if (!a.op->collect_stages(stages) || !b.op->collect_stages(stages)) continue;

      // Merge B into A: A becomes the fused chain, B's out-edges now leave
      // from A, and B stays in place (disconnected, stateless, timer-free —
      // the runtime never schedules it) so every VertexId remains valid.
      a.op = make_fused(std::string(a.name) + "+" + b.name, std::move(stages));
      edges_.erase(edges_.begin() + static_cast<std::ptrdiff_t>(ei));
      for (Edge& rest : edges_) {
        if (rest.from == b.id) rest.from = a.id;
      }
      ++merges;
      changed = true;
      break;  // degrees are stale; restart the scan
    }
  }
  return merges;
}

void JobGraph::validate() const {
  SAGE_CHECK_MSG(!vertices_.empty(), "empty job graph");
  for (const Edge& e : edges_) {
    SAGE_CHECK(e.from < vertices_.size() && e.to < vertices_.size());
    SAGE_CHECK_MSG(vertices_[e.from].kind != VertexKind::kSink, "sinks have no outputs");
    SAGE_CHECK_MSG(vertices_[e.to].kind != VertexKind::kSource, "sources have no inputs");
    if (e.port == 1) {
      const Vertex& to = vertices_[e.to];
      SAGE_CHECK_MSG(to.kind == VertexKind::kOperator &&
                         dynamic_cast<WindowJoinOperator*>(to.op.get()) != nullptr,
                     "port 1 is only valid on join operators");
    }
  }
  // Kahn's algorithm: every vertex must be reachable in a topological order
  // (i.e. the graph is acyclic).
  std::vector<int> indegree(vertices_.size(), 0);
  for (const Edge& e : edges_) ++indegree[e.to];
  std::vector<VertexId> queue;
  for (const Vertex& v : vertices_) {
    if (indegree[v.id] == 0) queue.push_back(v.id);
  }
  std::size_t seen = 0;
  while (!queue.empty()) {
    const VertexId v = queue.back();
    queue.pop_back();
    ++seen;
    for (const Edge& e : edges_) {
      if (e.from == v && --indegree[e.to] == 0) queue.push_back(e.to);
    }
  }
  SAGE_CHECK_MSG(seen == vertices_.size(), "job graph contains a cycle");
}

}  // namespace sage::stream
