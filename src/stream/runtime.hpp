// The per-site streaming executor and the cross-site runtime.
//
// One VM is provisioned per site used by the job; each vertex executes on
// its site's VM. Batch processing consumes simulated CPU time derived from
// the operator's per-record cost and the VM's time-varying compute factor,
// with FIFO queueing per vertex — so overload manifests as queue growth and
// rising end-to-end latency, exactly the saturation behaviour the scaling
// experiments measure.
//
// Cross-site edges run through a geo-batcher: records accumulate until the
// batch reaches a byte threshold or a maximum age, then ship as one WAN
// transfer through the pluggable TransferBackend. Batching amortizes the
// per-transfer setup and acknowledgement overhead that makes tiny wide-area
// messages so expensive (the A-Brain small-file effect).
//
// Data-plane fast paths (see DESIGN.md "Streaming data plane"):
//
//   * Linear runs of same-site stateless operators are fused into single
//     vertices at construction (JobGraph::fuse_stateless_chains). The
//     executor still charges each stage's CPU cost separately — one
//     simulated delay per stage, CPU factor sampled at every stage boundary
//     — so fusion changes wall-clock speed, never simulated timing.
//   * Batches move, never copy: operators consume their input via
//     process_batch, the geo-batcher steals buffers, and drained batches
//     return to a free-list pool instead of the allocator.
//   * Per-vertex out-edge adjacency (with resolved geo-batcher pointers) is
//     precomputed at start(), removing an O(edges) scan per dispatch.
#pragma once

#include <array>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "chaos/chaos.hpp"
#include "cloud/provider.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "obs/obs.hpp"
#include "stream/backend.hpp"
#include "stream/graph.hpp"
#include "simcore/engine.hpp"

namespace sage::stream {

struct RuntimeConfig {
  /// VM size leased per site.
  cloud::VmSize site_vm = cloud::VmSize::kMedium;
  /// Abstract work units per second a compute-factor-1.0 core processes.
  double work_units_per_sec = 2e6;
  /// Geo-batcher flush thresholds.
  Bytes geo_batch_max_bytes = Bytes::mb(4);
  SimDuration geo_batch_max_delay = SimDuration::seconds(1);
  /// Seed for source randomness.
  std::uint64_t seed = 42;
  /// Collapse adjacent same-site stateless operators into fused vertices.
  /// Simulated results are unchanged; this is a wall-clock optimization.
  bool fuse_stateless_chains = true;
  /// Execute fused stages through their column-wise SoA kernels instead of
  /// the scalar row-at-a-time passes. Both paths compute identical values —
  /// like fusion itself, this is a wall-clock knob only. Defaults from the
  /// `SAGE_SOA` environment variable (on unless set to "0").
  bool soa_kernels = soa_kernels_enabled();
  /// Fault-injection layer armed for this world: benches consult it to
  /// decide whether to attach a ChaosController. Defaults from the
  /// `SAGE_CHAOS` environment variable (off unless set to "1"); when off,
  /// no controller exists and runs are byte-identical to a chaos-free build.
  bool chaos = chaos::chaos_enabled();
};

struct SinkStats {
  std::uint64_t records = 0;
  Bytes bytes;
  /// End-to-end latency (event creation -> sink arrival), milliseconds.
  SampleSet latency_ms;
};

struct WanStats {
  std::uint64_t batches = 0;
  std::uint64_t failures = 0;
  Bytes bytes;
  /// Per-batch transfer time, seconds.
  SampleSet transfer_s;
};

class StreamRuntime {
 public:
  StreamRuntime(cloud::CloudProvider& provider, JobGraph graph, TransferBackend& backend,
                RuntimeConfig config);
  ~StreamRuntime();
  StreamRuntime(const StreamRuntime&) = delete;
  StreamRuntime& operator=(const StreamRuntime&) = delete;

  /// Provision site VMs and start sources/timers.
  void start();

  /// Stop sources and timers, flush nothing further. Leased VMs are
  /// released (their cost lands in the provider's report).
  void stop();

  [[nodiscard]] bool running() const { return running_; }
  [[nodiscard]] const JobGraph& graph() const { return graph_; }

  [[nodiscard]] const SinkStats& sink_stats(VertexId sink) const;
  [[nodiscard]] const WanStats& wan_stats() const { return wan_; }

  /// VM hosting a site's executor (valid after start()).
  [[nodiscard]] cloud::VmId site_vm(cloud::Region site) const;

  /// Records currently queued at a vertex (backpressure observability).
  [[nodiscard]] std::size_t queue_depth(VertexId v) const;

  /// Records currently inside the geo layer: accumulating in a pending
  /// batch, parked in a backlog, or riding a WAN transfer. Conservation
  /// tests need this to balance records-sent against records-arrived.
  [[nodiscard]] std::size_t geo_pending_records() const;

 private:
  struct PendingBatch {
    int port;
    RecordBatch batch;
  };

  struct VertexState {
    std::deque<PendingBatch> queue;
    bool busy = false;
    SinkStats sink;  // kSink only
    std::unique_ptr<sim::PeriodicTask> timer;  // operator timers / sources
    double carry = 0.0;  // fractional records owed by a source
    /// Cached downcast: non-null when this vertex runs a fused chain (the
    /// executor walks its stages individually).
    const FusedStatelessChain* fused = nullptr;
  };

  struct GeoBatcher {
    Edge edge;
    RecordBatch pending;
    SimTime oldest = SimTime::epoch();
    bool in_flight = false;  // one WAN batch at a time per edge
    std::size_t in_flight_records = 0;
    std::deque<RecordBatch> backlog;
    std::unique_ptr<sim::PeriodicTask> flusher;
    obs::SpanId span = obs::kNoSpan;  // open WAN-batch span
  };

  /// One resolved out-edge: local edges carry a null `geo`, WAN edges point
  /// straight at their batcher.
  struct OutEdge {
    Edge edge;
    GeoBatcher* geo = nullptr;
    obs::Counter* sent = nullptr;  // records over this edge (obs only)
  };

  /// Per-vertex observability cells, index-aligned with states_. All null
  /// when obs is off.
  struct VertexObs {
    obs::Counter* arrived = nullptr;
    obs::Counter* consumed = nullptr;
    obs::Counter* produced = nullptr;
    obs::Gauge* watermark = nullptr;  // sinks: max event time seen, seconds
  };

  void emit_source(VertexId v);
  void deliver(const OutEdge& oe, RecordBatch batch);
  void enqueue(VertexId v, int port, RecordBatch batch);
  void process_next(VertexId v);
  void run_fused_stage(VertexId v, RecordBatch batch, std::size_t stage);
  void dispatch_outputs(VertexId v, RecordBatch out);
  void flush_geo(GeoBatcher& b);
  void pump_geo(GeoBatcher& b);

  /// Simulated time to burn `work_units` on `site`'s VM right now.
  [[nodiscard]] SimDuration compute_delay(cloud::Region site, double work_units) const;

  /// Batch pool: drained batches park here and are handed back out with
  /// their buffers intact, so the steady state allocates nothing.
  [[nodiscard]] RecordBatch acquire_batch();
  void recycle(RecordBatch&& batch);

  cloud::CloudProvider& provider_;
  sim::SimEngine& engine_;
  JobGraph graph_;
  TransferBackend& backend_;
  RuntimeConfig config_;
  Rng rng_;

  std::vector<VertexState> states_;
  std::vector<std::unique_ptr<GeoBatcher>> geo_;
  /// Per-vertex resolved adjacency, built at start().
  std::vector<std::vector<OutEdge>> out_edges_;
  std::vector<RecordBatch> pool_;
  std::vector<std::optional<cloud::VmId>> site_vms_;  // sized topology regions
  WanStats wan_;
  std::vector<VertexObs> vobs_;  // built at start(); empty when obs is off
  obs::TraceSink* tracer_ = nullptr;
  obs::Counter* obs_wan_batches_ = nullptr;
  obs::Counter* obs_wan_bytes_ = nullptr;
  obs::Counter* obs_wan_failures_ = nullptr;
  obs::Counter* obs_wan_records_recv_ = nullptr;
  obs::Counter* obs_wan_records_lost_ = nullptr;
  obs::Counter* obs_fused_stages_ = nullptr;
  std::uint32_t wan_span_name_ = 0;
  bool running_ = false;
  bool started_ = false;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace sage::stream
