// Streaming operators.
//
// Operators are batch transformers with up to two input ports (port 1 is
// only used by joins). Time-driven operators (windows, joins) additionally
// expose a flush cadence; the runtime calls on_timer at that interval with
// the current simulated time, which is when window results are emitted
// (processing-time windows — appropriate for the monitoring-style analyses
// SAGE targets and deterministic under simulation).
//
// Each operator advertises a per-record CPU cost in abstract work units;
// the site executor turns that into simulated processing time through the
// host VM's (time-varying) compute throughput.
//
// Two hot-path mechanisms keep the data plane cheap:
//
//   * `process_batch` consumes the input batch by value. Stateless
//     operators (map, filter, fused chains) override it to transform the
//     batch in place — no intermediate RecordBatch is materialized and the
//     input buffer flows through to the output.
//   * Adjacent stateless vertices are collapsed by
//     `JobGraph::fuse_stateless_chains()` into one `FusedStatelessChain`
//     that runs every stage in a single pass over the batch. Operators
//     advertise fusibility via `collect_stages`.
//
// Keyed state (window aggregates, joins, top-k) lives in open-addressing
// `FlatMap`s (common/flat_map.hpp) so the per-record update path probes
// flat arrays and window flushes iterate dense storage.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "common/check.hpp"
#include "common/flat_map.hpp"
#include "stream/record.hpp"

namespace sage::stream {

using MapFn = std::function<Record(const Record&)>;
using FilterPred = std::function<bool(const Record&)>;
/// Whole-batch in-place transform (rewrite records / compact, maintaining
/// the batch's wire-byte total).
using BatchApplyFn = std::function<void(RecordBatch&)>;

/// Wrap a per-record map into a whole-batch pass. Instantiated on the
/// *concrete* callable type, so the record loop inlines the user lambda —
/// one type-erased call per batch instead of one per record.
template <class F>
BatchApplyFn make_map_apply(F f) {
  return [f = std::move(f)](RecordBatch& batch) {
    Bytes total = Bytes::zero();
    for (Record& r : batch.records()) {
      r = f(r);
      total += r.wire_size;
    }
    batch.set_wire_size(total);
  };
}

/// Wrap a per-record predicate into a whole-batch in-place compaction.
template <class F>
BatchApplyFn make_filter_apply(F f) {
  return [f = std::move(f)](RecordBatch& batch) {
    auto& recs = batch.records();
    std::size_t w = 0;
    Bytes total = Bytes::zero();
    for (const Record& r : recs) {
      if (f(r)) {
        recs[w++] = r;
        total += r.wire_size;
      }
    }
    recs.resize(w);
    batch.set_wire_size(total);
  };
}

/// One stage of a fused stateless chain: exactly one of `map` / `filter`
/// is set (record-at-a-time semantics), and `apply` is the equivalent
/// whole-batch pass the executor actually runs. `cost` is the stage's
/// per-record CPU cost (the runtime models fused chains stage by stage, so
/// fusion never changes simulated timing).
struct StatelessStage {
  MapFn map;
  FilterPred filter;
  BatchApplyFn apply;
  double cost = 1.0;
};

class Operator {
 public:
  virtual ~Operator() = default;

  /// Transform one input batch into output records (appended to `out`).
  virtual void process(int port, const RecordBatch& in, RecordBatch& out) = 0;

  /// Owning variant of `process`: the operator may consume `in` (steal its
  /// buffer, transform in place). `out` must be empty. Default: delegate to
  /// `process`, leaving `in` intact for the caller to recycle.
  virtual void process_batch(int port, RecordBatch&& in, RecordBatch& out) {
    process(port, in, out);
  }

  /// Emit time-driven output (window closes). Default: none.
  virtual void on_timer(SimTime now, RecordBatch& out) {
    (void)now;
    (void)out;
  }

  /// Interval between on_timer calls; zero disables the timer.
  [[nodiscard]] virtual SimDuration timer_interval() const { return SimDuration::zero(); }

  /// Abstract CPU work per input record.
  [[nodiscard]] virtual double cost_per_record() const { return 1.0; }

  /// Append this operator's stateless stage(s) to `stages` and return true,
  /// or return false when the operator is stateful (not fusible).
  [[nodiscard]] virtual bool collect_stages(std::vector<StatelessStage>& stages) const {
    (void)stages;
    return false;
  }

  [[nodiscard]] virtual std::string_view name() const = 0;
};

// ---------------------------------------------------------------------------
// Stateless operators.
// ---------------------------------------------------------------------------

class MapOperator final : public Operator {
 public:
  using Fn = MapFn;
  /// Templated on the concrete callable so the hot batch path
  /// (`make_map_apply`) inlines it; `fn_` keeps a type-erased copy for the
  /// record-at-a-time `process` path.
  template <class F>
    requires std::is_invocable_r_v<Record, const F&, const Record&>
  MapOperator(std::string name, F fn, double cost = 1.0)
      : name_(std::move(name)), fn_(fn), apply_(make_map_apply(std::move(fn))),
        cost_(cost) {
    SAGE_CHECK(cost_ > 0.0);
  }

  void process(int port, const RecordBatch& in, RecordBatch& out) override;
  void process_batch(int port, RecordBatch&& in, RecordBatch& out) override;
  [[nodiscard]] double cost_per_record() const override { return cost_; }
  [[nodiscard]] bool collect_stages(std::vector<StatelessStage>& stages) const override;
  [[nodiscard]] std::string_view name() const override { return name_; }

 private:
  std::string name_;
  Fn fn_;
  BatchApplyFn apply_;
  double cost_;
};

class FilterOperator final : public Operator {
 public:
  using Pred = FilterPred;
  template <class F>
    requires std::is_invocable_r_v<bool, const F&, const Record&>
  FilterOperator(std::string name, F pred, double cost = 0.5)
      : name_(std::move(name)), pred_(pred), apply_(make_filter_apply(std::move(pred))),
        cost_(cost) {
    SAGE_CHECK(cost_ > 0.0);
  }

  void process(int port, const RecordBatch& in, RecordBatch& out) override;
  void process_batch(int port, RecordBatch&& in, RecordBatch& out) override;
  [[nodiscard]] double cost_per_record() const override { return cost_; }
  [[nodiscard]] bool collect_stages(std::vector<StatelessStage>& stages) const override;
  [[nodiscard]] std::string_view name() const override { return name_; }

 private:
  std::string name_;
  Pred pred_;
  BatchApplyFn apply_;
  double cost_;
};

/// A chain of stateless stages collapsed into one vertex: one pass over the
/// batch, no intermediate materialization. The runtime executes stages
/// individually (`stage_count` / `stage_cost` / `apply_stage`) so the
/// simulated processing time — including the CPU factor sampled at each
/// stage boundary — is identical to the unfused chain's.
class FusedStatelessChain final : public Operator {
 public:
  FusedStatelessChain(std::string name, std::vector<StatelessStage> stages);

  void process(int port, const RecordBatch& in, RecordBatch& out) override;
  void process_batch(int port, RecordBatch&& in, RecordBatch& out) override;
  /// Sum of stage costs — the chain's worst-case per-record work; the
  /// runtime's stage-wise path uses the exact per-stage costs instead.
  [[nodiscard]] double cost_per_record() const override;
  [[nodiscard]] bool collect_stages(std::vector<StatelessStage>& stages) const override;
  [[nodiscard]] std::string_view name() const override { return name_; }

  [[nodiscard]] std::size_t stage_count() const { return stages_.size(); }
  [[nodiscard]] double stage_cost(std::size_t i) const { return stages_[i].cost; }
  /// Apply stage `i` to `batch` in place (maps rewrite records, filters
  /// compact), maintaining the batch's wire-byte accounting.
  void apply_stage(std::size_t i, RecordBatch& batch) const;

 private:
  std::string name_;
  std::vector<StatelessStage> stages_;
};

// ---------------------------------------------------------------------------
// Keyed tumbling-window aggregation.
// ---------------------------------------------------------------------------

enum class AggregateFn : std::uint8_t { kSum, kCount, kMean, kMin, kMax };

/// Per-key aggregation over processing-time tumbling windows of `window`
/// length. Each window close emits one record per active key whose value is
/// the aggregate and whose event_time is the *oldest* contributing event
/// time (so downstream latency accounting reflects the slowest member).
class WindowAggregateOperator final : public Operator {
 public:
  WindowAggregateOperator(std::string name, SimDuration window, AggregateFn fn,
                          Bytes output_record_size = Bytes::of(64), double cost = 2.0);

  void process(int port, const RecordBatch& in, RecordBatch& out) override;
  void on_timer(SimTime now, RecordBatch& out) override;
  [[nodiscard]] SimDuration timer_interval() const override { return window_; }
  [[nodiscard]] double cost_per_record() const override { return cost_; }
  [[nodiscard]] std::string_view name() const override { return name_; }

  [[nodiscard]] std::size_t active_keys() const { return state_.size(); }

 private:
  struct KeyState {
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    std::uint64_t count = 0;
    SimTime oldest_event;
  };

  std::string name_;
  SimDuration window_;
  AggregateFn fn_;
  Bytes out_size_;
  double cost_;
  FlatMap<KeyState> state_;
};

// ---------------------------------------------------------------------------
// Windowed stream join.
// ---------------------------------------------------------------------------

/// Hash join of two streams on the record key over a processing-time
/// window: records from each side are buffered for `window`; a match emits
/// one record whose value combines both sides (left.value * right-weight +
/// right.value by default via the combiner).
class WindowJoinOperator final : public Operator {
 public:
  using Combiner = std::function<double(double, double)>;
  WindowJoinOperator(std::string name, SimDuration window, Combiner combiner,
                     Bytes output_record_size = Bytes::of(96), double cost = 3.0);

  void process(int port, const RecordBatch& in, RecordBatch& out) override;
  void on_timer(SimTime now, RecordBatch& out) override;
  [[nodiscard]] SimDuration timer_interval() const override { return window_ / 2.0; }
  [[nodiscard]] double cost_per_record() const override { return cost_; }
  [[nodiscard]] std::string_view name() const override { return name_; }

  [[nodiscard]] std::size_t buffered() const;

 private:
  void expire(SimTime now);

  std::string name_;
  SimDuration window_;
  Combiner combiner_;
  Bytes out_size_;
  double cost_;
  FlatMap<std::vector<Record>> left_;
  FlatMap<std::vector<Record>> right_;
  std::vector<std::uint64_t> evict_scratch_;
};

// ---------------------------------------------------------------------------
// Keyed sliding-window aggregation.
// ---------------------------------------------------------------------------

/// Per-key aggregation over sliding processing-time windows: window length
/// `window`, emission every `slide` (slide must divide window). Internally
/// pane-based: records land in slide-sized panes; each emission combines
/// the panes covering the window, so memory is O(keys × window/slide) and
/// no record is buffered individually.
class SlidingWindowAggregateOperator final : public Operator {
 public:
  SlidingWindowAggregateOperator(std::string name, SimDuration window, SimDuration slide,
                                 AggregateFn fn,
                                 Bytes output_record_size = Bytes::of(64),
                                 double cost = 2.5);

  void process(int port, const RecordBatch& in, RecordBatch& out) override;
  void on_timer(SimTime now, RecordBatch& out) override;
  [[nodiscard]] SimDuration timer_interval() const override { return slide_; }
  [[nodiscard]] double cost_per_record() const override { return cost_; }
  [[nodiscard]] std::string_view name() const override { return name_; }

  [[nodiscard]] std::size_t pane_count() const;

 private:
  struct Pane {
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    std::uint64_t count = 0;
    SimTime oldest_event;
  };

  std::string name_;
  SimDuration window_;
  SimDuration slide_;
  AggregateFn fn_;
  Bytes out_size_;
  double cost_;
  std::size_t panes_per_window_;
  /// Per key: ring of the most recent panes (front = current).
  FlatMap<std::deque<Pane>> panes_;
  std::vector<std::uint64_t> evict_scratch_;
};

// ---------------------------------------------------------------------------
// Top-K over tumbling windows.
// ---------------------------------------------------------------------------

/// Counts (or sums values) per key over a tumbling window and emits the K
/// heaviest keys at each window close — the "trending items" primitive of
/// the clickstream scenario. Output records carry the key and its weight.
/// Ties break toward the smaller key, independent of arrival order.
class TopKOperator final : public Operator {
 public:
  TopKOperator(std::string name, SimDuration window, int k, bool sum_values = false,
               Bytes output_record_size = Bytes::of(64), double cost = 2.0);

  void process(int port, const RecordBatch& in, RecordBatch& out) override;
  void on_timer(SimTime now, RecordBatch& out) override;
  [[nodiscard]] SimDuration timer_interval() const override { return window_; }
  [[nodiscard]] double cost_per_record() const override { return cost_; }
  [[nodiscard]] std::string_view name() const override { return name_; }

 private:
  struct KeyWeight {
    double weight = 0.0;
    SimTime oldest_event;
  };

  std::string name_;
  SimDuration window_;
  int k_;
  bool sum_values_;
  Bytes out_size_;
  double cost_;
  FlatMap<KeyWeight> weights_;
  std::vector<std::pair<std::uint64_t, KeyWeight>> sort_scratch_;
};

// Factory helpers. make_map / make_filter are templates so the concrete
// callable type survives into the operator's batch-apply path (see
// make_map_apply); passing a std::function still works, it just keeps the
// extra indirection.
template <class F>
[[nodiscard]] std::shared_ptr<Operator> make_map(std::string name, F fn,
                                                 double cost = 1.0) {
  return std::make_shared<MapOperator>(std::move(name), std::move(fn), cost);
}
template <class F>
[[nodiscard]] std::shared_ptr<Operator> make_filter(std::string name, F pred,
                                                    double cost = 0.5) {
  return std::make_shared<FilterOperator>(std::move(name), std::move(pred), cost);
}
[[nodiscard]] std::shared_ptr<Operator> make_fused(std::string name,
                                                   std::vector<StatelessStage> stages);
[[nodiscard]] std::shared_ptr<Operator> make_window_aggregate(
    std::string name, SimDuration window, AggregateFn fn,
    Bytes output_record_size = Bytes::of(64), double cost = 2.0);
[[nodiscard]] std::shared_ptr<Operator> make_window_join(
    std::string name, SimDuration window, WindowJoinOperator::Combiner combiner,
    Bytes output_record_size = Bytes::of(96), double cost = 3.0);
[[nodiscard]] std::shared_ptr<Operator> make_sliding_window_aggregate(
    std::string name, SimDuration window, SimDuration slide, AggregateFn fn,
    Bytes output_record_size = Bytes::of(64), double cost = 2.5);
[[nodiscard]] std::shared_ptr<Operator> make_top_k(std::string name, SimDuration window,
                                                   int k, bool sum_values = false,
                                                   Bytes output_record_size = Bytes::of(64),
                                                   double cost = 2.0);

}  // namespace sage::stream
