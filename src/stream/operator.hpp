// Streaming operators.
//
// Operators are batch transformers with up to two input ports (port 1 is
// only used by joins). Time-driven operators (windows, joins) additionally
// expose a flush cadence; the runtime calls on_timer at that interval with
// the current simulated time, which is when window results are emitted
// (processing-time windows — appropriate for the monitoring-style analyses
// SAGE targets and deterministic under simulation).
//
// Each operator advertises a per-record CPU cost in abstract work units;
// the site executor turns that into simulated processing time through the
// host VM's (time-varying) compute throughput.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>

#include "stream/record.hpp"

namespace sage::stream {

class Operator {
 public:
  virtual ~Operator() = default;

  /// Transform one input batch into output records (appended to `out`).
  virtual void process(int port, const RecordBatch& in, RecordBatch& out) = 0;

  /// Emit time-driven output (window closes). Default: none.
  virtual void on_timer(SimTime now, RecordBatch& out) {
    (void)now;
    (void)out;
  }

  /// Interval between on_timer calls; zero disables the timer.
  [[nodiscard]] virtual SimDuration timer_interval() const { return SimDuration::zero(); }

  /// Abstract CPU work per input record.
  [[nodiscard]] virtual double cost_per_record() const { return 1.0; }

  [[nodiscard]] virtual std::string_view name() const = 0;
};

// ---------------------------------------------------------------------------
// Stateless operators.
// ---------------------------------------------------------------------------

class MapOperator final : public Operator {
 public:
  using Fn = std::function<Record(const Record&)>;
  MapOperator(std::string name, Fn fn, double cost = 1.0);

  void process(int port, const RecordBatch& in, RecordBatch& out) override;
  [[nodiscard]] double cost_per_record() const override { return cost_; }
  [[nodiscard]] std::string_view name() const override { return name_; }

 private:
  std::string name_;
  Fn fn_;
  double cost_;
};

class FilterOperator final : public Operator {
 public:
  using Pred = std::function<bool(const Record&)>;
  FilterOperator(std::string name, Pred pred, double cost = 0.5);

  void process(int port, const RecordBatch& in, RecordBatch& out) override;
  [[nodiscard]] double cost_per_record() const override { return cost_; }
  [[nodiscard]] std::string_view name() const override { return name_; }

 private:
  std::string name_;
  Pred pred_;
  double cost_;
};

// ---------------------------------------------------------------------------
// Keyed tumbling-window aggregation.
// ---------------------------------------------------------------------------

enum class AggregateFn : std::uint8_t { kSum, kCount, kMean, kMin, kMax };

/// Per-key aggregation over processing-time tumbling windows of `window`
/// length. Each window close emits one record per active key whose value is
/// the aggregate and whose event_time is the *oldest* contributing event
/// time (so downstream latency accounting reflects the slowest member).
class WindowAggregateOperator final : public Operator {
 public:
  WindowAggregateOperator(std::string name, SimDuration window, AggregateFn fn,
                          Bytes output_record_size = Bytes::of(64), double cost = 2.0);

  void process(int port, const RecordBatch& in, RecordBatch& out) override;
  void on_timer(SimTime now, RecordBatch& out) override;
  [[nodiscard]] SimDuration timer_interval() const override { return window_; }
  [[nodiscard]] double cost_per_record() const override { return cost_; }
  [[nodiscard]] std::string_view name() const override { return name_; }

  [[nodiscard]] std::size_t active_keys() const { return state_.size(); }

 private:
  struct KeyState {
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    std::uint64_t count = 0;
    SimTime oldest_event;
  };

  std::string name_;
  SimDuration window_;
  AggregateFn fn_;
  Bytes out_size_;
  double cost_;
  std::unordered_map<std::uint64_t, KeyState> state_;
};

// ---------------------------------------------------------------------------
// Windowed stream join.
// ---------------------------------------------------------------------------

/// Hash join of two streams on the record key over a processing-time
/// window: records from each side are buffered for `window`; a match emits
/// one record whose value combines both sides (left.value * right-weight +
/// right.value by default via the combiner).
class WindowJoinOperator final : public Operator {
 public:
  using Combiner = std::function<double(double, double)>;
  WindowJoinOperator(std::string name, SimDuration window, Combiner combiner,
                     Bytes output_record_size = Bytes::of(96), double cost = 3.0);

  void process(int port, const RecordBatch& in, RecordBatch& out) override;
  void on_timer(SimTime now, RecordBatch& out) override;
  [[nodiscard]] SimDuration timer_interval() const override { return window_ / 2.0; }
  [[nodiscard]] double cost_per_record() const override { return cost_; }
  [[nodiscard]] std::string_view name() const override { return name_; }

  [[nodiscard]] std::size_t buffered() const;

 private:
  void expire(SimTime now);

  std::string name_;
  SimDuration window_;
  Combiner combiner_;
  Bytes out_size_;
  double cost_;
  std::unordered_map<std::uint64_t, std::vector<Record>> left_;
  std::unordered_map<std::uint64_t, std::vector<Record>> right_;
};

// ---------------------------------------------------------------------------
// Keyed sliding-window aggregation.
// ---------------------------------------------------------------------------

/// Per-key aggregation over sliding processing-time windows: window length
/// `window`, emission every `slide` (slide must divide window). Internally
/// pane-based: records land in slide-sized panes; each emission combines
/// the panes covering the window, so memory is O(keys × window/slide) and
/// no record is buffered individually.
class SlidingWindowAggregateOperator final : public Operator {
 public:
  SlidingWindowAggregateOperator(std::string name, SimDuration window, SimDuration slide,
                                 AggregateFn fn,
                                 Bytes output_record_size = Bytes::of(64),
                                 double cost = 2.5);

  void process(int port, const RecordBatch& in, RecordBatch& out) override;
  void on_timer(SimTime now, RecordBatch& out) override;
  [[nodiscard]] SimDuration timer_interval() const override { return slide_; }
  [[nodiscard]] double cost_per_record() const override { return cost_; }
  [[nodiscard]] std::string_view name() const override { return name_; }

  [[nodiscard]] std::size_t pane_count() const;

 private:
  struct Pane {
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    std::uint64_t count = 0;
    SimTime oldest_event;
  };

  std::string name_;
  SimDuration window_;
  SimDuration slide_;
  AggregateFn fn_;
  Bytes out_size_;
  double cost_;
  std::size_t panes_per_window_;
  /// Per key: ring of the most recent panes (front = current).
  std::unordered_map<std::uint64_t, std::deque<Pane>> panes_;
};

// ---------------------------------------------------------------------------
// Top-K over tumbling windows.
// ---------------------------------------------------------------------------

/// Counts (or sums values) per key over a tumbling window and emits the K
/// heaviest keys at each window close — the "trending items" primitive of
/// the clickstream scenario. Output records carry the key and its weight.
class TopKOperator final : public Operator {
 public:
  TopKOperator(std::string name, SimDuration window, int k, bool sum_values = false,
               Bytes output_record_size = Bytes::of(64), double cost = 2.0);

  void process(int port, const RecordBatch& in, RecordBatch& out) override;
  void on_timer(SimTime now, RecordBatch& out) override;
  [[nodiscard]] SimDuration timer_interval() const override { return window_; }
  [[nodiscard]] double cost_per_record() const override { return cost_; }
  [[nodiscard]] std::string_view name() const override { return name_; }

 private:
  struct KeyWeight {
    double weight = 0.0;
    SimTime oldest_event;
  };

  std::string name_;
  SimDuration window_;
  int k_;
  bool sum_values_;
  Bytes out_size_;
  double cost_;
  std::unordered_map<std::uint64_t, KeyWeight> weights_;
};

// Factory helpers.
[[nodiscard]] std::shared_ptr<Operator> make_map(std::string name, MapOperator::Fn fn,
                                                 double cost = 1.0);
[[nodiscard]] std::shared_ptr<Operator> make_filter(std::string name,
                                                    FilterOperator::Pred pred,
                                                    double cost = 0.5);
[[nodiscard]] std::shared_ptr<Operator> make_window_aggregate(
    std::string name, SimDuration window, AggregateFn fn,
    Bytes output_record_size = Bytes::of(64), double cost = 2.0);
[[nodiscard]] std::shared_ptr<Operator> make_window_join(
    std::string name, SimDuration window, WindowJoinOperator::Combiner combiner,
    Bytes output_record_size = Bytes::of(96), double cost = 3.0);
[[nodiscard]] std::shared_ptr<Operator> make_sliding_window_aggregate(
    std::string name, SimDuration window, SimDuration slide, AggregateFn fn,
    Bytes output_record_size = Bytes::of(64), double cost = 2.5);
[[nodiscard]] std::shared_ptr<Operator> make_top_k(std::string name, SimDuration window,
                                                   int k, bool sum_values = false,
                                                   Bytes output_record_size = Bytes::of(64),
                                                   double cost = 2.0);

}  // namespace sage::stream
