// Streaming operators.
//
// Operators are batch transformers with up to two input ports (port 1 is
// only used by joins). Time-driven operators (windows, joins) additionally
// expose a flush cadence; the runtime calls on_timer at that interval with
// the current simulated time, which is when window results are emitted
// (processing-time windows — appropriate for the monitoring-style analyses
// SAGE targets and deterministic under simulation).
//
// Each operator advertises a per-record CPU cost in abstract work units;
// the site executor turns that into simulated processing time through the
// host VM's (time-varying) compute throughput.
//
// Two hot-path mechanisms keep the data plane cheap:
//
//   * `process_batch` consumes the input batch by value. Stateless
//     operators (map, filter, fused chains) override it to transform the
//     batch in place — no intermediate RecordBatch is materialized and the
//     input buffer flows through to the output.
//   * Adjacent stateless vertices are collapsed by
//     `JobGraph::fuse_stateless_chains()` into one `FusedStatelessChain`
//     that runs every stage in a single pass over the batch. Operators
//     advertise fusibility via `collect_stages`.
//
// Keyed state (window aggregates, joins, top-k) lives in open-addressing
// `FlatMap`s (common/flat_map.hpp) so the per-record update path probes
// flat arrays and window flushes iterate dense storage.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#if defined(__x86_64__) && defined(__GNUC__)
#define SAGE_COMPACT_AVX2 1
#include <immintrin.h>
#endif

#include "common/check.hpp"
#include "common/flat_map.hpp"
#include "stream/record.hpp"

namespace sage::stream {

using MapFn = std::function<Record(const Record&)>;
using FilterPred = std::function<bool(const Record&)>;
/// Whole-batch in-place transform (rewrite records / compact, maintaining
/// the batch's wire-byte total).
using BatchApplyFn = std::function<void(RecordBatch&)>;

/// Wrap a per-record map into a whole-batch scalar pass: gather each row,
/// apply the callable, scatter it back. Instantiated on the *concrete*
/// callable type, so the record loop inlines the user lambda — one
/// type-erased call per batch instead of one per record. This is the
/// row-at-a-time reference form a stage runs when SoA kernels are off.
template <class F>
BatchApplyFn make_map_apply(F f) {
  return [f = std::move(f)](RecordBatch& batch) {
    const std::size_t n = batch.size();
    Bytes total = Bytes::zero();
    for (std::size_t i = 0; i < n; ++i) {
      const Record r = f(batch.row(i));
      batch.set_row(i, r);
      total += r.wire_size;
    }
    batch.set_wire_size(total);
  };
}

/// Wrap a per-record predicate into a whole-batch scalar in-place
/// compaction (gather / test / scatter-forward).
template <class F>
BatchApplyFn make_filter_apply(F f) {
  return [f = std::move(f)](RecordBatch& batch) {
    const std::size_t n = batch.size();
    std::size_t w = 0;
    Bytes total = Bytes::zero();
    for (std::size_t i = 0; i < n; ++i) {
      const Record r = batch.row(i);
      if (f(r)) {
        batch.set_row(w++, r);
        total += r.wire_size;
      }
    }
    batch.truncate(w);
    batch.set_wire_size(total);
  };
}

// Column-wise stage kernels: the vectorized passes fused stages run when
// SoA kernels are enabled. Each is instantiated on the concrete callable
// and walks only the columns it needs — no Record is materialized. Every
// kernel computes values identical to its scalar `apply` twin (same
// floating-point operations on the same operands in the same order), so
// flipping the execution path never changes simulated output.

/// Value map `double -> double`: one tight loop over the value column.
/// Event-time / key / wire columns — and therefore the tracked wire-byte
/// total — are untouched.
template <class F>
BatchApplyFn make_value_map_kernel(F f) {
  return [f = std::move(f)](RecordBatch& batch) {
    double* v = batch.values().data();
    const std::size_t n = batch.size();
    for (std::size_t i = 0; i < n; ++i) v[i] = f(v[i]);
  };
}

namespace detail {

#ifdef SAGE_COMPACT_AVX2
/// One-time CPUID probe for the AVX2 left-packing compaction.
inline bool avx2_available() {
  static const bool ok = __builtin_cpu_supports("avx2") != 0;
  return ok;
}

/// Tables for 4-lane 64-bit left packing. `perm[m]` is the epi32 index
/// vector that moves the set lanes of 4-bit mask `m` to the front in
/// stable order (each 64-bit lane is an adjacent pair of 32-bit indexes);
/// `head[c]` is an all-ones mask over the first `c` 64-bit lanes, used to
/// restrict the wire-byte accumulator to the surviving lanes.
struct CompactLut {
  alignas(32) std::int32_t perm[16][8];
  alignas(32) std::int64_t head[5][4];
  CompactLut() {
    for (int m = 0; m < 16; ++m) {
      int out = 0;
      for (int lane = 0; lane < 4; ++lane) {
        if ((m >> lane) & 1) {
          perm[m][2 * out] = 2 * lane;
          perm[m][2 * out + 1] = 2 * lane + 1;
          ++out;
        }
      }
      for (; out < 4; ++out) {
        perm[m][2 * out] = 0;
        perm[m][2 * out + 1] = 1;
      }
    }
    for (int c = 0; c <= 4; ++c) {
      for (int lane = 0; lane < 4; ++lane) head[c][lane] = lane < c ? -1 : 0;
    }
  }
};

inline const CompactLut& compact_lut() {
  static const CompactLut lut;
  return lut;
}

/// Branchless 4-wide compaction body. The predicate still runs scalar, row
/// by row in order (bit-identical to the reference loop); only the data
/// movement is vectorized: a 4-bit keep mask picks a permutation that left-
/// packs the group's lanes in all four columns, stores land unconditionally
/// at the write cursor (lanes past the survivor count hold duplicates that
/// the next group or the final truncate overwrites), and the wire-byte
/// total accumulates masked int64 lanes — integer addition, so the
/// re-associated sum equals the scalar running sum exactly. This removes
/// the one data-dependent branch per row, whose ~10-30% mispredict rate
/// under typical filter selectivities dominates the scalar loop's cost.
///
/// In-place safety: all reads of group [i, i+4) happen before its stores,
/// and stores never touch positions >= i+4 (w <= i always), so later
/// groups read untouched input.
template <class Pred>
__attribute__((target("avx2"))) inline std::size_t compact_columns_avx2(
    SimTime* t, std::uint64_t* k, double* v, Bytes* wire, std::size_t n,
    std::int64_t* total_out, Pred& keep_row) {
  static_assert(std::is_trivially_copyable_v<SimTime> && sizeof(SimTime) == 8);
  static_assert(std::is_trivially_copyable_v<Bytes> && sizeof(Bytes) == 8);
  const CompactLut& lut = compact_lut();
  __m256i acc = _mm256_setzero_si256();
  std::size_t w = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    unsigned m = 0;
    m |= static_cast<unsigned>(keep_row(i));
    m |= static_cast<unsigned>(keep_row(i + 1)) << 1;
    m |= static_cast<unsigned>(keep_row(i + 2)) << 2;
    m |= static_cast<unsigned>(keep_row(i + 3)) << 3;
    const __m256i perm =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(lut.perm[m]));
    const __m256i tv = _mm256_permutevar8x32_epi32(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(t + i)), perm);
    const __m256i kv = _mm256_permutevar8x32_epi32(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(k + i)), perm);
    const __m256i vv = _mm256_permutevar8x32_epi32(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i)), perm);
    const __m256i wv = _mm256_permutevar8x32_epi32(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(wire + i)), perm);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(t + w), tv);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(k + w), kv);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(v + w), vv);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(wire + w), wv);
    const auto c = static_cast<unsigned>(__builtin_popcount(m));
    acc = _mm256_add_epi64(
        acc, _mm256_and_si256(
                 wv, _mm256_load_si256(
                         reinterpret_cast<const __m256i*>(lut.head[c]))));
    w += c;
  }
  alignas(32) std::int64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  std::int64_t total = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  for (; i < n; ++i) {
    if (keep_row(i)) {
      t[w] = t[i];
      k[w] = k[i];
      v[w] = v[i];
      wire[w] = wire[i];
      total += wire[i].count();
      ++w;
    }
  }
  *total_out = total;
  return w;
}
#endif  // SAGE_COMPACT_AVX2

/// Shared single-pass compaction: `keep_row(i)` decides row i's fate and
/// survivors slide forward to the write cursor (always <= the read cursor,
/// so stable and in-place safe). All four columns move in the same pass —
/// one predicate evaluation per row — and the wire-byte total is re-summed
/// from the survivors as they land. On AVX2 hardware the data movement runs
/// through the branchless left-packing body above; the scalar loop is the
/// reference (and tail/fallback) form. Both produce identical batches and
/// identical wire totals.
template <class Pred>
inline void compact_columns(RecordBatch& batch, Pred keep_row) {
  const std::size_t n = batch.size();
  SimTime* t = batch.event_times().data();
  std::uint64_t* k = batch.keys().data();
  double* v = batch.values().data();
  Bytes* wire = batch.wire_sizes().data();
  std::size_t w = 0;
  std::int64_t total = 0;
#ifdef SAGE_COMPACT_AVX2
  if (n >= 8 && avx2_available()) {
    w = compact_columns_avx2(t, k, v, wire, n, &total, keep_row);
    batch.truncate(w);
    batch.set_wire_size(Bytes::of(total));
    return;
  }
#endif
  for (std::size_t i = 0; i < n; ++i) {
    if (keep_row(i)) {
      t[w] = t[i];
      k[w] = k[i];
      v[w] = v[i];
      wire[w] = wire[i];
      total += wire[i].count();
      ++w;
    }
  }
  batch.truncate(w);
  batch.set_wire_size(Bytes::of(total));
}

}  // namespace detail

/// Generic filter kernel: the predicate sees whole records (gathered per
/// row), columns compact in a single branchless pass.
template <class F>
BatchApplyFn make_filter_kernel(F f) {
  return [f = std::move(f)](RecordBatch& batch) {
    detail::compact_columns(batch, [&](std::size_t i) { return f(batch.row(i)); });
  };
}

/// Value filter `double -> bool`: the predicate reads the value column
/// directly — no Record is materialized.
template <class F>
BatchApplyFn make_value_filter_kernel(F f) {
  return [f = std::move(f)](RecordBatch& batch) {
    const double* v = batch.values().data();
    detail::compact_columns(batch, [&](std::size_t i) { return f(v[i]); });
  };
}

/// Key filter `uint64 -> bool`: the predicate reads the key column alone.
template <class F>
BatchApplyFn make_key_filter_kernel(F f) {
  return [f = std::move(f)](RecordBatch& batch) {
    const std::uint64_t* k = batch.keys().data();
    detail::compact_columns(batch, [&](std::size_t i) { return f(k[i]); });
  };
}

/// One stage of a fused stateless chain: exactly one of `map` / `filter`
/// is set (record-at-a-time semantics), `apply` is the equivalent scalar
/// whole-batch pass, and `kernel` — when present — is the column-wise
/// vectorized pass the executor prefers while SoA kernels are enabled.
/// `cost` is the stage's per-record CPU cost (the runtime models fused
/// chains stage by stage, so fusion never changes simulated timing).
struct StatelessStage {
  MapFn map;
  FilterPred filter;
  BatchApplyFn apply;
  BatchApplyFn kernel;
  double cost = 1.0;
};

class Operator {
 public:
  virtual ~Operator() = default;

  /// Transform one input batch into output records (appended to `out`).
  virtual void process(int port, const RecordBatch& in, RecordBatch& out) = 0;

  /// Owning variant of `process`: the operator may consume `in` (steal its
  /// buffer, transform in place). `out` must be empty. Default: delegate to
  /// `process`, leaving `in` intact for the caller to recycle.
  virtual void process_batch(int port, RecordBatch&& in, RecordBatch& out) {
    process(port, in, out);
  }

  /// Emit time-driven output (window closes). Default: none.
  virtual void on_timer(SimTime now, RecordBatch& out) {
    (void)now;
    (void)out;
  }

  /// Interval between on_timer calls; zero disables the timer.
  [[nodiscard]] virtual SimDuration timer_interval() const { return SimDuration::zero(); }

  /// Abstract CPU work per input record.
  [[nodiscard]] virtual double cost_per_record() const { return 1.0; }

  /// Append this operator's stateless stage(s) to `stages` and return true,
  /// or return false when the operator is stateful (not fusible).
  [[nodiscard]] virtual bool collect_stages(std::vector<StatelessStage>& stages) const {
    (void)stages;
    return false;
  }

  [[nodiscard]] virtual std::string_view name() const = 0;
};

// ---------------------------------------------------------------------------
// Stateless operators.
// ---------------------------------------------------------------------------

class MapOperator final : public Operator {
 public:
  using Fn = MapFn;
  /// Templated on the concrete callable so the hot batch path
  /// (`make_map_apply`) inlines it; `fn_` keeps a type-erased copy for the
  /// record-at-a-time `process` path. Generic record maps have no columnar
  /// form — the stage runs its scalar pass in either mode.
  template <class F>
    requires std::is_invocable_r_v<Record, const F&, const Record&>
  MapOperator(std::string name, F fn, double cost = 1.0)
      : name_(std::move(name)), fn_(fn), apply_(make_map_apply(std::move(fn))),
        cost_(cost) {
    SAGE_CHECK(cost_ > 0.0);
  }
  /// Pre-lowered form (the make_value_map factory): a type-erased
  /// record-at-a-time view plus matching scalar `apply` and columnar
  /// `kernel` passes built from the same concrete callable.
  MapOperator(std::string name, MapFn fn, BatchApplyFn apply, BatchApplyFn kernel,
              double cost)
      : name_(std::move(name)), fn_(std::move(fn)), apply_(std::move(apply)),
        kernel_(std::move(kernel)), cost_(cost) {
    SAGE_CHECK(cost_ > 0.0);
  }

  void process(int port, const RecordBatch& in, RecordBatch& out) override;
  void process_batch(int port, RecordBatch&& in, RecordBatch& out) override;
  [[nodiscard]] double cost_per_record() const override { return cost_; }
  [[nodiscard]] bool collect_stages(std::vector<StatelessStage>& stages) const override;
  [[nodiscard]] std::string_view name() const override { return name_; }

 private:
  std::string name_;
  Fn fn_;
  BatchApplyFn apply_;
  BatchApplyFn kernel_;  // null for generic record maps
  double cost_;
};

class FilterOperator final : public Operator {
 public:
  using Pred = FilterPred;
  template <class F>
    requires std::is_invocable_r_v<bool, const F&, const Record&>
  FilterOperator(std::string name, F pred, double cost = 0.5)
      : name_(std::move(name)), pred_(pred), apply_(make_filter_apply(pred)),
        kernel_(make_filter_kernel(std::move(pred))), cost_(cost) {
    SAGE_CHECK(cost_ > 0.0);
  }
  /// Pre-lowered form (the make_value_filter / make_key_filter factories).
  FilterOperator(std::string name, FilterPred pred, BatchApplyFn apply,
                 BatchApplyFn kernel, double cost)
      : name_(std::move(name)), pred_(std::move(pred)), apply_(std::move(apply)),
        kernel_(std::move(kernel)), cost_(cost) {
    SAGE_CHECK(cost_ > 0.0);
  }

  void process(int port, const RecordBatch& in, RecordBatch& out) override;
  void process_batch(int port, RecordBatch&& in, RecordBatch& out) override;
  [[nodiscard]] double cost_per_record() const override { return cost_; }
  [[nodiscard]] bool collect_stages(std::vector<StatelessStage>& stages) const override;
  [[nodiscard]] std::string_view name() const override { return name_; }

 private:
  std::string name_;
  Pred pred_;
  BatchApplyFn apply_;
  BatchApplyFn kernel_;
  double cost_;
};

/// A chain of stateless stages collapsed into one vertex: one pass over the
/// batch, no intermediate materialization. The runtime executes stages
/// individually (`stage_count` / `stage_cost` / `apply_stage`) so the
/// simulated processing time — including the CPU factor sampled at each
/// stage boundary — is identical to the unfused chain's.
class FusedStatelessChain final : public Operator {
 public:
  FusedStatelessChain(std::string name, std::vector<StatelessStage> stages);

  void process(int port, const RecordBatch& in, RecordBatch& out) override;
  void process_batch(int port, RecordBatch&& in, RecordBatch& out) override;
  /// Sum of stage costs — the chain's worst-case per-record work; the
  /// runtime's stage-wise path uses the exact per-stage costs instead.
  [[nodiscard]] double cost_per_record() const override;
  [[nodiscard]] bool collect_stages(std::vector<StatelessStage>& stages) const override;
  [[nodiscard]] std::string_view name() const override { return name_; }

  [[nodiscard]] std::size_t stage_count() const { return stages_.size(); }
  [[nodiscard]] double stage_cost(std::size_t i) const { return stages_[i].cost; }
  /// Apply stage `i` to `batch` in place (maps rewrite records, filters
  /// compact), maintaining the batch's wire-byte accounting. `use_kernel`
  /// selects the column-wise pass when the stage has one; the scalar pass
  /// computes identical values (the runtime passes its config flag, other
  /// callers the process-wide default).
  void apply_stage(std::size_t i, RecordBatch& batch, bool use_kernel) const;
  void apply_stage(std::size_t i, RecordBatch& batch) const {
    apply_stage(i, batch, soa_kernels_enabled());
  }

 private:
  std::string name_;
  std::vector<StatelessStage> stages_;
};

// ---------------------------------------------------------------------------
// Keyed tumbling-window aggregation.
// ---------------------------------------------------------------------------

enum class AggregateFn : std::uint8_t { kSum, kCount, kMean, kMin, kMax };

/// Per-key aggregation over processing-time tumbling windows of `window`
/// length. Each window close emits one record per active key whose value is
/// the aggregate and whose event_time is the *oldest* contributing event
/// time (so downstream latency accounting reflects the slowest member).
class WindowAggregateOperator final : public Operator {
 public:
  WindowAggregateOperator(std::string name, SimDuration window, AggregateFn fn,
                          Bytes output_record_size = Bytes::of(64), double cost = 2.0);

  void process(int port, const RecordBatch& in, RecordBatch& out) override;
  void on_timer(SimTime now, RecordBatch& out) override;
  [[nodiscard]] SimDuration timer_interval() const override { return window_; }
  [[nodiscard]] double cost_per_record() const override { return cost_; }
  [[nodiscard]] std::string_view name() const override { return name_; }

  [[nodiscard]] std::size_t active_keys() const { return state_.size(); }

 private:
  struct KeyState {
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    std::uint64_t count = 0;
    SimTime oldest_event;
  };

  std::string name_;
  SimDuration window_;
  AggregateFn fn_;
  Bytes out_size_;
  double cost_;
  FlatMap<KeyState> state_;
};

// ---------------------------------------------------------------------------
// Windowed stream join.
// ---------------------------------------------------------------------------

/// Hash join of two streams on the record key over a processing-time
/// window: records from each side are buffered for `window`; a match emits
/// one record whose value combines both sides (left.value * right-weight +
/// right.value by default via the combiner).
class WindowJoinOperator final : public Operator {
 public:
  using Combiner = std::function<double(double, double)>;
  WindowJoinOperator(std::string name, SimDuration window, Combiner combiner,
                     Bytes output_record_size = Bytes::of(96), double cost = 3.0);

  void process(int port, const RecordBatch& in, RecordBatch& out) override;
  void on_timer(SimTime now, RecordBatch& out) override;
  [[nodiscard]] SimDuration timer_interval() const override { return window_ / 2.0; }
  [[nodiscard]] double cost_per_record() const override { return cost_; }
  [[nodiscard]] std::string_view name() const override { return name_; }

  [[nodiscard]] std::size_t buffered() const;

 private:
  void expire(SimTime now);

  std::string name_;
  SimDuration window_;
  Combiner combiner_;
  Bytes out_size_;
  double cost_;
  FlatMap<std::vector<Record>> left_;
  FlatMap<std::vector<Record>> right_;
  std::vector<std::uint64_t> evict_scratch_;
};

// ---------------------------------------------------------------------------
// Keyed sliding-window aggregation.
// ---------------------------------------------------------------------------

/// Per-key aggregation over sliding processing-time windows: window length
/// `window`, emission every `slide` (slide must divide window). Internally
/// pane-based: records land in slide-sized panes; each emission combines
/// the panes covering the window, so memory is O(keys × window/slide) and
/// no record is buffered individually.
class SlidingWindowAggregateOperator final : public Operator {
 public:
  SlidingWindowAggregateOperator(std::string name, SimDuration window, SimDuration slide,
                                 AggregateFn fn,
                                 Bytes output_record_size = Bytes::of(64),
                                 double cost = 2.5);

  void process(int port, const RecordBatch& in, RecordBatch& out) override;
  void on_timer(SimTime now, RecordBatch& out) override;
  [[nodiscard]] SimDuration timer_interval() const override { return slide_; }
  [[nodiscard]] double cost_per_record() const override { return cost_; }
  [[nodiscard]] std::string_view name() const override { return name_; }

  [[nodiscard]] std::size_t pane_count() const;

 private:
  struct Pane {
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    std::uint64_t count = 0;
    SimTime oldest_event;
  };

  std::string name_;
  SimDuration window_;
  SimDuration slide_;
  AggregateFn fn_;
  Bytes out_size_;
  double cost_;
  std::size_t panes_per_window_;
  /// Per key: ring of the most recent panes (front = current).
  FlatMap<std::deque<Pane>> panes_;
  std::vector<std::uint64_t> evict_scratch_;
};

// ---------------------------------------------------------------------------
// Top-K over tumbling windows.
// ---------------------------------------------------------------------------

/// Counts (or sums values) per key over a tumbling window and emits the K
/// heaviest keys at each window close — the "trending items" primitive of
/// the clickstream scenario. Output records carry the key and its weight.
/// Ties break toward the smaller key, independent of arrival order.
class TopKOperator final : public Operator {
 public:
  TopKOperator(std::string name, SimDuration window, int k, bool sum_values = false,
               Bytes output_record_size = Bytes::of(64), double cost = 2.0);

  void process(int port, const RecordBatch& in, RecordBatch& out) override;
  void on_timer(SimTime now, RecordBatch& out) override;
  [[nodiscard]] SimDuration timer_interval() const override { return window_; }
  [[nodiscard]] double cost_per_record() const override { return cost_; }
  [[nodiscard]] std::string_view name() const override { return name_; }

 private:
  struct KeyWeight {
    double weight = 0.0;
    SimTime oldest_event;
  };

  std::string name_;
  SimDuration window_;
  int k_;
  bool sum_values_;
  Bytes out_size_;
  double cost_;
  FlatMap<KeyWeight> weights_;
  std::vector<std::pair<std::uint64_t, KeyWeight>> sort_scratch_;
};

// Factory helpers. make_map / make_filter are templates so the concrete
// callable type survives into the operator's batch-apply path (see
// make_map_apply); passing a std::function still works, it just keeps the
// extra indirection. The value/key variants take a callable over the single
// field they read — the stage then compiles to a kernel over that one
// column (see make_value_map_kernel etc.); they are separate factories, not
// overloads, because implicit conversions make double/uint64 invocability
// ambiguous.
template <class F>
[[nodiscard]] std::shared_ptr<Operator> make_map(std::string name, F fn,
                                                 double cost = 1.0) {
  return std::make_shared<MapOperator>(std::move(name), std::move(fn), cost);
}
template <class F>
[[nodiscard]] std::shared_ptr<Operator> make_filter(std::string name, F pred,
                                                    double cost = 0.5) {
  return std::make_shared<FilterOperator>(std::move(name), std::move(pred), cost);
}
/// Map that rewrites only the value: `fn` is `double -> double`.
template <class F>
  requires std::is_invocable_r_v<double, const F&, double>
[[nodiscard]] std::shared_ptr<Operator> make_value_map(std::string name, F fn,
                                                       double cost = 1.0) {
  auto on_record = [fn](const Record& r) {
    Record o = r;
    o.value = fn(r.value);
    return o;
  };
  return std::make_shared<MapOperator>(std::move(name), MapFn(on_record),
                                       make_map_apply(on_record),
                                       make_value_map_kernel(std::move(fn)), cost);
}
/// Filter on the value alone: `pred` is `double -> bool`.
template <class F>
  requires std::is_invocable_r_v<bool, const F&, double>
[[nodiscard]] std::shared_ptr<Operator> make_value_filter(std::string name, F pred,
                                                          double cost = 0.5) {
  auto on_record = [pred](const Record& r) { return static_cast<bool>(pred(r.value)); };
  return std::make_shared<FilterOperator>(std::move(name), FilterPred(on_record),
                                          make_filter_apply(on_record),
                                          make_value_filter_kernel(std::move(pred)),
                                          cost);
}
/// Filter on the key alone: `pred` is `uint64 -> bool`.
template <class F>
  requires std::is_invocable_r_v<bool, const F&, std::uint64_t>
[[nodiscard]] std::shared_ptr<Operator> make_key_filter(std::string name, F pred,
                                                        double cost = 0.5) {
  auto on_record = [pred](const Record& r) { return static_cast<bool>(pred(r.key)); };
  return std::make_shared<FilterOperator>(std::move(name), FilterPred(on_record),
                                          make_filter_apply(on_record),
                                          make_key_filter_kernel(std::move(pred)),
                                          cost);
}
[[nodiscard]] std::shared_ptr<Operator> make_fused(std::string name,
                                                   std::vector<StatelessStage> stages);
[[nodiscard]] std::shared_ptr<Operator> make_window_aggregate(
    std::string name, SimDuration window, AggregateFn fn,
    Bytes output_record_size = Bytes::of(64), double cost = 2.0);
[[nodiscard]] std::shared_ptr<Operator> make_window_join(
    std::string name, SimDuration window, WindowJoinOperator::Combiner combiner,
    Bytes output_record_size = Bytes::of(96), double cost = 3.0);
[[nodiscard]] std::shared_ptr<Operator> make_sliding_window_aggregate(
    std::string name, SimDuration window, SimDuration slide, AggregateFn fn,
    Bytes output_record_size = Bytes::of(64), double cost = 2.5);
[[nodiscard]] std::shared_ptr<Operator> make_top_k(std::string name, SimDuration window,
                                                   int k, bool sum_values = false,
                                                   Bytes output_record_size = Bytes::of(64),
                                                   double cost = 2.0);

}  // namespace sage::stream
