// Dataflow job graphs.
//
// A job is a DAG of vertices — sources, operators, sinks — each pinned to a
// cloud region (site). Edges between vertices on the same site are local
// (in-memory handoff plus CPU cost); edges crossing sites become wide-area
// transfers handled by the runtime's pluggable TransferBackend, which is
// where SAGE's cost/time-aware engine (or a baseline) slots in.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cloud/region.hpp"
#include "common/units.hpp"
#include "stream/operator.hpp"

namespace sage::stream {

using VertexId = std::uint32_t;

enum class VertexKind : std::uint8_t { kSource, kOperator, kSink };

/// Synthetic source description. Sources emit batches every emit_interval;
/// record count follows the configured rate with fractional accumulation.
struct SourceSpec {
  double records_per_sec = 1000.0;
  Bytes record_size = Bytes::of(200);
  /// Keys are drawn from [0, key_count), Zipf-skewed when key_skew > 0.
  std::uint64_t key_count = 100;
  double key_skew = 0.0;
  SimDuration emit_interval = SimDuration::millis(100);
  double value_mean = 0.0;
  double value_stddev = 1.0;
};

struct Vertex {
  VertexId id = 0;
  std::string name;
  VertexKind kind = VertexKind::kOperator;
  cloud::Region site = cloud::Region::kNorthEU;
  std::shared_ptr<Operator> op;  // kOperator only
  SourceSpec source;             // kSource only
};

struct Edge {
  VertexId from = 0;
  VertexId to = 0;
  int port = 0;
};

class JobGraph {
 public:
  VertexId add_source(std::string name, cloud::Region site, SourceSpec spec);
  VertexId add_operator(std::string name, cloud::Region site, std::shared_ptr<Operator> op);
  VertexId add_sink(std::string name, cloud::Region site);

  /// Connect from -> to. `port` selects the input port on `to` (joins use
  /// ports 0 and 1; everything else only port 0).
  void connect(VertexId from, VertexId to, int port = 0);

  /// Re-pin a vertex to another site (used by placement policies).
  void assign(VertexId v, cloud::Region site);

  [[nodiscard]] const std::vector<Vertex>& vertices() const { return vertices_; }
  [[nodiscard]] const std::vector<Edge>& edges() const { return edges_; }
  [[nodiscard]] const Vertex& vertex(VertexId v) const;
  [[nodiscard]] std::vector<Edge> out_edges(VertexId v) const;
  [[nodiscard]] std::vector<cloud::Region> sites_used() const;
  /// Edges whose endpoints live on different sites.
  [[nodiscard]] std::vector<Edge> wan_edges() const;

  /// Throws CheckFailure on malformed graphs: cycles, dangling ids, sinks
  /// with outputs, sources with inputs, or a port-1 edge into a non-join.
  void validate() const;

  /// Collapse linear runs of same-site stateless operators (maps, filters,
  /// already-fused chains) into single FusedStatelessChain vertices, so a
  /// batch crosses the run in one executor dispatch with no intermediate
  /// materialization. Only merges A -> B where A has exactly one out-edge
  /// and B exactly one in-edge; vertex ids are preserved (B's operator moves
  /// into A and B is left disconnected), so ids held by callers — sinks,
  /// metrics probes — stay valid. Returns the number of merges performed.
  std::size_t fuse_stateless_chains();

 private:
  std::vector<Vertex> vertices_;
  std::vector<Edge> edges_;
};

}  // namespace sage::stream
