#include "stream/operator.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace sage::stream {

void MapOperator::process(int port, const RecordBatch& in, RecordBatch& out) {
  SAGE_CHECK_MSG(port == 0, "map has a single input port");
  out.reserve(out.size() + in.size());
  for (const Record& r : in.records()) out.add(fn_(r));
}

void MapOperator::process_batch(int port, RecordBatch&& in, RecordBatch& out) {
  SAGE_CHECK_MSG(port == 0, "map has a single input port");
  SAGE_CHECK_MSG(out.empty(), "process_batch writes into an empty batch");
  out.append(std::move(in));
  apply_(out);
}

bool MapOperator::collect_stages(std::vector<StatelessStage>& stages) const {
  stages.push_back(StatelessStage{fn_, nullptr, apply_, cost_});
  return true;
}

void FilterOperator::process(int port, const RecordBatch& in, RecordBatch& out) {
  SAGE_CHECK_MSG(port == 0, "filter has a single input port");
  for (const Record& r : in.records()) {
    if (pred_(r)) out.add(r);
  }
}

void FilterOperator::process_batch(int port, RecordBatch&& in, RecordBatch& out) {
  SAGE_CHECK_MSG(port == 0, "filter has a single input port");
  SAGE_CHECK_MSG(out.empty(), "process_batch writes into an empty batch");
  out.append(std::move(in));
  apply_(out);
}

bool FilterOperator::collect_stages(std::vector<StatelessStage>& stages) const {
  stages.push_back(StatelessStage{nullptr, pred_, apply_, cost_});
  return true;
}

FusedStatelessChain::FusedStatelessChain(std::string name,
                                         std::vector<StatelessStage> stages)
    : name_(std::move(name)), stages_(std::move(stages)) {
  SAGE_CHECK_MSG(!stages_.empty(), "fused chain needs at least one stage");
  for (const StatelessStage& s : stages_) {
    SAGE_CHECK_MSG((s.map != nullptr) != (s.filter != nullptr),
                   "a stage is exactly one of map / filter");
    SAGE_CHECK(s.cost > 0.0);
  }
}

void FusedStatelessChain::process(int port, const RecordBatch& in, RecordBatch& out) {
  SAGE_CHECK_MSG(port == 0, "fused chain has a single input port");
  out.reserve(out.size() + in.size());
  for (const Record& r : in.records()) {
    Record cur = r;
    bool keep = true;
    for (const StatelessStage& s : stages_) {
      if (s.map) {
        cur = s.map(cur);
      } else if (!s.filter(cur)) {
        keep = false;
        break;
      }
    }
    if (keep) out.add(cur);
  }
}

void FusedStatelessChain::process_batch(int port, RecordBatch&& in, RecordBatch& out) {
  SAGE_CHECK_MSG(port == 0, "fused chain has a single input port");
  SAGE_CHECK_MSG(out.empty(), "process_batch writes into an empty batch");
  out.append(std::move(in));
  // Stage-at-a-time over the one buffer: no intermediate batch is ever
  // materialized, and each tight per-stage loop keeps a single indirect
  // call target (record-at-a-time cycling through the stages defeats
  // indirect-branch prediction and measures ~30% slower).
  for (std::size_t i = 0; i < stages_.size() && !out.empty(); ++i) {
    apply_stage(i, out);
  }
}

double FusedStatelessChain::cost_per_record() const {
  double sum = 0.0;
  for (const StatelessStage& s : stages_) sum += s.cost;
  return sum;
}

bool FusedStatelessChain::collect_stages(std::vector<StatelessStage>& stages) const {
  stages.insert(stages.end(), stages_.begin(), stages_.end());
  return true;
}

void FusedStatelessChain::apply_stage(std::size_t i, RecordBatch& batch) const {
  SAGE_CHECK(i < stages_.size());
  const StatelessStage& s = stages_[i];
  if (s.apply) {
    s.apply(batch);
    return;
  }
  // Stages built by hand without a batch closure fall back to the
  // per-record form.
  auto& recs = batch.records();
  Bytes total = Bytes::zero();
  if (s.map) {
    for (Record& r : recs) {
      r = s.map(r);
      total += r.wire_size;
    }
  } else {
    std::size_t w = 0;
    for (const Record& r : recs) {
      if (s.filter(r)) {
        recs[w++] = r;
        total += r.wire_size;
      }
    }
    recs.resize(w);
    batch.set_wire_size(total);
    return;
  }
  batch.set_wire_size(total);
}

WindowAggregateOperator::WindowAggregateOperator(std::string name, SimDuration window,
                                                 AggregateFn fn, Bytes output_record_size,
                                                 double cost)
    : name_(std::move(name)), window_(window), fn_(fn), out_size_(output_record_size),
      cost_(cost) {
  SAGE_CHECK(window > SimDuration::zero());
  SAGE_CHECK(cost_ > 0.0);
}

void WindowAggregateOperator::process(int port, const RecordBatch& in, RecordBatch& out) {
  SAGE_CHECK_MSG(port == 0, "window aggregate has a single input port");
  (void)out;  // results are emitted on window close, not per batch
  for (const Record& r : in.records()) {
    auto [s, inserted] = state_.find_or_insert(r.key);
    if (inserted) {
      s->min = s->max = r.value;
      s->oldest_event = r.event_time;
    } else {
      s->min = std::min(s->min, r.value);
      s->max = std::max(s->max, r.value);
      if (r.event_time < s->oldest_event) s->oldest_event = r.event_time;
    }
    s->sum += r.value;
    ++s->count;
  }
}

void WindowAggregateOperator::on_timer(SimTime now, RecordBatch& out) {
  (void)now;
  out.reserve(out.size() + state_.size());
  state_.for_each([&](std::uint64_t key, const KeyState& s) {
    Record r;
    r.key = key;
    r.event_time = s.oldest_event;
    r.wire_size = out_size_;
    switch (fn_) {
      case AggregateFn::kSum:
        r.value = s.sum;
        break;
      case AggregateFn::kCount:
        r.value = static_cast<double>(s.count);
        break;
      case AggregateFn::kMean:
        r.value = s.sum / static_cast<double>(s.count);
        break;
      case AggregateFn::kMin:
        r.value = s.min;
        break;
      case AggregateFn::kMax:
        r.value = s.max;
        break;
    }
    out.add(r);
  });
  state_.clear();
}

WindowJoinOperator::WindowJoinOperator(std::string name, SimDuration window,
                                       Combiner combiner, Bytes output_record_size,
                                       double cost)
    : name_(std::move(name)), window_(window), combiner_(std::move(combiner)),
      out_size_(output_record_size), cost_(cost) {
  SAGE_CHECK(window > SimDuration::zero());
  SAGE_CHECK(combiner_ != nullptr);
  SAGE_CHECK(cost_ > 0.0);
}

void WindowJoinOperator::process(int port, const RecordBatch& in, RecordBatch& out) {
  SAGE_CHECK_MSG(port == 0 || port == 1, "join has two input ports");
  auto& own = (port == 0) ? left_ : right_;
  auto& other = (port == 0) ? right_ : left_;
  for (const Record& r : in.records()) {
    // Probe the opposite side first, then insert.
    if (const std::vector<Record>* matches = other.find(r.key)) {
      for (const Record& m : *matches) {
        Record j;
        j.key = r.key;
        // Latency accounting: a join result is as old as its older parent.
        j.event_time = std::min(r.event_time, m.event_time);
        j.value = (port == 0) ? combiner_(r.value, m.value) : combiner_(m.value, r.value);
        j.wire_size = out_size_;
        out.add(j);
      }
    }
    auto [side, inserted] = own.find_or_insert(r.key);
    if (inserted) side->reserve(8);  // skip the 1/2/4 growth stairs per key
    side->push_back(r);
  }
}

void WindowJoinOperator::expire(SimTime now) {
  const SimTime cutoff_guard = SimTime::epoch() + window_;
  const SimTime cutoff = now < cutoff_guard ? SimTime::epoch() : now - window_;
  auto sweep = [this, cutoff](FlatMap<std::vector<Record>>& side) {
    evict_scratch_.clear();
    side.for_each([&](std::uint64_t key, std::vector<Record>& v) {
      std::erase_if(v, [cutoff](const Record& r) { return r.event_time < cutoff; });
      if (v.empty()) evict_scratch_.push_back(key);
    });
    for (std::uint64_t key : evict_scratch_) side.erase(key);
  };
  sweep(left_);
  sweep(right_);
}

void WindowJoinOperator::on_timer(SimTime now, RecordBatch& out) {
  (void)out;  // joins emit eagerly; the timer only expires stale state
  expire(now);
}

std::size_t WindowJoinOperator::buffered() const {
  std::size_t n = 0;
  left_.for_each([&](std::uint64_t, const std::vector<Record>& v) { n += v.size(); });
  right_.for_each([&](std::uint64_t, const std::vector<Record>& v) { n += v.size(); });
  return n;
}

SlidingWindowAggregateOperator::SlidingWindowAggregateOperator(
    std::string name, SimDuration window, SimDuration slide, AggregateFn fn,
    Bytes output_record_size, double cost)
    : name_(std::move(name)), window_(window), slide_(slide), fn_(fn),
      out_size_(output_record_size), cost_(cost) {
  SAGE_CHECK(window > SimDuration::zero());
  SAGE_CHECK(slide > SimDuration::zero());
  SAGE_CHECK_MSG(window.count_micros() % slide.count_micros() == 0,
                 "slide must divide the window length");
  SAGE_CHECK(cost_ > 0.0);
  panes_per_window_ = static_cast<std::size_t>(window.count_micros() / slide.count_micros());
}

void SlidingWindowAggregateOperator::process(int port, const RecordBatch& in,
                                             RecordBatch& out) {
  SAGE_CHECK_MSG(port == 0, "sliding window aggregate has a single input port");
  (void)out;
  for (const Record& r : in.records()) {
    auto [ring, inserted] = panes_.find_or_insert(r.key);
    if (ring->empty()) ring->emplace_front();
    Pane& pane = ring->front();
    if (pane.count == 0) {
      pane.min = pane.max = r.value;
      pane.oldest_event = r.event_time;
    } else {
      pane.min = std::min(pane.min, r.value);
      pane.max = std::max(pane.max, r.value);
      if (r.event_time < pane.oldest_event) pane.oldest_event = r.event_time;
    }
    pane.sum += r.value;
    ++pane.count;
  }
}

void SlidingWindowAggregateOperator::on_timer(SimTime now, RecordBatch& out) {
  (void)now;
  evict_scratch_.clear();
  panes_.for_each([&](std::uint64_t key, std::deque<Pane>& ring) {
    // Combine the live panes into the window aggregate.
    Pane combined;
    bool first = true;
    for (const Pane& p : ring) {
      if (p.count == 0) continue;
      if (first) {
        combined = p;
        first = false;
      } else {
        combined.sum += p.sum;
        combined.count += p.count;
        combined.min = std::min(combined.min, p.min);
        combined.max = std::max(combined.max, p.max);
        if (p.oldest_event < combined.oldest_event) combined.oldest_event = p.oldest_event;
      }
    }
    if (combined.count > 0) {
      Record r;
      r.key = key;
      r.event_time = combined.oldest_event;
      r.wire_size = out_size_;
      switch (fn_) {
        case AggregateFn::kSum:
          r.value = combined.sum;
          break;
        case AggregateFn::kCount:
          r.value = static_cast<double>(combined.count);
          break;
        case AggregateFn::kMean:
          r.value = combined.sum / static_cast<double>(combined.count);
          break;
        case AggregateFn::kMin:
          r.value = combined.min;
          break;
        case AggregateFn::kMax:
          r.value = combined.max;
          break;
      }
      out.add(r);
    }
    // Slide: open the next pane, expire the oldest, drop idle keys.
    ring.emplace_front();
    while (ring.size() > panes_per_window_) ring.pop_back();
    if (combined.count == 0) evict_scratch_.push_back(key);
  });
  for (std::uint64_t key : evict_scratch_) panes_.erase(key);
}

std::size_t SlidingWindowAggregateOperator::pane_count() const {
  std::size_t n = 0;
  panes_.for_each([&](std::uint64_t, const std::deque<Pane>& ring) { n += ring.size(); });
  return n;
}

TopKOperator::TopKOperator(std::string name, SimDuration window, int k, bool sum_values,
                           Bytes output_record_size, double cost)
    : name_(std::move(name)), window_(window), k_(k), sum_values_(sum_values),
      out_size_(output_record_size), cost_(cost) {
  SAGE_CHECK(window > SimDuration::zero());
  SAGE_CHECK(k_ >= 1);
  SAGE_CHECK(cost_ > 0.0);
}

void TopKOperator::process(int port, const RecordBatch& in, RecordBatch& out) {
  SAGE_CHECK_MSG(port == 0, "top-k has a single input port");
  (void)out;
  for (const Record& r : in.records()) {
    auto [kw, inserted] = weights_.find_or_insert(r.key);
    if (inserted || r.event_time < kw->oldest_event) kw->oldest_event = r.event_time;
    kw->weight += sum_values_ ? r.value : 1.0;
  }
}

void TopKOperator::on_timer(SimTime now, RecordBatch& out) {
  (void)now;
  if (weights_.empty()) return;
  sort_scratch_.clear();
  sort_scratch_.reserve(weights_.size());
  weights_.for_each([&](std::uint64_t key, const KeyWeight& kw) {
    sort_scratch_.emplace_back(key, kw);
  });
  auto& entries = sort_scratch_;
  const auto cutoff =
      std::min(static_cast<std::size_t>(k_), entries.size());
  std::partial_sort(entries.begin(),
                    entries.begin() + static_cast<std::ptrdiff_t>(cutoff), entries.end(),
                    [](const auto& a, const auto& b) {
                      if (a.second.weight != b.second.weight) {
                        return a.second.weight > b.second.weight;
                      }
                      return a.first < b.first;  // deterministic ties
                    });
  for (std::size_t i = 0; i < cutoff; ++i) {
    Record r;
    r.key = entries[i].first;
    r.value = entries[i].second.weight;
    r.event_time = entries[i].second.oldest_event;
    r.wire_size = out_size_;
    out.add(r);
  }
  weights_.clear();
}

std::shared_ptr<Operator> make_fused(std::string name, std::vector<StatelessStage> stages) {
  return std::make_shared<FusedStatelessChain>(std::move(name), std::move(stages));
}

std::shared_ptr<Operator> make_window_aggregate(std::string name, SimDuration window,
                                                AggregateFn fn, Bytes output_record_size,
                                                double cost) {
  return std::make_shared<WindowAggregateOperator>(std::move(name), window, fn,
                                                   output_record_size, cost);
}

std::shared_ptr<Operator> make_window_join(std::string name, SimDuration window,
                                           WindowJoinOperator::Combiner combiner,
                                           Bytes output_record_size, double cost) {
  return std::make_shared<WindowJoinOperator>(std::move(name), window, std::move(combiner),
                                              output_record_size, cost);
}

std::shared_ptr<Operator> make_sliding_window_aggregate(std::string name,
                                                        SimDuration window,
                                                        SimDuration slide, AggregateFn fn,
                                                        Bytes output_record_size,
                                                        double cost) {
  return std::make_shared<SlidingWindowAggregateOperator>(
      std::move(name), window, slide, fn, output_record_size, cost);
}

std::shared_ptr<Operator> make_top_k(std::string name, SimDuration window, int k,
                                     bool sum_values, Bytes output_record_size,
                                     double cost) {
  return std::make_shared<TopKOperator>(std::move(name), window, k, sum_values,
                                        output_record_size, cost);
}

}  // namespace sage::stream
