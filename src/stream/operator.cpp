#include "stream/operator.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace sage::stream {

void MapOperator::process(int port, const RecordBatch& in, RecordBatch& out) {
  SAGE_CHECK_MSG(port == 0, "map has a single input port");
  if (out.empty()) {
    // Whole-batch fast path: bulk-copy the columns, then transform in
    // place exactly as process_batch would — identical output, no
    // per-record gather/append.
    out.append(in);
    if (kernel_ && soa_kernels_enabled()) {
      kernel_(out);
    } else {
      apply_(out);
    }
    return;
  }
  const std::size_t n = in.size();
  out.reserve(out.size() + n);
  for (std::size_t i = 0; i < n; ++i) out.add(fn_(in.row(i)));
}

void MapOperator::process_batch(int port, RecordBatch&& in, RecordBatch& out) {
  SAGE_CHECK_MSG(port == 0, "map has a single input port");
  SAGE_CHECK_MSG(out.empty(), "process_batch writes into an empty batch");
  out.append(std::move(in));
  if (kernel_ && soa_kernels_enabled()) {
    kernel_(out);
  } else {
    apply_(out);
  }
}

bool MapOperator::collect_stages(std::vector<StatelessStage>& stages) const {
  stages.push_back(StatelessStage{fn_, nullptr, apply_, kernel_, cost_});
  return true;
}

void FilterOperator::process(int port, const RecordBatch& in, RecordBatch& out) {
  SAGE_CHECK_MSG(port == 0, "filter has a single input port");
  if (out.empty()) {
    // Whole-batch fast path: bulk-copy the columns, then compact in place
    // exactly as process_batch would — identical survivors, no per-record
    // gather/append.
    out.append(in);
    if (kernel_ && soa_kernels_enabled()) {
      kernel_(out);
    } else {
      apply_(out);
    }
    return;
  }
  const std::size_t n = in.size();
  for (std::size_t i = 0; i < n; ++i) {
    const Record r = in.row(i);
    if (pred_(r)) out.add(r);
  }
}

void FilterOperator::process_batch(int port, RecordBatch&& in, RecordBatch& out) {
  SAGE_CHECK_MSG(port == 0, "filter has a single input port");
  SAGE_CHECK_MSG(out.empty(), "process_batch writes into an empty batch");
  out.append(std::move(in));
  if (kernel_ && soa_kernels_enabled()) {
    kernel_(out);
  } else {
    apply_(out);
  }
}

bool FilterOperator::collect_stages(std::vector<StatelessStage>& stages) const {
  stages.push_back(StatelessStage{nullptr, pred_, apply_, kernel_, cost_});
  return true;
}

FusedStatelessChain::FusedStatelessChain(std::string name,
                                         std::vector<StatelessStage> stages)
    : name_(std::move(name)), stages_(std::move(stages)) {
  SAGE_CHECK_MSG(!stages_.empty(), "fused chain needs at least one stage");
  for (const StatelessStage& s : stages_) {
    SAGE_CHECK_MSG((s.map != nullptr) != (s.filter != nullptr),
                   "a stage is exactly one of map / filter");
    SAGE_CHECK(s.cost > 0.0);
  }
}

void FusedStatelessChain::process(int port, const RecordBatch& in, RecordBatch& out) {
  SAGE_CHECK_MSG(port == 0, "fused chain has a single input port");
  const std::size_t n = in.size();
  out.reserve(out.size() + n);
  for (std::size_t i = 0; i < n; ++i) {
    Record cur = in.row(i);
    bool keep = true;
    for (const StatelessStage& s : stages_) {
      if (s.map) {
        cur = s.map(cur);
      } else if (!s.filter(cur)) {
        keep = false;
        break;
      }
    }
    if (keep) out.add(cur);
  }
}

void FusedStatelessChain::process_batch(int port, RecordBatch&& in, RecordBatch& out) {
  SAGE_CHECK_MSG(port == 0, "fused chain has a single input port");
  SAGE_CHECK_MSG(out.empty(), "process_batch writes into an empty batch");
  out.append(std::move(in));
  // Stage-at-a-time over the one buffer: no intermediate batch is ever
  // materialized, and each tight per-stage loop keeps a single indirect
  // call target (record-at-a-time cycling through the stages defeats
  // indirect-branch prediction and measures ~30% slower).
  const bool use_kernel = soa_kernels_enabled();
  for (std::size_t i = 0; i < stages_.size() && !out.empty(); ++i) {
    apply_stage(i, out, use_kernel);
  }
}

double FusedStatelessChain::cost_per_record() const {
  double sum = 0.0;
  for (const StatelessStage& s : stages_) sum += s.cost;
  return sum;
}

bool FusedStatelessChain::collect_stages(std::vector<StatelessStage>& stages) const {
  stages.insert(stages.end(), stages_.begin(), stages_.end());
  return true;
}

void FusedStatelessChain::apply_stage(std::size_t i, RecordBatch& batch,
                                      bool use_kernel) const {
  SAGE_CHECK(i < stages_.size());
  const StatelessStage& s = stages_[i];
  // Columnar kernel (when the stage lowered to one and the SoA execution
  // path is on) and scalar batch closure compute identical values; the
  // kernel just walks single columns instead of gather/scatter per row.
  if (use_kernel && s.kernel) {
    s.kernel(batch);
    return;
  }
  if (s.apply) {
    s.apply(batch);
    return;
  }
  // Stages built by hand without a batch closure fall back to the
  // per-record gather/scatter form.
  const std::size_t n = batch.size();
  Bytes total = Bytes::zero();
  if (s.map) {
    for (std::size_t r = 0; r < n; ++r) {
      const Record m = s.map(batch.row(r));
      batch.set_row(r, m);
      total += m.wire_size;
    }
  } else {
    std::size_t w = 0;
    for (std::size_t r = 0; r < n; ++r) {
      const Record cur = batch.row(r);
      if (s.filter(cur)) {
        batch.set_row(w++, cur);
        total += cur.wire_size;
      }
    }
    batch.truncate(w);
  }
  batch.set_wire_size(total);
}

WindowAggregateOperator::WindowAggregateOperator(std::string name, SimDuration window,
                                                 AggregateFn fn, Bytes output_record_size,
                                                 double cost)
    : name_(std::move(name)), window_(window), fn_(fn), out_size_(output_record_size),
      cost_(cost) {
  SAGE_CHECK(window > SimDuration::zero());
  SAGE_CHECK(cost_ > 0.0);
}

void WindowAggregateOperator::process(int port, const RecordBatch& in, RecordBatch& out) {
  SAGE_CHECK_MSG(port == 0, "window aggregate has a single input port");
  (void)out;  // results are emitted on window close, not per batch
  // Keyed gather: read the three touched columns directly instead of
  // materializing 32-byte Records (the wire column is dead here).
  const std::size_t n = in.size();
  // Presize the keyed state for the all-new-keys worst case so the gather
  // loop never rehashes mid-batch; FlatMap keeps capacity across window
  // flushes, so a steady-state pipeline pays the growth once.
  state_.reserve(state_.size() + n);
  const std::uint64_t* keys = in.keys().data();
  const double* values = in.values().data();
  const SimTime* times = in.event_times().data();
  for (std::size_t i = 0; i < n; ++i) {
    const double v = values[i];
    auto [s, inserted] = state_.find_or_insert(keys[i]);
    if (inserted) {
      s->min = s->max = v;
      s->oldest_event = times[i];
    } else {
      s->min = std::min(s->min, v);
      s->max = std::max(s->max, v);
      if (times[i] < s->oldest_event) s->oldest_event = times[i];
    }
    s->sum += v;
    ++s->count;
  }
}

void WindowAggregateOperator::on_timer(SimTime now, RecordBatch& out) {
  (void)now;
  // Columnar scatter: presize the four columns once and write through raw
  // pointers — the dense window flush is the second-hottest keyed path
  // after the per-record update loop. Emission order, values, and the
  // tracked wire total are exactly those of the record-at-a-time form.
  const std::size_t base = out.size();
  const std::size_t n = state_.size();
  auto& et = out.event_times();
  auto& ks = out.keys();
  auto& vs = out.values();
  auto& ws = out.wire_sizes();
  et.resize(base + n);
  ks.resize(base + n);
  vs.resize(base + n);
  ws.resize(base + n);
  SimTime* ep = et.data() + base;
  std::uint64_t* kp = ks.data() + base;
  double* vp = vs.data() + base;
  Bytes* wp = ws.data() + base;
  std::size_t i = 0;
  state_.for_each([&](std::uint64_t key, const KeyState& s) {
    kp[i] = key;
    ep[i] = s.oldest_event;
    wp[i] = out_size_;
    switch (fn_) {
      case AggregateFn::kSum:
        vp[i] = s.sum;
        break;
      case AggregateFn::kCount:
        vp[i] = static_cast<double>(s.count);
        break;
      case AggregateFn::kMean:
        vp[i] = s.sum / static_cast<double>(s.count);
        break;
      case AggregateFn::kMin:
        vp[i] = s.min;
        break;
      case AggregateFn::kMax:
        vp[i] = s.max;
        break;
    }
    ++i;
  });
  out.set_wire_size(out.wire_size() +
                    Bytes::of(out_size_.count() * static_cast<std::int64_t>(n)));
  state_.clear();
}

WindowJoinOperator::WindowJoinOperator(std::string name, SimDuration window,
                                       Combiner combiner, Bytes output_record_size,
                                       double cost)
    : name_(std::move(name)), window_(window), combiner_(std::move(combiner)),
      out_size_(output_record_size), cost_(cost) {
  SAGE_CHECK(window > SimDuration::zero());
  SAGE_CHECK(combiner_ != nullptr);
  SAGE_CHECK(cost_ > 0.0);
}

void WindowJoinOperator::process(int port, const RecordBatch& in, RecordBatch& out) {
  SAGE_CHECK_MSG(port == 0 || port == 1, "join has two input ports");
  auto& own = (port == 0) ? left_ : right_;
  auto& other = (port == 0) ? right_ : left_;
  const std::size_t n = in.size();
  for (std::size_t i = 0; i < n; ++i) {
    const Record r = in.row(i);
    // Probe the opposite side first, then insert.
    if (const std::vector<Record>* matches = other.find(r.key)) {
      for (const Record& m : *matches) {
        Record j;
        j.key = r.key;
        // Latency accounting: a join result is as old as its older parent.
        j.event_time = std::min(r.event_time, m.event_time);
        j.value = (port == 0) ? combiner_(r.value, m.value) : combiner_(m.value, r.value);
        j.wire_size = out_size_;
        out.add(j);
      }
    }
    auto [side, inserted] = own.find_or_insert(r.key);
    if (inserted) side->reserve(8);  // skip the 1/2/4 growth stairs per key
    side->push_back(r);
  }
}

void WindowJoinOperator::expire(SimTime now) {
  const SimTime cutoff_guard = SimTime::epoch() + window_;
  const SimTime cutoff = now < cutoff_guard ? SimTime::epoch() : now - window_;
  auto sweep = [this, cutoff](FlatMap<std::vector<Record>>& side) {
    evict_scratch_.clear();
    side.for_each([&](std::uint64_t key, std::vector<Record>& v) {
      std::erase_if(v, [cutoff](const Record& r) { return r.event_time < cutoff; });
      if (v.empty()) evict_scratch_.push_back(key);
    });
    for (std::uint64_t key : evict_scratch_) side.erase(key);
  };
  sweep(left_);
  sweep(right_);
}

void WindowJoinOperator::on_timer(SimTime now, RecordBatch& out) {
  (void)out;  // joins emit eagerly; the timer only expires stale state
  expire(now);
}

std::size_t WindowJoinOperator::buffered() const {
  std::size_t n = 0;
  left_.for_each([&](std::uint64_t, const std::vector<Record>& v) { n += v.size(); });
  right_.for_each([&](std::uint64_t, const std::vector<Record>& v) { n += v.size(); });
  return n;
}

SlidingWindowAggregateOperator::SlidingWindowAggregateOperator(
    std::string name, SimDuration window, SimDuration slide, AggregateFn fn,
    Bytes output_record_size, double cost)
    : name_(std::move(name)), window_(window), slide_(slide), fn_(fn),
      out_size_(output_record_size), cost_(cost) {
  SAGE_CHECK(window > SimDuration::zero());
  SAGE_CHECK(slide > SimDuration::zero());
  SAGE_CHECK_MSG(window.count_micros() % slide.count_micros() == 0,
                 "slide must divide the window length");
  SAGE_CHECK(cost_ > 0.0);
  panes_per_window_ = static_cast<std::size_t>(window.count_micros() / slide.count_micros());
}

void SlidingWindowAggregateOperator::process(int port, const RecordBatch& in,
                                             RecordBatch& out) {
  SAGE_CHECK_MSG(port == 0, "sliding window aggregate has a single input port");
  (void)out;
  const std::size_t n = in.size();
  const std::uint64_t* keys = in.keys().data();
  const double* values = in.values().data();
  const SimTime* times = in.event_times().data();
  for (std::size_t i = 0; i < n; ++i) {
    const double v = values[i];
    auto [ring, inserted] = panes_.find_or_insert(keys[i]);
    if (ring->empty()) ring->emplace_front();
    Pane& pane = ring->front();
    if (pane.count == 0) {
      pane.min = pane.max = v;
      pane.oldest_event = times[i];
    } else {
      pane.min = std::min(pane.min, v);
      pane.max = std::max(pane.max, v);
      if (times[i] < pane.oldest_event) pane.oldest_event = times[i];
    }
    pane.sum += v;
    ++pane.count;
  }
}

void SlidingWindowAggregateOperator::on_timer(SimTime now, RecordBatch& out) {
  (void)now;
  evict_scratch_.clear();
  panes_.for_each([&](std::uint64_t key, std::deque<Pane>& ring) {
    // Combine the live panes into the window aggregate.
    Pane combined;
    bool first = true;
    for (const Pane& p : ring) {
      if (p.count == 0) continue;
      if (first) {
        combined = p;
        first = false;
      } else {
        combined.sum += p.sum;
        combined.count += p.count;
        combined.min = std::min(combined.min, p.min);
        combined.max = std::max(combined.max, p.max);
        if (p.oldest_event < combined.oldest_event) combined.oldest_event = p.oldest_event;
      }
    }
    if (combined.count > 0) {
      Record r;
      r.key = key;
      r.event_time = combined.oldest_event;
      r.wire_size = out_size_;
      switch (fn_) {
        case AggregateFn::kSum:
          r.value = combined.sum;
          break;
        case AggregateFn::kCount:
          r.value = static_cast<double>(combined.count);
          break;
        case AggregateFn::kMean:
          r.value = combined.sum / static_cast<double>(combined.count);
          break;
        case AggregateFn::kMin:
          r.value = combined.min;
          break;
        case AggregateFn::kMax:
          r.value = combined.max;
          break;
      }
      out.add(r);
    }
    // Slide: open the next pane, expire the oldest, drop idle keys.
    ring.emplace_front();
    while (ring.size() > panes_per_window_) ring.pop_back();
    if (combined.count == 0) evict_scratch_.push_back(key);
  });
  for (std::uint64_t key : evict_scratch_) panes_.erase(key);
}

std::size_t SlidingWindowAggregateOperator::pane_count() const {
  std::size_t n = 0;
  panes_.for_each([&](std::uint64_t, const std::deque<Pane>& ring) { n += ring.size(); });
  return n;
}

TopKOperator::TopKOperator(std::string name, SimDuration window, int k, bool sum_values,
                           Bytes output_record_size, double cost)
    : name_(std::move(name)), window_(window), k_(k), sum_values_(sum_values),
      out_size_(output_record_size), cost_(cost) {
  SAGE_CHECK(window > SimDuration::zero());
  SAGE_CHECK(k_ >= 1);
  SAGE_CHECK(cost_ > 0.0);
}

void TopKOperator::process(int port, const RecordBatch& in, RecordBatch& out) {
  SAGE_CHECK_MSG(port == 0, "top-k has a single input port");
  (void)out;
  const std::size_t n = in.size();
  const std::uint64_t* keys = in.keys().data();
  const double* values = in.values().data();
  const SimTime* times = in.event_times().data();
  for (std::size_t i = 0; i < n; ++i) {
    auto [kw, inserted] = weights_.find_or_insert(keys[i]);
    if (inserted || times[i] < kw->oldest_event) kw->oldest_event = times[i];
    kw->weight += sum_values_ ? values[i] : 1.0;
  }
}

void TopKOperator::on_timer(SimTime now, RecordBatch& out) {
  (void)now;
  if (weights_.empty()) return;
  sort_scratch_.clear();
  sort_scratch_.reserve(weights_.size());
  weights_.for_each([&](std::uint64_t key, const KeyWeight& kw) {
    sort_scratch_.emplace_back(key, kw);
  });
  auto& entries = sort_scratch_;
  const auto cutoff =
      std::min(static_cast<std::size_t>(k_), entries.size());
  std::partial_sort(entries.begin(),
                    entries.begin() + static_cast<std::ptrdiff_t>(cutoff), entries.end(),
                    [](const auto& a, const auto& b) {
                      if (a.second.weight != b.second.weight) {
                        return a.second.weight > b.second.weight;
                      }
                      return a.first < b.first;  // deterministic ties
                    });
  for (std::size_t i = 0; i < cutoff; ++i) {
    Record r;
    r.key = entries[i].first;
    r.value = entries[i].second.weight;
    r.event_time = entries[i].second.oldest_event;
    r.wire_size = out_size_;
    out.add(r);
  }
  weights_.clear();
}

std::shared_ptr<Operator> make_fused(std::string name, std::vector<StatelessStage> stages) {
  return std::make_shared<FusedStatelessChain>(std::move(name), std::move(stages));
}

std::shared_ptr<Operator> make_window_aggregate(std::string name, SimDuration window,
                                                AggregateFn fn, Bytes output_record_size,
                                                double cost) {
  return std::make_shared<WindowAggregateOperator>(std::move(name), window, fn,
                                                   output_record_size, cost);
}

std::shared_ptr<Operator> make_window_join(std::string name, SimDuration window,
                                           WindowJoinOperator::Combiner combiner,
                                           Bytes output_record_size, double cost) {
  return std::make_shared<WindowJoinOperator>(std::move(name), window, std::move(combiner),
                                              output_record_size, cost);
}

std::shared_ptr<Operator> make_sliding_window_aggregate(std::string name,
                                                        SimDuration window,
                                                        SimDuration slide, AggregateFn fn,
                                                        Bytes output_record_size,
                                                        double cost) {
  return std::make_shared<SlidingWindowAggregateOperator>(
      std::move(name), window, slide, fn, output_record_size, cost);
}

std::shared_ptr<Operator> make_top_k(std::string name, SimDuration window, int k,
                                     bool sum_values, Bytes output_record_size,
                                     double cost) {
  return std::make_shared<TopKOperator>(std::move(name), window, k, sum_values,
                                        output_record_size, cost);
}

}  // namespace sage::stream
