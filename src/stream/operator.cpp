#include "stream/operator.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace sage::stream {

MapOperator::MapOperator(std::string name, Fn fn, double cost)
    : name_(std::move(name)), fn_(std::move(fn)), cost_(cost) {
  SAGE_CHECK(fn_ != nullptr);
  SAGE_CHECK(cost_ > 0.0);
}

void MapOperator::process(int port, const RecordBatch& in, RecordBatch& out) {
  SAGE_CHECK_MSG(port == 0, "map has a single input port");
  for (const Record& r : in.records()) out.add(fn_(r));
}

FilterOperator::FilterOperator(std::string name, Pred pred, double cost)
    : name_(std::move(name)), pred_(std::move(pred)), cost_(cost) {
  SAGE_CHECK(pred_ != nullptr);
  SAGE_CHECK(cost_ > 0.0);
}

void FilterOperator::process(int port, const RecordBatch& in, RecordBatch& out) {
  SAGE_CHECK_MSG(port == 0, "filter has a single input port");
  for (const Record& r : in.records()) {
    if (pred_(r)) out.add(r);
  }
}

WindowAggregateOperator::WindowAggregateOperator(std::string name, SimDuration window,
                                                 AggregateFn fn, Bytes output_record_size,
                                                 double cost)
    : name_(std::move(name)), window_(window), fn_(fn), out_size_(output_record_size),
      cost_(cost) {
  SAGE_CHECK(window > SimDuration::zero());
  SAGE_CHECK(cost_ > 0.0);
}

void WindowAggregateOperator::process(int port, const RecordBatch& in, RecordBatch& out) {
  SAGE_CHECK_MSG(port == 0, "window aggregate has a single input port");
  (void)out;  // results are emitted on window close, not per batch
  for (const Record& r : in.records()) {
    auto [it, inserted] = state_.try_emplace(r.key);
    KeyState& s = it->second;
    if (inserted) {
      s.min = s.max = r.value;
      s.oldest_event = r.event_time;
    } else {
      s.min = std::min(s.min, r.value);
      s.max = std::max(s.max, r.value);
      if (r.event_time < s.oldest_event) s.oldest_event = r.event_time;
    }
    s.sum += r.value;
    ++s.count;
  }
}

void WindowAggregateOperator::on_timer(SimTime now, RecordBatch& out) {
  (void)now;
  for (const auto& [key, s] : state_) {
    Record r;
    r.key = key;
    r.event_time = s.oldest_event;
    r.wire_size = out_size_;
    switch (fn_) {
      case AggregateFn::kSum:
        r.value = s.sum;
        break;
      case AggregateFn::kCount:
        r.value = static_cast<double>(s.count);
        break;
      case AggregateFn::kMean:
        r.value = s.sum / static_cast<double>(s.count);
        break;
      case AggregateFn::kMin:
        r.value = s.min;
        break;
      case AggregateFn::kMax:
        r.value = s.max;
        break;
    }
    out.add(r);
  }
  state_.clear();
}

WindowJoinOperator::WindowJoinOperator(std::string name, SimDuration window,
                                       Combiner combiner, Bytes output_record_size,
                                       double cost)
    : name_(std::move(name)), window_(window), combiner_(std::move(combiner)),
      out_size_(output_record_size), cost_(cost) {
  SAGE_CHECK(window > SimDuration::zero());
  SAGE_CHECK(combiner_ != nullptr);
  SAGE_CHECK(cost_ > 0.0);
}

void WindowJoinOperator::process(int port, const RecordBatch& in, RecordBatch& out) {
  SAGE_CHECK_MSG(port == 0 || port == 1, "join has two input ports");
  auto& own = (port == 0) ? left_ : right_;
  auto& other = (port == 0) ? right_ : left_;
  for (const Record& r : in.records()) {
    // Probe the opposite side first, then insert.
    auto it = other.find(r.key);
    if (it != other.end()) {
      for (const Record& m : it->second) {
        Record j;
        j.key = r.key;
        // Latency accounting: a join result is as old as its older parent.
        j.event_time = std::min(r.event_time, m.event_time);
        j.value = (port == 0) ? combiner_(r.value, m.value) : combiner_(m.value, r.value);
        j.wire_size = out_size_;
        out.add(j);
      }
    }
    own[r.key].push_back(r);
  }
}

void WindowJoinOperator::expire(SimTime now) {
  const SimTime cutoff_guard = SimTime::epoch() + window_;
  const SimTime cutoff = now < cutoff_guard ? SimTime::epoch() : now - window_;
  auto sweep = [cutoff](auto& side) {
    for (auto it = side.begin(); it != side.end();) {
      auto& v = it->second;
      std::erase_if(v, [cutoff](const Record& r) { return r.event_time < cutoff; });
      it = v.empty() ? side.erase(it) : std::next(it);
    }
  };
  sweep(left_);
  sweep(right_);
}

void WindowJoinOperator::on_timer(SimTime now, RecordBatch& out) {
  (void)out;  // joins emit eagerly; the timer only expires stale state
  expire(now);
}

std::size_t WindowJoinOperator::buffered() const {
  std::size_t n = 0;
  for (const auto& [k, v] : left_) n += v.size();
  for (const auto& [k, v] : right_) n += v.size();
  return n;
}

SlidingWindowAggregateOperator::SlidingWindowAggregateOperator(
    std::string name, SimDuration window, SimDuration slide, AggregateFn fn,
    Bytes output_record_size, double cost)
    : name_(std::move(name)), window_(window), slide_(slide), fn_(fn),
      out_size_(output_record_size), cost_(cost) {
  SAGE_CHECK(window > SimDuration::zero());
  SAGE_CHECK(slide > SimDuration::zero());
  SAGE_CHECK_MSG(window.count_micros() % slide.count_micros() == 0,
                 "slide must divide the window length");
  SAGE_CHECK(cost_ > 0.0);
  panes_per_window_ = static_cast<std::size_t>(window.count_micros() / slide.count_micros());
}

void SlidingWindowAggregateOperator::process(int port, const RecordBatch& in,
                                             RecordBatch& out) {
  SAGE_CHECK_MSG(port == 0, "sliding window aggregate has a single input port");
  (void)out;
  for (const Record& r : in.records()) {
    auto [it, inserted] = panes_.try_emplace(r.key);
    auto& ring = it->second;
    if (ring.empty()) ring.emplace_front();
    Pane& pane = ring.front();
    if (pane.count == 0) {
      pane.min = pane.max = r.value;
      pane.oldest_event = r.event_time;
    } else {
      pane.min = std::min(pane.min, r.value);
      pane.max = std::max(pane.max, r.value);
      if (r.event_time < pane.oldest_event) pane.oldest_event = r.event_time;
    }
    pane.sum += r.value;
    ++pane.count;
  }
}

void SlidingWindowAggregateOperator::on_timer(SimTime now, RecordBatch& out) {
  (void)now;
  for (auto it = panes_.begin(); it != panes_.end();) {
    auto& ring = it->second;
    // Combine the live panes into the window aggregate.
    Pane combined;
    bool first = true;
    for (const Pane& p : ring) {
      if (p.count == 0) continue;
      if (first) {
        combined = p;
        first = false;
      } else {
        combined.sum += p.sum;
        combined.count += p.count;
        combined.min = std::min(combined.min, p.min);
        combined.max = std::max(combined.max, p.max);
        if (p.oldest_event < combined.oldest_event) combined.oldest_event = p.oldest_event;
      }
    }
    if (combined.count > 0) {
      Record r;
      r.key = it->first;
      r.event_time = combined.oldest_event;
      r.wire_size = out_size_;
      switch (fn_) {
        case AggregateFn::kSum:
          r.value = combined.sum;
          break;
        case AggregateFn::kCount:
          r.value = static_cast<double>(combined.count);
          break;
        case AggregateFn::kMean:
          r.value = combined.sum / static_cast<double>(combined.count);
          break;
        case AggregateFn::kMin:
          r.value = combined.min;
          break;
        case AggregateFn::kMax:
          r.value = combined.max;
          break;
      }
      out.add(r);
    }
    // Slide: open the next pane, expire the oldest, drop idle keys.
    ring.emplace_front();
    while (ring.size() > panes_per_window_) ring.pop_back();
    if (combined.count == 0) {
      it = panes_.erase(it);
    } else {
      ++it;
    }
  }
}

std::size_t SlidingWindowAggregateOperator::pane_count() const {
  std::size_t n = 0;
  for (const auto& [key, ring] : panes_) n += ring.size();
  return n;
}

TopKOperator::TopKOperator(std::string name, SimDuration window, int k, bool sum_values,
                           Bytes output_record_size, double cost)
    : name_(std::move(name)), window_(window), k_(k), sum_values_(sum_values),
      out_size_(output_record_size), cost_(cost) {
  SAGE_CHECK(window > SimDuration::zero());
  SAGE_CHECK(k_ >= 1);
  SAGE_CHECK(cost_ > 0.0);
}

void TopKOperator::process(int port, const RecordBatch& in, RecordBatch& out) {
  SAGE_CHECK_MSG(port == 0, "top-k has a single input port");
  (void)out;
  for (const Record& r : in.records()) {
    auto [it, inserted] = weights_.try_emplace(r.key);
    KeyWeight& kw = it->second;
    if (inserted || r.event_time < kw.oldest_event) kw.oldest_event = r.event_time;
    kw.weight += sum_values_ ? r.value : 1.0;
  }
}

void TopKOperator::on_timer(SimTime now, RecordBatch& out) {
  (void)now;
  if (weights_.empty()) return;
  std::vector<std::pair<std::uint64_t, KeyWeight>> entries(weights_.begin(),
                                                           weights_.end());
  const auto cutoff =
      std::min(static_cast<std::size_t>(k_), entries.size());
  std::partial_sort(entries.begin(),
                    entries.begin() + static_cast<std::ptrdiff_t>(cutoff), entries.end(),
                    [](const auto& a, const auto& b) {
                      if (a.second.weight != b.second.weight) {
                        return a.second.weight > b.second.weight;
                      }
                      return a.first < b.first;  // deterministic ties
                    });
  for (std::size_t i = 0; i < cutoff; ++i) {
    Record r;
    r.key = entries[i].first;
    r.value = entries[i].second.weight;
    r.event_time = entries[i].second.oldest_event;
    r.wire_size = out_size_;
    out.add(r);
  }
  weights_.clear();
}

std::shared_ptr<Operator> make_map(std::string name, MapOperator::Fn fn, double cost) {
  return std::make_shared<MapOperator>(std::move(name), std::move(fn), cost);
}

std::shared_ptr<Operator> make_filter(std::string name, FilterOperator::Pred pred,
                                      double cost) {
  return std::make_shared<FilterOperator>(std::move(name), std::move(pred), cost);
}

std::shared_ptr<Operator> make_window_aggregate(std::string name, SimDuration window,
                                                AggregateFn fn, Bytes output_record_size,
                                                double cost) {
  return std::make_shared<WindowAggregateOperator>(std::move(name), window, fn,
                                                   output_record_size, cost);
}

std::shared_ptr<Operator> make_window_join(std::string name, SimDuration window,
                                           WindowJoinOperator::Combiner combiner,
                                           Bytes output_record_size, double cost) {
  return std::make_shared<WindowJoinOperator>(std::move(name), window, std::move(combiner),
                                              output_record_size, cost);
}

std::shared_ptr<Operator> make_sliding_window_aggregate(std::string name,
                                                        SimDuration window,
                                                        SimDuration slide, AggregateFn fn,
                                                        Bytes output_record_size,
                                                        double cost) {
  return std::make_shared<SlidingWindowAggregateOperator>(
      std::move(name), window, slide, fn, output_record_size, cost);
}

std::shared_ptr<Operator> make_top_k(std::string name, SimDuration window, int k,
                                     bool sum_values, Bytes output_record_size,
                                     double cost) {
  return std::make_shared<TopKOperator>(std::move(name), window, k, sum_values,
                                        output_record_size, cost);
}

}  // namespace sage::stream
