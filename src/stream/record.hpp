// Stream data model: records and batches.
//
// The engine is batch-at-a-time: sources emit small batches on a fixed
// cadence, operators transform batches, and cross-site edges accumulate
// batches into WAN-sized transfers. Records carry their creation time so
// sinks can account true end-to-end (event-to-arrival) latency across
// however many sites and transfers a record traversed.
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.hpp"

namespace sage::stream {

struct Record {
  /// Simulated time the event was produced at its source.
  SimTime event_time;
  /// Partitioning / grouping key.
  std::uint64_t key = 0;
  /// Measurement payload.
  double value = 0.0;
  /// Serialized size of this record on the wire.
  Bytes wire_size = Bytes::of(64);
};

class RecordBatch {
 public:
  RecordBatch() = default;

  void add(Record r) {
    bytes_ += r.wire_size;
    records_.push_back(r);
  }
  void clear() {
    records_.clear();
    bytes_ = Bytes::zero();
  }
  void reserve(std::size_t n) { records_.reserve(n); }
  void append(const RecordBatch& other) {
    records_.reserve(records_.size() + other.records_.size());
    records_.insert(records_.end(), other.records_.begin(), other.records_.end());
    bytes_ += other.bytes_;
  }
  /// Move-append: steals the other batch's buffer when this one is empty,
  /// otherwise copies with a single reservation. `other` is left cleared.
  void append(RecordBatch&& other) {
    if (records_.empty()) {
      records_.swap(other.records_);
      bytes_ += other.bytes_;
    } else {
      append(static_cast<const RecordBatch&>(other));
      other.records_.clear();
    }
    other.bytes_ = Bytes::zero();
  }

  [[nodiscard]] bool empty() const { return records_.empty(); }
  [[nodiscard]] std::size_t size() const { return records_.size(); }
  [[nodiscard]] std::size_t capacity() const { return records_.capacity(); }
  [[nodiscard]] Bytes wire_size() const { return bytes_; }
  [[nodiscard]] const std::vector<Record>& records() const { return records_; }
  [[nodiscard]] std::vector<Record>& records() { return records_; }
  /// Replace the tracked wire-byte total after an in-place transform of
  /// `records()` (operators maintain the sum while they rewrite the batch).
  void set_wire_size(Bytes total) { bytes_ = total; }

 private:
  std::vector<Record> records_;
  Bytes bytes_;
};

}  // namespace sage::stream
