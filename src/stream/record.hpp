// Stream data model: records and batches.
//
// The engine is batch-at-a-time: sources emit small batches on a fixed
// cadence, operators transform batches, and cross-site edges accumulate
// batches into WAN-sized transfers. Records carry their creation time so
// sinks can account true end-to-end (event-to-arrival) latency across
// however many sites and transfers a record traversed.
//
// Batches are stored structure-of-arrays: four parallel columns
// (event_time / key / value / wire_size) instead of one std::vector of
// 32-byte structs. Stages that touch a single field — value maps, key
// filters, the sink's latency loop — walk one dense 8-byte column, which
// vectorizes and quarters the memory traffic. `Record` remains the
// record-at-a-time interchange type: `row(i)` gathers one, `add` scatters
// one, and `rows()` iterates the batch as materialized records so
// row-oriented operators and tests keep working unchanged in spirit.
//
// Layout is unconditional; what `SAGE_SOA` / `RuntimeConfig::soa_kernels`
// gates is the *execution path* of fused stages: column-wise kernels
// (default) versus the scalar row-at-a-time reference loops. Both compute
// identical values — the flag is a wall-clock knob, never a semantic one
// (CI diffs every figure bench on-vs-off for byte identity).
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/units.hpp"

namespace sage::stream {

/// Process-wide default for the vectorized column-kernel execution path:
/// `SAGE_SOA` in the environment (unset/`1` = on, `0` = off), read once.
/// `RuntimeConfig::soa_kernels` snapshots this default; standalone operator
/// calls (outside a runtime) consult it directly.
[[nodiscard]] bool soa_kernels_enabled();
/// Override the process-wide default (tests and A/B benches).
void set_soa_kernels_enabled(bool enabled);

struct Record {
  /// Simulated time the event was produced at its source.
  SimTime event_time;
  /// Partitioning / grouping key.
  std::uint64_t key = 0;
  /// Measurement payload.
  double value = 0.0;
  /// Serialized size of this record on the wire.
  Bytes wire_size = Bytes::of(64);
};

class RecordBatch {
 public:
  RecordBatch() = default;

  void add(const Record& r) { add(r.event_time, r.key, r.value, r.wire_size); }
  /// Column-wise append (sources write fields straight into the columns).
  void add(SimTime event_time, std::uint64_t key, double value, Bytes wire) {
    bytes_ += wire;
    event_time_.push_back(event_time);
    key_.push_back(key);
    value_.push_back(value);
    wire_.push_back(wire);
  }

  void clear() {
    event_time_.clear();
    key_.clear();
    value_.clear();
    wire_.clear();
    bytes_ = Bytes::zero();
  }
  void reserve(std::size_t n) {
    event_time_.reserve(n);
    key_.reserve(n);
    value_.reserve(n);
    wire_.reserve(n);
  }
  void append(const RecordBatch& other) {
    reserve(size() + other.size());
    event_time_.insert(event_time_.end(), other.event_time_.begin(),
                       other.event_time_.end());
    key_.insert(key_.end(), other.key_.begin(), other.key_.end());
    value_.insert(value_.end(), other.value_.begin(), other.value_.end());
    wire_.insert(wire_.end(), other.wire_.begin(), other.wire_.end());
    bytes_ += other.bytes_;
  }
  /// Move-append: steals the other batch's columns when this one is empty,
  /// otherwise copies with a single reservation. Either way `other` is left
  /// cleared *with its capacity intact* (the stolen-into case hands it this
  /// batch's old buffers), so the caller can recycle it into a batch pool.
  void append(RecordBatch&& other) {
    if (event_time_.empty()) {
      event_time_.swap(other.event_time_);
      key_.swap(other.key_);
      value_.swap(other.value_);
      wire_.swap(other.wire_);
      bytes_ += other.bytes_;
    } else {
      append(static_cast<const RecordBatch&>(other));
      other.event_time_.clear();
      other.key_.clear();
      other.value_.clear();
      other.wire_.clear();
    }
    other.bytes_ = Bytes::zero();
  }

  [[nodiscard]] bool empty() const { return event_time_.empty(); }
  [[nodiscard]] std::size_t size() const { return event_time_.size(); }
  [[nodiscard]] std::size_t capacity() const { return event_time_.capacity(); }
  [[nodiscard]] Bytes wire_size() const { return bytes_; }
  /// Replace the tracked wire-byte total after an in-place transform
  /// (operators maintain the column sum while they rewrite the batch).
  void set_wire_size(Bytes total) { bytes_ = total; }

  // Columns. Mutating a column directly leaves the wire-byte total to the
  // caller (finish with set_wire_size / recompute_wire_size).
  [[nodiscard]] const std::vector<SimTime>& event_times() const { return event_time_; }
  [[nodiscard]] std::vector<SimTime>& event_times() { return event_time_; }
  [[nodiscard]] const std::vector<std::uint64_t>& keys() const { return key_; }
  [[nodiscard]] std::vector<std::uint64_t>& keys() { return key_; }
  [[nodiscard]] const std::vector<double>& values() const { return value_; }
  [[nodiscard]] std::vector<double>& values() { return value_; }
  [[nodiscard]] const std::vector<Bytes>& wire_sizes() const { return wire_; }
  [[nodiscard]] std::vector<Bytes>& wire_sizes() { return wire_; }

  /// Gather row `i` into a Record.
  [[nodiscard]] Record row(std::size_t i) const {
    return Record{event_time_[i], key_[i], value_[i], wire_[i]};
  }
  /// Scatter a Record back into row `i`. Does not touch the tracked byte
  /// total — in-place transforms maintain it themselves.
  void set_row(std::size_t i, const Record& r) {
    event_time_[i] = r.event_time;
    key_[i] = r.key;
    value_[i] = r.value;
    wire_[i] = r.wire_size;
  }

  /// Drop all rows past the first `n` (filter compaction tail). The tracked
  /// byte total is the caller's to maintain.
  void truncate(std::size_t n) {
    event_time_.resize(n);
    key_.resize(n);
    value_.resize(n);
    wire_.resize(n);
  }

  /// Sum the wire column into the tracked byte total (after direct column
  /// surgery) and return it.
  Bytes recompute_wire_size() {
    Bytes total = Bytes::zero();
    for (const Bytes b : wire_) total += b;
    bytes_ = total;
    return total;
  }

  /// Stable selection-mask compaction: keep exactly the rows whose mask
  /// byte is non-zero, then refresh the tracked byte total from the
  /// surviving wire column. `keep` must have size() entries. One pass over
  /// all four columns — survivors slide forward to the write cursor (always
  /// <= the read cursor, so stable and in-place safe) and only survivors
  /// are stored, which wins at the high keep rates filters typically see.
  void compact(const std::uint8_t* keep) {
    const std::size_t n = size();
    SimTime* t = event_time_.data();
    std::uint64_t* k = key_.data();
    double* v = value_.data();
    Bytes* wire = wire_.data();
    std::size_t w = 0;
    std::int64_t total = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (keep[i]) {
        t[w] = t[i];
        k[w] = k[i];
        v[w] = v[i];
        wire[w] = wire[i];
        total += wire[i].count();
        ++w;
      }
    }
    truncate(w);
    bytes_ = Bytes::of(total);
  }

  /// Lightweight row proxy: reference-semantics view of one row that
  /// converts to (and assigns from) a materialized Record.
  class RowRef {
   public:
    RowRef(RecordBatch& b, std::size_t i) : b_(&b), i_(i) {}
    operator Record() const { return b_->row(i_); }  // NOLINT(google-explicit-constructor)
    RowRef& operator=(const Record& r) {
      b_->set_row(i_, r);
      return *this;
    }
    [[nodiscard]] SimTime event_time() const { return b_->event_time_[i_]; }
    [[nodiscard]] std::uint64_t key() const { return b_->key_[i_]; }
    [[nodiscard]] double value() const { return b_->value_[i_]; }
    [[nodiscard]] Bytes wire_size() const { return b_->wire_[i_]; }

   private:
    RecordBatch* b_;
    std::size_t i_;
  };

  /// Const forward iterator over materialized rows; `for (Record r :
  /// batch.rows())` (or `const Record&` — the temporary's lifetime extends)
  /// keeps row-oriented loops compiling against the columnar layout.
  class ConstRowIterator {
   public:
    ConstRowIterator(const RecordBatch& b, std::size_t i) : b_(&b), i_(i) {}
    [[nodiscard]] Record operator*() const { return b_->row(i_); }
    ConstRowIterator& operator++() {
      ++i_;
      return *this;
    }
    [[nodiscard]] bool operator!=(const ConstRowIterator& o) const { return i_ != o.i_; }

   private:
    const RecordBatch* b_;
    std::size_t i_;
  };

  class RowsView {
   public:
    explicit RowsView(const RecordBatch& b) : b_(&b) {}
    [[nodiscard]] ConstRowIterator begin() const { return {*b_, 0}; }
    [[nodiscard]] ConstRowIterator end() const { return {*b_, b_->size()}; }
    [[nodiscard]] Record operator[](std::size_t i) const { return b_->row(i); }
    [[nodiscard]] std::size_t size() const { return b_->size(); }

   private:
    const RecordBatch* b_;
  };

  [[nodiscard]] RowsView rows() const { return RowsView(*this); }
  [[nodiscard]] RowRef row_ref(std::size_t i) { return RowRef(*this, i); }

 private:
  std::vector<SimTime> event_time_;
  std::vector<std::uint64_t> key_;
  std::vector<double> value_;
  std::vector<Bytes> wire_;
  Bytes bytes_;
};

}  // namespace sage::stream
