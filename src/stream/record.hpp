// Stream data model: records and batches.
//
// The engine is batch-at-a-time: sources emit small batches on a fixed
// cadence, operators transform batches, and cross-site edges accumulate
// batches into WAN-sized transfers. Records carry their creation time so
// sinks can account true end-to-end (event-to-arrival) latency across
// however many sites and transfers a record traversed.
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.hpp"

namespace sage::stream {

struct Record {
  /// Simulated time the event was produced at its source.
  SimTime event_time;
  /// Partitioning / grouping key.
  std::uint64_t key = 0;
  /// Measurement payload.
  double value = 0.0;
  /// Serialized size of this record on the wire.
  Bytes wire_size = Bytes::of(64);
};

class RecordBatch {
 public:
  RecordBatch() = default;

  void add(Record r) {
    bytes_ += r.wire_size;
    records_.push_back(r);
  }
  void clear() {
    records_.clear();
    bytes_ = Bytes::zero();
  }
  void append(const RecordBatch& other) {
    records_.insert(records_.end(), other.records_.begin(), other.records_.end());
    bytes_ += other.bytes_;
  }

  [[nodiscard]] bool empty() const { return records_.empty(); }
  [[nodiscard]] std::size_t size() const { return records_.size(); }
  [[nodiscard]] Bytes wire_size() const { return bytes_; }
  [[nodiscard]] const std::vector<Record>& records() const { return records_; }
  [[nodiscard]] std::vector<Record>& records() { return records_; }

 private:
  std::vector<Record> records_;
  Bytes bytes_;
};

}  // namespace sage::stream
