// Widest-path routing over the monitored throughput map.
//
// The "shortest path" of the geo-transfer literature is really the path of
// maximum bottleneck throughput: Dijkstra with the min-throughput-so-far as
// the path metric, maximized. The region graph is tiny (6 datacenters), so
// the planner can afford to re-run this on every fresh monitoring snapshot
// — that cheapness is exactly why the system's path selection works where a
// full flow-graph formulation (needing continuous all-pairs, all-widths
// monitoring) would not.
#pragma once

#include <array>
#include <optional>
#include <vector>

#include "cloud/region.hpp"
#include "monitor/monitoring.hpp"

namespace sage::sched {

/// A region-level route. `regions` runs source .. destination inclusive;
/// `bottleneck_mbps` is the minimum estimated edge throughput along it.
struct RegionPath {
  std::vector<cloud::Region> regions;
  double bottleneck_mbps = 0.0;

  [[nodiscard]] std::size_t hop_count() const { return regions.size() - 1; }
  [[nodiscard]] std::size_t intermediate_count() const { return regions.size() - 2; }
  [[nodiscard]] bool is_direct() const { return regions.size() == 2; }
};

struct PathQueryOptions {
  /// Regions allowed as intermediates (src/dst are always allowed).
  std::array<bool, cloud::kRegionCount> usable{};
  /// Forbid the single-hop src->dst edge (used to find the *next* path when
  /// the current best is the direct link).
  bool exclude_direct_edge = false;
  /// Edges with fewer samples than this are treated as unknown/unusable.
  std::size_t min_samples = 1;

  PathQueryOptions() { usable.fill(true); }
};

/// Maximum-bottleneck path from src to dst, or nullopt when no usable route
/// exists under the options.
[[nodiscard]] std::optional<RegionPath> widest_path(const monitor::ThroughputMatrix& matrix,
                                                    cloud::Region src, cloud::Region dst,
                                                    const PathQueryOptions& options = {});

}  // namespace sage::sched
