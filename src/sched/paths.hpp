// Widest-path routing over the monitored throughput map.
//
// The "shortest path" of the geo-transfer literature is really the path of
// maximum bottleneck throughput: Dijkstra with the min-throughput-so-far as
// the path metric, maximized. Relaxation walks the sparse snapshot's
// adjacency rows, so the cost is O(V² + monitored edges) at any region
// count — cheap enough to re-run on every fresh monitoring snapshot, which
// is exactly why the system's path selection works where a full flow-graph
// formulation (needing continuous all-pairs monitoring) would not.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "cloud/region.hpp"
#include "monitor/monitoring.hpp"

namespace sage::sched {

/// Per-region boolean mask with a default value for regions never set —
/// planners at any N can exclude a handful of regions without materializing
/// N entries. fill(v) resets every region (set or not) to v.
class RegionMask {
 public:
  class Ref {
   public:
    Ref(RegionMask& m, std::size_t i) : m_(m), i_(i) {}
    Ref& operator=(bool v) {
      m_.set(i_, v);
      return *this;
    }
    operator bool() const { return static_cast<const RegionMask&>(m_).test(i_); }

   private:
    RegionMask& m_;
    std::size_t i_;
  };

  [[nodiscard]] bool test(std::size_t i) const {
    return i < bits_.size() ? bits_[i] != 0 : default_;
  }
  void set(std::size_t i, bool v) {
    if (i >= bits_.size()) bits_.resize(i + 1, default_ ? 1 : 0);
    bits_[i] = v ? 1 : 0;
  }
  void fill(bool v) {
    bits_.clear();
    default_ = v;
  }
  [[nodiscard]] Ref operator[](std::size_t i) { return Ref(*this, i); }
  [[nodiscard]] bool operator[](std::size_t i) const { return test(i); }

 private:
  std::vector<std::uint8_t> bits_;
  bool default_ = true;
};

/// A region-level route. `regions` runs source .. destination inclusive;
/// `bottleneck_mbps` is the minimum estimated edge throughput along it.
struct RegionPath {
  std::vector<cloud::Region> regions;
  double bottleneck_mbps = 0.0;

  [[nodiscard]] std::size_t hop_count() const { return regions.size() - 1; }
  [[nodiscard]] std::size_t intermediate_count() const { return regions.size() - 2; }
  [[nodiscard]] bool is_direct() const { return regions.size() == 2; }
};

struct PathQueryOptions {
  /// Regions allowed as intermediates (src/dst are always allowed).
  /// Defaults to all-usable at any region count.
  RegionMask usable;
  /// Forbid the single-hop src->dst edge (used to find the *next* path when
  /// the current best is the direct link).
  bool exclude_direct_edge = false;
  /// Edges with fewer samples than this are treated as unknown/unusable.
  std::size_t min_samples = 1;
};

/// Maximum-bottleneck path from src to dst, or nullopt when no usable route
/// exists under the options.
[[nodiscard]] std::optional<RegionPath> widest_path(const monitor::ThroughputMatrix& matrix,
                                                    cloud::Region src, cloud::Region dst,
                                                    const PathQueryOptions& options = {});

}  // namespace sage::sched
