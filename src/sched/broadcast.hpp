// Dissemination (one-to-many) planning: the widest spanning tree.
//
// Replicating a dataset from one site to several others through naive
// unicast makes the source's NIC and its WAN links carry every copy. The
// dissemination planner instead builds a spanning tree over the monitored
// throughput map — Prim's algorithm with the max-min (widest-edge) metric —
// so already-served sites re-disseminate over their own, often faster,
// regional links. Store-and-forward at each tree node keeps every transfer
// a plain site-to-site send the rest of the engine already knows how to
// optimize.
#pragma once

#include <vector>

#include "sched/paths.hpp"

namespace sage::sched {

struct BroadcastEdge {
  cloud::Region from;
  cloud::Region to;
  double mbps = 0.0;  // estimated edge throughput at planning time
};

struct BroadcastTree {
  cloud::Region root;
  /// Edges in dissemination order: an edge never appears before the edge
  /// that delivers data to its `from` site.
  std::vector<BroadcastEdge> edges;

  [[nodiscard]] bool empty() const { return edges.empty(); }
  /// Children fed directly by `site` in this tree.
  [[nodiscard]] std::vector<cloud::Region> children_of(cloud::Region site) const;
  /// The narrowest edge (the tree's predicted bottleneck).
  [[nodiscard]] double bottleneck_mbps() const;
};

/// Widest spanning tree from `root` covering every region in `targets`
/// (other regions may appear as relays only if they are targets — the tree
/// spans exactly {root} ∪ targets, since store-and-forward needs a running
/// gateway, which only member sites have). Returns an empty tree when the
/// map lacks data for some target.
[[nodiscard]] BroadcastTree widest_tree(const monitor::ThroughputMatrix& matrix,
                                        cloud::Region root,
                                        const std::vector<cloud::Region>& targets);

}  // namespace sage::sched
