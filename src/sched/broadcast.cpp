#include "sched/broadcast.hpp"

#include <algorithm>
#include <limits>

#include "common/check.hpp"

namespace sage::sched {

std::vector<cloud::Region> BroadcastTree::children_of(cloud::Region site) const {
  std::vector<cloud::Region> out;
  for (const BroadcastEdge& e : edges) {
    if (e.from == site) out.push_back(e.to);
  }
  return out;
}

double BroadcastTree::bottleneck_mbps() const {
  double b = std::numeric_limits<double>::infinity();
  for (const BroadcastEdge& e : edges) b = std::min(b, e.mbps);
  return edges.empty() ? 0.0 : b;
}

BroadcastTree widest_tree(const monitor::ThroughputMatrix& matrix, cloud::Region root,
                          const std::vector<cloud::Region>& targets) {
  BroadcastTree tree;
  tree.root = root;
  SAGE_CHECK(!targets.empty());

  // Member set: root plus targets (deduplicated, root excluded).
  std::vector<cloud::Region> pending;
  for (cloud::Region t : targets) {
    if (t == root) continue;
    if (std::find(pending.begin(), pending.end(), t) == pending.end()) {
      pending.push_back(t);
    }
  }

  // Prim with the widest-edge metric: repeatedly attach the pending site
  // reachable through the widest edge from any already-covered site. Edges
  // are appended in attachment order, which is exactly dissemination order.
  std::vector<cloud::Region> covered = {root};
  while (!pending.empty()) {
    double best = 0.0;
    std::size_t best_idx = pending.size();
    cloud::Region best_from = root;
    for (cloud::Region from : covered) {
      for (std::size_t i = 0; i < pending.size(); ++i) {
        const monitor::LinkEstimate& link = matrix.at(from, pending[i]);
        if (!link.ready()) continue;
        if (link.mean_mbps > best) {
          best = link.mean_mbps;
          best_idx = i;
          best_from = from;
        }
      }
    }
    if (best_idx == pending.size()) return BroadcastTree{root, {}};  // no data
    tree.edges.push_back(BroadcastEdge{best_from, pending[best_idx], best});
    covered.push_back(pending[best_idx]);
    pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(best_idx));
  }
  return tree;
}

}  // namespace sage::sched
