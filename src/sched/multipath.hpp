// Multi-datacenter multi-path transfer planning (the Algorithm-1
// reconstruction).
//
// Given the monitored throughput map, a node budget and the per-region VM
// inventory, the planner builds a transfer topology of one or more widened
// paths:
//
//   1. take the widest (max bottleneck throughput) path src -> dst;
//   2. widen it — add parallel nodes along it — as long as the *marginal*
//      throughput of one more node stays at or above the *normalized*
//      (per-node) throughput of the next-best alternative path;
//   3. when widening stops paying, open the next path and repeat, until
//      the node budget (derived from the user's cost/time tradeoff) or the
//      inventory is exhausted.
//
// Marginal throughput of widening is modelled as geometric saturation: the
// w-th parallel node on a path adds  bottleneck · decay^(w−1)  MB/s, which
// captures the observed sub-linear aggregate scaling (network interference
// among same-path flows), and the planned path throughput is the partial
// geometric sum. The node cost of one unit of width is one VM in each
// intermediate region (forwarders) — or one local scatter helper in the
// source region for the direct path, whose first width unit is free (the
// source VM itself sends).
#pragma once

#include <algorithm>
#include <vector>

#include "obs/obs.hpp"
#include "sched/paths.hpp"

namespace sage::sched {

struct PlannerParams {
  /// Geometric decay of each extra node's marginal throughput on one path.
  double node_gain_decay = 0.75;
  /// Hard cap on a single path's width (defensive bound).
  int max_width = 16;
};

struct PlannedPath {
  RegionPath route;
  int width = 1;
  double predicted_mbps = 0.0;
};

struct MultiPathPlan {
  std::vector<PlannedPath> paths;
  int nodes_used = 0;
  double total_mbps = 0.0;

  [[nodiscard]] bool empty() const { return paths.empty(); }
};

/// Per-region count of VMs available as forwarders / scatter helpers
/// (excluding the transfer's own source and destination VMs). Regions
/// never written read as the fill/default value (0 unless fill() was
/// called), so an Inventory works at any region count without
/// materializing N entries.
class Inventory {
 public:
  Inventory() = default;

  /// Mutable count; grows the backing store on first touch of a region.
  [[nodiscard]] int& operator[](std::size_t i) {
    if (i >= counts_.size()) counts_.resize(i + 1, default_);
    return counts_[i];
  }
  [[nodiscard]] int operator[](std::size_t i) const {
    return i < counts_.size() ? counts_[i] : default_;
  }
  /// Reset every region (materialized or not) to `v`.
  void fill(int v) {
    counts_.clear();
    default_ = v;
  }

  friend bool operator==(const Inventory& a, const Inventory& b) {
    const std::size_t n = std::max(a.counts_.size(), b.counts_.size());
    for (std::size_t i = 0; i < n; ++i) {
      if (a[i] != b[i]) return false;
    }
    return a.default_ == b.default_;
  }

 private:
  std::vector<int> counts_;
  int default_ = 0;
};

class MultiPathPlanner {
 public:
  explicit MultiPathPlanner(PlannerParams params = {});

  /// Aggregate throughput of a path at a given width (geometric sum).
  [[nodiscard]] double path_throughput(double bottleneck_mbps, int width) const;
  /// Marginal throughput of the width-th node (1-based).
  [[nodiscard]] double marginal_throughput(double bottleneck_mbps, int width) const;

  /// Build a plan using at most `node_budget` nodes from `inventory`.
  /// Returns an empty plan when no route has monitoring data.
  [[nodiscard]] MultiPathPlan plan(const monitor::ThroughputMatrix& matrix,
                                   cloud::Region src, cloud::Region dst,
                                   const Inventory& inventory, int node_budget) const;

  /// Single-path plans used by the evaluation's baseline strategies: the
  /// direct link, or the widest path, widened as far as `node_budget` and
  /// the inventory allow (relay paths pay their forwarders out of the same
  /// budget, keeping comparisons node-for-node fair).
  [[nodiscard]] MultiPathPlan direct_plan(const monitor::ThroughputMatrix& matrix,
                                          cloud::Region src, cloud::Region dst,
                                          const Inventory& inventory,
                                          int node_budget) const;
  [[nodiscard]] MultiPathPlan widest_single_path_plan(
      const monitor::ThroughputMatrix& matrix, cloud::Region src, cloud::Region dst,
      const Inventory& inventory, int node_budget) const;

  /// Structural equality of plans (same routes and widths) — used by
  /// adaptive callers to skip churn when a re-plan changes nothing.
  [[nodiscard]] static bool same_plan(const MultiPathPlan& a, const MultiPathPlan& b);

  /// Report planning decisions into `o`'s registry (sched.plan.calls,
  /// sched.paths.chosen / .rejected, sched.widen.steps). Pass null to
  /// detach. The planner schedules nothing and reads no clock, so these are
  /// pure decision counters.
  void set_obs(obs::Observability* o);

 private:
  /// Node cost of one width unit on a route, and the width cap inventory
  /// allows for it.
  [[nodiscard]] static int width_unit_cost(const RegionPath& route);
  [[nodiscard]] static int max_width_for(const RegionPath& route, const Inventory& inv);
  static void consume(const RegionPath& route, int width, Inventory& inv);

  PlannerParams params_;
  // Decision counters (null when obs is off). plan() is const; counting
  // through these pointers mutates the engine-owned registry, not the
  // planner.
  obs::Counter* obs_plan_calls_ = nullptr;
  obs::Counter* obs_paths_chosen_ = nullptr;
  obs::Counter* obs_paths_rejected_ = nullptr;
  obs::Counter* obs_widen_steps_ = nullptr;
};

/// Epoch-keyed memo in front of MultiPathPlanner::plan().
///
/// plan() is a pure function of (matrix contents, src, dst, inventory,
/// budget); the monitoring service guarantees that equal sample epochs
/// imply an entry-wise identical matrix, so (epoch, src, dst, inventory,
/// budget) is a sound memo key and a hit returns the *exact* plan a fresh
/// call would have produced — cache, don't reassociate. The cache is a
/// fixed-capacity ring (linear full-key compare, FIFO eviction): a replan
/// sweep over hundreds of transfers sharing a handful of (pair, budget)
/// combinations collapses to one planner run per combination per epoch.
///
/// Soundness caveat: only feed matrices whose epoch uniquely identifies
/// their contents (i.e. MonitoringService::snapshot() results). Two
/// hand-built matrices that both carry epoch 0 would alias.
class PlanCache {
 public:
  explicit PlanCache(std::size_t capacity = 64);

  /// Memoized planner.plan(matrix, src, dst, inventory, budget). The
  /// returned reference stays valid until this entry is evicted (at least
  /// `capacity` misses away).
  const MultiPathPlan& plan(const MultiPathPlanner& planner,
                            const monitor::ThroughputMatrix& matrix, cloud::Region src,
                            cloud::Region dst, const Inventory& inventory,
                            int node_budget);

  void clear();
  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

 private:
  struct Key {
    std::uint64_t epoch = 0;
    cloud::Region src = cloud::Region::kNorthEU;
    cloud::Region dst = cloud::Region::kNorthEU;
    Inventory inventory{};
    int node_budget = 0;

    [[nodiscard]] bool operator==(const Key&) const = default;
  };
  struct Entry {
    Key key;
    MultiPathPlan plan;
  };

  std::size_t capacity_;
  std::vector<Entry> entries_;
  std::size_t next_victim_ = 0;  // ring replacement once full
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace sage::sched
