#include "sched/multipath.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace sage::sched {

MultiPathPlanner::MultiPathPlanner(PlannerParams params) : params_(params) {
  SAGE_CHECK(params_.node_gain_decay > 0.0 && params_.node_gain_decay <= 1.0);
  SAGE_CHECK(params_.max_width >= 1);
}

void MultiPathPlanner::set_obs(obs::Observability* o) {
  if (o == nullptr) {
    obs_plan_calls_ = nullptr;
    obs_paths_chosen_ = nullptr;
    obs_paths_rejected_ = nullptr;
    obs_widen_steps_ = nullptr;
    return;
  }
  auto& m = o->metrics();
  obs_plan_calls_ = m.counter("sched.plan.calls");
  obs_paths_chosen_ = m.counter("sched.paths.chosen");
  obs_paths_rejected_ = m.counter("sched.paths.rejected");
  obs_widen_steps_ = m.counter("sched.widen.steps");
}

double MultiPathPlanner::path_throughput(double bottleneck_mbps, int width) const {
  SAGE_CHECK(width >= 0);
  const double g = params_.node_gain_decay;
  if (g >= 1.0) return bottleneck_mbps * static_cast<double>(width);
  return bottleneck_mbps * (1.0 - std::pow(g, width)) / (1.0 - g);
}

double MultiPathPlanner::marginal_throughput(double bottleneck_mbps, int width) const {
  SAGE_CHECK(width >= 1);
  return bottleneck_mbps * std::pow(params_.node_gain_decay, width - 1);
}

int MultiPathPlanner::width_unit_cost(const RegionPath& route) {
  // One sender lane in the source region plus one forwarder per
  // intermediate datacenter.
  return 1 + static_cast<int>(route.intermediate_count());
}

int MultiPathPlanner::max_width_for(const RegionPath& route, const Inventory& inv) {
  // Source-region helpers bound the number of lanes; the very first lane of
  // a plan is the source VM itself and consumes no helper, which the caller
  // accounts for by passing an inventory that still includes that slack.
  int cap = inv[cloud::region_index(route.regions.front())];
  for (std::size_t i = 1; i + 1 < route.regions.size(); ++i) {
    cap = std::min(cap, inv[cloud::region_index(route.regions[i])]);
  }
  return std::max(cap, 0);
}

void MultiPathPlanner::consume(const RegionPath& route, int width, Inventory& inv) {
  inv[cloud::region_index(route.regions.front())] -= width;
  for (std::size_t i = 1; i + 1 < route.regions.size(); ++i) {
    inv[cloud::region_index(route.regions[i])] -= width;
  }
}

MultiPathPlan MultiPathPlanner::plan(const monitor::ThroughputMatrix& matrix,
                                     cloud::Region src, cloud::Region dst,
                                     const Inventory& inventory, int node_budget) const {
  SAGE_CHECK(node_budget >= 1);
  MultiPathPlan out;
  if (obs_plan_calls_ != nullptr) obs_plan_calls_->add();

  // Working inventory. The source VM itself provides the first lane, which
  // we represent as one free helper slot in the source region.
  Inventory inv = inventory;
  ++inv[cloud::region_index(src)];
  bool direct_used = false;
  const std::size_t n = std::max({matrix.region_count(),
                                  cloud::region_index(src) + 1,
                                  cloud::region_index(dst) + 1});
  // Once a path is opened, its intermediate datacenters leave the candidate
  // pool (the algorithm widens an existing path rather than rediscovering
  // the same route as another nominally-new path).
  RegionMask excluded;
  excluded.fill(false);

  auto query = [&](bool exclude_direct) {
    PathQueryOptions o;
    o.usable.fill(false);
    for (std::size_t i = 0; i < n; ++i) {
      o.usable[i] = inv[i] > 0 && !excluded[i];
    }
    o.exclude_direct_edge = exclude_direct || direct_used;
    return widest_path(matrix, src, dst, o);
  };

  auto current = query(false);
  while (current && out.nodes_used < node_budget) {
    const RegionPath& route = *current;
    const int unit = width_unit_cost(route);
    const int inventory_cap =
        std::min(params_.max_width, max_width_for(route, inv));
    if (inventory_cap < 1 || out.nodes_used + unit > node_budget) {
      // A viable route existed but the budget/inventory could not seat it.
      if (obs_paths_rejected_ != nullptr) obs_paths_rejected_->add();
      break;
    }

    // The next-best alternative, with this route's intermediates removed —
    // its per-node throughput is the bar each additional widening node (or
    // node group, for relay paths) must clear.
    PathQueryOptions alt;
    alt.usable.fill(false);
    for (std::size_t i = 0; i < n; ++i) {
      alt.usable[i] = inv[i] > 0 && !excluded[i];
      for (std::size_t k = 1; k + 1 < route.regions.size(); ++k) {
        if (cloud::region_index(route.regions[k]) == i) alt.usable[i] = false;
      }
    }
    alt.exclude_direct_edge = route.is_direct() || direct_used;
    const auto next = widest_path(matrix, src, dst, alt);
    // The alternative is a candidate evaluated at this decision point; when
    // it exists and the loop widens the current route instead, it was
    // considered and passed over (it may still be opened next iteration).
    if (next && obs_paths_rejected_ != nullptr) obs_paths_rejected_->add();
    const double next_norm =
        next ? path_throughput(next->bottleneck_mbps, 1) /
                   static_cast<double>(width_unit_cost(*next))
             : 0.0;

    int width = 1;
    out.nodes_used += unit;
    // Compare like with like: the widening step's marginal throughput per
    // node against the alternative path's throughput per node.
    while (width < inventory_cap && out.nodes_used + unit <= node_budget &&
           marginal_throughput(route.bottleneck_mbps, width + 1) /
                   static_cast<double>(unit) >=
               next_norm) {
      ++width;
      out.nodes_used += unit;
      if (obs_widen_steps_ != nullptr) obs_widen_steps_->add();
    }

    consume(route, width, inv);
    if (route.is_direct()) direct_used = true;
    for (std::size_t k = 1; k + 1 < route.regions.size(); ++k) {
      excluded[cloud::region_index(route.regions[k])] = true;
    }
    out.paths.push_back(
        PlannedPath{route, width, path_throughput(route.bottleneck_mbps, width)});
    out.total_mbps += out.paths.back().predicted_mbps;
    if (obs_paths_chosen_ != nullptr) obs_paths_chosen_->add();

    current = query(false);
  }
  return out;
}

MultiPathPlan MultiPathPlanner::direct_plan(const monitor::ThroughputMatrix& matrix,
                                            cloud::Region src, cloud::Region dst,
                                            const Inventory& inventory,
                                            int node_budget) const {
  SAGE_CHECK(node_budget >= 1);
  MultiPathPlan out;
  RegionPath route;
  route.regions = {src, dst};
  route.bottleneck_mbps = matrix.at(src, dst).mean_mbps;
  const int cap = std::min(node_budget, inventory[cloud::region_index(src)] + 1);
  if (cap < 1) return out;
  out.paths.push_back(PlannedPath{route, cap, path_throughput(route.bottleneck_mbps, cap)});
  out.nodes_used = cap;
  out.total_mbps = out.paths.back().predicted_mbps;
  return out;
}

MultiPathPlan MultiPathPlanner::widest_single_path_plan(
    const monitor::ThroughputMatrix& matrix, cloud::Region src, cloud::Region dst,
    const Inventory& inventory, int node_budget) const {
  SAGE_CHECK(node_budget >= 1);
  MultiPathPlan out;
  Inventory inv = inventory;
  ++inv[cloud::region_index(src)];
  PathQueryOptions o;
  o.usable.fill(false);
  const std::size_t n = std::max({matrix.region_count(),
                                  cloud::region_index(src) + 1,
                                  cloud::region_index(dst) + 1});
  for (std::size_t i = 0; i < n; ++i) {
    o.usable[i] = inv[i] > 0;
  }
  const auto route = widest_path(matrix, src, dst, o);
  if (!route) return out;
  // A width unit on a relay path costs one node per hop region; the budget
  // buys however many full units fit.
  const int affordable = std::max(node_budget / width_unit_cost(*route), 1);
  const int cap = std::min(affordable, max_width_for(*route, inv));
  if (cap < 1) return out;
  out.paths.push_back(PlannedPath{*route, cap, path_throughput(route->bottleneck_mbps, cap)});
  out.nodes_used = cap * width_unit_cost(*route);
  out.total_mbps = out.paths.back().predicted_mbps;
  return out;
}

PlanCache::PlanCache(std::size_t capacity) : capacity_(capacity) {
  SAGE_CHECK(capacity_ >= 1);
  entries_.reserve(capacity_);
}

const MultiPathPlan& PlanCache::plan(const MultiPathPlanner& planner,
                                     const monitor::ThroughputMatrix& matrix,
                                     cloud::Region src, cloud::Region dst,
                                     const Inventory& inventory, int node_budget) {
  const Key key{matrix.epoch, src, dst, inventory, node_budget};
  for (Entry& e : entries_) {
    if (e.key == key) {
      ++hits_;
      return e.plan;
    }
  }
  ++misses_;
  MultiPathPlan fresh = planner.plan(matrix, src, dst, inventory, node_budget);
  if (entries_.size() < capacity_) {
    entries_.push_back(Entry{key, std::move(fresh)});
    return entries_.back().plan;
  }
  Entry& victim = entries_[next_victim_];
  next_victim_ = (next_victim_ + 1) % capacity_;
  victim.key = key;
  victim.plan = std::move(fresh);
  return victim.plan;
}

void PlanCache::clear() {
  entries_.clear();
  next_victim_ = 0;
}

bool MultiPathPlanner::same_plan(const MultiPathPlan& a, const MultiPathPlan& b) {
  if (a.paths.size() != b.paths.size()) return false;
  for (std::size_t i = 0; i < a.paths.size(); ++i) {
    if (a.paths[i].width != b.paths[i].width ||
        a.paths[i].route.regions != b.paths[i].route.regions) {
      return false;
    }
  }
  return true;
}

}  // namespace sage::sched
