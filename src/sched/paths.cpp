#include "sched/paths.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace sage::sched {

std::optional<RegionPath> widest_path(const monitor::ThroughputMatrix& matrix,
                                      cloud::Region src, cloud::Region dst,
                                      const PathQueryOptions& options) {
  SAGE_CHECK(src != dst);
  constexpr std::size_t n = cloud::kRegionCount;
  const std::size_t s = cloud::region_index(src);
  const std::size_t d = cloud::region_index(dst);

  auto edge = [&](std::size_t a, std::size_t b) -> double {
    if (a == b) return 0.0;
    if (options.exclude_direct_edge && a == s && b == d) return 0.0;
    const monitor::LinkEstimate& e = matrix.links[a][b];
    if (e.samples < options.min_samples) return 0.0;
    return std::max(e.mean_mbps, 0.0);
  };
  auto allowed = [&](std::size_t v) {
    return v == s || v == d || options.usable[v];
  };

  // Dijkstra on the max-min metric: width[v] = best bottleneck achievable
  // from s to v. O(n^2) is instantaneous at n = 6.
  std::array<double, n> width{};
  std::array<int, n> prev{};
  std::array<bool, n> done{};
  prev.fill(-1);
  width[s] = std::numeric_limits<double>::infinity();

  for (std::size_t iter = 0; iter < n; ++iter) {
    std::size_t u = n;
    double best = 0.0;
    for (std::size_t v = 0; v < n; ++v) {
      if (!done[v] && allowed(v) && width[v] > best) {
        best = width[v];
        u = v;
      }
    }
    if (u == n) break;
    done[u] = true;
    if (u == d) break;
    for (std::size_t v = 0; v < n; ++v) {
      if (done[v] || !allowed(v)) continue;
      const double w = std::min(width[u], edge(u, v));
      if (w > width[v]) {
        width[v] = w;
        prev[v] = static_cast<int>(u);
      }
    }
  }

  if (width[d] <= 0.0 || !std::isfinite(width[d])) return std::nullopt;

  RegionPath path;
  path.bottleneck_mbps = width[d];
  std::vector<std::size_t> rev;
  for (int v = static_cast<int>(d); v != -1; v = prev[static_cast<std::size_t>(v)]) {
    rev.push_back(static_cast<std::size_t>(v));
    if (static_cast<std::size_t>(v) == s) break;
  }
  SAGE_CHECK(rev.back() == s);
  for (auto it = rev.rbegin(); it != rev.rend(); ++it) {
    path.regions.push_back(cloud::kAllRegions[*it]);
  }
  return path;
}

}  // namespace sage::sched
