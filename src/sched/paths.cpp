#include "sched/paths.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.hpp"

namespace sage::sched {

std::optional<RegionPath> widest_path(const monitor::ThroughputMatrix& matrix,
                                      cloud::Region src, cloud::Region dst,
                                      const PathQueryOptions& options) {
  SAGE_CHECK(src != dst);
  const std::size_t s = cloud::region_index(src);
  const std::size_t d = cloud::region_index(dst);
  const std::size_t n = std::max({matrix.region_count(), s + 1, d + 1});

  auto allowed = [&](std::size_t v) {
    return v == s || v == d || options.usable[v];
  };

  // Dijkstra on the max-min metric: width[v] = best bottleneck achievable
  // from s to v. Node selection is a linear scan (index order, so ties are
  // deterministic); relaxation walks the snapshot's sparse adjacency row —
  // absent pairs have zero width and can never improve a path, exactly as
  // in the historical dense scan.
  std::vector<double> width(n, 0.0);
  std::vector<int> prev(n, -1);
  std::vector<char> done(n, 0);
  width[s] = std::numeric_limits<double>::infinity();

  const auto& entries = matrix.entries();
  for (std::size_t iter = 0; iter < n; ++iter) {
    std::size_t u = n;
    double best = 0.0;
    for (std::size_t v = 0; v < n; ++v) {
      if (!done[v] && allowed(v) && width[v] > best) {
        best = width[v];
        u = v;
      }
    }
    if (u == n) break;
    done[u] = true;
    if (u == d) break;
    for (std::int32_t id : matrix.row(cloud::make_region(u))) {
      const monitor::ThroughputMatrix::Entry& e = entries[static_cast<std::size_t>(id)];
      const std::size_t v = cloud::region_index(e.dst);
      if (v == u || done[v] || !allowed(v)) continue;
      if (options.exclude_direct_edge && u == s && v == d) continue;
      if (e.est.samples < options.min_samples) continue;
      const double w = std::min(width[u], std::max(e.est.mean_mbps, 0.0));
      if (w > width[v]) {
        width[v] = w;
        prev[v] = static_cast<int>(u);
      }
    }
  }

  if (width[d] <= 0.0 || !std::isfinite(width[d])) return std::nullopt;

  RegionPath path;
  path.bottleneck_mbps = width[d];
  std::vector<std::size_t> rev;
  for (int v = static_cast<int>(d); v != -1; v = prev[static_cast<std::size_t>(v)]) {
    rev.push_back(static_cast<std::size_t>(v));
    if (static_cast<std::size_t>(v) == s) break;
  }
  SAGE_CHECK(rev.back() == s);
  for (auto it = rev.rbegin(); it != rev.rend(); ++it) {
    path.regions.push_back(cloud::make_region(*it));
  }
  return path;
}

}  // namespace sage::sched
