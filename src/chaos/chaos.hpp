// Deterministic fault injection for the simulated multi-site cloud.
//
// A FaultPlan is a typed, time-sorted schedule of environment faults —
// link-down/up, region outages, latency spikes, capacity squeezes, loss
// bursts, WAN partitions, correlated incident storms and estimator
// poisoning — and a ChaosController executes it by posting ordinary events
// through the SimEngine, so faults serialize deterministically with normal
// traffic: same plan + same seed, bit-identical run, on the plain engine
// and on the region-sharded ShardedSimEngine alike (each lane applies the
// plan to its own fabric through the lane's event queue, so S in {1,2,4}
// stays byte-identical).
//
// Every hook is gated twice: the process-wide SAGE_CHAOS environment
// default (off unless "1"), snapshotted by stream::RuntimeConfig::chaos,
// and the controller's own `enabled` flag. A disabled controller schedules
// nothing and touches nothing — chaos-off runs reproduce healthy output
// byte for byte, which the differential tests and the CI bench diff pin.
//
// The fabric-side mutations live in cloud::Fabric (set_link_chaos_scale /
// set_link_chaos_latency / chaos_drop_pair_flows) and follow the
// set_node_failed pattern: advance flows at old rates, mutate, abort
// doomed flows in id order, re-settle incrementally. Estimator poisoning
// goes through MonitoringService::inject_sample — the normal ingestion
// path, so history, sample hooks and the monotone sample epoch all advance
// exactly as for a real probe.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cloud/fabric.hpp"
#include "cloud/topology.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "simcore/engine.hpp"
#include "simcore/sharded_engine.hpp"

namespace sage::monitor {
class MonitoringService;
}  // namespace sage::monitor

namespace sage::chaos {

/// Process-wide default for the fault-injection layer: `SAGE_CHAOS` in the
/// environment (on only when set to "1"), read once. Benches and tests
/// consult it (usually via stream::RuntimeConfig::chaos) to decide whether
/// a world gets a ChaosController; nothing else reads it, so the off state
/// is a byte-identical no-op by construction.
[[nodiscard]] bool chaos_enabled();
/// Override the process-wide default (tests and A/B benches).
void set_chaos_enabled(bool enabled);

enum class FaultKind : std::uint8_t {
  kLinkDown,         // capacity of the directed pair (a, b) -> 0
  kLinkUp,           // restore (a, b) to scale 1.0
  kRegionOutage,     // fail every fabric node in region a
  kRegionRecover,    // un-fail every failed node in region a
  kLatencySpike,     // add `extra` setup latency to new flows on (a, b)
  kCapacitySqueeze,  // scale (a, b) capacity by `magnitude` in (0, 1)
  kLossBurst,        // abort up to `count` in-flight flows on (a, b)
  kPartition,        // cut every declared WAN link crossing `group` boundary
  kHeal,             // undo kPartition for the same `group`
  kPoisonEstimator,  // inject `count` garbage samples of `magnitude` MB/s
};

[[nodiscard]] const char* to_string(FaultKind kind);

struct FaultEvent {
  SimTime at;
  FaultKind kind = FaultKind::kLinkDown;
  cloud::Region a = cloud::Region::kNorthEU;  // primary region / link source
  cloud::Region b = cloud::Region::kNorthEU;  // link destination (pair faults)
  /// Capacity scale (kCapacitySqueeze) or poison sample MB/s (kPoison...).
  double magnitude = 0.0;
  /// Extra one-way setup latency (kLatencySpike).
  SimDuration extra = SimDuration::zero();
  /// > 0 schedules the matching recovery `duration` after application
  /// (link up / region recover / heal / spike+squeeze revert).
  SimDuration duration = SimDuration::zero();
  /// Loss-burst flow budget / poison sample count.
  int count = 0;
  /// Link-down & partition: abort crossing flows (kFailed callbacks fire,
  /// retransmission paths engage) instead of stranding them at zero rate.
  bool abort_flows = false;
  /// Partition island (kPartition / kHeal): links with exactly one endpoint
  /// in the group are cut / restored.
  std::vector<cloud::Region> group;

  /// One-line human form ("t=12.500s link_down NEU->NUS dur=30s abort") —
  /// the fuzz loop prints these so any failure reproduces from its log.
  [[nodiscard]] std::string describe() const;
};

/// A typed, time-ordered fault schedule. Builder methods append and return
/// *this so scenarios read as scripts; `sort()` (called by the controller)
/// makes application order (time, then insertion order) explicit.
struct FaultPlan {
  std::vector<FaultEvent> events;

  FaultPlan& add(FaultEvent e);
  FaultPlan& link_down(SimTime at, cloud::Region a, cloud::Region b,
                       SimDuration duration = SimDuration::zero(),
                       bool abort_flows = false);
  FaultPlan& link_up(SimTime at, cloud::Region a, cloud::Region b);
  FaultPlan& region_outage(SimTime at, cloud::Region r,
                           SimDuration duration = SimDuration::zero());
  FaultPlan& region_recover(SimTime at, cloud::Region r);
  FaultPlan& latency_spike(SimTime at, cloud::Region a, cloud::Region b,
                           SimDuration extra,
                           SimDuration duration = SimDuration::zero());
  FaultPlan& capacity_squeeze(SimTime at, cloud::Region a, cloud::Region b,
                              double scale,
                              SimDuration duration = SimDuration::zero());
  FaultPlan& loss_burst(SimTime at, cloud::Region a, cloud::Region b, int flows);
  FaultPlan& partition(SimTime at, std::vector<cloud::Region> group,
                       SimDuration duration = SimDuration::zero(),
                       bool abort_flows = false);
  FaultPlan& heal(SimTime at, std::vector<cloud::Region> group);
  FaultPlan& poison_estimator(SimTime at, cloud::Region a, cloud::Region b,
                              double mbps, int samples = 1);

  [[nodiscard]] bool empty() const { return events.empty(); }
  [[nodiscard]] std::size_t size() const { return events.size(); }
  /// Stable sort by time (insertion order breaks ties).
  void sort();
  /// Multi-line human form; the fuzz harness prints it on failure so the
  /// offending schedule reproduces from the seed alone.
  [[nodiscard]] std::string describe() const;

  /// Correlated incident storms via a seeded hazard process: storm arrivals
  /// are Poisson at `storms_per_day`; each storm picks an epicenter region
  /// and knocks a correlated set of its declared WAN links down (or deeply
  /// squeezes them) for exponentially distributed, storm-shared durations.
  /// Deterministic in (seed, topology, window).
  static FaultPlan incident_storm(std::uint64_t seed, const cloud::Topology& topo,
                                  SimTime start, SimDuration horizon,
                                  double storms_per_day,
                                  SimDuration mean_duration = SimDuration::minutes(5));

  /// Randomized schedule over every fault kind for the fuzz loop: `events`
  /// faults uniform over [start, start+horizon) on the topology's declared
  /// WAN pairs. Deterministic in its arguments.
  static FaultPlan random(std::uint64_t seed, const cloud::Topology& topo,
                          SimTime start, SimDuration horizon, int events);
};

/// The components one lane's faults apply to. Any pointer may be null —
/// events needing an absent target are counted as skipped, not errors
/// (e.g. monitoring-free fabric worlds ignore poisoning events).
struct ChaosTargets {
  cloud::Fabric* fabric = nullptr;
  monitor::MonitoringService* monitoring = nullptr;
};

/// Executes a FaultPlan against one world. Construction schedules every
/// event through the engine (when enabled); auto-recoveries (`duration`)
/// are scheduled at application time on the same lane. The controller must
/// outlive the engine's run.
class ChaosController {
 public:
  /// Plain single-engine world.
  ChaosController(sim::SimEngine& engine, ChaosTargets targets, FaultPlan plan,
                  bool enabled = chaos_enabled());
  /// Region-sharded world: one ChaosTargets per lane (lane_count entries).
  /// Every event is posted to every lane that has a fabric, through the
  /// sharded engine's own post path, at the same absolute sim time — each
  /// lane mutates only its own fabric inside its own event context, so any
  /// shard count replays the identical fault sequence.
  ChaosController(sim::ShardedSimEngine& engine, std::vector<ChaosTargets> lanes,
                  FaultPlan plan, bool enabled = chaos_enabled());
  ChaosController(const ChaosController&) = delete;
  ChaosController& operator=(const ChaosController&) = delete;

  [[nodiscard]] bool enabled() const { return enabled_; }
  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

  /// Fault applications / scheduled recoveries executed so far, summed over
  /// lanes (read when the engine is quiescent).
  [[nodiscard]] std::uint64_t faults_applied() const;
  [[nodiscard]] std::uint64_t reverts_applied() const;
  /// Events that found no live target (null fabric/monitoring, unmonitored
  /// pair, undeclared link).
  [[nodiscard]] std::uint64_t faults_skipped() const;

 private:
  // Lanes run concurrently inside a sharded window; counters are per-lane
  // and cache-line padded, summed only when quiescent.
  struct alignas(64) LaneState {
    ChaosTargets targets;
    std::uint64_t applied = 0;
    std::uint64_t reverted = 0;
    std::uint64_t skipped = 0;
    /// Nodes failed by the most recent outage per region index (restored by
    /// the matching recover).
    std::vector<std::vector<cloud::NodeId>> outage_nodes;
  };

  void arm();
  void fire(std::size_t event_index, std::size_t lane);
  void apply(const FaultEvent& e, LaneState& lane, bool is_revert);
  /// Schedule `fn` on `lane`'s engine after `delay` (plain or sharded).
  void schedule_on_lane(std::size_t lane, SimDuration delay,
                        sim::SimEngine::Callback fn);
  [[nodiscard]] sim::SimEngine& lane_engine(std::size_t lane);

  void apply_pair_scale(const FaultEvent& e, LaneState& lane, double scale);
  void apply_partition(const FaultEvent& e, LaneState& lane, bool cut);
  void apply_outage(const FaultEvent& e, LaneState& lane, bool fail);

  sim::SimEngine* engine_ = nullptr;          // plain mode
  sim::ShardedSimEngine* sharded_ = nullptr;  // sharded mode
  FaultPlan plan_;
  bool enabled_ = false;
  std::vector<std::unique_ptr<LaneState>> lanes_;
};

}  // namespace sage::chaos
