#include "chaos/chaos.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "common/check.hpp"
#include "monitor/monitoring.hpp"

namespace sage::chaos {

namespace {

bool env_chaos_default() {
  const char* env = std::getenv("SAGE_CHAOS");
  // Off unless explicitly "1": chaos is an opt-in stressor, and the default
  // must reproduce every figure bench byte for byte.
  return env != nullptr && std::strcmp(env, "1") == 0;
}

bool g_chaos = env_chaos_default();

std::string time_label(SimTime t) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "t=%.3fs", (t - SimTime::epoch()).to_seconds());
  return buf;
}

}  // namespace

bool chaos_enabled() { return g_chaos; }

void set_chaos_enabled(bool enabled) { g_chaos = enabled; }

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kLinkDown: return "link_down";
    case FaultKind::kLinkUp: return "link_up";
    case FaultKind::kRegionOutage: return "region_outage";
    case FaultKind::kRegionRecover: return "region_recover";
    case FaultKind::kLatencySpike: return "latency_spike";
    case FaultKind::kCapacitySqueeze: return "capacity_squeeze";
    case FaultKind::kLossBurst: return "loss_burst";
    case FaultKind::kPartition: return "partition";
    case FaultKind::kHeal: return "heal";
    case FaultKind::kPoisonEstimator: return "poison_estimator";
  }
  return "?";
}

std::string FaultEvent::describe() const {
  std::string out = time_label(at);
  out += ' ';
  out += to_string(kind);
  switch (kind) {
    case FaultKind::kLinkDown:
    case FaultKind::kLinkUp:
    case FaultKind::kLatencySpike:
    case FaultKind::kCapacitySqueeze:
    case FaultKind::kLossBurst:
    case FaultKind::kPoisonEstimator:
      out += ' ';
      out += cloud::region_code(a);
      out += "->";
      out += cloud::region_code(b);
      break;
    case FaultKind::kRegionOutage:
    case FaultKind::kRegionRecover:
      out += ' ';
      out += cloud::region_code(a);
      break;
    case FaultKind::kPartition:
    case FaultKind::kHeal:
      out += " {";
      for (std::size_t i = 0; i < group.size(); ++i) {
        if (i != 0) out += ',';
        out += cloud::region_code(group[i]);
      }
      out += '}';
      break;
  }
  char buf[64];
  if (kind == FaultKind::kCapacitySqueeze || kind == FaultKind::kPoisonEstimator) {
    std::snprintf(buf, sizeof(buf), " mag=%.3f", magnitude);
    out += buf;
  }
  if (extra > SimDuration::zero()) {
    std::snprintf(buf, sizeof(buf), " extra=%.3fs", extra.to_seconds());
    out += buf;
  }
  if (duration > SimDuration::zero()) {
    std::snprintf(buf, sizeof(buf), " dur=%.3fs", duration.to_seconds());
    out += buf;
  }
  if (count > 0) {
    std::snprintf(buf, sizeof(buf), " n=%d", count);
    out += buf;
  }
  if (abort_flows) out += " abort";
  return out;
}

FaultPlan& FaultPlan::add(FaultEvent e) {
  events.push_back(std::move(e));
  return *this;
}

FaultPlan& FaultPlan::link_down(SimTime at, cloud::Region a, cloud::Region b,
                                SimDuration duration, bool abort_flows) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kLinkDown;
  e.a = a;
  e.b = b;
  e.duration = duration;
  e.abort_flows = abort_flows;
  return add(std::move(e));
}

FaultPlan& FaultPlan::link_up(SimTime at, cloud::Region a, cloud::Region b) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kLinkUp;
  e.a = a;
  e.b = b;
  return add(std::move(e));
}

FaultPlan& FaultPlan::region_outage(SimTime at, cloud::Region r, SimDuration duration) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kRegionOutage;
  e.a = r;
  e.duration = duration;
  return add(std::move(e));
}

FaultPlan& FaultPlan::region_recover(SimTime at, cloud::Region r) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kRegionRecover;
  e.a = r;
  return add(std::move(e));
}

FaultPlan& FaultPlan::latency_spike(SimTime at, cloud::Region a, cloud::Region b,
                                    SimDuration extra, SimDuration duration) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kLatencySpike;
  e.a = a;
  e.b = b;
  e.extra = extra;
  e.duration = duration;
  return add(std::move(e));
}

FaultPlan& FaultPlan::capacity_squeeze(SimTime at, cloud::Region a, cloud::Region b,
                                       double scale, SimDuration duration) {
  SAGE_CHECK(scale >= 0.0);
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kCapacitySqueeze;
  e.a = a;
  e.b = b;
  e.magnitude = scale;
  e.duration = duration;
  return add(std::move(e));
}

FaultPlan& FaultPlan::loss_burst(SimTime at, cloud::Region a, cloud::Region b,
                                 int flows) {
  SAGE_CHECK(flows > 0);
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kLossBurst;
  e.a = a;
  e.b = b;
  e.count = flows;
  return add(std::move(e));
}

FaultPlan& FaultPlan::partition(SimTime at, std::vector<cloud::Region> group,
                                SimDuration duration, bool abort_flows) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kPartition;
  e.duration = duration;
  e.abort_flows = abort_flows;
  e.group = std::move(group);
  return add(std::move(e));
}

FaultPlan& FaultPlan::heal(SimTime at, std::vector<cloud::Region> group) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kHeal;
  e.group = std::move(group);
  return add(std::move(e));
}

FaultPlan& FaultPlan::poison_estimator(SimTime at, cloud::Region a, cloud::Region b,
                                       double mbps, int samples) {
  SAGE_CHECK(samples > 0);
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kPoisonEstimator;
  e.a = a;
  e.b = b;
  e.magnitude = mbps;
  e.count = samples;
  return add(std::move(e));
}

void FaultPlan::sort() {
  std::stable_sort(events.begin(), events.end(),
                   [](const FaultEvent& x, const FaultEvent& y) { return x.at < y.at; });
}

std::string FaultPlan::describe() const {
  std::string out;
  for (const FaultEvent& e : events) {
    out += e.describe();
    out += '\n';
  }
  return out;
}

FaultPlan FaultPlan::incident_storm(std::uint64_t seed, const cloud::Topology& topo,
                                    SimTime start, SimDuration horizon,
                                    double storms_per_day, SimDuration mean_duration) {
  SAGE_CHECK(storms_per_day > 0.0 && horizon > SimDuration::zero());
  FaultPlan plan;
  Rng rng(seed ^ 0x5706b1u);
  const double rate_per_sec = storms_per_day / 86400.0;
  double t = rng.exponential(rate_per_sec);
  const double end_s = horizon.to_seconds();
  while (t < end_s) {
    const SimTime when = start + SimDuration::seconds(t);
    // Epicenter: one region; the storm hits a correlated set of its declared
    // WAN links (both directions), sharing one storm-wide duration draw —
    // the "regional incident" the replan sweep must route around.
    const auto epicenter = cloud::make_region(static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(topo.region_count()) - 1)));
    const SimDuration dur = SimDuration::seconds(
        std::max(1.0, rng.exponential(1.0 / std::max(1.0, mean_duration.to_seconds()))));
    for (const cloud::LinkSlot slot : topo.out_edges(epicenter)) {
      const cloud::Topology::Edge& e = topo.edges()[static_cast<std::size_t>(slot)];
      if (e.src == e.dst) continue;  // intra-DC links ride out storms
      if (!rng.chance(0.75)) continue;
      if (rng.chance(0.4)) {
        plan.link_down(when, e.src, e.dst, dur, /*abort_flows=*/rng.chance(0.5));
      } else {
        plan.capacity_squeeze(when, e.src, e.dst, rng.uniform(0.05, 0.4), dur);
      }
    }
    t += rng.exponential(rate_per_sec);
  }
  plan.sort();
  return plan;
}

FaultPlan FaultPlan::random(std::uint64_t seed, const cloud::Topology& topo,
                            SimTime start, SimDuration horizon, int events) {
  SAGE_CHECK(events >= 0);
  FaultPlan plan;
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 0xc8a05);
  std::vector<std::pair<cloud::Region, cloud::Region>> pairs;
  for (const cloud::Topology::Edge& e : topo.edges()) {
    if (e.src != e.dst) pairs.emplace_back(e.src, e.dst);
  }
  if (pairs.empty()) return plan;
  const auto pick_pair = [&] {
    return pairs[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(pairs.size()) - 1))];
  };
  const auto pick_region = [&] {
    return cloud::make_region(static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(topo.region_count()) - 1)));
  };
  for (int i = 0; i < events; ++i) {
    const SimTime at = start + SimDuration::seconds(rng.uniform(0.0, horizon.to_seconds()));
    const SimDuration dur =
        SimDuration::seconds(rng.uniform(0.05, horizon.to_seconds() * 0.5));
    const double kind = rng.uniform(0.0, 1.0);
    if (kind < 0.22) {
      const auto [a, b] = pick_pair();
      plan.link_down(at, a, b, dur, /*abort_flows=*/rng.chance(0.5));
    } else if (kind < 0.42) {
      const auto [a, b] = pick_pair();
      plan.capacity_squeeze(at, a, b, rng.uniform(0.02, 0.8), dur);
    } else if (kind < 0.55) {
      const auto [a, b] = pick_pair();
      plan.latency_spike(at, a, b, SimDuration::millis(rng.uniform(20.0, 800.0)), dur);
    } else if (kind < 0.68) {
      const auto [a, b] = pick_pair();
      plan.loss_burst(at, a, b, static_cast<int>(rng.uniform_int(1, 6)));
    } else if (kind < 0.8) {
      plan.region_outage(at, pick_region(), dur);
    } else if (kind < 0.9) {
      // Island = a contiguous prefix of the region index space (matches the
      // contiguous shard blocks, so sharded runs cut the same links).
      const std::size_t cut = static_cast<std::size_t>(
          rng.uniform_int(1, std::max<std::int64_t>(
                                 1, static_cast<std::int64_t>(topo.region_count()) - 1)));
      std::vector<cloud::Region> group;
      group.reserve(cut);
      for (std::size_t r = 0; r < cut; ++r) group.push_back(cloud::make_region(r));
      plan.partition(at, std::move(group), dur, /*abort_flows=*/rng.chance(0.5));
    } else {
      const auto [a, b] = pick_pair();
      // Garbage spans stale-zero to absurdly optimistic.
      const double mbps = rng.chance(0.5) ? 0.0 : rng.uniform(500.0, 5000.0);
      plan.poison_estimator(at, a, b, mbps, static_cast<int>(rng.uniform_int(1, 4)));
    }
  }
  plan.sort();
  return plan;
}

// -- ChaosController ---------------------------------------------------------

ChaosController::ChaosController(sim::SimEngine& engine, ChaosTargets targets,
                                 FaultPlan plan, bool enabled)
    : engine_(&engine), plan_(std::move(plan)), enabled_(enabled) {
  lanes_.push_back(std::make_unique<LaneState>());
  lanes_.back()->targets = targets;
  arm();
}

ChaosController::ChaosController(sim::ShardedSimEngine& engine,
                                 std::vector<ChaosTargets> lanes, FaultPlan plan,
                                 bool enabled)
    : sharded_(&engine), plan_(std::move(plan)), enabled_(enabled) {
  SAGE_CHECK_MSG(lanes.size() == engine.lane_count(),
                 "chaos: one ChaosTargets per engine lane required");
  for (ChaosTargets& t : lanes) {
    lanes_.push_back(std::make_unique<LaneState>());
    lanes_.back()->targets = t;
  }
  arm();
}

std::uint64_t ChaosController::faults_applied() const {
  std::uint64_t n = 0;
  for (const auto& l : lanes_) n += l->applied;
  return n;
}

std::uint64_t ChaosController::reverts_applied() const {
  std::uint64_t n = 0;
  for (const auto& l : lanes_) n += l->reverted;
  return n;
}

std::uint64_t ChaosController::faults_skipped() const {
  std::uint64_t n = 0;
  for (const auto& l : lanes_) n += l->skipped;
  return n;
}

sim::SimEngine& ChaosController::lane_engine(std::size_t lane) {
  return sharded_ != nullptr ? sharded_->shard(lane) : *engine_;
}

void ChaosController::schedule_on_lane(std::size_t lane, SimDuration delay,
                                       sim::SimEngine::Callback fn) {
  if (delay.is_negative()) delay = SimDuration::zero();
  if (sharded_ != nullptr) {
    // Same-lane post: the sharded engine's own scheduling path. Faults are
    // lane-local (each lane owns its fabric); anything a fault provokes
    // across lanes rides the normal mailbox merge, so every shard count
    // replays the identical sequence.
    sharded_->post(lane, lane, delay, std::move(fn));
    return;
  }
  engine_->schedule_after(delay, std::move(fn));
}

void ChaosController::arm() {
  if (!enabled_ || plan_.empty()) return;
  plan_.sort();
  for (std::size_t idx = 0; idx < plan_.events.size(); ++idx) {
    for (std::size_t lane = 0; lane < lanes_.size(); ++lane) {
      const SimTime now = lane_engine(lane).now();
      const SimDuration delay = plan_.events[idx].at - now;
      schedule_on_lane(lane, delay, [this, idx, lane] { fire(idx, lane); });
    }
  }
}

void ChaosController::fire(std::size_t event_index, std::size_t lane) {
  const FaultEvent& e = plan_.events[event_index];
  LaneState& state = *lanes_[lane];
  apply(e, state, /*is_revert=*/false);
  if (e.duration <= SimDuration::zero()) return;
  // Auto-recovery: the inverse event, scheduled on the same lane at
  // application time (never cross-lane, so no lookahead constraint).
  FaultEvent revert = e;
  revert.at = e.at + e.duration;
  revert.duration = SimDuration::zero();
  revert.abort_flows = false;
  bool has_revert = true;
  switch (e.kind) {
    case FaultKind::kLinkDown: revert.kind = FaultKind::kLinkUp; break;
    case FaultKind::kCapacitySqueeze: revert.magnitude = 1.0; break;
    case FaultKind::kLatencySpike: revert.extra = SimDuration::zero(); break;
    case FaultKind::kRegionOutage: revert.kind = FaultKind::kRegionRecover; break;
    case FaultKind::kPartition: revert.kind = FaultKind::kHeal; break;
    default: has_revert = false; break;
  }
  if (!has_revert) return;
  schedule_on_lane(lane, e.duration, [this, lane, revert = std::move(revert)] {
    apply(revert, *lanes_[lane], /*is_revert=*/true);
  });
}

void ChaosController::apply_pair_scale(const FaultEvent& e, LaneState& lane,
                                       double scale) {
  cloud::Fabric* fabric = lane.targets.fabric;
  if (fabric == nullptr || !fabric->topology().has_link(e.a, e.b)) {
    ++lane.skipped;
    return;
  }
  fabric->set_link_chaos_scale(e.a, e.b, scale, e.abort_flows);
}

void ChaosController::apply_partition(const FaultEvent& e, LaneState& lane, bool cut) {
  cloud::Fabric* fabric = lane.targets.fabric;
  if (fabric == nullptr || e.group.empty()) {
    ++lane.skipped;
    return;
  }
  const cloud::Topology& topo = fabric->topology();
  std::vector<bool> island(topo.region_count(), false);
  for (const cloud::Region r : e.group) {
    const std::size_t i = cloud::region_index(r);
    if (i < island.size()) island[i] = true;
  }
  // Edge-id order: deterministic and identical on every lane.
  for (const cloud::Topology::Edge& edge : topo.edges()) {
    if (edge.src == edge.dst) continue;
    if (island[cloud::region_index(edge.src)] == island[cloud::region_index(edge.dst)]) {
      continue;
    }
    fabric->set_link_chaos_scale(edge.src, edge.dst, cut ? 0.0 : 1.0,
                                 cut && e.abort_flows);
  }
}

void ChaosController::apply_outage(const FaultEvent& e, LaneState& lane, bool fail) {
  cloud::Fabric* fabric = lane.targets.fabric;
  if (fabric == nullptr) {
    ++lane.skipped;
    return;
  }
  const std::size_t region = cloud::region_index(e.a);
  if (lane.outage_nodes.size() <= region) lane.outage_nodes.resize(region + 1);
  std::vector<cloud::NodeId>& failed = lane.outage_nodes[region];
  if (fail) {
    // Fail every currently-healthy node of the region, node-id order.
    for (cloud::NodeId n = 0; n < fabric->node_count(); ++n) {
      if (fabric->node_region(n) != e.a || fabric->node_failed(n)) continue;
      fabric->set_node_failed(n, true);
      failed.push_back(n);
    }
  } else {
    for (const cloud::NodeId n : failed) fabric->set_node_failed(n, false);
    failed.clear();
  }
}

void ChaosController::apply(const FaultEvent& e, LaneState& lane, bool is_revert) {
  switch (e.kind) {
    case FaultKind::kLinkDown:
      apply_pair_scale(e, lane, 0.0);
      break;
    case FaultKind::kLinkUp:
      apply_pair_scale(e, lane, 1.0);
      break;
    case FaultKind::kCapacitySqueeze:
      apply_pair_scale(e, lane, std::max(e.magnitude, 0.0));
      break;
    case FaultKind::kLatencySpike: {
      cloud::Fabric* fabric = lane.targets.fabric;
      if (fabric == nullptr || !fabric->topology().has_link(e.a, e.b)) {
        ++lane.skipped;
        break;
      }
      fabric->set_link_chaos_latency(e.a, e.b, e.extra);
      break;
    }
    case FaultKind::kLossBurst: {
      cloud::Fabric* fabric = lane.targets.fabric;
      if (fabric == nullptr || !fabric->topology().has_link(e.a, e.b)) {
        ++lane.skipped;
        break;
      }
      fabric->chaos_drop_pair_flows(e.a, e.b, static_cast<std::size_t>(e.count));
      break;
    }
    case FaultKind::kRegionOutage:
      apply_outage(e, lane, /*fail=*/true);
      break;
    case FaultKind::kRegionRecover:
      apply_outage(e, lane, /*fail=*/false);
      break;
    case FaultKind::kPartition:
      apply_partition(e, lane, /*cut=*/true);
      break;
    case FaultKind::kHeal:
      apply_partition(e, lane, /*cut=*/false);
      break;
    case FaultKind::kPoisonEstimator: {
      monitor::MonitoringService* mon = lane.targets.monitoring;
      bool any = false;
      for (int i = 0; mon != nullptr && i < e.count; ++i) {
        any = mon->inject_sample(e.a, e.b, e.magnitude) || any;
      }
      if (!any) {
        ++lane.skipped;
        return;
      }
      break;
    }
  }
  if (is_revert) {
    ++lane.reverted;
  } else {
    ++lane.applied;
  }
}

}  // namespace sage::chaos
