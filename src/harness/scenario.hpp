// Deterministic parallel scenario execution.
//
// The experiment harness sweeps independent parameter grids — every grid
// point builds its own World (engine + provider + RNG, nothing shared) and
// runs it to completion. ScenarioRunner widens that across pool threads
// while keeping the observable output bit-identical to the sequential run:
//
//   * tasks are described up front (seed and parameters live in the task
//     value, exactly as the sequential code computed them — never derived
//     from execution order, thread id, or wall clock);
//   * results land in an index-ordered vector, so everything printed or
//     aggregated afterwards sees the sequential order no matter how the
//     pool interleaved execution;
//   * with 1 thread the sweep runs inline on the caller — no pool, no
//     synchronisation — restoring the pre-harness behaviour exactly.
//
// Thread count comes from SAGE_BENCH_THREADS (default: hardware
// concurrency). Task exceptions are captured per slot and rethrown in
// index order after the sweep drains, so a failing grid point reports the
// same error the sequential loop would have hit first. Per-task wall-clock
// is recorded and can be emitted as a machine-readable JSON record
// (--json; see BENCH_PR3.json).
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <memory>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/thread_pool.hpp"

namespace sage::obs {
class MetricsRegistry;
}  // namespace sage::obs

namespace sage::harness {

/// Thread count for scenario sweeps: SAGE_BENCH_THREADS when set to a
/// positive integer, otherwise std::thread::hardware_concurrency().
int env_threads();

/// Intra-scenario shard count for the region-sharded engine:
/// SAGE_PAR_SHARDS when set to a positive integer, otherwise 0 (sharded
/// execution off — every existing figure bench runs the plain engine and
/// stays byte-identical). Benches also accept --shards, which wins over
/// the environment (see bench_util.hpp).
int env_shards();

/// Registry collecting observability metrics for the grid point currently
/// executing on this thread, or null outside a sweep task. Worlds merge
/// their per-engine registries into it at teardown; the snapshot lands in
/// the task's --json record. Never printed to stdout, so bench output stays
/// byte-identical whether observability is on or off.
obs::MetricsRegistry* current_task_metrics();

/// Credit `records` processed records to the grid point currently executing
/// on this thread. Benches call this from inside a sweep task; the total
/// surfaces as `records` / `records_per_wall_s` in the task's --json record
/// (a records-per-wall-second throughput figure for perf tracking). No-op
/// outside a sweep.
void report_task_records(std::uint64_t records);

/// Record the shard count the current grid point executed at. Surfaces as
/// `shards` in the task's --json record so sharded wall-clock wins are
/// attributed honestly (sharded-soak sweeps mix shard counts within one
/// sweep). Tasks that never call this inherit the runner-level default set
/// via ScenarioRunner::set_shards. No-op outside a sweep.
void report_task_shards(int shards);

namespace detail {
/// Install a fresh per-task registry on the calling thread.
void begin_task_metrics();
/// Uninstall it; returns its JSON snapshot, or "" when nothing landed.
std::string end_task_metrics();
/// Drain the thread's report_task_records() accumulator.
std::uint64_t take_task_records();
/// Drain the thread's report_task_shards() value (-1 when unreported).
int take_task_shards();
}  // namespace detail

struct TaskTiming {
  std::size_t index = 0;
  std::string label;
  double wall_ms = 0.0;
  /// Records the task credited via report_task_records (0 = not reported).
  std::uint64_t records = 0;
  /// Shard count the task executed at (-1 = unreported; json falls back to
  /// the runner-level default).
  int shards = -1;
  /// Merged metric snapshot for this grid point ("" when obs was off).
  std::string metrics_json;
};

struct SweepTiming {
  std::string name;
  double wall_ms = 0.0;  // caller-observed: submit to last-result
  std::vector<TaskTiming> tasks;
};

class ScenarioRunner {
 public:
  explicit ScenarioRunner(int threads = env_threads());

  [[nodiscard]] int threads() const { return threads_; }

  /// Run `fn` over every task, in parallel when threads() > 1, and return
  /// the results in task order. `label_fn(task)` names each grid point in
  /// the timing record.
  template <typename Task, typename Fn, typename LabelFn>
  auto sweep(const std::string& name, const std::vector<Task>& tasks, Fn&& fn,
             LabelFn&& label_fn)
      -> std::vector<std::invoke_result_t<Fn&, const Task&>> {
    using R = std::invoke_result_t<Fn&, const Task&>;
    static_assert(std::is_default_constructible_v<R>,
                  "sweep results are preallocated per slot");

    const auto sweep_began = Clock::now();
    SweepTiming timing;
    timing.name = name;
    timing.tasks.resize(tasks.size());
    std::vector<R> results(tasks.size());
    std::vector<std::exception_ptr> errors(tasks.size());

    auto run_one = [&](std::size_t i) {
      const auto began = Clock::now();
      detail::begin_task_metrics();
      try {
        results[i] = fn(tasks[i]);
      } catch (...) {
        errors[i] = std::current_exception();
      }
      TaskTiming& t = timing.tasks[i];
      t.index = i;
      t.label = label_fn(tasks[i]);
      t.records = detail::take_task_records();
      t.shards = detail::take_task_shards();
      t.metrics_json = detail::end_task_metrics();
      t.wall_ms = ms_since(began);
    };

    if (pool_) {
      for (std::size_t i = 0; i < tasks.size(); ++i) {
        pool_->submit([&run_one, i] { run_one(i); });
      }
      pool_->wait_idle();
    } else {
      for (std::size_t i = 0; i < tasks.size(); ++i) run_one(i);
    }

    timing.wall_ms = ms_since(sweep_began);
    sweeps_.push_back(std::move(timing));
    for (std::size_t i = 0; i < errors.size(); ++i) {
      if (errors[i]) std::rethrow_exception(errors[i]);
    }
    return results;
  }

  template <typename Task, typename Fn>
  auto sweep(const std::string& name, const std::vector<Task>& tasks, Fn&& fn) {
    return sweep(name, tasks, std::forward<Fn>(fn), [&](const Task& task) {
      return name + "[" + std::to_string(index_of(tasks, task)) + "]";
    });
  }

  [[nodiscard]] const std::vector<SweepTiming>& sweeps() const { return sweeps_; }
  [[nodiscard]] double total_wall_ms() const;

  /// Default shard count recorded per task in json() for tasks that never
  /// called report_task_shards (0 = plain engine; the BenchContext sets
  /// this from --shards / SAGE_PAR_SHARDS).
  void set_shards(int shards) { shards_ = shards; }
  [[nodiscard]] int shards() const { return shards_; }

  /// Render the timing record ({bench, threads, sweeps:[{tasks:[...]}]}).
  [[nodiscard]] std::string json(const std::string& bench, bool smoke) const;
  /// Write json() to `path`; returns false (and keeps stdout untouched) on
  /// I/O failure.
  bool write_json(const std::string& path, const std::string& bench, bool smoke) const;

 private:
  using Clock = std::chrono::steady_clock;

  static double ms_since(Clock::time_point t0) {
    return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  }
  template <typename Task>
  static std::size_t index_of(const std::vector<Task>& tasks, const Task& task) {
    return static_cast<std::size_t>(&task - tasks.data());
  }

  int threads_ = 1;
  int shards_ = 0;
  std::unique_ptr<ThreadPool> pool_;  // only when threads_ > 1
  std::vector<SweepTiming> sweeps_;
};

}  // namespace sage::harness
