#include "harness/scenario.hpp"

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>

#include "obs/metrics.hpp"

namespace sage::harness {
namespace {

thread_local std::unique_ptr<obs::MetricsRegistry> g_task_metrics;
thread_local std::uint64_t g_task_records = 0;
thread_local int g_task_shards = -1;

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  return buf;
}

}  // namespace

obs::MetricsRegistry* current_task_metrics() { return g_task_metrics.get(); }

void report_task_records(std::uint64_t records) { g_task_records += records; }

void report_task_shards(int shards) { g_task_shards = shards; }

namespace detail {

void begin_task_metrics() {
  g_task_metrics = std::make_unique<obs::MetricsRegistry>();
  g_task_records = 0;
  g_task_shards = -1;
}

std::uint64_t take_task_records() {
  const std::uint64_t n = g_task_records;
  g_task_records = 0;
  return n;
}

int take_task_shards() {
  const int n = g_task_shards;
  g_task_shards = -1;
  return n;
}

std::string end_task_metrics() {
  std::string out;
  if (g_task_metrics && !g_task_metrics->empty()) out = g_task_metrics->snapshot_json();
  g_task_metrics.reset();
  return out;
}

}  // namespace detail

int env_threads() {
  if (const char* env = std::getenv("SAGE_BENCH_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1 && v <= 1024) return static_cast<int>(v);
    std::fprintf(stderr, "harness: ignoring invalid SAGE_BENCH_THREADS=%s\n", env);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

int env_shards() {
  if (const char* env = std::getenv("SAGE_PAR_SHARDS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 0 && v <= 1024) return static_cast<int>(v);
    std::fprintf(stderr, "harness: ignoring invalid SAGE_PAR_SHARDS=%s\n", env);
  }
  return 0;  // default: sharded execution off
}

ScenarioRunner::ScenarioRunner(int threads) : threads_(threads < 1 ? 1 : threads) {
  if (threads_ > 1) pool_ = std::make_unique<ThreadPool>(static_cast<std::size_t>(threads_));
}

double ScenarioRunner::total_wall_ms() const {
  double total = 0.0;
  for (const SweepTiming& s : sweeps_) total += s.wall_ms;
  return total;
}

std::string ScenarioRunner::json(const std::string& bench, bool smoke) const {
  std::string out;
  out += "{\n";
  out += "  \"bench\": \"" + json_escape(bench) + "\",\n";
  out += "  \"threads\": " + std::to_string(threads_) + ",\n";
  out += std::string("  \"smoke\": ") + (smoke ? "true" : "false") + ",\n";
  out += "  \"total_wall_ms\": " + num(total_wall_ms()) + ",\n";
  out += "  \"sweeps\": [\n";
  for (std::size_t i = 0; i < sweeps_.size(); ++i) {
    const SweepTiming& s = sweeps_[i];
    out += "    {\"name\": \"" + json_escape(s.name) + "\", \"wall_ms\": " +
           num(s.wall_ms) + ", \"tasks\": [\n";
    for (std::size_t j = 0; j < s.tasks.size(); ++j) {
      const TaskTiming& t = s.tasks[j];
      out += "      {\"index\": " + std::to_string(t.index) + ", \"label\": \"" +
             json_escape(t.label) + "\", \"wall_ms\": " + num(t.wall_ms);
      out += ", \"shards\": " + std::to_string(t.shards >= 0 ? t.shards : shards_);
      if (t.records > 0) {
        out += ", \"records\": " + std::to_string(t.records);
        const double wall_s = t.wall_ms / 1e3;
        out += ", \"records_per_wall_s\": " +
               num(wall_s > 0.0 ? static_cast<double>(t.records) / wall_s : 0.0);
      }
      // Snapshots are already valid single-line JSON objects; embed raw.
      if (!t.metrics_json.empty()) out += ", \"metrics\": " + t.metrics_json;
      out += "}";
      out += (j + 1 < s.tasks.size()) ? ",\n" : "\n";
    }
    out += "    ]}";
    out += (i + 1 < sweeps_.size()) ? ",\n" : "\n";
  }
  out += "  ]\n}\n";
  return out;
}

bool ScenarioRunner::write_json(const std::string& path, const std::string& bench,
                                bool smoke) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "harness: cannot open %s for writing\n", path.c_str());
    return false;
  }
  const std::string body = json(bench, smoke);
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  std::fclose(f);
  return ok;
}

}  // namespace sage::harness
