#include "model/cost_model.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace sage::model {

CostModel::CostModel(cloud::PricingModel pricing, ModelParams params)
    : pricing_(pricing), params_(params) {
  SAGE_CHECK(params.parallel_gain > 0.0 && params.parallel_gain <= 1.0);
  SAGE_CHECK(params.intrusiveness > 0.0 && params.intrusiveness <= 1.0);
  SAGE_CHECK(params.risk >= 0.0);
  SAGE_CHECK(params.vm_cpu_share >= 0.0 && params.vm_cpu_share <= 1.0);
}

double CostModel::speedup(int nodes) const {
  SAGE_CHECK(nodes >= 1);
  return 1.0 + static_cast<double>(nodes - 1) * params_.parallel_gain;
}

ByteRate CostModel::effective_throughput(const monitor::LinkEstimate& link) const {
  const double mbps =
      std::max(link.mean_mbps - params_.risk * link.stddev_mbps, 0.05 * link.mean_mbps);
  return ByteRate::mb_per_sec(std::max(mbps, 1e-3));
}

SimDuration CostModel::predict_time(Bytes size, ByteRate per_flow, int nodes) const {
  SAGE_CHECK(size > Bytes::zero());
  SAGE_CHECK(per_flow.bytes_per_second() > 0.0);
  return per_flow.time_for(size) / speedup(nodes);
}

TransferEstimate CostModel::estimate(Bytes size, const monitor::LinkEstimate& link,
                                     int nodes, cloud::VmSize vm_size, cloud::Region src,
                                     cloud::Region dst) const {
  TransferEstimate e;
  e.nodes = nodes;
  e.time = predict_time(size, effective_throughput(link), nodes);
  // Each of the n nodes is billed for the transfer's duration, scaled by
  // how much of the machine the transfer is allowed to use.
  const Money vm_total = pricing_.vm_lease(vm_size, e.time) *
                         (static_cast<double>(nodes) * params_.intrusiveness);
  e.vm_cpu_cost = vm_total * params_.vm_cpu_share;
  e.vm_bandwidth_cost = vm_total - e.vm_cpu_cost;
  e.egress_cost = pricing_.egress(src, dst, size);
  return e;
}

}  // namespace sage::model
