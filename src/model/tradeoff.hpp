// Cost/time tradeoff solvers.
//
// Applications state their efficiency requirement one of three ways and the
// solver returns the resource count (parallel sender nodes) to provision:
//
//   * a budget cap        -> the largest n whose predicted cost fits;
//   * a deadline          -> the cheapest n whose predicted time fits;
//   * a blend knob λ∈[0,1] -> minimize (1−λ)·normalized_time + λ·normalized
//     cost over n (λ=0: pure speed, λ=1: pure thrift);
//
// plus a knee finder: the n after which a further node buys less time than
// it adds cost (scaled by each axis' range) — the "maximum time reduction
// for minimum cost" point the evaluation singles out.
#pragma once

#include <optional>
#include <vector>

#include "model/cost_model.hpp"

namespace sage::model {

/// How an application constrains a transfer.
struct Tradeoff {
  /// Hard ceiling on total transfer cost (Money::max() = unconstrained).
  Money budget = Money::max();
  /// Hard ceiling on transfer time (SimDuration::max() = unconstrained).
  SimDuration deadline = SimDuration::max();
  /// Blend preference used when neither cap binds (0 = fastest, 1 = cheapest).
  double lambda = 0.0;

  [[nodiscard]] static Tradeoff fastest() { return Tradeoff{}; }
  [[nodiscard]] static Tradeoff cheapest() {
    return Tradeoff{Money::max(), SimDuration::max(), 1.0};
  }
  [[nodiscard]] static Tradeoff within_budget(Money b) {
    return Tradeoff{b, SimDuration::max(), 0.0};
  }
  [[nodiscard]] static Tradeoff by_deadline(SimDuration d) {
    return Tradeoff{Money::max(), d, 1.0};
  }
};

struct TradeoffInputs {
  Bytes size;
  monitor::LinkEstimate link;
  cloud::VmSize vm_size = cloud::VmSize::kSmall;
  cloud::Region src = cloud::Region::kNorthEU;
  cloud::Region dst = cloud::Region::kNorthUS;
  /// Largest node count the deployment can offer.
  int max_nodes = 16;
};

class TradeoffSolver {
 public:
  explicit TradeoffSolver(const CostModel& model) : model_(model) {}

  /// Predicted estimates for n = 1..max_nodes (the efficiency frontier).
  [[nodiscard]] std::vector<TransferEstimate> frontier(const TradeoffInputs& in) const;

  /// The paper's Model.GetNodes(budget): largest n with cost <= budget.
  /// Returns 1 even when the budget cannot be met (the transfer must run;
  /// `fits_budget` on the result tells the caller it is over).
  [[nodiscard]] TransferEstimate nodes_for_budget(const TradeoffInputs& in,
                                                  Money budget) const;

  /// Cheapest configuration meeting the deadline, or nullopt if even
  /// max_nodes misses it.
  [[nodiscard]] std::optional<TransferEstimate> nodes_for_deadline(
      const TradeoffInputs& in, SimDuration deadline) const;

  /// Knee of the frontier: the n with the best time-saved per cost-added
  /// ratio (both axes normalized to their frontier range).
  [[nodiscard]] TransferEstimate knee(const TradeoffInputs& in) const;

  /// Resolve a full Tradeoff: apply caps first, then the λ blend among the
  /// configurations that satisfy every cap.
  [[nodiscard]] TransferEstimate resolve(const TradeoffInputs& in,
                                         const Tradeoff& tradeoff) const;

 private:
  const CostModel& model_;
};

/// Epoch-keyed memo in front of TradeoffSolver::resolve().
///
/// resolve() is a pure function of its inputs; within one monitoring epoch
/// the link estimate for a (src, dst) pair cannot change, so
/// (epoch, src, dst, size, vm_size, max_nodes, tradeoff) is a sound memo
/// key — callers must derive `in.link` from the same epoch'd matrix they
/// pass the epoch of. A hit skips rebuilding the whole cost/time frontier
/// (max_nodes CostModel evaluations) and returns the exact estimate a
/// fresh call would produce. Fixed-capacity ring, like sched::PlanCache.
class ResolveCache {
 public:
  explicit ResolveCache(std::size_t capacity = 64);

  /// Memoized solver.resolve(in, tradeoff) valid for monitoring epoch
  /// `epoch`. The returned reference stays valid until eviction.
  const TransferEstimate& resolve(const TradeoffSolver& solver, const TradeoffInputs& in,
                                  const Tradeoff& tradeoff, std::uint64_t epoch);

  void clear();
  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

 private:
  struct Key {
    std::uint64_t epoch = 0;
    cloud::Region src = cloud::Region::kNorthEU;
    cloud::Region dst = cloud::Region::kNorthEU;
    Bytes size;
    cloud::VmSize vm_size = cloud::VmSize::kSmall;
    int max_nodes = 0;
    Money budget;
    SimDuration deadline;
    double lambda = 0.0;

    [[nodiscard]] bool operator==(const Key&) const = default;
  };
  struct Entry {
    Key key;
    TransferEstimate estimate;
  };

  std::size_t capacity_;
  std::vector<Entry> entries_;
  std::size_t next_victim_ = 0;  // ring replacement once full
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace sage::model
