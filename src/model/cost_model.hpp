// The cost/time-aware transfer performance model — SAGE's analytical core.
//
// Given a monitored link estimate (mean per-flow throughput µ and
// variability σ), the model predicts for any candidate resource count n:
//
//   Transfer time (Eq. T):   Tt(n) = Size / thr_eff · 1 / (1 + (n−1)·gain)
//
//     where `gain` ∈ (0,1) is the empirically calibrated marginal benefit
//     of each additional parallel node (network interference and forwarding
//     overhead keep it below 1 — perfect scaling), and thr_eff discounts
//     the mean by a risk multiple of the observed variability:
//     thr_eff = max(ε, µ − risk·σ).
//
//   Monetary cost (Eq. C):   C(n) = n · Tt(n) · price_h(VM) · Intr
//                                   + egress(src) · Size
//
//     the first term bills the fraction (Intr = intrusiveness) of each
//     leased VM's time the transfer is allowed to consume — split for
//     reporting into a CPU share and a network-bandwidth share of the VM
//     price — and the second term is the provider's outbound-data charge
//     (inbound is free).
//
// Because Tt(n) falls roughly like 1/n while the VM term grows like
// n·Tt(n) = n/(1+(n−1)·gain)·Tt(1), cost rises slowly while time drops
// fast, producing the characteristic cost/time knee the tradeoff solvers
// in tradeoff.hpp search for.
#pragma once

#include "cloud/pricing.hpp"
#include "cloud/region.hpp"
#include "cloud/vm.hpp"
#include "common/units.hpp"
#include "monitor/monitoring.hpp"

namespace sage::model {

struct ModelParams {
  /// Marginal benefit of each extra parallel node in (0, 1].
  double parallel_gain = 0.65;
  /// Fraction of VM resources the transfer may consume (1.0 = dedicated).
  double intrusiveness = 1.0;
  /// Risk aversion: throughput is discounted by `risk · σ` (0 = use mean).
  double risk = 0.5;
  /// Reporting split of the VM price between CPU and network bandwidth.
  double vm_cpu_share = 0.5;
};

/// A fully priced prediction for one candidate transfer configuration.
struct TransferEstimate {
  int nodes = 1;
  SimDuration time;
  Money vm_cpu_cost;
  Money vm_bandwidth_cost;
  Money egress_cost;

  [[nodiscard]] Money vm_cost() const { return vm_cpu_cost + vm_bandwidth_cost; }
  [[nodiscard]] Money total_cost() const { return vm_cost() + egress_cost; }
};

class CostModel {
 public:
  CostModel(cloud::PricingModel pricing, ModelParams params);

  [[nodiscard]] const ModelParams& params() const { return params_; }
  void set_params(ModelParams params) { params_ = params; }

  /// Parallel speedup factor 1 + (n−1)·gain.
  [[nodiscard]] double speedup(int nodes) const;

  /// Risk-discounted effective throughput from a link estimate.
  [[nodiscard]] ByteRate effective_throughput(const monitor::LinkEstimate& link) const;

  /// Predicted transfer time for `size` over a link with the given per-flow
  /// throughput, using `nodes` parallel senders.
  [[nodiscard]] SimDuration predict_time(Bytes size, ByteRate per_flow, int nodes) const;

  /// Full cost/time estimate for one configuration.
  [[nodiscard]] TransferEstimate estimate(Bytes size, const monitor::LinkEstimate& link,
                                          int nodes, cloud::VmSize vm_size,
                                          cloud::Region src, cloud::Region dst) const;

 private:
  cloud::PricingModel pricing_;
  ModelParams params_;
};

}  // namespace sage::model
