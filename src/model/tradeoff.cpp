#include "model/tradeoff.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace sage::model {

std::vector<TransferEstimate> TradeoffSolver::frontier(const TradeoffInputs& in) const {
  SAGE_CHECK(in.max_nodes >= 1);
  std::vector<TransferEstimate> out;
  out.reserve(static_cast<std::size_t>(in.max_nodes));
  for (int n = 1; n <= in.max_nodes; ++n) {
    out.push_back(model_.estimate(in.size, in.link, n, in.vm_size, in.src, in.dst));
  }
  return out;
}

TransferEstimate TradeoffSolver::nodes_for_budget(const TradeoffInputs& in,
                                                  Money budget) const {
  const auto options = frontier(in);
  // Walk from the largest n down: the first configuration under budget is
  // the fastest affordable one (time decreases monotonically with n).
  for (auto it = options.rbegin(); it != options.rend(); ++it) {
    if (it->total_cost() <= budget) return *it;
  }
  return options.front();  // over budget even at n=1; run minimally
}

std::optional<TransferEstimate> TradeoffSolver::nodes_for_deadline(
    const TradeoffInputs& in, SimDuration deadline) const {
  for (const TransferEstimate& e : frontier(in)) {
    if (e.time <= deadline) return e;  // smallest n meeting it == cheapest
  }
  return std::nullopt;
}

TransferEstimate TradeoffSolver::knee(const TradeoffInputs& in) const {
  const auto options = frontier(in);
  if (options.size() == 1) return options.front();
  // Normalize both axes to the frontier's range, then pick the point
  // closest to the utopia corner (min time, min cost).
  double t_lo = options.front().time.to_seconds();
  double t_hi = t_lo;
  double c_lo = options.front().total_cost().to_usd();
  double c_hi = c_lo;
  for (const auto& e : options) {
    t_lo = std::min(t_lo, e.time.to_seconds());
    t_hi = std::max(t_hi, e.time.to_seconds());
    c_lo = std::min(c_lo, e.total_cost().to_usd());
    c_hi = std::max(c_hi, e.total_cost().to_usd());
  }
  const double t_span = std::max(t_hi - t_lo, 1e-12);
  const double c_span = std::max(c_hi - c_lo, 1e-12);
  const TransferEstimate* best = &options.front();
  double best_d = std::numeric_limits<double>::infinity();
  for (const auto& e : options) {
    const double t = (e.time.to_seconds() - t_lo) / t_span;
    const double c = (e.total_cost().to_usd() - c_lo) / c_span;
    const double d = std::hypot(t, c);
    if (d < best_d) {
      best_d = d;
      best = &e;
    }
  }
  return *best;
}

TransferEstimate TradeoffSolver::resolve(const TradeoffInputs& in,
                                         const Tradeoff& tradeoff) const {
  SAGE_CHECK(tradeoff.lambda >= 0.0 && tradeoff.lambda <= 1.0);
  const auto options = frontier(in);

  std::vector<const TransferEstimate*> feasible;
  for (const auto& e : options) {
    if (e.total_cost() <= tradeoff.budget && e.time <= tradeoff.deadline) {
      feasible.push_back(&e);
    }
  }
  if (feasible.empty()) {
    // No configuration satisfies every cap. Degrade predictably: honour the
    // budget first (money is the harder constraint to exceed on a public
    // cloud), else run minimally.
    if (tradeoff.budget < Money::max()) return nodes_for_budget(in, tradeoff.budget);
    return options.front();
  }

  double t_lo = feasible.front()->time.to_seconds();
  double t_hi = t_lo;
  double c_lo = feasible.front()->total_cost().to_usd();
  double c_hi = c_lo;
  for (const auto* e : feasible) {
    t_lo = std::min(t_lo, e->time.to_seconds());
    t_hi = std::max(t_hi, e->time.to_seconds());
    c_lo = std::min(c_lo, e->total_cost().to_usd());
    c_hi = std::max(c_hi, e->total_cost().to_usd());
  }
  const double t_span = std::max(t_hi - t_lo, 1e-12);
  const double c_span = std::max(c_hi - c_lo, 1e-12);

  const TransferEstimate* best = feasible.front();
  double best_score = std::numeric_limits<double>::infinity();
  for (const auto* e : feasible) {
    const double t = (e->time.to_seconds() - t_lo) / t_span;
    const double c = (e->total_cost().to_usd() - c_lo) / c_span;
    const double score = (1.0 - tradeoff.lambda) * t + tradeoff.lambda * c;
    if (score < best_score) {
      best_score = score;
      best = e;
    }
  }
  return *best;
}

ResolveCache::ResolveCache(std::size_t capacity) : capacity_(capacity) {
  SAGE_CHECK(capacity_ >= 1);
  entries_.reserve(capacity_);
}

const TransferEstimate& ResolveCache::resolve(const TradeoffSolver& solver,
                                              const TradeoffInputs& in,
                                              const Tradeoff& tradeoff,
                                              std::uint64_t epoch) {
  const Key key{epoch,          in.src,           in.dst,          in.size, in.vm_size,
                in.max_nodes,   tradeoff.budget,  tradeoff.deadline,
                tradeoff.lambda};
  for (Entry& e : entries_) {
    if (e.key == key) {
      ++hits_;
      return e.estimate;
    }
  }
  ++misses_;
  TransferEstimate fresh = solver.resolve(in, tradeoff);
  if (entries_.size() < capacity_) {
    entries_.push_back(Entry{key, fresh});
    return entries_.back().estimate;
  }
  Entry& victim = entries_[next_victim_];
  next_victim_ = (next_victim_ + 1) % capacity_;
  victim.key = key;
  victim.estimate = fresh;
  return victim.estimate;
}

void ResolveCache::clear() {
  entries_.clear();
  next_victim_ = 0;
}

}  // namespace sage::model
