// VM catalogue of the simulated provider, calibrated to 2013-era Azure
// compute instances (the sizes the SAGE evaluation used: Small and Medium
// for the synthetic benchmarks, Extra-Large for the application run).
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "common/units.hpp"

namespace sage::cloud {

enum class VmSize : std::uint8_t { kSmall = 0, kMedium = 1, kLarge = 2, kXLarge = 3 };

inline constexpr std::size_t kVmSizeCount = 4;

struct VmSpec {
  VmSize size;
  std::string_view name;
  int cores;
  double memory_gb;
  /// Advertised NIC bandwidth (shared by all of the VM's flows).
  ByteRate nic;
  /// Pay-per-use lease price.
  Money hourly_price;
  /// Relative single-core compute throughput (Small == 1.0); the CPU probe
  /// benchmark and the streaming executor's per-record cost use this.
  double compute_factor;
};

[[nodiscard]] constexpr VmSpec vm_spec(VmSize size) {
  switch (size) {
    case VmSize::kSmall:
      return {VmSize::kSmall,  "Small",  1, 1.75, ByteRate::megabits_per_sec(100),
              Money::usd(0.06), 1.0};
    case VmSize::kMedium:
      return {VmSize::kMedium, "Medium", 2, 3.5,  ByteRate::megabits_per_sec(200),
              Money::usd(0.12), 1.0};
    case VmSize::kLarge:
      return {VmSize::kLarge,  "Large",  4, 7.0,  ByteRate::megabits_per_sec(400),
              Money::usd(0.24), 1.05};
    case VmSize::kXLarge:
      return {VmSize::kXLarge, "XLarge", 8, 14.0, ByteRate::megabits_per_sec(800),
              Money::usd(0.48), 1.05};
  }
  return {VmSize::kSmall, "?", 1, 1.0, ByteRate::zero(), Money::zero(), 1.0};
}

inline constexpr std::array<VmSize, kVmSizeCount> kAllVmSizes = {
    VmSize::kSmall, VmSize::kMedium, VmSize::kLarge, VmSize::kXLarge};

}  // namespace sage::cloud
