// Pricing model of the simulated provider (2013-era Azure price book).
//
// Inbound WAN traffic is free; outbound ("egress") is billed per GB at the
// source region's rate. Blob storage bills capacity per GB-month plus a
// per-transaction charge. VM leases bill per hour, prorated to the second —
// SAGE's cost/time tradeoff solvers depend on that proration (shorter
// transfers on more VMs can be *cheaper*, the knee in Fig 6).
#pragma once

#include "cloud/region.hpp"
#include "cloud/vm.hpp"
#include "common/units.hpp"

namespace sage::cloud {

class PricingModel {
 public:
  /// Default 2013-era price book.
  PricingModel() = default;

  /// Lease cost for a VM of `size` held for `d` (prorated to microseconds).
  [[nodiscard]] Money vm_lease(VmSize size, SimDuration d) const {
    return vm_spec(size).hourly_price * d.to_hours();
  }

  /// Egress charge for `size` leaving `from` towards a *different* region.
  /// Intra-region traffic is free.
  [[nodiscard]] Money egress(Region from, Region to, Bytes size) const {
    if (from == to) return Money::zero();
    return egress_per_gb(from) * size.to_gb();
  }

  /// Per-GB egress rate by source region (EU/US "Zone 1" pricing).
  [[nodiscard]] Money egress_per_gb(Region from) const {
    // Zone-1 regions all billed $0.12/GB in the 2013 price book.
    (void)from;
    return Money::usd(0.12);
  }

  /// Blob capacity price per GB per 30-day month (locally redundant tier).
  [[nodiscard]] Money blob_storage_per_gb_month() const { return Money::usd(0.07); }

  /// Storage cost for holding `size` for `d`.
  [[nodiscard]] Money blob_storage(Bytes size, SimDuration d) const {
    const double months = d.to_hours() / (30.0 * 24.0);
    return blob_storage_per_gb_month() * (size.to_gb() * months);
  }

  /// Per-transaction charge ($0.01 per 100k operations).
  [[nodiscard]] Money blob_transaction() const { return Money::micro_usd(100); }
};

}  // namespace sage::cloud
