// Fluid-flow network fabric for the simulated multi-site cloud.
//
// Flows (bulk TCP transfers between two nodes) receive rates by max-min fair
// water-filling over the links they traverse:
//
//   node egress NIC -> inter-region WAN link (or intra-DC link) -> ingress NIC
//
// each flow additionally bounded by a demand cap (intrusiveness throttling)
// and by the route's per-flow TCP ceiling (effective window / RTT). WAN and
// intra-DC link capacities evolve over time through LinkCapacityModel; a
// periodic refresh (active only while flows exist) re-settles rates so flows
// experience the environment drift that SAGE's monitoring layer must detect.
//
// Settlement is incremental: link ids are dense, per-link active-flow lists
// are maintained on flow start/finish, and a flow event re-settles only the
// connected component of flows transitively sharing a link with the changed
// flow (flows on disjoint link sets cannot change rate under max-min).
// Periodic refresh still re-settles everything so capacity drift reaches
// every flow, but a completion event is only re-queued when the flow's
// scheduled finish time actually moved. See DESIGN.md "Simulator
// performance" for the algorithm and the determinism invariants.
//
// This is a deliberate substitution for the paper's real Azure testbed: the
// scheduler and model layers only ever observe flow-level throughput, which
// this fabric reproduces (see DESIGN.md substitution table).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "cloud/link_model.hpp"
#include "cloud/region.hpp"
#include "cloud/topology.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "simcore/engine.hpp"

namespace sage::obs {
class Counter;
class Gauge;
}  // namespace sage::obs

namespace sage::cloud {

using NodeId = std::uint32_t;
using FlowId = std::uint64_t;

inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

struct FlowOptions {
  /// Upper bound on this flow's rate (e.g. intrusiveness × NIC). Unset means
  /// only the NIC / link / TCP limits apply.
  std::optional<ByteRate> demand_cap;
  /// Extra one-shot setup delay before bytes start moving (protocol
  /// handshakes, HTTP envelope for blob operations, ...).
  SimDuration extra_setup_latency = SimDuration::zero();
};

enum class FlowOutcome : std::uint8_t { kCompleted, kFailed, kCancelled };

struct FlowResult {
  FlowId id;
  FlowOutcome outcome;
  Bytes transferred;
  SimTime started;
  SimTime finished;

  [[nodiscard]] bool ok() const { return outcome == FlowOutcome::kCompleted; }
  [[nodiscard]] SimDuration elapsed() const { return finished - started; }
  [[nodiscard]] ByteRate achieved_rate() const { return transferred / elapsed(); }
};

class Fabric {
 public:
  using CompletionFn = std::function<void(const FlowResult&)>;

  Fabric(sim::SimEngine& engine, Topology topology, std::uint64_t seed);
  /// Shared-topology variant for sharded worlds: S per-shard fabrics index
  /// one immutable topology instead of holding S copies. The topology is
  /// read-only for the fabric's whole lifetime, so concurrent lanes may
  /// share it freely.
  Fabric(sim::SimEngine& engine, std::shared_ptr<const Topology> topology,
         std::uint64_t seed);
  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  // -- Nodes ---------------------------------------------------------------

  /// Register a node (VM or storage endpoint) with its NIC limits.
  NodeId add_node(Region region, ByteRate nic_up, ByteRate nic_down);

  /// Mark a node failed/recovered. Failing a node aborts all of its flows.
  void set_node_failed(NodeId node, bool failed);
  [[nodiscard]] bool node_failed(NodeId node) const;
  [[nodiscard]] Region node_region(NodeId node) const;
  [[nodiscard]] NodeId node_count() const {
    return static_cast<NodeId>(nodes_.size());
  }

  // -- Fault injection (chaos layer) ---------------------------------------
  //
  // Chaos state is lazily allocated: until the first mutation the vectors
  // below stay empty and the hot paths take one untaken `!empty()` branch,
  // so a chaos-free run is byte-identical to a build without these hooks.

  /// Scale the declared (a, b) pair link's capacity by `scale` (0 downs the
  /// link). Follows the set_node_failed pattern: advance flows at old rates,
  /// mutate, then either abort crossing flows in id order (`abort_flows`,
  /// completion callbacks fire with kFailed) or strand them — a zero-capacity
  /// link settles crossing flows to rate 0 and cancels their completion
  /// events; they resume when the link is restored. CHECK-fails for
  /// undeclared pairs (callers gate on topology().has_link).
  void set_link_chaos_scale(Region a, Region b, double scale, bool abort_flows);

  /// Extra setup latency added to every new flow crossing (a, b); zero
  /// restores the healthy path. In-flight flows are unaffected.
  void set_link_chaos_latency(Region a, Region b, SimDuration extra);

  /// Abort up to `max_flows` in-flight flows crossing (a, b), smallest flow
  /// id first (deterministic); their callbacks fire with kFailed, which is
  /// what drives the transfer layer's retransmission paths. Returns the
  /// number aborted.
  std::size_t chaos_drop_pair_flows(Region a, Region b, std::size_t max_flows);

  // -- Flows ---------------------------------------------------------------

  /// Begin moving `size` bytes from `src` to `dst`. `on_done` fires exactly
  /// once. Starting a flow on a failed endpoint fails asynchronously.
  FlowId start_flow(NodeId src, NodeId dst, Bytes size, FlowOptions options,
                    CompletionFn on_done);

  /// Abort a flow; its completion callback fires with kCancelled. No-op if
  /// the flow already finished.
  void cancel_flow(FlowId id);

  [[nodiscard]] bool flow_active(FlowId id) const;
  [[nodiscard]] ByteRate flow_rate(FlowId id) const;
  [[nodiscard]] Bytes flow_transferred(FlowId id) const;

  // -- Observability -------------------------------------------------------

  [[nodiscard]] const Topology& topology() const { return *topology_; }
  [[nodiscard]] SimDuration rtt(Region a, Region b) const { return topology_->rtt(a, b); }

  /// Current (time-evolved) aggregate capacity of the region-pair link.
  /// Used by oracle baselines and tests, not by SAGE itself (which must
  /// estimate it from probes).
  ByteRate pair_capacity_now(Region a, Region b);

  /// Egress bytes that have left each region towards a different region;
  /// drives the provider's cost meter.
  [[nodiscard]] Bytes egress_from(Region r) const {
    return egress_[region_index(r)];
  }

  [[nodiscard]] std::size_t active_flow_count() const { return flows_.size(); }

  /// Number of live flows currently crossing the (a, b) region-pair link
  /// (including flows still in their setup-latency phase). O(log degree):
  /// an edge-id lookup plus the per-link flow counter. The monitoring layer
  /// uses this to suspend probes on busy links. Zero for undeclared pairs.
  [[nodiscard]] std::size_t pair_flow_count(Region a, Region b) const {
    const LinkSlot link = topology_->edge_index(a, b);
    return link == kNoLink ? 0 : pair_live_[static_cast<std::size_t>(link)];
  }

  /// Rate-settlement granularity (default 500 ms of simulated time).
  void set_refresh_period(SimDuration d) { refresh_period_ = d; }

  /// Pin refresh ticks to absolute multiples of the refresh period instead
  /// of phase-locking them to whichever flow woke the fabric. Byte progress
  /// truncates to whole bytes at every advancement point, so the tick grid
  /// is observable in completion times; a shared absolute grid makes them
  /// independent of how flows are partitioned across fabrics. Sharded
  /// scenario mode (core::ShardedSage) turns this on for every lane.
  void set_refresh_grid(bool on) { grid_refresh_ = on; }

 private:
  // Link indexing: [0, wan_links_) are the topology's declared directed
  // edges in edge-id order (the diagonal entries hold intra-DC links), then
  // two links per node (up, down). For the default 6-region measured
  // topology the edge ids coincide with the historical row-major src*6+dst
  // slots, so link-id-derived state (lazy RNG forks, settle iteration
  // order) is unchanged. All per-pair state is O(edges), never O(N²).

  // Per-connection transient hiccup parameters (see start_flow).
  static constexpr double kHiccupProbability = 0.12;
  static constexpr double kHiccupDepthLo = 0.10;
  static constexpr double kHiccupDepthHi = 0.45;

  // A re-settled flow keeps its scheduled completion event when its rate
  // moved by at most this relative amount AND the previously scheduled
  // finish time is still exact (to the microsecond) for the new remaining
  // bytes at the new rate. Refresh ticks on stable links are then heap-free.
  static constexpr double kRateRelTolerance = 1e-9;

  struct Flow {
    FlowId id;
    NodeId src;
    NodeId dst;
    Bytes total;
    Bytes remaining;
    ByteRate option_cap;     // demand_cap from FlowOptions (max() if unset)
    ByteRate spec_flow_cap;  // route's nominal per-flow TCP ceiling
    double hiccup = 1.0;     // transient per-connection luck factor
    ByteRate rate;           // current settled rate
    SimTime started;
    SimTime last_progress;
    SimTime completion_at;  // target of the scheduled completion event
    bool active = false;    // false while in setup-latency phase
    CompletionFn on_done;
    sim::EventHandle completion;
    std::array<std::size_t, 3> links{};       // up, pair, down (all distinct)
    std::array<std::uint32_t, 3> link_pos{};  // position in each link's flow list
    std::uint32_t active_index = 0;           // position in active_flows_
    std::uint32_t visit = 0;                  // component-BFS visit stamp
  };

  struct NodeInfo {
    Region region;
    bool failed = false;
  };

  /// Dense link id of the declared (a, b) edge. CHECK-fails for undeclared
  /// pairs — callers route over declared adjacency only.
  std::size_t pair_link(Region a, Region b) const;

  /// A flow's current demand ceiling: min(option cap, nominal per-flow TCP
  /// ceiling scaled by the pair link's congestion factor). Multi-tenant
  /// drift therefore hits single flows too, not just saturated links.
  [[nodiscard]] ByteRate flow_demand(const Flow& flow) const;

  // Incremental bookkeeping -------------------------------------------------

  /// Make `f` visible to settlement: per-link flow lists + active list.
  void activate_flow(Flow& f);
  /// Undo activate_flow (swap-erase, O(1) per link).
  void deactivate_flow(Flow& f);

  /// Flows transitively sharing a link with `origin` (including it).
  /// Only active flows occupy links and propagate the search.
  void collect_component(FlowId origin, std::vector<Flow*>& out);
  /// Snapshot of every active flow, in settlement order.
  void collect_all_active(std::vector<Flow*>& out);

  /// Flood the link-connected components reachable from `seeds` (link ids),
  /// collecting every active flow in them. Grid-mode mutators use this to
  /// scope advance/settle to the flows a node/link change can actually
  /// affect (see set_node_failed).
  void collect_link_components(std::initializer_list<std::size_t> seeds,
                               std::vector<Flow*>& out);

  /// Re-resolve `flows` to the subset of `ids` still alive (order kept).
  void resolve_live(const std::vector<FlowId>& ids, std::vector<Flow*>& flows);

  /// Bring `flows` up to `now` at their settled rates. If any complete,
  /// their callbacks fire and `flows` is re-resolved to the survivors (the
  /// no-completion fast path touches no hash lookups). `complete_hint`
  /// names a flow that should complete even if integer rounding left it a
  /// final sub-byte (completion-event path).
  void advance_flows(std::vector<Flow*>& flows, FlowId complete_hint = 0);

  /// Max-min water-filling over the active flows in `flows`, using the
  /// dense per-link scratch buffers, then reschedule completion events
  /// with hysteresis. Runs no user callbacks.
  void settle_flows(const std::vector<Flow*>& flows);

  void on_completion(FlowId id);
  void finish_flow(FlowId id, FlowOutcome outcome);
  void refresh_tick();
  void ensure_refresh_running();
  void schedule_refresh();
  ByteRate link_capacity_now(std::size_t link);

  // Observability cells, resolved once in the constructor when the engine
  // has obs enabled; `obs_` stays null otherwise and every instrumentation
  // point is a single untaken branch. Per-pair-link byte counters and
  // utilization gauges are created lazily (first traffic on the link).
  struct ObsCells {
    obs::Counter* settle_rounds = nullptr;
    obs::Counter* settle_flows = nullptr;
    obs::Counter* flows_started = nullptr;
    obs::Counter* flows_rejected = nullptr;  // failed-endpoint async path
    obs::Counter* flows_completed = nullptr;
    obs::Counter* flows_failed = nullptr;
    obs::Counter* flows_cancelled = nullptr;
    obs::Counter* flow_activations = nullptr;
    obs::Counter* bytes_offered = nullptr;
    obs::Counter* bytes_moved = nullptr;
    obs::Counter* bytes_forgiven = nullptr;  // sub-byte rounding at completion
    obs::Counter* bytes_aborted = nullptr;   // remaining at failure/cancel
    std::vector<obs::Counter*> link_bytes;  // sized wan_links_, lazy cells
    std::vector<obs::Gauge*> link_util;
  };
  obs::Counter* link_bytes_cell(std::size_t pair);
  obs::Gauge* link_util_cell(std::size_t pair);

  sim::SimEngine& engine_;
  // Immutable for the fabric's lifetime; shared across per-shard fabrics in
  // sharded worlds (the value ctor wraps its copy in a shared_ptr).
  std::shared_ptr<const Topology> topology_;
  std::size_t wan_links_ = 0;  // topology_->edges().size(); node links follow
  Rng rng_;
  SimDuration refresh_period_ = SimDuration::millis(500);
  bool grid_refresh_ = false;

  std::vector<NodeInfo> nodes_;
  std::vector<ByteRate> node_up_;
  std::vector<ByteRate> node_down_;
  // Per-node NIC wander: a VM's deliverable bandwidth drifts with its
  // co-tenants and occasionally collapses for minutes (the "problematic
  // node" a scheduler must route around). Only animated on non-stable
  // topologies; lazily created per node.
  std::vector<std::unique_ptr<LinkCapacityModel>> node_models_;

  // Pair-link capacity models, created lazily per declared edge.
  std::vector<std::optional<LinkCapacityModel>> pair_models_;  // sized wan_links_

  // Chaos overlays, empty until the first fault (see the public section).
  // When present: chaos_scale_ multiplies link_capacity_now per link id;
  // chaos_latency_ adds setup latency per pair link id.
  std::vector<double> chaos_scale_;
  std::vector<SimDuration> chaos_latency_;

  std::unordered_map<FlowId, Flow> flows_;  // node-based: Flow* stay stable
  FlowId next_flow_id_ = 1;
  std::vector<Bytes> egress_;  // sized region_count
  sim::EventHandle refresh_event_;

  // Dense, persistent link accounting (index = link id). Scratch entries
  // are validated by stamp so a settle touches only its component's links —
  // no per-call clearing, no hashing, deterministic index-order iteration.
  std::vector<std::vector<Flow*>> link_flows_;  // active flows per link
  std::vector<std::uint32_t> pair_live_;  // live flows per edge, sized wan_links_
  std::vector<double> link_avail_;       // scratch: unallocated capacity
  std::vector<double> link_cap0_;        // scratch: capacity at stamp time (obs only)
  std::vector<std::int32_t> link_count_; // scratch: unsettled flows on link
  std::vector<std::uint32_t> link_stamp_;
  std::vector<std::uint32_t> link_visit_;
  std::uint32_t stamp_ = 0;
  std::uint32_t visit_epoch_ = 0;

  std::vector<Flow*> active_flows_;  // deterministic settlement order
  std::unique_ptr<ObsCells> obs_;    // null when observability is off

  // Reused scratch (persistent capacity, no steady-state allocations).
  // These are only used inside settle_flows / collect_*, which run no user
  // callbacks, so plain members are re-entrancy safe.
  std::vector<std::size_t> link_queue_;
  std::vector<std::size_t> touched_links_;
  std::vector<Flow*> unsettled_;
  std::vector<Flow*> still_;
  // Grid-mode component-local settlement scratch (see settle_flows).
  std::vector<Flow*> comp_flows_;
  std::vector<std::size_t> comp_links_;
  std::vector<Flow*> to_reschedule_;
  std::vector<double> old_rates_;  // parallel to to_reschedule_

  // Flow lists live across completion callbacks (which may re-enter the
  // fabric), so they come from small recycle pools instead of members. The
  // Flow* lists carry the hot path (no hash lookups); the id lists are the
  // durable spelling used to re-resolve survivors after callbacks ran.
  std::vector<std::vector<FlowId>> id_pool_;
  std::vector<std::vector<Flow*>> ptr_pool_;
  std::vector<FlowId> take_ids();
  void put_ids(std::vector<FlowId>&& v);
  std::vector<Flow*> take_ptrs();
  void put_ptrs(std::vector<Flow*>&& v);
};

}  // namespace sage::cloud
