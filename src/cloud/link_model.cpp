#include "cloud/link_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace sage::cloud {

LinkCapacityModel::LinkCapacityModel(ByteRate base, VariabilityParams params, Rng rng)
    : base_(base), params_(params), rng_(rng) {
  SAGE_CHECK(base.bytes_per_second() > 0.0);
  SAGE_CHECK(params.noise_rho >= 0.0 && params.noise_rho < 1.0);
  SAGE_CHECK(params.diurnal_amplitude >= 0.0 && params.diurnal_amplitude < 1.0);
}

double LinkCapacityModel::diurnal(SimTime t) const {
  if (params_.diurnal_amplitude <= 0.0) return 1.0;
  constexpr double kDaySeconds = 24.0 * 3600.0;
  const double phase =
      (t - SimTime::epoch() - params_.diurnal_phase).to_seconds() / kDaySeconds;
  const double s = std::sin(phase * 3.14159265358979323846);
  return 1.0 - params_.diurnal_amplitude * s * s;
}

void LinkCapacityModel::advance_noise(SimTime t) {
  if (params_.noise_sigma <= 0.0) return;
  while (noise_until_ <= t) {
    noise_x_ = params_.noise_rho * noise_x_ + rng_.normal(0.0, params_.noise_sigma);
    noise_until_ = noise_until_ + params_.noise_step;
  }
}

void LinkCapacityModel::advance_incidents(SimTime t) {
  if (params_.incidents_per_day <= 0.0) return;
  const double rate_per_sec = params_.incidents_per_day / (24.0 * 3600.0);
  if (!incident_scheduled_) {
    next_incident_ = last_query_ + SimDuration::seconds(rng_.exponential(rate_per_sec));
    incident_scheduled_ = true;
  }
  // Replay any incidents that started (and possibly ended) before t.
  while (next_incident_ <= t) {
    const SimTime start = next_incident_;
    const auto duration =
        SimDuration::seconds(rng_.exponential(1.0 / params_.incident_mean_duration.to_seconds()));
    const double depth = rng_.uniform(params_.incident_depth_lo, params_.incident_depth_hi);
    if (start + duration > t) {
      incident_end_ = start + duration;
      incident_factor_ = depth;
    }
    next_incident_ = start + SimDuration::seconds(rng_.exponential(rate_per_sec));
  }
  if (t >= incident_end_) incident_factor_ = 1.0;
}

ByteRate LinkCapacityModel::capacity_at(SimTime t) {
  SAGE_CHECK_MSG(t >= last_query_, "LinkCapacityModel queried with decreasing time");
  advance_noise(t);
  advance_incidents(t);
  last_query_ = t;
  const double noise = params_.noise_sigma > 0.0 ? std::exp(noise_x_) : 1.0;
  // Clamp the composite factor: capacity never exceeds 130% of base (links
  // are provisioned, not magic) and never drops below 5% (routing keeps a
  // trickle alive even during incidents).
  const double factor =
      std::clamp(diurnal(t) * noise * incident_factor_, 0.05, 1.3);
  last_factor_ = factor;
  return base_ * factor;
}

}  // namespace sage::cloud
