// Calibrated inter-datacenter topology for the simulated Azure fabric.
//
// Calibration targets (2013-era measurements on Azure EU/US sites):
//   * single-flow inter-DC TCP throughput from a Small instance: 3–10 MB/s
//     depending on distance, with EU↔EU ~NIC-bound and transatlantic lowest;
//   * intra-DC transfers at least 10× faster than wide-area ones;
//   * aggregate WAN throughput saturating sub-linearly around 6–10 parallel
//     node flows.
//
// Per-flow throughput is modelled as min(NIC share, WAN per-flow TCP cap,
// link fair share); the TCP cap derives from an effective window over the
// pair's RTT, which is what makes distance (not raw capacity) the dominant
// single-flow limit, exactly as observed.
#pragma once

#include <array>

#include "cloud/link_model.hpp"
#include "cloud/region.hpp"
#include "common/units.hpp"

namespace sage::cloud {

struct PairLinkSpec {
  /// Aggregate deliverable WAN capacity for this directed region pair.
  ByteRate capacity;
  /// Per-TCP-flow throughput ceiling (effective window / RTT).
  ByteRate per_flow_cap;
  /// One-way propagation + processing delay.
  SimDuration latency;
  /// Stochastic behaviour of the link.
  VariabilityParams variability;
};

struct Topology {
  /// WAN spec for src != dst; intra spec used when src == dst.
  [[nodiscard]] const PairLinkSpec& link(Region src, Region dst) const {
    return specs[region_index(src)][region_index(dst)];
  }

  std::array<std::array<PairLinkSpec, kRegionCount>, kRegionCount> specs{};

  /// Round-trip time between two regions (2 × one-way latency).
  [[nodiscard]] SimDuration rtt(Region src, Region dst) const {
    return link(src, dst).latency * 2.0;
  }
};

/// The default calibrated topology (see file comment for targets).
[[nodiscard]] Topology default_topology();

/// A perfectly stable variant (no noise/diurnal/incidents) for unit tests
/// and model-validation experiments where analytic expectations are needed.
[[nodiscard]] Topology stable_topology();

}  // namespace sage::cloud
