// Runtime-parameterized inter-datacenter topology for the simulated fabric.
//
// A Topology is a heap-allocated graph of N regions plus a *sparse* directed
// edge list: one edge per region pair that physically carries traffic
// (the diagonal holds the intra-DC links). Edge order defines the dense
// link-id space every runtime layer (Fabric, MonitoringService, obs cells)
// indexes by, so per-link state is O(edges), never O(N²). Pair lookup is a
// CSR binary search over each region's out-edges; planners iterate the same
// adjacency rows instead of dense matrix rows.
//
// The default topology is the measured-matrix import of the calibrated
// 2013-era Azure 6×6 table (see calibration notes below) and enumerates its
// edges row-major — for the six named regions the resulting link ids are
// exactly the historical `src*6+dst` slots, which keeps every existing
// figure bench byte-identical. Generators (ring-of-continents,
// hub-and-spoke) mint synthetic topologies at 64–256+ sites for the
// scale experiments.
//
// Calibration targets of the default table (2013-era Azure EU/US sites):
//   * single-flow inter-DC TCP throughput from a Small instance: 3–10 MB/s
//     depending on distance, with EU↔EU ~NIC-bound and transatlantic lowest;
//   * intra-DC transfers at least 10× faster than wide-area ones;
//   * aggregate WAN throughput saturating sub-linearly around 6–10 parallel
//     node flows.
//
// Per-flow throughput is modelled as min(NIC share, WAN per-flow TCP cap,
// link fair share); the TCP cap derives from an effective window over the
// pair's RTT, which is what makes distance (not raw capacity) the dominant
// single-flow limit, exactly as observed.
#pragma once

#include <cstdint>
#include <vector>

#include "cloud/link_model.hpp"
#include "cloud/region.hpp"
#include "common/units.hpp"

namespace sage::cloud {

/// Dense link-slot type. 32-bit: a 256-region mesh has 65k directed pairs,
/// past the int16 range the old fixed-size tables could index.
using LinkSlot = std::int32_t;
inline constexpr LinkSlot kNoLink = -1;

struct PairLinkSpec {
  /// Aggregate deliverable WAN capacity for this directed region pair.
  ByteRate capacity;
  /// Per-TCP-flow throughput ceiling (effective window / RTT).
  ByteRate per_flow_cap;
  /// One-way propagation + processing delay.
  SimDuration latency;
  /// Stochastic behaviour of the link.
  VariabilityParams variability;
};

class Topology {
 public:
  struct Edge {
    Region src;
    Region dst;
    PairLinkSpec spec;
  };

  Topology() = default;

  [[nodiscard]] std::size_t region_count() const { return n_; }
  /// All regions of this topology, index order (make_region(0) .. n-1).
  [[nodiscard]] const std::vector<Region>& regions() const { return regions_; }

  /// Declared edges; the vector index IS the dense link id used by every
  /// runtime layer. Diagonal (intra-DC) edges are ordinary entries.
  [[nodiscard]] const std::vector<Edge>& edges() const { return edges_; }

  /// Dense link id of the directed pair, or kNoLink when the topology has
  /// no such link. O(log degree) CSR binary search.
  [[nodiscard]] LinkSlot edge_index(Region src, Region dst) const;
  [[nodiscard]] bool has_link(Region src, Region dst) const {
    return edge_index(src, dst) != kNoLink;
  }

  /// Edge ids leaving `src` (diagonal included), dst ascending. Planners
  /// and monitors iterate this adjacency instead of dense matrix rows.
  [[nodiscard]] const std::vector<LinkSlot>& out_edges(Region src) const;

  /// WAN spec for src != dst; intra spec when src == dst. CHECK-fails when
  /// the topology declares no such link — sparse topologies do not promise
  /// all-pairs direct connectivity.
  [[nodiscard]] const PairLinkSpec& link(Region src, Region dst) const;

  /// Round-trip time between two regions (2 × one-way latency).
  [[nodiscard]] SimDuration rtt(Region src, Region dst) const {
    return link(src, dst).latency * 2.0;
  }

 private:
  friend class TopologyBuilder;

  std::size_t n_ = 0;
  std::vector<Region> regions_;
  std::vector<Edge> edges_;
  // CSR adjacency over edges_: rows_[region_index(r)] lists edge ids with
  // src == r, sorted by dst (built once by TopologyBuilder::build).
  std::vector<std::vector<LinkSlot>> rows_;
};

/// Assembles a Topology edge by edge. Edge *insertion order* defines the
/// dense link-id space (and therefore lazy RNG fork order downstream), so
/// builders must add edges deterministically.
class TopologyBuilder {
 public:
  explicit TopologyBuilder(std::size_t region_count);

  /// Declare the directed link src->dst (src == dst declares the intra-DC
  /// link). Re-declaring a pair CHECK-fails.
  TopologyBuilder& add_link(Region src, Region dst, const PairLinkSpec& spec);
  /// Declare both directions with the same spec.
  TopologyBuilder& add_symmetric(Region a, Region b, const PairLinkSpec& spec);

  [[nodiscard]] std::size_t region_count() const { return n_; }
  [[nodiscard]] bool has_link(Region src, Region dst) const;

  /// Finalize: builds the CSR index. The builder is consumed.
  [[nodiscard]] Topology build();

 private:
  std::size_t n_ = 0;
  std::vector<Topology::Edge> edges_;
  std::vector<std::vector<LinkSlot>> rows_;  // maintained sorted by dst
};

// -- Spec helpers shared by the default table and the generators ------------

/// WAN spec from a one-way latency: per-flow cap = effective TCP window over
/// the RTT (clamped), aggregate = per-flow × saturation flows. `stable`
/// zeroes all variability for analytic tests.
[[nodiscard]] PairLinkSpec wan_spec_for_latency(SimDuration one_way, bool long_haul,
                                                bool stable);

/// Intra-DC spec: per-flow and aggregate at least 10× any WAN link of the
/// same topology (`wan_per_flow_ceiling` = the fastest WAN per-flow cap).
[[nodiscard]] PairLinkSpec intra_dc_spec(ByteRate wan_per_flow_ceiling, bool stable);

// -- Topologies -------------------------------------------------------------

/// The calibrated 6×6 one-way latency table (milliseconds; symmetric,
/// diagonal = intra-DC). Exposed so the measured-matrix import round-trip
/// can be pinned bit-exactly by tests.
[[nodiscard]] const std::vector<std::vector<double>>& default_latency_ms();

/// Measured-matrix import: full-mesh topology from an N×N one-way latency
/// table (milliseconds). Edges are enumerated row-major, so for the default
/// table the link ids reproduce the historical dense `src*6+dst` slots.
/// Variability is distance-scaled unless `stable`.
[[nodiscard]] Topology measured_topology(const std::vector<std::vector<double>>& latency_ms,
                                         bool stable = false);

/// The default calibrated topology (measured import of default_latency_ms()).
[[nodiscard]] Topology default_topology();

/// A perfectly stable variant (no noise/diurnal/incidents) for unit tests
/// and model-validation experiments where analytic expectations are needed.
[[nodiscard]] Topology stable_topology();

/// Synthetic planet: `regions` sites spread over `continents` continents
/// arranged in a ring. Intra-continent pairs are fully meshed; continents
/// are stitched by symmetric gateway links (region 0 of each continent to
/// region 0 of the next around the ring), so the edge count stays
/// O(N²/C + C) instead of N². RTTs are symmetric; latency grows with ring
/// distance. Connected by construction.
[[nodiscard]] Topology ring_of_continents(std::size_t regions, std::size_t continents,
                                          bool stable = false);

/// Synthetic star: region 0 is the hub, every other region links to it
/// symmetrically (2(N-1) WAN edges). Spoke↔spoke traffic relays through
/// the hub via the planner's adjacency paths.
[[nodiscard]] Topology hub_and_spoke(std::size_t regions, bool stable = false);

// -- Shard planning ---------------------------------------------------------

/// Partition of a topology's regions across S event-execution shards plus
/// the conservative lookahead horizon between them. Regions are assigned in
/// contiguous index blocks (shard_of[i] = i*S/N), which aligns shard
/// boundaries with the contiguous continent blocks of ring_of_continents
/// whenever S divides the continent count — cross-shard edges are then
/// exactly the high-latency gateway ring, maximizing the lookahead window.
struct ShardPlan {
  std::size_t shards = 1;
  /// Shard of each region, indexed by region_index(). Values in [0, shards).
  std::vector<std::uint32_t> shard_of;
  /// Minimum one-way latency over declared edges whose endpoints live on
  /// different shards: no cross-shard event can arrive sooner, so a shard
  /// may safely run this far ahead of its peers (the null-message insight).
  /// SimDuration::max() when no edge crosses shards (shards are fully
  /// independent); zero when some cross-shard edge has no latency, in which
  /// case the window degenerates and execution must fall back to sequential.
  SimDuration lookahead = SimDuration::zero();

  [[nodiscard]] std::uint32_t shard(Region r) const {
    return shard_of[region_index(r)];
  }
  /// True when parallel windows cannot make progress (lookahead <= 0 with
  /// more than one shard). The sharded engine then runs one merged lane.
  [[nodiscard]] bool degenerate() const {
    return shards > 1 && lookahead <= SimDuration::zero();
  }
};

/// Plan a partition of `topo` across `shards` shards (clamped to
/// [1, region_count]); computes the conservative lookahead from declared
/// edge latencies. Deterministic: same topology + shard count, same plan.
[[nodiscard]] ShardPlan plan_shards(const Topology& topo, std::size_t shards);

/// Owning shard of each declared edge, indexed by dense link id. An edge is
/// owned by the shard of its *source* region, so all flows of a directed
/// pair settle inside one shard's fabric regardless of where the payload
/// terminates.
[[nodiscard]] std::vector<std::uint32_t> edge_owners(const Topology& topo,
                                                     const ShardPlan& plan);

}  // namespace sage::cloud
