// Cost accounting for the simulated provider.
#pragma once

#include "common/units.hpp"

namespace sage::cloud {

/// Itemised charges accumulated by a deployment. All values are exact
/// (integer micro-USD accumulation).
struct CostReport {
  Money vm_lease;
  Money egress;
  Money blob_storage;
  Money blob_transactions;

  [[nodiscard]] Money total() const {
    return vm_lease + egress + blob_storage + blob_transactions;
  }

  CostReport operator-(const CostReport& o) const {
    return CostReport{vm_lease - o.vm_lease, egress - o.egress,
                      blob_storage - o.blob_storage,
                      blob_transactions - o.blob_transactions};
  }
};

/// Mutable accumulator shared between the provider and its blob services.
class CostMeter {
 public:
  void add_vm_lease(Money m) { report_.vm_lease += m; }
  void add_egress(Money m) { report_.egress += m; }
  void add_blob_storage(Money m) { report_.blob_storage += m; }
  void add_blob_transaction(Money m) { report_.blob_transactions += m; }

  [[nodiscard]] const CostReport& report() const { return report_; }

 private:
  CostReport report_;
};

}  // namespace sage::cloud
