// Time-varying link capacity model.
//
// Multi-tenant cloud links exhibit (a) a diurnal load cycle, (b) short-term
// correlated noise from co-tenants, and (c) occasional deep performance
// incidents with no warning — the "drops or bursts can appear at any time"
// behaviour reported for Azure inter-DC links. The model composes:
//
//   C(t) = base · diurnal(t) · ar1_noise(t) · incident(t)
//
//   * diurnal(t): 1 − A·sin²(π·(t−φ)/24h), a smooth daily dip of depth A;
//   * ar1_noise(t): exp(x_t) with x_{t+1} = ρ·x_t + ε, ε ~ N(0, σ²),
//     piecewise-constant over `noise_step` segments (lazily advanced, so a
//     simulated week costs only the segments actually observed);
//   * incident(t): Poisson arrivals; each incident multiplies capacity by a
//     uniform depth factor for an exponentially distributed duration.
//
// The model is deterministic given its Rng seed and is evaluated lazily:
// capacity_at(t) may only be called with non-decreasing t.
#pragma once

#include "common/rng.hpp"
#include "common/units.hpp"

namespace sage::cloud {

struct VariabilityParams {
  /// Depth of the daily dip in (0, 1); 0 disables the diurnal term.
  double diurnal_amplitude = 0.15;
  /// Phase offset of the dip within the day.
  SimDuration diurnal_phase = SimDuration::hours(14);
  /// AR(1) autocorrelation per step, in [0, 1).
  double noise_rho = 0.9;
  /// Innovation stddev of the AR(1) log-noise.
  double noise_sigma = 0.08;
  /// Length of one piecewise-constant noise segment.
  SimDuration noise_step = SimDuration::seconds(30);
  /// Mean incidents per simulated day (Poisson rate); 0 disables incidents.
  double incidents_per_day = 2.0;
  /// Mean incident duration.
  SimDuration incident_mean_duration = SimDuration::minutes(4);
  /// Incident capacity multiplier is drawn uniformly from this range.
  double incident_depth_lo = 0.25;
  double incident_depth_hi = 0.7;

  [[nodiscard]] static VariabilityParams stable() {
    VariabilityParams p;
    p.diurnal_amplitude = 0.0;
    p.noise_sigma = 0.0;
    p.incidents_per_day = 0.0;
    return p;
  }
};

class LinkCapacityModel {
 public:
  LinkCapacityModel(ByteRate base, VariabilityParams params, Rng rng);

  /// Capacity at time t. Monotone access contract: t must not decrease
  /// between calls (the simulator clock never runs backwards).
  [[nodiscard]] ByteRate capacity_at(SimTime t);

  [[nodiscard]] ByteRate base() const { return base_; }
  [[nodiscard]] const VariabilityParams& params() const { return params_; }

  /// Multiplicative factor (noise · incident · diurnal) at the last query.
  [[nodiscard]] double last_factor() const { return last_factor_; }

 private:
  void advance_noise(SimTime t);
  void advance_incidents(SimTime t);
  [[nodiscard]] double diurnal(SimTime t) const;

  ByteRate base_;
  VariabilityParams params_;
  Rng rng_;

  // AR(1) log-noise state.
  double noise_x_ = 0.0;
  SimTime noise_until_ = SimTime::epoch();

  // Incident process state.
  SimTime next_incident_ = SimTime::epoch();
  SimTime incident_end_ = SimTime::epoch();
  double incident_factor_ = 1.0;
  bool incident_scheduled_ = false;

  double last_factor_ = 1.0;
  SimTime last_query_ = SimTime::epoch();
};

}  // namespace sage::cloud
