// The simulated cloud provider facade — SAGE's substitute for the Azure SDK.
//
// Everything above this layer (monitoring, transfer substrate, scheduler,
// streaming engine) consumes the cloud exclusively through this interface:
// provision/release VMs, open flows between them, use per-region blob
// services, query the price book, read the accrued bill. Swapping in a real
// provider would mean re-implementing exactly this class.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cloud/blob.hpp"
#include "cloud/cost.hpp"
#include "cloud/fabric.hpp"
#include "cloud/pricing.hpp"
#include "cloud/region.hpp"
#include "cloud/topology.hpp"
#include "cloud/vm.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "simcore/engine.hpp"

namespace sage::cloud {

using VmId = std::uint32_t;

/// A leased virtual machine.
struct VmHandle {
  VmId id = 0;
  NodeId node = kInvalidNode;
  Region region = Region::kNorthEU;
  VmSize size = VmSize::kSmall;
};

class CloudProvider {
 public:
  /// Build a provider over the given topology. All stochastic behaviour
  /// derives from `seed`.
  CloudProvider(sim::SimEngine& engine, Topology topology, std::uint64_t seed);

  /// Shared-topology overload for sharded deployments: S per-lane providers
  /// reference one immutable Topology instead of carrying S copies.
  CloudProvider(sim::SimEngine& engine, std::shared_ptr<const Topology> topology,
                std::uint64_t seed);

  // -- VM lifecycle ----------------------------------------------------------

  /// Lease one VM; billing starts immediately.
  VmHandle provision(Region region, VmSize size);
  std::vector<VmHandle> provision_many(Region region, VmSize size, int count);

  /// End the lease; the VM-time charge is finalized.
  void release(VmId id);
  void release_all();

  /// Simulate an abrupt VM failure: all its flows abort, billing stops.
  void fail_vm(VmId id);

  [[nodiscard]] bool is_active(VmId id) const;
  [[nodiscard]] const VmHandle& vm(VmId id) const;
  [[nodiscard]] std::size_t active_vm_count() const;
  /// Total VMs ever provisioned (ids are dense in [0, vm_count())).
  [[nodiscard]] std::size_t vm_count() const { return vms_.size(); }

  /// Current CPU throughput factor of a VM (nominal 1.0; wanders with
  /// multi-tenant noise). What the CPU probe benchmark measures.
  double vm_cpu_factor(VmId id);

  // -- Networking --------------------------------------------------------------

  [[nodiscard]] Fabric& fabric() { return *fabric_; }
  [[nodiscard]] const Topology& topology() const { return fabric_->topology(); }
  [[nodiscard]] SimDuration rtt(Region a, Region b) const { return fabric_->rtt(a, b); }

  /// Start a bulk transfer between two leased VMs.
  FlowId transfer(VmId src, VmId dst, Bytes size, FlowOptions options,
                  Fabric::CompletionFn on_done);

  // -- Storage ---------------------------------------------------------------

  [[nodiscard]] BlobService& blob(Region region) { return *blobs_[region_index(region)]; }

  // -- Billing ---------------------------------------------------------------

  [[nodiscard]] const PricingModel& pricing() const { return pricing_; }

  /// Itemised charges accrued so far (active leases and live blobs accrued
  /// up to the current simulated time).
  CostReport cost_report();

  [[nodiscard]] sim::SimEngine& engine() { return engine_; }

 private:
  struct VmRecord {
    VmHandle handle;
    SimTime lease_start;
    bool active = false;
    LinkCapacityModel cpu_model;
  };

  sim::SimEngine& engine_;
  PricingModel pricing_;
  CostMeter meter_;
  Rng rng_;
  std::unique_ptr<Fabric> fabric_;
  std::vector<std::unique_ptr<BlobService>> blobs_;  // one per topology region
  std::vector<VmRecord> vms_;
  std::vector<Bytes> egress_billed_;
};

}  // namespace sage::cloud
