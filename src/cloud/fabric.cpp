#include "cloud/fabric.hpp"

#include <algorithm>
#include <limits>

#include "common/check.hpp"

namespace sage::cloud {

Fabric::Fabric(sim::SimEngine& engine, Topology topology, std::uint64_t seed)
    : engine_(engine), topology_(topology), rng_(seed) {}

namespace {

// Per-node NIC variability: moderate correlated wander plus occasional
// deep multi-minute slumps. Calibrated so a single wide-area flow (far
// below the NIC) rarely notices, while multi-flow senders — the scatter
// and forwarding roles — genuinely differ from node to node.
VariabilityParams nic_variability() {
  VariabilityParams p;
  p.diurnal_amplitude = 0.0;
  p.noise_sigma = 0.035;
  p.noise_rho = 0.95;
  p.noise_step = SimDuration::minutes(2);
  p.incidents_per_day = 8.0;
  p.incident_mean_duration = SimDuration::minutes(10);
  p.incident_depth_lo = 0.3;
  p.incident_depth_hi = 0.7;
  return p;
}

}  // namespace

NodeId Fabric::add_node(Region region, ByteRate nic_up, ByteRate nic_down) {
  SAGE_CHECK(nic_up.bytes_per_second() > 0.0 && nic_down.bytes_per_second() > 0.0);
  nodes_.push_back(NodeInfo{region, false});
  node_up_.push_back(nic_up);
  node_down_.push_back(nic_down);
  node_models_.push_back(nullptr);
  return static_cast<NodeId>(nodes_.size() - 1);
}

void Fabric::set_node_failed(NodeId node, bool failed) {
  SAGE_CHECK(node < nodes_.size());
  if (nodes_[node].failed == failed) return;
  advance_progress();
  nodes_[node].failed = failed;
  if (failed) {
    std::vector<FlowId> doomed;
    for (const auto& [id, f] : flows_) {
      if (f.src == node || f.dst == node) doomed.push_back(id);
    }
    for (FlowId id : doomed) finish_flow(id, FlowOutcome::kFailed);
  }
  settle();
}

bool Fabric::node_failed(NodeId node) const {
  SAGE_CHECK(node < nodes_.size());
  return nodes_[node].failed;
}

Region Fabric::node_region(NodeId node) const {
  SAGE_CHECK(node < nodes_.size());
  return nodes_[node].region;
}

ByteRate Fabric::link_capacity_now(std::size_t link) {
  if (link < kPairLinks) {
    auto& model = pair_models_[link];
    if (!model) {
      const Region a = kAllRegions[link / kRegionCount];
      const Region b = kAllRegions[link % kRegionCount];
      const PairLinkSpec& spec = topology_.link(a, b);
      model.emplace(spec.capacity, spec.variability, rng_.fork());
    }
    return model->capacity_at(engine_.now());
  }
  const std::size_t rel = link - kPairLinks;
  const NodeId node = static_cast<NodeId>(rel / 2);
  const ByteRate nominal = (rel % 2 == 0) ? node_up_[node] : node_down_[node];
  // Stable topologies (zero intra-DC noise) keep NICs analytic for tests.
  if (topology_.link(nodes_[node].region, nodes_[node].region).variability.noise_sigma <=
      0.0) {
    return nominal;
  }
  auto& model = node_models_[node];
  if (!model) {
    model = std::make_unique<LinkCapacityModel>(nominal, nic_variability(), rng_.fork());
  }
  // Up and down directions share one wander process (same physical host).
  const double factor = model->capacity_at(engine_.now()).bytes_per_second() /
                        model->base().bytes_per_second();
  return nominal * factor;
}

ByteRate Fabric::pair_capacity_now(Region a, Region b) {
  return link_capacity_now(pair_link(a, b));
}

std::size_t Fabric::pair_flow_count(Region a, Region b) const {
  const std::size_t link = pair_link(a, b);
  std::size_t n = 0;
  for (const auto& [id, f] : flows_) {
    if (f.links[1] == link) ++n;
  }
  return n;
}

FlowId Fabric::start_flow(NodeId src, NodeId dst, Bytes size, FlowOptions options,
                          CompletionFn on_done) {
  SAGE_CHECK(src < nodes_.size() && dst < nodes_.size());
  SAGE_CHECK_MSG(src != dst, "flow endpoints must differ");
  SAGE_CHECK(size >= Bytes::zero());
  SAGE_CHECK(on_done != nullptr);

  const FlowId id = next_flow_id_++;
  const Region ra = nodes_[src].region;
  const Region rb = nodes_[dst].region;
  const PairLinkSpec& spec = topology_.link(ra, rb);

  if (nodes_[src].failed || nodes_[dst].failed) {
    // Fail asynchronously so callers never re-enter from start_flow.
    const SimTime now = engine_.now();
    engine_.schedule_after(SimDuration::zero(), [on_done = std::move(on_done), id, now] {
      on_done(FlowResult{id, FlowOutcome::kFailed, Bytes::zero(), now, now});
    });
    return id;
  }

  Flow f;
  f.id = id;
  f.src = src;
  f.dst = dst;
  f.total = size;
  f.remaining = size;
  f.spec_flow_cap = spec.per_flow_cap;
  f.option_cap = options.demand_cap.value_or(
      ByteRate::bytes_per_sec(std::numeric_limits<double>::infinity()));
  // Transient per-connection hiccup: a small fraction of connections land
  // on a transiently bad route / busy co-tenant and run far below the
  // path's nominal rate for their lifetime. Short flows (probes!) feel
  // this fully — the "temporary glitch" samples the weighted estimator is
  // designed to distrust. Disabled on noise-free links so the stable
  // topology stays analytic.
  if (spec.variability.noise_sigma > 0.0 && rng_.chance(kHiccupProbability)) {
    f.hiccup = rng_.uniform(kHiccupDepthLo, kHiccupDepthHi);
  }
  SAGE_CHECK_MSG(f.option_cap.bytes_per_second() > 0.0, "flow demand cap must be positive");
  f.started = engine_.now();
  f.on_done = std::move(on_done);
  f.links = {kPairLinks + static_cast<std::size_t>(src) * 2, pair_link(ra, rb),
             kPairLinks + static_cast<std::size_t>(dst) * 2 + 1};
  flows_.emplace(id, std::move(f));

  const SimDuration setup = spec.latency + options.extra_setup_latency;
  engine_.schedule_after(setup, [this, id] {
    auto it = flows_.find(id);
    if (it == flows_.end()) return;  // cancelled during setup
    advance_progress();
    it->second.active = true;
    it->second.last_progress = engine_.now();
    if (it->second.remaining.is_zero()) {
      finish_flow(id, FlowOutcome::kCompleted);
      return;
    }
    settle();
  });
  ensure_refresh_running();
  return id;
}

void Fabric::cancel_flow(FlowId id) {
  if (flows_.count(id) == 0) return;
  advance_progress();
  finish_flow(id, FlowOutcome::kCancelled);
  settle();
}

bool Fabric::flow_active(FlowId id) const { return flows_.count(id) != 0; }

ByteRate Fabric::flow_rate(FlowId id) const {
  auto it = flows_.find(id);
  if (it == flows_.end() || !it->second.active) return ByteRate::zero();
  return it->second.rate;
}

Bytes Fabric::flow_transferred(FlowId id) const {
  auto it = flows_.find(id);
  if (it == flows_.end()) return Bytes::zero();
  return it->second.total - it->second.remaining;
}

void Fabric::advance_progress() {
  const SimTime now = engine_.now();
  std::vector<FlowId> done;
  for (auto& [id, f] : flows_) {
    if (!f.active) continue;
    const SimDuration dt = now - f.last_progress;
    f.last_progress = now;
    if (dt <= SimDuration::zero() || f.rate.is_zero()) continue;
    Bytes moved = f.rate * dt;
    if (moved > f.remaining) moved = f.remaining;
    f.remaining -= moved;
    const Region ra = nodes_[f.src].region;
    const Region rb = nodes_[f.dst].region;
    if (ra != rb) egress_[region_index(ra)] += moved;
    if (f.remaining.is_zero()) done.push_back(id);
  }
  for (FlowId id : done) finish_flow(id, FlowOutcome::kCompleted);
}

void Fabric::finish_flow(FlowId id, FlowOutcome outcome) {
  auto it = flows_.find(id);
  if (it == flows_.end()) return;
  Flow f = std::move(it->second);
  flows_.erase(it);
  f.completion.cancel();
  FlowResult result;
  result.id = id;
  result.outcome = outcome;
  result.transferred =
      outcome == FlowOutcome::kCompleted ? f.total : (f.total - f.remaining);
  result.started = f.started;
  result.finished = engine_.now();
  f.on_done(result);
}

ByteRate Fabric::flow_demand(const Flow& flow) const {
  double cap = flow.option_cap.bytes_per_second();
  const auto& model = pair_models_[flow.links[1]];
  // The per-flow TCP ceiling breathes with the pair link's congestion
  // factor (window shrinkage under cross-traffic loss); the factor is
  // fresh because settle() queried the link capacity just before.
  const double factor = model ? model->last_factor() : 1.0;
  cap = std::min(cap, flow.spec_flow_cap.bytes_per_second() * factor * flow.hiccup);
  return ByteRate::bytes_per_sec(std::max(cap, 1.0));
}

void Fabric::settle() {
  if (settling_) return;
  settling_ = true;

  // Collect active flows and the capacities of every link they touch.
  std::vector<Flow*> unsettled;
  unsettled.reserve(flows_.size());
  std::unordered_map<std::size_t, double> avail;
  std::unordered_map<std::size_t, int> count;
  for (auto& [id, f] : flows_) {
    if (!f.active) continue;
    unsettled.push_back(&f);
    for (std::size_t l : f.links) {
      if (avail.find(l) == avail.end()) avail[l] = link_capacity_now(l).bytes_per_second();
      ++count[l];
    }
  }

  // Progressive water-filling with per-flow demand ceilings.
  while (!unsettled.empty()) {
    double share = std::numeric_limits<double>::infinity();
    std::size_t bottleneck = static_cast<std::size_t>(-1);
    for (const auto& [l, c] : count) {
      if (c <= 0) continue;
      const double s = std::max(avail[l], 0.0) / static_cast<double>(c);
      if (s < share) {
        share = s;
        bottleneck = l;
      }
    }
    SAGE_CHECK(bottleneck != static_cast<std::size_t>(-1));

    auto settle_flow = [&](Flow* f, double rate) {
      f->rate = ByteRate::bytes_per_sec(rate);
      for (std::size_t l : f->links) {
        avail[l] -= rate;
        --count[l];
      }
    };

    // Demand-limited flows settle below the fair share first.
    std::vector<Flow*> still;
    still.reserve(unsettled.size());
    bool any_demand_limited = false;
    for (Flow* f : unsettled) {
      const double demand = flow_demand(*f).bytes_per_second();
      if (demand <= share + 1e-9) {
        settle_flow(f, demand);
        any_demand_limited = true;
      } else {
        still.push_back(f);
      }
    }
    if (any_demand_limited) {
      unsettled.swap(still);
      continue;
    }

    // Otherwise the bottleneck link pins everyone crossing it at the share.
    std::vector<Flow*> rest;
    rest.reserve(unsettled.size());
    for (Flow* f : unsettled) {
      const bool on_bottleneck =
          f->links[0] == bottleneck || f->links[1] == bottleneck || f->links[2] == bottleneck;
      if (on_bottleneck) {
        settle_flow(f, share);
      } else {
        rest.push_back(f);
      }
    }
    unsettled.swap(rest);
  }

  // Reschedule completions at the new rates.
  for (auto& [id, f] : flows_) {
    if (!f.active) continue;
    f.completion.cancel();
    if (f.rate.is_zero() || f.remaining.is_zero()) continue;
    // Floor the ETA at one clock tick: sub-microsecond remainders would
    // otherwise reschedule at +0 forever. One tick at any rate that can
    // produce a sub-tick ETA moves at least the remaining byte.
    const SimDuration eta =
        std::max(f.rate.time_for(f.remaining), SimDuration::micros(1));
    const FlowId fid = id;
    f.completion = engine_.schedule_after(eta, [this, fid] {
      advance_progress();
      // advance_progress normally finishes the flow exactly here; belt and
      // braces for the last sub-byte of integer rounding:
      auto it = flows_.find(fid);
      if (it != flows_.end() && it->second.remaining <= Bytes::of(1)) {
        finish_flow(fid, FlowOutcome::kCompleted);
      }
      settle();
    });
  }
  settling_ = false;
}

void Fabric::refresh_tick() {
  if (flows_.empty()) return;  // goes dormant; restarted by next start_flow
  advance_progress();
  settle();
  refresh_event_ = engine_.schedule_after(refresh_period_, [this] { refresh_tick(); });
}

void Fabric::ensure_refresh_running() {
  if (refresh_event_.pending()) return;
  refresh_event_ = engine_.schedule_after(refresh_period_, [this] { refresh_tick(); });
}

}  // namespace sage::cloud
