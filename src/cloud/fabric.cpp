#include "cloud/fabric.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "common/check.hpp"
#include "obs/obs.hpp"

namespace sage::cloud {

Fabric::Fabric(sim::SimEngine& engine, Topology topology, std::uint64_t seed)
    : Fabric(engine, std::make_shared<const Topology>(std::move(topology)), seed) {}

Fabric::Fabric(sim::SimEngine& engine, std::shared_ptr<const Topology> topology,
               std::uint64_t seed)
    : engine_(engine),
      topology_(std::move(topology)),
      wan_links_(topology_->edges().size()),
      rng_(seed) {
  SAGE_CHECK(topology_ != nullptr);
  pair_models_.resize(wan_links_);
  pair_live_.assign(wan_links_, 0u);
  egress_.assign(topology_->region_count(), Bytes::zero());
  link_flows_.resize(wan_links_);
  link_avail_.resize(wan_links_, 0.0);
  link_cap0_.resize(wan_links_, 0.0);
  link_count_.resize(wan_links_, 0);
  link_stamp_.resize(wan_links_, 0);
  link_visit_.resize(wan_links_, 0);
  if (obs::Observability* o = engine_.obs()) {
    auto& m = o->metrics();
    obs_ = std::make_unique<ObsCells>();
    obs_->settle_rounds = m.counter("fabric.settle.rounds");
    obs_->settle_flows = m.counter("fabric.settle.flows");
    obs_->flows_started = m.counter("fabric.flows.started");
    obs_->flows_rejected = m.counter("fabric.flows.rejected");
    obs_->flows_completed = m.counter("fabric.flows.completed");
    obs_->flows_failed = m.counter("fabric.flows.failed");
    obs_->flows_cancelled = m.counter("fabric.flows.cancelled");
    obs_->flow_activations = m.counter("fabric.flows.activations");
    obs_->bytes_offered = m.counter("fabric.bytes.offered");
    obs_->bytes_moved = m.counter("fabric.bytes.moved");
    obs_->bytes_forgiven = m.counter("fabric.bytes.forgiven");
    obs_->bytes_aborted = m.counter("fabric.bytes.aborted");
    obs_->link_bytes.resize(wan_links_, nullptr);
    obs_->link_util.resize(wan_links_, nullptr);
  }
}

namespace {

std::string edge_label(const Topology::Edge& e) {
  return std::string(region_name(e.src)) + "->" + std::string(region_name(e.dst));
}

}  // namespace

obs::Counter* Fabric::link_bytes_cell(std::size_t pair) {
  obs::Counter*& cell = obs_->link_bytes[pair];
  if (cell == nullptr) {
    cell = engine_.obs()->metrics().counter(
        "fabric.link.bytes", {{"link", edge_label(topology_->edges()[pair])}});
  }
  return cell;
}

obs::Gauge* Fabric::link_util_cell(std::size_t pair) {
  obs::Gauge*& cell = obs_->link_util[pair];
  if (cell == nullptr) {
    cell = engine_.obs()->metrics().gauge(
        "fabric.link.utilization", {{"link", edge_label(topology_->edges()[pair])}});
  }
  return cell;
}

namespace {

// Per-node NIC variability: moderate correlated wander plus occasional
// deep multi-minute slumps. Calibrated so a single wide-area flow (far
// below the NIC) rarely notices, while multi-flow senders — the scatter
// and forwarding roles — genuinely differ from node to node.
VariabilityParams nic_variability() {
  VariabilityParams p;
  p.diurnal_amplitude = 0.0;
  p.noise_sigma = 0.035;
  p.noise_rho = 0.95;
  p.noise_step = SimDuration::minutes(2);
  p.incidents_per_day = 8.0;
  p.incident_mean_duration = SimDuration::minutes(10);
  p.incident_depth_lo = 0.3;
  p.incident_depth_hi = 0.7;
  return p;
}

}  // namespace

NodeId Fabric::add_node(Region region, ByteRate nic_up, ByteRate nic_down) {
  SAGE_CHECK(nic_up.bytes_per_second() > 0.0 && nic_down.bytes_per_second() > 0.0);
  nodes_.push_back(NodeInfo{region, false});
  node_up_.push_back(nic_up);
  node_down_.push_back(nic_down);
  node_models_.push_back(nullptr);
  const std::size_t links = wan_links_ + nodes_.size() * 2;
  link_flows_.resize(links);
  link_avail_.resize(links, 0.0);
  link_count_.resize(links, 0);
  link_stamp_.resize(links, 0);
  link_visit_.resize(links, 0);
  return static_cast<NodeId>(nodes_.size() - 1);
}

void Fabric::set_node_failed(NodeId node, bool failed) {
  SAGE_CHECK(node < nodes_.size());
  if (nodes_[node].failed == failed) return;
  auto flows = take_ptrs();
  if (grid_refresh_) {
    // Scoped mutation (grid mode): only components touching the node's NIC
    // links can see a rate change, so only they are brought current. This
    // keeps lane-local events — a transfer releasing its ephemeral
    // endpoints calls this with zero flows left on the node — from adding
    // advancement points (and byte-truncation drift) to unrelated
    // components, which is what shard-count invariance rests on.
    collect_link_components({wan_links_ + static_cast<std::size_t>(node) * 2,
                             wan_links_ + static_cast<std::size_t>(node) * 2 + 1},
                            flows);
  } else {
    collect_all_active(flows);
  }
  advance_flows(flows);
  auto ids = take_ids();
  ids.reserve(flows.size());
  for (const Flow* fp : flows) ids.push_back(fp->id);
  nodes_[node].failed = failed;
  if (failed) {
    auto doomed = take_ids();
    for (const auto& [id, f] : flows_) {
      if (f.src == node || f.dst == node) doomed.push_back(id);
    }
    // Abort in id order so callback order does not depend on map layout.
    std::sort(doomed.begin(), doomed.end());
    for (FlowId id : doomed) finish_flow(id, FlowOutcome::kFailed);
    put_ids(std::move(doomed));
  }
  if (grid_refresh_) {
    resolve_live(ids, flows);  // membership changed; drop the aborted flows
  } else {
    collect_all_active(flows);  // membership changed; re-snapshot
  }
  put_ids(std::move(ids));
  settle_flows(flows);
  put_ptrs(std::move(flows));
}

bool Fabric::node_failed(NodeId node) const {
  SAGE_CHECK(node < nodes_.size());
  return nodes_[node].failed;
}

Region Fabric::node_region(NodeId node) const {
  SAGE_CHECK(node < nodes_.size());
  return nodes_[node].region;
}

void Fabric::set_link_chaos_scale(Region a, Region b, double scale, bool abort_flows) {
  SAGE_CHECK(scale >= 0.0);
  const std::size_t link = pair_link(a, b);
  if (chaos_scale_.empty()) {
    if (scale == 1.0 && !abort_flows) return;  // restore before any fault: no-op
    chaos_scale_.assign(wan_links_, 1.0);
  }
  if (chaos_scale_[link] == scale && !abort_flows) return;
  // Same shape as set_node_failed: bring the affected flows current at the
  // old rates, mutate, abort doomed flows in id order, then re-settle.
  auto flows = take_ptrs();
  if (grid_refresh_) {
    collect_link_components({link}, flows);  // scoped, see set_node_failed
  } else {
    collect_all_active(flows);
  }
  advance_flows(flows);
  auto ids = take_ids();
  ids.reserve(flows.size());
  for (const Flow* fp : flows) ids.push_back(fp->id);
  chaos_scale_[link] = scale;
  if (abort_flows) {
    auto doomed = take_ids();
    for (const auto& [id, f] : flows_) {
      if (f.links[1] == link) doomed.push_back(id);
    }
    std::sort(doomed.begin(), doomed.end());
    for (FlowId id : doomed) finish_flow(id, FlowOutcome::kFailed);
    put_ids(std::move(doomed));
  }
  if (grid_refresh_) {
    resolve_live(ids, flows);
  } else {
    collect_all_active(flows);  // membership changed; re-snapshot
  }
  put_ids(std::move(ids));
  settle_flows(flows);
  put_ptrs(std::move(flows));
}

void Fabric::set_link_chaos_latency(Region a, Region b, SimDuration extra) {
  SAGE_CHECK(!extra.is_negative());
  const std::size_t link = pair_link(a, b);
  if (chaos_latency_.empty()) {
    if (extra <= SimDuration::zero()) return;
    chaos_latency_.assign(wan_links_, SimDuration::zero());
  }
  chaos_latency_[link] = extra;
}

std::size_t Fabric::chaos_drop_pair_flows(Region a, Region b, std::size_t max_flows) {
  const std::size_t link = pair_link(a, b);
  auto doomed = take_ids();
  for (const auto& [id, f] : flows_) {
    if (f.links[1] == link) doomed.push_back(id);
  }
  std::sort(doomed.begin(), doomed.end());
  if (doomed.size() > max_flows) doomed.resize(max_flows);
  std::size_t dropped = 0;
  if (!doomed.empty()) {
    auto flows = take_ptrs();
    if (grid_refresh_) {
      collect_link_components({link}, flows);  // scoped, see set_node_failed
    } else {
      collect_all_active(flows);
    }
    advance_flows(flows);
    auto ids = take_ids();
    ids.reserve(flows.size());
    for (const Flow* fp : flows) ids.push_back(fp->id);
    for (FlowId id : doomed) {
      if (flows_.count(id) == 0) continue;  // the advance completed it first
      finish_flow(id, FlowOutcome::kFailed);
      ++dropped;
    }
    if (grid_refresh_) {
      resolve_live(ids, flows);
    } else {
      collect_all_active(flows);
    }
    put_ids(std::move(ids));
    settle_flows(flows);
    put_ptrs(std::move(flows));
  }
  put_ids(std::move(doomed));
  return dropped;
}

ByteRate Fabric::link_capacity_now(std::size_t link) {
  if (link < wan_links_) {
    auto& model = pair_models_[link];
    if (!model) {
      const PairLinkSpec& spec = topology_->edges()[link].spec;
      model.emplace(spec.capacity, spec.variability, rng_.fork());
    }
    ByteRate cap = model->capacity_at(engine_.now());
    // Chaos overlay (empty until the first injected fault): downed links
    // scale to zero, squeezed links to a fraction. Applied after the model
    // so the underlying capacity process (and its RNG) is undisturbed.
    if (!chaos_scale_.empty()) cap = cap * chaos_scale_[link];
    return cap;
  }
  const std::size_t rel = link - wan_links_;
  const NodeId node = static_cast<NodeId>(rel / 2);
  const ByteRate nominal = (rel % 2 == 0) ? node_up_[node] : node_down_[node];
  // Stable topologies (zero intra-DC noise) keep NICs analytic for tests.
  if (topology_->link(nodes_[node].region, nodes_[node].region).variability.noise_sigma <=
      0.0) {
    return nominal;
  }
  auto& model = node_models_[node];
  if (!model) {
    model = std::make_unique<LinkCapacityModel>(nominal, nic_variability(), rng_.fork());
  }
  // Up and down directions share one wander process (same physical host).
  const double factor = model->capacity_at(engine_.now()).bytes_per_second() /
                        model->base().bytes_per_second();
  return nominal * factor;
}

ByteRate Fabric::pair_capacity_now(Region a, Region b) {
  return link_capacity_now(pair_link(a, b));
}

std::size_t Fabric::pair_link(Region a, Region b) const {
  const LinkSlot link = topology_->edge_index(a, b);
  SAGE_CHECK_MSG(link != kNoLink,
                 "fabric: topology declares no link between those regions");
  return static_cast<std::size_t>(link);
}

FlowId Fabric::start_flow(NodeId src, NodeId dst, Bytes size, FlowOptions options,
                          CompletionFn on_done) {
  SAGE_CHECK(src < nodes_.size() && dst < nodes_.size());
  SAGE_CHECK_MSG(src != dst, "flow endpoints must differ");
  SAGE_CHECK(size >= Bytes::zero());
  SAGE_CHECK(on_done != nullptr);

  const FlowId id = next_flow_id_++;
  const Region ra = nodes_[src].region;
  const Region rb = nodes_[dst].region;
  const PairLinkSpec& spec = topology_->link(ra, rb);

  if (nodes_[src].failed || nodes_[dst].failed) {
    if (obs_) obs_->flows_rejected->add();
    // Fail asynchronously so callers never re-enter from start_flow.
    const SimTime now = engine_.now();
    engine_.schedule_after(SimDuration::zero(), [on_done = std::move(on_done), id, now] {
      on_done(FlowResult{id, FlowOutcome::kFailed, Bytes::zero(), now, now});
    });
    return id;
  }

  Flow f;
  f.id = id;
  f.src = src;
  f.dst = dst;
  f.total = size;
  f.remaining = size;
  f.spec_flow_cap = spec.per_flow_cap;
  f.option_cap = options.demand_cap.value_or(
      ByteRate::bytes_per_sec(std::numeric_limits<double>::infinity()));
  // Transient per-connection hiccup: a small fraction of connections land
  // on a transiently bad route / busy co-tenant and run far below the
  // path's nominal rate for their lifetime. Short flows (probes!) feel
  // this fully — the "temporary glitch" samples the weighted estimator is
  // designed to distrust. Disabled on noise-free links so the stable
  // topology stays analytic.
  if (spec.variability.noise_sigma > 0.0 && rng_.chance(kHiccupProbability)) {
    f.hiccup = rng_.uniform(kHiccupDepthLo, kHiccupDepthHi);
  }
  SAGE_CHECK_MSG(f.option_cap.bytes_per_second() > 0.0, "flow demand cap must be positive");
  f.started = engine_.now();
  f.on_done = std::move(on_done);
  const std::size_t pair = pair_link(ra, rb);
  f.links = {wan_links_ + static_cast<std::size_t>(src) * 2, pair,
             wan_links_ + static_cast<std::size_t>(dst) * 2 + 1};
  flows_.emplace(id, std::move(f));
  ++pair_live_[pair];
  if (obs_) {
    obs_->flows_started->add();
    obs_->bytes_offered->add(static_cast<std::uint64_t>(size.count()));
  }

  SimDuration setup = spec.latency + options.extra_setup_latency;
  if (!chaos_latency_.empty()) setup += chaos_latency_[pair];
  engine_.schedule_after(setup, [this, id] {
    auto it = flows_.find(id);
    if (it == flows_.end()) return;  // cancelled during setup
    Flow& flow = it->second;
    if (flow.remaining.is_zero()) {
      finish_flow(id, FlowOutcome::kCompleted);
      return;
    }
    flow.active = true;
    flow.last_progress = engine_.now();
    activate_flow(flow);
    auto flows = take_ptrs();
    collect_component(id, flows);
    advance_flows(flows);  // neighbours progress at old rates before re-settling
    settle_flows(flows);
    put_ptrs(std::move(flows));
  });
  ensure_refresh_running();
  return id;
}

void Fabric::cancel_flow(FlowId id) {
  if (flows_.count(id) == 0) return;
  auto flows = take_ptrs();
  collect_component(id, flows);
  advance_flows(flows);
  if (flows_.count(id) != 0) {  // the advance may have completed it already
    // finish_flow runs the cancelled flow's callback, which may re-enter;
    // re-resolve the component afterwards (see advance_flows).
    auto ids = take_ids();
    ids.reserve(flows.size());
    for (const Flow* fp : flows) ids.push_back(fp->id);
    finish_flow(id, FlowOutcome::kCancelled);
    resolve_live(ids, flows);
    put_ids(std::move(ids));
  }
  settle_flows(flows);
  put_ptrs(std::move(flows));
}

bool Fabric::flow_active(FlowId id) const { return flows_.count(id) != 0; }

ByteRate Fabric::flow_rate(FlowId id) const {
  auto it = flows_.find(id);
  if (it == flows_.end() || !it->second.active) return ByteRate::zero();
  return it->second.rate;
}

Bytes Fabric::flow_transferred(FlowId id) const {
  auto it = flows_.find(id);
  if (it == flows_.end()) return Bytes::zero();
  const Flow& f = it->second;
  Bytes done = f.total - f.remaining;
  // Byte counters advance lazily (only the settled component is brought
  // current on a flow event), so project the settled rate forward.
  if (f.active && !f.rate.is_zero()) {
    const SimDuration dt = engine_.now() - f.last_progress;
    if (dt > SimDuration::zero()) {
      Bytes moved = f.rate * dt;
      if (moved > f.remaining) moved = f.remaining;
      done += moved;
    }
  }
  return done;
}

void Fabric::activate_flow(Flow& f) {
  if (obs_) obs_->flow_activations->add();
  f.active_index = static_cast<std::uint32_t>(active_flows_.size());
  active_flows_.push_back(&f);
  for (int k = 0; k < 3; ++k) {
    auto& list = link_flows_[f.links[k]];
    f.link_pos[k] = static_cast<std::uint32_t>(list.size());
    list.push_back(&f);
  }
}

void Fabric::deactivate_flow(Flow& f) {
  Flow* moved = active_flows_.back();
  active_flows_[f.active_index] = moved;
  moved->active_index = f.active_index;
  active_flows_.pop_back();
  for (int k = 0; k < 3; ++k) {
    auto& list = link_flows_[f.links[k]];
    Flow* tail = list.back();
    list[f.link_pos[k]] = tail;
    for (int j = 0; j < 3; ++j) {
      if (tail->links[j] == f.links[k]) {
        tail->link_pos[j] = f.link_pos[k];
        break;
      }
    }
    list.pop_back();
  }
}

void Fabric::collect_component(FlowId origin, std::vector<Flow*>& out) {
  out.clear();
  auto it = flows_.find(origin);
  if (it == flows_.end()) return;
  if (++visit_epoch_ == 0) {  // stamp wrap: reset marks once per ~4e9 events
    std::fill(link_visit_.begin(), link_visit_.end(), 0u);
    for (auto& [id, f] : flows_) f.visit = 0;
    visit_epoch_ = 1;
  }
  link_queue_.clear();
  const auto visit = [&](Flow& f) {
    if (f.visit == visit_epoch_) return;
    f.visit = visit_epoch_;
    out.push_back(&f);
    if (!f.active) return;  // setup-phase flows occupy no links
    for (std::size_t l : f.links) {
      if (link_visit_[l] != visit_epoch_) {
        link_visit_[l] = visit_epoch_;
        link_queue_.push_back(l);
      }
    }
  };
  visit(it->second);
  for (std::size_t head = 0; head < link_queue_.size(); ++head) {
    for (Flow* g : link_flows_[link_queue_[head]]) visit(*g);
  }
}

void Fabric::collect_link_components(std::initializer_list<std::size_t> seeds,
                                     std::vector<Flow*>& out) {
  out.clear();
  if (++visit_epoch_ == 0) {  // stamp wrap: reset marks once per ~4e9 events
    std::fill(link_visit_.begin(), link_visit_.end(), 0u);
    for (auto& [id, f] : flows_) f.visit = 0;
    visit_epoch_ = 1;
  }
  link_queue_.clear();
  for (std::size_t l : seeds) {
    if (link_visit_[l] != visit_epoch_) {
      link_visit_[l] = visit_epoch_;
      link_queue_.push_back(l);
    }
  }
  for (std::size_t head = 0; head < link_queue_.size(); ++head) {
    for (Flow* g : link_flows_[link_queue_[head]]) {
      if (g->visit == visit_epoch_) continue;
      g->visit = visit_epoch_;
      out.push_back(g);
      for (std::size_t l : g->links) {
        if (link_visit_[l] != visit_epoch_) {
          link_visit_[l] = visit_epoch_;
          link_queue_.push_back(l);
        }
      }
    }
  }
}

void Fabric::collect_all_active(std::vector<Flow*>& out) {
  out.assign(active_flows_.begin(), active_flows_.end());
}

void Fabric::resolve_live(const std::vector<FlowId>& ids, std::vector<Flow*>& flows) {
  flows.clear();
  for (FlowId id : ids) {
    auto it = flows_.find(id);
    if (it != flows_.end()) flows.push_back(&it->second);
  }
}

void Fabric::advance_flows(std::vector<Flow*>& flows, FlowId complete_hint) {
  const SimTime now = engine_.now();
  auto done = take_ids();
  for (Flow* fp : flows) {
    Flow& f = *fp;
    if (!f.active) continue;
    const SimDuration dt = now - f.last_progress;
    f.last_progress = now;
    if (dt <= SimDuration::zero() || f.rate.is_zero()) continue;
    Bytes moved = f.rate * dt;
    if (moved > f.remaining) moved = f.remaining;
    f.remaining -= moved;
    const Region ra = nodes_[f.src].region;
    const Region rb = nodes_[f.dst].region;
    if (ra != rb) egress_[region_index(ra)] += moved;
    if (obs_) {
      obs_->bytes_moved->add(static_cast<std::uint64_t>(moved.count()));
      link_bytes_cell(f.links[1])->add(static_cast<std::uint64_t>(moved.count()));
    }
    if (f.remaining.is_zero()) done.push_back(f.id);
  }
  if (complete_hint != 0) {
    // The completion event fires at the scheduled finish time; forgive the
    // last sub-byte of integer rounding.
    auto it = flows_.find(complete_hint);
    if (it != flows_.end() && it->second.active && it->second.remaining <= Bytes::of(1) &&
        std::find(done.begin(), done.end(), complete_hint) == done.end()) {
      done.push_back(complete_hint);
    }
  }
  if (!done.empty()) {
    // Completion callbacks may re-enter the fabric and finish arbitrary
    // flows, so spell the set as ids across the callbacks and re-resolve
    // the survivors after. The common refresh tick (no completions) never
    // reaches this path and runs without a single hash lookup.
    auto ids = take_ids();
    ids.reserve(flows.size());
    for (const Flow* fp : flows) ids.push_back(fp->id);
    for (FlowId id : done) finish_flow(id, FlowOutcome::kCompleted);
    resolve_live(ids, flows);
    put_ids(std::move(ids));
  }
  put_ids(std::move(done));
}

void Fabric::finish_flow(FlowId id, FlowOutcome outcome) {
  auto it = flows_.find(id);
  if (it == flows_.end()) return;
  if (it->second.active) deactivate_flow(it->second);
  --pair_live_[it->second.links[1]];
  Flow f = std::move(it->second);
  flows_.erase(it);
  f.completion.cancel();
  if (obs_) {
    switch (outcome) {
      case FlowOutcome::kCompleted:
        obs_->flows_completed->add();
        // A completed flow reports all offered bytes as transferred; the
        // final sub-byte of integer rounding is forgiven, and the
        // conservation invariant tracks it explicitly.
        obs_->bytes_forgiven->add(static_cast<std::uint64_t>(f.remaining.count()));
        break;
      case FlowOutcome::kFailed:
        obs_->flows_failed->add();
        obs_->bytes_aborted->add(static_cast<std::uint64_t>(f.remaining.count()));
        break;
      case FlowOutcome::kCancelled:
        obs_->flows_cancelled->add();
        obs_->bytes_aborted->add(static_cast<std::uint64_t>(f.remaining.count()));
        break;
    }
  }
  FlowResult result;
  result.id = id;
  result.outcome = outcome;
  result.transferred =
      outcome == FlowOutcome::kCompleted ? f.total : (f.total - f.remaining);
  result.started = f.started;
  result.finished = engine_.now();
  f.on_done(result);
}

ByteRate Fabric::flow_demand(const Flow& flow) const {
  double cap = flow.option_cap.bytes_per_second();
  const auto& model = pair_models_[flow.links[1]];
  // The per-flow TCP ceiling breathes with the pair link's congestion
  // factor (window shrinkage under cross-traffic loss); the factor is
  // fresh because settle queried the link capacity just before.
  const double factor = model ? model->last_factor() : 1.0;
  cap = std::min(cap, flow.spec_flow_cap.bytes_per_second() * factor * flow.hiccup);
  return ByteRate::bytes_per_sec(std::max(cap, 1.0));
}

void Fabric::settle_flows(const std::vector<Flow*>& flows) {
  if (++stamp_ == 0) {
    std::fill(link_stamp_.begin(), link_stamp_.end(), 0u);
    stamp_ = 1;
  }
  unsettled_.clear();
  touched_links_.clear();
  to_reschedule_.clear();
  old_rates_.clear();
  for (Flow* fp : flows) {
    if (!fp->active) continue;
    Flow& f = *fp;
    unsettled_.push_back(&f);
    to_reschedule_.push_back(&f);
    old_rates_.push_back(f.rate.bytes_per_second());
    for (std::size_t l : f.links) {
      if (link_stamp_[l] != stamp_) {
        link_stamp_[l] = stamp_;
        link_avail_[l] = link_capacity_now(l).bytes_per_second();
        // Capacity snapshot for the utilization gauges: link_capacity_now
        // advances the link model's RNG, so it must not be queried a second
        // time at the same timestamp (obs-on/off runs would diverge). Only
        // region-pair links are gauged; node NIC links sit past wan_links_.
        if (obs_ && l < wan_links_) link_cap0_[l] = link_avail_[l];
        link_count_[l] = 0;
        touched_links_.push_back(l);
      }
      ++link_count_[l];
    }
  }
  if (unsettled_.empty()) return;
  if (obs_) {
    obs_->settle_rounds->add();
    obs_->settle_flows->add(unsettled_.size());
  }
  // Bottleneck selection scans links in index order — deterministic across
  // platforms and standard libraries (ties no longer depend on hash order).
  std::sort(touched_links_.begin(), touched_links_.end());

  // Progressive water-filling with per-flow demand ceilings.
  const auto water_fill = [this](std::vector<Flow*>& pool, const std::vector<std::size_t>& links) {
    while (!pool.empty()) {
      double share = std::numeric_limits<double>::infinity();
      std::size_t bottleneck = static_cast<std::size_t>(-1);
      for (std::size_t l : links) {
        if (link_count_[l] <= 0) continue;
        const double s = std::max(link_avail_[l], 0.0) / static_cast<double>(link_count_[l]);
        if (s < share) {
          share = s;
          bottleneck = l;
        }
      }
      SAGE_CHECK(bottleneck != static_cast<std::size_t>(-1));

      const auto settle_flow = [this](Flow* f, double rate) {
        f->rate = ByteRate::bytes_per_sec(rate);
        for (std::size_t l : f->links) {
          link_avail_[l] -= rate;
          --link_count_[l];
        }
      };

      // Demand-limited flows settle below the fair share first.
      still_.clear();
      bool any_demand_limited = false;
      for (Flow* f : pool) {
        const double demand = flow_demand(*f).bytes_per_second();
        if (demand <= share + 1e-9) {
          settle_flow(f, demand);
          any_demand_limited = true;
        } else {
          still_.push_back(f);
        }
      }
      if (any_demand_limited) {
        pool.swap(still_);
        continue;
      }

      // Otherwise the bottleneck link pins everyone crossing it at the share.
      still_.clear();
      for (Flow* f : pool) {
        const bool on_bottleneck =
            f->links[0] == bottleneck || f->links[1] == bottleneck || f->links[2] == bottleneck;
        if (on_bottleneck) {
          settle_flow(f, share);
        } else {
          still_.push_back(f);
        }
      }
      pool.swap(still_);
    }
  };

  if (!grid_refresh_) {
    water_fill(unsettled_, touched_links_);
  } else {
    // Grid mode settles each link-connected component independently, in a
    // canonical order (flow id within a component, link index for the
    // bottleneck scan). The global rounds above pick the fair share off the
    // minimum across ALL touched links, so a whole-fabric settle (refresh
    // tick, chaos mutation) lets an unrelated component decide the round —
    // and hence the floating-point subtraction order on link_avail_ — for
    // this one. Component-local rounds make every flow's settled rate a
    // function of its own component only, which is what makes completion
    // times invariant under re-partitioning flows across lane fabrics.
    if (++visit_epoch_ == 0) {
      std::fill(link_visit_.begin(), link_visit_.end(), 0u);
      for (auto& [id, f] : flows_) f.visit = 0;
      visit_epoch_ = 1;
    }
    for (Flow* seed : unsettled_) {
      if (seed->visit == visit_epoch_) continue;
      comp_flows_.clear();
      comp_links_.clear();
      link_queue_.clear();
      seed->visit = visit_epoch_;
      comp_flows_.push_back(seed);
      for (std::size_t l : seed->links) {
        if (link_visit_[l] != visit_epoch_) {
          link_visit_[l] = visit_epoch_;
          link_queue_.push_back(l);
        }
      }
      for (std::size_t head = 0; head < link_queue_.size(); ++head) {
        const std::size_t l = link_queue_[head];
        comp_links_.push_back(l);
        for (Flow* g : link_flows_[l]) {
          if (g->visit == visit_epoch_) continue;
          g->visit = visit_epoch_;
          comp_flows_.push_back(g);
          for (std::size_t k : g->links) {
            if (link_visit_[k] != visit_epoch_) {
              link_visit_[k] = visit_epoch_;
              link_queue_.push_back(k);
            }
          }
        }
      }
      std::sort(comp_flows_.begin(), comp_flows_.end(),
                [](const Flow* a, const Flow* b) { return a->id < b->id; });
      std::sort(comp_links_.begin(), comp_links_.end());
      water_fill(comp_flows_, comp_links_);
    }
  }

  if (obs_) {
    // Post-settlement utilization of every region-pair link this component
    // touched: allocated / capacity-at-stamp-time.
    for (std::size_t l : touched_links_) {
      if (l >= wan_links_ || link_cap0_[l] <= 0.0) continue;
      const double used = link_cap0_[l] - std::max(link_avail_[l], 0.0);
      link_util_cell(l)->set(used / link_cap0_[l]);
    }
  }

  // Reschedule completions at the new rates — but keep the queued event
  // when the rate is unchanged (within tolerance) and the stored finish
  // time is still exact for the new remaining bytes. Refresh ticks on
  // stable links then leave the event heap untouched.
  const SimTime now = engine_.now();
  for (std::size_t i = 0; i < to_reschedule_.size(); ++i) {
    Flow* f = to_reschedule_[i];
    if (f->rate.is_zero() || f->remaining.is_zero()) {
      f->completion.cancel();
      continue;
    }
    // Floor the ETA at one clock tick: sub-microsecond remainders would
    // otherwise reschedule at +0 forever. One tick at any rate that can
    // produce a sub-tick ETA moves at least the remaining byte.
    const SimDuration eta =
        std::max(f->rate.time_for(f->remaining), SimDuration::micros(1));
    const SimTime target = now + eta;
    if (f->completion.pending() && target == f->completion_at) {
      const double prev = old_rates_[i];
      const double cur = f->rate.bytes_per_second();
      if (std::abs(cur - prev) <= kRateRelTolerance * std::max(prev, cur)) continue;
    }
    f->completion.cancel();
    f->completion_at = target;
    const FlowId fid = f->id;
    f->completion = engine_.schedule_at(target, [this, fid] { on_completion(fid); });
  }
}

void Fabric::on_completion(FlowId id) {
  auto flows = take_ptrs();
  collect_component(id, flows);
  advance_flows(flows, /*complete_hint=*/id);
  settle_flows(flows);
  put_ptrs(std::move(flows));
}

void Fabric::refresh_tick() {
  if (flows_.empty()) return;  // goes dormant; restarted by next start_flow
  auto flows = take_ptrs();
  collect_all_active(flows);
  advance_flows(flows);
  settle_flows(flows);
  put_ptrs(std::move(flows));
  schedule_refresh();
}

void Fabric::ensure_refresh_running() {
  if (refresh_event_.pending()) return;
  schedule_refresh();
}

void Fabric::schedule_refresh() {
  if (!grid_refresh_) {
    refresh_event_ = engine_.schedule_after(refresh_period_, [this] { refresh_tick(); });
    return;
  }
  // Grid mode: next tick at the next absolute multiple of the period, so
  // every fabric sharing the grid advances flows at identical sim times no
  // matter when (or how often) each one woke from dormancy.
  const std::int64_t per = refresh_period_.count_micros();
  const std::int64_t next = (engine_.now().count_micros() / per + 1) * per;
  refresh_event_ = engine_.schedule_at(SimTime::from_micros(next), [this] { refresh_tick(); });
}

std::vector<FlowId> Fabric::take_ids() {
  if (id_pool_.empty()) return {};
  std::vector<FlowId> v = std::move(id_pool_.back());
  id_pool_.pop_back();
  v.clear();
  return v;
}

void Fabric::put_ids(std::vector<FlowId>&& v) { id_pool_.push_back(std::move(v)); }

std::vector<Fabric::Flow*> Fabric::take_ptrs() {
  if (ptr_pool_.empty()) return {};
  std::vector<Flow*> v = std::move(ptr_pool_.back());
  ptr_pool_.pop_back();
  v.clear();
  return v;
}

void Fabric::put_ptrs(std::vector<Flow*>&& v) { ptr_pool_.push_back(std::move(v)); }

}  // namespace sage::cloud
