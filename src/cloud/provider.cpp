#include "cloud/provider.hpp"

#include "common/check.hpp"

namespace sage::cloud {
namespace {

// Multi-tenant CPU wander: small correlated noise, rare deeper dips — the
// "over-tasked CPU" effect the measurements attribute to co-tenants.
VariabilityParams cpu_variability() {
  VariabilityParams p;
  p.diurnal_amplitude = 0.05;
  p.noise_sigma = 0.03;
  p.noise_rho = 0.9;
  p.noise_step = SimDuration::seconds(10);
  p.incidents_per_day = 1.0;
  p.incident_mean_duration = SimDuration::minutes(3);
  p.incident_depth_lo = 0.5;
  p.incident_depth_hi = 0.8;
  return p;
}

}  // namespace

CloudProvider::CloudProvider(sim::SimEngine& engine, Topology topology, std::uint64_t seed)
    : engine_(engine), rng_(seed) {
  fabric_ = std::make_unique<Fabric>(engine_, std::move(topology), rng_.next_u64());
  // Region order defines blob RNG fork order — identical to the historical
  // kAllRegions loop for the default topology.
  const std::size_t n = fabric_->topology().region_count();
  blobs_.reserve(n);
  for (Region r : fabric_->topology().regions()) {
    blobs_.push_back(std::make_unique<BlobService>(engine_, *fabric_, r, pricing_,
                                                   meter_, rng_.next_u64()));
  }
  egress_billed_.assign(n, Bytes::zero());
}

CloudProvider::CloudProvider(sim::SimEngine& engine,
                             std::shared_ptr<const Topology> topology,
                             std::uint64_t seed)
    : engine_(engine), rng_(seed) {
  // Same construction order as the owning ctor, so a shared-topology
  // provider at the same seed is behaviourally identical.
  fabric_ = std::make_unique<Fabric>(engine_, std::move(topology), rng_.next_u64());
  const std::size_t n = fabric_->topology().region_count();
  blobs_.reserve(n);
  for (Region r : fabric_->topology().regions()) {
    blobs_.push_back(std::make_unique<BlobService>(engine_, *fabric_, r, pricing_,
                                                   meter_, rng_.next_u64()));
  }
  egress_billed_.assign(n, Bytes::zero());
}

VmHandle CloudProvider::provision(Region region, VmSize size) {
  const VmSpec spec = vm_spec(size);
  VmHandle handle;
  handle.id = static_cast<VmId>(vms_.size());
  handle.node = fabric_->add_node(region, spec.nic, spec.nic);
  handle.region = region;
  handle.size = size;
  // CPU "capacity" expressed as a rate so the link model can animate it;
  // only the relative factor is ever read back.
  LinkCapacityModel cpu(ByteRate::bytes_per_sec(1e9 * spec.compute_factor),
                        cpu_variability(), rng_.fork());
  vms_.push_back(VmRecord{handle, engine_.now(), true, std::move(cpu)});
  return handle;
}

std::vector<VmHandle> CloudProvider::provision_many(Region region, VmSize size, int count) {
  SAGE_CHECK(count >= 0);
  std::vector<VmHandle> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) out.push_back(provision(region, size));
  return out;
}

void CloudProvider::release(VmId id) {
  SAGE_CHECK(id < vms_.size());
  VmRecord& rec = vms_[id];
  if (!rec.active) return;
  rec.active = false;
  meter_.add_vm_lease(
      pricing_.vm_lease(rec.handle.size, engine_.now() - rec.lease_start));
  fabric_->set_node_failed(rec.handle.node, true);
}

void CloudProvider::release_all() {
  for (const VmRecord& rec : vms_) {
    if (rec.active) release(rec.handle.id);
  }
}

void CloudProvider::fail_vm(VmId id) {
  // Billing-wise identical to a release at the failure instant; the
  // distinction (who initiated it) lives in the layers above.
  release(id);
}

bool CloudProvider::is_active(VmId id) const {
  SAGE_CHECK(id < vms_.size());
  return vms_[id].active;
}

const VmHandle& CloudProvider::vm(VmId id) const {
  SAGE_CHECK(id < vms_.size());
  return vms_[id].handle;
}

std::size_t CloudProvider::active_vm_count() const {
  std::size_t n = 0;
  for (const VmRecord& rec : vms_) {
    if (rec.active) ++n;
  }
  return n;
}

double CloudProvider::vm_cpu_factor(VmId id) {
  SAGE_CHECK(id < vms_.size());
  VmRecord& rec = vms_[id];
  (void)rec.cpu_model.capacity_at(engine_.now());
  return rec.cpu_model.last_factor();
}

FlowId CloudProvider::transfer(VmId src, VmId dst, Bytes size, FlowOptions options,
                               Fabric::CompletionFn on_done) {
  SAGE_CHECK(src < vms_.size() && dst < vms_.size());
  return fabric_->start_flow(vms_[src].handle.node, vms_[dst].handle.node, size, options,
                             std::move(on_done));
}

CostReport CloudProvider::cost_report() {
  // Egress: bill only the delta since the last report (the fabric counter
  // is cumulative).
  for (Region r : fabric_->topology().regions()) {
    const Bytes total = fabric_->egress_from(r);
    const Bytes delta = total - egress_billed_[region_index(r)];
    if (delta > Bytes::zero()) {
      // Egress is cross-region by construction of the fabric counter; the
      // destination region does not affect the 2013 price book.
      meter_.add_egress(pricing_.egress_per_gb(r) * delta.to_gb());
      egress_billed_[region_index(r)] = total;
    }
  }
  for (auto& blob : blobs_) blob->accrue_storage();

  CostReport report = meter_.report();
  // Add the accrual of still-active leases without finalizing them.
  for (const VmRecord& rec : vms_) {
    if (rec.active) {
      report.vm_lease +=
          pricing_.vm_lease(rec.handle.size, engine_.now() - rec.lease_start);
    }
  }
  return report;
}

}  // namespace sage::cloud
