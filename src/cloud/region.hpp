// The simulated cloud's geography: the six 2013-era Azure datacenters the
// SAGE evaluation ran on (North/West Europe, North/South/East/West US).
#pragma once

#include <array>
#include <cstddef>
#include <string_view>

namespace sage::cloud {

enum class Region : std::uint8_t {
  kNorthEU = 0,
  kWestEU = 1,
  kNorthUS = 2,
  kSouthUS = 3,
  kEastUS = 4,
  kWestUS = 5,
};

inline constexpr std::size_t kRegionCount = 6;

inline constexpr std::array<Region, kRegionCount> kAllRegions = {
    Region::kNorthEU, Region::kWestEU, Region::kNorthUS,
    Region::kSouthUS, Region::kEastUS, Region::kWestUS,
};

enum class Continent : std::uint8_t { kEurope, kNorthAmerica };

[[nodiscard]] constexpr std::size_t region_index(Region r) {
  return static_cast<std::size_t>(r);
}

[[nodiscard]] constexpr Continent continent_of(Region r) {
  switch (r) {
    case Region::kNorthEU:
    case Region::kWestEU:
      return Continent::kEurope;
    default:
      return Continent::kNorthAmerica;
  }
}

[[nodiscard]] constexpr std::string_view region_name(Region r) {
  switch (r) {
    case Region::kNorthEU:
      return "North EU";
    case Region::kWestEU:
      return "West EU";
    case Region::kNorthUS:
      return "North US";
    case Region::kSouthUS:
      return "South US";
    case Region::kEastUS:
      return "East US";
    case Region::kWestUS:
      return "West US";
  }
  return "?";
}

[[nodiscard]] constexpr std::string_view region_code(Region r) {
  switch (r) {
    case Region::kNorthEU:
      return "NEU";
    case Region::kWestEU:
      return "WEU";
    case Region::kNorthUS:
      return "NUS";
    case Region::kSouthUS:
      return "SUS";
    case Region::kEastUS:
      return "EUS";
    case Region::kWestUS:
      return "WUS";
  }
  return "?";
}

}  // namespace sage::cloud
