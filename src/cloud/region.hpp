// The simulated cloud's geography. Six 2013-era Azure datacenters
// (North/West Europe, North/South/East/West US) remain the named built-in
// sites of the default calibrated topology, but a Region is now just a
// dense runtime site index: topology generators mint synthetic regions
// (R006, R007, ...) far past the named six, up to tens of thousands of
// sites. Nothing in the data or control plane may assume kRegionCount —
// it is the size of the *named* set, not of the deployment.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace sage::cloud {

enum class Region : std::uint16_t {
  kNorthEU = 0,
  kWestEU = 1,
  kNorthUS = 2,
  kSouthUS = 3,
  kEastUS = 4,
  kWestUS = 5,
};

/// Number of *named* built-in regions (the default calibrated topology).
/// Runtime deployments may span far more sites; size runtime state off
/// Topology::region_count(), never off this constant.
inline constexpr std::size_t kRegionCount = 6;

inline constexpr std::array<Region, kRegionCount> kAllRegions = {
    Region::kNorthEU, Region::kWestEU, Region::kNorthUS,
    Region::kSouthUS, Region::kEastUS, Region::kWestUS,
};

enum class Continent : std::uint8_t { kEurope, kNorthAmerica };

[[nodiscard]] constexpr std::size_t region_index(Region r) {
  return static_cast<std::size_t>(r);
}

/// The i-th region of a deployment (synthetic past the named six).
[[nodiscard]] constexpr Region make_region(std::size_t i) {
  return static_cast<Region>(static_cast<std::uint16_t>(i));
}

/// Continent of the six *named* regions (used by the calibrated default
/// topology's variability model). Synthetic regions carry their continent
/// in the Topology itself, not here.
[[nodiscard]] constexpr Continent continent_of(Region r) {
  switch (r) {
    case Region::kNorthEU:
    case Region::kWestEU:
      return Continent::kEurope;
    default:
      return Continent::kNorthAmerica;
  }
}

namespace detail {
/// Stable interned label for a synthetic region index ("R042"). Thread-safe
/// (harness worlds run on pool threads); returned views never dangle.
[[nodiscard]] std::string_view synthetic_region_label(std::size_t index);
}  // namespace detail

/// Human label for traces / tables. Named regions keep their historical
/// labels; synthetic regions fall back to a generated "R042"-style code so
/// obs labels and --json output stay meaningful at any N.
[[nodiscard]] inline std::string_view region_name(Region r) {
  static constexpr std::array<std::string_view, kRegionCount> kNames = {
      "North EU", "West EU", "North US", "South US", "East US", "West US",
  };
  const std::size_t i = region_index(r);
  if (i < kNames.size()) return kNames[i];
  return detail::synthetic_region_label(i);
}

/// Short code for CSV/compact output ("NEU", ..., "R042" for synthetic).
[[nodiscard]] inline std::string_view region_code(Region r) {
  static constexpr std::array<std::string_view, kRegionCount> kCodes = {
      "NEU", "WEU", "NUS", "SUS", "EUS", "WUS",
  };
  const std::size_t i = region_index(r);
  if (i < kCodes.size()) return kCodes[i];
  return detail::synthetic_region_label(i);
}

}  // namespace sage::cloud
