#include "cloud/topology.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace sage::cloud {
namespace {

// Effective TCP window for a single wide-area flow. 256 KB reproduces the
// observed single-flow rates: ~10 MB/s EU<->EU (near NIC-bound for Small
// VMs), ~2.7 MB/s transatlantic, ~1.8 MB/s to West US — leaving the 4-6x
// headroom between one flow and the NIC that makes parallel sender nodes
// pay, exactly the regime the multi-node experiments explore.
constexpr double kEffectiveWindowBytes = 256.0 * 1024.0;

// Aggregate WAN capacity as a multiple of the per-flow cap: parallelism pays
// until roughly this many flows, then saturates.
constexpr double kSaturationFlows = 8.0;

// One-way latency at or above this reads as a long-haul (transatlantic-
// class) path for the variability model. The calibrated table's
// transatlantic pairs sit at 45–72.5 ms, intra-continent at 12.5–35 ms.
constexpr double kLongHaulMs = 40.0;

VariabilityParams wan_variability(bool long_haul) {
  VariabilityParams p;
  // Longer paths cross more shared infrastructure: noisier, more incidents.
  // Congestion drifts on the tens-of-minutes scale (hourly averages move
  // smoothly); the fast spikes come from per-connection hiccups in the
  // fabric, matching the measured minute-scale vs hourly behaviour.
  p.noise_sigma = long_haul ? 0.065 : 0.05;
  p.noise_rho = 0.97;
  p.noise_step = SimDuration::minutes(10);
  p.diurnal_amplitude = long_haul ? 0.18 : 0.12;
  p.incidents_per_day = long_haul ? 3.0 : 1.5;
  p.incident_mean_duration = SimDuration::minutes(4);
  return p;
}

VariabilityParams intra_variability() {
  VariabilityParams p;
  p.noise_sigma = 0.04;
  p.noise_rho = 0.85;
  p.diurnal_amplitude = 0.05;
  p.incidents_per_day = 0.3;
  p.incident_mean_duration = SimDuration::minutes(2);
  return p;
}

PairLinkSpec wan_spec_ms(double lat_ms, bool stable) {
  PairLinkSpec s;
  s.latency = SimDuration::micros(static_cast<std::int64_t>(lat_ms * 1000.0));
  const double rtt_s = 2.0 * lat_ms / 1000.0;
  const double flow_cap = std::clamp(kEffectiveWindowBytes / rtt_s, 1.5e6, 25.0e6);
  s.per_flow_cap = ByteRate::bytes_per_sec(flow_cap);
  s.capacity = ByteRate::bytes_per_sec(flow_cap * kSaturationFlows);
  s.variability =
      stable ? VariabilityParams::stable() : wan_variability(lat_ms >= kLongHaulMs);
  return s;
}

// The calibrated default's intra-DC spec: per-flow 50 MB/s (>=10x WAN for
// Small-instance NICs), effectively unconstrained aggregate for the
// deployment sizes SAGE uses.
PairLinkSpec calibrated_intra_spec(double lat_ms, bool stable) {
  PairLinkSpec s;
  s.latency = SimDuration::micros(static_cast<std::int64_t>(lat_ms * 1000.0));
  s.per_flow_cap = ByteRate::mb_per_sec(50.0);
  s.capacity = ByteRate::mb_per_sec(2000.0);
  s.variability = stable ? VariabilityParams::stable() : intra_variability();
  return s;
}

}  // namespace

// -- Topology ---------------------------------------------------------------

LinkSlot Topology::edge_index(Region src, Region dst) const {
  const std::size_t s = region_index(src);
  if (s >= rows_.size()) return kNoLink;
  const std::vector<LinkSlot>& row = rows_[s];
  const auto it = std::lower_bound(row.begin(), row.end(), dst,
                                   [this](LinkSlot id, Region d) {
                                     return edges_[static_cast<std::size_t>(id)].dst < d;
                                   });
  if (it == row.end() || edges_[static_cast<std::size_t>(*it)].dst != dst) return kNoLink;
  return *it;
}

const std::vector<LinkSlot>& Topology::out_edges(Region src) const {
  static const std::vector<LinkSlot> kEmpty;
  const std::size_t s = region_index(src);
  return s < rows_.size() ? rows_[s] : kEmpty;
}

const PairLinkSpec& Topology::link(Region src, Region dst) const {
  const LinkSlot id = edge_index(src, dst);
  SAGE_CHECK_MSG(id != kNoLink, "topology declares no link between those regions");
  return edges_[static_cast<std::size_t>(id)].spec;
}

// -- TopologyBuilder --------------------------------------------------------

TopologyBuilder::TopologyBuilder(std::size_t region_count) : n_(region_count) {
  SAGE_CHECK_MSG(n_ >= 1, "a topology needs at least one region");
  SAGE_CHECK_MSG(n_ <= 65536, "Region is a 16-bit site index");
  rows_.resize(n_);
}

TopologyBuilder& TopologyBuilder::add_link(Region src, Region dst,
                                           const PairLinkSpec& spec) {
  const std::size_t s = region_index(src);
  const std::size_t d = region_index(dst);
  SAGE_CHECK_MSG(s < n_ && d < n_, "edge endpoints must be declared regions");
  std::vector<LinkSlot>& row = rows_[s];
  const auto it = std::lower_bound(row.begin(), row.end(), dst,
                                   [this](LinkSlot id, Region to) {
                                     return edges_[static_cast<std::size_t>(id)].dst < to;
                                   });
  SAGE_CHECK_MSG(it == row.end() || edges_[static_cast<std::size_t>(*it)].dst != dst,
                 "directed pair declared twice");
  const LinkSlot id = static_cast<LinkSlot>(edges_.size());
  edges_.push_back(Topology::Edge{src, dst, spec});
  row.insert(it, id);
  return *this;
}

TopologyBuilder& TopologyBuilder::add_symmetric(Region a, Region b,
                                                const PairLinkSpec& spec) {
  add_link(a, b, spec);
  if (a != b) add_link(b, a, spec);
  return *this;
}

bool TopologyBuilder::has_link(Region src, Region dst) const {
  const std::size_t s = region_index(src);
  if (s >= rows_.size()) return false;
  const std::vector<LinkSlot>& row = rows_[s];
  const auto it = std::lower_bound(row.begin(), row.end(), dst,
                                   [this](LinkSlot id, Region to) {
                                     return edges_[static_cast<std::size_t>(id)].dst < to;
                                   });
  return it != row.end() && edges_[static_cast<std::size_t>(*it)].dst == dst;
}

Topology TopologyBuilder::build() {
  Topology t;
  t.n_ = n_;
  t.regions_.reserve(n_);
  for (std::size_t i = 0; i < n_; ++i) t.regions_.push_back(make_region(i));
  t.edges_ = std::move(edges_);
  t.rows_ = std::move(rows_);
  n_ = 0;
  return t;
}

// -- Spec helpers -----------------------------------------------------------

PairLinkSpec wan_spec_for_latency(SimDuration one_way, bool long_haul, bool stable) {
  PairLinkSpec s;
  s.latency = one_way;
  const double rtt_s = 2.0 * one_way.to_seconds();
  SAGE_CHECK_MSG(rtt_s > 0.0, "WAN latency must be positive");
  const double flow_cap = std::clamp(kEffectiveWindowBytes / rtt_s, 1.5e6, 25.0e6);
  s.per_flow_cap = ByteRate::bytes_per_sec(flow_cap);
  s.capacity = ByteRate::bytes_per_sec(flow_cap * kSaturationFlows);
  s.variability = stable ? VariabilityParams::stable() : wan_variability(long_haul);
  return s;
}

PairLinkSpec intra_dc_spec(ByteRate wan_per_flow_ceiling, bool stable) {
  PairLinkSpec s;
  s.latency = SimDuration::micros(1000);
  // Intra-DC stays >= 10x the fastest WAN path of the topology, both
  // per-flow and in aggregate, matching the calibration target.
  const double per_flow =
      std::max(50.0e6, 10.0 * wan_per_flow_ceiling.bytes_per_second());
  s.per_flow_cap = ByteRate::bytes_per_sec(per_flow);
  s.capacity = ByteRate::bytes_per_sec(per_flow * 40.0);
  s.variability = stable ? VariabilityParams::stable() : intra_variability();
  return s;
}

// -- Measured-matrix import (the calibrated default) ------------------------

const std::vector<std::vector<double>>& default_latency_ms() {
  // One-way latencies in milliseconds between the six sites. Symmetric;
  // diagonal is the intra-DC latency.
  static const std::vector<std::vector<double>> kLatencyMs = {
      //            NEU   WEU   NUS   SUS   EUS   WUS
      /* NEU */ {   1.0, 12.5, 47.5, 55.0, 45.0, 70.0},
      /* WEU */ {  12.5,  1.0, 50.0, 52.5, 47.5, 72.5},
      /* NUS */ {  47.5, 50.0,  1.0, 22.5, 12.5, 30.0},
      /* SUS */ {  55.0, 52.5, 22.5,  1.0, 17.5, 22.5},
      /* EUS */ {  45.0, 47.5, 12.5, 17.5,  1.0, 35.0},
      /* WUS */ {  70.0, 72.5, 30.0, 22.5, 35.0,  1.0},
  };
  return kLatencyMs;
}

Topology measured_topology(const std::vector<std::vector<double>>& latency_ms,
                           bool stable) {
  const std::size_t n = latency_ms.size();
  TopologyBuilder b(n);
  // Row-major enumeration (diagonal included): for the six named regions
  // the edge ids are exactly the historical src*6+dst link slots, keeping
  // lazy capacity-model RNG fork order — and thus every figure bench —
  // byte-identical to the dense representation.
  for (std::size_t i = 0; i < n; ++i) {
    SAGE_CHECK_MSG(latency_ms[i].size() == n, "latency table must be square");
    for (std::size_t j = 0; j < n; ++j) {
      const double lat_ms = latency_ms[i][j];
      b.add_link(make_region(i), make_region(j),
                 i == j ? calibrated_intra_spec(lat_ms, stable)
                        : wan_spec_ms(lat_ms, stable));
    }
  }
  return b.build();
}

Topology default_topology() { return measured_topology(default_latency_ms(), false); }

Topology stable_topology() { return measured_topology(default_latency_ms(), true); }

// -- Generators -------------------------------------------------------------

namespace {

// Deterministic per-pair latency jitter so synthetic links are not all
// identical (distinct bottlenecks make widest-path choices meaningful).
double pair_jitter_ms(std::size_t i, std::size_t j) {
  return static_cast<double>((i * 31 + j * 17) % 10);
}

}  // namespace

Topology ring_of_continents(std::size_t regions, std::size_t continents, bool stable) {
  SAGE_CHECK_MSG(regions >= 2, "ring topology needs at least two regions");
  SAGE_CHECK_MSG(continents >= 1 && continents <= regions,
                 "need 1..regions continents");
  TopologyBuilder b(regions);
  const auto continent_of_site = [&](std::size_t i) {
    return i * continents / regions;  // contiguous blocks
  };
  const auto gateway_of = [&](std::size_t c) {
    // First site of the continent's block (smallest i with continent c).
    std::size_t lo = 0;
    while (continent_of_site(lo) != c) ++lo;
    return lo;
  };

  constexpr double kIntraContinentMs = 15.0;
  constexpr double kRingBaseMs = 45.0;
  // Fastest WAN path: intra-continent at the base latency.
  const PairLinkSpec probe = wan_spec_for_latency(
      SimDuration::micros(static_cast<std::int64_t>(kIntraContinentMs * 1000.0)),
      /*long_haul=*/false, stable);

  for (std::size_t i = 0; i < regions; ++i) {
    b.add_link(make_region(i), make_region(i), intra_dc_spec(probe.per_flow_cap, stable));
  }
  // Intra-continent full mesh.
  for (std::size_t i = 0; i < regions; ++i) {
    for (std::size_t j = i + 1; j < regions; ++j) {
      if (continent_of_site(i) != continent_of_site(j)) continue;
      const double ms = kIntraContinentMs + pair_jitter_ms(i, j);
      b.add_symmetric(make_region(i), make_region(j),
                      wan_spec_for_latency(
                          SimDuration::micros(static_cast<std::int64_t>(ms * 1000.0)),
                          /*long_haul=*/false, stable));
    }
  }
  // Ring of continents: gateway site of c <-> gateway site of c+1.
  for (std::size_t c = 0; c < continents; ++c) {
    const std::size_t next = (c + 1) % continents;
    if (next == c) break;  // single continent: the mesh already connects it
    const Region g1 = make_region(gateway_of(c));
    const Region g2 = make_region(gateway_of(next));
    if (g1 == g2 || b.has_link(g1, g2)) continue;
    const double ms = kRingBaseMs + pair_jitter_ms(c, next);
    b.add_symmetric(g1, g2,
                    wan_spec_for_latency(
                        SimDuration::micros(static_cast<std::int64_t>(ms * 1000.0)),
                        /*long_haul=*/true, stable));
  }
  return b.build();
}

Topology hub_and_spoke(std::size_t regions, bool stable) {
  SAGE_CHECK_MSG(regions >= 2, "hub-and-spoke needs at least two regions");
  TopologyBuilder b(regions);
  constexpr double kSpokeBaseMs = 20.0;
  const PairLinkSpec probe = wan_spec_for_latency(
      SimDuration::micros(static_cast<std::int64_t>(kSpokeBaseMs * 1000.0)),
      /*long_haul=*/false, stable);
  for (std::size_t i = 0; i < regions; ++i) {
    b.add_link(make_region(i), make_region(i), intra_dc_spec(probe.per_flow_cap, stable));
  }
  const Region hub = make_region(0);
  for (std::size_t i = 1; i < regions; ++i) {
    const double ms = kSpokeBaseMs + static_cast<double>(i % 7) * 7.5;
    b.add_symmetric(hub, make_region(i),
                    wan_spec_for_latency(
                        SimDuration::micros(static_cast<std::int64_t>(ms * 1000.0)),
                        /*long_haul=*/ms >= 40.0, stable));
  }
  return b.build();
}

ShardPlan plan_shards(const Topology& topo, std::size_t shards) {
  const std::size_t n = topo.region_count();
  SAGE_CHECK_MSG(n >= 1, "cannot shard an empty topology");
  ShardPlan plan;
  plan.shards = std::min(std::max<std::size_t>(shards, 1), n);
  plan.shard_of.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Contiguous blocks, never-empty by construction (i*S/N is surjective
    // onto [0,S) when S <= N); mirrors ring_of_continents' continent_of_site
    // so shard cuts land on continent boundaries when S divides C.
    plan.shard_of[i] = static_cast<std::uint32_t>(i * plan.shards / n);
  }
  plan.lookahead = SimDuration::max();
  for (const Topology::Edge& e : topo.edges()) {
    if (plan.shard(e.src) == plan.shard(e.dst)) continue;
    if (e.spec.latency < plan.lookahead) plan.lookahead = e.spec.latency;
  }
  return plan;
}

std::vector<std::uint32_t> edge_owners(const Topology& topo, const ShardPlan& plan) {
  SAGE_CHECK(plan.shard_of.size() == topo.region_count());
  std::vector<std::uint32_t> owners;
  owners.reserve(topo.edges().size());
  for (const Topology::Edge& e : topo.edges()) owners.push_back(plan.shard(e.src));
  return owners;
}

}  // namespace sage::cloud
