#include "cloud/topology.hpp"

#include <algorithm>

namespace sage::cloud {
namespace {

// One-way latencies in milliseconds between the six sites. Symmetric;
// diagonal is the intra-DC latency.
constexpr double kLatencyMs[kRegionCount][kRegionCount] = {
    //            NEU   WEU   NUS   SUS   EUS   WUS
    /* NEU */ {   1.0, 12.5, 47.5, 55.0, 45.0, 70.0},
    /* WEU */ {  12.5,  1.0, 50.0, 52.5, 47.5, 72.5},
    /* NUS */ {  47.5, 50.0,  1.0, 22.5, 12.5, 30.0},
    /* SUS */ {  55.0, 52.5, 22.5,  1.0, 17.5, 22.5},
    /* EUS */ {  45.0, 47.5, 12.5, 17.5,  1.0, 35.0},
    /* WUS */ {  70.0, 72.5, 30.0, 22.5, 35.0,  1.0},
};

// Effective TCP window for a single wide-area flow. 256 KB reproduces the
// observed single-flow rates: ~10 MB/s EU<->EU (near NIC-bound for Small
// VMs), ~2.7 MB/s transatlantic, ~1.8 MB/s to West US — leaving the 4-6x
// headroom between one flow and the NIC that makes parallel sender nodes
// pay, exactly the regime the multi-node experiments explore.
constexpr double kEffectiveWindowBytes = 256.0 * 1024.0;

// Aggregate WAN capacity as a multiple of the per-flow cap: parallelism pays
// until roughly this many flows, then saturates.
constexpr double kSaturationFlows = 8.0;

VariabilityParams wan_variability(Region a, Region b) {
  VariabilityParams p;
  const bool transatlantic = continent_of(a) != continent_of(b);
  // Longer paths cross more shared infrastructure: noisier, more incidents.
  // Congestion drifts on the tens-of-minutes scale (hourly averages move
  // smoothly); the fast spikes come from per-connection hiccups in the
  // fabric, matching the measured minute-scale vs hourly behaviour.
  p.noise_sigma = transatlantic ? 0.065 : 0.05;
  p.noise_rho = 0.97;
  p.noise_step = SimDuration::minutes(10);
  p.diurnal_amplitude = transatlantic ? 0.18 : 0.12;
  p.incidents_per_day = transatlantic ? 3.0 : 1.5;
  p.incident_mean_duration = SimDuration::minutes(4);
  return p;
}

VariabilityParams intra_variability() {
  VariabilityParams p;
  p.noise_sigma = 0.04;
  p.noise_rho = 0.85;
  p.diurnal_amplitude = 0.05;
  p.incidents_per_day = 0.3;
  p.incident_mean_duration = SimDuration::minutes(2);
  return p;
}

Topology build(bool stable) {
  Topology t;
  for (Region a : kAllRegions) {
    for (Region b : kAllRegions) {
      PairLinkSpec& s = t.specs[region_index(a)][region_index(b)];
      const double lat_ms = kLatencyMs[region_index(a)][region_index(b)];
      s.latency = SimDuration::micros(static_cast<std::int64_t>(lat_ms * 1000.0));
      if (a == b) {
        // Intra-DC: per-flow 50 MB/s (>=10x WAN), effectively unconstrained
        // aggregate for the deployment sizes SAGE uses.
        s.per_flow_cap = ByteRate::mb_per_sec(50.0);
        s.capacity = ByteRate::mb_per_sec(2000.0);
        s.variability = stable ? VariabilityParams::stable() : intra_variability();
      } else {
        const double rtt_s = 2.0 * lat_ms / 1000.0;
        const double flow_cap = std::clamp(kEffectiveWindowBytes / rtt_s, 1.5e6, 25.0e6);
        s.per_flow_cap = ByteRate::bytes_per_sec(flow_cap);
        s.capacity = ByteRate::bytes_per_sec(flow_cap * kSaturationFlows);
        s.variability = stable ? VariabilityParams::stable() : wan_variability(a, b);
      }
    }
  }
  return t;
}

}  // namespace

Topology default_topology() { return build(/*stable=*/false); }

Topology stable_topology() { return build(/*stable=*/true); }

}  // namespace sage::cloud
