#include "cloud/blob.hpp"

#include <cmath>

#include "common/check.hpp"

namespace sage::cloud {
namespace {

// Per-operation calibration constants (see header).
constexpr double kPutBaseMbPerSec = 6.0;
constexpr double kGetBaseMbPerSec = 8.0;
constexpr double kOpRateLogSigma = 0.35;
const SimDuration kHttpEnvelope = SimDuration::millis(60);
// A single HTTP/REST stream over a high-RTT wide-area path achieves only a
// fraction of what raw TCP on the same route can: request framing, chunked
// encoding stalls and server-side pacing cost roughly 45% of the per-flow
// ceiling (calibrated to the observed blob-staging vs direct-TCP gap).
constexpr double kRemoteRestEfficiency = 0.55;

// Endpoint NIC: wide enough that the per-op ceiling, not the endpoint,
// limits individual operations, but a real aggregate bound still exists.
const ByteRate kEndpointNic = ByteRate::mb_per_sec(400.0);

}  // namespace

BlobService::BlobService(sim::SimEngine& engine, Fabric& fabric, Region region,
                         const PricingModel& pricing, CostMeter& meter, std::uint64_t seed)
    : engine_(engine),
      fabric_(fabric),
      region_(region),
      pricing_(pricing),
      meter_(meter),
      rng_(seed) {
  endpoint_ = fabric_.add_node(region, kEndpointNic, kEndpointNic);
}

ByteRate BlobService::draw_op_rate(double base_mb_per_sec) {
  // Lognormal spread around the base: median == base, heavy right tail of
  // slow operations is produced by the exp of negative normals being
  // bounded below (clamped to 10% of base).
  const double factor = std::exp(rng_.normal(0.0, kOpRateLogSigma));
  const double rate = std::max(base_mb_per_sec * factor, base_mb_per_sec * 0.1);
  return ByteRate::mb_per_sec(rate);
}

ByteRate BlobService::op_cap(NodeId client, double base_mb_per_sec) {
  // One lognormal service-quality draw scales whichever ceiling applies —
  // blob staging is observed to be *more* variable than raw TCP, local or
  // remote.
  const double quality =
      std::max(std::exp(rng_.normal(0.0, kOpRateLogSigma)), 0.1);
  ByteRate cap = ByteRate::mb_per_sec(base_mb_per_sec * quality);
  const Region client_region = fabric_.node_region(client);
  if (client_region != region_) {
    const ByteRate rest_ceiling =
        fabric_.topology().link(client_region, region_).per_flow_cap *
        (kRemoteRestEfficiency * quality);
    if (rest_ceiling < cap) cap = rest_ceiling;
  }
  return cap;
}

void BlobService::put(NodeId src, const std::string& name, Bytes size, OpCallback done) {
  SAGE_CHECK(done != nullptr);
  meter_.add_blob_transaction(pricing_.blob_transaction());
  FlowOptions options;
  options.demand_cap = op_cap(src, kPutBaseMbPerSec);
  options.extra_setup_latency = kHttpEnvelope;
  const SimTime began = engine_.now();
  fabric_.start_flow(src, endpoint_, size, options,
                     [this, name, size, began, done](const FlowResult& r) {
                       if (r.ok()) {
                         // Overwrite: finalize the old object's storage span.
                         remove(name);
                         objects_[name] = StoredObject{size, engine_.now()};
                       }
                       done(BlobOpResult{r.ok(), engine_.now() - began});
                     });
}

void BlobService::get(NodeId dst, const std::string& name, OpCallback done) {
  SAGE_CHECK(done != nullptr);
  meter_.add_blob_transaction(pricing_.blob_transaction());
  auto it = objects_.find(name);
  if (it == objects_.end()) {
    engine_.schedule_after(kHttpEnvelope, [done, this] {
      done(BlobOpResult{false, kHttpEnvelope});
    });
    return;
  }
  FlowOptions options;
  options.demand_cap = op_cap(dst, kGetBaseMbPerSec);
  options.extra_setup_latency = kHttpEnvelope;
  const SimTime began = engine_.now();
  fabric_.start_flow(endpoint_, dst, it->second.size, options,
                     [this, began, done](const FlowResult& r) {
                       done(BlobOpResult{r.ok(), engine_.now() - began});
                     });
}

void BlobService::remove(const std::string& name) {
  auto it = objects_.find(name);
  if (it == objects_.end()) return;
  const SimDuration held = engine_.now() - it->second.charged_from;
  meter_.add_blob_storage(pricing_.blob_storage(it->second.size, held));
  objects_.erase(it);
}

bool BlobService::exists(const std::string& name) const { return objects_.count(name) != 0; }

Bytes BlobService::object_size(const std::string& name) const {
  auto it = objects_.find(name);
  SAGE_CHECK_MSG(it != objects_.end(), "object not found: " + name);
  return it->second.size;
}

void BlobService::accrue_storage() {
  const SimTime now = engine_.now();
  for (auto& [name, obj] : objects_) {
    const SimDuration held = now - obj.charged_from;
    meter_.add_blob_storage(pricing_.blob_storage(obj.size, held));
    obj.charged_from = now;
  }
}

}  // namespace sage::cloud
