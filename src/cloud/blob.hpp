// Simulated object (blob) storage service — the Azure Blobs substitute.
//
// One service instance exists per region. Operations move bytes through the
// fabric between the caller's node and the region's storage endpoint, so a
// put from a remote region crosses the WAN exactly like a VM-to-VM flow.
// Per-operation behaviour calibrated to 2013-era blob measurements:
//
//   * fixed HTTP/REST envelope latency per operation (~60 ms);
//   * per-operation throughput ceiling (~6 MB/s puts, ~8 MB/s gets) with a
//     wide lognormal spread — blob staging showed markedly higher variance
//     than raw TCP in the multi-site measurements;
//   * capacity billed per GB-month, every operation billed per transaction.
//
// Objects are metadata-only (name, size, timestamps): the simulation cares
// about movement and cost, not payload bytes.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>

#include "cloud/cost.hpp"
#include "cloud/fabric.hpp"
#include "cloud/pricing.hpp"
#include "cloud/region.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "simcore/engine.hpp"

namespace sage::cloud {

struct BlobOpResult {
  bool ok;
  SimDuration elapsed;
};

class BlobService {
 public:
  using OpCallback = std::function<void(const BlobOpResult&)>;

  BlobService(sim::SimEngine& engine, Fabric& fabric, Region region,
              const PricingModel& pricing, CostMeter& meter, std::uint64_t seed);

  [[nodiscard]] Region region() const { return region_; }

  /// Upload `size` bytes from `src` as object `name` (overwrites).
  void put(NodeId src, const std::string& name, Bytes size, OpCallback done);

  /// Download object `name` to `dst`. Fails if the object does not exist.
  void get(NodeId dst, const std::string& name, OpCallback done);

  /// Delete an object; finalizes its storage charge. No-op if absent.
  void remove(const std::string& name);

  [[nodiscard]] bool exists(const std::string& name) const;
  [[nodiscard]] Bytes object_size(const std::string& name) const;
  [[nodiscard]] std::size_t object_count() const { return objects_.size(); }

  /// Accrue storage charges for all live objects up to now. Called by the
  /// provider before rendering a cost report.
  void accrue_storage();

 private:
  ByteRate draw_op_rate(double base_mb_per_sec);
  /// Per-operation rate ceiling for a client node, including the REST
  /// single-stream penalty when the client is in another region.
  ByteRate op_cap(NodeId client, double base_mb_per_sec);

  sim::SimEngine& engine_;
  Fabric& fabric_;
  Region region_;
  const PricingModel& pricing_;
  CostMeter& meter_;
  Rng rng_;
  NodeId endpoint_;

  struct StoredObject {
    Bytes size;
    SimTime charged_from;
  };
  std::unordered_map<std::string, StoredObject> objects_;
};

}  // namespace sage::cloud
