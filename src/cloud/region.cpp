#include "cloud/region.hpp"

#include <cstdio>
#include <deque>
#include <mutex>
#include <string>
#include <unordered_map>

namespace sage::cloud::detail {

std::string_view synthetic_region_label(std::size_t index) {
  // Harness worlds run on pool threads and all share this intern table;
  // labels are only built on slow paths (obs cells, table rendering), so a
  // plain mutex is fine. deque keeps addresses stable across growth.
  static std::mutex mu;
  static std::deque<std::string> storage;
  static std::unordered_map<std::size_t, std::string_view> by_index;
  std::lock_guard<std::mutex> lock(mu);
  auto it = by_index.find(index);
  if (it != by_index.end()) return it->second;
  char buf[24];
  std::snprintf(buf, sizeof(buf), "R%03zu", index);
  storage.emplace_back(buf);
  const std::string_view view = storage.back();
  by_index.emplace(index, view);
  return view;
}

}  // namespace sage::cloud::detail
