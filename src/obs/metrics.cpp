#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/check.hpp"
#include "common/hash.hpp"

namespace sage::obs {
namespace {

// Shortest round-trippable spelling: %.17g is exact for doubles but ugly for
// the common case (integral byte counts, 0.5-style ratios); try increasing
// precision until the value round-trips.
std::string fmt_double(double v) {
  char buf[64];
  for (int prec = 6; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

std::string MetricsRegistry::make_key(std::string_view name, const LabelSet& labels) {
  std::string key(name);
  if (labels.empty()) return key;
  LabelSet sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  key += '{';
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (i) key += ',';
    key += sorted[i].first;
    key += '=';
    key += sorted[i].second;
  }
  key += '}';
  return key;
}

MetricsRegistry::Entry* MetricsRegistry::resolve(const std::string& key, Kind kind) {
  const auto [slot, inserted] = index_.find_or_insert(hash_string(key));
  if (!inserted) {
    Entry& hit = entries_[*slot];
    if (hit.key != key) {
      // Hash collision between distinct keys: fall back to the linear
      // overflow list (create on miss).
      for (std::uint32_t idx : overflow_) {
        if (entries_[idx].key == key) {
          SAGE_CHECK(entries_[idx].kind == kind);
          return &entries_[idx];
        }
      }
      overflow_.push_back(static_cast<std::uint32_t>(entries_.size()));
    } else {
      SAGE_CHECK(hit.kind == kind);
      return &hit;
    }
  } else {
    *slot = static_cast<std::uint32_t>(entries_.size());
  }
  Entry& entry = entries_.emplace_back();
  entry.key = key;
  entry.kind = kind;
  return &entry;
}

const MetricsRegistry::Entry* MetricsRegistry::lookup(const std::string& key) const {
  const std::uint32_t* slot = index_.find(hash_string(key));
  if (slot == nullptr) return nullptr;
  const Entry& hit = entries_[*slot];
  if (hit.key == key) return &hit;
  for (std::uint32_t idx : overflow_) {
    if (entries_[idx].key == key) return &entries_[idx];
  }
  return nullptr;
}

Counter* MetricsRegistry::counter(std::string_view name, const LabelSet& labels) {
  return &resolve(make_key(name, labels), Kind::kCounter)->counter;
}

Gauge* MetricsRegistry::gauge(std::string_view name, const LabelSet& labels) {
  return &resolve(make_key(name, labels), Kind::kGauge)->gauge;
}

Histogram* MetricsRegistry::histogram(std::string_view name, std::vector<double> bounds,
                                      const LabelSet& labels) {
  SAGE_CHECK(std::is_sorted(bounds.begin(), bounds.end()));
  Entry* entry = resolve(make_key(name, labels), Kind::kHistogram);
  if (entry->histogram.counts_.empty()) {
    entry->histogram.bounds_ = std::move(bounds);
    entry->histogram.counts_.assign(entry->histogram.bounds_.size() + 1, 0);
  } else {
    SAGE_CHECK(entry->histogram.bounds_ == bounds);
  }
  return &entry->histogram;
}

const Counter* MetricsRegistry::find_counter(std::string_view name,
                                             const LabelSet& labels) const {
  const Entry* e = lookup(make_key(name, labels));
  return (e != nullptr && e->kind == Kind::kCounter) ? &e->counter : nullptr;
}

const Gauge* MetricsRegistry::find_gauge(std::string_view name,
                                         const LabelSet& labels) const {
  const Entry* e = lookup(make_key(name, labels));
  return (e != nullptr && e->kind == Kind::kGauge) ? &e->gauge : nullptr;
}

const Histogram* MetricsRegistry::find_histogram(std::string_view name,
                                                 const LabelSet& labels) const {
  const Entry* e = lookup(make_key(name, labels));
  return (e != nullptr && e->kind == Kind::kHistogram) ? &e->histogram : nullptr;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  // Worst case every incoming key is new: one up-front reserve instead of
  // log2(n) incremental rehashes of the key index per merged World.
  reserve(entries_.size() + other.entries_.size());
  for (const Entry& src : other.entries_) {
    Entry* dst = resolve(src.key, src.kind);
    switch (src.kind) {
      case Kind::kCounter:
        dst->counter.value_ += src.counter.value_;
        break;
      case Kind::kGauge:
        dst->gauge.value_ = src.gauge.value_;
        break;
      case Kind::kHistogram: {
        Histogram& h = dst->histogram;
        if (h.counts_.empty()) {
          h.bounds_ = src.histogram.bounds_;
          h.counts_.assign(h.bounds_.size() + 1, 0);
        }
        SAGE_CHECK(h.bounds_ == src.histogram.bounds_);
        for (std::size_t i = 0; i < h.counts_.size(); ++i) {
          h.counts_[i] += src.histogram.counts_[i];
        }
        h.sum_ += src.histogram.sum_;
        h.count_ += src.histogram.count_;
        break;
      }
    }
  }
}

std::string MetricsRegistry::snapshot_json() const {
  std::vector<const Entry*> sorted;
  sorted.reserve(entries_.size());
  for (const Entry& e : entries_) sorted.push_back(&e);
  std::sort(sorted.begin(), sorted.end(),
            [](const Entry* a, const Entry* b) { return a->key < b->key; });

  std::string out = "{";
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const Entry& e = *sorted[i];
    if (i) out += ',';
    append_json_string(out, e.key);
    out += ':';
    switch (e.kind) {
      case Kind::kCounter:
        out += std::to_string(e.counter.value_);
        break;
      case Kind::kGauge:
        out += fmt_double(e.gauge.value_);
        break;
      case Kind::kHistogram: {
        const Histogram& h = e.histogram;
        out += "{\"count\":" + std::to_string(h.count_);
        out += ",\"sum\":" + fmt_double(h.sum_);
        out += ",\"bounds\":[";
        for (std::size_t j = 0; j < h.bounds_.size(); ++j) {
          if (j) out += ',';
          out += fmt_double(h.bounds_[j]);
        }
        out += "],\"buckets\":[";
        for (std::size_t j = 0; j < h.counts_.size(); ++j) {
          if (j) out += ',';
          out += std::to_string(h.counts_[j]);
        }
        out += "]}";
        break;
      }
    }
  }
  out += '}';
  return out;
}

std::string MetricsRegistry::snapshot_csv() const {
  std::vector<const Entry*> sorted;
  sorted.reserve(entries_.size());
  for (const Entry& e : entries_) sorted.push_back(&e);
  std::sort(sorted.begin(), sorted.end(),
            [](const Entry* a, const Entry* b) { return a->key < b->key; });

  std::string out = "key,kind,value\n";
  for (const Entry* ep : sorted) {
    const Entry& e = *ep;
    // Keys contain commas inside {...}; quote the field.
    out += '"';
    for (char c : e.key) {
      if (c == '"') out += '"';
      out += c;
    }
    out += '"';
    switch (e.kind) {
      case Kind::kCounter:
        out += ",counter," + std::to_string(e.counter.value_);
        break;
      case Kind::kGauge:
        out += ",gauge," + fmt_double(e.gauge.value_);
        break;
      case Kind::kHistogram:
        out += ",histogram," + std::to_string(e.histogram.count_);
        break;
    }
    out += '\n';
  }
  return out;
}

}  // namespace sage::obs
