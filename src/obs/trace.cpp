#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>

#include "common/check.hpp"

namespace sage::obs {

TraceSink::TraceSink(std::size_t capacity) {
  SAGE_CHECK(capacity > 0);
  ring_.resize(capacity);
  names_.emplace_back("?");  // index 0: never handed out by intern()
}

std::uint32_t TraceSink::intern(std::string_view name) {
  for (std::size_t i = 1; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<std::uint32_t>(i);
  }
  names_.emplace_back(name);
  return static_cast<std::uint32_t>(names_.size() - 1);
}

SpanId TraceSink::begin(std::uint32_t name, SimTime at, SpanId parent, double a,
                        double b) {
  const SpanId id = next_id_++;
  Span& s = ring_[(id - 1) % ring_.size()];
  s = Span{};
  s.id = id;
  s.parent = parent;
  s.name = name;
  s.begin = at;
  s.end = at;
  s.a = a;
  s.b = b;
  return id;
}

void TraceSink::end(SpanId id, SimTime at, double a, double b) {
  Span* s = find(id);
  if (s == nullptr) return;  // already overwritten by the ring
  s->end = at;
  s->closed = true;
  if (a != 0.0) s->a = a;
  if (b != 0.0) s->b = b;
}

SpanId TraceSink::instant(std::uint32_t name, SimTime at, SpanId parent, double a,
                          double b) {
  const SpanId id = begin(name, at, parent, a, b);
  Span& s = ring_[(id - 1) % ring_.size()];
  s.closed = true;
  s.instant = true;
  return id;
}

Span* TraceSink::find(SpanId id) {
  if (id == kNoSpan || id >= next_id_) return nullptr;
  Span& s = ring_[(id - 1) % ring_.size()];
  return s.id == id ? &s : nullptr;
}

const Span* TraceSink::find(SpanId id) const {
  return const_cast<TraceSink*>(this)->find(id);
}

std::vector<Span> TraceSink::spans() const {
  std::vector<Span> out;
  for (const Span& s : ring_) {
    if (s.id != kNoSpan) out.push_back(s);
  }
  std::sort(out.begin(), out.end(),
            [](const Span& x, const Span& y) { return x.id < y.id; });
  return out;
}

std::string TraceSink::serialize() const {
  const std::vector<Span> ordered = spans();
  std::string out;
  char buf[160];
  for (const Span& s : ordered) {
    int depth = 0;
    for (const Span* p = find(s.parent); p != nullptr && depth < 32;
         p = find(p->parent)) {
      ++depth;
    }
    for (int i = 0; i < depth; ++i) out += "  ";
    if (s.instant) {
      std::snprintf(buf, sizeof(buf), "@ %s t=%.6f", names_[s.name].c_str(),
                    s.begin.to_seconds());
    } else if (s.closed) {
      std::snprintf(buf, sizeof(buf), "- %s t=%.6f dur=%.6f",
                    names_[s.name].c_str(), s.begin.to_seconds(),
                    (s.end - s.begin).to_seconds());
    } else {
      std::snprintf(buf, sizeof(buf), "- %s t=%.6f open", names_[s.name].c_str(),
                    s.begin.to_seconds());
    }
    out += buf;
    if (s.a != 0.0 || s.b != 0.0) {
      std::snprintf(buf, sizeof(buf), " a=%g b=%g", s.a, s.b);
      out += buf;
    }
    out += '\n';
  }
  return out;
}

}  // namespace sage::obs
