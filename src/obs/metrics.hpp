// Sim-time metrics registry: counters, gauges and fixed-bucket histograms
// keyed by interned (name, label-set) pairs.
//
// Design constraints, in order:
//   * zero overhead when observability is disabled — components cache raw
//     cell pointers at construction and guard every touch with one null
//     check, so the disabled path is a predictable untaken branch;
//   * deterministic output — snapshots render entries sorted by full key,
//     values come only from simulated quantities, so two runs of the same
//     seed produce byte-identical snapshots at any harness thread count;
//   * single-threaded per registry — one registry belongs to one World
//     (one SimEngine); the parallel scenario harness merges per-World
//     registries on the main thread (see merge()).
//
// Interning reuses common/flat_map.hpp: the full key string hashes to a
// 64-bit slot; the (astronomically unlikely) colliding key falls back to a
// linear overflow list, so lookups stay correct without a second hash map.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/flat_map.hpp"

namespace sage::obs {

/// Monotonically increasing event count. Cells are owned by the registry
/// and stay valid for its lifetime (deque storage, no reallocation).
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_ += n; }
  [[nodiscard]] std::uint64_t value() const { return value_; }

 private:
  friend class MetricsRegistry;
  std::uint64_t value_ = 0;
};

/// Last-written instantaneous value (queue depth, utilization, watermark).
class Gauge {
 public:
  void set(double v) { value_ = v; }
  void add(double v) { value_ += v; }
  [[nodiscard]] double value() const { return value_; }

 private:
  friend class MetricsRegistry;
  double value_ = 0.0;
};

/// Fixed-bucket histogram: `bounds` are inclusive upper bounds in ascending
/// order, with an implicit +inf bucket at the end. Bounds are fixed at
/// creation so merge() across Worlds is bucket-wise addition.
class Histogram {
 public:
  void observe(double v) {
    std::size_t i = 0;
    while (i < bounds_.size() && v > bounds_[i]) ++i;
    ++counts_[i];
    sum_ += v;
    ++count_;
  }
  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  [[nodiscard]] const std::vector<std::uint64_t>& counts() const { return counts_; }

 private:
  friend class MetricsRegistry;
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;  // bounds.size() + 1 (last = +inf)
  double sum_ = 0.0;
  std::uint64_t count_ = 0;
};

/// One label dimension, e.g. {"link", "NorthEU->NorthUS"}.
using Label = std::pair<std::string, std::string>;
using LabelSet = std::vector<Label>;

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create. The returned cell pointer is stable for the registry's
  /// lifetime; hot paths resolve once and keep the pointer. Re-requesting an
  /// existing key with a different instrument kind is a checked error.
  Counter* counter(std::string_view name, const LabelSet& labels = {});
  Gauge* gauge(std::string_view name, const LabelSet& labels = {});
  Histogram* histogram(std::string_view name, std::vector<double> bounds,
                       const LabelSet& labels = {});

  /// Existing cell or nullptr — used by tests and snapshot consumers that
  /// must not create empty series.
  [[nodiscard]] const Counter* find_counter(std::string_view name,
                                            const LabelSet& labels = {}) const;
  [[nodiscard]] const Gauge* find_gauge(std::string_view name,
                                        const LabelSet& labels = {}) const;
  [[nodiscard]] const Histogram* find_histogram(std::string_view name,
                                                const LabelSet& labels = {}) const;

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }

  /// Presize the interned-key index for `n` total entries (no-op when
  /// already large enough). merge() calls this with the source registry's
  /// size so high-task-count harness merges never rehash mid-fold.
  void reserve(std::size_t n) { index_.reserve(n); }

  /// Fold another World's registry into this one: counters and histogram
  /// buckets add, gauges take the incoming value (last write wins — the
  /// merged registry reports the most recently merged World's instantaneous
  /// state). Histogram bounds must match.
  void merge(const MetricsRegistry& other);

  /// Deterministic snapshots: entries sorted by full key.
  [[nodiscard]] std::string snapshot_json() const;
  [[nodiscard]] std::string snapshot_csv() const;

  /// Canonical key spelling: name{k1=v1,k2=v2} with labels sorted by key.
  [[nodiscard]] static std::string make_key(std::string_view name, const LabelSet& labels);

 private:
  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };

  struct Entry {
    std::string key;
    Kind kind = Kind::kCounter;
    Counter counter;
    Gauge gauge;
    Histogram histogram;
  };

  Entry* resolve(const std::string& key, Kind kind);
  [[nodiscard]] const Entry* lookup(const std::string& key) const;

  std::deque<Entry> entries_;          // stable addresses
  FlatMap<std::uint32_t> index_;       // hash(key) -> entry index
  std::vector<std::uint32_t> overflow_;  // entries whose key hash collided
};

}  // namespace sage::obs
