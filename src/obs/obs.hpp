// Per-World observability bundle: one metrics registry plus (optionally) one
// trace sink, owned by the SimEngine and reached by components through
// `engine.obs()`.
//
// The zero-overhead contract: when observability is off, `engine.obs()` is
// nullptr and every component caches null cell pointers at construction, so
// the hot paths pay exactly one always-false branch per instrumentation
// point. Nothing here touches RNG state or schedules events, so enabling
// observability cannot perturb a simulation — obs-on and obs-off runs of the
// same seed produce bit-identical results (the differential test pins this).
#pragma once

#include <memory>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace sage::obs {

struct ObsConfig {
  bool tracing = true;               // metrics are always on when obs is on
  std::size_t trace_capacity = 8192; // ring slots; oldest spans drop on wrap
};

class Observability {
 public:
  explicit Observability(const ObsConfig& config) {
    if (config.tracing) tracer_ = std::make_unique<TraceSink>(config.trace_capacity);
  }

  [[nodiscard]] MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] const MetricsRegistry& metrics() const { return metrics_; }
  /// Null when tracing is disabled — callers guard each use.
  [[nodiscard]] TraceSink* tracer() { return tracer_.get(); }
  [[nodiscard]] const TraceSink* tracer() const { return tracer_.get(); }

 private:
  MetricsRegistry metrics_;
  std::unique_ptr<TraceSink> tracer_;
};

}  // namespace sage::obs
