// Sim-time span tracer. A span is a named interval of simulated time with an
// optional parent; the sink stores spans in a fixed-capacity ring so a
// long-running world traces at O(1) memory — once the ring wraps, the oldest
// spans are overwritten and counted as dropped.
//
// Determinism contract: span ids are assigned in begin() order, timestamps
// are simulated time, and serialize() renders spans in id order — so the
// serialized trace of a fixed-seed run is byte-identical across hosts and
// harness thread counts, which is what the golden-trace test pins down.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/units.hpp"

namespace sage::obs {

/// 1-based span identity; 0 means "no span" (used for roots and as the
/// return value when tracing is disabled at a call site).
using SpanId = std::uint64_t;
constexpr SpanId kNoSpan = 0;

struct Span {
  SpanId id = kNoSpan;
  SpanId parent = kNoSpan;
  std::uint32_t name = 0;  // interned name index
  SimTime begin;
  SimTime end;             // == begin for instants; begin for still-open spans
  bool closed = false;
  bool instant = false;
  // Two optional numeric attributes; enough for "bytes + lanes" style
  // annotations without per-span allocation.
  double a = 0.0;
  double b = 0.0;
};

class TraceSink {
 public:
  explicit TraceSink(std::size_t capacity = 8192);

  /// Intern a span name; ids are assigned in first-use order.
  std::uint32_t intern(std::string_view name);

  SpanId begin(std::uint32_t name, SimTime at, SpanId parent = kNoSpan,
               double a = 0.0, double b = 0.0);
  /// Close `id`. No-op if the span has already been overwritten by the ring.
  void end(SpanId id, SimTime at, double a = 0.0, double b = 0.0);
  /// Zero-duration marker span.
  SpanId instant(std::uint32_t name, SimTime at, SpanId parent = kNoSpan,
                 double a = 0.0, double b = 0.0);

  [[nodiscard]] std::uint64_t emitted() const { return next_id_ - 1; }
  [[nodiscard]] std::uint64_t dropped() const {
    const std::uint64_t total = emitted();
    return total > ring_.size() ? total - ring_.size() : 0;
  }
  [[nodiscard]] std::size_t capacity() const { return ring_.size(); }

  /// Retained spans in id order (oldest retained first).
  [[nodiscard]] std::vector<Span> spans() const;
  [[nodiscard]] const std::string& name_of(std::uint32_t id) const { return names_[id]; }

  /// Deterministic text rendering: one line per retained span, id order,
  /// indented by parent-chain depth (depth is computed over retained spans
  /// only; a span whose parent fell off the ring renders at depth 0).
  [[nodiscard]] std::string serialize() const;

 private:
  [[nodiscard]] Span* find(SpanId id);
  [[nodiscard]] const Span* find(SpanId id) const;

  std::vector<Span> ring_;
  SpanId next_id_ = 1;
  std::vector<std::string> names_;
};

}  // namespace sage::obs
