// Strongly-typed physical units used throughout SAGE.
//
// The geo-transfer domain mixes bytes, bits-per-second, US dollars and
// simulated time in almost every equation; the historical bug pattern is a
// silent MB/Mb or seconds/hours mix-up. Every quantity that crosses a module
// boundary is therefore a distinct type with explicit conversions.
//
// Representation choices:
//   * SimTime / SimDuration : int64 microseconds (exact arithmetic; a week of
//     simulated time is ~6e11 us, far inside the int64 range).
//   * Bytes                 : int64 bytes.
//   * ByteRate              : double bytes/second (rates are measured, never
//     counted, so floating point is appropriate).
//   * Money                 : int64 micro-USD (exact accumulation of costs;
//     avoids the classic double-drift in billing loops).
#pragma once

#include <cmath>
#include <compare>
#include <cstdint>
#include <limits>
#include <string>

namespace sage {

// ---------------------------------------------------------------------------
// Simulated time.
// ---------------------------------------------------------------------------

/// A span of simulated time, in integer microseconds.
class SimDuration {
 public:
  constexpr SimDuration() = default;
  static constexpr SimDuration micros(std::int64_t us) { return SimDuration{us}; }
  static constexpr SimDuration millis(std::int64_t ms) { return SimDuration{ms * 1000}; }
  static constexpr SimDuration seconds(double s) {
    return SimDuration{static_cast<std::int64_t>(s * 1e6)};
  }
  static constexpr SimDuration minutes(double m) { return seconds(m * 60.0); }
  static constexpr SimDuration hours(double h) { return seconds(h * 3600.0); }
  static constexpr SimDuration days(double d) { return hours(d * 24.0); }
  static constexpr SimDuration zero() { return SimDuration{0}; }
  static constexpr SimDuration max() {
    return SimDuration{std::numeric_limits<std::int64_t>::max()};
  }

  [[nodiscard]] constexpr std::int64_t count_micros() const { return us_; }
  [[nodiscard]] constexpr double to_seconds() const { return static_cast<double>(us_) / 1e6; }
  [[nodiscard]] constexpr double to_hours() const { return to_seconds() / 3600.0; }
  [[nodiscard]] constexpr bool is_zero() const { return us_ == 0; }
  [[nodiscard]] constexpr bool is_negative() const { return us_ < 0; }

  constexpr auto operator<=>(const SimDuration&) const = default;
  constexpr SimDuration operator+(SimDuration o) const { return SimDuration{us_ + o.us_}; }
  constexpr SimDuration operator-(SimDuration o) const { return SimDuration{us_ - o.us_}; }
  constexpr SimDuration operator*(double k) const {
    return SimDuration{static_cast<std::int64_t>(static_cast<double>(us_) * k)};
  }
  constexpr SimDuration operator/(double k) const {
    return SimDuration{static_cast<std::int64_t>(static_cast<double>(us_) / k)};
  }
  constexpr double operator/(SimDuration o) const {
    return static_cast<double>(us_) / static_cast<double>(o.us_);
  }
  constexpr SimDuration& operator+=(SimDuration o) {
    us_ += o.us_;
    return *this;
  }

 private:
  constexpr explicit SimDuration(std::int64_t us) : us_(us) {}
  std::int64_t us_ = 0;
};

/// An absolute point on the simulated clock (microseconds since epoch 0).
class SimTime {
 public:
  constexpr SimTime() = default;
  static constexpr SimTime epoch() { return SimTime{}; }
  static constexpr SimTime from_micros(std::int64_t us) { return SimTime{us}; }

  [[nodiscard]] constexpr std::int64_t count_micros() const { return us_; }
  [[nodiscard]] constexpr double to_seconds() const { return static_cast<double>(us_) / 1e6; }
  [[nodiscard]] constexpr double to_hours() const { return to_seconds() / 3600.0; }

  constexpr auto operator<=>(const SimTime&) const = default;
  constexpr SimTime operator+(SimDuration d) const { return SimTime{us_ + d.count_micros()}; }
  constexpr SimTime operator-(SimDuration d) const { return SimTime{us_ - d.count_micros()}; }
  constexpr SimDuration operator-(SimTime o) const { return SimDuration::micros(us_ - o.us_); }

 private:
  constexpr explicit SimTime(std::int64_t us) : us_(us) {}
  std::int64_t us_ = 0;
};

// ---------------------------------------------------------------------------
// Data sizes and rates.
// ---------------------------------------------------------------------------

/// A count of bytes. Decimal units (KB = 1000 B) match cloud billing; the
/// binary helpers are provided for workloads specified in MiB.
class Bytes {
 public:
  constexpr Bytes() = default;
  static constexpr Bytes of(std::int64_t b) { return Bytes{b}; }
  static constexpr Bytes kb(double k) { return Bytes{static_cast<std::int64_t>(k * 1e3)}; }
  static constexpr Bytes mb(double m) { return Bytes{static_cast<std::int64_t>(m * 1e6)}; }
  static constexpr Bytes gb(double g) { return Bytes{static_cast<std::int64_t>(g * 1e9)}; }
  static constexpr Bytes kib(double k) { return Bytes{static_cast<std::int64_t>(k * 1024)}; }
  static constexpr Bytes mib(double m) {
    return Bytes{static_cast<std::int64_t>(m * 1024 * 1024)};
  }
  static constexpr Bytes zero() { return Bytes{0}; }

  [[nodiscard]] constexpr std::int64_t count() const { return b_; }
  [[nodiscard]] constexpr double to_mb() const { return static_cast<double>(b_) / 1e6; }
  [[nodiscard]] constexpr double to_gb() const { return static_cast<double>(b_) / 1e9; }
  [[nodiscard]] constexpr bool is_zero() const { return b_ == 0; }

  constexpr auto operator<=>(const Bytes&) const = default;
  constexpr Bytes operator+(Bytes o) const { return Bytes{b_ + o.b_}; }
  constexpr Bytes operator-(Bytes o) const { return Bytes{b_ - o.b_}; }
  constexpr Bytes operator*(double k) const {
    return Bytes{static_cast<std::int64_t>(static_cast<double>(b_) * k)};
  }
  constexpr Bytes operator/(std::int64_t k) const { return Bytes{b_ / k}; }
  constexpr double operator/(Bytes o) const {
    return static_cast<double>(b_) / static_cast<double>(o.b_);
  }
  constexpr Bytes& operator+=(Bytes o) {
    b_ += o.b_;
    return *this;
  }
  constexpr Bytes& operator-=(Bytes o) {
    b_ -= o.b_;
    return *this;
  }

 private:
  constexpr explicit Bytes(std::int64_t b) : b_(b) {}
  std::int64_t b_ = 0;
};

/// A data rate in bytes per second.
class ByteRate {
 public:
  constexpr ByteRate() = default;
  static constexpr ByteRate bytes_per_sec(double bps) { return ByteRate{bps}; }
  static constexpr ByteRate mb_per_sec(double mbps) { return ByteRate{mbps * 1e6}; }
  /// Network-interface style megabits per second (e.g. a 100 Mbps NIC).
  static constexpr ByteRate megabits_per_sec(double mbit) { return ByteRate{mbit * 1e6 / 8.0}; }
  static constexpr ByteRate zero() { return ByteRate{0.0}; }

  [[nodiscard]] constexpr double bytes_per_second() const { return bps_; }
  [[nodiscard]] constexpr double to_mb_per_sec() const { return bps_ / 1e6; }
  [[nodiscard]] constexpr bool is_zero() const { return bps_ <= 0.0; }

  constexpr auto operator<=>(const ByteRate&) const = default;
  constexpr ByteRate operator+(ByteRate o) const { return ByteRate{bps_ + o.bps_}; }
  constexpr ByteRate operator-(ByteRate o) const { return ByteRate{bps_ - o.bps_}; }
  constexpr ByteRate operator*(double k) const { return ByteRate{bps_ * k}; }
  constexpr ByteRate operator/(double k) const { return ByteRate{bps_ / k}; }

  /// Time to move `size` at this rate. Zero rates yield SimDuration::max().
  [[nodiscard]] constexpr SimDuration time_for(Bytes size) const {
    if (bps_ <= 0.0) return SimDuration::max();
    return SimDuration::seconds(static_cast<double>(size.count()) / bps_);
  }

 private:
  constexpr explicit ByteRate(double bps) : bps_(bps) {}
  double bps_ = 0.0;
};

/// Bytes moved in a duration -> achieved rate.
constexpr ByteRate operator/(Bytes b, SimDuration d) {
  if (d.count_micros() <= 0) return ByteRate::zero();
  return ByteRate::bytes_per_sec(static_cast<double>(b.count()) / d.to_seconds());
}

/// Rate sustained over a duration -> bytes moved.
constexpr Bytes operator*(ByteRate r, SimDuration d) {
  return Bytes::of(static_cast<std::int64_t>(r.bytes_per_second() * d.to_seconds()));
}

// ---------------------------------------------------------------------------
// Money.
// ---------------------------------------------------------------------------

/// Monetary amounts in integer micro-USD. Cloud billing accumulates many tiny
/// charges (per-VM-second, per-transaction); integer arithmetic keeps cost
/// meters exact and comparisons in the tradeoff solvers total-ordered.
class Money {
 public:
  constexpr Money() = default;
  static constexpr Money micro_usd(std::int64_t u) { return Money{u}; }
  static constexpr Money usd(double d) {
    return Money{static_cast<std::int64_t>(std::llround(d * 1e6))};
  }
  static constexpr Money cents(double c) { return usd(c / 100.0); }
  static constexpr Money zero() { return Money{0}; }
  static constexpr Money max() { return Money{std::numeric_limits<std::int64_t>::max()}; }

  [[nodiscard]] constexpr std::int64_t count_micro_usd() const { return u_; }
  [[nodiscard]] constexpr double to_usd() const { return static_cast<double>(u_) / 1e6; }
  [[nodiscard]] constexpr bool is_zero() const { return u_ == 0; }

  constexpr auto operator<=>(const Money&) const = default;
  constexpr Money operator+(Money o) const { return Money{u_ + o.u_}; }
  constexpr Money operator-(Money o) const { return Money{u_ - o.u_}; }
  constexpr Money operator*(double k) const {
    return Money{static_cast<std::int64_t>(static_cast<double>(u_) * k)};
  }
  constexpr double operator/(Money o) const {
    return static_cast<double>(u_) / static_cast<double>(o.u_);
  }
  constexpr Money& operator+=(Money o) {
    u_ += o.u_;
    return *this;
  }

 private:
  constexpr explicit Money(std::int64_t u) : u_(u) {}
  std::int64_t u_ = 0;
};

// ---------------------------------------------------------------------------
// Formatting helpers (definitions in units.cpp).
// ---------------------------------------------------------------------------

[[nodiscard]] std::string to_string(SimDuration d);
[[nodiscard]] std::string to_string(SimTime t);
[[nodiscard]] std::string to_string(Bytes b);
[[nodiscard]] std::string to_string(ByteRate r);
[[nodiscard]] std::string to_string(Money m);

}  // namespace sage
