// Minimal leveled logger.
//
// The simulator is single-threaded by construction (a discrete-event loop),
// so the logger needs no synchronisation; it exists to give examples and
// benches a uniform, suppressible trace channel with simulated timestamps.
#pragma once

#include <functional>
#include <string>

#include "common/units.hpp"

namespace sage {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

class Logger {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;

  /// Global logger instance shared by the whole process.
  static Logger& global();

  void set_level(LogLevel level) { level_ = level; }
  [[nodiscard]] LogLevel level() const { return level_; }

  /// Replace the output sink (default: stderr). Used by tests to capture.
  void set_sink(Sink sink);

  /// Attach a simulated-clock source so log lines carry virtual timestamps.
  void set_clock(std::function<SimTime()> clock) { clock_ = std::move(clock); }

  void log(LogLevel level, const std::string& msg);

  void debug(const std::string& msg) { log(LogLevel::kDebug, msg); }
  void info(const std::string& msg) { log(LogLevel::kInfo, msg); }
  void warn(const std::string& msg) { log(LogLevel::kWarn, msg); }
  void error(const std::string& msg) { log(LogLevel::kError, msg); }

 private:
  LogLevel level_ = LogLevel::kWarn;
  Sink sink_;
  std::function<SimTime()> clock_;
};

}  // namespace sage
