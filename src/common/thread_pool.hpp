// Fixed-size thread pool for world-level parallelism.
//
// The SimEngine stays single-threaded per world (determinism is a hard
// requirement, DESIGN.md §7); what this pool parallelises is *scenarios* —
// independent Worlds that share nothing. It is deliberately minimal: a
// fixed set of workers draining one FIFO queue, no work stealing, no
// resizing, no task priorities. Scheduling order therefore cannot affect
// results as long as tasks are independent, which the harness layer
// (src/harness/scenario.hpp) guarantees by seeding every task from its
// index and collecting results into an index-ordered vector.
//
// Exception contract: a task that throws does not kill the worker; the
// first exception (in completion order) is stashed and rethrown from the
// next wait_idle() call. The harness layer adds per-task capture with
// index-ordered rethrow on top.
//
// Nested submits are rejected: submit() from inside a worker of the same
// pool throws std::logic_error. A fixed-size pool with a blocking
// wait_idle() cannot safely run tasks that enqueue-and-wait on their own
// pool (all workers could block waiting for queued work no one is free to
// run); rejecting at submission makes the deadlock impossible instead of
// merely unlikely.
//
// run_on_all_workers() is the one structured exception to plain FIFO
// draining: it runs a callable exactly once on every worker (with the
// worker's index) and blocks the caller until all copies return. The
// sharded simulation engine uses it as a lock-step window barrier — each
// worker advances its assigned event lanes, and the coordinator resumes
// only when every lane has reached the window end. Workers prefer a
// pending all-workers region over the FIFO queue so a barrier cannot be
// starved by a deep backlog.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sage {

class ThreadPool {
 public:
  using Task = std::function<void()>;

  /// Spawns exactly `threads` workers (at least 1).
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Enqueue a task. Throws std::logic_error when called from one of this
  /// pool's own workers (see header comment).
  void submit(Task task);

  /// Block until every submitted task has finished, then rethrow the first
  /// stashed task exception, if any.
  void wait_idle();

  /// Run `fn(worker_index)` exactly once on each worker thread, concurrently,
  /// and block until every invocation has returned. The first exception any
  /// invocation throws is rethrown here (after the barrier completes, so the
  /// pool is always left quiescent). Throws std::logic_error when called from
  /// one of this pool's own workers — the calling worker could never run its
  /// own slice — or while another all-workers region is in flight.
  void run_on_all_workers(const std::function<void(std::size_t)>& fn);

  /// True when the calling thread is a worker of this pool.
  [[nodiscard]] bool on_worker_thread() const;

 private:
  void worker_loop(std::size_t index);

  mutable std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable all_done_;
  std::condition_variable region_done_;
  std::deque<Task> queue_;
  std::size_t in_flight_ = 0;  // queued + currently executing
  bool stopping_ = false;
  std::exception_ptr first_error_;
  // All-workers region state: a generation counter tells each worker whether
  // it has run the current region yet; the coordinator waits until
  // region_remaining_ hits zero.
  const std::function<void(std::size_t)>* region_fn_ = nullptr;
  std::uint64_t region_gen_ = 0;
  std::vector<std::uint64_t> region_done_gen_;
  std::size_t region_remaining_ = 0;
  std::exception_ptr region_error_;
  std::vector<std::thread> workers_;
};

}  // namespace sage
