// Plain-text table writer used by the bench harness to print paper-style
// tables and figure series with aligned columns.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace sage {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Append a row; the cell count must match the header count.
  void add_row(std::vector<std::string> cells);

  /// Convenience: format a double with the given precision.
  static std::string num(double v, int precision = 2);

  /// Render with a header underline and 2-space column gaps.
  [[nodiscard]] std::string render() const;

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sage
