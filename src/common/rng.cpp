#include "common/rng.hpp"

#include <cmath>

namespace sage {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& w : s_) w = sm.next();
}

Rng Rng::fork() { return Rng(next_u64()); }

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo + 1);
  return lo + static_cast<std::int64_t>(next_u64() % span);
}

double Rng::normal() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double m = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * m;
  has_spare_ = true;
  return u * m;
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

double Rng::exponential(double rate) { return -std::log1p(-uniform()) / rate; }

double Rng::pareto(double xm, double alpha) {
  return xm / std::pow(1.0 - uniform(), 1.0 / alpha);
}

bool Rng::chance(double p) { return uniform() < p; }

std::int64_t Rng::zipf(std::int64_t n, double s) {
  // Rejection-inversion would be overkill for workload keys; a simple
  // normalized power-law inversion over a truncated harmonic sum suffices
  // and stays deterministic.
  if (n <= 1) return 0;
  const double u = uniform();
  // Invert the continuous approximation of the Zipf CDF.
  if (s == 1.0) {
    const double h = std::log(static_cast<double>(n));
    return static_cast<std::int64_t>(std::exp(u * h)) - 1;
  }
  const double one_minus_s = 1.0 - s;
  const double h = (std::pow(static_cast<double>(n), one_minus_s) - 1.0) / one_minus_s;
  const double x = std::pow(u * h * one_minus_s + 1.0, 1.0 / one_minus_s);
  auto k = static_cast<std::int64_t>(x) - 1;
  if (k < 0) k = 0;
  if (k >= n) k = n - 1;
  return k;
}

}  // namespace sage
