#include "common/rng.hpp"

#include <cmath>

namespace sage {
Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& w : s_) w = sm.next();
}

Rng Rng::fork() { return Rng(next_u64()); }

double Rng::exponential(double rate) { return -std::log1p(-uniform()) / rate; }

double Rng::pareto(double xm, double alpha) {
  return xm / std::pow(1.0 - uniform(), 1.0 / alpha);
}

bool Rng::chance(double p) { return uniform() < p; }

std::int64_t Rng::zipf(std::int64_t n, double s) {
  // Rejection-inversion would be overkill for workload keys; a simple
  // normalized power-law inversion over a truncated harmonic sum suffices
  // and stays deterministic.
  if (n <= 1) return 0;
  const double u = uniform();
  // Invert the continuous approximation of the Zipf CDF.
  if (s == 1.0) {
    const double h = std::log(static_cast<double>(n));
    return static_cast<std::int64_t>(std::exp(u * h)) - 1;
  }
  const double one_minus_s = 1.0 - s;
  const double h = (std::pow(static_cast<double>(n), one_minus_s) - 1.0) / one_minus_s;
  const double x = std::pow(u * h * one_minus_s + 1.0, 1.0 / one_minus_s);
  auto k = static_cast<std::int64_t>(x) - 1;
  if (k < 0) k = 0;
  if (k >= n) k = n - 1;
  return k;
}

}  // namespace sage
