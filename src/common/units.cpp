#include "common/units.hpp"

#include <cstdio>

namespace sage {
namespace {

std::string format(const char* fmt, double v, const char* suffix) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return std::string(buf) + suffix;
}

}  // namespace

std::string to_string(SimDuration d) {
  const double s = d.to_seconds();
  if (d == SimDuration::max()) return "inf";
  if (s < 1e-3) return format("%.0f", static_cast<double>(d.count_micros()), " us");
  if (s < 1.0) return format("%.1f", s * 1e3, " ms");
  if (s < 120.0) return format("%.2f", s, " s");
  if (s < 7200.0) return format("%.1f", s / 60.0, " min");
  return format("%.2f", s / 3600.0, " h");
}

std::string to_string(SimTime t) { return to_string(t - SimTime::epoch()); }

std::string to_string(Bytes b) {
  const double v = static_cast<double>(b.count());
  if (v < 1e3) return format("%.0f", v, " B");
  if (v < 1e6) return format("%.1f", v / 1e3, " KB");
  if (v < 1e9) return format("%.1f", v / 1e6, " MB");
  return format("%.2f", v / 1e9, " GB");
}

std::string to_string(ByteRate r) {
  const double v = r.bytes_per_second();
  if (v < 1e6) return format("%.1f", v / 1e3, " KB/s");
  return format("%.2f", v / 1e6, " MB/s");
}

std::string to_string(Money m) { return format("$%.4f", m.to_usd(), ""); }

}  // namespace sage
