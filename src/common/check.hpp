// Precondition / invariant checking.
//
// SAGE_CHECK throws (rather than aborting) so that unit tests can assert on
// contract violations, and so a misconfigured experiment fails with a
// diagnosable message instead of a core dump.
#pragma once

#include <stdexcept>
#include <string>

namespace sage {

class CheckFailure : public std::logic_error {
 public:
  explicit CheckFailure(const std::string& what) : std::logic_error(what) {}
};

[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const std::string& msg) {
  throw CheckFailure(std::string("SAGE_CHECK failed: ") + expr + " at " + file + ":" +
                     std::to_string(line) + (msg.empty() ? "" : (" — " + msg)));
}

}  // namespace sage

#define SAGE_CHECK(expr)                                              \
  do {                                                                \
    if (!(expr)) ::sage::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (false)

#define SAGE_CHECK_MSG(expr, msg)                                        \
  do {                                                                   \
    if (!(expr)) ::sage::check_failed(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)
