#include "common/log.hpp"

#include <cstdio>

namespace sage {
namespace {

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF  ";
  }
  return "?";
}

}  // namespace

Logger& Logger::global() {
  static Logger instance;
  return instance;
}

void Logger::set_sink(Sink sink) { sink_ = std::move(sink); }

void Logger::log(LogLevel level, const std::string& msg) {
  if (level < level_) return;
  std::string line;
  if (clock_) {
    line += "[" + to_string(clock_()) + "] ";
  }
  line += level_name(level);
  line += " ";
  line += msg;
  if (sink_) {
    sink_(level, line);
  } else {
    std::fprintf(stderr, "%s\n", line.c_str());
  }
}

}  // namespace sage
