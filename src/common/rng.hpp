// Deterministic random number generation for the simulator.
//
// All stochastic behaviour in SAGE (link noise, incident arrivals, workload
// generation) flows through one of these generators, seeded explicitly, so
// every experiment in bench/ regenerates bit-identical tables.
//
// The generator is xoshiro256** seeded via SplitMix64 — fast, tiny state and
// well-studied statistical quality; <random> engines are avoided because
// their distributions are not reproducible across standard libraries.
#pragma once

#include <array>
#include <cstdint>

namespace sage {

/// SplitMix64: used to expand a single 64-bit seed into generator state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** PRNG with distribution helpers.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5a6eULL);

  /// Derive an independent child stream (for per-link / per-source RNGs).
  [[nodiscard]] Rng fork();

  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double uniform();
  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Standard normal via Box-Muller (cached spare).
  double normal();
  double normal(double mean, double stddev);
  /// Exponential with the given rate (mean 1/rate).
  double exponential(double rate);
  /// Pareto with scale xm > 0 and shape alpha > 0 (heavy-tailed incidents).
  double pareto(double xm, double alpha);
  /// Bernoulli trial.
  bool chance(double p);
  /// Zipf-like integer in [0, n) with exponent s (workload key skew).
  std::int64_t zipf(std::int64_t n, double s);

 private:
  std::array<std::uint64_t, 4> s_{};
  double spare_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace sage
