// Deterministic random number generation for the simulator.
//
// All stochastic behaviour in SAGE (link noise, incident arrivals, workload
// generation) flows through one of these generators, seeded explicitly, so
// every experiment in bench/ regenerates bit-identical tables.
//
// The generator is xoshiro256** seeded via SplitMix64 — fast, tiny state and
// well-studied statistical quality; <random> engines are avoided because
// their distributions are not reproducible across standard libraries.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>

namespace sage {

/// SplitMix64: used to expand a single 64-bit seed into generator state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** PRNG with distribution helpers.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5a6eULL);

  /// Derive an independent child stream (for per-link / per-source RNGs).
  [[nodiscard]] Rng fork();

  // The draw primitives below are inline: workload generation calls them
  // once (or more) per record on the data-plane hot path.

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double uniform() {
    // 53 high bits -> double in [0, 1).
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }
  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }
  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    const auto span = static_cast<std::uint64_t>(hi - lo + 1);
    // Power-of-two spans (the usual key-space size) mask instead of paying
    // a hardware divide; the result is identical to `% span` for any draw.
    const std::uint64_t x = next_u64();
    const std::uint64_t r = (span & (span - 1)) == 0 ? (x & (span - 1)) : x % span;
    return lo + static_cast<std::int64_t>(r);
  }
  /// Standard normal via Marsaglia polar (cached spare).
  double normal() {
    if (has_spare_) {
      has_spare_ = false;
      return spare_;
    }
    double u = 0.0;
    double v = 0.0;
    double s = 0.0;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double m = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * m;
    has_spare_ = true;
    return u * m;
  }
  double normal(double mean, double stddev) { return mean + stddev * normal(); }
  /// Exponential with the given rate (mean 1/rate).
  double exponential(double rate);
  /// Pareto with scale xm > 0 and shape alpha > 0 (heavy-tailed incidents).
  double pareto(double xm, double alpha);
  /// Bernoulli trial.
  bool chance(double p);
  /// Zipf-like integer in [0, n) with exponent s (workload key skew).
  std::int64_t zipf(std::int64_t n, double s);

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> s_{};
  double spare_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace sage
