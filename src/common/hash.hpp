// Content hashing used for chunk integrity and deduplication in sage_net.
//
// FNV-1a 64 with an avalanche finalizer: not cryptographic (the simulator
// threat model is corruption/duplication detection, matching the system's
// use of hashes for dedup and recomposition), but fast and collision-sparse
// over chunk-sized inputs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

namespace sage {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

constexpr std::uint64_t hash_mix(std::uint64_t h) {
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return h;
}

constexpr std::uint64_t hash_bytes(std::span<const std::byte> data,
                                   std::uint64_t seed = kFnvOffset) {
  std::uint64_t h = seed;
  for (std::byte b : data) {
    h ^= static_cast<std::uint64_t>(b);
    h *= kFnvPrime;
  }
  return hash_mix(h);
}

inline std::uint64_t hash_string(std::string_view s, std::uint64_t seed = kFnvOffset) {
  return hash_bytes(std::as_bytes(std::span(s.data(), s.size())), seed);
}

constexpr std::uint64_t hash_u64(std::uint64_t v) { return hash_mix(v * kFnvPrime); }

/// Combine two hashes (order-sensitive).
constexpr std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) {
  return hash_mix(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

}  // namespace sage
