// Small-buffer-optimized move-only callable for the simulation hot path.
//
// Every scheduled event carries a type-erased callback. std::function is the
// obvious spelling but has two costs on this path: (a) libstdc++ only stores
// captures inline when they are trivially copyable and <= 16 bytes, so the
// common three-capture lambdas of the transfer and stream layers heap-allocate
// per event — the last per-event allocation left after the PR 1 slab rework,
// and one that a region-sharded engine multiplies by the shard count; (b)
// std::function requires copyable targets, so a callback owning a moved-in
// resource (unique_ptr payloads, drained batches) cannot be scheduled at all.
//
// InlineCallback stores any nothrow-move-constructible callable of up to
// kInlineSize bytes in place and heap-allocates only past that; targets may
// be move-only. Invocation is two loads and an indirect call, same as
// std::function's happy path.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace sage {

class InlineCallback {
 public:
  /// Inline capture budget. 48 bytes holds e.g. a captured std::function
  /// completion handler plus two ids — the fattest callback the fabric
  /// schedules — while keeping the event slab slot at one cache line.
  static constexpr std::size_t kInlineSize = 48;

  InlineCallback() = default;
  InlineCallback(std::nullptr_t) {}  // NOLINT: mirror std::function

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineCallback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InlineCallback(F&& f) {  // NOLINT: mirror std::function's converting ctor
    using D = std::decay_t<F>;
    if constexpr (sizeof(D) <= kInlineSize && alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      invoke_ = [](void* s) { (*std::launder(reinterpret_cast<D*>(s)))(); };
      relocate_ = [](void* dst, void* src) noexcept {
        D* from = std::launder(reinterpret_cast<D*>(src));
        ::new (dst) D(std::move(*from));
        from->~D();
      };
      destroy_ = [](void* s) { std::launder(reinterpret_cast<D*>(s))->~D(); };
      inline_flag_ = true;
    } else {
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(f)));
      invoke_ = [](void* s) { (**std::launder(reinterpret_cast<D**>(s)))(); };
      relocate_ = [](void* dst, void* src) noexcept {
        ::new (dst) D*(*std::launder(reinterpret_cast<D**>(src)));
      };
      destroy_ = [](void* s) { delete *std::launder(reinterpret_cast<D**>(s)); };
    }
  }

  InlineCallback(InlineCallback&& other) noexcept { move_from(other); }

  InlineCallback& operator=(InlineCallback&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  InlineCallback& operator=(std::nullptr_t) {
    reset();
    return *this;
  }

  InlineCallback(const InlineCallback&) = delete;
  InlineCallback& operator=(const InlineCallback&) = delete;

  ~InlineCallback() { reset(); }

  void operator()() { invoke_(storage_); }

  [[nodiscard]] explicit operator bool() const { return invoke_ != nullptr; }
  friend bool operator==(const InlineCallback& c, std::nullptr_t) { return !c; }
  friend bool operator!=(const InlineCallback& c, std::nullptr_t) {
    return static_cast<bool>(c);
  }

  /// True when the target lives in the inline buffer (test/measurement hook).
  [[nodiscard]] bool is_inline() const { return invoke_ != nullptr && inline_flag_; }

  void reset() {
    if (destroy_ != nullptr) destroy_(storage_);
    invoke_ = nullptr;
    relocate_ = nullptr;
    destroy_ = nullptr;
    inline_flag_ = false;
  }

 private:
  // The relocate thunk distinguishes inline targets (move + destroy the
  // source object) from heap targets (copy the owning pointer).
  void move_from(InlineCallback& other) noexcept {
    if (other.invoke_ == nullptr) return;
    other.relocate_(storage_, other.storage_);
    invoke_ = other.invoke_;
    relocate_ = other.relocate_;
    destroy_ = other.destroy_;
    inline_flag_ = other.inline_flag_;
    other.invoke_ = nullptr;
    other.relocate_ = nullptr;
    other.destroy_ = nullptr;
    other.inline_flag_ = false;
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineSize]{};
  void (*invoke_)(void*) = nullptr;
  void (*relocate_)(void* dst, void* src) noexcept = nullptr;
  void (*destroy_)(void*) = nullptr;
  bool inline_flag_ = false;
};

}  // namespace sage
