// Open-addressing hash map for the streaming data plane's keyed state.
//
// The window/join/top-k operators keep per-key state that is written on
// every record and drained wholesale at window closes. A node-based
// std::unordered_map pays an allocation per key and a pointer chase per
// record; this map stores keys, values and occupancy in three flat arrays
// (linear probing, power-of-two capacity), so the record loop touches
// contiguous memory and a window flush iterates dense storage.
//
// Deletion is tombstone-free: erasing backward-shifts the remainder of the
// probe cluster, so long-running state that churns keys (join expiry,
// sliding-window idle-key eviction) never degrades into tombstone scans and
// rehashes only for growth. Iteration order is the slot order — arbitrary
// but deterministic for a fixed insert/erase sequence, which is all the
// simulator's reproducibility contract needs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/check.hpp"

namespace sage {

template <class Value>
class FlatMap {
 public:
  FlatMap() = default;

  /// Value reference for `key`, default-constructing it if absent.
  Value& operator[](std::uint64_t key) { return *find_or_insert(key).first; }

  /// Pointer to the value for `key` plus whether it was just inserted.
  /// Inserted values start as a fresh `Value()`.
  std::pair<Value*, bool> find_or_insert(std::uint64_t key) {
    if (size_ + 1 > (capacity() * 3) / 4) grow();
    std::size_t i = slot_of(key);
    while (used_[i]) {
      if (keys_[i] == key) return {&vals_[i], false};
      i = (i + 1) & mask_;
    }
    used_[i] = 1;
    keys_[i] = key;
    vals_[i] = Value();  // slots are recycled; reset whatever was parked here
    ++size_;
    return {&vals_[i], true};
  }

  [[nodiscard]] Value* find(std::uint64_t key) {
    return const_cast<Value*>(std::as_const(*this).find(key));
  }
  [[nodiscard]] const Value* find(std::uint64_t key) const {
    if (size_ == 0) return nullptr;
    std::size_t i = slot_of(key);
    while (used_[i]) {
      if (keys_[i] == key) return &vals_[i];
      i = (i + 1) & mask_;
    }
    return nullptr;
  }

  [[nodiscard]] bool contains(std::uint64_t key) const { return find(key) != nullptr; }

  /// Remove `key`; returns whether it was present. Backward-shifts the
  /// probe cluster so no tombstones are left behind.
  bool erase(std::uint64_t key) {
    if (size_ == 0) return false;
    std::size_t i = slot_of(key);
    while (used_[i]) {
      if (keys_[i] == key) {
        erase_slot(i);
        return true;
      }
      i = (i + 1) & mask_;
    }
    return false;
  }

  /// Drop every key. Capacity (and parked value storage) is retained, so a
  /// window flush that clears and refills pays no allocations.
  void clear() {
    if (size_ == 0) return;
    std::fill(used_.begin(), used_.end(), std::uint8_t{0});
    size_ = 0;
  }

  /// Pre-size for at least `n` keys without rehashing on the way.
  void reserve(std::size_t n) {
    std::size_t cap = kMinCapacity;
    while (cap * 3 < n * 4) cap <<= 1;  // keep load factor under 3/4
    if (cap > capacity()) rehash(cap);
  }

  /// Visit every (key, value) pair in slot order. `fn` must not mutate the
  /// map; collect keys and erase after when eviction is needed.
  template <class Fn>
  void for_each(Fn&& fn) {
    for (std::size_t i = 0; i < capacity(); ++i) {
      if (used_[i]) fn(keys_[i], vals_[i]);
    }
  }
  template <class Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i < capacity(); ++i) {
      if (used_[i]) fn(keys_[i], static_cast<const Value&>(vals_[i]));
    }
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t capacity() const { return keys_.size(); }

 private:
  static constexpr std::size_t kMinCapacity = 16;

  // Fibonacci hashing: one multiply spreads the key over the high bits and
  // the shift keeps exactly log2(capacity) of them. An order of magnitude
  // cheaper than a full avalanche mix, and the golden-ratio constant keeps
  // sequential / strided keys (the common case for synthetic workload keys)
  // collision-free across slots.
  [[nodiscard]] std::size_t slot_of(std::uint64_t key) const {
    return static_cast<std::size_t>((key * 0x9E3779B97F4A7C15ULL) >> shift_);
  }

  void erase_slot(std::size_t hole) {
    --size_;
    std::size_t i = (hole + 1) & mask_;
    while (used_[i]) {
      // An entry may slide back into the hole only if its home slot is not
      // cyclically inside (hole, i] — otherwise the shift would strand it
      // before its home and break probing.
      const std::size_t home = slot_of(keys_[i]);
      const std::size_t dist_home = (i - home) & mask_;
      const std::size_t dist_hole = (i - hole) & mask_;
      if (dist_home >= dist_hole) {
        keys_[hole] = keys_[i];
        vals_[hole] = std::move(vals_[i]);
        used_[hole] = 1;
        used_[i] = 0;
        hole = i;
      }
      i = (i + 1) & mask_;
    }
    used_[hole] = 0;
  }

  void grow() { rehash(capacity() == 0 ? kMinCapacity : capacity() * 2); }

  void rehash(std::size_t new_cap) {
    SAGE_CHECK((new_cap & (new_cap - 1)) == 0);
    std::vector<std::uint64_t> old_keys = std::move(keys_);
    std::vector<Value> old_vals = std::move(vals_);
    std::vector<std::uint8_t> old_used = std::move(used_);
    keys_.assign(new_cap, 0);
    vals_.assign(new_cap, Value());
    used_.assign(new_cap, 0);
    mask_ = new_cap - 1;
    shift_ = 64;
    for (std::size_t c = new_cap; c > 1; c >>= 1) --shift_;
    for (std::size_t i = 0; i < old_keys.size(); ++i) {
      if (!old_used[i]) continue;
      std::size_t j = slot_of(old_keys[i]);
      while (used_[j]) j = (j + 1) & mask_;
      used_[j] = 1;
      keys_[j] = old_keys[i];
      vals_[j] = std::move(old_vals[i]);
    }
  }

  std::vector<std::uint64_t> keys_;
  std::vector<Value> vals_;
  std::vector<std::uint8_t> used_;
  std::size_t size_ = 0;
  std::size_t mask_ = 0;    // capacity - 1 (capacity is a power of two)
  unsigned shift_ = 64;     // 64 - log2(capacity); see slot_of
};

}  // namespace sage
