#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

namespace sage {

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::merge(const OnlineStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(n_);
  const auto n2 = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void OnlineStats::reset() { *this = OnlineStats{}; }

double OnlineStats::variance() const {
  if (n_ == 0) return 0.0;
  return m2_ / static_cast<double>(n_);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

void Ewma::add(double x) {
  if (!seeded_) {
    value_ = x;
    seeded_ = true;
  } else {
    value_ = alpha_ * x + (1.0 - alpha_) * value_;
  }
}

namespace {

// A bounded set of spares per thread: big enough to cover the sink +
// harness sample sets alive at once, small enough that the retained memory
// stays bounded (a few multi-MB buffers). The capacity floor keeps truly
// tiny buffers (the heap recycles those without touching the OS) out of the
// pool while still retaining the ~1k-sample sets a harness task churns per
// grid point — at high task counts their repeated grow-from-zero was a
// measurable mmap/minor-fault tax, so a sweep's worker reuses one warm
// buffer across tasks instead.
constexpr std::size_t kMinPooledSampleCapacity = 512;
constexpr std::size_t kMaxPooledSampleBuffers = 16;
thread_local std::vector<std::vector<double>> g_spare_sample_buffers;

}  // namespace

namespace detail {

std::vector<double> acquire_sample_buffer() {
  if (g_spare_sample_buffers.empty()) return {};
  std::vector<double> buf = std::move(g_spare_sample_buffers.back());
  g_spare_sample_buffers.pop_back();
  buf.clear();
  return buf;
}

void release_sample_buffer(std::vector<double>&& buf) {
  if (buf.capacity() >= kMinPooledSampleCapacity &&
      g_spare_sample_buffers.size() < kMaxPooledSampleBuffers) {
    g_spare_sample_buffers.push_back(std::move(buf));
  }
}

}  // namespace detail

SampleSet::~SampleSet() {
  detail::release_sample_buffer(std::move(xs_));
  detail::release_sample_buffer(std::move(sorted_));
}

double SampleSet::mean() const {
  if (xs_.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs_) s += x;
  return s / static_cast<double>(xs_.size());
}

double SampleSet::stddev() const {
  if (xs_.size() < 2) return 0.0;
  const double m = mean();
  double s = 0.0;
  for (double x : xs_) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs_.size()));
}

void SampleSet::ensure_sorted() const {
  if (sorted_valid_) return;
  sorted_ = xs_;
  std::sort(sorted_.begin(), sorted_.end());
  sorted_valid_ = true;
}

double SampleSet::quantile(double q) const {
  ensure_sorted();
  if (sorted_.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted_.size() - 1);
  const auto i = static_cast<std::size_t>(pos);
  if (i + 1 >= sorted_.size()) return sorted_.back();
  const double frac = pos - static_cast<double>(i);
  return sorted_[i] * (1.0 - frac) + sorted_[i + 1] * frac;
}

double SampleSet::ci95_half_width() const {
  if (xs_.size() < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(xs_.size()));
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {}

void Histogram::add(double x) {
  const double span = hi_ - lo_;
  auto idx = static_cast<std::int64_t>((x - lo_) / span * static_cast<double>(counts_.size()));
  idx = std::clamp<std::int64_t>(idx, 0, static_cast<std::int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(counts_.size());
}

}  // namespace sage
