#include "common/table.hpp"

#include <cstdio>

#include "common/check.hpp"

namespace sage {

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {
  SAGE_CHECK(!headers_.empty());
}

void TextTable::add_row(std::vector<std::string> cells) {
  SAGE_CHECK_MSG(cells.size() == headers_.size(), "row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (row[c].size() > widths[c]) widths[c] = row[c].size();
    }
  }

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < row.size(); ++c) {
      line += row[c];
      if (c + 1 < row.size()) line += std::string(widths[c] - row[c].size() + 2, ' ');
    }
    line += '\n';
    return line;
  };

  std::string out = render_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  out += std::string(total, '-') + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

}  // namespace sage
