#include "common/thread_pool.hpp"

#include <stdexcept>
#include <utility>

namespace sage {
namespace {

// Identifies, per OS thread, which pool (if any) it is a worker of, so
// submit() can reject nested enqueues from the same pool while still
// allowing an unrelated pool's worker to submit here.
thread_local const ThreadPool* g_current_pool = nullptr;

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = 1;
  workers_.reserve(threads);
  region_done_gen_.assign(threads, 0);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& w : workers_) w.join();
}

bool ThreadPool::on_worker_thread() const { return g_current_pool == this; }

void ThreadPool::submit(Task task) {
  if (on_worker_thread()) {
    throw std::logic_error(
        "ThreadPool::submit called from one of the pool's own workers; "
        "nested enqueue-and-wait deadlocks a fixed-size pool");
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr err = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(err);
  }
}

void ThreadPool::run_on_all_workers(const std::function<void(std::size_t)>& fn) {
  if (on_worker_thread()) {
    throw std::logic_error(
        "ThreadPool::run_on_all_workers called from one of the pool's own "
        "workers; the calling worker could never run its own slice");
  }
  std::unique_lock<std::mutex> lock(mu_);
  if (region_fn_ != nullptr) {
    throw std::logic_error(
        "ThreadPool::run_on_all_workers called while another all-workers "
        "region is in flight");
  }
  region_fn_ = &fn;
  ++region_gen_;
  region_remaining_ = workers_.size();
  work_ready_.notify_all();
  // The barrier completes even if invocations throw: every worker runs its
  // slice (or records the error) before region_remaining_ reaches zero, so
  // the pool is quiescent when the first error is rethrown below.
  region_done_.wait(lock, [this] { return region_remaining_ == 0; });
  region_fn_ = nullptr;
  if (region_error_) {
    std::exception_ptr err = std::exchange(region_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(err);
  }
}

void ThreadPool::worker_loop(std::size_t index) {
  g_current_pool = this;
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock, [this, index] {
        return stopping_ || !queue_.empty() ||
               (region_fn_ != nullptr && region_done_gen_[index] < region_gen_);
      });
      // A pending all-workers region outranks the FIFO queue: the barrier
      // caller is blocked until every worker has run its slice, so letting a
      // deep backlog starve it would stall lock-step callers indefinitely.
      if (region_fn_ != nullptr && region_done_gen_[index] < region_gen_) {
        const std::function<void(std::size_t)>* fn = region_fn_;
        region_done_gen_[index] = region_gen_;
        lock.unlock();
        try {
          (*fn)(index);
        } catch (...) {
          std::lock_guard<std::mutex> relock(mu_);
          if (!region_error_) region_error_ = std::current_exception();
        }
        lock.lock();
        if (--region_remaining_ == 0) region_done_.notify_all();
        continue;
      }
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    try {
      task();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace sage
