// Online statistics used by the monitoring layer and the experiment harness.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sage {

/// Welford online mean/variance. O(1) memory, numerically stable.
class OnlineStats {
 public:
  void add(double x);
  void merge(const OnlineStats& other);
  void reset();

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  /// Population variance (divides by n, matching the paper-style sigma).
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Exponentially weighted moving average.
class Ewma {
 public:
  explicit Ewma(double alpha) : alpha_(alpha) {}

  void add(double x);
  [[nodiscard]] double value() const { return value_; }
  [[nodiscard]] bool empty() const { return !seeded_; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool seeded_ = false;
};

/// Exact sample container with quantiles; used by the experiment harness
/// where sample counts are modest (thousands) and exact percentiles matter
/// for confidence intervals.
namespace detail {
/// Spare backing stores for SampleSet. Sinks accumulate multi-megabyte
/// sample vectors over a runtime's lifetime; recycling the buffers across
/// instances keeps the allocator from returning those pages to the OS on
/// every construct/destroy cycle (and re-faulting them on the next), which
/// otherwise dominates tight simulate-teardown loops.
std::vector<double> acquire_sample_buffer();
void release_sample_buffer(std::vector<double>&& buf);
}  // namespace detail

class SampleSet {
 public:
  SampleSet() = default;
  ~SampleSet();
  SampleSet(const SampleSet&) = default;
  SampleSet& operator=(const SampleSet&) = default;
  SampleSet(SampleSet&&) noexcept = default;
  SampleSet& operator=(SampleSet&&) noexcept = default;

  // Inline: sinks call this once per record on the data-plane hot path.
  void add(double x) {
    if (xs_.capacity() == 0) xs_ = detail::acquire_sample_buffer();
    xs_.push_back(x);
    sorted_valid_ = false;
  }
  /// Bulk append: grow by `n` slots and return a pointer to the first new
  /// one for the caller to fill directly — batch sinks use this to turn
  /// per-record push_backs into one tight vectorizable store loop.
  double* extend(std::size_t n) {
    if (xs_.capacity() == 0) xs_ = detail::acquire_sample_buffer();
    const std::size_t old = xs_.size();
    xs_.resize(old + n);
    sorted_valid_ = false;
    return xs_.data() + old;
  }
  [[nodiscard]] std::size_t count() const { return xs_.size(); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double stddev() const;
  /// Quantile in [0,1] by linear interpolation; requires at least 1 sample.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double median() const { return quantile(0.5); }
  /// Half-width of the normal-approximation 95% confidence interval.
  [[nodiscard]] double ci95_half_width() const;
  [[nodiscard]] const std::vector<double>& values() const { return xs_; }

 private:
  void ensure_sorted() const;

  std::vector<double> xs_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

/// Fixed-bin histogram over [lo, hi); out-of-range values clamp to edge bins.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  [[nodiscard]] std::size_t bin_count() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t bin(std::size_t i) const { return counts_[i]; }
  [[nodiscard]] double bin_lo(std::size_t i) const;
  [[nodiscard]] std::uint64_t total() const { return total_; }

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace sage
