// Geo-distributed transfer substrate (the system's Transfer Agent layer).
//
// A GeoTransfer moves one logical dataset from a source VM to a destination
// VM over one or more *lanes*. A lane is a path of VMs:
//
//     src ── [intermediate forwarders, possibly in other datacenters] ── dst
//
// and data moves as fixed-size chunks with:
//   * store-and-forward relaying with per-hop pipelining (chunk i+1 crosses
//     hop 1 while chunk i crosses hop 2);
//   * a bounded number of parallel streams per hop (end-system parallelism);
//   * per-chunk content hashes and receiver-side deduplication;
//   * application-level end-to-end acknowledgements (recovering from
//     intermediate-node failures that TCP alone cannot see);
//   * timeout-driven retransmission — a chunk not acknowledged in time is
//     re-sent, and whichever copy lands second is dropped as a duplicate;
//   * intrusiveness throttling: each sending VM caps the aggregate rate of
//     the transfer's flows at (intrusiveness × NIC).
//
// Lanes draw chunks from a single shared pool as their first-hop slots free
// up, so faster lanes automatically carry more data. This pull model is the
// data-plane half of environment awareness: the control plane (sage_sched /
// sage_core) decides *which* lanes exist; the pool balances load *across*
// them. Environment-oblivious baselines instead use static partitioning
// (see sage_baselines).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "cloud/provider.hpp"
#include "common/units.hpp"
#include "obs/obs.hpp"

namespace sage::net {

struct TransferConfig {
  /// Fragmentation granularity.
  Bytes chunk_size = Bytes::mib(4);
  /// Concurrent chunk flows per hop sender (parallel streams).
  int streams_per_hop = 2;
  /// Fraction of each VM's resources the transfer may use, in (0, 1].
  /// 1.0 = dedicated transfer VMs (the comparison setting); shared-VM
  /// deployments use 0.05-0.20 (the intrusiveness experiment's range).
  double intrusiveness = 1.0;
  /// End-to-end acknowledgements (per chunk). Disabling removes the ack
  /// round-trip but forfeits loss recovery accounting.
  bool acknowledgements = true;
  /// Unacknowledged chunks are retransmitted after this multiple of the
  /// chunk's expected service time (floored at `timeout_floor`), doubling
  /// per failed attempt (congestion backoff).
  double timeout_factor = 10.0;
  SimDuration timeout_floor = SimDuration::seconds(8);
  /// Give up on a chunk after this many failed/timed-out attempts.
  int max_attempts = 5;
};

struct TransferStats {
  int chunks_total = 0;
  int chunks_delivered = 0;
  int retransmissions = 0;
  int duplicates_dropped = 0;
  int hop_failures = 0;
};

struct TransferResult {
  bool ok = false;
  Bytes size;
  SimTime started;
  SimTime finished;
  TransferStats stats;

  [[nodiscard]] SimDuration elapsed() const { return finished - started; }
  [[nodiscard]] ByteRate throughput() const { return size / elapsed(); }
};

/// One relay path for a transfer. `path` must start at the transfer's source
/// VM and end at its destination VM, with zero or more forwarders between.
struct Lane {
  std::vector<cloud::VmId> path;
};

class GeoTransfer {
 public:
  using CompletionFn = std::function<void(const TransferResult&)>;

  /// Build a transfer of `size` bytes. All lanes must share front()==src and
  /// back()==dst. Call start() to begin.
  GeoTransfer(cloud::CloudProvider& provider, Bytes size, std::vector<Lane> lanes,
              TransferConfig config, CompletionFn on_done);
  ~GeoTransfer();
  GeoTransfer(const GeoTransfer&) = delete;
  GeoTransfer& operator=(const GeoTransfer&) = delete;

  void start();

  /// Abort; completion fires with ok == false.
  void cancel();

  /// Replace the lane set mid-flight (decision-manager adaptation). Chunks
  /// already in flight complete on their old paths; queued work drains
  /// through the new lanes.
  void reset_lanes(std::vector<Lane> lanes);

  [[nodiscard]] Bytes delivered() const;
  [[nodiscard]] Bytes total() const { return size_; }
  [[nodiscard]] const TransferStats& stats() const { return stats_; }
  [[nodiscard]] bool running() const { return running_; }
  [[nodiscard]] bool finished() const { return finished_; }
  /// Bytes delivered per current lane index (diagnostics; a reset_lanes
  /// starts the counters over for the new lane set).
  [[nodiscard]] const std::vector<Bytes>& lane_bytes() const;

 private:
  struct HopState {
    int free_slots = 0;
    std::deque<int> waiting;  // chunks parked at this hop's sender
  };

  /// Heap-allocated and shared with in-flight chunk callbacks: a lane set
  /// swap (reset_lanes) retires the old states but chunks already flying
  /// on them finish against the object they started on.
  struct LaneState {
    Lane lane;
    bool dead = false;
    bool retired = false;  // replaced by reset_lanes; not a failure
    std::vector<HopState> hops;  // one per path edge
    /// Chunks currently inside this lane (flying or parked at a relay).
    /// Admission from the shared pool is capped at the lane's pipeline
    /// depth, so a lane only accepts work as fast as it drains end-to-end
    /// — otherwise a fast first hop would pile chunks behind a slow WAN
    /// hop and defeat the pool's load balancing.
    int in_lane = 0;
    Bytes bytes_delivered;
  };

  struct ChunkState {
    Bytes size;
    std::uint64_t hash = 0;
    bool delivered = false;
    bool acked = false;
    int attempts = 0;
    int in_flight = 0;  // concurrent copies (original + retransmits)
    obs::SpanId span = obs::kNoSpan;  // open from first admission to delivery
  };

  void pump();
  void pump_hop(const std::shared_ptr<LaneState>& lane, std::size_t hop);
  void send_hop(const std::shared_ptr<LaneState>& lane, int chunk, std::size_t hop);
  void arm_timeout(int chunk);
  void on_delivered(LaneState& lane, int chunk);
  void kill_lane(LaneState& lane);
  void drain_waiting(LaneState& lane);
  void requeue(int chunk, bool count_attempt);
  void maybe_finish();
  void finish(bool ok);
  [[nodiscard]] SimDuration chunk_timeout() const;
  [[nodiscard]] cloud::FlowOptions hop_flow_options(cloud::VmId sender) const;
  void bind_obs();

  cloud::CloudProvider& provider_;
  sim::SimEngine& engine_;
  Bytes size_;
  TransferConfig config_;
  CompletionFn on_done_;

  std::vector<std::shared_ptr<LaneState>> lanes_;
  std::vector<ChunkState> chunks_;
  std::deque<int> pool_;  // chunk indices awaiting (re)transmission
  mutable std::vector<Bytes> lane_bytes_;  // rebuilt from lanes_ on access
  std::vector<cloud::FlowId> active_flows_;
  TransferStats stats_;
  SimTime started_;
  Bytes delivered_bytes_;
  bool running_ = false;
  bool finished_ = false;
  int completed_ = 0;  // chunks acked (or delivered, when acks are off)
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);

  // Observability (all null/zero when the engine has obs disabled).
  obs::TraceSink* tracer_ = nullptr;
  obs::Counter* obs_started_ = nullptr;
  obs::Counter* obs_completed_ = nullptr;
  obs::Counter* obs_failed_ = nullptr;
  obs::Counter* obs_bytes_ = nullptr;
  obs::Counter* obs_chunks_ = nullptr;
  obs::Counter* obs_retransmissions_ = nullptr;
  obs::Counter* obs_duplicates_ = nullptr;
  obs::Counter* obs_hop_failures_ = nullptr;
  obs::Histogram* obs_throughput_ = nullptr;
  obs::SpanId span_ = obs::kNoSpan;
  std::uint32_t transfer_name_ = 0;  // interned span names
  std::uint32_t chunk_name_ = 0;
};

/// Convenience: single-lane direct transfer src -> dst.
[[nodiscard]] std::vector<Lane> direct_lane(cloud::VmId src, cloud::VmId dst);

}  // namespace sage::net
