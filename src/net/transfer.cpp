#include "net/transfer.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/hash.hpp"

namespace sage::net {

std::vector<Lane> direct_lane(cloud::VmId src, cloud::VmId dst) {
  return {Lane{{src, dst}}};
}

GeoTransfer::GeoTransfer(cloud::CloudProvider& provider, Bytes size, std::vector<Lane> lanes,
                         TransferConfig config, CompletionFn on_done)
    : provider_(provider),
      engine_(provider.engine()),
      size_(size),
      config_(config),
      on_done_(std::move(on_done)) {
  SAGE_CHECK(size > Bytes::zero());
  SAGE_CHECK(config_.chunk_size > Bytes::zero());
  SAGE_CHECK(config_.streams_per_hop > 0);
  SAGE_CHECK(config_.intrusiveness > 0.0 && config_.intrusiveness <= 1.0);
  SAGE_CHECK(config_.max_attempts > 0);
  SAGE_CHECK(on_done_ != nullptr);
  SAGE_CHECK_MSG(!lanes.empty(), "a transfer needs at least one lane");

  // Fragmentation: equal chunks, last one carries the remainder.
  const std::int64_t chunk = config_.chunk_size.count();
  const std::int64_t n = (size.count() + chunk - 1) / chunk;
  chunks_.resize(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t lo = i * chunk;
    const std::int64_t hi = std::min(lo + chunk, size.count());
    chunks_[static_cast<std::size_t>(i)].size = Bytes::of(hi - lo);
    chunks_[static_cast<std::size_t>(i)].hash =
        hash_combine(hash_u64(static_cast<std::uint64_t>(i)),
                     hash_u64(static_cast<std::uint64_t>(hi - lo)));
  }
  stats_.chunks_total = static_cast<int>(n);
  bind_obs();
  reset_lanes(std::move(lanes));
}

void GeoTransfer::bind_obs() {
  obs::Observability* o = engine_.obs();
  if (o == nullptr) return;
  auto& m = o->metrics();
  obs_started_ = m.counter("transfer.started");
  obs_completed_ = m.counter("transfer.completed");
  obs_failed_ = m.counter("transfer.failed");
  obs_bytes_ = m.counter("transfer.bytes.delivered");
  obs_chunks_ = m.counter("transfer.chunks.delivered");
  obs_retransmissions_ = m.counter("transfer.retransmissions");
  obs_duplicates_ = m.counter("transfer.duplicates_dropped");
  obs_hop_failures_ = m.counter("transfer.hop_failures");
  obs_throughput_ = m.histogram("transfer.throughput_mbps",
                                {1, 2, 5, 10, 20, 50, 100, 200, 500, 1000});
  tracer_ = o->tracer();
  if (tracer_ != nullptr) {
    transfer_name_ = tracer_->intern("transfer");
    chunk_name_ = tracer_->intern("transfer.chunk");
  }
}

GeoTransfer::~GeoTransfer() { *alive_ = false; }

void GeoTransfer::reset_lanes(std::vector<Lane> lanes) {
  SAGE_CHECK(!lanes.empty());
  const cloud::VmId src = lanes.front().path.front();
  const cloud::VmId dst = lanes.front().path.back();

  // Retire the current lane set. Chunks parked at relay queues restart
  // from the source; chunks already flying complete (or fail) against the
  // retired state and are routed onward by their own callbacks.
  for (auto& old : lanes_) {
    old->dead = true;
    old->retired = true;
    drain_waiting(*old);
  }
  lanes_.clear();

  for (Lane& lane : lanes) {
    SAGE_CHECK_MSG(lane.path.size() >= 2, "lane path needs at least src and dst");
    SAGE_CHECK_MSG(lane.path.front() == src && lane.path.back() == dst,
                   "all lanes must share the transfer's endpoints");
    auto state = std::make_shared<LaneState>();
    state->hops.resize(lane.path.size() - 1);
    for (HopState& hop : state->hops) hop.free_slots = config_.streams_per_hop;
    state->lane = std::move(lane);
    lanes_.push_back(std::move(state));
  }
  if (running_) pump();
}

const std::vector<Bytes>& GeoTransfer::lane_bytes() const {
  lane_bytes_.clear();
  for (const auto& lane : lanes_) lane_bytes_.push_back(lane->bytes_delivered);
  return lane_bytes_;
}

void GeoTransfer::start() {
  SAGE_CHECK_MSG(!running_ && !finished_, "start() is one-shot");
  running_ = true;
  started_ = engine_.now();
  if (obs_started_ != nullptr) {
    obs_started_->add();
    if (tracer_ != nullptr) {
      span_ = tracer_->begin(transfer_name_, started_, obs::kNoSpan,
                             size_.to_mb(), static_cast<double>(lanes_.size()));
    }
  }
  for (int c = 0; c < stats_.chunks_total; ++c) pool_.push_back(c);
  pump();
}

void GeoTransfer::cancel() {
  if (finished_) return;
  finish(false);
}

Bytes GeoTransfer::delivered() const { return delivered_bytes_; }

SimDuration GeoTransfer::chunk_timeout() const {
  // Expected service time at a conservative 1 MB/s floor rate.
  const SimDuration expected =
      ByteRate::mb_per_sec(1.0).time_for(config_.chunk_size) * config_.timeout_factor;
  return std::max(expected, config_.timeout_floor);
}

cloud::FlowOptions GeoTransfer::hop_flow_options(cloud::VmId sender) const {
  cloud::FlowOptions options;
  const ByteRate nic = cloud::vm_spec(provider_.vm(sender).size).nic;
  options.demand_cap =
      nic * (config_.intrusiveness / static_cast<double>(config_.streams_per_hop));
  return options;
}

void GeoTransfer::pump() {
  if (!running_ || finished_) return;
  // Relay hops drain their own queues first, then first hops drain the
  // shared pool round-robin across lanes.
  for (auto& lane : lanes_) {
    if (lane->dead) continue;
    for (std::size_t h = 1; h < lane->hops.size(); ++h) pump_hop(lane, h);
  }
  bool progress = true;
  while (progress && !pool_.empty()) {
    progress = false;
    for (auto& lane : lanes_) {
      if (pool_.empty()) break;
      const int pipeline_depth =
          config_.streams_per_hop * static_cast<int>(lane->hops.size());
      if (lane->dead || lane->hops[0].free_slots <= 0 ||
          lane->in_lane >= pipeline_depth) {
        continue;
      }
      const int chunk = pool_.front();
      pool_.pop_front();
      ChunkState& cs = chunks_[static_cast<std::size_t>(chunk)];
      if (cs.delivered) continue;  // stale retransmit entry
      ++cs.in_flight;
      ++lane->in_lane;
      if (tracer_ != nullptr && cs.span == obs::kNoSpan) {
        cs.span = tracer_->begin(chunk_name_, engine_.now(), span_, cs.size.to_mb());
      }
      arm_timeout(chunk);
      send_hop(lane, chunk, 0);
      progress = true;
    }
  }
}

void GeoTransfer::pump_hop(const std::shared_ptr<LaneState>& lane, std::size_t hop) {
  HopState& state = lane->hops[hop];
  while (state.free_slots > 0 && !state.waiting.empty()) {
    const int chunk = state.waiting.front();
    state.waiting.pop_front();
    send_hop(lane, chunk, hop);
  }
}

void GeoTransfer::send_hop(const std::shared_ptr<LaneState>& lane, int chunk,
                           std::size_t hop) {
  const cloud::VmId sender = lane->lane.path[hop];
  const cloud::VmId receiver = lane->lane.path[hop + 1];
  if (!provider_.is_active(sender) || !provider_.is_active(receiver)) {
    ++stats_.hop_failures;
    if (obs_hop_failures_ != nullptr) obs_hop_failures_->add();
    --chunks_[static_cast<std::size_t>(chunk)].in_flight;
    --lane->in_lane;
    kill_lane(*lane);
    requeue(chunk, /*count_attempt=*/true);
    pump();
    return;
  }

  --lane->hops[hop].free_slots;
  const Bytes size = chunks_[static_cast<std::size_t>(chunk)].size;
  auto alive = alive_;
  const cloud::FlowId fid = provider_.transfer(
      sender, receiver, size, hop_flow_options(sender),
      [this, alive, lane, chunk, hop](const cloud::FlowResult& r) {
        if (!*alive) return;
        std::erase(active_flows_, r.id);
        if (finished_) return;
        ++lane->hops[hop].free_slots;
        if (!r.ok()) {
          ++stats_.hop_failures;
          if (obs_hop_failures_ != nullptr) obs_hop_failures_->add();
          --chunks_[static_cast<std::size_t>(chunk)].in_flight;
          --lane->in_lane;
          if (!lane->retired) kill_lane(*lane);
          requeue(chunk, /*count_attempt=*/true);
          pump();
          return;
        }
        if (hop + 1 == lane->lane.path.size() - 1) {
          on_delivered(*lane, chunk);
        } else if (!lane->dead) {
          lane->hops[hop + 1].waiting.push_back(chunk);
          pump_hop(lane, hop + 1);
        } else {
          // Lane died (or was retired) while the chunk was mid-flight:
          // resend from the source through the live lane set. Not a
          // failure of the chunk itself, so it costs no attempt.
          --chunks_[static_cast<std::size_t>(chunk)].in_flight;
          --lane->in_lane;
          requeue(chunk, /*count_attempt=*/false);
        }
        pump();
      });
  active_flows_.push_back(fid);
}

void GeoTransfer::arm_timeout(int chunk) {
  if (!config_.acknowledgements) return;
  auto alive = alive_;
  // Exponential backoff across attempts: under heavy congestion every
  // chunk is slow, and retransmitting on a fixed deadline only adds load —
  // the classic self-sustaining timeout storm. Each failed attempt doubles
  // the patience.
  const int shift =
      std::min(chunks_[static_cast<std::size_t>(chunk)].attempts, 4);
  engine_.schedule_after(chunk_timeout() * static_cast<double>(1 << shift),
                         [this, alive, chunk] {
    if (!*alive || finished_) return;
    ChunkState& cs = chunks_[static_cast<std::size_t>(chunk)];
    const bool settled = config_.acknowledgements ? cs.acked : cs.delivered;
    if (settled) return;
    ++stats_.retransmissions;
    if (obs_retransmissions_ != nullptr) obs_retransmissions_->add();
    requeue(chunk, /*count_attempt=*/true);
    pump();
  });
}

void GeoTransfer::on_delivered(LaneState& lane, int chunk) {
  ChunkState& cs = chunks_[static_cast<std::size_t>(chunk)];
  --cs.in_flight;
  --lane.in_lane;
  if (cs.delivered) {
    // A retransmitted copy raced the original and lost: receiver dedup by
    // chunk hash drops it.
    ++stats_.duplicates_dropped;
    if (obs_duplicates_ != nullptr) obs_duplicates_->add();
    return;
  }
  cs.delivered = true;
  ++stats_.chunks_delivered;
  delivered_bytes_ += cs.size;
  lane.bytes_delivered += cs.size;
  if (obs_chunks_ != nullptr) {
    obs_chunks_->add();
    obs_bytes_->add(static_cast<std::uint64_t>(cs.size.count()));
    if (tracer_ != nullptr && cs.span != obs::kNoSpan) {
      tracer_->end(cs.span, engine_.now());
    }
  }

  if (!config_.acknowledgements) {
    ++completed_;
    maybe_finish();
    return;
  }
  // End-to-end acknowledgement: one-way control message back to the source.
  const cloud::VmId src = lane.lane.path.front();
  const cloud::VmId dst = lane.lane.path.back();
  const SimDuration ack_latency =
      provider_.rtt(provider_.vm(dst).region, provider_.vm(src).region) / 2.0;
  auto alive = alive_;
  engine_.schedule_after(ack_latency, [this, alive, chunk] {
    if (!*alive || finished_) return;
    ChunkState& state = chunks_[static_cast<std::size_t>(chunk)];
    if (state.acked) return;
    state.acked = true;
    ++completed_;
    maybe_finish();
  });
}

void GeoTransfer::drain_waiting(LaneState& lane) {
  for (std::size_t h = 1; h < lane.hops.size(); ++h) {
    for (int chunk : lane.hops[h].waiting) {
      --chunks_[static_cast<std::size_t>(chunk)].in_flight;
      --lane.in_lane;
      requeue(chunk, /*count_attempt=*/false);
    }
    lane.hops[h].waiting.clear();
  }
}

void GeoTransfer::kill_lane(LaneState& lane) {
  if (lane.dead) return;
  lane.dead = true;
  drain_waiting(lane);
  // If every current lane is dead and work remains, the transfer cannot
  // finish. Retired lanes do not count: a reset always installs live ones.
  const bool any_alive =
      std::any_of(lanes_.begin(), lanes_.end(),
                  [](const auto& l) { return !l->dead; });
  if (!any_alive && completed_ < stats_.chunks_total) finish(false);
}

void GeoTransfer::requeue(int chunk, bool count_attempt) {
  ChunkState& cs = chunks_[static_cast<std::size_t>(chunk)];
  if (cs.delivered) return;
  // `attempts` counts failure-driven resends (hop failures, timeouts);
  // lane retirement during adaptation requeues for free.
  if (count_attempt) ++cs.attempts;
  if (cs.attempts >= config_.max_attempts && cs.in_flight == 0) {
    finish(false);
    return;
  }
  if (cs.attempts >= config_.max_attempts) return;  // copies still in flight
  pool_.push_back(chunk);
}

void GeoTransfer::maybe_finish() {
  if (completed_ >= stats_.chunks_total) finish(true);
}

void GeoTransfer::finish(bool ok) {
  if (finished_) return;
  finished_ = true;
  running_ = false;
  for (const cloud::FlowId fid : std::vector<cloud::FlowId>(active_flows_)) {
    provider_.fabric().cancel_flow(fid);
  }
  active_flows_.clear();
  TransferResult result;
  result.ok = ok;
  result.size = ok ? size_ : delivered_bytes_;
  result.started = started_;
  result.finished = engine_.now();
  result.stats = stats_;
  if (obs_completed_ != nullptr) {
    (ok ? obs_completed_ : obs_failed_)->add();
    if (ok && result.elapsed() > SimDuration::zero()) {
      obs_throughput_->observe(result.throughput().bytes_per_second() / 1e6);
    }
    if (tracer_ != nullptr && span_ != obs::kNoSpan) {
      tracer_->end(span_, result.finished, /*a=*/0.0,
                   /*b=*/static_cast<double>(stats_.retransmissions));
    }
  }
  on_done_(result);
}

}  // namespace sage::net
