#include "net/tree_transfer.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace sage::net {

TreeTransfer::TreeTransfer(cloud::CloudProvider& provider, Bytes size,
                           std::vector<TreeNode> tree, TransferConfig config,
                           CompletionFn on_done)
    : provider_(provider),
      engine_(provider.engine()),
      size_(size),
      tree_(std::move(tree)),
      config_(config),
      on_done_(std::move(on_done)) {
  SAGE_CHECK(size > Bytes::zero());
  SAGE_CHECK(on_done_ != nullptr);
  SAGE_CHECK_MSG(tree_.size() >= 2, "a tree transfer needs a root and a destination");
  SAGE_CHECK_MSG(tree_[0].parent == -1, "node 0 must be the root");
  for (std::size_t i = 1; i < tree_.size(); ++i) {
    SAGE_CHECK_MSG(tree_[i].parent >= 0 && tree_[i].parent < static_cast<int>(i),
                   "parents must precede children");
  }

  const std::int64_t chunk = config_.chunk_size.count();
  const std::int64_t n = (size.count() + chunk - 1) / chunk;
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t lo = i * chunk;
    const std::int64_t hi = std::min(lo + chunk, size.count());
    chunk_sizes_.push_back(Bytes::of(hi - lo));
  }

  received_.assign(tree_.size(), 0);
  completion_.assign(tree_.size(), SimDuration::zero());
  has_chunk_.assign(tree_.size(), std::vector<bool>(chunk_sizes_.size(), false));
  for (std::size_t i = 1; i < tree_.size(); ++i) {
    EdgeState edge;
    edge.node = static_cast<int>(i);
    edge.free_slots = config_.streams_per_hop;
    edges_.push_back(std::move(edge));
  }

  if (obs::Observability* o = engine_.obs()) {
    auto& m = o->metrics();
    obs_started_ = m.counter("tree_transfer.started");
    obs_completed_ = m.counter("tree_transfer.completed");
    obs_failed_ = m.counter("tree_transfer.failed");
    obs_edge_failures_ = m.counter("tree_transfer.edge_failures");
    obs_bytes_ = m.counter("tree_transfer.bytes.delivered");
    tracer_ = o->tracer();
    if (tracer_ != nullptr) {
      tree_name_ = tracer_->intern("tree_transfer");
      node_name_ = tracer_->intern("tree_transfer.node_complete");
    }
  }
}

TreeTransfer::~TreeTransfer() { *alive_ = false; }

void TreeTransfer::start() {
  SAGE_CHECK_MSG(!running_ && !finished_, "start() is one-shot");
  running_ = true;
  started_ = engine_.now();
  if (obs_started_ != nullptr) {
    obs_started_->add();
    if (tracer_ != nullptr) {
      span_ = tracer_->begin(tree_name_, started_, obs::kNoSpan, size_.to_mb(),
                             static_cast<double>(tree_.size()));
    }
  }
  // The root owns every chunk; every root-child edge may begin immediately.
  std::fill(has_chunk_[0].begin(), has_chunk_[0].end(), true);
  received_[0] = static_cast<int>(chunk_sizes_.size());
  ++nodes_complete_;
  for (std::size_t e = 0; e < edges_.size(); ++e) {
    if (tree_[static_cast<std::size_t>(edges_[e].node)].parent == 0) {
      for (int c = 0; c < static_cast<int>(chunk_sizes_.size()); ++c) {
        edges_[e].waiting.push_back(c);
      }
      pump(e);
    }
  }
}

void TreeTransfer::cancel() {
  if (finished_) return;
  finish(false);
}

void TreeTransfer::pump(std::size_t edge_idx) {
  if (!running_ || finished_) return;
  EdgeState& edge = edges_[edge_idx];
  const int node = edge.node;
  const cloud::VmId parent_vm =
      tree_[static_cast<std::size_t>(tree_[static_cast<std::size_t>(node)].parent)].vm;
  const cloud::VmId child_vm = tree_[static_cast<std::size_t>(node)].vm;

  while (edge.free_slots > 0 && !edge.waiting.empty()) {
    const int chunk = edge.waiting.front();
    edge.waiting.pop_front();
    if (has_chunk_[static_cast<std::size_t>(node)][static_cast<std::size_t>(chunk)]) {
      continue;  // duplicate from a retry
    }
    if (!provider_.is_active(parent_vm) || !provider_.is_active(child_vm)) {
      ++edge_failures_;
      if (obs_edge_failures_ != nullptr) obs_edge_failures_->add();
      finish(false);
      return;
    }
    --edge.free_slots;

    cloud::FlowOptions options;
    const ByteRate nic = cloud::vm_spec(provider_.vm(parent_vm).size).nic;
    options.demand_cap =
        nic * (config_.intrusiveness / static_cast<double>(config_.streams_per_hop));

    auto alive = alive_;
    const cloud::FlowId fid = provider_.transfer(
        parent_vm, child_vm, chunk_sizes_[static_cast<std::size_t>(chunk)], options,
        [this, alive, edge_idx, chunk](const cloud::FlowResult& r) {
          if (!*alive) return;
          std::erase(active_flows_, r.id);
          if (finished_) return;
          EdgeState& e = edges_[edge_idx];
          ++e.free_slots;
          if (!r.ok()) {
            ++edge_failures_;
            if (obs_edge_failures_ != nullptr) obs_edge_failures_->add();
            if (++e.attempts >= config_.max_attempts) {
              finish(false);
              return;
            }
            e.waiting.push_back(chunk);  // retry this edge
          } else {
            on_arrival(e.node, chunk);
          }
          pump(edge_idx);
        });
    active_flows_.push_back(fid);
  }
}

void TreeTransfer::on_arrival(int node, int chunk) {
  auto& flags = has_chunk_[static_cast<std::size_t>(node)];
  if (flags[static_cast<std::size_t>(chunk)]) return;  // dedup
  flags[static_cast<std::size_t>(chunk)] = true;
  ++received_[static_cast<std::size_t>(node)];
  if (obs_bytes_ != nullptr) {
    obs_bytes_->add(
        static_cast<std::uint64_t>(chunk_sizes_[static_cast<std::size_t>(chunk)].count()));
  }

  // Cut-through: hand the fresh chunk to each of this node's child edges.
  for (std::size_t e = 0; e < edges_.size(); ++e) {
    if (tree_[static_cast<std::size_t>(edges_[e].node)].parent == node) {
      edges_[e].waiting.push_back(chunk);
      pump(e);
    }
  }

  if (received_[static_cast<std::size_t>(node)] ==
      static_cast<int>(chunk_sizes_.size())) {
    completion_[static_cast<std::size_t>(node)] = engine_.now() - started_;
    if (tracer_ != nullptr && span_ != obs::kNoSpan) {
      tracer_->instant(node_name_, engine_.now(), span_, static_cast<double>(node));
    }
    if (++nodes_complete_ == static_cast<int>(tree_.size())) finish(true);
  }

  // Track globally complete chunks (delivered to every node).
  bool everywhere = true;
  for (std::size_t n = 0; n < tree_.size(); ++n) {
    if (!has_chunk_[n][static_cast<std::size_t>(chunk)]) {
      everywhere = false;
      break;
    }
  }
  if (everywhere) ++chunks_complete_;
}

void TreeTransfer::finish(bool ok) {
  if (finished_) return;
  finished_ = true;
  running_ = false;
  for (const cloud::FlowId fid : std::vector<cloud::FlowId>(active_flows_)) {
    provider_.fabric().cancel_flow(fid);
  }
  active_flows_.clear();
  TreeResult result;
  result.ok = ok;
  result.size = size_;
  result.started = started_;
  result.finished = engine_.now();
  result.node_completion = completion_;
  result.edge_failures = edge_failures_;
  if (obs_completed_ != nullptr) {
    (ok ? obs_completed_ : obs_failed_)->add();
    if (tracer_ != nullptr && span_ != obs::kNoSpan) {
      tracer_->end(span_, result.finished);
    }
  }
  on_done_(result);
}

}  // namespace sage::net
