// Cut-through tree multicast: one dataset, many destinations.
//
// A TreeTransfer pushes a dataset down a tree of VMs with chunk-level
// pipelining: the moment a chunk lands at a node it is forwarded to each of
// the node's children, so interior sites relay while they are still
// receiving — the whole tree streams concurrently and the completion of
// the deepest leaf approaches size / min(edge rate) instead of the sum of
// full store-and-forward stages. Each tree edge runs a bounded number of
// parallel chunk flows (streams), and a failed edge flow retries with
// attempt accounting like the point-to-point GeoTransfer.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "cloud/provider.hpp"
#include "net/transfer.hpp"

namespace sage::net {

/// Tree shape: node 0 is the root (data source); every other node names
/// its parent. Parents must precede children in the vector.
struct TreeNode {
  cloud::VmId vm = 0;
  int parent = -1;  // -1 for the root
};

struct TreeResult {
  bool ok = false;
  Bytes size;
  SimTime started;
  SimTime finished;
  /// Completion offset of each node (index-aligned with the tree spec;
  /// entry 0 is zero — the root starts with the data).
  std::vector<SimDuration> node_completion;
  int edge_failures = 0;

  [[nodiscard]] SimDuration elapsed() const { return finished - started; }
};

class TreeTransfer {
 public:
  using CompletionFn = std::function<void(const TreeResult&)>;

  TreeTransfer(cloud::CloudProvider& provider, Bytes size, std::vector<TreeNode> tree,
               TransferConfig config, CompletionFn on_done);
  ~TreeTransfer();
  TreeTransfer(const TreeTransfer&) = delete;
  TreeTransfer& operator=(const TreeTransfer&) = delete;

  void start();
  void cancel();

  [[nodiscard]] bool finished() const { return finished_; }
  /// Chunks fully delivered to every node.
  [[nodiscard]] int chunks_complete() const { return chunks_complete_; }

 private:
  struct EdgeState {
    int node = 0;  // receiving node index
    int free_slots = 0;
    std::deque<int> waiting;  // chunk indices ready at the parent
    int attempts = 0;         // failure-driven retries on this edge
  };

  void pump(std::size_t edge_idx);
  void on_arrival(int node, int chunk);
  void finish(bool ok);

  cloud::CloudProvider& provider_;
  sim::SimEngine& engine_;
  Bytes size_;
  std::vector<TreeNode> tree_;
  TransferConfig config_;
  CompletionFn on_done_;

  std::vector<Bytes> chunk_sizes_;
  /// edges_[i] receives into tree node edges_[i].node; indexed per child.
  std::vector<EdgeState> edges_;
  /// received_[node] counts chunks landed at that node.
  std::vector<int> received_;
  std::vector<std::vector<bool>> has_chunk_;
  std::vector<SimDuration> completion_;
  std::vector<cloud::FlowId> active_flows_;
  SimTime started_;
  int chunks_complete_ = 0;
  int nodes_complete_ = 0;
  int edge_failures_ = 0;
  bool running_ = false;
  bool finished_ = false;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);

  // Observability (null/zero when the engine has obs disabled).
  obs::TraceSink* tracer_ = nullptr;
  obs::Counter* obs_started_ = nullptr;
  obs::Counter* obs_completed_ = nullptr;
  obs::Counter* obs_failed_ = nullptr;
  obs::Counter* obs_edge_failures_ = nullptr;
  obs::Counter* obs_bytes_ = nullptr;  // bytes landed across all tree nodes
  obs::SpanId span_ = obs::kNoSpan;
  std::uint32_t tree_name_ = 0;
  std::uint32_t node_name_ = 0;
};

}  // namespace sage::net
