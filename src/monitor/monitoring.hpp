// The Monitoring Agent service: a continuously updated, environment-aware
// map of the multi-site cloud.
//
// One agent VM is registered per region; the service then probes every
// directed region pair at a configurable interval (staggered so probes do
// not synchronize) by timing a real transfer between the agent VMs — an
// iperf-style active measurement that exercises exactly the path real
// transfers take. Samples feed per-link estimators (WSI by default).
//
// Intrusiveness throttle: while a link carries live transfer flows, active
// probes on it are suspended and the service instead ingests throughput
// observations reported by the transfer layer itself (the achieved per-flow
// rate *is* a sample, and a free one).
//
// CPU agents: each registered agent VM also runs a periodic arithmetic
// benchmark whose result tracks the VM's multi-tenant compute factor.
#pragma once

#include <array>
#include <deque>
#include <functional>
#include <iosfwd>
#include <memory>
#include <optional>
#include <vector>

#include "cloud/provider.hpp"
#include "monitor/estimator.hpp"
#include "simcore/engine.hpp"

namespace sage::monitor {

struct LinkEstimate {
  double mean_mbps = 0.0;
  double stddev_mbps = 0.0;
  std::size_t samples = 0;

  [[nodiscard]] ByteRate mean_rate() const { return ByteRate::mb_per_sec(mean_mbps); }
  [[nodiscard]] bool ready() const { return samples > 0; }
};

/// Snapshot of all directed inter-region estimates (the "online map").
struct ThroughputMatrix {
  std::array<std::array<LinkEstimate, cloud::kRegionCount>, cloud::kRegionCount> links{};
  SimTime taken_at;

  [[nodiscard]] const LinkEstimate& at(cloud::Region src, cloud::Region dst) const {
    return links[cloud::region_index(src)][cloud::region_index(dst)];
  }
};

/// One recorded measurement (kept in the per-link history ring).
struct Sample {
  SimTime at;
  double mbps = 0.0;
};

struct MonitorConfig {
  EstimatorKind kind = EstimatorKind::kWeighted;
  EstimatorConfig estimator;
  /// Interval between probes of the same link.
  SimDuration probe_interval = SimDuration::minutes(5);
  /// Payload of one bandwidth probe.
  Bytes probe_size = Bytes::mb(8);
  /// Interval between CPU benchmarks on each agent VM.
  SimDuration cpu_probe_interval = SimDuration::minutes(2);
  /// Suspend active probes while the link carries transfer flows.
  bool suspend_when_busy = true;
  /// Samples retained per link for profiling / introspection (the "tracked
  /// logs" scientists use to understand their cloud application and the
  /// base of the self-healing loop). 0 disables history.
  std::size_t history_capacity = 2048;
};

class MonitoringService {
 public:
  /// Callback fired for every accepted bandwidth sample (experiments hook
  /// this to record traces): (src, dst, time, MB/s).
  using SampleHook =
      std::function<void(cloud::Region, cloud::Region, SimTime, double)>;

  MonitoringService(cloud::CloudProvider& provider, MonitorConfig config);
  ~MonitoringService();
  MonitoringService(const MonitoringService&) = delete;
  MonitoringService& operator=(const MonitoringService&) = delete;

  /// Register the VM hosting the monitoring agent in `region`. Probing of a
  /// pair begins once both of its endpoints have agents.
  void register_agent(cloud::Region region, cloud::VmId vm);

  void start();
  void stop();
  [[nodiscard]] bool running() const { return running_; }

  /// Feedback path from the transfer layer: the achieved per-flow rate of a
  /// live wide-area transfer, ingested as a sample at the current time.
  void report_transfer_observation(cloud::Region src, cloud::Region dst,
                                   ByteRate per_flow);

  [[nodiscard]] LinkEstimate estimate(cloud::Region src, cloud::Region dst) const;
  [[nodiscard]] ThroughputMatrix snapshot() const;

  /// Estimated CPU factor of the agent VM in `region` (nominal 1.0).
  [[nodiscard]] double cpu_estimate(cloud::Region region) const;

  void set_sample_hook(SampleHook hook) { hook_ = std::move(hook); }

  /// Recorded samples for a link, oldest first (empty when unmonitored or
  /// history is disabled).
  [[nodiscard]] std::vector<Sample> history(cloud::Region src, cloud::Region dst) const;

  /// Dump every link's recorded history as CSV
  /// (src,dst,time_seconds,mbps) — the tracked log scientists use to
  /// profile their cloud application offline. Returns rows written.
  std::size_t export_history_csv(std::ostream& out) const;

  /// Direct estimator access for experiments (may be nullptr before any
  /// agent pair exists). Non-owning.
  [[nodiscard]] Estimator* link_estimator(cloud::Region src, cloud::Region dst);

  [[nodiscard]] std::uint64_t probes_sent() const { return probes_sent_; }
  [[nodiscard]] std::uint64_t probes_suspended() const { return probes_suspended_; }

 private:
  struct LinkMonitor {
    cloud::Region src;
    cloud::Region dst;
    std::unique_ptr<Estimator> estimator;
    std::unique_ptr<sim::PeriodicTask> task;
    std::deque<Sample> history;
    bool probe_in_flight = false;
  };

  void maybe_create_pairs();
  void probe_link(LinkMonitor& link);
  void run_cpu_probe(cloud::Region region);
  /// Common ingestion for probe results and transfer observations: feeds
  /// the estimator, the history ring and the sample hook.
  void ingest(LinkMonitor& link, double mbps);

  cloud::CloudProvider& provider_;
  sim::SimEngine& engine_;
  MonitorConfig config_;
  std::array<std::optional<cloud::VmId>, cloud::kRegionCount> agents_;
  std::vector<std::unique_ptr<LinkMonitor>> links_;
  std::array<std::unique_ptr<Estimator>, cloud::kRegionCount> cpu_;
  std::vector<std::unique_ptr<sim::PeriodicTask>> cpu_tasks_;
  SampleHook hook_;
  bool running_ = false;
  std::uint64_t probes_sent_ = 0;
  std::uint64_t probes_suspended_ = 0;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace sage::monitor
