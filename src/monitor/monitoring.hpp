// The Monitoring Agent service: a continuously updated, environment-aware
// map of the multi-site cloud.
//
// One agent VM is registered per region; the service then probes every
// directed region pair at a configurable interval (staggered so probes do
// not synchronize) by timing a real transfer between the agent VMs — an
// iperf-style active measurement that exercises exactly the path real
// transfers take. Samples feed per-link estimators (WSI by default).
//
// Intrusiveness throttle: while a link carries live transfer flows, active
// probes on it are suspended and the service instead ingests throughput
// observations reported by the transfer layer itself (the achieved per-flow
// rate *is* a sample, and a free one).
//
// CPU agents: each registered agent VM also runs a periodic arithmetic
// benchmark whose result tracks the VM's multi-tenant compute factor.
#pragma once

#include <array>
#include <deque>
#include <functional>
#include <iosfwd>
#include <memory>
#include <optional>
#include <vector>

#include "cloud/provider.hpp"
#include "monitor/estimator.hpp"
#include "obs/metrics.hpp"
#include "simcore/engine.hpp"

namespace sage::monitor {

struct LinkEstimate {
  double mean_mbps = 0.0;
  double stddev_mbps = 0.0;
  std::size_t samples = 0;

  [[nodiscard]] ByteRate mean_rate() const { return ByteRate::mb_per_sec(mean_mbps); }
  [[nodiscard]] bool ready() const { return samples > 0; }
};

/// Snapshot of the directed inter-region estimates (the "online map").
///
/// Sparse: entries exist only for monitored pairs, indexed by per-source
/// rows sorted by destination, so memory and iteration cost scale with the
/// monitored links — never N². Planners walk row(src) as an adjacency list;
/// absent pairs read as a zero-sample estimate, exactly like an unmonitored
/// pair of the historical dense matrix.
class ThroughputMatrix {
 public:
  struct Entry {
    cloud::Region src;
    cloud::Region dst;
    LinkEstimate est;
  };

  SimTime taken_at;
  /// Monotone sample epoch of the matrix contents: the value of
  /// MonitoringService::sample_epoch() when the entries were last rebuilt.
  /// Two snapshots with equal epochs are entry-wise identical, which is the
  /// invariant every downstream memo (plan / resolve / replan skip) keys on.
  std::uint64_t epoch = 0;

  ThroughputMatrix() = default;
  explicit ThroughputMatrix(std::size_t region_count) { ensure_regions(region_count); }

  /// Number of regions the map spans (grows with the highest region ever
  /// set). Planners size their per-region scratch off this.
  [[nodiscard]] std::size_t region_count() const { return rows_.size(); }
  void ensure_regions(std::size_t n) {
    if (n > rows_.size()) rows_.resize(n);
  }

  /// Estimate for a directed pair; a zero-sample (not ready) estimate when
  /// the pair was never set. O(log row degree).
  [[nodiscard]] const LinkEstimate& at(cloud::Region src, cloud::Region dst) const;

  /// Entry indices of src's outgoing monitored pairs, dst ascending.
  [[nodiscard]] const std::vector<std::int32_t>& row(cloud::Region src) const;
  [[nodiscard]] const std::vector<Entry>& entries() const { return entries_; }

  /// Mutable estimate slot for the pair, created (and regions grown) on
  /// demand.
  [[nodiscard]] LinkEstimate& slot(cloud::Region src, cloud::Region dst);
  void set(cloud::Region src, cloud::Region dst, const LinkEstimate& est) {
    slot(src, dst) = est;
  }

 private:
  std::vector<Entry> entries_;
  std::vector<std::vector<std::int32_t>> rows_;  // entry ids, sorted by dst
};

/// One recorded measurement (kept in the per-link history ring).
struct Sample {
  SimTime at;
  double mbps = 0.0;
};

struct MonitorConfig {
  EstimatorKind kind = EstimatorKind::kWeighted;
  EstimatorConfig estimator;
  /// Interval between probes of the same link.
  SimDuration probe_interval = SimDuration::minutes(5);
  /// Payload of one bandwidth probe.
  Bytes probe_size = Bytes::mb(8);
  /// Interval between CPU benchmarks on each agent VM.
  SimDuration cpu_probe_interval = SimDuration::minutes(2);
  /// Suspend active probes while the link carries transfer flows.
  bool suspend_when_busy = true;
  /// Samples retained per link for profiling / introspection (the "tracked
  /// logs" scientists use to understand their cloud application and the
  /// base of the self-healing loop). 0 disables history.
  std::size_t history_capacity = 2048;
  /// Serve snapshot() from an epoch-validated cache, re-querying only links
  /// whose estimators saw samples since the last call. Value-preserving by
  /// construction; the knob (AND the SAGE_CTRL_CACHE gate) exists for A/B
  /// measurement and the cached-vs-uncached differential tests.
  bool cache_snapshot = true;
  /// Pair-level probe ownership filter for sharded control planes: when
  /// set, only pairs the filter accepts run an active probe task on this
  /// service. Monitors still exist for every declared pair — the stagger
  /// index, matrix shape and remote sample delivery stay lane-invariant —
  /// but filtered pairs are fed exclusively by deliver_sample().
  std::function<bool(cloud::Region, cloud::Region)> probe_filter;
  /// Uniform sample report delay. When positive, every locally produced
  /// sample (probe result or transfer observation) is ingested at
  /// production time + report_delay instead of immediately, and the report
  /// relay (set_report_relay) fires at production time. Sharded control
  /// planes set this to the topology's max one-way latency (>= the
  /// conservative lookahead for any shard count) so the producing lane and
  /// every remote lane ingest each sample at the same absolute sim time.
  SimDuration report_delay = SimDuration::zero();
  /// Probe traffic runs between per-pair dedicated fabric endpoints
  /// instead of the shared agent VMs, so concurrent probes of different
  /// pairs never contend on an agent NIC. Required for shard-count
  /// invariance (pair ownership moves probes between lanes; shared-NIC
  /// contention would make measured rates depend on co-located pairs).
  /// The endpoints are plain fabric nodes — no provider RNG is consumed.
  bool isolated_probes = false;
  /// NIC rate of the dedicated probe endpoints (isolated_probes only).
  ByteRate probe_nic = ByteRate::mb_per_sec(125.0);
};

class MonitoringService {
 public:
  /// Callback fired for every accepted bandwidth sample (experiments hook
  /// this to record traces): (src, dst, time, MB/s).
  using SampleHook =
      std::function<void(cloud::Region, cloud::Region, SimTime, double)>;

  MonitoringService(cloud::CloudProvider& provider, MonitorConfig config);
  ~MonitoringService();
  MonitoringService(const MonitoringService&) = delete;
  MonitoringService& operator=(const MonitoringService&) = delete;

  /// Register the VM hosting the monitoring agent in `region`. Probing of a
  /// pair begins once both of its endpoints have agents.
  void register_agent(cloud::Region region, cloud::VmId vm);

  void start();
  void stop();
  [[nodiscard]] bool running() const { return running_; }

  /// Feedback path from the transfer layer: the achieved per-flow rate of a
  /// live wide-area transfer, ingested as a sample at the current time.
  void report_transfer_observation(cloud::Region src, cloud::Region dst,
                                   ByteRate per_flow);

  /// Fault-injection path (chaos layer): force a raw sample of `mbps` into
  /// the pair's estimator through the normal ingestion pipeline — history,
  /// sample hook and the monotone sample epoch all advance exactly as for a
  /// real probe, so poisoned maps stay internally consistent. Returns false
  /// (and does nothing) when the pair is unmonitored. Always immediate
  /// (never report-delayed): the sharded chaos controller replicates the
  /// poison event to every lane at the same absolute time itself.
  bool inject_sample(cloud::Region src, cloud::Region dst, double mbps);

  /// Relay hook fired at sample *production* time when report_delay > 0:
  /// (src, dst, MB/s). Sharded control planes forward the sample to every
  /// remote lane through the cross-shard mailboxes with the same delay, so
  /// all lanes ingest it at the same absolute time as the producing lane's
  /// own delayed ingestion.
  using ReportRelay = std::function<void(cloud::Region, cloud::Region, double)>;
  void set_report_relay(ReportRelay relay) { relay_ = std::move(relay); }

  /// Remote-lane delivery path: ingest a relayed sample into the pair's
  /// estimator *now* (the relay transport already applied the report
  /// delay). Returns false when the pair is unmonitored.
  bool deliver_sample(cloud::Region src, cloud::Region dst, double mbps);

  [[nodiscard]] LinkEstimate estimate(cloud::Region src, cloud::Region dst) const;

  /// The current throughput map. Served from an epoch-validated cache: when
  /// no sample landed since the previous call only `taken_at` is refreshed
  /// (O(1)); otherwise just the dirty links re-query their estimators. The
  /// reference stays valid until the next snapshot() call on this service.
  [[nodiscard]] const ThroughputMatrix& snapshot() const;

  /// Monotone counter bumped by every accepted link sample (probe result or
  /// transfer observation). Equal epochs guarantee an unchanged matrix —
  /// the invalidation key for every control-plane memo downstream.
  [[nodiscard]] std::uint64_t sample_epoch() const { return epoch_; }

  /// Snapshot-cache accounting (monotone; for tests and the obs mirror).
  [[nodiscard]] std::uint64_t snapshots_rebuilt() const { return snapshots_rebuilt_; }
  [[nodiscard]] std::uint64_t snapshots_cached() const { return snapshots_cached_; }

  /// Estimated CPU factor of the agent VM in `region` (nominal 1.0).
  [[nodiscard]] double cpu_estimate(cloud::Region region) const;

  void set_sample_hook(SampleHook hook) { hook_ = std::move(hook); }

  /// Recorded samples for a link, oldest first (empty when unmonitored or
  /// history is disabled).
  [[nodiscard]] std::vector<Sample> history(cloud::Region src, cloud::Region dst) const;

  /// Dump every link's recorded history as CSV
  /// (src,dst,time_seconds,mbps) — the tracked log scientists use to
  /// profile their cloud application offline. Returns rows written.
  std::size_t export_history_csv(std::ostream& out) const;

  /// Direct estimator access for experiments (may be nullptr before any
  /// agent pair exists). Non-owning. Handing out mutable access marks the
  /// link dirty and bumps the sample epoch so the snapshot cache can never
  /// serve stale entries; callers feeding samples through the returned
  /// pointer across multiple snapshots should prefer
  /// report_transfer_observation, which keeps the epoch exact.
  [[nodiscard]] Estimator* link_estimator(cloud::Region src, cloud::Region dst);

  [[nodiscard]] std::uint64_t probes_sent() const { return probes_sent_; }
  [[nodiscard]] std::uint64_t probes_suspended() const { return probes_suspended_; }

 private:
  struct LinkMonitor {
    cloud::Region src;
    cloud::Region dst;
    std::unique_ptr<Estimator> estimator;
    /// Null when config_.probe_filter rejected the pair (remote-owned on a
    /// sharded lane): the monitor then only receives delivered samples.
    std::unique_ptr<sim::PeriodicTask> task;
    std::deque<Sample> history;
    bool probe_in_flight = false;
    /// Saw a sample since the cached snapshot last re-queried this link.
    bool dirty = true;
    /// Dedicated probe endpoints (isolated_probes only).
    bool probe_nodes_ready = false;
    cloud::NodeId probe_src_node = 0;
    cloud::NodeId probe_dst_node = 0;
  };

  void maybe_create_pairs();
  void probe_link(LinkMonitor& link);
  void run_cpu_probe(cloud::Region region);
  /// Common ingestion for probe results and transfer observations: feeds
  /// the estimator, the history ring, the epoch and the sample hook.
  void ingest(LinkMonitor& link, double mbps);
  /// Routes a freshly produced sample: immediate ingestion in the legacy
  /// configuration; with report_delay set, fires the relay at production
  /// time and schedules the local ingestion at +report_delay.
  void accept_sample(LinkMonitor& link, double mbps);

  [[nodiscard]] std::size_t pair_index(cloud::Region src, cloud::Region dst) const {
    return cloud::region_index(src) * region_count_ + cloud::region_index(dst);
  }
  /// O(1) pair lookup (nullptr when the pair is unmonitored).
  [[nodiscard]] LinkMonitor* find_link(cloud::Region src, cloud::Region dst) const {
    const std::int32_t slot = pair_slot_[pair_index(src, dst)];
    return slot < 0 ? nullptr : links_[static_cast<std::size_t>(slot)].get();
  }

  cloud::CloudProvider& provider_;
  sim::SimEngine& engine_;
  MonitorConfig config_;
  std::size_t region_count_ = 0;  // provider topology's region count
  std::vector<std::optional<cloud::VmId>> agents_;  // sized region_count_
  std::vector<std::unique_ptr<LinkMonitor>> links_;
  /// Directed-pair presence/index table: pair_slot_[pair_index(a,b)] is the
  /// links_ index of that pair's monitor, or -1. 32-bit slots: an int16
  /// table overflows once N² monitored pairs exceed 32767 (a 256-region
  /// mesh has 65k). Replaces the per-registration O(links²) existence scan.
  std::vector<std::int32_t> pair_slot_;  // sized region_count_²
  std::vector<std::unique_ptr<Estimator>> cpu_;  // sized region_count_
  std::vector<std::unique_ptr<sim::PeriodicTask>> cpu_tasks_;
  SampleHook hook_;
  ReportRelay relay_;
  bool running_ = false;
  std::uint64_t probes_sent_ = 0;
  std::uint64_t probes_suspended_ = 0;
  /// Bumped on every accepted link sample (see sample_epoch()).
  std::uint64_t epoch_ = 0;
  // Snapshot cache: entries are rebuilt lazily per dirty link. `mutable`
  // because snapshot() is const for callers — the cache is pure memo.
  bool cache_on_ = true;
  mutable ThroughputMatrix cached_;
  mutable bool cache_primed_ = false;
  mutable std::uint64_t snapshots_rebuilt_ = 0;
  mutable std::uint64_t snapshots_cached_ = 0;
  // Obs mirror of the cache accounting (null when obs is off).
  obs::Counter* obs_rebuilt_ = nullptr;
  obs::Counter* obs_cached_ = nullptr;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace sage::monitor
