#include "monitor/monitoring.hpp"

#include <algorithm>
#include <ostream>

#include "common/check.hpp"
#include "obs/obs.hpp"

namespace sage::monitor {

const LinkEstimate& ThroughputMatrix::at(cloud::Region src, cloud::Region dst) const {
  static const LinkEstimate kAbsent{};
  const std::size_t s = cloud::region_index(src);
  if (s >= rows_.size()) return kAbsent;
  const std::vector<std::int32_t>& row = rows_[s];
  const auto it = std::lower_bound(row.begin(), row.end(), dst,
                                   [this](std::int32_t id, cloud::Region d) {
                                     return entries_[static_cast<std::size_t>(id)].dst < d;
                                   });
  if (it == row.end() || entries_[static_cast<std::size_t>(*it)].dst != dst) {
    return kAbsent;
  }
  return entries_[static_cast<std::size_t>(*it)].est;
}

const std::vector<std::int32_t>& ThroughputMatrix::row(cloud::Region src) const {
  static const std::vector<std::int32_t> kEmpty;
  const std::size_t s = cloud::region_index(src);
  return s < rows_.size() ? rows_[s] : kEmpty;
}

LinkEstimate& ThroughputMatrix::slot(cloud::Region src, cloud::Region dst) {
  const std::size_t s = cloud::region_index(src);
  const std::size_t d = cloud::region_index(dst);
  ensure_regions(std::max(s, d) + 1);
  std::vector<std::int32_t>& row = rows_[s];
  const auto it = std::lower_bound(row.begin(), row.end(), dst,
                                   [this](std::int32_t id, cloud::Region to) {
                                     return entries_[static_cast<std::size_t>(id)].dst < to;
                                   });
  if (it != row.end() && entries_[static_cast<std::size_t>(*it)].dst == dst) {
    return entries_[static_cast<std::size_t>(*it)].est;
  }
  const std::int32_t id = static_cast<std::int32_t>(entries_.size());
  entries_.push_back(Entry{src, dst, LinkEstimate{}});
  row.insert(it, id);
  return entries_.back().est;
}

MonitoringService::MonitoringService(cloud::CloudProvider& provider, MonitorConfig config)
    : provider_(provider),
      engine_(provider.engine()),
      config_(config),
      region_count_(provider.topology().region_count()),
      cache_on_(config.cache_snapshot && control_cache_enabled()) {
  agents_.resize(region_count_);
  cpu_.resize(region_count_);
  pair_slot_.assign(region_count_ * region_count_, -1);
  cached_.ensure_regions(region_count_);
  if (obs::Observability* o = engine_.obs()) {
    obs_rebuilt_ = o->metrics().counter("monitor.snapshot.rebuilt");
    obs_cached_ = o->metrics().counter("monitor.snapshot.cached");
  }
}

MonitoringService::~MonitoringService() { *alive_ = false; }

void MonitoringService::register_agent(cloud::Region region, cloud::VmId vm) {
  SAGE_CHECK_MSG(provider_.is_active(vm), "agent VM must be active");
  SAGE_CHECK_MSG(provider_.vm(vm).region == region, "agent VM must live in its region");
  agents_[cloud::region_index(region)] = vm;

  auto& cpu = cpu_[cloud::region_index(region)];
  if (!cpu) cpu = make_estimator(config_.kind, config_.estimator);
  maybe_create_pairs();
}

void MonitoringService::maybe_create_pairs() {
  // Monitors follow the topology's declared adjacency: only pairs that
  // physically carry traffic are probed, so monitor state is O(edges). The
  // default topology enumerates its edges row-major, which reproduces the
  // historical all-pairs creation (and probe-stagger) order exactly.
  for (const cloud::Topology::Edge& e : provider_.topology().edges()) {
    const cloud::Region a = e.src;
    const cloud::Region b = e.dst;
    if (a == b) continue;  // diagonal = intra-DC, never probed
    if (!agents_[cloud::region_index(a)] || !agents_[cloud::region_index(b)]) continue;
    if (pair_slot_[pair_index(a, b)] >= 0) continue;  // already monitored
    auto link = std::make_unique<LinkMonitor>();
    link->src = a;
    link->dst = b;
    link->estimator = make_estimator(config_.kind, config_.estimator);
    LinkMonitor* raw = link.get();
    // Sharded lanes probe only the pairs they own; the monitor itself is
    // created unconditionally so links_ (stagger order, matrix shape) is
    // identical on every lane.
    if (!config_.probe_filter || config_.probe_filter(a, b)) {
      link->task = std::make_unique<sim::PeriodicTask>(
          engine_, config_.probe_interval, [this, raw] { probe_link(*raw); });
      if (config_.isolated_probes) {
        link->probe_src_node =
            provider_.fabric().add_node(a, config_.probe_nic, config_.probe_nic);
        link->probe_dst_node =
            provider_.fabric().add_node(b, config_.probe_nic, config_.probe_nic);
        link->probe_nodes_ready = true;
      }
    }
    pair_slot_[pair_index(a, b)] = static_cast<std::int32_t>(links_.size());
    links_.push_back(std::move(link));
    if (running_ && links_.back()->task != nullptr) {
      // Stagger: start this pair's cadence offset by its index so probes
      // spread evenly over the interval instead of bursting together.
      const auto k = links_.size() - 1;
      const SimDuration offset =
          config_.probe_interval * (static_cast<double>(k % 16) / 16.0);
      auto alive = alive_;
      sim::PeriodicTask* task = links_.back()->task.get();
      engine_.schedule_after(offset, [alive, task] {
        if (*alive) task->start();
      });
    }
  }
}

void MonitoringService::start() {
  if (running_) return;
  running_ = true;
  std::size_t k = 0;
  for (auto& link : links_) {
    // The stagger index advances for every monitored pair, probed here or
    // not, so a sharded lane's owned probes keep the exact offsets they
    // have in the unsharded service.
    const SimDuration offset =
        config_.probe_interval * (static_cast<double>(k++ % 16) / 16.0);
    sim::PeriodicTask* task = link->task.get();
    if (task == nullptr) continue;  // remote-owned pair on a sharded lane
    auto alive = alive_;
    engine_.schedule_after(offset, [alive, task] {
      if (*alive) task->start();
    });
  }
  for (cloud::Region r : provider_.topology().regions()) {
    if (!agents_[cloud::region_index(r)]) continue;
    cpu_tasks_.push_back(std::make_unique<sim::PeriodicTask>(
        engine_, config_.cpu_probe_interval, [this, r] { run_cpu_probe(r); }));
    cpu_tasks_.back()->start();
  }
}

void MonitoringService::stop() {
  running_ = false;
  for (auto& link : links_) {
    if (link->task) link->task->stop();
  }
  for (auto& task : cpu_tasks_) task->stop();
  cpu_tasks_.clear();
}

void MonitoringService::probe_link(LinkMonitor& link) {
  if (link.probe_in_flight) return;  // previous probe still running
  const auto src_vm = agents_[cloud::region_index(link.src)];
  const auto dst_vm = agents_[cloud::region_index(link.dst)];
  if (!src_vm || !dst_vm) return;
  if (!provider_.is_active(*src_vm) || !provider_.is_active(*dst_vm)) return;

  if (config_.suspend_when_busy &&
      provider_.fabric().pair_flow_count(link.src, link.dst) > 0) {
    // The link is carrying real transfers; their achieved rates arrive via
    // report_transfer_observation instead, for free.
    ++probes_suspended_;
    return;
  }

  link.probe_in_flight = true;
  ++probes_sent_;
  auto alive = alive_;
  LinkMonitor* raw = &link;
  auto on_done = [this, alive, raw](const cloud::FlowResult& r) {
    if (!*alive) return;
    raw->probe_in_flight = false;
    if (!r.ok()) return;
    accept_sample(*raw, r.achieved_rate().to_mb_per_sec());
  };
  if (link.probe_nodes_ready) {
    // Dedicated endpoints: the probe exercises the same WAN pair link but
    // never shares a NIC with another pair's probe or with agent traffic.
    provider_.fabric().start_flow(link.probe_src_node, link.probe_dst_node,
                                  config_.probe_size, cloud::FlowOptions{},
                                  std::move(on_done));
    return;
  }
  provider_.transfer(*src_vm, *dst_vm, config_.probe_size, cloud::FlowOptions{},
                     std::move(on_done));
}

void MonitoringService::accept_sample(LinkMonitor& link, double mbps) {
  if (config_.report_delay <= SimDuration::zero()) {
    ingest(link, mbps);
    return;
  }
  // Production-time relay: remote lanes receive (src, dst, mbps) through
  // the cross-shard mailboxes and deliver at +report_delay; the local lane
  // defers its own ingestion by the same delay so every lane's estimator
  // advances at the same absolute sim time.
  if (relay_) relay_(link.src, link.dst, mbps);
  auto alive = alive_;
  LinkMonitor* raw = &link;
  engine_.schedule_after(config_.report_delay, [this, alive, raw, mbps] {
    if (*alive) ingest(*raw, mbps);
  });
}

void MonitoringService::ingest(LinkMonitor& link, double mbps) {
  link.estimator->add_sample(engine_.now(), mbps);
  link.dirty = true;
  ++epoch_;
  if (config_.history_capacity > 0) {
    link.history.push_back(Sample{engine_.now(), mbps});
    if (link.history.size() > config_.history_capacity) link.history.pop_front();
  }
  if (hook_) hook_(link.src, link.dst, engine_.now(), mbps);
}

std::vector<Sample> MonitoringService::history(cloud::Region src, cloud::Region dst) const {
  if (const LinkMonitor* link = find_link(src, dst)) {
    return std::vector<Sample>(link->history.begin(), link->history.end());
  }
  return {};
}

std::size_t MonitoringService::export_history_csv(std::ostream& out) const {
  out << "src,dst,time_s,mbps\n";
  std::size_t rows = 0;
  for (const auto& link : links_) {
    for (const Sample& s : link->history) {
      out << cloud::region_code(link->src) << ',' << cloud::region_code(link->dst)
          << ',' << s.at.to_seconds() << ',' << s.mbps << '\n';
      ++rows;
    }
  }
  return rows;
}

void MonitoringService::run_cpu_probe(cloud::Region region) {
  const auto vm = agents_[cloud::region_index(region)];
  if (!vm || !provider_.is_active(*vm)) return;
  // The arithmetic benchmark's score is the VM's current compute factor.
  const double factor = provider_.vm_cpu_factor(*vm);
  cpu_[cloud::region_index(region)]->add_sample(engine_.now(), factor);
}

void MonitoringService::report_transfer_observation(cloud::Region src, cloud::Region dst,
                                                    ByteRate per_flow) {
  if (src == dst) return;
  if (LinkMonitor* link = find_link(src, dst)) {
    accept_sample(*link, per_flow.to_mb_per_sec());
  }
}

bool MonitoringService::deliver_sample(cloud::Region src, cloud::Region dst,
                                       double mbps) {
  LinkMonitor* link = find_link(src, dst);
  if (link == nullptr) return false;
  ingest(*link, mbps);
  return true;
}

bool MonitoringService::inject_sample(cloud::Region src, cloud::Region dst, double mbps) {
  LinkMonitor* link = find_link(src, dst);
  if (link == nullptr) return false;
  ingest(*link, mbps);
  return true;
}

LinkEstimate MonitoringService::estimate(cloud::Region src, cloud::Region dst) const {
  if (const LinkMonitor* link = find_link(src, dst)) {
    return LinkEstimate{link->estimator->mean(), link->estimator->stddev(),
                        link->estimator->sample_count()};
  }
  return LinkEstimate{};
}

const ThroughputMatrix& MonitoringService::snapshot() const {
  cached_.taken_at = engine_.now();
  if (cache_on_ && cache_primed_ && cached_.epoch == epoch_) {
    // No sample landed since the last call: the entries cannot have moved.
    ++snapshots_cached_;
    if (obs_cached_ != nullptr) obs_cached_->add();
    return cached_;
  }
  for (const auto& link : links_) {
    // Only links that saw samples since the last rebuild re-query their
    // estimator; the rest keep their (identical) cached entries. With the
    // cache gated off every link reads as dirty, restoring the full walk.
    if (cache_on_ && cache_primed_ && !link->dirty) continue;
    cached_.slot(link->src, link->dst) =
        LinkEstimate{link->estimator->mean(), link->estimator->stddev(),
                     link->estimator->sample_count()};
    link->dirty = false;
  }
  cached_.epoch = epoch_;
  cache_primed_ = true;
  ++snapshots_rebuilt_;
  if (obs_rebuilt_ != nullptr) obs_rebuilt_->add();
  return cached_;
}

double MonitoringService::cpu_estimate(cloud::Region region) const {
  const auto& est = cpu_[cloud::region_index(region)];
  if (!est || !est->ready()) return 1.0;
  return est->mean();
}

Estimator* MonitoringService::link_estimator(cloud::Region src, cloud::Region dst) {
  LinkMonitor* link = find_link(src, dst);
  if (link == nullptr) return nullptr;
  // Mutable access may feed samples behind the service's back; treat the
  // hand-out as a mutation so the snapshot cache stays conservative.
  link->dirty = true;
  ++epoch_;
  return link->estimator.get();
}

}  // namespace sage::monitor
