// Sample-integration strategies for modeling cloud performance metrics.
//
// The monitoring layer feeds a stream of (time, value) samples — throughput
// probes, CPU benchmarks, blob latencies — into an estimator that maintains
// the metric's expected value µ and variability σ. Three strategies are
// implemented, matching the evaluation's comparison (Fig 3 / Ablation A):
//
//  * LastSample ("Monitor"): the newest sample is the estimate. Cheap, and
//    what most deployed systems do; fully exposed to transient glitches.
//  * Linear (LSI): equal-weight mean/variance over a sliding history of h
//    samples.
//  * Weighted (WSI — the SAGE strategy): each sample is folded into µ and an
//    auxiliary second moment γ through an exponential window of depth h,
//    with a per-sample trust weight
//
//        w = ( exp(−(µ−S)²/(2σ²)) + freshness ) / 2        ∈ (0, 1)
//
//    combining (a) a Gaussian distance term — in a stable environment an
//    outlier is probably a glitch and is trusted less; when σ is large the
//    environment is genuinely unstable and far samples are accepted — and
//    (b) a freshness term min(1, gap/T) — rare samples carry more news than
//    rapid-fire ones. Updates:
//
//        µᵢ  = ((h−w)·µᵢ₋₁ + w·S) / h
//        σ²ᵢ = ((h−g)·σ²ᵢ₋₁ + g·(S−µᵢ₋₁)²) / h     g = max(w, 0.3)
//
//    Both recurrences are incremental rewrites in terms of the previous
//    estimate and the new sample, so no sample history is stored. The
//    variability update uses a floored weight g: if σ² were gated by the
//    trust weight alone, a genuinely unstable link would never inflate σ
//    (every far sample gets distrusted, keeping σ small, keeping samples
//    distrusted — a spiral), and the estimator could never distinguish
//    instability from glitches. Dispersion is a fact to record; the mean is
//    what trust protects.
#pragma once

#include <cstddef>
#include <deque>
#include <memory>
#include <string_view>

#include "common/units.hpp"

namespace sage::monitor {

enum class EstimatorKind : std::uint8_t { kLastSample, kLinear, kWeighted };

[[nodiscard]] constexpr std::string_view estimator_name(EstimatorKind kind) {
  switch (kind) {
    case EstimatorKind::kLastSample:
      return "LastSample";
    case EstimatorKind::kLinear:
      return "LSI";
    case EstimatorKind::kWeighted:
      return "WSI";
  }
  return "?";
}

struct EstimatorConfig {
  /// Window depth h (number of samples that define the sliding window).
  std::size_t history = 12;
  /// Freshness reference interval T: a gap of T or more between samples
  /// yields full freshness weight.
  SimDuration reference_interval = SimDuration::minutes(10);
  /// Cache mean/stddev between samples (LSI). Purely an evaluation-order
  /// memo — cached and uncached stats are bit-identical — so this knob
  /// exists only for A/B measurement and the differential tests.
  bool cache_stats = true;
};

/// Process-wide control-plane cache gate: every caching layer introduced by
/// the control-plane fast path (estimator stat memos, monitoring snapshot
/// cache, plan/resolve memoization, replan-sweep epoch skip) honours this
/// in addition to its own config knob. Reads SAGE_CTRL_CACHE from the
/// environment on every call (callers consult it at construction time
/// only); any value other than "0" — including unset — enables caching.
/// Caching layers are value-preserving, so the two settings produce
/// byte-identical simulations; CI diffs bench output across the gate.
[[nodiscard]] bool control_cache_enabled();

class Estimator {
 public:
  virtual ~Estimator() = default;

  virtual void add_sample(SimTime t, double value) = 0;
  [[nodiscard]] virtual double mean() const = 0;
  [[nodiscard]] virtual double stddev() const = 0;
  [[nodiscard]] virtual std::size_t sample_count() const = 0;
  [[nodiscard]] bool ready() const { return sample_count() > 0; }
};

class LastSampleEstimator final : public Estimator {
 public:
  void add_sample(SimTime t, double value) override;
  [[nodiscard]] double mean() const override { return last_; }
  [[nodiscard]] double stddev() const override { return 0.0; }
  [[nodiscard]] std::size_t sample_count() const override { return n_; }

 private:
  double last_ = 0.0;
  std::size_t n_ = 0;
};

class LinearEstimator final : public Estimator {
 public:
  explicit LinearEstimator(EstimatorConfig config)
      : config_(config), cache_on_(config.cache_stats && control_cache_enabled()) {}

  void add_sample(SimTime t, double value) override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] double stddev() const override;
  [[nodiscard]] std::size_t sample_count() const override { return n_; }

 private:
  /// One walk of the window fills both stats: the mean sum, then the
  /// residual sum around that mean (the exact summation order of the
  /// original two-method code, so cached values are bit-identical).
  void recompute() const;

  EstimatorConfig config_;
  std::deque<double> window_;
  std::size_t n_ = 0;
  // Stats memo: valid until the next add_sample. Mutable because the
  // accessors are (and must stay) const — the memo is an evaluation-order
  // cache, not observable state.
  bool cache_on_ = true;
  mutable bool stats_valid_ = false;
  mutable double cached_mean_ = 0.0;
  mutable double cached_stddev_ = 0.0;
};

class WeightedEstimator final : public Estimator {
 public:
  explicit WeightedEstimator(EstimatorConfig config) : config_(config) {}

  void add_sample(SimTime t, double value) override;
  [[nodiscard]] double mean() const override { return mu_; }
  [[nodiscard]] double stddev() const override;
  [[nodiscard]] std::size_t sample_count() const override { return n_; }

  /// Trust weight assigned to the most recent sample (diagnostics).
  [[nodiscard]] double last_weight() const { return last_weight_; }

 private:
  EstimatorConfig config_;
  double mu_ = 0.0;
  double var_ = 0.0;  // exponentially weighted residual variance
  std::size_t n_ = 0;
  SimTime last_sample_time_;
  double last_weight_ = 1.0;
};

[[nodiscard]] std::unique_ptr<Estimator> make_estimator(EstimatorKind kind,
                                                        EstimatorConfig config);

}  // namespace sage::monitor
