#include "monitor/estimator.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "common/check.hpp"

namespace sage::monitor {

bool control_cache_enabled() {
  const char* v = std::getenv("SAGE_CTRL_CACHE");
  return v == nullptr || std::string_view(v) != "0";
}

void LastSampleEstimator::add_sample(SimTime, double value) {
  last_ = value;
  ++n_;
}

void LinearEstimator::add_sample(SimTime, double value) {
  window_.push_back(value);
  if (window_.size() > config_.history) window_.pop_front();
  ++n_;
  stats_valid_ = false;
}

void LinearEstimator::recompute() const {
  if (window_.empty()) {
    cached_mean_ = 0.0;
    cached_stddev_ = 0.0;
  } else {
    double s = 0.0;
    for (double x : window_) s += x;
    cached_mean_ = s / static_cast<double>(window_.size());
    if (window_.size() < 2) {
      cached_stddev_ = 0.0;
    } else {
      const double m = cached_mean_;
      double r = 0.0;
      for (double x : window_) r += (x - m) * (x - m);
      cached_stddev_ = std::sqrt(r / static_cast<double>(window_.size()));
    }
  }
  stats_valid_ = cache_on_;
}

double LinearEstimator::mean() const {
  if (!stats_valid_) recompute();
  return cached_mean_;
}

double LinearEstimator::stddev() const {
  if (!stats_valid_) recompute();
  return cached_stddev_;
}

void WeightedEstimator::add_sample(SimTime t, double value) {
  SAGE_CHECK(config_.history >= 2);
  // Floor on the variability-update weight; see the header for why sigma
  // must not be gated by the trust weight alone.
  constexpr double kVarianceFloorWeight = 0.3;
  if (n_ == 0) {
    mu_ = value;
    var_ = 0.0;
    last_weight_ = 1.0;
  } else {
    // Gaussian distance term. When sigma is ~0 (perfectly stable so far),
    // fall back to a relative-distance scale so a genuinely different
    // sample is still distrusted rather than dividing by zero.
    const double sigma = std::max(stddev(), 1e-3 * std::max(std::abs(mu_), 1e-12));
    const double d = (mu_ - value) / sigma;
    const double gaussian = std::exp(-0.5 * d * d);

    // Freshness term: a sample after a long quiet period carries more news.
    const SimDuration gap = t - last_sample_time_;
    const double freshness =
        std::clamp(gap / config_.reference_interval, 0.0, 1.0);

    const double w = std::clamp((gaussian + freshness) / 2.0, 0.0, 1.0);
    const double g = std::max(w, kVarianceFloorWeight);
    const auto h = static_cast<double>(config_.history);
    const double residual = value - mu_;
    mu_ = ((h - w) * mu_ + w * value) / h;
    var_ = ((h - g) * var_ + g * residual * residual) / h;
    last_weight_ = w;
  }
  last_sample_time_ = t;
  ++n_;
}

double WeightedEstimator::stddev() const { return std::sqrt(std::max(0.0, var_)); }

std::unique_ptr<Estimator> make_estimator(EstimatorKind kind, EstimatorConfig config) {
  switch (kind) {
    case EstimatorKind::kLastSample:
      return std::make_unique<LastSampleEstimator>();
    case EstimatorKind::kLinear:
      return std::make_unique<LinearEstimator>(config);
    case EstimatorKind::kWeighted:
      return std::make_unique<WeightedEstimator>(config);
  }
  SAGE_CHECK_MSG(false, "unknown estimator kind");
  return nullptr;
}

}  // namespace sage::monitor
