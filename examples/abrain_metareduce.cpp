// A-Brain meta-reduce: the bio-informatics application pattern.
//
// A MapReduce over genetic x neuro-imaging data runs across three
// datacenters; each site produces a batch of partial-result files that all
// have to reach the Meta-Reducer site. This example stages one dataset
// through the stock blob relay and through SAGE, printing the side-by-side
// staging times and bills.
#include <cstdio>

#include "baselines/backends.hpp"
#include "cloud/provider.hpp"
#include "cloud/topology.hpp"
#include "core/sage.hpp"
#include "workload/workloads.hpp"

using namespace sage;

namespace {

workload::MetaReduceParams dataset() {
  workload::MetaReduceParams params;
  params.sites = {cloud::Region::kNorthEU, cloud::Region::kWestEU,
                  cloud::Region::kSouthUS};
  params.reducer_site = cloud::Region::kNorthUS;
  params.files_per_site = 120;
  params.file_size = Bytes::mb(12);
  params.concurrency_per_site = 6;
  return params;
}

void report(const char* label, SimDuration time, const cloud::CostReport& bill) {
  std::printf("%-12s staging time %-10s bill %s (egress %s)\n", label,
              to_string(time).c_str(), to_string(bill.total()).c_str(),
              to_string(bill.egress).c_str());
}

}  // namespace

int main() {
  const auto params = dataset();
  std::printf("Staging 3 x %d x %s of partial results to the Meta-Reducer in %s\n\n",
              params.files_per_site, to_string(params.file_size).c_str(),
              std::string(cloud::region_name(params.reducer_site)).c_str());

  SimDuration blob_time;
  {
    sim::SimEngine engine;
    cloud::CloudProvider provider(engine, cloud::default_topology(), /*seed=*/3);
    baselines::GatewayPool pool(provider, cloud::VmSize::kXLarge);
    baselines::BlobRelayBackend backend(pool, /*gateways_per_region=*/2);
    bool done = false;
    workload::run_metareduce(engine, backend, params,
                             [&](const workload::MetaReduceResult& r) {
                               blob_time = r.total_time;
                               done = true;
                             });
    while (!done && engine.step()) {
    }
    pool.release_all();
    report("AzureBlobs:", blob_time, provider.cost_report());
  }

  SimDuration sage_time;
  {
    sim::SimEngine engine;
    cloud::CloudProvider provider(engine, cloud::default_topology(), /*seed=*/3);
    core::SageConfig config;
    config.regions = {cloud::Region::kNorthEU, cloud::Region::kWestEU,
                      cloud::Region::kSouthUS, cloud::Region::kEastUS,
                      cloud::Region::kNorthUS};
    config.agent_vm = cloud::VmSize::kXLarge;
    config.gateways_per_region = 2;
    config.monitoring.probe_interval = SimDuration::minutes(1);
    core::SageEngine sage_engine(provider, config);
    sage_engine.deploy();
    engine.run_until(engine.now() + SimDuration::minutes(10));

    bool done = false;
    workload::run_metareduce(engine, sage_engine, params,
                             [&](const workload::MetaReduceResult& r) {
                               sage_time = r.total_time;
                               done = true;
                             });
    while (!done && engine.step()) {
    }
    report("SAGE:", sage_time, sage_engine.cost());
    sage_engine.shutdown();
  }

  std::printf(
      "\nSAGE staged the dataset %.2fx faster than the blob relay. Note the\n"
      "bill: multi-datacenter paths pay egress at *every* hop that leaves a\n"
      "region, so the speed comes at a real, visible monetary price — the\n"
      "cost/time tradeoff this system exists to let applications choose.\n",
      blob_time / sage_time);
  return 0;
}
