// Clickstream analytics under a money constraint.
//
// A three-site web-analytics job (bot filtering, per-URL window counts,
// global trend aggregation) runs twice: once with the engine tuned for
// speed and once with a thrift-biased tradeoff. The point of the example:
// the SAME application code, one knob, measurably different bill and
// latency — the cost/time tradeoff as an application-level control.
#include <cstdio>

#include "cloud/provider.hpp"
#include "cloud/topology.hpp"
#include "core/sage.hpp"
#include "workload/workloads.hpp"

using namespace sage;

namespace {

struct RunStats {
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  std::uint64_t records = 0;
  Money bill;
};

RunStats run_once(const model::Tradeoff& tradeoff, const char* label) {
  sim::SimEngine engine;
  cloud::CloudProvider provider(engine, cloud::default_topology(), /*seed=*/99);

  workload::ClickstreamParams params;
  params.sites = {cloud::Region::kWestEU, cloud::Region::kEastUS,
                  cloud::Region::kWestUS};
  params.aggregation_site = cloud::Region::kEastUS;
  params.events_per_sec_per_site = 4000.0;

  core::SageConfig config;
  config.regions = params.sites;
  config.tradeoff = tradeoff;
  config.monitoring.probe_interval = SimDuration::minutes(1);
  core::SageEngine sage_engine(provider, config);
  sage_engine.deploy();
  engine.run_until(engine.now() + SimDuration::minutes(10));

  auto runtime = sage_engine.run_job(workload::make_clickstream_job(params));
  runtime->start();
  engine.run_until(engine.now() + SimDuration::minutes(8));
  runtime->stop();

  RunStats out;
  for (const auto& v : runtime->graph().vertices()) {
    if (v.kind != stream::VertexKind::kSink) continue;
    const auto& stats = runtime->sink_stats(v.id);
    out.records = stats.records;
    if (stats.latency_ms.count() > 0) {
      out.p50_ms = stats.latency_ms.quantile(0.5);
      out.p95_ms = stats.latency_ms.quantile(0.95);
    }
  }
  out.bill = sage_engine.cost().total();
  sage_engine.shutdown();

  std::printf("%-18s trend updates=%llu  latency p50=%.0f ms p95=%.0f ms  bill=%s\n",
              label, static_cast<unsigned long long>(out.records), out.p50_ms, out.p95_ms,
              to_string(out.bill).c_str());
  return out;
}

}  // namespace

int main() {
  std::printf("Clickstream analytics across WEU / EUS / WUS, 8 simulated minutes:\n\n");
  const RunStats fast = run_once(model::Tradeoff::fastest(), "speed-tuned:");
  model::Tradeoff thrifty;
  thrifty.lambda = 1.0;  // prefer money over time wherever feasible
  const RunStats cheap = run_once(thrifty, "thrift-tuned:");

  const double saved_pct = (1.0 - cheap.bill.to_usd() / fast.bill.to_usd()) * 100.0;
  const double latency_cost = cheap.p95_ms - fast.p95_ms;
  if (latency_cost > 100.0) {
    std::printf("\nThe thrift-tuned run trades %.0f ms of p95 latency for a %.1f%% smaller bill.\n",
                latency_cost, saved_pct);
  } else {
    // At this WAN load the cheap plan already meets the latency the fast
    // plan delivers — the knob saved money for free.
    std::printf("\nThe thrift-tuned run cut the bill by %.1f%% at no visible latency cost\n"
                "(aggregated trend batches are small enough that one lane keeps up).\n",
                saved_pct);
  }
  return 0;
}
