// Quickstart: deploy SAGE across four datacenters, move 1 GB under three
// different cost/time tradeoffs, and read the bill.
//
// Everything runs on the bundled cloud simulator (virtual time), so this
// completes in well under a second of wall-clock.
#include <cstdio>

#include "cloud/provider.hpp"
#include "cloud/topology.hpp"
#include "core/introspection.hpp"
#include "core/sage.hpp"
#include "simcore/engine.hpp"

using namespace sage;

int main() {
  // 1. A simulated multi-site cloud (6 Azure-calibrated datacenters).
  sim::SimEngine engine;
  cloud::CloudProvider provider(engine, cloud::default_topology(), /*seed=*/42);

  // 2. Deploy the SAGE engine across four of them and let the monitoring
  //    agents build their map of the environment.
  core::SageConfig config;
  config.regions = {cloud::Region::kNorthEU, cloud::Region::kWestEU,
                    cloud::Region::kEastUS, cloud::Region::kNorthUS};
  config.helpers_per_region = 4;
  config.monitoring.probe_interval = SimDuration::minutes(1);
  core::SageEngine sage_engine(provider, config);
  sage_engine.deploy();
  engine.run_until(engine.now() + SimDuration::minutes(15));  // warm-up

  const auto estimate = sage_engine.monitoring().estimate(cloud::Region::kNorthEU,
                                                          cloud::Region::kNorthUS);
  std::printf("Monitored NEU->NUS: %.2f MB/s (sigma %.2f, %zu samples)\n\n",
              estimate.mean_mbps, estimate.stddev_mbps, estimate.samples);

  // 3. Move 1 GB three ways: as fast as possible, under a budget cap, and
  //    as cheaply as possible.
  struct Scenario {
    const char* label;
    model::Tradeoff tradeoff;
  };
  const Scenario scenarios[] = {
      {"fastest", model::Tradeoff::fastest()},
      {"budget <= $0.1268", model::Tradeoff::within_budget(Money::usd(0.1268))},
      {"cheapest", model::Tradeoff::cheapest()},
  };

  for (const Scenario& s : scenarios) {
    bool done = false;
    stream::SendOutcome outcome;
    sage_engine.send_with(s.tradeoff, cloud::Region::kNorthEU, cloud::Region::kNorthUS,
                          Bytes::gb(1), [&](const stream::SendOutcome& o) {
                            outcome = o;
                            done = true;
                          });
    while (!done && engine.step()) {
    }
    const core::SendRecord& record = sage_engine.history().back();
    std::printf("%-20s  ok=%s  lanes=%d  elapsed=%s", s.label,
                outcome.ok ? "yes" : "NO", record.lanes_used,
                to_string(outcome.elapsed).c_str());
    if (record.estimate) {
      std::printf("  (model: %d nodes, predicted %s, cost %s)",
                  record.estimate->nodes, to_string(record.estimate->time).c_str(),
                  to_string(record.estimate->total_cost()).c_str());
    }
    std::printf("\n");
  }

  // 4. Replicate a dataset to several sites through the dissemination tree
  //    (chunk-level cut-through multicast).
  bool spread_done = false;
  sage_engine.disseminate(
      cloud::Region::kNorthEU,
      {cloud::Region::kWestEU, cloud::Region::kEastUS, cloud::Region::kNorthUS},
      Bytes::mb(100), [&](const core::SageEngine::DisseminateResult& r) {
        std::printf("\nDisseminated 100 MB over %d tree edges in %s (ok=%s)\n",
                    r.tree_edges, to_string(r.elapsed).c_str(), r.ok ? "yes" : "NO");
        for (const auto& [region, at] : r.arrivals) {
          std::printf("  %-10s arrived at +%s\n",
                      std::string(cloud::region_name(region)).c_str(),
                      to_string(at).c_str());
        }
        spread_done = true;
      });
  while (!spread_done && engine.step()) {
  }

  // 5. Introspection-as-a-Service: everything the engine learned about the
  //    cloud and about its own decisions, as one report.
  std::printf("\n%s", core::introspect(sage_engine).render().c_str());
  sage_engine.shutdown();
  return 0;
}
