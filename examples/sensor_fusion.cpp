// Sensor fusion: the scenario that motivates geo-distributed streaming —
// sensor feeds land at five datacenters, are cleaned and window-aggregated
// locally, and the per-site aggregates stream to a global dashboard site.
//
// Demonstrates: job-graph construction via the workload builder, automatic
// operator placement, running a job with SAGE as the WAN backend, and
// reading per-sink latency and WAN statistics.
#include <cstdio>

#include "cloud/provider.hpp"
#include "cloud/topology.hpp"
#include "core/placement.hpp"
#include "core/sage.hpp"
#include "workload/workloads.hpp"

using namespace sage;

int main() {
  sim::SimEngine engine;
  cloud::CloudProvider provider(engine, cloud::default_topology(), /*seed=*/7);

  const std::vector<cloud::Region> sites = {
      cloud::Region::kNorthEU, cloud::Region::kWestEU, cloud::Region::kEastUS,
      cloud::Region::kSouthUS, cloud::Region::kWestUS};
  const cloud::Region dashboard = cloud::Region::kNorthUS;

  core::SageConfig config;
  config.regions = sites;
  config.regions.push_back(dashboard);
  config.monitoring.probe_interval = SimDuration::minutes(1);
  core::SageEngine sage_engine(provider, config);
  sage_engine.deploy();
  engine.run_until(engine.now() + SimDuration::minutes(10));

  workload::SensorGridParams params;
  params.sites = sites;
  params.aggregation_site = dashboard;
  params.records_per_sec_per_site = 3000.0;
  params.sensors_per_site = 800;
  params.local_window = SimDuration::seconds(5);
  params.global_window = SimDuration::seconds(15);
  auto graph = workload::make_sensor_grid_job(params);

  // The builder already places operators sensibly, but show the policy:
  core::auto_place(graph, dashboard);
  std::printf("Estimated WAN load after placement: %.1f KB/s\n\n",
              core::estimate_wan_bytes_per_sec(graph) / 1e3);

  auto runtime = sage_engine.run_job(std::move(graph));
  runtime->start();
  engine.run_until(engine.now() + SimDuration::minutes(10));
  runtime->stop();

  for (const auto& v : runtime->graph().vertices()) {
    if (v.kind != stream::VertexKind::kSink) continue;
    const auto& stats = runtime->sink_stats(v.id);
    std::printf("Dashboard '%s' @ %s: %llu aggregates, latency p50 %.0f ms, p95 %.0f ms\n",
                v.name.c_str(), std::string(cloud::region_name(v.site)).c_str(),
                static_cast<unsigned long long>(stats.records),
                stats.latency_ms.quantile(0.5), stats.latency_ms.quantile(0.95));
  }
  const auto& wan = runtime->wan_stats();
  std::printf("WAN: %llu batches, %s shipped, mean batch transfer %.2f s, %llu failures\n",
              static_cast<unsigned long long>(wan.batches), to_string(wan.bytes).c_str(),
              wan.transfer_s.mean(), static_cast<unsigned long long>(wan.failures));

  const cloud::CostReport bill = sage_engine.cost();
  std::printf("10-minute session bill: %s (egress %s)\n", to_string(bill.total()).c_str(),
              to_string(bill.egress).c_str());
  sage_engine.shutdown();
  return 0;
}
