// Tests for the sample-integration estimators (LastSample / LSI / WSI).
#include "monitor/estimator.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace sage::monitor {
namespace {

SimTime at_minutes(double m) { return SimTime::epoch() + SimDuration::minutes(m); }

TEST(LastSampleTest, TracksOnlyTheNewest) {
  LastSampleEstimator e;
  EXPECT_FALSE(e.ready());
  e.add_sample(at_minutes(0), 10.0);
  e.add_sample(at_minutes(1), 99.0);
  EXPECT_DOUBLE_EQ(e.mean(), 99.0);
  EXPECT_DOUBLE_EQ(e.stddev(), 0.0);
  EXPECT_EQ(e.sample_count(), 2u);
}

TEST(LinearTest, EqualWeightWindow) {
  LinearEstimator e(EstimatorConfig{.history = 4});
  for (double v : {1.0, 2.0, 3.0, 4.0}) e.add_sample(at_minutes(0), v);
  EXPECT_DOUBLE_EQ(e.mean(), 2.5);
  // Window slides: the 1.0 falls out.
  e.add_sample(at_minutes(1), 5.0);
  EXPECT_DOUBLE_EQ(e.mean(), 3.5);
}

TEST(LinearTest, StddevOverWindow) {
  LinearEstimator e(EstimatorConfig{.history = 8});
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) e.add_sample(at_minutes(0), v);
  EXPECT_DOUBLE_EQ(e.mean(), 5.0);
  EXPECT_DOUBLE_EQ(e.stddev(), 2.0);
}

TEST(WeightedTest, FirstSampleIsAdoptedFully) {
  WeightedEstimator e(EstimatorConfig{});
  e.add_sample(at_minutes(0), 7.5);
  EXPECT_DOUBLE_EQ(e.mean(), 7.5);
  EXPECT_DOUBLE_EQ(e.last_weight(), 1.0);
}

TEST(WeightedTest, ConvergesToConstantSignal) {
  WeightedEstimator e(EstimatorConfig{.history = 10});
  for (int i = 0; i < 500; ++i) e.add_sample(at_minutes(i), 5.0);
  EXPECT_NEAR(e.mean(), 5.0, 1e-6);
  EXPECT_NEAR(e.stddev(), 0.0, 1e-3);
}

TEST(WeightedTest, OutlierInStableSignalIsDistrusted) {
  const EstimatorConfig config{.history = 10,
                               .reference_interval = SimDuration::minutes(100)};
  WeightedEstimator wsi(config);
  LinearEstimator lsi(config);
  // A stable 10 MB/s link...
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    const double v = 10.0 + rng.normal(0.0, 0.1);
    wsi.add_sample(at_minutes(i), v);
    lsi.add_sample(at_minutes(i), v);
  }
  // ...hit by a one-off glitch sample.
  wsi.add_sample(at_minutes(51), 1.0);
  lsi.add_sample(at_minutes(51), 1.0);
  // The weighted estimator must move less than the linear one.
  EXPECT_GT(wsi.mean(), 9.0);
  EXPECT_LT(std::abs(wsi.mean() - 10.0), std::abs(lsi.mean() - 10.0));
}

TEST(WeightedTest, UnstableSignalAcceptsFarSamplesMoreThanStable) {
  // "A high standard deviation favours accepting new samples": the same
  // absolute deviation from the mean must be trusted much more when the
  // environment has been unstable than when it has been quiet.
  // Large reference interval so the freshness term contributes little and
  // the Gaussian term is what differentiates the two environments.
  const EstimatorConfig config{.history = 10,
                               .reference_interval = SimDuration::minutes(100)};
  WeightedEstimator unstable(config);
  Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    unstable.add_sample(at_minutes(i), rng.uniform(2.0, 18.0));
  }
  WeightedEstimator stable(config);
  for (int i = 0; i < 100; ++i) stable.add_sample(at_minutes(i), 10.0);

  // Both sit near mean 10; feed both an 18.
  unstable.add_sample(at_minutes(101), 18.0);
  stable.add_sample(at_minutes(101), 18.0);
  EXPECT_GT(unstable.last_weight(), 1.8 * stable.last_weight());
  EXPECT_GT(unstable.last_weight(), 0.04);
}

TEST(WeightedTest, TracksLevelShift) {
  WeightedEstimator e(EstimatorConfig{.history = 10});
  for (int i = 0; i < 100; ++i) e.add_sample(at_minutes(i), 10.0);
  // The link genuinely degrades to 4 MB/s; within a few dozen samples the
  // estimate must follow.
  for (int i = 100; i < 250; ++i) e.add_sample(at_minutes(i), 4.0);
  EXPECT_NEAR(e.mean(), 4.0, 1.0);
}

TEST(WeightedTest, RareSamplesWeighHigher) {
  const EstimatorConfig config{.history = 10,
                               .reference_interval = SimDuration::minutes(10)};
  WeightedEstimator frequent(config);
  WeightedEstimator rare(config);
  for (int i = 0; i < 20; ++i) {
    frequent.add_sample(at_minutes(i * 0.01), 10.0);  // every 0.6 s
    rare.add_sample(at_minutes(i * 20.0), 10.0);      // every 20 min
  }
  frequent.add_sample(at_minutes(0.2), 14.0);
  rare.add_sample(at_minutes(420.0), 14.0);
  EXPECT_GT(rare.last_weight(), frequent.last_weight());
  EXPECT_GT(std::abs(rare.mean() - 10.0), std::abs(frequent.mean() - 10.0));
}

TEST(WeightedTest, WeightStaysNormalized) {
  WeightedEstimator e(EstimatorConfig{.history = 5});
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) {
    e.add_sample(at_minutes(i * 0.5), rng.uniform(0.0, 30.0));
    EXPECT_GE(e.last_weight(), 0.0);
    EXPECT_LE(e.last_weight(), 1.0);
    EXPECT_GE(e.stddev(), 0.0);
  }
}

TEST(LastSampleTest, CountsEverySampleEverSeen) {
  LastSampleEstimator e;
  EXPECT_EQ(e.sample_count(), 0u);
  EXPECT_FALSE(e.ready());
  for (int i = 1; i <= 100; ++i) {
    e.add_sample(at_minutes(i), static_cast<double>(i));
    EXPECT_EQ(e.sample_count(), static_cast<std::size_t>(i));
  }
  // Only the newest value is retained, but the count reflects the stream.
  EXPECT_DOUBLE_EQ(e.mean(), 100.0);
  EXPECT_DOUBLE_EQ(e.stddev(), 0.0);
  EXPECT_TRUE(e.ready());
}

TEST(LinearTest, WindowEvictsExactlyAtHistoryBoundary) {
  LinearEstimator e(EstimatorConfig{.history = 4});
  for (double v : {10.0, 20.0, 30.0, 40.0}) e.add_sample(at_minutes(0), v);
  // Exactly at capacity: nothing evicted yet.
  EXPECT_DOUBLE_EQ(e.mean(), 25.0);
  EXPECT_EQ(e.sample_count(), 4u);
  // One past capacity: the 10.0 (and only it) falls out.
  e.add_sample(at_minutes(1), 50.0);
  EXPECT_DOUBLE_EQ(e.mean(), 35.0);  // (20+30+40+50)/4
  // sample_count tracks the whole stream, not the resident window.
  EXPECT_EQ(e.sample_count(), 5u);
  // Fully turn the window over; only the last 4 samples matter.
  for (double v : {1.0, 1.0, 1.0, 1.0}) e.add_sample(at_minutes(2), v);
  EXPECT_DOUBLE_EQ(e.mean(), 1.0);
  EXPECT_DOUBLE_EQ(e.stddev(), 0.0);
}

TEST(LinearTest, CachedStatsMatchUncachedBitForBit) {
  // The stats memo is an evaluation-order cache: with identical inputs the
  // cached and uncached estimators must agree to the last bit, including
  // when queries interleave with updates (partial-window recomputes).
  LinearEstimator cached(EstimatorConfig{.history = 8, .cache_stats = true});
  LinearEstimator uncached(EstimatorConfig{.history = 8, .cache_stats = false});
  Rng rng(17);
  for (int i = 0; i < 200; ++i) {
    const double v = rng.uniform(0.5, 25.0);
    cached.add_sample(at_minutes(i), v);
    uncached.add_sample(at_minutes(i), v);
    // Query twice so the second cached read is served from the memo.
    EXPECT_DOUBLE_EQ(cached.mean(), uncached.mean());
    EXPECT_DOUBLE_EQ(cached.mean(), uncached.mean());
    EXPECT_DOUBLE_EQ(cached.stddev(), uncached.stddev());
  }
}

TEST(WeightedTest, SigmaFloorInflatesVarianceDespiteDistrust) {
  // The variance update uses g = max(w, 0.3): even when every far sample is
  // distrusted (w ~ 0 on a historically stable link), sigma must still
  // inflate — dispersion is a fact to record, only the mean is protected.
  // Zero freshness (samples at the same instant) isolates the Gaussian term.
  const EstimatorConfig config{.history = 10,
                               .reference_interval = SimDuration::minutes(100)};
  WeightedEstimator e(config);
  for (int i = 0; i < 100; ++i) e.add_sample(at_minutes(i), 10.0);
  ASSERT_NEAR(e.stddev(), 0.0, 1e-6);
  e.add_sample(at_minutes(100), 2.0);
  // Gaussian term collapses on a stable link; near-zero freshness keeps the
  // trust weight far under the 0.3 floor, so the floor is what's acting.
  EXPECT_LT(e.last_weight(), 0.1);
  for (int i = 0; i < 30; ++i) {
    e.add_sample(at_minutes(100), i % 2 == 0 ? 18.0 : 2.0);
  }
  EXPECT_GT(e.stddev(), 2.0);
  // The mean itself stayed protected by the low trust weight.
  EXPECT_NEAR(e.mean(), 10.0, 2.0);
}

TEST(WeightedTest, FreshnessClampsAtReferenceInterval) {
  // freshness = clamp(gap / T, 0, 1): a gap of 10x the reference interval
  // must weigh exactly like a gap of 1x — news value saturates.
  const EstimatorConfig config{.history = 10,
                               .reference_interval = SimDuration::minutes(10)};
  WeightedEstimator at_t(config);
  WeightedEstimator beyond_t(config);
  for (int i = 0; i < 20; ++i) {
    at_t.add_sample(at_minutes(0), 10.0);
    beyond_t.add_sample(at_minutes(0), 10.0);
  }
  at_t.add_sample(at_minutes(10), 16.0);       // gap == T
  beyond_t.add_sample(at_minutes(100), 16.0);  // gap == 10T
  EXPECT_DOUBLE_EQ(at_t.last_weight(), beyond_t.last_weight());
  EXPECT_DOUBLE_EQ(at_t.mean(), beyond_t.mean());
  // And the lower clamp: a zero gap contributes no freshness at all, so the
  // weight is the Gaussian term alone over 2.
  WeightedEstimator zero_gap(config);
  for (int i = 0; i < 20; ++i) zero_gap.add_sample(at_minutes(0), 10.0);
  zero_gap.add_sample(at_minutes(0), 16.0);
  EXPECT_LT(zero_gap.last_weight(), at_t.last_weight());
}

TEST(FactoryTest, MakesEveryKind) {
  for (EstimatorKind kind :
       {EstimatorKind::kLastSample, EstimatorKind::kLinear, EstimatorKind::kWeighted}) {
    auto e = make_estimator(kind, EstimatorConfig{});
    ASSERT_NE(e, nullptr);
    e->add_sample(at_minutes(0), 3.0);
    EXPECT_DOUBLE_EQ(e->mean(), 3.0);
    EXPECT_TRUE(e->ready());
  }
}

TEST(FactoryTest, NamesAreStable) {
  EXPECT_EQ(estimator_name(EstimatorKind::kLastSample), "LastSample");
  EXPECT_EQ(estimator_name(EstimatorKind::kLinear), "LSI");
  EXPECT_EQ(estimator_name(EstimatorKind::kWeighted), "WSI");
}

// The headline property behind Fig 3: on a drifting + glitchy signal, WSI's
// tracking error is at most LSI's, and both beat LastSample.
TEST(EstimatorComparisonTest, WsiBeatsLastSampleOnGlitchySignal) {
  const EstimatorConfig config{.history = 12,
                               .reference_interval = SimDuration::minutes(10)};
  WeightedEstimator wsi(config);
  LinearEstimator lsi(config);
  LastSampleEstimator last;
  Rng rng(11);

  double err_wsi = 0.0;
  double err_lsi = 0.0;
  double err_last = 0.0;
  double truth = 10.0;
  int n = 0;
  for (int i = 0; i < 2000; ++i) {
    // Slow drift + occasional glitch readings that do not reflect truth.
    truth += rng.normal(0.0, 0.02);
    double observed = truth + rng.normal(0.0, 0.3);
    if (rng.chance(0.05)) observed = truth * rng.uniform(0.1, 0.4);  // glitch
    const SimTime t = at_minutes(i);
    wsi.add_sample(t, observed);
    lsi.add_sample(t, observed);
    last.add_sample(t, observed);
    if (i > 50) {
      err_wsi += std::abs(wsi.mean() - truth);
      err_lsi += std::abs(lsi.mean() - truth);
      err_last += std::abs(last.mean() - truth);
      ++n;
    }
  }
  err_wsi /= n;
  err_lsi /= n;
  err_last /= n;
  EXPECT_LT(err_wsi, err_last);
  EXPECT_LT(err_wsi, err_lsi * 1.05);  // at worst on par with LSI
}

}  // namespace
}  // namespace sage::monitor
