// Tests for the cut-through tree multicast (net::TreeTransfer).
#include "net/tree_transfer.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "test_util.hpp"

namespace sage::net {
namespace {

using cloud::Region;
using cloud::VmSize;
using sage::testing::StableWorld;
using sage::testing::run_until;

constexpr Region kNEU = Region::kNorthEU;
constexpr Region kWEU = Region::kWestEU;
constexpr Region kNUS = Region::kNorthUS;
constexpr Region kEUS = Region::kEastUS;

struct TreeFixture : public ::testing::Test {
  StableWorld world;
  cloud::CloudProvider& provider() { return *world.provider; }

  cloud::VmId vm(Region r) { return provider().provision(r, VmSize::kSmall).id; }

  TreeResult run_tree(Bytes size, std::vector<TreeNode> nodes,
                      TransferConfig config = {}) {
    TreeResult out{};
    bool done = false;
    TreeTransfer t(provider(), size, std::move(nodes), config,
                   [&](const TreeResult& r) {
                     out = r;
                     done = true;
                   });
    t.start();
    EXPECT_TRUE(run_until(world.engine, [&] { return done; }, SimDuration::hours(12)));
    return out;
  }
};

TEST_F(TreeFixture, SingleEdgeDelivers) {
  const TreeResult r =
      run_tree(Bytes::mb(20), {{vm(kNEU), -1}, {vm(kNUS), 0}});
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.size, Bytes::mb(20));
  ASSERT_EQ(r.node_completion.size(), 2u);
  EXPECT_TRUE(r.node_completion[0].is_zero());  // root owns the data
  EXPECT_GT(r.node_completion[1].to_seconds(), 1.0);
}

TEST_F(TreeFixture, StarDeliversToAllChildren) {
  const TreeResult r = run_tree(
      Bytes::mb(10), {{vm(kNEU), -1}, {vm(kWEU), 0}, {vm(kNUS), 0}, {vm(kEUS), 0}});
  ASSERT_TRUE(r.ok);
  for (std::size_t i = 1; i < r.node_completion.size(); ++i) {
    EXPECT_GT(r.node_completion[i].to_seconds(), 0.0);
  }
  // The regional child (WEU) finishes before the transatlantic ones.
  EXPECT_LT(r.node_completion[1], r.node_completion[2]);
}

TEST_F(TreeFixture, CutThroughBeatsStoreAndForward) {
  // Chain NEU -> NUS -> EUS. With cut-through, EUS finishes shortly after
  // NUS (one chunk's lag), nowhere near 2x the first hop's time.
  TransferConfig config;
  config.chunk_size = Bytes::mib(1);
  const TreeResult r = run_tree(
      Bytes::mb(40), {{vm(kNEU), -1}, {vm(kNUS), 0}, {vm(kEUS), 1}}, config);
  ASSERT_TRUE(r.ok);
  const double first_hop = r.node_completion[1].to_seconds();
  const double leaf = r.node_completion[2].to_seconds();
  EXPECT_GT(leaf, first_hop);       // the leaf cannot beat its feeder
  EXPECT_LT(leaf, first_hop * 1.3); // ...but pipelining keeps it close
}

TEST_F(TreeFixture, ChainCompletionIsMonotone) {
  const TreeResult r = run_tree(
      Bytes::mb(10),
      {{vm(kNEU), -1}, {vm(kWEU), 0}, {vm(kEUS), 1}, {vm(kNUS), 2}});
  ASSERT_TRUE(r.ok);
  for (std::size_t i = 2; i < r.node_completion.size(); ++i) {
    EXPECT_GE(r.node_completion[i], r.node_completion[i - 1]);
  }
}

TEST_F(TreeFixture, InteriorNodeFailureFailsTransfer) {
  const auto root = vm(kNEU);
  const auto mid = provider().provision(kNUS, VmSize::kSmall);
  const auto leaf = vm(kEUS);
  TreeResult out{};
  bool done = false;
  TreeTransfer t(provider(), Bytes::mb(50),
                 {{root, -1}, {mid.id, 0}, {leaf, 1}}, {},
                 [&](const TreeResult& r) {
                   out = r;
                   done = true;
                 });
  t.start();
  world.engine.schedule_after(SimDuration::seconds(3),
                              [&] { provider().fail_vm(mid.id); });
  ASSERT_TRUE(run_until(world.engine, [&] { return done; }, SimDuration::hours(2)));
  EXPECT_FALSE(out.ok);
  EXPECT_GT(out.edge_failures, 0);
}

TEST_F(TreeFixture, CancelFiresCallbackOnce) {
  TreeResult out{};
  int calls = 0;
  TreeTransfer t(provider(), Bytes::mb(100), {{vm(kNEU), -1}, {vm(kNUS), 0}}, {},
                 [&](const TreeResult& r) {
                   out = r;
                   ++calls;
                 });
  t.start();
  world.engine.run_until(world.engine.now() + SimDuration::seconds(5));
  t.cancel();
  t.cancel();  // idempotent
  EXPECT_EQ(calls, 1);
  EXPECT_FALSE(out.ok);
  EXPECT_TRUE(t.finished());
}

TEST_F(TreeFixture, ChunkCompletionCounterReachesTotal) {
  TransferConfig config;
  config.chunk_size = Bytes::mb(2);
  TreeResult out{};
  bool done = false;
  TreeTransfer t(provider(), Bytes::mb(10),
                 {{vm(kNEU), -1}, {vm(kWEU), 0}, {vm(kNUS), 0}}, config,
                 [&](const TreeResult& r) {
                   out = r;
                   done = true;
                 });
  t.start();
  ASSERT_TRUE(run_until(world.engine, [&] { return done; }, SimDuration::hours(2)));
  ASSERT_TRUE(out.ok);
  EXPECT_EQ(t.chunks_complete(), 5);
}

TEST_F(TreeFixture, RejectsMalformedTrees) {
  EXPECT_THROW(
      TreeTransfer(provider(), Bytes::mb(1), {{vm(kNEU), -1}}, {},
                   [](const TreeResult&) {}),
      CheckFailure);
  // Child referencing a later index.
  EXPECT_THROW(
      TreeTransfer(provider(), Bytes::mb(1),
                   {{vm(kNEU), -1}, {vm(kNUS), 2}, {vm(kEUS), 0}}, {},
                   [](const TreeResult&) {}),
      CheckFailure);
}

// Parameterized sweep: the multicast must deliver exactly once to every
// node across tree shapes and chunk sizes.
class TreeMatrix : public ::testing::TestWithParam<std::tuple<int, std::int64_t>> {};

TEST_P(TreeMatrix, DeliversEverywhere) {
  const auto [shape, chunk_kb] = GetParam();
  StableWorld world;
  auto& provider = *world.provider;
  auto vm = [&](Region r) { return provider.provision(r, VmSize::kSmall).id; };

  std::vector<TreeNode> nodes;
  switch (shape) {
    case 0:  // star
      nodes = {{vm(kNEU), -1}, {vm(kWEU), 0}, {vm(kNUS), 0}, {vm(kEUS), 0}};
      break;
    case 1:  // chain
      nodes = {{vm(kNEU), -1}, {vm(kWEU), 0}, {vm(kNUS), 1}, {vm(kEUS), 2}};
      break;
    default:  // mixed
      nodes = {{vm(kNEU), -1}, {vm(kNUS), 0}, {vm(kEUS), 1}, {vm(kWEU), 0}};
      break;
  }
  TransferConfig config;
  config.chunk_size = Bytes::kb(static_cast<double>(chunk_kb));

  TreeResult out{};
  bool done = false;
  TreeTransfer t(provider, Bytes::mb(7), nodes, config, [&](const TreeResult& r) {
    out = r;
    done = true;
  });
  t.start();
  ASSERT_TRUE(sage::testing::run_until(world.engine, [&] { return done; },
                                       SimDuration::hours(6)));
  ASSERT_TRUE(out.ok);
  for (std::size_t i = 1; i < out.node_completion.size(); ++i) {
    EXPECT_GT(out.node_completion[i].to_seconds(), 0.0) << "node " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndChunks, TreeMatrix,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values<std::int64_t>(512, 2048, 8192)));

}  // namespace
}  // namespace sage::net
