// ShardedSimEngine contract tests: S=1 collapse to the plain engine,
// deterministic cross-shard mailbox ordering, the conservative lookahead
// horizon, degenerate-lookahead fallback (including a zero-latency
// cross-shard edge), shard planning, and the sharded-vs-sequential fabric
// differential at awkward shard counts.
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cloud/fabric.hpp"
#include "cloud/topology.hpp"
#include "common/check.hpp"
#include "simcore/sharded_engine.hpp"

namespace sage::sim {
namespace {

using cloud::Region;
using cloud::make_region;

// -- Kernel: S=1 collapse ----------------------------------------------------

TEST(ShardedEngine, SingleShardCollapsesToPlainEngine) {
  SimEngine plain;
  ShardedSimEngine sharded(/*shards=*/1, SimDuration::millis(10));
  ASSERT_TRUE(sharded.collapsed());
  ASSERT_EQ(sharded.lane_count(), 1u);

  // Identical schedule on both engines, including a cancellation.
  std::vector<int> a, b;
  const auto load = [](SimEngine& e, std::vector<int>& out) {
    e.schedule_at(SimTime::from_micros(300), [&out] { out.push_back(3); });
    e.schedule_at(SimTime::from_micros(100), [&out] { out.push_back(1); });
    EventHandle dead = e.schedule_at(SimTime::from_micros(200), [&out] { out.push_back(9); });
    e.schedule_at(SimTime::from_micros(100), [&out] { out.push_back(2); });
    dead.cancel();
  };
  load(plain, a);
  load(sharded.shard(0), b);

  EXPECT_EQ(plain.run_until(SimTime::from_micros(500)),
            sharded.run_until(SimTime::from_micros(500)));
  EXPECT_EQ(a, b);
  EXPECT_EQ(plain.now(), sharded.now());
  EXPECT_EQ(plain.events_fired(), sharded.events_fired());
  EXPECT_EQ(plain.events_scheduled(), sharded.events_scheduled());
  EXPECT_EQ(plain.events_cancelled(), sharded.events_cancelled());
  EXPECT_EQ(sharded.windows_run(), 0u) << "collapsed mode runs no windows";
}

TEST(ShardedEngine, CollapsedPostIsAnOrdinaryLocalEvent) {
  ShardedSimEngine e(/*shards=*/1, SimDuration::millis(10));
  std::vector<int> fired;
  // Any (src, dst) pair is legal when collapsed, at any delay.
  e.post(0, 0, SimDuration::micros(5), [&fired] { fired.push_back(1); });
  e.run();
  EXPECT_EQ(fired, std::vector<int>({1}));
}

// -- Cross-shard ordering ----------------------------------------------------

TEST(ShardedEngine, MailboxMergeOrdersByTimeSrcShardSeq) {
  // Inline lanes so the observation vector needs no synchronization; the
  // parallel path is differential-tested against inline below.
  ShardedSimEngine e(ShardedSimEngine::Options{3, SimDuration::millis(10), false, 0});
  ASSERT_EQ(e.lane_count(), 3u);
  std::vector<std::string> order;

  // Shards 0 and 2 both post to shard 1, all arriving at the same instant.
  // Post call order deliberately interleaves the sources; the merge must
  // re-order by (arrival time, src shard, per-src seq), not call order.
  e.shard(2).schedule_at(SimTime::epoch(), [&e, &order] {
    e.post(2, 1, SimDuration::millis(10), [&order] { order.push_back("s2#0"); });
    e.post(2, 1, SimDuration::millis(10), [&order] { order.push_back("s2#1"); });
  });
  e.shard(0).schedule_at(SimTime::epoch(), [&e, &order] {
    e.post(0, 1, SimDuration::millis(10), [&order] { order.push_back("s0#0"); });
    e.post(0, 1, SimDuration::millis(12), [&order] { order.push_back("s0-late"); });
    e.post(0, 1, SimDuration::millis(10), [&order] { order.push_back("s0#1"); });
  });
  e.run();
  EXPECT_EQ(order, std::vector<std::string>(
                       {"s0#0", "s0#1", "s2#0", "s2#1", "s0-late"}));
  EXPECT_EQ(e.cross_posts(), 5u);
}

TEST(ShardedEngine, PostBelowLookaheadHorizonIsRejected) {
  ShardedSimEngine e(/*shards=*/2, SimDuration::millis(10));
  ASSERT_FALSE(e.collapsed());
  EXPECT_THROW(e.post(0, 1, SimDuration::millis(5), [] {}), CheckFailure);
  // Local posts are exempt — no horizon between a shard and itself.
  e.post(0, 0, SimDuration::millis(5), [] {});
  // At exactly the horizon is legal.
  e.post(0, 1, SimDuration::millis(10), [] {});
  EXPECT_EQ(e.run(), 2u);
}

TEST(ShardedEngine, ConservativeWindowsNeverOvertakeCrossShardArrivals) {
  // Shard 0 fires at t=0 and posts to shard 1 at exactly the horizon; shard 1
  // has local events straddling the arrival. Observed order on shard 1 must
  // be by timestamp even though shard 1's lane could race ahead of shard 0
  // within a window.
  ShardedSimEngine e(ShardedSimEngine::Options{2, SimDuration::millis(4), false, 0});
  std::vector<std::string> s1;
  e.shard(1).schedule_at(SimTime::from_micros(1000), [&s1] { s1.push_back("local@1ms"); });
  e.shard(1).schedule_at(SimTime::from_micros(6000), [&s1] { s1.push_back("local@6ms"); });
  e.shard(0).schedule_at(SimTime::epoch(), [&e, &s1] {
    e.post(0, 1, SimDuration::millis(4), [&s1] { s1.push_back("cross@4ms"); });
  });
  e.run_until(SimTime::from_micros(10000));
  EXPECT_EQ(s1, std::vector<std::string>({"local@1ms", "cross@4ms", "local@6ms"}));
  EXPECT_GE(e.windows_run(), 2u) << "the horizon forces at least two windows";
  EXPECT_EQ(e.now(), SimTime::from_micros(10000));
}

TEST(ShardedEngine, ChainedCrossPostsAtHorizonMultiplesAllArrive) {
  // Ping-pong a token around S shards: each hop is exactly one horizon.
  constexpr std::size_t kShards = 4;
  constexpr int kHops = 25;
  ShardedSimEngine e(/*shards=*/kShards, SimDuration::millis(1));
  ASSERT_EQ(e.lane_count(), kShards);
  std::vector<std::uint64_t> hop_count(kShards, 0);

  // std::function spelling so the callback can re-post itself recursively.
  std::function<void(std::size_t, int)> bounce = [&](std::size_t at, int left) {
    ++hop_count[at];
    if (left == 0) return;
    const std::size_t next = (at + 1) % kShards;
    e.post(at, next, SimDuration::millis(1),
           [&bounce, next, left] { bounce(next, left - 1); });
  };
  e.shard(0).schedule_at(SimTime::epoch(), [&bounce] { bounce(0, kHops); });
  e.run();
  std::uint64_t total = 0;
  for (std::uint64_t h : hop_count) total += h;
  EXPECT_EQ(total, static_cast<std::uint64_t>(kHops) + 1);
  EXPECT_EQ(e.cross_posts(), static_cast<std::uint64_t>(kHops));
  // run() leaves the horizon at the final window's end, at or past the last
  // event (the plain engine's last-event clock is a lane-level property).
  EXPECT_GE(e.now(), SimTime::epoch() + SimDuration::millis(kHops));
}

// -- Degenerate lookahead ----------------------------------------------------

TEST(ShardedEngine, ZeroLookaheadFallsBackToOneSequentialLane) {
  ShardedSimEngine e(/*shards=*/4, SimDuration::zero());
  EXPECT_TRUE(e.collapsed());
  EXPECT_EQ(e.lane_count(), 1u);
  // All four shards alias one lane; instant cross-shard posts are legal and
  // the run terminates instead of spinning on zero-width windows.
  std::vector<int> fired;
  e.shard(2).schedule_at(SimTime::epoch(), [&e, &fired] {
    fired.push_back(1);
    e.post(2, 3, SimDuration::zero(), [&fired] { fired.push_back(2); });
  });
  EXPECT_EQ(e.run(), 2u);
  EXPECT_EQ(fired, std::vector<int>({1, 2}));
}

TEST(ShardedEngine, ZeroLatencyCrossShardEdgeDoesNotDeadlock) {
  // A topology whose only cross-shard edge has zero latency: the planned
  // lookahead degenerates to zero and the engine must run sequentially.
  cloud::TopologyBuilder b(2);
  const auto stable = cloud::VariabilityParams::stable();
  const cloud::PairLinkSpec intra{ByteRate::megabits_per_sec(10000),
                                  ByteRate::megabits_per_sec(1000),
                                  SimDuration::micros(100), stable};
  const cloud::PairLinkSpec wire{ByteRate::megabits_per_sec(1000),
                                 ByteRate::megabits_per_sec(100),
                                 SimDuration::zero(), stable};
  b.add_link(make_region(0), make_region(0), intra);
  b.add_link(make_region(1), make_region(1), intra);
  b.add_symmetric(make_region(0), make_region(1), wire);
  const auto topo = std::make_shared<const cloud::Topology>(b.build());

  const cloud::ShardPlan plan = cloud::plan_shards(*topo, 2);
  EXPECT_EQ(plan.lookahead, SimDuration::zero());
  EXPECT_TRUE(plan.degenerate());

  ShardedSimEngine e(ShardedSimEngine::Options{plan.shards, plan.lookahead, true, 0});
  EXPECT_TRUE(e.collapsed()) << "degenerate horizon must not spawn lanes";
  cloud::Fabric fabric(e.shard(0), topo, /*seed=*/7);
  const auto src = fabric.add_node(make_region(0), ByteRate::megabits_per_sec(100),
                                   ByteRate::megabits_per_sec(100));
  const auto dst = fabric.add_node(make_region(1), ByteRate::megabits_per_sec(100),
                                   ByteRate::megabits_per_sec(100));
  bool done = false;
  fabric.start_flow(src, dst, Bytes::mb(10), {}, [&done](const cloud::FlowResult& r) {
    done = r.ok();
  });
  e.run_until(e.now() + SimDuration::minutes(5));
  EXPECT_TRUE(done);
}

// -- Shard planning ----------------------------------------------------------

TEST(ShardPlan, ContiguousBlocksCoverEveryShard) {
  const cloud::Topology topo = cloud::ring_of_continents(16, 8, /*stable=*/true);
  for (const std::size_t s : {1u, 2u, 3u, 4u, 7u, 16u}) {
    const cloud::ShardPlan plan = cloud::plan_shards(topo, s);
    EXPECT_EQ(plan.shards, s);
    ASSERT_EQ(plan.shard_of.size(), 16u);
    std::vector<int> seen(s, 0);
    std::uint32_t prev = 0;
    for (const std::uint32_t v : plan.shard_of) {
      EXPECT_LT(v, s);
      EXPECT_GE(v, prev) << "blocks must be contiguous";
      prev = v;
      ++seen[v];
    }
    for (const int count : seen) EXPECT_GT(count, 0) << "no shard may be empty";
  }
}

TEST(ShardPlan, ClampsShardCountToRegionCount) {
  const cloud::Topology topo = cloud::ring_of_continents(8, 4, /*stable=*/true);
  EXPECT_EQ(cloud::plan_shards(topo, 0).shards, 1u);
  EXPECT_EQ(cloud::plan_shards(topo, 100).shards, 8u);
}

TEST(ShardPlan, LookaheadIsMinimumCrossShardLatency) {
  const cloud::Topology topo = cloud::ring_of_continents(16, 8, /*stable=*/true);
  const cloud::ShardPlan plan = cloud::plan_shards(topo, 4);
  SimDuration expect = SimDuration::max();
  bool any = false;
  for (const cloud::Topology::Edge& e : topo.edges()) {
    if (plan.shard(e.src) == plan.shard(e.dst)) continue;
    any = true;
    if (e.spec.latency < expect) expect = e.spec.latency;
  }
  ASSERT_TRUE(any);
  EXPECT_EQ(plan.lookahead, expect);
  EXPECT_GT(plan.lookahead, SimDuration::zero());
  EXPECT_FALSE(plan.degenerate());
}

TEST(ShardPlan, NoCrossShardEdgesMeansUnboundedLookahead) {
  // Two islands with no link between them.
  cloud::TopologyBuilder b(2);
  const auto stable = cloud::VariabilityParams::stable();
  const cloud::PairLinkSpec intra{ByteRate::megabits_per_sec(10000),
                                  ByteRate::megabits_per_sec(1000),
                                  SimDuration::micros(100), stable};
  b.add_link(make_region(0), make_region(0), intra);
  b.add_link(make_region(1), make_region(1), intra);
  const cloud::Topology topo = b.build();
  const cloud::ShardPlan plan = cloud::plan_shards(topo, 2);
  EXPECT_EQ(plan.lookahead, SimDuration::max());
  EXPECT_FALSE(plan.degenerate());

  // Independent lanes drain in one pass without overflowing the window math.
  ShardedSimEngine e(ShardedSimEngine::Options{plan.shards, plan.lookahead, true, 0});
  ASSERT_EQ(e.lane_count(), 2u);
  std::vector<std::uint64_t> fired(2, 0);
  e.shard(0).schedule_at(SimTime::from_micros(50), [&fired] { ++fired[0]; });
  e.shard(1).schedule_at(SimTime::from_micros(70), [&fired] { ++fired[1]; });
  EXPECT_EQ(e.run(), 2u);
  EXPECT_EQ(fired[0], 1u);
  EXPECT_EQ(fired[1], 1u);
}

TEST(ShardPlan, EdgeOwnersFollowSourceRegion) {
  const cloud::Topology topo = cloud::ring_of_continents(16, 8, /*stable=*/true);
  const cloud::ShardPlan plan = cloud::plan_shards(topo, 4);
  const std::vector<std::uint32_t> owners = cloud::edge_owners(topo, plan);
  ASSERT_EQ(owners.size(), topo.edges().size());
  for (std::size_t i = 0; i < owners.size(); ++i) {
    EXPECT_EQ(owners[i], plan.shard(topo.edges()[i].src));
  }
}

// -- Sharded-vs-sequential fabric differential -------------------------------

struct WorldOutcome {
  int completed = 0;
  int relays = 0;
  std::int64_t delivered = 0;
  int exact_payloads = 0;  // completed transfers whose bytes matched exactly

  bool operator==(const WorldOutcome&) const = default;
};

// A miniature of bench_fig_scale's sharded mode: initial flows round-robin
// over declared WAN pairs, owned by the src region's shard, each completed
// flow bouncing a depth-1 relay back across shards at WAN latency.
WorldOutcome run_sharded_world(std::size_t shards, bool parallel) {
  const auto topo = std::make_shared<const cloud::Topology>(
      cloud::ring_of_continents(16, 8, /*stable=*/true));
  const cloud::ShardPlan plan = cloud::plan_shards(*topo, shards);
  ShardedSimEngine engine(
      ShardedSimEngine::Options{plan.shards, plan.lookahead, parallel, 0});
  const auto lane_of = [&](Region r) -> std::size_t {
    return engine.collapsed() ? 0 : plan.shard(r);
  };

  std::vector<std::unique_ptr<cloud::Fabric>> fabrics;
  for (std::size_t l = 0; l < engine.lane_count(); ++l) {
    fabrics.push_back(std::make_unique<cloud::Fabric>(engine.shard(l), topo, 40 + l));
  }

  std::vector<std::pair<Region, Region>> pairs;
  for (const cloud::Topology::Edge& e : topo->edges()) {
    if (e.src != e.dst) pairs.emplace_back(e.src, e.dst);
  }

  struct alignas(64) LaneTally {
    int completed = 0;
    int relays = 0;
    std::int64_t delivered = 0;
    int exact = 0;
  };
  std::vector<LaneTally> tally(engine.lane_count());
  const auto nic = ByteRate::megabits_per_sec(100);

  constexpr int kFlows = 240;
  for (int i = 0; i < kFlows; ++i) {
    const auto [a, b] = pairs[static_cast<std::size_t>(i) % pairs.size()];
    const std::size_t sa = plan.shard(a);
    const std::size_t sb = plan.shard(b);
    cloud::Fabric& owner = *fabrics[lane_of(a)];
    const auto src = owner.add_node(a, nic, nic);
    const auto dst = owner.add_node(b, nic, nic);
    const Bytes payload = Bytes::mb(20 + (i % 5) * 10);
    const Bytes relay_payload = Bytes::mb(15 + (i % 3) * 5);
    const SimDuration hop = topo->link(a, b).latency;
    owner.start_flow(
        src, dst, payload, {},
        [&engine, &fabrics, &tally, &lane_of, a, b, sa, sb, hop, payload,
         relay_payload, nic](const cloud::FlowResult& r) {
          if (!r.ok()) return;
          LaneTally& t = tally[lane_of(a)];
          ++t.completed;
          t.delivered += r.transferred.count();
          // Conservation: a completed flow delivered exactly its payload.
          if (r.transferred == payload) ++t.exact;
          engine.post(sa, sb, hop,
                      [&fabrics, &tally, &lane_of, a, b, relay_payload, nic] {
                        cloud::Fabric& f = *fabrics[lane_of(b)];
                        const auto s2 = f.add_node(b, nic, nic);
                        const auto d2 = f.add_node(a, nic, nic);
                        f.start_flow(s2, d2, relay_payload, {},
                                     [&tally, &lane_of, b,
                                      relay_payload](const cloud::FlowResult& rr) {
                                       if (!rr.ok()) return;
                                       LaneTally& t2 = tally[lane_of(b)];
                                       ++t2.relays;
                                       t2.delivered += rr.transferred.count();
                                       if (rr.transferred == relay_payload) ++t2.exact;
                                     });
                      });
        });
  }

  engine.run_until(engine.now() + SimDuration::minutes(8));

  WorldOutcome out;
  for (const LaneTally& t : tally) {
    out.completed += t.completed;
    out.relays += t.relays;
    out.delivered += t.delivered;
    out.exact_payloads += t.exact;
  }
  return out;
}

TEST(ShardedFabric, AwkwardShardCountsMatchSequentialBaseline) {
  // S=1 runs one fabric on one collapsed lane: the true sequential baseline.
  const WorldOutcome base = run_sharded_world(1, /*parallel=*/false);
  ASSERT_GT(base.completed, 0);
  ASSERT_GT(base.relays, 0);
  // Conservation: every completed transfer moved exactly its payload.
  EXPECT_EQ(base.exact_payloads, base.completed + base.relays);

  for (const std::size_t s : {2u, 3u, 7u, 64u}) {
    const WorldOutcome sharded = run_sharded_world(s, /*parallel=*/true);
    EXPECT_EQ(sharded, base) << "S=" << s << " diverged from sequential";
  }
}

TEST(ShardedFabric, ParallelAndInlineLanesLeaveIdenticalEngineState) {
  // Same shard count, pool vs calling-thread execution: full engine-counter
  // equality, not just outcome equality — windows, cross posts, per-lane
  // event totals all match because lanes are data-independent in a window.
  const auto topo = std::make_shared<const cloud::Topology>(
      cloud::ring_of_continents(16, 8, /*stable=*/true));
  const cloud::ShardPlan plan = cloud::plan_shards(*topo, 4);

  const auto drive = [&](bool parallel, std::vector<std::uint64_t>* per_lane) {
    ShardedSimEngine engine(
        ShardedSimEngine::Options{plan.shards, plan.lookahead, parallel, 0});
    std::vector<std::unique_ptr<cloud::Fabric>> fabrics;
    for (std::size_t l = 0; l < engine.lane_count(); ++l) {
      fabrics.push_back(std::make_unique<cloud::Fabric>(engine.shard(l), topo, 90 + l));
    }
    std::vector<std::pair<Region, Region>> pairs;
    for (const cloud::Topology::Edge& e : topo->edges()) {
      if (e.src != e.dst) pairs.emplace_back(e.src, e.dst);
    }
    const auto nic = ByteRate::megabits_per_sec(100);
    for (int i = 0; i < 120; ++i) {
      const auto [a, b] = pairs[static_cast<std::size_t>(i) % pairs.size()];
      cloud::Fabric& owner = *fabrics[plan.shard(a)];
      const auto src = owner.add_node(a, nic, nic);
      const auto dst = owner.add_node(b, nic, nic);
      owner.start_flow(src, dst, Bytes::mb(25 + (i % 4) * 5), {},
                       [](const cloud::FlowResult&) {});
    }
    engine.run_until(engine.now() + SimDuration::minutes(6));
    per_lane->clear();
    for (std::size_t l = 0; l < engine.lane_count(); ++l) {
      per_lane->push_back(engine.shard(l).events_fired());
      per_lane->push_back(engine.shard(l).events_scheduled());
      per_lane->push_back(engine.shard(l).events_cancelled());
    }
    per_lane->push_back(engine.windows_run());
    per_lane->push_back(engine.cross_posts());
    return engine.events_fired();
  };

  std::vector<std::uint64_t> par_state, seq_state;
  const std::uint64_t par_fired = drive(true, &par_state);
  const std::uint64_t seq_fired = drive(false, &seq_state);
  EXPECT_EQ(par_fired, seq_fired);
  EXPECT_EQ(par_state, seq_state);
}

}  // namespace
}  // namespace sage::sim
