// The harness determinism claim, end to end: a sweep of real simulation
// worlds (noisy topology, multi-lane GeoTransfers) must render the exact
// same table — byte for byte — whether it ran on 1 thread or on 4. This is
// the same property the CI smoke job checks on the full figure benches.
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "core/sage.hpp"
#include "harness/scenario.hpp"
#include "net/transfer.hpp"
#include "test_util.hpp"

namespace sage {
namespace {

struct Cell {
  int vms = 0;
  std::uint64_t seed = 0;
};

double transfer_seconds(const Cell& cell) {
  testing::NoisyWorld world(cell.seed);
  auto& provider = *world.provider;
  const auto src = provider.provision(cloud::Region::kNorthEU, cloud::VmSize::kSmall);
  const auto dst = provider.provision(cloud::Region::kNorthUS, cloud::VmSize::kSmall);
  std::vector<net::Lane> lanes = net::direct_lane(src.id, dst.id);
  for (int i = 1; i < cell.vms; ++i) {
    const auto helper = provider.provision(cloud::Region::kNorthEU, cloud::VmSize::kSmall);
    lanes.push_back(net::Lane{{src.id, helper.id, dst.id}});
  }
  net::TransferConfig config;
  config.streams_per_hop = 1;
  double seconds = 0.0;
  bool done = false;
  net::GeoTransfer transfer(provider, Bytes::mb(64), lanes, config,
                            [&](const net::TransferResult& r) {
                              seconds = r.elapsed().to_seconds();
                              done = true;
                            });
  transfer.start();
  EXPECT_TRUE(testing::run_until(world.engine, [&] { return done; }));
  return seconds;
}

std::string render_sweep(int threads) {
  std::vector<Cell> grid;
  for (int vms = 1; vms <= 3; ++vms) {
    for (std::uint64_t seed : {11u, 12u}) grid.push_back({vms, seed});
  }
  harness::ScenarioRunner runner(threads);
  const auto times = runner.sweep("transfers", grid, transfer_seconds);

  TextTable t({"VMs", "Seed", "Time s"});
  for (std::size_t i = 0; i < grid.size(); ++i) {
    t.add_row({std::to_string(grid[i].vms), std::to_string(grid[i].seed),
               TextTable::num(times[i], 3)});
  }
  return t.render();
}

TEST(HarnessDeterminism, TableIsByteIdenticalAcrossThreadCounts) {
  const std::string one = render_sweep(1);
  const std::string four = render_sweep(4);
  EXPECT_FALSE(one.empty());
  EXPECT_EQ(one, four);
}

TEST(HarnessDeterminism, RepeatedParallelRunsAreIdentical) {
  EXPECT_EQ(render_sweep(4), render_sweep(4));
}

// Full SAGE control loop (monitoring, tradeoff resolution, planning,
// adaptive replanning) rendered as a scenario table. The control-plane
// caches are value-preserving by contract, so the rendered bytes must not
// depend on the SAGE_CTRL_CACHE gate — the same differential CI runs over
// the real figure benches — nor on the harness thread count.
struct SageCell {
  std::uint64_t seed = 0;
  int sends = 0;
};

std::string render_sage_sweep(int threads) {
  std::vector<SageCell> grid;
  for (std::uint64_t seed : {21u, 22u}) {
    for (int sends : {1, 3}) grid.push_back({seed, sends});
  }
  harness::ScenarioRunner runner(threads);
  const auto times = runner.sweep("sage-ctrl", grid, [](const SageCell& cell) {
    testing::NoisyWorld world(cell.seed);
    core::SageConfig config;
    config.regions = {cloud::Region::kNorthEU, cloud::Region::kEastUS,
                      cloud::Region::kNorthUS};
    config.helpers_per_region = 3;
    config.monitoring.probe_interval = SimDuration::minutes(1);
    config.adapt_interval = SimDuration::seconds(5);
    core::SageEngine engine(*world.provider, config);
    engine.deploy();
    world.engine.run_until(world.engine.now() + SimDuration::minutes(10));
    int done = 0;
    double total = 0.0;
    for (int i = 0; i < cell.sends; ++i) {
      engine.send(cloud::Region::kNorthEU, cloud::Region::kNorthUS, Bytes::mb(50),
                  [&](const stream::SendOutcome& o) {
                    EXPECT_TRUE(o.ok);
                    total += o.elapsed.to_seconds();
                    ++done;
                  });
    }
    EXPECT_TRUE(
        testing::run_until(world.engine, [&] { return done == cell.sends; }));
    return total;
  });

  TextTable t({"Seed", "Sends", "Total s"});
  for (std::size_t i = 0; i < grid.size(); ++i) {
    t.add_row({std::to_string(grid[i].seed), std::to_string(grid[i].sends),
               TextTable::num(times[i], 3)});
  }
  return t.render();
}

TEST(ControlCacheDifferential, CachedAndUncachedSweepsRenderIdentically) {
  ::setenv("SAGE_CTRL_CACHE", "1", 1);
  const std::string cached = render_sage_sweep(2);
  ::setenv("SAGE_CTRL_CACHE", "0", 1);
  const std::string uncached = render_sage_sweep(2);
  ::unsetenv("SAGE_CTRL_CACHE");
  EXPECT_FALSE(cached.empty());
  EXPECT_EQ(cached, uncached);
}

TEST(ControlCacheDifferential, CachedSweepIsThreadCountInvariant) {
  ::setenv("SAGE_CTRL_CACHE", "1", 1);
  const std::string one = render_sage_sweep(1);
  const std::string four = render_sage_sweep(4);
  ::unsetenv("SAGE_CTRL_CACHE");
  EXPECT_EQ(one, four);
}

TEST(WorldRunUntil, ReportsPredicateReason) {
  bench::World world(/*seed=*/5);
  bool flag = false;
  world.engine.schedule_after(SimDuration::seconds(10), [&] { flag = true; });
  const bench::RunOutcome out = world.run_until([&] { return flag; });
  EXPECT_TRUE(out);
  EXPECT_EQ(out.reason, bench::RunStop::kPredicate);
}

TEST(WorldRunUntil, BailsOutIdleInsteadOfSteppingToBudget) {
  bench::World world(/*seed=*/5);
  world.engine.schedule_after(SimDuration::seconds(1), [] {});
  // After the lone event fires nothing can ever satisfy the predicate; the
  // call must stop right there, not grind virtual time to the 2-day budget.
  const bench::RunOutcome out = world.run_until([] { return false; });
  EXPECT_FALSE(out);
  EXPECT_EQ(out.reason, bench::RunStop::kIdle);
  EXPECT_LE(world.engine.now() - SimTime::epoch(), SimDuration::seconds(1));
}

TEST(WorldRunUntil, IdleBailIsImmediateOnEmptyWorld) {
  bench::World world(/*seed=*/5);
  const bench::RunOutcome out = world.run_until([] { return false; });
  EXPECT_EQ(out.reason, bench::RunStop::kIdle);
  EXPECT_EQ(world.engine.now(), SimTime::epoch());
  // Repeated calls keep bailing immediately even though each left a
  // cancelled sentinel husk in the heap (live_events ignores husks).
  const bench::RunOutcome again = world.run_until([] { return false; });
  EXPECT_EQ(again.reason, bench::RunStop::kIdle);
  EXPECT_EQ(world.engine.now(), SimTime::epoch());
}

TEST(WorldRunUntil, ReportsBudgetReasonUnderPeriodicWork) {
  bench::World world(/*seed=*/5);
  sim::PeriodicTask probe(world.engine, SimDuration::minutes(1), [] {});
  probe.start();
  const bench::RunOutcome out =
      world.run_until([] { return false; }, SimDuration::minutes(5));
  EXPECT_FALSE(out.satisfied());
  EXPECT_EQ(out.reason, bench::RunStop::kBudget);
  EXPECT_EQ(world.engine.now() - SimTime::epoch(), SimDuration::minutes(5));
}

}  // namespace
}  // namespace sage
