// Functional tests for the deterministic fault-injection subsystem: the
// FaultPlan schedule types, the ChaosController execution paths (plain and
// sharded), every Fabric/Monitoring hook, and the World::run_until outcome
// reasons under faults (healthy-path reasons are asserted elsewhere; here
// the terminating predicate's transfer is aborted or stranded).
#include "chaos/chaos.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "chaos_invariants.hpp"
#include "cloud/fabric.hpp"
#include "cloud/topology.hpp"
#include "monitor/monitoring.hpp"
#include "net/transfer.hpp"
#include "obs/obs.hpp"
#include "simcore/sharded_engine.hpp"
#include "test_util.hpp"

namespace sage {
namespace {

using chaos::ChaosController;
using chaos::ChaosTargets;
using chaos::FaultKind;
using chaos::FaultPlan;
using cloud::Region;
using sage::testing::ChaosInvariants;
using sage::testing::StableWorld;

constexpr Region kNEU = Region::kNorthEU;
constexpr Region kNUS = Region::kNorthUS;
constexpr Region kWEU = Region::kWestEU;

ByteRate nic() { return ByteRate::megabits_per_sec(200); }

SimTime at(double seconds) { return SimTime::epoch() + SimDuration::seconds(seconds); }

// ---------------------------------------------------------------------------
// Gate and plan mechanics.
// ---------------------------------------------------------------------------

TEST(ChaosGate, OverrideRoundTrips) {
  const bool before = chaos::chaos_enabled();
  chaos::set_chaos_enabled(!before);
  EXPECT_EQ(chaos::chaos_enabled(), !before);
  stream::RuntimeConfig rc;
  EXPECT_EQ(rc.chaos, !before);  // RuntimeConfig snapshots the gate
  chaos::set_chaos_enabled(before);
  EXPECT_EQ(chaos::chaos_enabled(), before);
}

TEST(FaultPlanTest, BuildersRecordSortAndDescribe) {
  FaultPlan plan;
  plan.link_up(at(30), kNEU, kNUS)
      .link_down(at(10), kNEU, kNUS, SimDuration::seconds(5), true)
      .poison_estimator(at(20), kNEU, kNUS, 999.0, 2);
  EXPECT_EQ(plan.size(), 3u);
  plan.sort();
  EXPECT_EQ(plan.events[0].kind, FaultKind::kLinkDown);
  EXPECT_EQ(plan.events[1].kind, FaultKind::kPoisonEstimator);
  EXPECT_EQ(plan.events[2].kind, FaultKind::kLinkUp);
  const std::string d = plan.events[0].describe();
  EXPECT_NE(d.find("link_down"), std::string::npos) << d;
  EXPECT_NE(d.find("abort"), std::string::npos) << d;
  EXPECT_NE(d.find("dur="), std::string::npos) << d;
}

TEST(FaultPlanTest, RandomScheduleIsSeedDeterministic) {
  const cloud::Topology topo = cloud::default_topology();
  const FaultPlan a = FaultPlan::random(7, topo, at(0), SimDuration::minutes(10), 40);
  const FaultPlan b = FaultPlan::random(7, topo, at(0), SimDuration::minutes(10), 40);
  const FaultPlan c = FaultPlan::random(8, topo, at(0), SimDuration::minutes(10), 40);
  EXPECT_EQ(a.size(), 40u);
  EXPECT_EQ(a.describe(), b.describe());
  EXPECT_NE(a.describe(), c.describe());
}

TEST(FaultPlanTest, IncidentStormIsSeedDeterministicAndCorrelated) {
  const cloud::Topology topo = cloud::default_topology();
  const FaultPlan a =
      FaultPlan::incident_storm(3, topo, at(0), SimDuration::days(2), 12.0);
  const FaultPlan b =
      FaultPlan::incident_storm(3, topo, at(0), SimDuration::days(2), 12.0);
  EXPECT_EQ(a.describe(), b.describe());
  EXPECT_GT(a.size(), 4u);  // ~24 storms expected, several links each
  for (const auto& e : a.events) {
    EXPECT_TRUE(e.kind == FaultKind::kLinkDown ||
                e.kind == FaultKind::kCapacitySqueeze);
    EXPECT_GT(e.duration, SimDuration::zero());
  }
}

// ---------------------------------------------------------------------------
// Fabric hooks through the controller.
// ---------------------------------------------------------------------------

TEST(ChaosFabric, LinkDownStrandsFlowsAndLinkUpResumes) {
  sim::SimEngine engine;
  cloud::Fabric fabric(engine, cloud::stable_topology(), 1);
  const auto src = fabric.add_node(kNEU, nic(), nic());
  const auto dst = fabric.add_node(kNUS, nic(), nic());

  cloud::FlowResult res{};
  bool done = false;
  const auto id = fabric.start_flow(src, dst, Bytes::mb(200), {},
                                    [&](const cloud::FlowResult& r) {
                                      res = r;
                                      done = true;
                                    });

  FaultPlan plan;
  plan.link_down(at(5), kNEU, kNUS);  // strand, don't abort
  plan.link_up(at(60), kNEU, kNUS);
  ChaosController chaos(engine, ChaosTargets{&fabric, nullptr}, std::move(plan),
                        /*enabled=*/true);

  engine.run_until(at(30));
  EXPECT_FALSE(done);  // stranded at rate zero, still alive
  EXPECT_TRUE(fabric.flow_active(id));
  EXPECT_EQ(fabric.flow_rate(id), ByteRate::zero());

  ASSERT_TRUE(sage::testing::run_until(engine, [&] { return done; },
                                       SimDuration::hours(2)));
  EXPECT_TRUE(res.ok());
  EXPECT_EQ(res.transferred, Bytes::mb(200));
  EXPECT_EQ(chaos.faults_applied(), 2u);
  EXPECT_EQ(chaos.faults_skipped(), 0u);
}

TEST(ChaosFabric, LinkDownWithAbortFailsCrossingFlows) {
  sim::SimEngine engine;
  obs::ObsConfig cfg;
  cfg.tracing = false;
  engine.enable_obs(cfg);
  cloud::Fabric fabric(engine, cloud::stable_topology(), 1);
  const auto src = fabric.add_node(kNEU, nic(), nic());
  const auto dst = fabric.add_node(kNUS, nic(), nic());

  cloud::FlowResult res{};
  bool done = false;
  fabric.start_flow(src, dst, Bytes::mb(200), {}, [&](const cloud::FlowResult& r) {
    res = r;
    done = true;
  });

  FaultPlan plan;
  plan.link_down(at(5), kNEU, kNUS, SimDuration::zero(), /*abort_flows=*/true);
  ChaosController chaos(engine, ChaosTargets{&fabric, nullptr}, std::move(plan),
                        /*enabled=*/true);

  engine.run_until(at(10));
  ASSERT_TRUE(done);
  EXPECT_EQ(res.outcome, cloud::FlowOutcome::kFailed);
  EXPECT_GT(res.transferred, Bytes::zero());  // made progress before the cut
  EXPECT_LT(res.transferred, Bytes::mb(200));

  ChaosInvariants inv;
  inv.check_fabric(engine, fabric);
  inv.check_engine(engine, /*allowed_live=*/1);  // dormant refresh event at most
  EXPECT_TRUE(inv.ok()) << inv.report();
}

TEST(ChaosFabric, TimedFaultAutoReverts) {
  sim::SimEngine engine;
  cloud::Fabric fabric(engine, cloud::stable_topology(), 1);
  const auto src = fabric.add_node(kNEU, nic(), nic());
  const auto dst = fabric.add_node(kNUS, nic(), nic());

  bool done = false;
  fabric.start_flow(src, dst, Bytes::mb(100), {},
                    [&](const cloud::FlowResult& r) { done = r.ok(); });

  FaultPlan plan;
  plan.link_down(at(5), kNEU, kNUS, /*duration=*/SimDuration::seconds(20));
  ChaosController chaos(engine, ChaosTargets{&fabric, nullptr}, std::move(plan),
                        /*enabled=*/true);

  engine.run_until(at(15));
  EXPECT_EQ(chaos.faults_applied(), 1u);
  EXPECT_EQ(chaos.reverts_applied(), 0u);
  ASSERT_TRUE(sage::testing::run_until(engine, [&] { return done; },
                                       SimDuration::hours(2)));
  EXPECT_EQ(chaos.reverts_applied(), 1u);  // the link came back on its own
}

TEST(ChaosFabric, CapacitySqueezeSlowsCompletion) {
  const auto run_one = [](bool squeeze) {
    sim::SimEngine engine;
    cloud::Fabric fabric(engine, cloud::stable_topology(), 1);
    const auto src = fabric.add_node(kNEU, nic(), nic());
    const auto dst = fabric.add_node(kNUS, nic(), nic());
    SimTime finished;
    bool done = false;
    fabric.start_flow(src, dst, Bytes::mb(50), {}, [&](const cloud::FlowResult& r) {
      EXPECT_TRUE(r.ok());
      finished = r.finished;
      done = true;
    });
    FaultPlan plan;
    if (squeeze) plan.capacity_squeeze(at(1), kNEU, kNUS, 0.02);
    ChaosController chaos(engine, ChaosTargets{&fabric, nullptr}, std::move(plan),
                          /*enabled=*/true);
    EXPECT_TRUE(sage::testing::run_until(engine, [&] { return done; },
                                         SimDuration::hours(6)));
    return finished;
  };
  const SimTime healthy = run_one(false);
  const SimTime squeezed = run_one(true);
  EXPECT_GT(squeezed, healthy + SimDuration::seconds(5));
}

TEST(ChaosFabric, LatencySpikeDelaysNewFlows) {
  const auto run_one = [](bool spike) {
    sim::SimEngine engine;
    cloud::Fabric fabric(engine, cloud::stable_topology(), 1);
    const auto src = fabric.add_node(kNEU, nic(), nic());
    const auto dst = fabric.add_node(kNUS, nic(), nic());
    FaultPlan plan;
    if (spike) plan.latency_spike(at(1), kNEU, kNUS, SimDuration::seconds(2));
    ChaosController chaos(engine, ChaosTargets{&fabric, nullptr}, std::move(plan),
                          /*enabled=*/true);
    engine.run_until(at(5));
    SimTime finished;
    bool done = false;
    fabric.start_flow(src, dst, Bytes::mb(1), {}, [&](const cloud::FlowResult& r) {
      EXPECT_TRUE(r.ok());
      finished = r.finished;
      done = true;
    });
    EXPECT_TRUE(sage::testing::run_until(engine, [&] { return done; },
                                         SimDuration::hours(1)));
    return finished;
  };
  const SimTime healthy = run_one(false);
  const SimTime spiked = run_one(true);
  // The spike adds exactly its extra setup latency to the new flow.
  EXPECT_NEAR((spiked - healthy).to_seconds(), 2.0, 0.1);
}

TEST(ChaosFabric, LossBurstAbortsAtMostCount) {
  sim::SimEngine engine;
  cloud::Fabric fabric(engine, cloud::stable_topology(), 1);
  int failed = 0;
  int completed = 0;
  const int kFlows = 6;
  for (int i = 0; i < kFlows; ++i) {
    const auto src = fabric.add_node(kNEU, nic(), nic());
    const auto dst = fabric.add_node(kNUS, nic(), nic());
    fabric.start_flow(src, dst, Bytes::mb(150), {}, [&](const cloud::FlowResult& r) {
      r.ok() ? ++completed : ++failed;
    });
  }
  FaultPlan plan;
  plan.loss_burst(at(5), kNEU, kNUS, 3);
  ChaosController chaos(engine, ChaosTargets{&fabric, nullptr}, std::move(plan),
                        /*enabled=*/true);
  ASSERT_TRUE(sage::testing::run_until(
      engine, [&] { return failed + completed == kFlows; }, SimDuration::hours(6)));
  EXPECT_EQ(failed, 3);
  EXPECT_EQ(completed, kFlows - 3);
}

TEST(ChaosFabric, RegionOutageFailsNodesAndRecoverRestores) {
  sim::SimEngine engine;
  cloud::Fabric fabric(engine, cloud::stable_topology(), 1);
  const auto src = fabric.add_node(kNEU, nic(), nic());
  const auto dst = fabric.add_node(kNUS, nic(), nic());

  cloud::FlowResult res{};
  bool done = false;
  fabric.start_flow(src, dst, Bytes::mb(200), {}, [&](const cloud::FlowResult& r) {
    res = r;
    done = true;
  });

  FaultPlan plan;
  plan.region_outage(at(5), kNUS, /*duration=*/SimDuration::seconds(20));
  ChaosController chaos(engine, ChaosTargets{&fabric, nullptr}, std::move(plan),
                        /*enabled=*/true);

  engine.run_until(at(10));
  ASSERT_TRUE(done);
  EXPECT_EQ(res.outcome, cloud::FlowOutcome::kFailed);
  EXPECT_TRUE(fabric.node_failed(dst));
  EXPECT_FALSE(fabric.node_failed(src));

  engine.run_until(at(30));  // auto-recovery fired
  EXPECT_FALSE(fabric.node_failed(dst));
  bool ok2 = false;
  fabric.start_flow(src, dst, Bytes::mb(10), {},
                    [&](const cloud::FlowResult& r) { ok2 = r.ok(); });
  ASSERT_TRUE(sage::testing::run_until(engine, [&] { return ok2; },
                                       SimDuration::hours(1)));
}

TEST(ChaosFabric, PartitionCutsCrossingLinksAndHealRestores) {
  sim::SimEngine engine;
  cloud::Fabric fabric(engine, cloud::stable_topology(), 1);
  const auto a = fabric.add_node(kNEU, nic(), nic());
  const auto b = fabric.add_node(kNUS, nic(), nic());
  const auto c = fabric.add_node(kWEU, nic(), nic());

  int completed = 0;
  bool intra_island_done = false;
  // Crosses the island boundary: must strand during the partition.
  fabric.start_flow(a, b, Bytes::mb(150), {},
                    [&](const cloud::FlowResult& r) { completed += r.ok(); });
  // Both endpoints inside the island: unaffected.
  fabric.start_flow(a, c, Bytes::mb(10), {},
                    [&](const cloud::FlowResult& r) { intra_island_done = r.ok(); });

  FaultPlan plan;
  plan.partition(at(5), {kNEU, kWEU}, /*duration=*/SimDuration::seconds(60));
  ChaosController chaos(engine, ChaosTargets{&fabric, nullptr}, std::move(plan),
                        /*enabled=*/true);

  engine.run_until(at(40));
  EXPECT_TRUE(intra_island_done);
  EXPECT_EQ(completed, 0);  // stranded mid-partition
  ASSERT_TRUE(sage::testing::run_until(engine, [&] { return completed == 1; },
                                       SimDuration::hours(2)));
  EXPECT_EQ(chaos.reverts_applied(), 1u);
}

// ---------------------------------------------------------------------------
// Monitoring hook.
// ---------------------------------------------------------------------------

TEST(ChaosMonitoring, PoisonBumpsEpochThroughNormalIngestion) {
  StableWorld world;
  monitor::MonitorConfig config;
  config.probe_interval = SimDuration::minutes(1);
  monitor::MonitoringService monitoring(*world.provider, config);
  for (Region r : {kNEU, kNUS}) {
    monitoring.register_agent(r, world.provider->provision(r, cloud::VmSize::kSmall).id);
  }
  monitoring.start();
  world.engine.run_until(world.engine.now() + SimDuration::minutes(10));

  const std::uint64_t epoch0 = monitoring.sample_epoch();
  const double mean0 = monitoring.estimate(kNEU, kNUS).mean_mbps;
  ASSERT_GT(epoch0, 0u);

  ChaosInvariants inv;
  inv.check_epoch(monitoring);

  FaultPlan plan;
  const SimTime now = world.engine.now();
  plan.poison_estimator(now + SimDuration::seconds(1), kNEU, kNUS, 50000.0, 3);
  plan.poison_estimator(now + SimDuration::seconds(1), kNEU, kWEU, 50000.0, 1);
  ChaosController chaos(world.engine, ChaosTargets{nullptr, &monitoring},
                        std::move(plan), /*enabled=*/true);
  world.engine.run_until(now + SimDuration::seconds(2));

  EXPECT_GE(monitoring.sample_epoch(), epoch0 + 3);
  EXPECT_GT(monitoring.estimate(kNEU, kNUS).mean_mbps, mean0);
  EXPECT_EQ(chaos.faults_applied(), 1u);  // the monitored pair
  EXPECT_EQ(chaos.faults_skipped(), 1u);  // kWEU has no agent
  const auto history = monitoring.history(kNEU, kNUS);
  ASSERT_GE(history.size(), 3u);
  EXPECT_EQ(history.back().mbps, 50000.0);

  inv.check_epoch(monitoring);
  monitoring.stop();
  EXPECT_TRUE(inv.ok()) << inv.report();
}

// ---------------------------------------------------------------------------
// Off-state: a disabled controller perturbs nothing.
// ---------------------------------------------------------------------------

TEST(ChaosController_, DisabledControllerIsByteIdenticalNoOp) {
  const auto run_one = [](bool attach_disabled) {
    sim::SimEngine engine;
    cloud::Fabric fabric(engine, cloud::default_topology(), 42);
    std::vector<SimTime> finishes;
    int done = 0;
    for (int i = 0; i < 8; ++i) {
      const auto src = fabric.add_node(kNEU, nic(), nic());
      const auto dst = fabric.add_node(kNUS, nic(), nic());
      fabric.start_flow(src, dst, Bytes::mb(20 + i * 5), {},
                        [&](const cloud::FlowResult& r) {
                          finishes.push_back(r.finished);
                          ++done;
                        });
    }
    std::unique_ptr<ChaosController> chaos;
    if (attach_disabled) {
      FaultPlan plan;
      plan.link_down(at(1), kNEU, kNUS, SimDuration::zero(), true)
          .region_outage(at(2), kNUS);
      chaos = std::make_unique<ChaosController>(
          engine, ChaosTargets{&fabric, nullptr}, std::move(plan), /*enabled=*/false);
      EXPECT_FALSE(chaos->enabled());
    }
    EXPECT_TRUE(sage::testing::run_until(engine, [&] { return done == 8; },
                                         SimDuration::hours(6)));
    return std::make_pair(finishes, engine.events_fired());
  };
  const auto [f0, fired0] = run_one(false);
  const auto [f1, fired1] = run_one(true);
  EXPECT_EQ(f0, f1);
  EXPECT_EQ(fired0, fired1);
}

// ---------------------------------------------------------------------------
// Sharded execution: the plan applies on every lane at the same sim times.
// ---------------------------------------------------------------------------

TEST(ChaosSharded, PlanAppliesPerLaneAndFlowsResume) {
  const auto topo =
      std::make_shared<const cloud::Topology>(cloud::stable_topology());
  const cloud::ShardPlan splan = cloud::plan_shards(*topo, 2);
  sim::ShardedSimEngine engine(
      sim::ShardedSimEngine::Options{splan.shards, splan.lookahead, true, 0});
  ASSERT_EQ(engine.lane_count(), 2u);

  std::vector<std::unique_ptr<cloud::Fabric>> fabrics;
  std::vector<ChaosTargets> targets;
  for (std::size_t l = 0; l < engine.lane_count(); ++l) {
    fabrics.push_back(std::make_unique<cloud::Fabric>(engine.shard(l), topo, 7 + l));
    targets.push_back(ChaosTargets{fabrics[l].get(), nullptr});
  }

  // One NEU -> NUS flow per lane fabric (each lane simulates its own flows;
  // the fault must strand both at the same sim time).
  struct alignas(64) LaneDone {
    bool ok = false;
  };
  std::vector<LaneDone> done(engine.lane_count());
  for (std::size_t l = 0; l < engine.lane_count(); ++l) {
    cloud::Fabric& f = *fabrics[l];
    const auto src = f.add_node(kNEU, nic(), nic());
    const auto dst = f.add_node(kNUS, nic(), nic());
    f.start_flow(src, dst, Bytes::mb(150), {},
                 [&done, l](const cloud::FlowResult& r) { done[l].ok = r.ok(); });
  }

  FaultPlan plan;
  plan.link_down(at(5), kNEU, kNUS, /*duration=*/SimDuration::seconds(30));
  ChaosController chaos(engine, std::move(targets), std::move(plan),
                        /*enabled=*/true);

  engine.run_until(at(20));
  EXPECT_EQ(chaos.faults_applied(), 2u);  // one per lane
  EXPECT_FALSE(done[0].ok);
  EXPECT_FALSE(done[1].ok);

  engine.run_until(at(3600));
  EXPECT_EQ(chaos.reverts_applied(), 2u);
  EXPECT_TRUE(done[0].ok);
  EXPECT_TRUE(done[1].ok);

  ChaosInvariants inv;
  inv.check_engine(engine, /*allowed_live=*/2);  // at most a dormant refresh per lane
  EXPECT_TRUE(inv.ok()) << inv.report();
}

// ---------------------------------------------------------------------------
// World::run_until outcome reasons under faults (satellite: today only the
// healthy-path reasons are asserted; these pin the fault paths).
// ---------------------------------------------------------------------------

TEST(RunUntilOutcome, PredicateFiresOnHealthyTransfer) {
  bench::World world(1, /*stable=*/true);
  const auto fan = bench::provision_fan(*world.provider, kNEU, kNUS, 1);
  net::TransferResult result{};
  bool done = false;
  net::GeoTransfer transfer(*world.provider, Bytes::mb(8), fan.lanes, {},
                            [&](const net::TransferResult& r) {
                              result = r;
                              done = true;
                            });
  transfer.start();
  const bench::RunOutcome out =
      world.run_until([&] { return done && result.ok; }, SimDuration::hours(2));
  EXPECT_EQ(out.reason, bench::RunStop::kPredicate);
  EXPECT_TRUE(result.ok);
}

TEST(RunUntilOutcome, IdleWhenOutageAbortsTheAwaitedTransfer) {
  bench::World world(1, /*stable=*/true);
  const auto fan = bench::provision_fan(*world.provider, kNEU, kNUS, 1);
  net::TransferResult result{};
  bool done = false;
  net::GeoTransfer transfer(*world.provider, Bytes::mb(256), fan.lanes, {},
                            [&](const net::TransferResult& r) {
                              result = r;
                              done = true;
                            });
  transfer.start();

  FaultPlan plan;
  plan.region_outage(world.engine.now() + SimDuration::seconds(3), kNUS);
  ChaosController chaos(world.engine, ChaosTargets{&world.provider->fabric(), nullptr},
                        std::move(plan), /*enabled=*/true);

  // The outage kills the transfer's only lane: the transfer finishes with
  // ok=false, the predicate can never fire, and the world drains — the
  // outcome must say kIdle, not burn virtual time to the budget.
  const bench::RunOutcome out =
      world.run_until([&] { return done && result.ok; }, SimDuration::hours(2));
  EXPECT_EQ(out.reason, bench::RunStop::kIdle);
  ASSERT_TRUE(done);
  EXPECT_FALSE(result.ok);
  EXPECT_GE(result.stats.hop_failures, 1);  // the retry path actually engaged
}

TEST(RunUntilOutcome, BudgetWhenOutageStrandsTheAwaitedFlow) {
  bench::World world(1, /*stable=*/true);
  const auto a = world.provider->provision(kNEU, cloud::VmSize::kSmall);
  const auto b = world.provider->provision(kNUS, cloud::VmSize::kSmall);
  bool done = false;
  const auto id = world.provider->transfer(a.id, b.id, Bytes::mb(256), {},
                                           [&](const cloud::FlowResult&) { done = true; });

  FaultPlan plan;
  // Down without abort: the flow stays alive at rate zero, the fabric's
  // refresh tick keeps the queue busy, and the budget expires.
  plan.link_down(world.engine.now() + SimDuration::seconds(3), kNEU, kNUS);
  ChaosController chaos(world.engine, ChaosTargets{&world.provider->fabric(), nullptr},
                        std::move(plan), /*enabled=*/true);

  const bench::RunOutcome out =
      world.run_until([&] { return done; }, SimDuration::minutes(2));
  EXPECT_EQ(out.reason, bench::RunStop::kBudget);
  EXPECT_FALSE(done);
  EXPECT_TRUE(world.provider->fabric().flow_active(id));
  EXPECT_EQ(world.provider->fabric().flow_rate(id), ByteRate::zero());
}

TEST(RunUntilOutcome, TransientOutageOnRelayLaneRetriesAndCompletes) {
  bench::World world(1, /*stable=*/true);
  // Direct lane plus a relay through a kWEU helper: the outage kills only
  // the relay lane, so the transfer must retry the lost chunks through the
  // surviving direct lane and still deliver every byte.
  const auto src = world.provider->provision(kNEU, cloud::VmSize::kSmall);
  const auto dst = world.provider->provision(kNUS, cloud::VmSize::kSmall);
  const auto helper = world.provider->provision(kWEU, cloud::VmSize::kSmall);
  std::vector<net::Lane> lanes = net::direct_lane(src.id, dst.id);
  lanes.push_back(net::Lane{{src.id, helper.id, dst.id}});

  net::TransferResult result{};
  bool done = false;
  net::GeoTransfer transfer(*world.provider, Bytes::mb(128), lanes, {},
                            [&](const net::TransferResult& r) {
                              result = r;
                              done = true;
                            });
  transfer.start();

  FaultPlan plan;
  plan.region_outage(world.engine.now() + SimDuration::seconds(3), kWEU);
  ChaosController chaos(world.engine, ChaosTargets{&world.provider->fabric(), nullptr},
                        std::move(plan), /*enabled=*/true);

  const bench::RunOutcome out =
      world.run_until([&] { return done; }, SimDuration::hours(6));
  EXPECT_EQ(out.reason, bench::RunStop::kPredicate);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.size, Bytes::mb(128));
  EXPECT_GE(result.stats.hop_failures, 1);
  EXPECT_EQ(result.stats.chunks_delivered, result.stats.chunks_total);
}

}  // namespace
}  // namespace sage
