// Tests for the cloud provider facade: VM lifecycle, billing, blobs, CPU.
#include "cloud/provider.hpp"

#include <gtest/gtest.h>

#include "common/stats.hpp"
#include "test_util.hpp"

namespace sage::cloud {
namespace {

using sage::testing::StableWorld;
using sage::testing::run_until;

TEST(VmCatalogTest, SpecsMatchTheAzurePriceBook) {
  EXPECT_EQ(vm_spec(VmSize::kSmall).cores, 1);
  EXPECT_DOUBLE_EQ(vm_spec(VmSize::kSmall).memory_gb, 1.75);
  EXPECT_DOUBLE_EQ(vm_spec(VmSize::kSmall).nic.to_mb_per_sec(), 12.5);
  EXPECT_DOUBLE_EQ(vm_spec(VmSize::kSmall).hourly_price.to_usd(), 0.06);
  EXPECT_EQ(vm_spec(VmSize::kMedium).cores, 2);
  EXPECT_EQ(vm_spec(VmSize::kXLarge).cores, 8);
  EXPECT_DOUBLE_EQ(vm_spec(VmSize::kXLarge).nic.to_mb_per_sec(), 100.0);
  EXPECT_DOUBLE_EQ(vm_spec(VmSize::kXLarge).hourly_price.to_usd(), 0.48);
}

TEST(PricingTest, VmLeaseProrates) {
  PricingModel pricing;
  EXPECT_DOUBLE_EQ(pricing.vm_lease(VmSize::kSmall, SimDuration::hours(1)).to_usd(), 0.06);
  EXPECT_NEAR(pricing.vm_lease(VmSize::kSmall, SimDuration::minutes(30)).to_usd(), 0.03,
              1e-9);
}

TEST(PricingTest, EgressFreeWithinRegion) {
  PricingModel pricing;
  EXPECT_TRUE(pricing.egress(Region::kNorthEU, Region::kNorthEU, Bytes::gb(10)).is_zero());
  EXPECT_NEAR(pricing.egress(Region::kNorthEU, Region::kNorthUS, Bytes::gb(10)).to_usd(),
              1.2, 1e-9);
}

TEST(PricingTest, BlobStorageMonthly) {
  PricingModel pricing;
  // 1 GB for one 30-day month = $0.07.
  EXPECT_NEAR(pricing.blob_storage(Bytes::gb(1), SimDuration::days(30)).to_usd(), 0.07,
              1e-6);
}

TEST(ProviderTest, ProvisionAndRelease) {
  StableWorld world;
  auto& provider = *world.provider;
  const VmHandle vm = provider.provision(Region::kNorthEU, VmSize::kSmall);
  EXPECT_TRUE(provider.is_active(vm.id));
  EXPECT_EQ(provider.vm(vm.id).region, Region::kNorthEU);
  EXPECT_EQ(provider.active_vm_count(), 1u);
  provider.release(vm.id);
  EXPECT_FALSE(provider.is_active(vm.id));
  EXPECT_EQ(provider.active_vm_count(), 0u);
}

TEST(ProviderTest, ProvisionManyCreatesDistinctVms) {
  StableWorld world;
  const auto vms = world.provider->provision_many(Region::kWestEU, VmSize::kMedium, 5);
  ASSERT_EQ(vms.size(), 5u);
  for (std::size_t i = 0; i + 1 < vms.size(); ++i) EXPECT_NE(vms[i].id, vms[i + 1].id);
}

TEST(ProviderTest, VmLeaseBilledForHeldDuration) {
  StableWorld world;
  auto& provider = *world.provider;
  const VmHandle vm = provider.provision(Region::kNorthEU, VmSize::kSmall);
  world.engine.schedule_after(SimDuration::hours(2), [&] { provider.release(vm.id); });
  world.engine.run();
  EXPECT_NEAR(provider.cost_report().vm_lease.to_usd(), 0.12, 1e-6);
}

TEST(ProviderTest, ActiveLeaseAccruesWithoutFinalizing) {
  StableWorld world;
  auto& provider = *world.provider;
  provider.provision(Region::kNorthEU, VmSize::kSmall);
  world.engine.run_until(world.engine.now() + SimDuration::hours(1));
  EXPECT_NEAR(provider.cost_report().vm_lease.to_usd(), 0.06, 1e-6);
  world.engine.run_until(world.engine.now() + SimDuration::hours(1));
  // Accrual is idempotent, not double-charged.
  EXPECT_NEAR(provider.cost_report().vm_lease.to_usd(), 0.12, 1e-6);
}

TEST(ProviderTest, TransferBillsEgressOnce) {
  StableWorld world;
  auto& provider = *world.provider;
  const VmHandle a = provider.provision(Region::kNorthEU, VmSize::kSmall);
  const VmHandle b = provider.provision(Region::kNorthUS, VmSize::kSmall);
  bool done = false;
  provider.transfer(a.id, b.id, Bytes::gb(1), {}, [&](const FlowResult&) { done = true; });
  ASSERT_TRUE(run_until(world.engine, [&] { return done; }, SimDuration::hours(2)));
  const CostReport report = provider.cost_report();
  EXPECT_NEAR(report.egress.to_usd(), 0.12, 0.01);
  // Re-reporting must not re-bill.
  EXPECT_NEAR(provider.cost_report().egress.to_usd(), report.egress.to_usd(), 1e-9);
}

TEST(ProviderTest, FailVmAbortsAndStopsBilling) {
  StableWorld world;
  auto& provider = *world.provider;
  const VmHandle a = provider.provision(Region::kNorthEU, VmSize::kSmall);
  const VmHandle b = provider.provision(Region::kNorthUS, VmSize::kSmall);
  FlowResult result{};
  bool done = false;
  provider.transfer(a.id, b.id, Bytes::gb(1), {}, [&](const FlowResult& r) {
    result = r;
    done = true;
  });
  world.engine.run_until(world.engine.now() + SimDuration::minutes(1));
  provider.fail_vm(b.id);
  EXPECT_TRUE(done);
  EXPECT_EQ(result.outcome, FlowOutcome::kFailed);
  const Money billed_at_failure = provider.cost_report().vm_lease;
  world.engine.run_until(world.engine.now() + SimDuration::hours(5));
  provider.release(a.id);
  // b stopped billing at failure; only a kept accruing.
  const Money final_bill = provider.cost_report().vm_lease;
  EXPECT_GT(final_bill, billed_at_failure);
  EXPECT_LT(final_bill.to_usd(), 0.06 * 5.2 + 0.01);
}

TEST(ProviderTest, CpuFactorIsNearNominal) {
  StableWorld world;
  auto& provider = *world.provider;
  const VmHandle vm = provider.provision(Region::kNorthEU, VmSize::kSmall);
  OnlineStats stats;
  for (int i = 0; i < 200; ++i) {
    world.engine.run_until(world.engine.now() + SimDuration::minutes(1));
    stats.add(provider.vm_cpu_factor(vm.id));
  }
  EXPECT_GT(stats.mean(), 0.7);
  EXPECT_LT(stats.mean(), 1.2);
  EXPECT_GT(stats.min(), 0.0);
}

TEST(BlobTest, PutThenGetRoundTrips) {
  StableWorld world;
  auto& provider = *world.provider;
  auto& blob = provider.blob(Region::kNorthEU);
  const VmHandle vm = provider.provision(Region::kNorthEU, VmSize::kSmall);

  bool put_done = false;
  BlobOpResult put_result{};
  blob.put(provider.vm(vm.id).node, "obj", Bytes::mb(100), [&](const BlobOpResult& r) {
    put_result = r;
    put_done = true;
  });
  ASSERT_TRUE(run_until(world.engine, [&] { return put_done; }, SimDuration::hours(1)));
  ASSERT_TRUE(put_result.ok);
  EXPECT_TRUE(blob.exists("obj"));
  EXPECT_EQ(blob.object_size("obj"), Bytes::mb(100));
  EXPECT_GT(put_result.elapsed.to_seconds(), 5.0);  // ~6 MB/s class service

  bool get_done = false;
  BlobOpResult get_result{};
  blob.get(provider.vm(vm.id).node, "obj", [&](const BlobOpResult& r) {
    get_result = r;
    get_done = true;
  });
  ASSERT_TRUE(run_until(world.engine, [&] { return get_done; }, SimDuration::hours(1)));
  EXPECT_TRUE(get_result.ok);
}

TEST(BlobTest, GetMissingObjectFails) {
  StableWorld world;
  auto& provider = *world.provider;
  auto& blob = provider.blob(Region::kNorthEU);
  const VmHandle vm = provider.provision(Region::kNorthEU, VmSize::kSmall);
  bool done = false;
  BlobOpResult result{};
  blob.get(provider.vm(vm.id).node, "nope", [&](const BlobOpResult& r) {
    result = r;
    done = true;
  });
  world.engine.run();
  EXPECT_TRUE(done);
  EXPECT_FALSE(result.ok);
}

TEST(BlobTest, RemoveDeletesAndObjectCountTracks) {
  StableWorld world;
  auto& provider = *world.provider;
  auto& blob = provider.blob(Region::kWestEU);
  const VmHandle vm = provider.provision(Region::kWestEU, VmSize::kSmall);
  bool done = false;
  blob.put(provider.vm(vm.id).node, "x", Bytes::mb(1), [&](const BlobOpResult&) {
    done = true;
  });
  ASSERT_TRUE(run_until(world.engine, [&] { return done; }, SimDuration::hours(1)));
  EXPECT_EQ(blob.object_count(), 1u);
  blob.remove("x");
  EXPECT_EQ(blob.object_count(), 0u);
  EXPECT_FALSE(blob.exists("x"));
}

TEST(BlobTest, TransactionsAndStorageAreBilled) {
  StableWorld world;
  auto& provider = *world.provider;
  auto& blob = provider.blob(Region::kNorthEU);
  const VmHandle vm = provider.provision(Region::kNorthEU, VmSize::kSmall);
  bool done = false;
  blob.put(provider.vm(vm.id).node, "bill", Bytes::gb(10), [&](const BlobOpResult&) {
    done = true;
  });
  ASSERT_TRUE(run_until(world.engine, [&] { return done; }, SimDuration::hours(6)));
  world.engine.run_until(world.engine.now() + SimDuration::days(30));
  const CostReport report = provider.cost_report();
  EXPECT_GT(report.blob_transactions.count_micro_usd(), 0);
  EXPECT_NEAR(report.blob_storage.to_usd(), 0.7, 0.02);  // 10 GB-month
}

TEST(BlobTest, RemotePutCrossesWanAndIsSlower) {
  StableWorld world;
  auto& provider = *world.provider;
  const VmHandle eu = provider.provision(Region::kNorthEU, VmSize::kSmall);
  auto put_time = [&](BlobService& blob) {
    bool done = false;
    BlobOpResult result{};
    blob.put(provider.vm(eu.id).node, "o", Bytes::mb(50), [&](const BlobOpResult& r) {
      result = r;
      done = true;
    });
    EXPECT_TRUE(run_until(world.engine, [&] { return done; }, SimDuration::hours(1)));
    EXPECT_TRUE(result.ok);
    return result.elapsed;
  };
  const SimDuration local = put_time(provider.blob(Region::kNorthEU));
  const SimDuration remote = put_time(provider.blob(Region::kNorthUS));
  EXPECT_GT(remote, local * 1.5);
}

}  // namespace
}  // namespace sage::cloud
