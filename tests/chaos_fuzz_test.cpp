// Fuzz / property suite for the chaos subsystem: 200 seeded random fault
// schedules, each replayed on the configuration the seed selects from the
// full grid — fused/unfused pipelines × SoA kernels on/off × shard counts
// {1, 2, 4} — with every ChaosInvariants check applied afterwards. A failure
// prints the offending seed and the full schedule so the repro is one line:
//
//   ./chaos_fuzz_test --gtest_filter='*/ChaosScheduleFuzz.*/<seed>'
//
// Two worlds per seed:
//   1. A sharded fabric world (per-lane fabrics over a shared stable
//      topology) where the schedule strands, aborts, squeezes, partitions
//      and outages raw flows — checks fabric byte/flow conservation per
//      lane and event accounting across lanes.
//   2. A streaming pipeline over a fabric-backed WAN backend (GatewayPool +
//      DirectBackend) with live monitoring — the same schedule class may
//      abort in-flight WAN batches, so record conservation must balance
//      through the `lost` column, and sample epochs must stay monotone.
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/backends.hpp"
#include "baselines/gateway.hpp"
#include "chaos/chaos.hpp"
#include "chaos_invariants.hpp"
#include "cloud/fabric.hpp"
#include "cloud/provider.hpp"
#include "cloud/topology.hpp"
#include "common/rng.hpp"
#include "core/sharded_sage.hpp"
#include "model/tradeoff.hpp"
#include "monitor/monitoring.hpp"
#include "obs/obs.hpp"
#include "simcore/sharded_engine.hpp"
#include "stream/graph.hpp"
#include "stream/operator.hpp"
#include "stream/runtime.hpp"
#include "test_util.hpp"

namespace sage {
namespace {

using chaos::ChaosController;
using chaos::ChaosTargets;
using chaos::FaultPlan;
using cloud::Region;
using sage::testing::ChaosInvariants;

SimTime at(double seconds) { return SimTime::epoch() + SimDuration::seconds(seconds); }

ByteRate nic() { return ByteRate::megabits_per_sec(200); }

/// The seed picks its own point on the config grid, so 200 seeds cover all
/// twelve combinations ~17 times each.
struct FuzzConfig {
  bool fuse;
  bool soa;
  std::size_t shards;
};

FuzzConfig config_for(std::uint64_t seed) {
  const std::uint64_t cell = seed % 12;
  static constexpr std::size_t kShards[3] = {1, 2, 4};
  return FuzzConfig{(cell & 1) != 0, (cell & 2) != 0, kShards[cell / 4]};
}

// ---------------------------------------------------------------------------
// World 1: sharded fabrics under a random schedule.
// ---------------------------------------------------------------------------

void fuzz_fabric_world(std::uint64_t seed, std::size_t shards) {
  const auto topo =
      std::make_shared<const cloud::Topology>(cloud::stable_topology());
  const cloud::ShardPlan splan = cloud::plan_shards(*topo, shards);
  sim::ShardedSimEngine engine(
      sim::ShardedSimEngine::Options{splan.shards, splan.lookahead, true, 0});
  const std::size_t lanes = engine.lane_count();

  obs::ObsConfig cfg;
  cfg.tracing = false;
  for (std::size_t l = 0; l < lanes; ++l) engine.shard(l).enable_obs(cfg);

  std::vector<std::unique_ptr<cloud::Fabric>> fabrics;
  std::vector<ChaosTargets> targets;
  for (std::size_t l = 0; l < lanes; ++l) {
    fabrics.push_back(std::make_unique<cloud::Fabric>(engine.shard(l), topo, seed + l));
    targets.push_back(ChaosTargets{fabrics[l].get(), nullptr});
  }

  // Cross-region pairs the schedule can plausibly hit.
  std::vector<std::pair<Region, Region>> pairs;
  for (const cloud::Topology::Edge& e : topo->edges()) {
    if (e.src != e.dst) pairs.emplace_back(e.src, e.dst);
  }
  ASSERT_FALSE(pairs.empty());

  // A handful of flows per lane, starting staggered through the fault window
  // so some begin mid-outage (rejected), some get stranded, some sail clean.
  struct alignas(64) LaneTally {
    std::uint64_t finished = 0;
  };
  std::vector<LaneTally> tally(lanes);
  for (std::size_t l = 0; l < lanes; ++l) {
    Rng rng(seed * 7919 + l);
    cloud::Fabric* fabric = fabrics[l].get();
    LaneTally* t = &tally[l];
    const int flows = static_cast<int>(rng.uniform_int(3, 6));
    for (int i = 0; i < flows; ++i) {
      const auto& pair = pairs[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(pairs.size()) - 1))];
      const auto src = fabric->add_node(pair.first, nic(), nic());
      const auto dst = fabric->add_node(pair.second, nic(), nic());
      const Bytes size = Bytes::mb(rng.uniform_int(4, 24));
      const SimDuration start = SimDuration::seconds(rng.uniform(0.0, 90.0));
      engine.shard(l).schedule_after(start, [fabric, t, src, dst, size] {
        fabric->start_flow(src, dst, size, {},
                           [t](const cloud::FlowResult&) { ++t->finished; });
      });
    }
  }

  FaultPlan plan =
      FaultPlan::random(seed, *topo, at(1), SimDuration::seconds(120), 8);
  SCOPED_TRACE("seed=" + std::to_string(seed) + " shards=" +
               std::to_string(shards) + "\nschedule:\n" + plan.describe());
  ChaosController chaos(engine, std::move(targets), std::move(plan),
                        /*enabled=*/true);

  // Every timed fault reverts by ~181s; give restored links time to drain.
  engine.run_until(at(600));

  ChaosInvariants inv;
  std::uint64_t active = 0;
  for (std::size_t l = 0; l < lanes; ++l) {
    inv.check_fabric(engine.shard(l), *fabrics[l]);
    active += fabrics[l]->active_flow_count();
  }
  // Each lane may hold a dormant refresh event, plus rate/completion events
  // for any flow still draining.
  inv.check_engine(engine, /*allowed_live=*/lanes + 2 * active);
  EXPECT_TRUE(inv.ok()) << inv.report();
  EXPECT_GT(chaos.faults_applied(), 0u);
}

// ---------------------------------------------------------------------------
// World 2: a streaming pipeline whose WAN batches ride the same fabric the
// schedule is attacking.
// ---------------------------------------------------------------------------

void fuzz_stream_world(std::uint64_t seed, bool fuse, bool soa) {
  sim::SimEngine engine;
  obs::ObsConfig cfg;
  cfg.tracing = false;
  engine.enable_obs(cfg);
  cloud::CloudProvider provider(engine, cloud::stable_topology(), seed);
  Rng rng(seed ^ 0xf522u);

  stream::JobGraph g;
  stream::SourceSpec spec;
  spec.records_per_sec = 500.0;
  spec.key_count = 32;
  const auto src = g.add_source("src", Region::kNorthEU, spec);
  stream::VertexId prev = src;
  const int ops = static_cast<int>(rng.uniform_int(1, 3));
  for (int i = 0; i < ops; ++i) {
    const Region site =
        rng.chance(0.5) ? Region::kNorthEU : Region::kNorthUS;
    const std::string name = "op" + std::to_string(i);
    std::shared_ptr<stream::Operator> op;
    const double kind = rng.uniform(0.0, 1.0);
    if (kind < 0.4) {
      op = stream::make_map(name, [](const stream::Record& r) {
        stream::Record out = r;
        out.value = r.value * 2.0;
        return out;
      });
    } else if (kind < 0.8) {
      const std::uint64_t mod = static_cast<std::uint64_t>(rng.uniform_int(2, 5));
      op = stream::make_filter(
          name, [mod](const stream::Record& r) { return r.key % mod != 0; });
    } else {
      op = stream::make_window_aggregate(name, SimDuration::seconds(1),
                                         stream::AggregateFn::kSum);
    }
    const auto v = g.add_operator(name, site, op);
    g.connect(prev, v);
    prev = v;
  }
  const auto sink = g.add_sink("sink", Region::kNorthUS);
  g.connect(prev, sink);

  // Fabric-backed WAN: chaos can abort the batch flows mid-flight, which
  // must surface as `stream.wan.records.lost` — never as vanished records.
  baselines::GatewayPool pool(provider);
  net::TransferConfig tc;
  tc.chunk_size = Bytes::kb(256);
  tc.max_attempts = 2;
  baselines::DirectBackend backend(pool, tc);

  monitor::MonitorConfig mc;
  mc.probe_interval = SimDuration::seconds(30);
  monitor::MonitoringService monitoring(provider, mc);
  for (Region r : {Region::kNorthEU, Region::kNorthUS}) {
    monitoring.register_agent(r, provider.provision(r, cloud::VmSize::kSmall).id);
  }
  monitoring.start();

  stream::RuntimeConfig rc;
  rc.seed = seed;
  rc.fuse_stateless_chains = fuse;
  rc.soa_kernels = soa;
  rc.geo_batch_max_bytes = Bytes::kb(64);
  rc.geo_batch_max_delay = SimDuration::millis(250);
  stream::StreamRuntime runtime(provider, g, backend, rc);
  runtime.start();

  FaultPlan plan = FaultPlan::random(seed * 31 + 5, provider.topology(),
                                     engine.now() + SimDuration::seconds(2),
                                     SimDuration::seconds(15), 6);
  SCOPED_TRACE("seed=" + std::to_string(seed) + " fuse=" + std::to_string(fuse) +
               " soa=" + std::to_string(soa) + "\nschedule:\n" + plan.describe());
  ChaosController chaos(engine, ChaosTargets{&provider.fabric(), &monitoring},
                        std::move(plan), /*enabled=*/true);

  ChaosInvariants inv;
  inv.check_epoch(monitoring);
  engine.run_until(engine.now() + SimDuration::seconds(25));

  inv.check_stream(engine, runtime);
  inv.check_fabric(engine, provider.fabric());
  inv.check_epoch(monitoring);
  EXPECT_TRUE(inv.ok()) << inv.report();

  monitoring.stop();
  runtime.stop();
}

// ---------------------------------------------------------------------------
// World 3 (every 10th seed — a full control plane is the priciest world): a
// sharded deploy_sage scenario under the same schedule class. The property
// is the lock-step epoch invariant of core::ShardedSage — arbitrary faults
// (outages killing agents and probe endpoints, poisoned estimators,
// partitions stranding transfers) must never make one lane's sample epoch
// diverge from another's, because the per-lane plan/resolve caches key on
// it being identical everywhere.
// ---------------------------------------------------------------------------

void fuzz_plane_world(std::uint64_t seed, std::size_t shards) {
  const auto topo =
      std::make_shared<const cloud::Topology>(cloud::stable_topology());
  core::SageConfig config;
  config.regions = topo->regions();
  config.monitoring.probe_interval = SimDuration::minutes(1);
  core::ShardedSage::Options opts;
  opts.shards = shards;
  core::ShardedSage sage(topo, seed, config, opts);
  sage.deploy();
  sage.run_for(SimDuration::minutes(5));
  const SimTime t0 = sage.engine().shard(0).now();

  std::vector<std::pair<Region, Region>> pairs;
  for (const cloud::Topology::Edge& e : topo->edges()) {
    if (e.src != e.dst) pairs.emplace_back(e.src, e.dst);
  }
  ASSERT_FALSE(pairs.empty());

  Rng rng(seed ^ 0x51a6e5u);
  struct alignas(64) LaneDone {
    int done = 0;
  };
  std::vector<LaneDone> done(sage.lane_count());
  const int sends = 4;
  for (int i = 0; i < sends; ++i) {
    const auto [a, b] = pairs[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(pairs.size()) - 1))];
    const std::size_t l = sage.lane_of(a);
    const Bytes payload = Bytes::mb(rng.uniform_int(24, 64));
    const SimDuration start = SimDuration::seconds(rng.uniform(0.0, 60.0));
    LaneDone* slot = &done[l];
    core::ShardedSage* plane = &sage;
    sage.engine().shard(l).schedule_after(start, [plane, slot, a, b, payload] {
      plane->send(a, b, payload, model::Tradeoff::fastest(),
                  [slot](const stream::SendOutcome&) { ++slot->done; });
    });
  }

  FaultPlan plan = FaultPlan::random(seed * 131 + 7, *topo,
                                     t0 + SimDuration::seconds(5),
                                     SimDuration::seconds(120), 8);
  SCOPED_TRACE("seed=" + std::to_string(seed) + " shards=" +
               std::to_string(shards) + "\nschedule:\n" + plan.describe());
  std::vector<ChaosTargets> targets;
  for (std::size_t l = 0; l < sage.lane_count(); ++l) {
    targets.push_back(
        ChaosTargets{&sage.provider(l).fabric(), &sage.lane(l).monitoring()});
  }
  ChaosController chaos(sage.engine(), std::move(targets), std::move(plan),
                        /*enabled=*/true);

  ChaosInvariants inv;
  auto total_done = [&] {
    int n = 0;
    for (const LaneDone& d : done) n += d.done;
    return n;
  };
  for (int window = 0; window < 30; ++window) {
    sage.run_for(SimDuration::minutes(2));
    ASSERT_TRUE(sage.epochs_consistent()) << "epochs diverged in window " << window;
    inv.check_epoch(sage.lane(0).monitoring());
    if (total_done() == sends && window >= 2) break;
  }
  EXPECT_TRUE(inv.ok()) << inv.report();
  EXPECT_EQ(total_done(), sends) << "a send never resolved within the budget";
  EXPECT_GT(chaos.faults_applied(), 0u);
}

// ---------------------------------------------------------------------------
// 200 seeds; each runs both worlds at its grid cell (every 10th adds the
// full sharded control plane).
// ---------------------------------------------------------------------------

class ChaosScheduleFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosScheduleFuzz, InvariantsHoldUnderRandomSchedule) {
  const std::uint64_t seed = GetParam();
  const FuzzConfig fc = config_for(seed);
  fuzz_fabric_world(seed, fc.shards);
  fuzz_stream_world(seed, fc.fuse, fc.soa);
  if (seed % 10 == 7) fuzz_plane_world(seed, fc.shards);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosScheduleFuzz,
                         ::testing::Range<std::uint64_t>(0, 200));

}  // namespace
}  // namespace sage
