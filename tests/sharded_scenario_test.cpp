// Differential determinism tests for full deploy_sage scenarios on the
// region-sharded engine (core::ShardedSage).
//
// The contract under test is DESIGN.md §16: a complete SAGE control plane —
// monitoring probes, tradeoff resolution, multipath planning, adaptive
// chunked transfers, self-healing — partitioned across S engine lanes by
// source-region ownership produces *byte-identical* scenario results for
// S in {1, 2, 4}, for the sequential lane fallback and 1/4 pool workers,
// and with a chaos schedule (region outage landing mid-transfer, capacity
// squeeze, estimator poisoning) applied to every lane. The digest covers
// every control-plane observable: per-send outcomes in issue order, the
// owning lanes' SendRecord decisions (estimate, lanes, replans, transfer
// stats), the per-lane sample epochs (which must be in lock-step — the
// invariant the epoch-keyed plan/resolve caches lean on), and the chaos
// fault/revert counts.
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "chaos/chaos.hpp"
#include "cloud/topology.hpp"
#include "core/sharded_sage.hpp"
#include "model/tradeoff.hpp"

namespace sage {
namespace {

using chaos::ChaosController;
using chaos::ChaosTargets;
using chaos::FaultPlan;
using cloud::Region;

struct Knobs {
  std::size_t shards;
  bool parallel;
  std::size_t max_workers;
  bool with_chaos;
};

/// Runs the canonical scenario and digests everything the control plane
/// decided and observed.
std::string scenario_digest(const Knobs& knobs) {
  const auto topo =
      std::make_shared<const cloud::Topology>(cloud::stable_topology());
  core::SageConfig config;
  config.regions = topo->regions();
  config.monitoring.probe_interval = SimDuration::minutes(1);
  core::ShardedSage::Options opts;
  opts.shards = knobs.shards;
  opts.parallel = knobs.parallel;
  opts.max_workers = knobs.max_workers;
  core::ShardedSage sage(topo, 77, config, opts);
  sage.deploy();
  sage.run_for(SimDuration::minutes(10));  // warm the monitoring map
  const SimTime t0 = sage.engine().shard(0).now();

  // Chaos through the sharded controller: every lane gets its fabric and
  // monitoring service as targets, every event fires at the same absolute
  // sim time on every lane. The outage is timed to land while transfers
  // sourced in the failed region are in flight.
  std::unique_ptr<ChaosController> chaos;
  if (knobs.with_chaos) {
    FaultPlan plan;
    plan.region_outage(t0 + SimDuration::seconds(40), Region::kWestEU,
                       SimDuration::minutes(3));
    plan.capacity_squeeze(t0 + SimDuration::minutes(2), Region::kNorthEU,
                          Region::kNorthUS, 0.5, SimDuration::minutes(4));
    plan.poison_estimator(t0 + SimDuration::minutes(3), Region::kNorthEU,
                          Region::kNorthUS, 750.0, 2);
    std::vector<ChaosTargets> targets;
    for (std::size_t l = 0; l < sage.lane_count(); ++l) {
      targets.push_back(
          ChaosTargets{&sage.provider(l).fabric(), &sage.lane(l).monitoring()});
    }
    chaos = std::make_unique<ChaosController>(sage.engine(), std::move(targets),
                                              std::move(plan), /*enabled=*/true);
  }

  // A mixed schedule of sends: several source regions (so multiple lanes
  // own work at S=4), one sourced in the outage region mid-fault, staggered
  // starts so transfers overlap. Completion lands on the owning lane into
  // the send's own slot; slots are only read between run_for windows.
  std::vector<std::pair<Region, Region>> pairs;
  for (const cloud::Topology::Edge& e : topo->edges()) {
    if (e.src != e.dst) pairs.emplace_back(e.src, e.dst);
  }
  struct SendProbe {
    int done = 0;
    bool ok = false;
    double elapsed = 0.0;
  };
  constexpr int kSends = 10;
  std::vector<SendProbe> probes(kSends);
  for (int i = 0; i < kSends; ++i) {
    const auto [a, b] = pairs[static_cast<std::size_t>(i * 3) % pairs.size()];
    const std::size_t l = sage.lane_of(a);
    const Bytes payload = Bytes::mb(96 + (i % 4) * 32);
    SendProbe* probe = &probes[static_cast<std::size_t>(i)];
    core::ShardedSage* plane = &sage;
    sage.engine().shard(l).schedule_after(
        SimDuration::seconds(15 * i), [plane, probe, a, b, payload] {
          plane->send(a, b, payload, model::Tradeoff::fastest(),
                      [probe](const stream::SendOutcome& o) {
                        ++probe->done;
                        probe->ok = o.ok;
                        probe->elapsed = o.elapsed.to_seconds();
                      });
        });
  }

  const SimDuration quantum = SimDuration::seconds(30);
  SimDuration waited = SimDuration::zero();
  auto all_done = [&] {
    for (const SendProbe& p : probes) {
      if (p.done == 0) return false;
    }
    return true;
  };
  while (!all_done() && waited < SimDuration::hours(3)) {
    sage.run_for(quantum);
    waited = waited + quantum;
  }

  std::string digest;
  char buf[128];
  for (int i = 0; i < kSends; ++i) {
    const SendProbe& p = probes[static_cast<std::size_t>(i)];
    std::snprintf(buf, sizeof(buf), "s%d:%d:%d:%.9f;", i, p.done, p.ok ? 1 : 0,
                  p.elapsed);
    digest += buf;
  }
  // Owning-lane decision records, aggregated over lanes (each send's record
  // lives on exactly one lane; the multiset is S-invariant, and summing
  // keeps the digest independent of which lane holds which record).
  std::uint64_t chunks = 0, retrans = 0, dups = 0, hop_failures = 0;
  int oks = 0, lanes_used = 0, replans = 0, est_nodes = 0, records = 0;
  double elapsed_sum = 0.0, predicted = 0.0;
  for (std::size_t l = 0; l < sage.lane_count(); ++l) {
    for (const core::SendRecord& rec : sage.lane(l).history()) {
      ++records;
      if (rec.ok) ++oks;
      elapsed_sum += rec.elapsed.to_seconds();
      lanes_used += rec.lanes_used;
      replans += rec.replans;
      chunks += static_cast<std::uint64_t>(rec.stats.chunks_delivered);
      retrans += static_cast<std::uint64_t>(rec.stats.retransmissions);
      dups += static_cast<std::uint64_t>(rec.stats.duplicates_dropped);
      hop_failures += static_cast<std::uint64_t>(rec.stats.hop_failures);
      if (rec.estimate) {
        est_nodes += rec.estimate->nodes;
        predicted += rec.estimate->time.to_seconds();
      }
    }
  }
  std::snprintf(buf, sizeof(buf),
                "rec=%d;ok=%d;el=%.9f;lanes=%d;replans=%d;nodes=%d;pred=%.9f;",
                records, oks, elapsed_sum, lanes_used, replans, est_nodes,
                predicted);
  digest += buf;
  digest += "chunks=" + std::to_string(chunks) + ";retrans=" +
            std::to_string(retrans) + ";dups=" + std::to_string(dups) +
            ";hopfail=" + std::to_string(hop_failures) + ";";
  digest += "epoch=" + std::to_string(sage.lane(0).monitoring().sample_epoch()) +
            ";lockstep=" + std::to_string(sage.epochs_consistent() ? 1 : 0) + ";";
  if (chaos) {
    digest += "faults=" +
              std::to_string(chaos->faults_applied() / sage.lane_count()) +
              ";reverts=" +
              std::to_string(chaos->reverts_applied() / sage.lane_count());
  }
  return digest;
}

TEST(ShardedScenario, ShardCountInvarianceWithChaos) {
  const std::string s1 = scenario_digest({1, true, 0, true});
  const std::string s2 = scenario_digest({2, true, 0, true});
  const std::string s4 = scenario_digest({4, true, 0, true});
  EXPECT_EQ(s1, s2);
  EXPECT_EQ(s1, s4);
  // The scenario is non-trivial: every send completed, the epochs stayed in
  // lock-step, and the schedule actually fired.
  EXPECT_NE(s1.find("lockstep=1"), std::string::npos) << s1;
  EXPECT_EQ(s1.find(":0:0:"), std::string::npos) << s1;  // no unfinished send
  EXPECT_NE(s1.find("faults="), std::string::npos) << s1;
}

TEST(ShardedScenario, WorkerCountInvariance) {
  const std::string sequential = scenario_digest({4, false, 0, true});
  const std::string one_worker = scenario_digest({4, true, 1, true});
  const std::string four_workers = scenario_digest({4, true, 4, true});
  EXPECT_EQ(sequential, one_worker);
  EXPECT_EQ(sequential, four_workers);
}

TEST(ShardedScenario, ShardCountInvarianceHealthy) {
  const std::string s1 = scenario_digest({1, true, 0, false});
  const std::string s4 = scenario_digest({4, true, 0, false});
  EXPECT_EQ(s1, s4);
  // The chaos run differs from the healthy one (the schedule had teeth).
  EXPECT_NE(s1, scenario_digest({1, true, 0, true}));
}

TEST(ShardedScenario, RepeatRunsAreBitIdentical) {
  EXPECT_EQ(scenario_digest({2, true, 0, true}), scenario_digest({2, true, 0, true}));
}

TEST(ShardedScenario, EpochsAdvanceInLockStep) {
  const auto topo =
      std::make_shared<const cloud::Topology>(cloud::stable_topology());
  core::SageConfig config;
  config.regions = topo->regions();
  config.monitoring.probe_interval = SimDuration::minutes(1);
  core::ShardedSage::Options opts;
  opts.shards = 4;
  core::ShardedSage sage(topo, 5, config, opts);
  sage.deploy();
  EXPECT_GE(sage.report_delay(), sage.plan().lookahead);
  std::uint64_t last = 0;
  for (int i = 0; i < 8; ++i) {
    sage.run_for(SimDuration::minutes(2));
    ASSERT_TRUE(sage.epochs_consistent()) << "window " << i;
    const std::uint64_t now = sage.lane(0).monitoring().sample_epoch();
    EXPECT_GE(now, last);
    last = now;
  }
  EXPECT_GT(last, 0u) << "probes never produced samples";
}

}  // namespace
}  // namespace sage
