// Tests for widest-path routing over the throughput map.
#include "sched/paths.hpp"

#include <gtest/gtest.h>

namespace sage::sched {
namespace {

using cloud::Region;

constexpr Region kNEU = Region::kNorthEU;
constexpr Region kWEU = Region::kWestEU;
constexpr Region kNUS = Region::kNorthUS;
constexpr Region kSUS = Region::kSouthUS;
constexpr Region kEUS = Region::kEastUS;

monitor::ThroughputMatrix empty_matrix() { return monitor::ThroughputMatrix{}; }

void set_link(monitor::ThroughputMatrix& m, Region a, Region b, double mbps) {
  m.set(a, b, monitor::LinkEstimate{mbps, 0.0, 10});
}

void set_symmetric(monitor::ThroughputMatrix& m, Region a, Region b, double mbps) {
  set_link(m, a, b, mbps);
  set_link(m, b, a, mbps);
}

TEST(WidestPathTest, PrefersDirectWhenItIsWidest) {
  auto m = empty_matrix();
  set_link(m, kNEU, kNUS, 10.0);
  set_link(m, kNEU, kEUS, 4.0);
  set_link(m, kEUS, kNUS, 20.0);
  const auto path = widest_path(m, kNEU, kNUS);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->regions, (std::vector<Region>{kNEU, kNUS}));
  EXPECT_DOUBLE_EQ(path->bottleneck_mbps, 10.0);
  EXPECT_TRUE(path->is_direct());
}

TEST(WidestPathTest, RoutesAroundNarrowDirectLink) {
  auto m = empty_matrix();
  set_link(m, kNEU, kNUS, 2.0);
  set_link(m, kNEU, kEUS, 8.0);
  set_link(m, kEUS, kNUS, 9.0);
  const auto path = widest_path(m, kNEU, kNUS);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->regions, (std::vector<Region>{kNEU, kEUS, kNUS}));
  EXPECT_DOUBLE_EQ(path->bottleneck_mbps, 8.0);
  EXPECT_EQ(path->intermediate_count(), 1u);
}

TEST(WidestPathTest, FindsTwoHopChains) {
  auto m = empty_matrix();
  set_link(m, kNEU, kWEU, 12.0);
  set_link(m, kWEU, kEUS, 10.0);
  set_link(m, kEUS, kNUS, 11.0);
  set_link(m, kNEU, kNUS, 1.0);
  const auto path = widest_path(m, kNEU, kNUS);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->regions, (std::vector<Region>{kNEU, kWEU, kEUS, kNUS}));
  EXPECT_DOUBLE_EQ(path->bottleneck_mbps, 10.0);
}

TEST(WidestPathTest, NoDataMeansNoPath) {
  const auto path = widest_path(empty_matrix(), kNEU, kNUS);
  EXPECT_FALSE(path.has_value());
}

TEST(WidestPathTest, MinSamplesGatesEdges) {
  auto m = empty_matrix();
  m.set(kNEU, kNUS, monitor::LinkEstimate{10.0, 0.0, 2});
  PathQueryOptions options;
  options.min_samples = 5;
  EXPECT_FALSE(widest_path(m, kNEU, kNUS, options).has_value());
  options.min_samples = 1;
  EXPECT_TRUE(widest_path(m, kNEU, kNUS, options).has_value());
}

TEST(WidestPathTest, ExcludeDirectEdgeForcesRelay) {
  auto m = empty_matrix();
  set_link(m, kNEU, kNUS, 10.0);
  set_link(m, kNEU, kEUS, 6.0);
  set_link(m, kEUS, kNUS, 6.0);
  PathQueryOptions options;
  options.exclude_direct_edge = true;
  const auto path = widest_path(m, kNEU, kNUS, options);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->regions, (std::vector<Region>{kNEU, kEUS, kNUS}));
}

TEST(WidestPathTest, UnusableRegionIsAvoided) {
  auto m = empty_matrix();
  set_link(m, kNEU, kNUS, 2.0);
  set_link(m, kNEU, kEUS, 8.0);
  set_link(m, kEUS, kNUS, 9.0);
  set_link(m, kNEU, kSUS, 7.0);
  set_link(m, kSUS, kNUS, 7.0);
  PathQueryOptions options;
  options.usable[cloud::region_index(kEUS)] = false;
  const auto path = widest_path(m, kNEU, kNUS, options);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->regions, (std::vector<Region>{kNEU, kSUS, kNUS}));
  EXPECT_DOUBLE_EQ(path->bottleneck_mbps, 7.0);
}

TEST(WidestPathTest, SourceAndDestinationAlwaysAllowed) {
  auto m = empty_matrix();
  set_symmetric(m, kNEU, kNUS, 5.0);
  PathQueryOptions options;
  options.usable.fill(false);
  const auto path = widest_path(m, kNEU, kNUS, options);
  ASSERT_TRUE(path.has_value());
  EXPECT_TRUE(path->is_direct());
}

TEST(WidestPathTest, DirectionalityMatters) {
  auto m = empty_matrix();
  set_link(m, kNEU, kNUS, 5.0);  // only the forward direction exists
  EXPECT_TRUE(widest_path(m, kNEU, kNUS).has_value());
  EXPECT_FALSE(widest_path(m, kNUS, kNEU).has_value());
}

TEST(WidestPathTest, HopCountAccessors) {
  auto m = empty_matrix();
  set_link(m, kNEU, kEUS, 8.0);
  set_link(m, kEUS, kNUS, 9.0);
  const auto path = widest_path(m, kNEU, kNUS);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->hop_count(), 2u);
  EXPECT_EQ(path->intermediate_count(), 1u);
  EXPECT_FALSE(path->is_direct());
}

}  // namespace
}  // namespace sage::sched
