// ThreadPool + ScenarioRunner contract tests: index-ordered results,
// exception propagation, the nested-submit deadlock guard, and determinism
// of real simulation sweeps across thread counts.
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.hpp"
#include "harness/scenario.hpp"

namespace sage {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIdleIsReusableAcrossBatches) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int batch = 0; batch < 3; ++batch) {
    for (int i = 0; i < 10; ++i) {
      pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.wait_idle();
    EXPECT_EQ(count.load(), (batch + 1) * 10);
  }
}

TEST(ThreadPool, TaskExceptionSurfacesFromWaitIdle) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("task boom"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The pool stays usable after rethrow.
  std::atomic<bool> ran{false};
  pool.submit([&ran] { ran = true; });
  pool.wait_idle();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, NestedSubmitFromWorkerIsRejected) {
  ThreadPool pool(2);
  std::atomic<bool> threw{false};
  pool.submit([&pool, &threw] {
    try {
      pool.submit([] {});
    } catch (const std::logic_error&) {
      threw = true;
    }
  });
  pool.wait_idle();
  EXPECT_TRUE(threw.load()) << "submit from a pool worker must throw";
}

TEST(ThreadPool, SubmitFromForeignPoolWorkerIsAllowed) {
  ThreadPool a(1);
  ThreadPool b(1);
  std::atomic<bool> ran{false};
  a.submit([&b, &ran] { b.submit([&ran] { ran = true; }); });
  a.wait_idle();
  b.wait_idle();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, OnWorkerThreadIdentifiesItsOwnWorkers) {
  ThreadPool pool(1);
  EXPECT_FALSE(pool.on_worker_thread());
  std::atomic<bool> inside{false};
  pool.submit([&pool, &inside] { inside = pool.on_worker_thread(); });
  pool.wait_idle();
  EXPECT_TRUE(inside.load());
}

TEST(ThreadPool, RunOnAllWorkersRunsExactlyOncePerWorker) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(4);
  pool.run_on_all_workers([&hits](std::size_t w) {
    ASSERT_LT(w, 4u);
    hits[w].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  // The barrier is reusable.
  pool.run_on_all_workers(
      [&hits](std::size_t w) { hits[w].fetch_add(1, std::memory_order_relaxed); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 2);
}

TEST(ThreadPool, RunOnAllWorkersPropagatesFirstException) {
  ThreadPool pool(3);
  EXPECT_THROW(pool.run_on_all_workers([](std::size_t w) {
    if (w == 0) throw std::runtime_error("worker 0 boom");
  }),
               std::runtime_error);
  // The pool stays usable after rethrow.
  std::atomic<int> ran{0};
  pool.run_on_all_workers(
      [&ran](std::size_t) { ran.fetch_add(1, std::memory_order_relaxed); });
  EXPECT_EQ(ran.load(), 3);
}

TEST(ThreadPool, RunOnAllWorkersFromOwnWorkerIsRejected) {
  ThreadPool pool(2);
  std::atomic<bool> threw{false};
  pool.submit([&pool, &threw] {
    try {
      pool.run_on_all_workers([](std::size_t) {});
    } catch (const std::logic_error&) {
      threw = true;
    }
  });
  pool.wait_idle();
  EXPECT_TRUE(threw.load()) << "a worker can never run its own barrier slice";
}

// Regression for the nested-submit guard: the all-workers region does not
// loosen it — submit() from inside a region slice is still rejected, because
// the slice runs on this pool's own worker.
TEST(ThreadPool, SubmitFromAllWorkersRegionIsStillRejected) {
  ThreadPool pool(2);
  std::atomic<int> rejected{0};
  pool.run_on_all_workers([&pool, &rejected](std::size_t) {
    try {
      pool.submit([] {});
    } catch (const std::logic_error&) {
      rejected.fetch_add(1, std::memory_order_relaxed);
    }
  });
  EXPECT_EQ(rejected.load(), 2);
}

TEST(ThreadPool, RunOnAllWorkersCompletesAlongsideQueuedTasks) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 64; ++i) {
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  // The barrier outranks the backlog; both finish.
  std::atomic<int> region{0};
  pool.run_on_all_workers(
      [&region](std::size_t) { region.fetch_add(1, std::memory_order_relaxed); });
  EXPECT_EQ(region.load(), 2);
  pool.wait_idle();
  EXPECT_EQ(count.load(), 64);
}

TEST(ScenarioRunner, ResultsComeBackInTaskOrder) {
  harness::ScenarioRunner runner(/*threads=*/4);
  std::vector<int> tasks(64);
  std::iota(tasks.begin(), tasks.end(), 0);
  const auto results = runner.sweep("order", tasks, [](const int& i) {
    // Stagger so completion order scrambles without the index ordering.
    std::this_thread::sleep_for(std::chrono::microseconds((64 - i) * 10));
    return i * i;
  });
  ASSERT_EQ(results.size(), tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    EXPECT_EQ(results[i], static_cast<int>(i * i));
  }
}

TEST(ScenarioRunner, SequentialAndParallelSweepsAgree) {
  const std::vector<int> tasks = {3, 1, 4, 1, 5, 9, 2, 6};
  auto fn = [](const int& v) { return v * 7 + 1; };
  harness::ScenarioRunner seq(1);
  harness::ScenarioRunner par(4);
  EXPECT_EQ(seq.sweep("agree", tasks, fn), par.sweep("agree", tasks, fn));
}

TEST(ScenarioRunner, FirstExceptionByIndexPropagates) {
  harness::ScenarioRunner runner(/*threads=*/4);
  std::vector<int> tasks(16);
  std::iota(tasks.begin(), tasks.end(), 0);
  try {
    runner.sweep("boom", tasks, [](const int& i) -> int {
      if (i == 3) throw std::runtime_error("task 3");
      if (i == 11) throw std::out_of_range("task 11");
      return i;
    });
    FAIL() << "sweep must rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task 3") << "lowest-index error wins, as sequential";
  }
  // Timing records survive a throwing sweep.
  ASSERT_EQ(runner.sweeps().size(), 1u);
  EXPECT_EQ(runner.sweeps()[0].tasks.size(), 16u);
}

TEST(ScenarioRunner, RecordsPerTaskTimingAndJson) {
  harness::ScenarioRunner runner(/*threads=*/2);
  const std::vector<int> tasks = {1, 2, 3};
  runner.sweep("timed", tasks, [](const int& v) { return v; });
  ASSERT_EQ(runner.sweeps().size(), 1u);
  const auto& sweep = runner.sweeps()[0];
  EXPECT_EQ(sweep.name, "timed");
  ASSERT_EQ(sweep.tasks.size(), 3u);
  EXPECT_EQ(sweep.tasks[1].index, 1u);
  EXPECT_GE(sweep.wall_ms, 0.0);

  const std::string json = runner.json("unit_test", /*smoke=*/true);
  EXPECT_NE(json.find("\"bench\": \"unit_test\""), std::string::npos);
  EXPECT_NE(json.find("\"threads\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"smoke\": true"), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"timed\""), std::string::npos);
}

TEST(ScenarioRunner, EnvThreadsParsesOverride) {
  ASSERT_EQ(setenv("SAGE_BENCH_THREADS", "3", 1), 0);
  EXPECT_EQ(harness::env_threads(), 3);
  ASSERT_EQ(setenv("SAGE_BENCH_THREADS", "bogus", 1), 0);
  EXPECT_GE(harness::env_threads(), 1);  // falls back to hardware concurrency
  ASSERT_EQ(unsetenv("SAGE_BENCH_THREADS"), 0);
  EXPECT_GE(harness::env_threads(), 1);
}

TEST(ScenarioRunner, EnvShardsDefaultsToOff) {
  ASSERT_EQ(unsetenv("SAGE_PAR_SHARDS"), 0);
  EXPECT_EQ(harness::env_shards(), 0) << "sharded execution must be opt-in";
  ASSERT_EQ(setenv("SAGE_PAR_SHARDS", "4", 1), 0);
  EXPECT_EQ(harness::env_shards(), 4);
  ASSERT_EQ(setenv("SAGE_PAR_SHARDS", "bogus", 1), 0);
  EXPECT_EQ(harness::env_shards(), 0);  // invalid values fall back to off
  ASSERT_EQ(unsetenv("SAGE_PAR_SHARDS"), 0);
}

}  // namespace
}  // namespace sage
