// Property-based suites (parameterized gtest): invariants that must hold
// across seeds, sizes, budgets and parameter sweeps.
#include <gtest/gtest.h>

#include <tuple>

#include "cloud/fabric.hpp"
#include "cloud/topology.hpp"
#include "common/rng.hpp"
#include "model/tradeoff.hpp"
#include "monitor/estimator.hpp"
#include "net/transfer.hpp"
#include "obs/obs.hpp"
#include "sched/multipath.hpp"
#include "stream/graph.hpp"
#include "stream/operator.hpp"
#include "stream/runtime.hpp"
#include "test_util.hpp"

namespace sage {
namespace {

using cloud::Region;
using sage::testing::StableWorld;
using sage::testing::run_until;

// ---------------------------------------------------------------------------
// Fabric conservation: whatever the seed and flow mix, completed flows
// deliver exactly their size, and egress equals the sum of cross-region
// deliveries.
// ---------------------------------------------------------------------------

class FabricConservation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FabricConservation, BytesAreConserved) {
  sim::SimEngine engine;
  cloud::Fabric fabric(engine, cloud::default_topology(), GetParam());
  Rng rng(GetParam() ^ 0xabcdef);

  std::vector<cloud::NodeId> nodes;
  for (Region r : cloud::kAllRegions) {
    for (int i = 0; i < 2; ++i) {
      nodes.push_back(fabric.add_node(r, ByteRate::megabits_per_sec(100),
                                      ByteRate::megabits_per_sec(100)));
    }
  }

  Bytes expected_egress = Bytes::zero();
  Bytes delivered = Bytes::zero();
  int done = 0;
  const int kFlows = 24;
  for (int i = 0; i < kFlows; ++i) {
    const auto src = nodes[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(nodes.size()) - 1))];
    auto dst = src;
    while (dst == src) {
      dst = nodes[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(nodes.size()) - 1))];
    }
    const Bytes size = Bytes::mb(rng.uniform(1.0, 20.0));
    if (fabric.node_region(src) != fabric.node_region(dst)) expected_egress += size;
    fabric.start_flow(src, dst, size, {}, [&, size](const cloud::FlowResult& r) {
      EXPECT_TRUE(r.ok());
      EXPECT_EQ(r.transferred, size);
      delivered += r.transferred;
      ++done;
    });
  }
  ASSERT_TRUE(run_until(engine, [&] { return done == kFlows; }, SimDuration::hours(6)));

  Bytes total_egress = Bytes::zero();
  for (Region r : cloud::kAllRegions) total_egress += fabric.egress_from(r);
  // Egress counters integrate rate*dt with per-tick rounding; allow a
  // byte-level tolerance per flow.
  EXPECT_NEAR(total_egress.to_mb(), expected_egress.to_mb(), 0.01);
  EXPECT_GT(delivered, Bytes::zero());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FabricConservation,
                         ::testing::Values(1u, 7u, 42u, 1234u, 99999u));

// ---------------------------------------------------------------------------
// Fabric fairness: at every settle point, no flow exceeds its demand cap or
// the pair link's per-flow ceiling.
// ---------------------------------------------------------------------------

class FabricCeilings : public ::testing::TestWithParam<int> {};

TEST_P(FabricCeilings, RatesNeverExceedCeilings) {
  const int flows = GetParam();
  StableWorld world;
  auto& provider = *world.provider;
  const auto a = provider.provision_many(Region::kNorthEU, cloud::VmSize::kSmall, flows);
  const auto b = provider.provision_many(Region::kNorthUS, cloud::VmSize::kSmall, flows);
  const double flow_cap = provider.topology()
                              .link(Region::kNorthEU, Region::kNorthUS)
                              .per_flow_cap.to_mb_per_sec();

  std::vector<cloud::FlowId> ids;
  int done = 0;
  for (int i = 0; i < flows; ++i) {
    ids.push_back(provider.transfer(a[static_cast<std::size_t>(i)].id,
                                    b[static_cast<std::size_t>(i)].id, Bytes::mb(30), {},
                                    [&](const cloud::FlowResult&) { ++done; }));
  }
  for (int step = 0; step < 20 && done < flows; ++step) {
    world.engine.run_until(world.engine.now() + SimDuration::seconds(1));
    for (const auto id : ids) {
      const double rate = provider.fabric().flow_rate(id).to_mb_per_sec();
      EXPECT_LE(rate, flow_cap * 1.0001);
    }
  }
  ASSERT_TRUE(run_until(world.engine, [&] { return done == flows; }, SimDuration::hours(4)));
}

INSTANTIATE_TEST_SUITE_P(FlowCounts, FabricCeilings, ::testing::Values(1, 2, 4, 8, 16));

// ---------------------------------------------------------------------------
// Transfer completeness: across chunk sizes and stream counts, every byte
// arrives exactly once (dedup absorbs any retransmit races).
// ---------------------------------------------------------------------------

class TransferMatrix
    : public ::testing::TestWithParam<std::tuple<std::int64_t, int>> {};

TEST_P(TransferMatrix, DeliversExactlyOnce) {
  const auto [chunk_kb, streams] = GetParam();
  StableWorld world;
  auto& provider = *world.provider;
  const auto a = provider.provision(Region::kNorthEU, cloud::VmSize::kSmall);
  const auto b = provider.provision(Region::kNorthUS, cloud::VmSize::kSmall);

  net::TransferConfig config;
  config.chunk_size = Bytes::kb(static_cast<double>(chunk_kb));
  config.streams_per_hop = streams;
  const Bytes size = Bytes::mb(11);  // deliberately not chunk-aligned

  net::TransferResult result{};
  bool done = false;
  net::GeoTransfer t(provider, size, net::direct_lane(a.id, b.id), config,
                     [&](const net::TransferResult& r) {
                       result = r;
                       done = true;
                     });
  t.start();
  ASSERT_TRUE(run_until(world.engine, [&] { return done; }, SimDuration::hours(6)));
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.size, size);
  EXPECT_EQ(result.stats.chunks_delivered, result.stats.chunks_total);
  const auto expected_chunks =
      (size.count() + config.chunk_size.count() - 1) / config.chunk_size.count();
  EXPECT_EQ(result.stats.chunks_total, static_cast<int>(expected_chunks));
}

INSTANTIATE_TEST_SUITE_P(
    ChunkAndStreams, TransferMatrix,
    ::testing::Combine(::testing::Values<std::int64_t>(256, 1024, 4096, 16384),
                       ::testing::Values(1, 2, 4)));

// ---------------------------------------------------------------------------
// Estimator invariants across kinds and seeds: mean within observed range,
// stddev non-negative and bounded by the range.
// ---------------------------------------------------------------------------

class EstimatorBounds
    : public ::testing::TestWithParam<std::tuple<monitor::EstimatorKind, std::uint64_t>> {
};

TEST_P(EstimatorBounds, MeanStaysWithinObservedRange) {
  const auto [kind, seed] = GetParam();
  auto estimator = monitor::make_estimator(kind, monitor::EstimatorConfig{});
  Rng rng(seed);
  double lo = 1e300;
  double hi = -1e300;
  for (int i = 0; i < 500; ++i) {
    const double v = rng.uniform(1.0, 25.0);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
    estimator->add_sample(SimTime::epoch() + SimDuration::minutes(i), v);
    EXPECT_GE(estimator->mean(), lo - 1e-9);
    EXPECT_LE(estimator->mean(), hi + 1e-9);
    EXPECT_GE(estimator->stddev(), 0.0);
    EXPECT_LE(estimator->stddev(), (hi - lo) + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndSeeds, EstimatorBounds,
    ::testing::Combine(::testing::Values(monitor::EstimatorKind::kLastSample,
                                         monitor::EstimatorKind::kLinear,
                                         monitor::EstimatorKind::kWeighted),
                       ::testing::Values(3u, 17u, 4242u)));

// ---------------------------------------------------------------------------
// Planner invariants across budgets: node budget respected, inventory never
// overdrawn, predicted throughput monotone in budget.
// ---------------------------------------------------------------------------

class PlannerBudgets : public ::testing::TestWithParam<int> {};

TEST_P(PlannerBudgets, PlanStaysFeasible) {
  const int budget = GetParam();
  monitor::ThroughputMatrix m;
  Rng rng(5);
  for (Region a : cloud::kAllRegions) {
    for (Region b : cloud::kAllRegions) {
      if (a == b) continue;
      m.set(a, b, monitor::LinkEstimate{rng.uniform(2.0, 12.0), 0.5, 20});
    }
  }
  sched::Inventory inventory;
  inventory.fill(4);
  sched::MultiPathPlanner planner;
  const auto plan =
      planner.plan(m, Region::kNorthEU, Region::kNorthUS, inventory, budget);

  EXPECT_LE(plan.nodes_used, budget);
  // Recompute inventory usage from the plan itself.
  std::array<int, cloud::kRegionCount> used{};
  bool first_lane = true;
  for (const auto& p : plan.paths) {
    for (int w = 0; w < p.width; ++w) {
      if (!first_lane) ++used[cloud::region_index(p.route.regions.front())];
      first_lane = false;
      for (std::size_t i = 1; i + 1 < p.route.regions.size(); ++i) {
        ++used[cloud::region_index(p.route.regions[i])];
      }
    }
  }
  for (Region r : cloud::kAllRegions) {
    EXPECT_LE(used[cloud::region_index(r)], inventory[cloud::region_index(r)])
        << cloud::region_name(r);
  }
  // Paths never repeat an intermediate region.
  for (const auto& p : plan.paths) {
    for (std::size_t i = 0; i < p.route.regions.size(); ++i) {
      for (std::size_t j = i + 1; j < p.route.regions.size(); ++j) {
        EXPECT_NE(p.route.regions[i], p.route.regions[j]);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Budgets, PlannerBudgets,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ---------------------------------------------------------------------------
// Tradeoff solver invariants across sizes and throughputs.
// ---------------------------------------------------------------------------

class SolverSweep
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(SolverSweep, FrontierIsMonotone) {
  const auto [gb, mbps] = GetParam();
  const model::CostModel model(cloud::PricingModel{}, model::ModelParams{});
  const model::TradeoffSolver solver(model);
  model::TradeoffInputs inputs;
  inputs.size = Bytes::gb(gb);
  inputs.link = monitor::LinkEstimate{mbps, mbps * 0.1, 30};
  inputs.max_nodes = 12;
  const auto frontier = solver.frontier(inputs);
  for (std::size_t i = 1; i < frontier.size(); ++i) {
    EXPECT_LT(frontier[i].time, frontier[i - 1].time);
    // Monotone up to integer micro-USD truncation of the two cost shares.
    EXPECT_GE(frontier[i].vm_cost() + Money::micro_usd(8), frontier[i - 1].vm_cost());
    EXPECT_EQ(frontier[i].egress_cost, frontier[i - 1].egress_cost);
  }
  // resolve() output always lies on the frontier and satisfies caps when
  // feasible.
  model::Tradeoff t;
  t.budget = frontier[frontier.size() / 2].total_cost();
  const auto e = solver.resolve(inputs, t);
  EXPECT_LE(e.total_cost(), t.budget);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndRates, SolverSweep,
    ::testing::Combine(::testing::Values(0.1, 1.0, 10.0),
                       ::testing::Values(2.0, 5.0, 20.0)));

// ---------------------------------------------------------------------------
// Fabric byte conservation *from the metrics registry*: across randomized
// flow mixes (including mid-flight cancellations), the fabric's counters
// must balance exactly — every offered byte is either moved, forgiven
// (completion rounding) or aborted, and the per-pair-link byte counters
// agree with the fabric's own egress accounting byte for byte.
// ---------------------------------------------------------------------------

class FabricMetricsConservation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FabricMetricsConservation, CountersBalanceExactly) {
  sim::SimEngine engine;
  obs::ObsConfig cfg;
  cfg.tracing = false;
  engine.enable_obs(cfg);
  cloud::Fabric fabric(engine, cloud::default_topology(), GetParam());
  Rng rng(GetParam() * 7919 + 5);

  std::vector<cloud::NodeId> nodes;
  for (Region r : cloud::kAllRegions) {
    for (int i = 0; i < 2; ++i) {
      nodes.push_back(fabric.add_node(r, ByteRate::megabits_per_sec(150),
                                      ByteRate::megabits_per_sec(150)));
    }
  }

  const int kFlows = 30;
  Bytes offered = Bytes::zero();
  std::vector<cloud::FlowId> cancel_targets;
  int finished = 0;
  for (int i = 0; i < kFlows; ++i) {
    const auto src = nodes[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(nodes.size()) - 1))];
    auto dst = src;
    while (dst == src) {
      dst = nodes[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(nodes.size()) - 1))];
    }
    const Bytes size = Bytes::mb(rng.uniform(2.0, 40.0));
    offered += size;
    const cloud::FlowId id = fabric.start_flow(
        src, dst, size, {}, [&](const cloud::FlowResult&) { ++finished; });
    if (i % 5 == 0) cancel_targets.push_back(id);
  }
  // Let progress accrue, then kill a subset mid-flight so the aborted path
  // is exercised (targets that already completed cancel as a no-op).
  engine.run_until(engine.now() + SimDuration::seconds(2));
  for (const cloud::FlowId id : cancel_targets) fabric.cancel_flow(id);
  ASSERT_TRUE(run_until(engine, [&] { return finished == kFlows; }, SimDuration::hours(6)));

  const auto& m = engine.obs()->metrics();
  const auto count = [&](const char* name) {
    const obs::Counter* c = m.find_counter(name);
    return c != nullptr ? c->value() : 0u;
  };

  EXPECT_EQ(count("fabric.flows.started"), static_cast<std::uint64_t>(kFlows));
  EXPECT_EQ(count("fabric.flows.started"),
            count("fabric.flows.completed") + count("fabric.flows.failed") +
                count("fabric.flows.cancelled"));
  EXPECT_EQ(count("fabric.bytes.offered"), static_cast<std::uint64_t>(offered.count()));
  EXPECT_EQ(count("fabric.bytes.offered"),
            count("fabric.bytes.moved") + count("fabric.bytes.forgiven") +
                count("fabric.bytes.aborted"));
  EXPECT_GT(count("fabric.bytes.moved"), 0u);
  EXPECT_GT(count("fabric.settle.rounds"), 0u);

  // The per-pair-link byte counters and the fabric's egress accounting are
  // incremented by the same advance step, so cross-region totals match
  // exactly — not approximately.
  std::uint64_t cross_link_bytes = 0;
  for (Region a : cloud::kAllRegions) {
    for (Region b : cloud::kAllRegions) {
      if (a == b) continue;
      const std::string label =
          std::string(cloud::region_name(a)) + "->" + std::string(cloud::region_name(b));
      if (const obs::Counter* c =
              m.find_counter("fabric.link.bytes", {{"link", label}})) {
        cross_link_bytes += c->value();
      }
    }
  }
  Bytes egress = Bytes::zero();
  for (Region r : cloud::kAllRegions) egress += fabric.egress_from(r);
  EXPECT_EQ(cross_link_bytes, static_cast<std::uint64_t>(egress.count()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, FabricMetricsConservation,
                         ::testing::Values(3u, 19u, 77u, 2026u));

// ---------------------------------------------------------------------------
// Stream record conservation from metrics: across randomized linear
// pipelines (maps, filters, window aggregates, random sites, fused or not),
// every record the source emits is at the sink, retained inside an operator
// (filtered / window-pending / mid-compute), queued, riding the WAN, or
// lost — and the counters must say so exactly at any event boundary.
// ---------------------------------------------------------------------------

/// Reliable backend delivering after a fixed delay (keeps WAN batches in
/// flight long enough that the in-flight term is actually exercised).
struct DelayBackend final : stream::TransferBackend {
  sim::SimEngine& engine;
  explicit DelayBackend(sim::SimEngine& e) : engine(e) {}
  void send(Region, Region, Bytes, stream::TransferBackend::DoneFn done) override {
    engine.schedule_after(SimDuration::millis(150), [done = std::move(done)] {
      done(stream::SendOutcome{true, SimDuration::millis(150)});
    });
  }
  [[nodiscard]] std::string_view name() const override { return "delay"; }
};

class StreamMetricsConservation
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, bool>> {};

TEST_P(StreamMetricsConservation, RecordsBalanceAcrossRandomPipelines) {
  const auto [seed, fuse] = GetParam();
  sim::SimEngine engine;
  obs::ObsConfig cfg;
  cfg.tracing = false;
  engine.enable_obs(cfg);
  cloud::CloudProvider provider(engine, cloud::stable_topology(), seed);
  Rng rng(seed ^ 0x5eedu);

  stream::JobGraph g;
  stream::SourceSpec spec;
  spec.records_per_sec = 2000.0;
  spec.key_count = 50;
  const auto src = g.add_source("src", Region::kNorthEU, spec);
  stream::VertexId prev = src;
  const int ops = static_cast<int>(rng.uniform_int(1, 4));
  for (int i = 0; i < ops; ++i) {
    const Region site =
        rng.uniform(0.0, 1.0) < 0.5 ? Region::kNorthEU : Region::kNorthUS;
    const std::string name = "op" + std::to_string(i);
    std::shared_ptr<stream::Operator> op;
    const double kind = rng.uniform(0.0, 1.0);
    if (kind < 0.4) {
      op = stream::make_map(name, [](const stream::Record& r) {
        stream::Record out = r;
        out.value = r.value * 2.0;
        return out;
      });
    } else if (kind < 0.8) {
      const std::uint64_t mod = static_cast<std::uint64_t>(rng.uniform_int(2, 5));
      op = stream::make_filter(
          name, [mod](const stream::Record& r) { return r.key % mod != 0; });
    } else {
      op = stream::make_window_aggregate(name, SimDuration::seconds(1),
                                         stream::AggregateFn::kSum);
    }
    const auto v = g.add_operator(name, site, op);
    g.connect(prev, v);
    prev = v;
  }
  const auto sink = g.add_sink("sink", Region::kNorthUS);
  g.connect(prev, sink);

  DelayBackend backend(engine);
  stream::RuntimeConfig rc;
  rc.seed = seed;
  rc.fuse_stateless_chains = fuse;
  rc.geo_batch_max_bytes = Bytes::kb(64);
  rc.geo_batch_max_delay = SimDuration::millis(250);
  stream::StreamRuntime runtime(provider, g, backend, rc);
  runtime.start();
  engine.run_until(engine.now() + SimDuration::seconds(10));

  const auto& m = engine.obs()->metrics();
  const auto vcount = [&](const char* name, const std::string& vertex) {
    const obs::Counter* c = m.find_counter(name, {{"vertex", vertex}});
    return c != nullptr ? c->value() : 0u;
  };
  const auto gcount = [&](const char* name) {
    const obs::Counter* c = m.find_counter(name);
    return c != nullptr ? c->value() : 0u;
  };

  // Walk the *effective* (possibly fused) graph the runtime executes.
  const stream::JobGraph& graph = runtime.graph();
  std::uint64_t source_produced = 0;
  std::uint64_t sink_arrived = 0;
  std::uint64_t retained_in_ops = 0;  // filtered + window-pending + mid-compute
  std::uint64_t queued = 0;
  for (const stream::Vertex& v : graph.vertices()) {
    const std::uint64_t arrived = vcount("stream.records.arrived", v.name);
    const std::uint64_t consumed = vcount("stream.records.consumed", v.name);
    const std::uint64_t produced = vcount("stream.records.produced", v.name);
    switch (v.kind) {
      case stream::VertexKind::kSource:
        source_produced += produced;
        break;
      case stream::VertexKind::kSink:
        sink_arrived += arrived;
        // The sink counter and the runtime's own stats are one number.
        EXPECT_EQ(arrived, runtime.sink_stats(v.id).records) << v.name;
        break;
      case stream::VertexKind::kOperator: {
        // Arrivals are either consumed or still queued — nothing vanishes.
        EXPECT_EQ(arrived, consumed + runtime.queue_depth(v.id)) << v.name;
        EXPECT_GE(consumed, produced) << v.name;
        retained_in_ops += consumed - produced;
        queued += runtime.queue_depth(v.id);
        break;
      }
    }
  }

  // Per-edge conservation: a local edge hands every sent record straight to
  // the downstream vertex; WAN edges collectively balance against the
  // global receive/lost/pending counters.
  std::uint64_t wan_sent = 0;
  for (const stream::Edge& e : graph.edges()) {
    const stream::Vertex& from = graph.vertex(e.from);
    const stream::Vertex& to = graph.vertex(e.to);
    const obs::Counter* sent = m.find_counter(
        "stream.edge.records", {{"edge", from.name + "->" + to.name}});
    ASSERT_NE(sent, nullptr) << from.name << "->" << to.name;
    if (from.site == to.site) {
      EXPECT_EQ(sent->value(), vcount("stream.records.arrived", to.name))
          << from.name << "->" << to.name;
    } else {
      wan_sent += sent->value();
    }
  }
  const std::uint64_t wan_recv = gcount("stream.wan.records.recv");
  const std::uint64_t wan_lost = gcount("stream.wan.records.lost");
  const std::uint64_t wan_pending = runtime.geo_pending_records();
  EXPECT_EQ(wan_sent, wan_recv + wan_lost + wan_pending);
  EXPECT_EQ(wan_lost, 0u);  // the backend never fails

  // End-to-end: every emitted record is accounted for somewhere.
  EXPECT_GT(source_produced, 0u);
  EXPECT_EQ(source_produced,
            sink_arrived + retained_in_ops + queued + wan_pending + wan_lost);

  if (fuse) {
    // Fused chains must actually have executed stage-wise when the random
    // pipeline produced a fusable run; count is zero only if nothing fused.
    bool has_fused = false;
    for (const stream::Vertex& v : graph.vertices()) {
      if (v.kind == stream::VertexKind::kOperator &&
          dynamic_cast<const stream::FusedStatelessChain*>(v.op.get()) != nullptr) {
        has_fused = true;
      }
    }
    if (has_fused) {
      EXPECT_GT(gcount("stream.fused.stages"), 0u);
    }
  }
  runtime.stop();
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndFusion, StreamMetricsConservation,
    ::testing::Combine(::testing::Values(2u, 13u, 101u, 555u),
                       ::testing::Values(false, true)));

// ---------------------------------------------------------------------------
// Wire-size conservation through fused stages. The batch tracks its wire-byte
// total incrementally (maps rewrite it, filters refresh it from survivors);
// after every stage of a random map/filter chain the tracked total must equal
// the actual column sum — on both execution paths (scalar and SoA kernels).
// ---------------------------------------------------------------------------

class WireSizeConservation
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, bool>> {};

TEST_P(WireSizeConservation, TrackedTotalMatchesColumnSumAtEveryStage) {
  const auto [seed, use_kernel] = GetParam();
  Rng rng(seed * 77 + 5);

  // Random chain mixing every stage flavour: generic record maps/filters,
  // value maps/filters, key filters — several of them size-changing.
  std::vector<stream::StatelessStage> stages;
  const int n_stages = static_cast<int>(rng.uniform_int(2, 6));
  for (int i = 0; i < n_stages; ++i) {
    const std::string name = "st" + std::to_string(i);
    const double kind = rng.uniform(0.0, 1.0);
    std::shared_ptr<stream::Operator> op;
    if (kind < 0.2) {
      // Generic map that rewrites the wire size (stresses the tracked total).
      op = stream::make_map(name, [](const stream::Record& r) {
        stream::Record out = r;
        out.wire_size = Bytes::of(r.wire_size.count() / 2 + 16);
        return out;
      });
    } else if (kind < 0.4) {
      op = stream::make_value_map(name, [](double v) { return v * 0.5 + 1.0; });
    } else if (kind < 0.6) {
      const double cut = rng.uniform(-1.0, 1.0);
      op = stream::make_value_filter(name, [cut](double v) { return v > cut; });
    } else if (kind < 0.8) {
      const std::uint64_t mod = static_cast<std::uint64_t>(rng.uniform_int(2, 5));
      op = stream::make_key_filter(name, [mod](std::uint64_t k) { return k % mod != 0; });
    } else {
      op = stream::make_filter(name, [](const stream::Record& r) {
        return r.wire_size.count() % 3 != 0;
      });
    }
    ASSERT_TRUE(op->collect_stages(stages));
  }
  stream::FusedStatelessChain chain("chain", std::move(stages));

  stream::RecordBatch batch;
  const int n_records = static_cast<int>(rng.uniform_int(0, 300));
  for (int i = 0; i < n_records; ++i) {
    stream::Record r;
    r.key = static_cast<std::uint64_t>(rng.uniform_int(0, 99));
    r.value = rng.uniform(-2.0, 2.0);
    r.wire_size = Bytes::of(rng.uniform_int(32, 256));
    batch.add(r);
  }

  auto column_sum = [](const stream::RecordBatch& b) {
    Bytes total = Bytes::zero();
    for (const Bytes w : b.wire_sizes()) total += w;
    return total;
  };
  ASSERT_EQ(batch.wire_size(), column_sum(batch));
  for (std::size_t s = 0; s < chain.stage_count(); ++s) {
    chain.apply_stage(s, batch, use_kernel);
    EXPECT_EQ(batch.wire_size(), column_sum(batch))
        << "stage " << s << " seed " << seed << " kernel " << use_kernel;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndKernels, WireSizeConservation,
    ::testing::Combine(::testing::Values(1u, 7u, 42u, 99u, 1234u),
                       ::testing::Values(false, true)));

}  // namespace
}  // namespace sage
